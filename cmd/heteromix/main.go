// Command heteromix runs the full heterogeneous-cluster energy-efficiency
// analysis: validation tables, performance-to-power ratios, Pareto
// frontiers, power-budget mix series, cluster scaling and the M/D/1
// queueing analysis — every table and figure of the paper's evaluation.
//
// Usage:
//
//	heteromix [-noise s] [-seed n] [-dir d] <command>
//
// Commands:
//
//	table3     single-node validation (Table 3)
//	table4     cluster validation (Table 4)
//	ppr        performance-to-power ratios (Table 5)
//	fig2       WPI/SPIcore constancy (Figure 2)
//	fig3       SPImem regression (Figure 3)
//	fig4       EP Pareto frontier (Figure 4)
//	fig5       memcached Pareto frontier (Figure 5)
//	fig6       memcached budget mixes (Figure 6)
//	fig7       EP budget mixes (Figure 7)
//	fig8       memcached scaling (Figure 8)
//	fig9       EP scaling (Figure 9)
//	fig10      queueing analysis (Figure 10)
//	headline   energy reduction vs homogeneous AMD (paper §VI)
//	ablation   split/DVFS/pruning ablation studies (extensions)
//	report     write report.md + SVG figures to -dir
//	all        everything above in order
package main

import (
	"flag"
	"fmt"
	"os"

	"heteromix/internal/cliutil"
	"heteromix/internal/experiments"
	"heteromix/internal/profiling"
	"heteromix/internal/report"
)

func main() {
	noise := flag.Float64("noise", 0.03, "measurement noise sigma for baseline runs")
	seed := flag.Int64("seed", 1, "random seed for the whole pipeline")
	dir := flag.String("dir", "report", "output directory for the report command")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: heteromix [-noise s] [-seed n] [-dir d] [-cpuprofile f] [-memprofile f] <command>\n\ncommands: table3 table4 ppr fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 headline ablation report all\n")
		flag.PrintDefaults()
	}
	cliutil.Parse(1)
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
		os.Exit(1)
	}
	// Profiles must be flushed on every exit path (os.Exit skips defers),
	// so the work runs first and the exit code is applied after stopping.
	code := 0
	s := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: *noise, Seed: *seed})
	if flag.Arg(0) == "report" {
		path, err := report.Generate(s, *dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
			code = 1
		} else {
			fmt.Printf("wrote %s (figures alongside)\n", path)
		}
	} else if err := run(s, flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
		code = 1
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(s *experiments.Suite, cmd string) error {
	switch cmd {
	case "table3":
		rows, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
	case "table4":
		rows, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
	case "ppr":
		rows, err := s.Table5()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable5(rows))
	case "fig2":
		r, err := s.Figure2()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 2: max relative spread of WPI/SPIcore across problem sizes: %.2f%%\n", r.MaxRelSpread*100)
		for _, p := range r.Points {
			fmt.Printf("  %-16s class %s (%.3g units): WPI=%.3f SPIcore=%.3f\n",
				p.Node, p.Class, p.Units, p.WPI, p.SPICore)
		}
	case "fig3":
		r, err := s.Figure3()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 3: SPImem linear in frequency, min r^2 = %.3f\n", r.MinR2)
		for _, series := range r.Series {
			fmt.Printf("  %-16s cores=%d: slope=%.3f SPImem/GHz, r^2=%.3f\n",
				series.Node, series.Cores, series.Slope, series.R2)
		}
	case "fig4":
		return frontier(s, "ep")
	case "fig5":
		return frontier(s, "memcached")
	case "fig6":
		return mixSeries(s.Figure6())
	case "fig7":
		return mixSeries(s.Figure7())
	case "fig8":
		return mixSeries(s.Figure8())
	case "fig9":
		return mixSeries(s.Figure9())
	case "fig10":
		r, err := s.Figure10()
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		ascii, err := r.Chart().RenderASCII(72, 20)
		if err != nil {
			return err
		}
		fmt.Println(ascii)
	case "headline":
		for _, w := range []string{"ep", "memcached"} {
			h, err := s.Headline(w)
			if err != nil {
				return err
			}
			fmt.Println(h.Format())
		}
	case "ablation":
		for _, w := range []string{"ep", "memcached"} {
			split, err := s.SplitAblation(w)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSplitAblation(w, split))
		}
		dvfs, err := s.DVFSAblation("ep", 6, 6)
		if err != nil {
			return err
		}
		fmt.Print(dvfs.Format())
		for _, w := range []string{"ep", "memcached"} {
			pr, err := s.Pruning(w, 6, 6)
			if err != nil {
				return err
			}
			fmt.Print(pr.Format())
		}
		qv, err := s.QueueModelValidation(0.026, []float64{0.05, 0.25, 0.5, 0.8}, 200000)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatQueueValidation(qv))
		prop, err := s.Proportionality()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatProportionality(prop))
		e2e, err := s.EndToEndValidation(0.25, 500)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatEndToEnd(e2e))
		bt, err := s.BottleneckClassification()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatBottlenecks(bt))
		for _, w := range []string{"ep", "memcached"} {
			ad, err := s.AdaptiveScheduling(w, 0.05, 0.5, 0.2)
			if err != nil {
				return err
			}
			fmt.Print(ad.Format())
		}
		for _, w := range []string{"ep", "rsa2048"} {
			sens, err := s.Sensitivity(w, 0.10, 12)
			if err != nil {
				return err
			}
			fmt.Print(sens.Format())
		}
		wq, err := s.WorkQueue("ep", 1.4)
		if err != nil {
			return err
		}
		fmt.Print(wq.Format())
	case "all":
		for _, c := range []string{"table3", "table4", "ppr", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "headline", "ablation"} {
			fmt.Printf("==== %s ====\n", c)
			if err := run(s, c); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

func frontier(s *experiments.Suite, workload string) error {
	r, err := s.FrontierAnalysis(workload, 10, 10, 0)
	if err != nil {
		return err
	}
	fmt.Print(r.FormatFrontier())
	ascii, err := r.Chart().RenderASCII(72, 20)
	if err != nil {
		return err
	}
	fmt.Println(ascii)
	return nil
}

func mixSeries(r experiments.MixSeriesResult, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(r.Format())
	ascii, err := r.Chart().RenderASCII(72, 20)
	if err != nil {
		return err
	}
	fmt.Println(ascii)
	return nil
}
