// Command heteromix runs the full heterogeneous-cluster energy-efficiency
// analysis: validation tables, performance-to-power ratios, Pareto
// frontiers, power-budget mix series, cluster scaling and the M/D/1
// queueing analysis — every table and figure of the paper's evaluation.
//
// Usage:
//
//	heteromix [-noise s] [-seed n] [-dir d] <command>
//
// Commands:
//
//	table3     single-node validation (Table 3)
//	table4     cluster validation (Table 4)
//	ppr        performance-to-power ratios (Table 5)
//	fig2       WPI/SPIcore constancy (Figure 2)
//	fig3       SPImem regression (Figure 3)
//	fig4       EP Pareto frontier (Figure 4)
//	fig5       memcached Pareto frontier (Figure 5)
//	fig6       memcached budget mixes (Figure 6)
//	fig7       EP budget mixes (Figure 7)
//	fig8       memcached scaling (Figure 8)
//	fig9       EP scaling (Figure 9)
//	fig10      queueing analysis (Figure 10)
//	headline   energy reduction vs homogeneous AMD (paper §VI)
//	ablation   split/DVFS/pruning ablation studies (extensions)
//	report     write report.md + SVG figures to -dir
//	all        everything above in order
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"heteromix/internal/cliutil"
	"heteromix/internal/experiments"
	"heteromix/internal/profiling"
	"heteromix/internal/report"
)

func main() {
	noise := flag.Float64("noise", 0.03, "measurement noise sigma for baseline runs")
	seed := flag.Int64("seed", 1, "random seed for the whole pipeline")
	dir := flag.String("dir", "report", "output directory for the report command")
	serial := flag.Bool("serial", false, "run the all command's stages sequentially instead of in parallel")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: heteromix [-noise s] [-seed n] [-dir d] [-cpuprofile f] [-memprofile f] <command>\n\ncommands: table3 table4 ppr fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 headline ablation report all\n")
		flag.PrintDefaults()
	}
	cliutil.Parse(1)
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
		os.Exit(1)
	}
	// Profiles must be flushed on every exit path (os.Exit skips defers),
	// so the work runs first and the exit code is applied after stopping.
	code := 0
	s := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: *noise, Seed: *seed})
	if flag.Arg(0) == "report" {
		path, err := report.Generate(s, *dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
			code = 1
		} else {
			fmt.Printf("wrote %s (figures alongside)\n", path)
		}
	} else if flag.Arg(0) == "all" {
		if err := runAll(s, os.Stdout, *serial); err != nil {
			fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
			code = 1
		}
	} else if err := run(s, flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
		code = 1
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "heteromix: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// allStages is the order the all command presents its sections in —
// also the byte-layout contract the parallel runner preserves.
var allStages = []string{"table3", "table4", "ppr", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "headline", "ablation"}

func run(s *experiments.Suite, cmd string, out io.Writer) error {
	switch cmd {
	case "table3":
		rows, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable3(rows))
	case "table4":
		rows, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable4(rows))
	case "ppr":
		rows, err := s.Table5()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable5(rows))
	case "fig2":
		r, err := s.Figure2()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Figure 2: max relative spread of WPI/SPIcore across problem sizes: %.2f%%\n", r.MaxRelSpread*100)
		for _, p := range r.Points {
			fmt.Fprintf(out, "  %-16s class %s (%.3g units): WPI=%.3f SPIcore=%.3f\n",
				p.Node, p.Class, p.Units, p.WPI, p.SPICore)
		}
	case "fig3":
		r, err := s.Figure3()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Figure 3: SPImem linear in frequency, min r^2 = %.3f\n", r.MinR2)
		for _, series := range r.Series {
			fmt.Fprintf(out, "  %-16s cores=%d: slope=%.3f SPImem/GHz, r^2=%.3f\n",
				series.Node, series.Cores, series.Slope, series.R2)
		}
	case "fig4":
		return frontier(s, "ep", out)
	case "fig5":
		return frontier(s, "memcached", out)
	case "fig6":
		return mixSeries(out)(s.Figure6())
	case "fig7":
		return mixSeries(out)(s.Figure7())
	case "fig8":
		return mixSeries(out)(s.Figure8())
	case "fig9":
		return mixSeries(out)(s.Figure9())
	case "fig10":
		r, err := s.Figure10()
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
		ascii, err := r.Chart().RenderASCII(72, 20)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ascii)
	case "headline":
		for _, w := range []string{"ep", "memcached"} {
			h, err := s.Headline(w)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, h.Format())
		}
	case "ablation":
		for _, w := range []string{"ep", "memcached"} {
			split, err := s.SplitAblation(w)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatSplitAblation(w, split))
		}
		dvfs, err := s.DVFSAblation("ep", 6, 6)
		if err != nil {
			return err
		}
		fmt.Fprint(out, dvfs.Format())
		for _, w := range []string{"ep", "memcached"} {
			pr, err := s.Pruning(w, 6, 6)
			if err != nil {
				return err
			}
			fmt.Fprint(out, pr.Format())
		}
		qv, err := s.QueueModelValidation(0.026, []float64{0.05, 0.25, 0.5, 0.8}, 200000)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatQueueValidation(qv))
		prop, err := s.Proportionality()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatProportionality(prop))
		e2e, err := s.EndToEndValidation(0.25, 500)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatEndToEnd(e2e))
		bt, err := s.BottleneckClassification()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatBottlenecks(bt))
		for _, w := range []string{"ep", "memcached"} {
			ad, err := s.AdaptiveScheduling(w, 0.05, 0.5, 0.2)
			if err != nil {
				return err
			}
			fmt.Fprint(out, ad.Format())
		}
		for _, w := range []string{"ep", "rsa2048"} {
			sens, err := s.Sensitivity(w, 0.10, 12)
			if err != nil {
				return err
			}
			fmt.Fprint(out, sens.Format())
		}
		wq, err := s.WorkQueue("ep", 1.4)
		if err != nil {
			return err
		}
		fmt.Fprint(out, wq.Format())
	case "all":
		return runAll(s, out, true)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// runAll executes every stage of the all command. Serial mode streams
// each stage to out in order, exactly as before. Parallel mode (the
// default) first warms the model cache in the serial build order — the
// models' seeds depend on that order, so this is what keeps the numbers
// identical — then fans the stages across a bounded worker pool, each
// writing into its own buffer, and splices the buffers in stage order:
// the output is byte-identical to the serial run, the wall clock is the
// slowest stage instead of the sum.
func runAll(s *experiments.Suite, out io.Writer, serial bool) error {
	if serial {
		for _, c := range allStages {
			fmt.Fprintf(out, "==== %s ====\n", c)
			if err := run(s, c, out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	if err := s.WarmModels(); err != nil {
		return err
	}
	type result struct {
		buf bytes.Buffer
		err error
	}
	results := make([]result, len(allStages))
	workers := min(runtime.GOMAXPROCS(0), len(allStages))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(allStages) {
					return
				}
				r := &results[i]
				fmt.Fprintf(&r.buf, "==== %s ====\n", allStages[i])
				if r.err = run(s, allStages[i], &r.buf); r.err == nil {
					fmt.Fprintln(&r.buf)
				}
			}
		}()
	}
	wg.Wait()
	for i := range results {
		// A failing stage's buffer is flushed too (header plus whatever
		// it printed before the error), matching what a serial run would
		// have streamed before stopping.
		if _, err := out.Write(results[i].buf.Bytes()); err != nil {
			return err
		}
		if results[i].err != nil {
			return results[i].err
		}
	}
	return nil
}

func frontier(s *experiments.Suite, workload string, out io.Writer) error {
	r, err := s.FrontierAnalysis(workload, 10, 10, 0)
	if err != nil {
		return err
	}
	fmt.Fprint(out, r.FormatFrontier())
	ascii, err := r.Chart().RenderASCII(72, 20)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, ascii)
	return nil
}

func mixSeries(out io.Writer) func(experiments.MixSeriesResult, error) error {
	return func(r experiments.MixSeriesResult, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
		ascii, err := r.Chart().RenderASCII(72, 20)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ascii)
		return nil
	}
}
