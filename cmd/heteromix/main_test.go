package main

import (
	"testing"

	"heteromix/internal/experiments"
)

func testSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: 0.03, Seed: 1})
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run(testSuite(), "make-coffee"); err == nil {
		t.Error("unknown command should error")
	}
}

func TestRunPPR(t *testing.T) {
	if err := run(testSuite(), "ppr"); err != nil {
		t.Errorf("ppr: %v", err)
	}
}

func TestRunFig3(t *testing.T) {
	if err := run(testSuite(), "fig3"); err != nil {
		t.Errorf("fig3: %v", err)
	}
}

func TestRunFig2(t *testing.T) {
	if err := run(testSuite(), "fig2"); err != nil {
		t.Errorf("fig2: %v", err)
	}
}

func TestRunHeadline(t *testing.T) {
	if err := run(testSuite(), "headline"); err != nil {
		t.Errorf("headline: %v", err)
	}
}
