package main

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"heteromix/internal/experiments"
)

func testSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: 0.03, Seed: 1})
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run(testSuite(), "make-coffee", io.Discard); err == nil {
		t.Error("unknown command should error")
	}
}

func TestRunPPR(t *testing.T) {
	if err := run(testSuite(), "ppr", io.Discard); err != nil {
		t.Errorf("ppr: %v", err)
	}
}

func TestRunFig3(t *testing.T) {
	if err := run(testSuite(), "fig3", io.Discard); err != nil {
		t.Errorf("fig3: %v", err)
	}
}

func TestRunFig2(t *testing.T) {
	if err := run(testSuite(), "fig2", io.Discard); err != nil {
		t.Errorf("fig2: %v", err)
	}
}

func TestRunHeadline(t *testing.T) {
	if err := run(testSuite(), "headline", io.Discard); err != nil {
		t.Errorf("headline: %v", err)
	}
}

// TestParallelAllMatchesSerial is the core determinism contract of the
// parallel runner: for the same seed, the concurrent `all` must produce
// the serial run's bytes exactly. Each mode gets a fresh suite so the
// parallel run cannot ride on caches a serial run populated.
func TestParallelAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full all run is slow")
	}
	// The worker count follows GOMAXPROCS; pin it above 1 so the stages
	// genuinely interleave even on a single-core CI box.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var serial, parallel bytes.Buffer
	if err := runAll(testSuite(), &serial, true); err != nil {
		t.Fatalf("serial all: %v", err)
	}
	if err := runAll(testSuite(), &parallel, false); err != nil {
		t.Fatalf("parallel all: %v", err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("parallel all output differs from serial: %d vs %d bytes",
			parallel.Len(), serial.Len())
	}
}
