package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testConfig() daemonConfig {
	return daemonConfig{
		noise: 0.03, seed: 1, cache: 64, maxConcurrent: 2,
		maxNodes: 16, timeout: time.Second,
	}
}

func TestNewServerServes(t *testing.T) {
	srv, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", rr.Code, rr.Body)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"workload":"ep","arm":{"nodes":2}}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rr.Code, rr.Body)
	}
}

func TestGenericSpaceBoundPlumbsThrough(t *testing.T) {
	body := `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}]}`

	cfg := testConfig()
	cfg.maxGenericSpace = 2 // below the 1-type space's 40 points
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic",
		strings.NewReader(body)))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("tiny bound: got %d %s, want 400", rr.Code, rr.Body)
	}

	cfg.maxGenericSpace = 1000
	srv, err = newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic",
		strings.NewReader(body)))
	if rr.Code != http.StatusOK {
		t.Fatalf("roomy bound: got %d %s, want 200", rr.Code, rr.Body)
	}
}

func TestNewServerRejectsBadChaosSpec(t *testing.T) {
	cfg := testConfig()
	cfg.chaosSpec = "wibble=1"
	if _, err := newServer(cfg); err == nil {
		t.Fatal("bad chaos spec accepted")
	}
}

func TestRunStopsOnCancel(t *testing.T) {
	srv, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on context cancel")
	}
}

func TestNewServerRejectsBadFleetFlags(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*daemonConfig)
	}{
		{"bad shard spec", func(c *daemonConfig) { c.shardSpec = "x/y" }},
		{"out-of-range shard", func(c *daemonConfig) { c.shardSpec = "4/4" }},
		{"bad replica URL", func(c *daemonConfig) { c.replicas = "not-a-url" }},
		{"replica with path", func(c *daemonConfig) { c.replicas = "http://a:1/v1" }},
		{"unknown route key", func(c *daemonConfig) { c.routeKey = "wibble" }},
		{"route key without replicas", func(c *daemonConfig) { c.routeKey = "workload" }},
		{"negative probe interval", func(c *daemonConfig) {
			c.replicas = "http://a:1"
			c.probeInterval = -time.Second
		}},
		{"hedge quantile above 1", func(c *daemonConfig) {
			c.replicas = "http://a:1"
			c.hedgeQuantile = 1.5
		}},
		{"negative suspect-after", func(c *daemonConfig) {
			c.replicas = "http://a:1"
			c.suspectAfter = -1
		}},
		{"dead-after below suspect-after", func(c *daemonConfig) {
			c.replicas = "http://a:1"
			c.suspectAfter = 3
			c.deadAfter = 2
		}},
	} {
		cfg := testConfig()
		tc.mutate(&cfg)
		if _, err := newServer(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCalibFlagsPlumbThrough(t *testing.T) {
	cfg := testConfig()
	cfg.refitThreshold = 0.2
	cfg.maxFitSamples = 64
	cfg.profileSnapshot = filepath.Join(t.TempDir(), "profiles.json")
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/fit",
		strings.NewReader(`{"workload":"ep","node":"arm-cortex-a9","samples":[{"cores":1,"ghz":0.8,"time_seconds":2.5,"energy_joules":40}]}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("fit: %d %s", rr.Code, rr.Body)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/profiles", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"refit_threshold":0.2`) {
		t.Fatalf("profiles did not reflect -refit-threshold: %d %s", rr.Code, rr.Body)
	}
}

func TestFleetFlagsPlumbThrough(t *testing.T) {
	// A replica started with -shard answers frontier requests with its
	// slice and the serial indices the coordinator merges on.
	cfg := testConfig()
	cfg.shardSpec = "1/4"
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic",
		strings.NewReader(`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"frontier_only":true}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("sharded replica: %d %s", rr.Code, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), `"shard":"1/4"`) || !strings.Contains(rr.Body.String(), `"indices":[`) {
		t.Fatalf("shard slice not served: %s", rr.Body)
	}

	// A coordinator started with -replicas admits shards > 0 past the
	// fleet gate (the fan-out itself then fails against the dead URL,
	// answering 503 — not the 400 a fleet-disabled server gives).
	cfg = testConfig()
	cfg.replicas = "http://127.0.0.1:1, http://127.0.0.1:2"
	cfg.routeKey = "workload"
	srv, err = newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic",
		strings.NewReader(`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"frontier_only":true,"shards":2}`)))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("coordinator with dead replicas: %d %s, want 503", rr.Code, rr.Body)
	}
	srv.Close()
}

func TestHealFlagsPlumbThrough(t *testing.T) {
	// A coordinator with the self-healing flags set exposes its probed
	// replica view in /healthz and the labeled state gauges in /metrics.
	cfg := testConfig()
	cfg.replicas = "http://127.0.0.1:1"
	cfg.probeInterval = time.Hour // transitions only when tests ask
	cfg.suspectAfter = 2
	cfg.deadAfter = 5
	cfg.hedgeQuantile = 0.95
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK ||
		!strings.Contains(rr.Body.String(), `"url":"http://127.0.0.1:1"`) ||
		!strings.Contains(rr.Body.String(), `"state":"healthy"`) {
		t.Fatalf("healthz has no fleet replica view: %d %s", rr.Code, rr.Body)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rr.Body.String(), `heteromixd_fleet_replica_state{target="http://127.0.0.1:1"}`) {
		t.Fatalf("metrics missing fleet_replica_state gauge: %s", rr.Body)
	}

	// -hedge-quantile 0 disables hedging rather than failing validation.
	cfg.hedgeQuantile = 0
	srv2, err := newServer(cfg)
	if err != nil {
		t.Fatalf("hedge-quantile 0: %v", err)
	}
	srv2.Close()
}

func TestPreheatFlagsPlumbThrough(t *testing.T) {
	// First life: serve one predict, then shut down with
	// -snapshot-interval so Close persists the cache snapshot.
	path := filepath.Join(t.TempDir(), "cache.snap")
	cfg := testConfig()
	cfg.preheat = path
	cfg.snapshotInterval = time.Hour
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"workload":"ep","arm":{"nodes":2}}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rr.Code, rr.Body)
	}
	srv.Close()

	// Second life: -preheat loads it back and /healthz says so.
	cfg = testConfig()
	cfg.preheat = path
	srv, err = newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"snapshot":{`) {
		t.Fatalf("healthz has no snapshot section after -preheat: %d %s", rr.Code, rr.Body)
	}

	// Bad combinations fail validation instead of serving cold.
	for _, tc := range []struct {
		name   string
		mutate func(*daemonConfig)
	}{
		{"negative snapshot interval", func(c *daemonConfig) {
			c.preheat = path
			c.snapshotInterval = -time.Second
		}},
		{"peer-warm without replicas", func(c *daemonConfig) { c.peerWarm = true }},
		{"negative cache-bytes", func(c *daemonConfig) { c.cacheBytes = -1 }},
		{"negative table-cache-bytes", func(c *daemonConfig) { c.tableCacheBytes = -1 }},
	} {
		cfg := testConfig()
		tc.mutate(&cfg)
		if _, err := newServer(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
