// Command heteromixd serves the heterogeneous-cluster energy model over
// HTTP as a long-lived daemon: predictions, configuration-space
// enumeration and Pareto frontiers, power-budget substitution series and
// dispatcher-queueing analysis, with result caching, Prometheus/expvar
// metrics and graceful shutdown. See the README "Serving" section for
// the endpoint catalog and example calls.
//
// Usage:
//
//	heteromixd [-addr :8080] [-cache n] [-table-cache n]
//	           [-max-concurrent n] [-timeout d] [-max-nodes n]
//	           [-max-generic-space n] [-max-batch-items n]
//	           [-noise s] [-seed n] [-cache-ttl d] [-drain-delay d]
//	           [-chaos spec] [-pprof]
//	           [-shard i/n] [-replicas url,url,...] [-route-key key]
//	           [-probe-interval d] [-suspect-after n] [-dead-after n]
//	           [-hedge-quantile q]
//	           [-refit-threshold e] [-max-fit-samples n]
//	           [-profile-snapshot file]
//	           [-preheat file] [-snapshot-interval d] [-peer-warm]
//	           [-cache-bytes n] [-table-cache-bytes n]
//	           [-stream-flush-bytes n] [-stream-flush-interval d]
//
// -shard makes this instance serve slice i/n of frontier-only generic
// enumerations, -replicas makes it a coordinator that fans sharded
// requests out across the listed base URLs, and -route-key ("workload"
// or "cluster") routes predict/batch traffic to each workload's
// consistent-hash owner. A coordinator probes its replicas' /readyz
// every -probe-interval, marks one suspect after -suspect-after
// consecutive failures and dead after -dead-after, fails shards over
// along the hash ring, and hedges slow shard requests at the
// -hedge-quantile of observed shard latency (0 disables hedging). See
// the README "Fleet mode" and "Fleet self-healing" sections.
//
// -preheat loads a binary cache snapshot (compiled kernel tables plus
// the hottest result-cache entries) before the listener opens, so the
// first requests after a restart serve warm; with -snapshot-interval
// the daemon also writes the snapshot back periodically and on
// shutdown. -peer-warm instead pulls the snapshot from a healthy
// -replicas sibling over GET /v1/snapshot. See the README "Cold start
// & preheat" section.
//
// The enumeration endpoints also serve streamed responses (NDJSON via
// Accept: application/x-ndjson or ?stream=1, SSE via
// GET /v1/enumerate-generic/stream) with incremental frontier deltas;
// -stream-flush-bytes and -stream-flush-interval set the chunk
// boundary policy. See the README "Streaming" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"heteromix/internal/buildinfo"
	"heteromix/internal/cliutil"
	"heteromix/internal/experiments"
	"heteromix/internal/resilience"
	"heteromix/internal/server"
	"heteromix/internal/shard"
)

// daemonConfig is everything the flags select; split from main so tests
// can build a serving instance without a flag set.
type daemonConfig struct {
	noise            float64
	seed             int64
	cache            int
	tableCache       int
	maxConcurrent    int
	maxNodes         int
	maxGenericSpace  uint64
	maxBatchItems    int
	timeout          time.Duration
	cacheTTL         time.Duration
	drainDelay       time.Duration
	chaosSpec        string
	pprof            bool
	shardSpec        string
	replicas         string
	routeKey         string
	probeInterval    time.Duration
	suspectAfter     int
	deadAfter        int
	hedgeQuantile    float64
	refitThreshold   float64
	maxFitSamples    int
	profileSnapshot  string
	preheat          string
	snapshotInterval time.Duration
	peerWarm         bool
	cacheBytes       int64
	tableCacheBytes  int64
	streamFlushBytes int
	streamFlushEvery time.Duration
}

func main() {
	var cfg daemonConfig
	addr := flag.String("addr", ":8080", "listen address")
	flag.IntVar(&cfg.cache, "cache", 4096, "result cache capacity in entries")
	flag.IntVar(&cfg.tableCache, "table-cache", 0, "compiled kernel-table cache capacity in entries (0 = default)")
	flag.IntVar(&cfg.maxBatchItems, "max-batch-items", 256, "largest item count one /v1/batch request may carry")
	flag.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	flag.IntVar(&cfg.maxConcurrent, "max-concurrent", 0, "max concurrent model requests (0 = 4x GOMAXPROCS)")
	flag.DurationVar(&cfg.timeout, "timeout", 15*time.Second, "per-request computation timeout")
	flag.IntVar(&cfg.maxNodes, "max-nodes", 128, "largest per-side node count a request may ask for")
	flag.Uint64Var(&cfg.maxGenericSpace, "max-generic-space", 2_000_000, "largest N-type configuration space /v1/enumerate-generic may walk after pruning")
	flag.Float64Var(&cfg.noise, "noise", 0.03, "measurement noise sigma for the model-fitting runs")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for the model-fitting pipeline")
	flag.DurationVar(&cfg.cacheTTL, "cache-ttl", 0, "enumerate result freshness bound (0 = never expires); expired entries serve marked degraded when the recompute fails")
	flag.DurationVar(&cfg.drainDelay, "drain-delay", 0, "how long /readyz answers 503 before the listener closes on shutdown")
	flag.StringVar(&cfg.chaosSpec, "chaos", "", `fault injection spec, e.g. "latency=0.2:5ms,error=0.05,panic=0.01,timeout=0.01,seed=1" (default: none)`)
	flag.StringVar(&cfg.shardSpec, "shard", "", `serve slice "i/n" of frontier-only generic enumerations (fleet replica mode)`)
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated replica base URLs; enables coordinator fan-out for sharded requests")
	flag.StringVar(&cfg.routeKey, "route-key", "", `consistent-hash routing of predict/batch across -replicas: "workload" or "cluster" (default: none)`)
	flag.DurationVar(&cfg.probeInterval, "probe-interval", 2*time.Second, "how often a coordinator probes each replica's /readyz")
	flag.IntVar(&cfg.suspectAfter, "suspect-after", 1, "consecutive probe failures before a replica is suspect")
	flag.IntVar(&cfg.deadAfter, "dead-after", 3, "consecutive probe failures before a replica is dead (unroutable until it recovers)")
	flag.Float64Var(&cfg.hedgeQuantile, "hedge-quantile", 0.9, "shard-latency quantile that sets the hedged-request delay (0 disables hedging)")
	flag.Float64Var(&cfg.refitThreshold, "refit-threshold", 0.10, "rolling mean relative prediction error above which /v1/fit samples trigger an automatic profile refit")
	flag.IntVar(&cfg.maxFitSamples, "max-fit-samples", 256, "calibration samples kept per (workload, node) pair")
	flag.StringVar(&cfg.profileSnapshot, "profile-snapshot", "", "file refit profiles persist to on every version bump and load from at startup")
	flag.StringVar(&cfg.preheat, "preheat", "", "cache snapshot file to load compiled tables and hot results from before the listener opens (also where -snapshot-interval writes)")
	flag.DurationVar(&cfg.snapshotInterval, "snapshot-interval", 0, "how often to persist the cache snapshot to the -preheat path, plus a final write on shutdown (0 = load-only)")
	flag.BoolVar(&cfg.peerWarm, "peer-warm", false, "pull a cache snapshot from a healthy -replicas sibling at startup and after recovering from dead")
	flag.Int64Var(&cfg.cacheBytes, "cache-bytes", 0, "result cache byte budget (0 = entries-only limit)")
	flag.Int64Var(&cfg.tableCacheBytes, "table-cache-bytes", 0, "compiled kernel-table cache byte budget (0 = entries-only limit)")
	flag.IntVar(&cfg.streamFlushBytes, "stream-flush-bytes", 8192, "streamed-response chunk boundary: flush to the client once this many encoded bytes accumulate")
	flag.DurationVar(&cfg.streamFlushEvery, "stream-flush-interval", 100*time.Millisecond, "longest a streamed row may wait unflushed regardless of chunk fill")
	cliutil.Parse(0)

	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heteromixd: %v\n", err)
		os.Exit(1)
	}
	if cfg.chaosSpec != "" {
		log.Printf("heteromixd: CHAOS INJECTION ENABLED: %s", cfg.chaosSpec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("heteromixd %s listening on %s", buildinfo.Get(), *addr)
	if err := srv.Run(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "heteromixd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("heteromixd: drained and stopped")
}

// newServer wires the experiment suite (the fitted models) into a
// serving instance.
func newServer(cfg daemonConfig) (*server.Server, error) {
	chaos, err := resilience.ParseChaosSpec(cfg.chaosSpec)
	if err != nil {
		return nil, err
	}
	var defaultShard shard.Shard
	if cfg.shardSpec != "" {
		defaultShard, err = shard.Parse(cfg.shardSpec)
		if err != nil {
			return nil, err
		}
	}
	var replicas []string
	if cfg.replicas != "" {
		for _, u := range strings.Split(cfg.replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicas = append(replicas, u)
			}
		}
	}
	suite := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: cfg.noise, Seed: cfg.seed})
	// Model seeds depend on build order, so warm the whole registry in
	// canonical order before serving: a restarted fleet replica must
	// rejoin computing the exact numbers its peers serve, not whatever
	// its first few requests would have lazily fit.
	if err := suite.WarmAllModels(); err != nil {
		return nil, err
	}
	return server.New(server.Options{
		Models:              suite,
		CacheEntries:        cfg.cache,
		TableCacheEntries:   cfg.tableCache,
		MaxConcurrent:       cfg.maxConcurrent,
		MaxNodes:            cfg.maxNodes,
		MaxGenericSpace:     cfg.maxGenericSpace,
		MaxBatchItems:       cfg.maxBatchItems,
		RequestTimeout:      cfg.timeout,
		CacheTTL:            cfg.cacheTTL,
		DrainDelay:          cfg.drainDelay,
		Chaos:               chaos,
		EnablePprof:         cfg.pprof,
		DefaultShard:        defaultShard,
		Replicas:            replicas,
		RouteKey:            cfg.routeKey,
		ProbeInterval:       cfg.probeInterval,
		SuspectAfter:        cfg.suspectAfter,
		DeadAfter:           cfg.deadAfter,
		HedgeQuantile:       cfg.hedgeQuantile,
		DisableHedge:        cfg.hedgeQuantile == 0,
		RefitThreshold:      cfg.refitThreshold,
		MaxFitSamples:       cfg.maxFitSamples,
		ProfileSnapshot:     cfg.profileSnapshot,
		SnapshotPath:        cfg.preheat,
		SnapshotInterval:    cfg.snapshotInterval,
		PeerWarm:            cfg.peerWarm,
		CacheMaxBytes:       cfg.cacheBytes,
		TableCacheMaxBytes:  cfg.tableCacheBytes,
		StreamFlushBytes:    cfg.streamFlushBytes,
		StreamFlushInterval: cfg.streamFlushEvery,
	})
}
