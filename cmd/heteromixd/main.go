// Command heteromixd serves the heterogeneous-cluster energy model over
// HTTP as a long-lived daemon: predictions, configuration-space
// enumeration and Pareto frontiers, power-budget substitution series and
// dispatcher-queueing analysis, with result caching, Prometheus/expvar
// metrics and graceful shutdown. See the README "Serving" section for
// the endpoint catalog and example calls.
//
// Usage:
//
//	heteromixd [-addr :8080] [-cache n] [-max-concurrent n]
//	           [-timeout d] [-max-nodes n] [-noise s] [-seed n]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"heteromix/internal/buildinfo"
	"heteromix/internal/cliutil"
	"heteromix/internal/experiments"
	"heteromix/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 4096, "result cache capacity in entries")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent model requests (0 = 4x GOMAXPROCS)")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request computation timeout")
	maxNodes := flag.Int("max-nodes", 128, "largest per-side node count a request may ask for")
	noise := flag.Float64("noise", 0.03, "measurement noise sigma for the model-fitting runs")
	seed := flag.Int64("seed", 1, "random seed for the model-fitting pipeline")
	cliutil.Parse(0)

	srv, err := newServer(*noise, *seed, *cache, *maxConcurrent, *maxNodes, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heteromixd: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("heteromixd %s listening on %s", buildinfo.Get(), *addr)
	if err := srv.Run(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "heteromixd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("heteromixd: drained and stopped")
}

// newServer wires the experiment suite (the fitted models) into a
// serving instance; split from main so tests can build one.
func newServer(noise float64, seed int64, cache, maxConcurrent, maxNodes int, timeout time.Duration) (*server.Server, error) {
	suite := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: noise, Seed: seed})
	return server.New(server.Options{
		Models:         suite,
		CacheEntries:   cache,
		MaxConcurrent:  maxConcurrent,
		MaxNodes:       maxNodes,
		RequestTimeout: timeout,
	})
}
