// Command paretoviz renders the paper's figures (2 through 10)
// as SVG documents or ASCII charts: the energy-deadline configuration
// spaces and Pareto frontiers (Figures 4-5), the 1 kW power-budget mix
// series (Figures 6-7), the constant-ratio scaling series (Figures 8-9)
// and the M/D/1 queueing analysis (Figure 10).
//
// Usage:
//
//	paretoviz -fig N [-o out.svg] [-noise s] [-seed n]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Without -o the ASCII rendering is printed to stdout. The profile flags
// write runtime/pprof profiles of the run for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"

	"heteromix/internal/cliutil"
	"heteromix/internal/experiments"
	"heteromix/internal/plot"
	"heteromix/internal/profiling"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to render (2-10)")
	out := flag.String("o", "", "write an SVG to this file instead of ASCII to stdout")
	width := flag.Int("w", 900, "SVG width in pixels (ASCII columns / 10)")
	height := flag.Int("h", 620, "SVG height in pixels (ASCII rows / 20)")
	noise := flag.Float64("noise", 0.03, "measurement noise sigma")
	seed := flag.Int64("seed", 1, "random seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	cliutil.Parse(0)

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paretoviz: %v\n", err)
		os.Exit(1)
	}
	// Profiles must be flushed on every exit path, so the work runs in a
	// helper and the exit code is applied after stopping them.
	code := render(*fig, *out, *width, *height, *noise, *seed)
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "paretoviz: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func render(fig int, out string, width, height int, noise float64, seed int64) int {
	s := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: noise, Seed: seed})
	chart, summary, err := buildChart(s, fig)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paretoviz: %v\n", err)
		return 1
	}
	fmt.Print(summary)
	if out == "" {
		ascii, err := chart.RenderASCII(width/10, height/20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paretoviz: %v\n", err)
			return 1
		}
		fmt.Println(ascii)
		return 0
	}
	svg, err := chart.RenderSVG(width, height)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paretoviz: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paretoviz: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", out)
	return 0
}

func buildChart(s *experiments.Suite, fig int) (*plot.Chart, string, error) {
	switch fig {
	case 2:
		r, err := s.Figure2()
		if err != nil {
			return nil, "", err
		}
		summary := fmt.Sprintf("Figure 2: max WPI/SPIcore spread %.2f%% across problem sizes\n", r.MaxRelSpread*100)
		return r.Chart(), summary, nil
	case 3:
		r, err := s.Figure3()
		if err != nil {
			return nil, "", err
		}
		summary := fmt.Sprintf("Figure 3: SPImem linear in frequency, min r^2 = %.3f\n", r.MinR2)
		return r.Chart(), summary, nil
	case 4, 5:
		workload := "ep"
		if fig == 5 {
			workload = "memcached"
		}
		r, err := s.FrontierAnalysis(workload, 10, 10, 0)
		if err != nil {
			return nil, "", err
		}
		return r.Chart(), r.FormatFrontier(), nil
	case 6:
		r, err := s.Figure6()
		return chartOf(r, err)
	case 7:
		r, err := s.Figure7()
		return chartOf(r, err)
	case 8:
		r, err := s.Figure8()
		return chartOf(r, err)
	case 9:
		r, err := s.Figure9()
		return chartOf(r, err)
	case 10:
		r, err := s.Figure10()
		if err != nil {
			return nil, "", err
		}
		return r.Chart(), r.Format(), nil
	default:
		return nil, "", fmt.Errorf("unknown figure %d (want 2-10)", fig)
	}
}

func chartOf(r experiments.MixSeriesResult, err error) (*plot.Chart, string, error) {
	if err != nil {
		return nil, "", err
	}
	return r.Chart(), r.Format(), nil
}
