package main

import (
	"strings"
	"testing"

	"heteromix/internal/experiments"
)

func testSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: 0.03, Seed: 1})
}

func TestBuildChartUnknownFigure(t *testing.T) {
	if _, _, err := buildChart(testSuite(), 1); err == nil {
		t.Error("figure 1 should error")
	}
	if _, _, err := buildChart(testSuite(), 11); err == nil {
		t.Error("figure 11 should error")
	}
}

func TestBuildChartFigure3(t *testing.T) {
	chart, summary, err := buildChart(testSuite(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "r^2") {
		t.Errorf("summary = %q", summary)
	}
	if _, err := chart.RenderSVG(640, 480); err != nil {
		t.Errorf("SVG render: %v", err)
	}
	if _, err := chart.RenderASCII(60, 15); err != nil {
		t.Errorf("ASCII render: %v", err)
	}
}

func TestBuildChartFigure6(t *testing.T) {
	chart, summary, err := buildChart(testSuite(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "ARM 0:AMD 16") {
		t.Errorf("summary missing series: %q", summary)
	}
	if len(chart.Series) != 7 {
		t.Errorf("chart has %d series, want 7", len(chart.Series))
	}
}
