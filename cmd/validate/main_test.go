package main

import (
	"testing"

	"heteromix/internal/experiments"
)

func TestRunUnknownTable(t *testing.T) {
	s := experiments.NewSuite(experiments.SuiteOptions{Seed: 1})
	if err := run(s, "7"); err == nil {
		t.Error("unknown table should error")
	}
}

func TestRunTable4(t *testing.T) {
	s := experiments.NewSuite(experiments.SuiteOptions{Seed: 1})
	if err := run(s, "4"); err != nil {
		t.Errorf("table 4: %v", err)
	}
}
