// Command validate reproduces the paper's validation tables: Table 3
// (single-node, every workload across all per-node configurations on one
// ARM and one AMD node) and Table 4 (clusters of eight ARM nodes with
// zero or one AMD node). Model predictions are compared against noisy
// runs on the simulated testbed, and the relative errors are summarized
// exactly as the paper reports them.
//
// Usage:
//
//	validate [-table 3|4|all] [-noise s] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"

	"heteromix/internal/cliutil"
	"heteromix/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 3, 4 or all")
	noise := flag.Float64("noise", 0.03, "measurement noise sigma")
	seed := flag.Int64("seed", 1, "random seed")
	cliutil.Parse(0)

	s := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: *noise, Seed: *seed})
	if err := run(s, *table); err != nil {
		fmt.Fprintf(os.Stderr, "validate: %v\n", err)
		os.Exit(1)
	}
}

func run(s *experiments.Suite, table string) error {
	want3 := table == "3" || table == "all"
	want4 := table == "4" || table == "all"
	if !want3 && !want4 {
		return fmt.Errorf("unknown table %q (want 3, 4 or all)", table)
	}
	if want3 {
		rows, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
		fmt.Println()
	}
	if want4 {
		rows, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
	}
	return nil
}
