package main

import (
	"os"
	"path/filepath"
	"testing"

	"heteromix/internal/calib"
	"heteromix/internal/hwsim"
	"heteromix/internal/perfcounter"
	"heteromix/internal/workloads"
)

// writeTrace collects a small campaign and writes it in the given format.
func writeTrace(t *testing.T, path string, asCSV bool) {
	t.Helper()
	w, err := workloads.ByName("ep")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := perfcounter.Campaign{
		Spec:        hwsim.ARMCortexA9(),
		Demand:      w.Demand,
		Units:       1e4,
		Repetitions: 1,
		Seed:        1,
	}.Collect()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if asCSV {
		err = tr.WriteCSV(f)
	} else {
		err = tr.Write(f)
	}
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFitsFromJSONAndCSV(t *testing.T) {
	dir := t.TempDir()
	for _, csvIn := range []bool{false, true} {
		in := filepath.Join(dir, "trace.json")
		if csvIn {
			in = filepath.Join(dir, "trace.csv")
		}
		writeTrace(t, in, csvIn)
		out := filepath.Join(dir, "profile.json")
		if err := run(in, csvIn, "ep", "arm-cortex-a9", out, -1, 0, 1); err != nil {
			t.Fatalf("csv=%v: %v", csvIn, err)
		}
		// The output is a versioned profile snapshot: it round-trips
		// through the calibration registry (hash verified on load) and
		// serves the fitted model.
		reg := calib.NewRegistry(nil, calib.Options{})
		if err := reg.LoadSnapshotFile(out); err != nil {
			t.Fatalf("csv=%v: loading profile: %v", csvIn, err)
		}
		if reg.Version("ep") != 1 {
			t.Errorf("loaded profile version = %d, want 1", reg.Version("ep"))
		}
		entries := reg.Overrides()
		if len(entries) != 1 || entries[0].Hash == "" {
			t.Fatalf("overrides = %+v, want one hashed entry", entries)
		}
		nm, err := reg.Model("ep", hwsim.ARMCortexA9())
		if err != nil {
			t.Fatal(err)
		}
		if nm.Profile.Workload != "ep" || nm.Spec.Name != "arm-cortex-a9" {
			t.Errorf("loaded model identity wrong: %s/%s", nm.Profile.Workload, nm.Spec.Name)
		}
	}
}

func TestRunErrorPaths(t *testing.T) {
	if err := run("", false, "ep", "arm-cortex-a9", "", -1, 0, 1); err == nil {
		t.Error("missing -in should error")
	}
	if err := run("/nonexistent", false, "ep", "arm-cortex-a9", "", -1, 0, 1); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "trace.json")
	writeTrace(t, in, false)
	if err := run(in, false, "fortran", "arm-cortex-a9", "", -1, 0, 1); err == nil {
		t.Error("workload not in trace should error")
	}
	if err := run(in, false, "ep", "pdp-11", "", -1, 0, 1); err == nil {
		t.Error("unknown node should error")
	}
	if err := run(in, true, "ep", "arm-cortex-a9", "", -1, 0, 1); err == nil {
		t.Error("JSON parsed as CSV should error")
	}
}
