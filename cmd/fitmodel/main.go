// Command fitmodel completes the offline half of the trace-driven
// pipeline: it reads a measurement trace produced by `characterize
// -trace` (JSON) or exported as CSV, fits the analytical model's workload
// profile for one (workload, node) pair, combines it with a power
// characterization, and writes the fitted model as a versioned profile
// snapshot — the same content-hashed format heteromixd's -profile-snapshot
// persistence uses, loadable through calib.Registry (and embedding the
// model.Load form verbatim). This is the workflow a deployment would
// follow: measure once on one node of each type, fit offline, ship the
// profile.
//
// Usage:
//
//	fitmodel -in trace.json [-csv] -workload ep -node arm-cortex-a9 [-o profile.json] [-rate r]
package main

import (
	"flag"
	"fmt"
	"os"

	"heteromix/internal/calib"
	"heteromix/internal/cliutil"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/power"
	"heteromix/internal/profile"
	"heteromix/internal/trace"
	"heteromix/internal/workloads"
)

func main() {
	in := flag.String("in", "", "input trace file (required)")
	csvIn := flag.Bool("csv", false, "input is CSV instead of JSON")
	workload := flag.String("workload", "", "workload name to fit (required)")
	node := flag.String("node", "", "node type to fit (required)")
	out := flag.String("o", "", "output model file (default: print a summary only)")
	rate := flag.Float64("rate", -1, "request arrival rate for lambda_I/O; -1 takes it from the workload registry")
	noise := flag.Float64("noise", 0.03, "power characterization noise sigma")
	seed := flag.Int64("seed", 1, "power characterization seed")
	cliutil.Parse(0)

	if err := run(*in, *csvIn, *workload, *node, *out, *rate, *noise, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "fitmodel: %v\n", err)
		os.Exit(1)
	}
}

func run(in string, csvIn bool, workload, node, out string, rate, noise float64, seed int64) error {
	if in == "" || workload == "" || node == "" {
		return fmt.Errorf("-in, -workload and -node are required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	if csvIn {
		tr, err = trace.ReadCSV(f)
	} else {
		tr, err = trace.Read(f)
	}
	if err != nil {
		return err
	}

	prof, err := profile.Fit(tr, workload, node)
	if err != nil {
		return err
	}
	if rate < 0 {
		if w, err := workloads.ByName(workload); err == nil {
			rate = w.Demand.RequestRate
		} else {
			rate = 0
		}
	}
	prof = prof.WithArrivalGap(rate)

	spec, err := hwsim.ByName(node)
	if err != nil {
		return err
	}
	chars, err := power.Characterize(spec, power.Options{NoiseSigma: noise, Seed: seed})
	if err != nil {
		return err
	}
	nm := model.NodeModel{Spec: spec, Profile: prof, Power: chars}
	if err := nm.Validate(); err != nil {
		return err
	}

	fmt.Printf("fitted %s on %s from %d records:\n", workload, node, len(tr.Records))
	fmt.Printf("  IPs=%.0f  WPI=%.3f (spread %.2f%%)  SPIcore=%.3f\n",
		prof.InstructionsPerUnit, prof.WPI, prof.WPISpread*100, prof.SPICore)
	fmt.Printf("  SPImem fits: %d core counts, min r^2=%.3f\n", len(prof.SPIMemByCores), prof.MinSPIMemR2())
	cfg, pred, err := nm.MostEfficientConfig()
	if err != nil {
		return err
	}
	fmt.Printf("  most efficient config: c%d@%v (%v per unit, %v avg)\n",
		cfg.Cores, cfg.Frequency, pred.Time, pred.AvgPower)

	if out != "" {
		hash, err := calib.HashModel(nm)
		if err != nil {
			return err
		}
		of, err := os.Create(out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := calib.WriteProfile(of, workload, node, nm, "fitmodel"); err != nil {
			return err
		}
		fmt.Printf("wrote %s (profile version 1, hash %s)\n", out, hash)
	}
	return nil
}
