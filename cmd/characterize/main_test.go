package main

import (
	"os"
	"path/filepath"
	"testing"

	"heteromix/internal/model"
	"heteromix/internal/trace"
)

func TestRunErrors(t *testing.T) {
	if err := run(9, false, "", "", "", 0, 1); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run(0, false, "", "", "", 0, 1); err == nil {
		t.Error("nothing-to-do should error")
	}
	if err := run(0, false, "fortran", "", "", 0, 1); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestRunFig3AndPower(t *testing.T) {
	if err := run(3, true, "", "", "", 0, 1); err != nil {
		t.Errorf("fig 3 + power: %v", err)
	}
}

func TestCharacterizeWorkloadWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	modelPrefix := filepath.Join(dir, "model")
	if err := run(0, false, "rsa2048", tracePath, modelPrefix, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The trace file parses and carries both node types.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]bool{}
	for _, r := range tr.Records {
		nodes[r.Node] = true
	}
	if !nodes["arm-cortex-a9"] || !nodes["amd-opteron-k10"] {
		t.Errorf("trace missing node types: %v", nodes)
	}
	// The persisted models load and validate.
	for _, node := range []string{"arm-cortex-a9", "amd-opteron-k10"} {
		mf, err := os.Open(modelPrefix + "-" + node + ".json")
		if err != nil {
			t.Fatal(err)
		}
		nm, err := model.Load(mf)
		mf.Close()
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		if nm.Profile.Workload != "rsa2048" {
			t.Errorf("%s: workload %q", node, nm.Profile.Workload)
		}
	}
}
