// Command characterize runs the paper's workload- and
// power-characterization procedures (§II-D, §III-B, §III-C):
//
//   - "-fig 2" measures WPI and SPIcore for EP across NAS problem
//     classes A, B and C on both node types (constancy hypothesis);
//   - "-fig 3" sweeps the stall micro-benchmark across core frequencies
//     and core counts and fits SPImem linearly against frequency;
//   - "-power" prints both node types' measured power characterizations
//     (P_CPU,act and P_CPU,stall per P-state, P_mem, P_I/O, P_idle);
//   - "-workload <name>" runs a full baseline campaign for one workload
//     on both node types and prints the fitted profile; with "-trace
//     FILE" the raw measurement trace is written as JSON for offline
//     model fitting (the trace-driven pipeline's interchange format).
//
// Usage:
//
//	characterize [-fig 2|3] [-power] [-workload name] [-trace file] [-noise s] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"heteromix/internal/cliutil"
	"heteromix/internal/experiments"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/perfcounter"
	"heteromix/internal/power"
	"heteromix/internal/profile"
	"heteromix/internal/trace"
	"heteromix/internal/workloads"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate figure 2 or 3")
	showPower := flag.Bool("power", false, "print power characterizations")
	workload := flag.String("workload", "", "characterize one workload end to end")
	traceOut := flag.String("trace", "", "write the raw measurement trace as JSON to this file")
	modelOut := flag.String("savemodel", "", "write fitted models as JSON to <prefix>-<node>.json")
	noise := flag.Float64("noise", 0.03, "measurement noise sigma")
	seed := flag.Int64("seed", 1, "random seed")
	cliutil.Parse(0)

	if err := run(*fig, *showPower, *workload, *traceOut, *modelOut, *noise, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
		os.Exit(1)
	}
}

func run(fig int, showPower bool, workload, traceOut, modelOut string, noise float64, seed int64) error {
	s := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: noise, Seed: seed})
	did := false
	switch fig {
	case 0:
	case 2:
		did = true
		r, err := s.Figure2()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 2: WPI and SPIcore across problem size (max spread %.2f%%)\n", r.MaxRelSpread*100)
		for _, p := range r.Points {
			fmt.Printf("  %-16s class %s (%.3g units): WPI=%.3f SPIcore=%.3f\n",
				p.Node, p.Class, p.Units, p.WPI, p.SPICore)
		}
	case 3:
		did = true
		r, err := s.Figure3()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 3: SPImem vs core frequency (min r^2 = %.3f)\n", r.MinR2)
		for _, series := range r.Series {
			fmt.Printf("  %-16s cores=%d: r^2=%.3f slope=%.3f\n", series.Node, series.Cores, series.R2, series.Slope)
			for i := range series.FreqGHz {
				fmt.Printf("    %.1f GHz -> SPImem %.3f\n", series.FreqGHz[i], series.SPIMem[i])
			}
		}
	default:
		return fmt.Errorf("unknown figure %d (want 2 or 3)", fig)
	}

	if showPower {
		did = true
		for _, spec := range []hwsim.NodeSpec{hwsim.AMDOpteronK10(), hwsim.ARMCortexA9()} {
			c, err := power.Characterize(spec, power.Options{NoiseSigma: noise, Seed: seed})
			if err != nil {
				return err
			}
			printCharacterization(c, spec)
		}
	}

	if workload != "" {
		did = true
		if err := characterizeWorkload(workload, traceOut, modelOut, noise, seed); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -fig, -power or -workload")
	}
	return nil
}

func printCharacterization(c power.Characterization, spec hwsim.NodeSpec) {
	fmt.Printf("%s power characterization:\n", c.Node)
	fmt.Printf("  idle: %v   mem active: %v   NIC active: %v\n", c.Idle, c.MemActive, c.NICActive)
	var fs []float64
	for f := range c.CoreActive {
		fs = append(fs, float64(f))
	}
	sort.Float64s(fs)
	for _, fv := range fs {
		f := spec.Frequencies[0]
		for _, have := range spec.Frequencies {
			if float64(have) == fv {
				f = have
			}
		}
		fmt.Printf("  %v: core active %v, core stall %v\n", f, c.CoreActiveAt(f), c.CoreStallAt(f))
	}
}

func characterizeWorkload(name, traceOut, modelOut string, noise float64, seed int64) error {
	w, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	full := &trace.Trace{}
	for _, spec := range []hwsim.NodeSpec{hwsim.AMDOpteronK10(), hwsim.ARMCortexA9()} {
		tr, err := perfcounter.Campaign{
			Spec:        spec,
			Demand:      w.Demand,
			Units:       w.ValidationUnits / 1000,
			Repetitions: 1,
			NoiseSigma:  noise,
			Seed:        seed,
		}.Collect()
		if err != nil {
			return err
		}
		full.Records = append(full.Records, tr.Records...)
		p, err := profile.Fit(tr, w.Name(), spec.Name)
		if err != nil {
			return err
		}
		p = p.WithArrivalGap(w.Demand.RequestRate)
		fmt.Printf("%s on %s:\n", w.Name(), spec.Name)
		fmt.Printf("  IPs=%.0f instructions/%s\n", p.InstructionsPerUnit, w.Demand.Unit)
		fmt.Printf("  WPI=%.3f (spread %.2f%%)  SPIcore=%.3f (spread %.2f%%)\n",
			p.WPI, p.WPISpread*100, p.SPICore, p.SPICoreSpread*100)
		fmt.Printf("  SPImem fits: min r^2=%.3f across %d core counts\n", p.MinSPIMemR2(), len(p.SPIMemByCores))
		if p.IOBytesPerUnit > 0 {
			fmt.Printf("  I/O: %v per %s, transfer %v per unit\n",
				p.IOBytesPerUnit, w.Demand.Unit, p.IOTransferPerUnit)
		}
		if modelOut != "" {
			nm, err := model.Build(spec, w, model.BuildOptions{NoiseSigma: noise, Seed: seed})
			if err != nil {
				return err
			}
			path := fmt.Sprintf("%s-%s.json", modelOut, spec.Name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := model.Save(f, nm); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  wrote fitted model to %s\n", path)
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := full.Write(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(full.Records), traceOut)
	}
	return nil
}
