// Package bench regenerates every table and figure of the paper as a
// benchmark, one per artifact. Each benchmark reports, besides the usual
// ns/op, custom metrics that carry the experiment's headline numbers
// (error percentages, energies, reductions), so that
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end and prints the measured
// analogues of its reported values. EXPERIMENTS.md records the
// paper-versus-measured comparison produced this way.
package bench

import (
	"sync"
	"testing"

	"heteromix/internal/experiments"
	"heteromix/internal/stats"
	"heteromix/internal/workloads"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// sharedSuite builds the models once; benchmarks exercise the analyses.
func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: 0.03, Seed: 1})
	})
	return suite
}

// BenchmarkTable3SingleNodeValidation regenerates Table 3: model-versus-
// testbed errors for all six workloads across every single-node
// configuration. Reported metrics: the worst mean time and energy error
// in percent (the paper's bound is 15%).
func BenchmarkTable3SingleNodeValidation(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	worstT, worstE := 0.0, 0.0
	for _, r := range rows {
		worstT = maxF(worstT, r.TimeErrAMD.Mean, r.TimeErrARM.Mean)
		worstE = maxF(worstE, r.EnergyErrAMD.Mean, r.EnergyErrARM.Mean)
	}
	b.ReportMetric(worstT, "worst-time-err-%")
	b.ReportMetric(worstE, "worst-energy-err-%")
}

// BenchmarkTable4ClusterValidation regenerates Table 4: cluster-level
// validation on 8 ARM + {0,1} AMD nodes.
func BenchmarkTable4ClusterValidation(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		worst = maxF(worst, r.TimeErr, r.EnergyErr)
	}
	b.ReportMetric(worst, "worst-err-%")
}

// BenchmarkTable5PPR regenerates Table 5: performance-to-power ratios at
// each node type's most energy-efficient configuration. Reported metric:
// EP's ARM PPR (paper: 6,048,057 random numbers per joule).
func BenchmarkTable5PPR(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Program == "ep" {
			b.ReportMetric(r.ARM, "ep-arm-ppr")
			b.ReportMetric(r.AMD, "ep-amd-ppr")
		}
	}
}

// BenchmarkFigure2WPIConstancy regenerates Figure 2: WPI and SPIcore
// across EP problem classes A, B, C. Reported metric: the maximum
// relative spread in percent (the paper's constancy hypothesis).
func BenchmarkFigure2WPIConstancy(b *testing.B) {
	s := sharedSuite()
	var r experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxRelSpread*100, "max-spread-%")
}

// BenchmarkFigure3SPImemRegression regenerates Figure 3: the SPImem
// linear fits over core frequency. Reported metric: the weakest r^2
// (paper: >= 0.94).
func BenchmarkFigure3SPImemRegression(b *testing.B) {
	s := sharedSuite()
	var r experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MinR2, "min-r2")
}

// BenchmarkFigure4ParetoEP regenerates Figure 4: the 36,380-point EP
// configuration space and its Pareto frontier. Reported metrics: sweet-
// region linearity and the frontier's energy bounds.
func BenchmarkFigure4ParetoEP(b *testing.B) {
	s := sharedSuite()
	var r experiments.FrontierResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Points)), "configs")
	b.ReportMetric(r.Sweet.LinearR2, "sweet-linear-r2")
	b.ReportMetric(r.Frontier[len(r.Frontier)-1].Energy, "min-energy-J")
}

// BenchmarkFigure5ParetoMemcached regenerates Figure 5 for memcached.
func BenchmarkFigure5ParetoMemcached(b *testing.B) {
	s := sharedSuite()
	var r experiments.FrontierResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Frontier)), "frontier-points")
	b.ReportMetric(r.Frontier[len(r.Frontier)-1].Energy, "min-energy-J")
}

// BenchmarkFigure6BudgetMixesMemcached regenerates Figure 6: the 1 kW
// budget mix series for memcached. Reported metric: the ARM-only pool's
// fastest deadline in ms (paper: ARM-only cannot meet deadlines below
// ~30 ms).
func BenchmarkFigure6BudgetMixesMemcached(b *testing.B) {
	s := sharedSuite()
	var r experiments.MixSeriesResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Series[len(r.Series)-1]
	b.ReportMetric(last.MinTime.Millis(), "arm-only-floor-ms")
	b.ReportMetric(float64(last.MinEnergy), "min-energy-J")
}

// BenchmarkFigure7BudgetMixesEP regenerates Figure 7 for EP.
func BenchmarkFigure7BudgetMixesEP(b *testing.B) {
	s := sharedSuite()
	var r experiments.MixSeriesResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	amdOnly, armOnly := r.Series[0], r.Series[len(r.Series)-1]
	b.ReportMetric(float64(amdOnly.MinEnergy), "amd-only-min-J")
	b.ReportMetric(float64(armOnly.MinEnergy), "arm-only-min-J")
}

// BenchmarkFigure8ScalingMemcached regenerates Figure 8: constant-ratio
// scaling for memcached. Reported metric: relative spread of the series'
// minimum energies (paper Observation 3: energy bounds unchanged).
func BenchmarkFigure8ScalingMemcached(b *testing.B) {
	benchScaling(b, "memcached")
}

// BenchmarkFigure9ScalingEP regenerates Figure 9 for EP.
func BenchmarkFigure9ScalingEP(b *testing.B) {
	benchScaling(b, "ep")
}

func benchScaling(b *testing.B, workload string) {
	s := sharedSuite()
	var r experiments.MixSeriesResult
	for i := 0; i < b.N; i++ {
		var err error
		if workload == "memcached" {
			r, err = s.Figure8()
		} else {
			r, err = s.Figure9()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	var energies []float64
	for _, mf := range r.Series {
		energies = append(energies, float64(mf.MinEnergy))
	}
	mean := stats.Mean(energies)
	spread := 0.0
	if mean > 0 {
		spread = stats.StdDev(energies) / mean * 100
	}
	b.ReportMetric(spread, "min-energy-spread-%")
	b.ReportMetric(r.Series[0].MinTime.Millis()/r.Series[len(r.Series)-1].MinTime.Millis(), "speedup-8x-pool")
}

// BenchmarkFigure10Queueing regenerates Figure 10: the M/D/1 queueing
// analysis on the 16 ARM + 14 AMD pool at utilizations 5/25/50%.
// Reported metric: the U=5% frontier's energy span (paper: savings span
// almost two orders of magnitude).
func BenchmarkFigure10Queueing(b *testing.B) {
	s := sharedSuite()
	var r experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	fr := r.Profiles[0].Frontier
	b.ReportMetric(fr[0].Energy/fr[len(fr)-1].Energy, "u5-energy-span-x")
	b.ReportMetric(float64(len(r.Profiles[0].Points)), "u5-configs")
}

// BenchmarkHeadlineReduction regenerates the paper's §VI headline: the
// maximum energy reduction of the 16 ARM + 14 AMD mix versus homogeneous
// AMD (paper: 58% for EP, 44% for memcached).
func BenchmarkHeadlineReduction(b *testing.B) {
	s := sharedSuite()
	var ep, mc experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		ep, err = s.Headline("ep")
		if err != nil {
			b.Fatal(err)
		}
		mc, err = s.Headline("memcached")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ep.MaxReduction, "ep-reduction-%")
	b.ReportMetric(mc.MaxReduction, "memcached-reduction-%")
	b.ReportMetric(ep.MaxReductionNoSwitch, "ep-reduction-noswitch-%")
	b.ReportMetric(mc.MaxReductionNoSwitch, "memcached-reduction-noswitch-%")
}

// BenchmarkWorkloadKernels measures the native kernels themselves: the
// real computations whose service demands the model captures.
func BenchmarkWorkloadKernels(b *testing.B) {
	sizes := map[string]int{
		"ep":           200000,
		"memcached":    20000,
		"x264":         2,
		"blackscholes": 20000,
		"julius":       4000,
		"rsa2048":      50,
	}
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			n := sizes[w.Name()]
			for i := 0; i < b.N; i++ {
				if _, err := w.Kernel.Run(n, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "units/op")
		})
	}
}

func maxF(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// BenchmarkSplitAblation quantifies the matching split's advantage over
// naive work divisions on a 16 ARM + 14 AMD cluster — the energy the
// paper's technique saves by eliminating idle waiting.
func BenchmarkSplitAblation(b *testing.B) {
	s := sharedSuite()
	var results []experiments.SplitResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = s.SplitAblation("memcached")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		if r.Policy.String() == "proportional-to-nodes" {
			b.ReportMetric(r.EnergyPenalty, "naive-energy-penalty-%")
		}
	}
}

// BenchmarkDVFSAblation measures how much of the EP Pareto frontier
// survives when per-node dimensions (frequency, cores) are frozen.
func BenchmarkDVFSAblation(b *testing.B) {
	s := sharedSuite()
	var r experiments.DVFSAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.DVFSAblation("ep", 6, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Full.SpacePoints), "full-space")
	b.ReportMetric(float64(r.NodesOnly.SpacePoints), "nodes-only-space")
}

// BenchmarkConfigSpacePruning measures the per-node domination pruning:
// the configuration-space reduction the paper leaves as future work.
func BenchmarkConfigSpacePruning(b *testing.B) {
	s := sharedSuite()
	var r experiments.PruningReport
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Pruning("memcached", 10, 10)
		if err != nil {
			b.Fatal(err)
		}
		if !r.FrontierIntact {
			b.Fatal("pruning altered the frontier")
		}
	}
	b.ReportMetric(r.Stats.Reduction(), "space-reduction-x")
}

// BenchmarkAdaptiveScheduling measures the adaptive-dispatcher extension:
// energy saved by per-job frontier reconfiguration for mixed-deadline
// traffic on the EP frontier.
func BenchmarkAdaptiveScheduling(b *testing.B) {
	s := sharedSuite()
	var r experiments.AdaptiveSchedulingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.AdaptiveScheduling("ep", 0.05, 0.5, 0.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Result.SavingsPercent, "adaptive-savings-%")
}

// BenchmarkSensitivity measures the calibration-robustness sweep: how
// often the Table 5 ordering survives a +/-10% perturbation of every
// demand constant.
func BenchmarkSensitivity(b *testing.B) {
	s := sharedSuite()
	var r experiments.SensitivityResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Sensitivity("ep", 0.10, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.PPROrderingHeld)/float64(r.Trials)*100, "ppr-ordering-held-%")
}

// BenchmarkEndToEndValidation measures the whole-stack check: analytic
// provisioning versus discrete-event dispatcher simulation.
func BenchmarkEndToEndValidation(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.EndToEndRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.EndToEndValidation(0.25, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		worst = maxF(worst, r.ResponseErr, r.EnergyErr)
	}
	b.ReportMetric(worst, "worst-err-%")
}
