// Tri-cluster extends the paper's two-type analysis to three node types,
// exercising the model's claim of generality ("a generic mix of
// heterogeneous nodes"): the paper's ARM Cortex-A9 (slow, extremely
// efficient) and AMD Opteron K10 (fast, power-hungry) plus an ARM
// Cortex-A15 that sits between them.
//
// For the compute-bound EP workload the example prunes each type to its
// domination-surviving per-node configurations, streams the reduced
// space through the online Pareto frontier (never materializing the
// full space), and shows which types the optimizer picks as the
// deadline tightens — the A15 earns a place on the frontier exactly in
// the deadline band where A9s are too slow and K10s too costly.
//
// Run with:
//
//	go run ./examples/tri-cluster
package main

import (
	"fmt"
	"log"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/pareto"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func main() {
	ep, err := workloads.ByName("ep")
	if err != nil {
		log.Fatal(err)
	}
	specs := []hwsim.NodeSpec{hwsim.ARMCortexA9(), hwsim.ARMCortexA15(), hwsim.AMDOpteronK10()}
	names := []string{"a9", "a15", "k10"}

	var types []cluster.GroupType
	for i, spec := range specs {
		nm, err := model.Build(spec, ep, model.BuildOptions{NoiseSigma: 0.03, Seed: int64(41 + i)})
		if err != nil {
			log.Fatal(err)
		}
		ppr, cfg, err := nm.PPR()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s best-efficiency config c%d@%v: %.3g random numbers per joule\n",
			names[i], cfg.Cores, cfg.Frequency, ppr)
		// The low-power enclosures (both ARM types) hang off switches;
		// the AMD servers have on-board GbE counted in their own draw.
		types = append(types, cluster.GroupType{
			Model:       nm,
			MaxNodes:    4,
			NeedsSwitch: spec.Name != "amd-opteron-k10",
		})
	}
	fmt.Println()

	const job = 50e6
	// Domination pruning drops per-node configurations that are no faster
	// and no cheaper than another; the cluster frontier is provably
	// unchanged while the walked space shrinks several-fold.
	fullSize := cluster.GenericSpaceSize(types)
	pruned, err := cluster.PruneGroupTypes(types)
	if err != nil {
		log.Fatal(err)
	}
	points, frontier, err := cluster.GenericFrontierOf(pruned, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three-type space: %d configurations (%d after pruning), %d on the frontier\n\n",
		fullSize, cluster.GenericSpaceSize(pruned), len(frontier))

	fmt.Printf("%-12s %-24s %10s %10s\n", "deadline", "mix on frontier", "time", "energy")
	for _, deadlineMs := range []float64{60, 100, 150, 250, 400, 800} {
		te, ok := pareto.EnergyAtDeadline(frontier, deadlineMs/1e3)
		if !ok {
			fmt.Printf("%-12s infeasible\n", fmt.Sprintf("%.0f ms", deadlineMs))
			continue
		}
		p := points[te.Index]
		fmt.Printf("%-12s %-24s %10v %10v\n",
			fmt.Sprintf("%.0f ms", deadlineMs), p.Label(names),
			p.Time, units.Joule(te.Energy))
	}

	// Which types appear anywhere on the frontier?
	used := make([]bool, len(types))
	for _, te := range frontier {
		for i, n := range points[te.Index].Counts {
			if n > 0 {
				used[i] = true
			}
		}
	}
	fmt.Print("\ntypes appearing on the Pareto frontier:")
	for i, u := range used {
		if u {
			fmt.Printf(" %s", names[i])
		}
	}
	fmt.Println()
}
