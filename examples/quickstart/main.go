// Quickstart walks the full heteromix pipeline on one workload:
//
//  1. run the EP kernel natively (the actual NAS-style computation),
//  2. build the trace-driven model for EP on both node types
//     (baseline measurement campaign -> profile fit -> power
//     characterization),
//  3. predict execution time and energy for a few configurations and
//     compare against the simulated testbed,
//  4. find the energy-deadline Pareto frontier of a small heterogeneous
//     cluster and pick the cheapest configuration that meets a deadline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/pareto"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func main() {
	// 1. The workload is real code: generate 10 million random numbers
	// and tally Gaussian deviates, NAS EP style.
	ep, err := workloads.ByName("ep")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ep.Kernel.Run(10_000_000, 271828183)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EP kernel: %s\n\n", res.Detail)

	// 2. Build the fitted models: measurement campaign on the simulated
	// ARM Cortex-A9 and AMD Opteron K10 testbeds, then profile fitting
	// and power characterization.
	arm, err := model.Build(hwsim.ARMCortexA9(), ep, model.BuildOptions{NoiseSigma: 0.03, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	amd, err := model.Build(hwsim.AMDOpteronK10(), ep, model.BuildOptions{NoiseSigma: 0.03, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted profiles: ARM IPs=%.0f WPI=%.2f | AMD IPs=%.0f WPI=%.2f\n\n",
		arm.Profile.InstructionsPerUnit, arm.Profile.WPI,
		amd.Profile.InstructionsPerUnit, amd.Profile.WPI)

	// 3. Predict one node's behaviour and check it against the testbed.
	const job = 50e6 // the paper's analysis job: 50 million random numbers
	cfg := hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}
	pred, err := arm.Predict(cfg, job)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := hwsim.Run(hwsim.ARMCortexA9(), cfg, ep.Demand, job, hwsim.Options{Seed: 7, NoiseSigma: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one ARM node, 4 cores @ 1.4 GHz, %g random numbers:\n", job)
	fmt.Printf("  model:    T=%v  E=%v  (%v avg)\n", pred.Time, pred.Energy, pred.AvgPower)
	fmt.Printf("  measured: T=%v  E=%v\n\n", meas.Record.Elapsed, meas.Record.Energy)

	// 4. Mix and match: enumerate a 4 ARM x 2 AMD space, derive the
	// Pareto frontier, and answer "cheapest way to finish in 400 ms".
	space := cluster.Space{ARM: arm, AMD: amd}
	points, err := space.Enumerate(4, 2, job)
	if err != nil {
		log.Fatal(err)
	}
	tes := make([]pareto.TE, len(points))
	for i, p := range points {
		tes[i] = pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i}
	}
	frontier, err := pareto.Frontier(tes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster space: %d configurations, %d on the Pareto frontier\n",
		len(points), len(frontier))

	deadline := 0.4 // seconds
	te, ok := pareto.EnergyAtDeadline(frontier, deadline)
	if !ok {
		log.Fatalf("no configuration meets %vs", deadline)
	}
	best := points[te.Index]
	fmt.Printf("cheapest configuration finishing within %v:\n", units.Seconds(deadline))
	fmt.Printf("  %s\n", best.Config)
	fmt.Printf("  T=%v E=%v, %.0f%% of the work on ARM nodes\n",
		best.Time, best.Energy, best.WorkARM*100)
}
