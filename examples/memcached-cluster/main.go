// Memcached-cluster sizes a heterogeneous key-value serving tier.
//
// The example first exercises the real sharded-LRU store under a
// memslap-like workload (uniform keys, fixed 1 KiB items, 9:1 GET:SET),
// then uses the fitted model to answer a capacity-planning question the
// paper's §IV poses: for a job of 50,000 requests and a family of
// service-time deadlines, which mix of 100 Mbps ARM nodes and 1 Gbps AMD
// nodes serves it with the least energy?
//
// Because memcached is network-bound, the answer is shaped by NIC
// bandwidth rather than CPU speed: ARM-only tiers are the most efficient
// but cannot beat ~32 ms for this job size, so tight deadlines force
// high-bandwidth AMD nodes into the mix — the paper's "mix and match"
// effect in its purest form.
//
// Run with:
//
//	go run ./examples/memcached-cluster
package main

import (
	"fmt"
	"log"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/pareto"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func main() {
	mc, err := workloads.ByName("memcached")
	if err != nil {
		log.Fatal(err)
	}

	// Drive the actual store implementation for a moment: this is the
	// code whose service demand the model captures.
	res, err := mc.Kernel.Run(100_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store smoke test (100k memslap-like ops): %s\n\n", res.Detail)

	// Fit the model on both node types.
	arm, err := model.Build(hwsim.ARMCortexA9(), mc, model.BuildOptions{NoiseSigma: 0.03, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	amd, err := model.Build(hwsim.AMDOpteronK10(), mc, model.BuildOptions{NoiseSigma: 0.03, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted I/O demand: %v per request on ARM (transfer %v), %v on AMD (transfer %v)\n\n",
		arm.Profile.IOBytesPerUnit, arm.Profile.IOTransferPerUnit,
		amd.Profile.IOBytesPerUnit, amd.Profile.IOTransferPerUnit)

	// Enumerate a 16 ARM x 8 AMD pool for the paper's 50k-request job.
	const job = 50_000
	space := cluster.Space{ARM: arm, AMD: amd}
	points, err := space.Enumerate(16, 8, job)
	if err != nil {
		log.Fatal(err)
	}
	tes := make([]pareto.TE, len(points))
	for i, p := range points {
		tes[i] = pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i}
	}
	frontier, err := pareto.Frontier(tes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-44s %10s %10s %8s\n", "deadline", "cheapest configuration", "time", "energy", "on ARM")
	for _, deadlineMs := range []float64{30, 40, 60, 100, 200, 400} {
		te, ok := pareto.EnergyAtDeadline(frontier, deadlineMs/1e3)
		if !ok {
			fmt.Printf("%-12s infeasible for this pool\n", fmt.Sprintf("%.0f ms", deadlineMs))
			continue
		}
		p := points[te.Index]
		fmt.Printf("%-12s %-44s %10v %10v %7.0f%%\n",
			fmt.Sprintf("%.0f ms", deadlineMs), p.Config.String(),
			p.Time, p.Energy, p.WorkARM*100)
	}

	// The bandwidth floor: what is the fastest an ARM-only tier can go?
	armOnly, err := space.Evaluate(cluster.Configuration{
		ARM: cluster.TypeConfig{Nodes: 16, Config: hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}},
	}, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nARM-only floor: 16 nodes x 100 Mbps serve the job in %v — tighter deadlines need AMD bandwidth\n",
		armOnly.Time)
}
