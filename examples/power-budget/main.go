// Power-budget reproduces the paper's §IV-C decision problem as a
// planning tool: a datacenter rack has a fixed peak-power budget (1 kW
// here), and the operator chooses how many 60 W AMD nodes to replace
// with 5 W ARM nodes at the 8:1 substitution ratio (8 ARM plus their
// share of a 20 W switch draw exactly one AMD's peak).
//
// For a compute-bound workload (EP) the example prints, for each mix in
// the budget series, the fastest achievable deadline and the minimum
// job energy, then recommends the mix for a target deadline.
//
// Run with:
//
//	go run ./examples/power-budget
package main

import (
	"fmt"
	"log"

	"heteromix/internal/budget"
	"heteromix/internal/cluster"
	"heteromix/internal/experiments"
	"heteromix/internal/hwsim"
	"heteromix/internal/units"
)

func main() {
	arm, amd := hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()
	const budgetW = 1000

	ratio := budget.SubstitutionRatio(arm, amd)
	fmt.Printf("substitution ratio: %d ARM per AMD (AMD peak %v, ARM peak %v + %v switch per %d nodes)\n\n",
		ratio, amd.PeakPower(), arm.PeakPower(), cluster.SwitchPower, cluster.ARMPortsPerSwitch)

	mixes, err := budget.ConstantBudgetMixes(arm, amd, budgetW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d mixes fit the %d W budget, all drawing the same peak:\n", len(mixes), budgetW)
	for _, m := range mixes {
		fmt.Printf("  %-16s peak %v\n", m, budget.PeakPower(m, arm, amd))
	}
	fmt.Println()

	// Evaluate the paper's plotted subset on EP.
	suite := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: 0.03, Seed: 21})
	series, err := suite.MixSeries("ep", budget.PaperBudgetSeries(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(series.Format())

	// Recommend the most ARM-heavy mix that still meets the deadline.
	for _, deadline := range []units.Seconds{0.020, 0.050, 0.200} {
		best := -1
		var bestE units.Joule
		for i, mf := range series.Series {
			if e, ok := mf.EnergyAt(deadline); ok {
				if best == -1 || e < bestE {
					best, bestE = i, e
				}
			}
		}
		if best == -1 {
			fmt.Printf("\ndeadline %v: no mix in the budget can meet it\n", deadline)
			continue
		}
		mf := series.Series[best]
		fmt.Printf("\ndeadline %v: use %s (%v per job; pool peak stays within %d W)\n",
			deadline, mf.Mix, bestE, budgetW)
	}
}
