// Queueing-delay provisions a heterogeneous cluster for a stream of jobs
// rather than a single one, following the paper's §IV-E: jobs arrive as
// a Poisson process, queue at a dispatcher, and each is serviced by the
// cluster with the deterministic time the mix-and-match split produces
// (an M/D/1 system).
//
// Given a response-time SLO and an arrival rate, the example searches a
// 16 ARM + 14 AMD pool for the configuration (node subset + per-node
// settings) that meets the SLO at the lowest energy per hour, and shows
// how the answer shifts as load grows: light load favours small ARM-only
// subsets, heavy load forces high-bandwidth AMD nodes in, and the energy
// bill jumps when the first 45 W-idle AMD node becomes unavoidable.
//
// Run with:
//
//	go run ./examples/queueing-delay
package main

import (
	"fmt"
	"log"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/queueing"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func main() {
	mc, err := workloads.ByName("memcached")
	if err != nil {
		log.Fatal(err)
	}
	arm, err := model.Build(hwsim.ARMCortexA9(), mc, model.BuildOptions{NoiseSigma: 0.03, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	amd, err := model.Build(hwsim.AMDOpteronK10(), mc, model.BuildOptions{NoiseSigma: 0.03, Seed: 32})
	if err != nil {
		log.Fatal(err)
	}

	// §IV-E accounting: node energy only, unused nodes off.
	space := cluster.Space{ARM: arm, AMD: amd, NoSwitchEnergy: true}
	const job = 50_000 // requests per job
	points, err := space.Enumerate(16, 14, job)
	if err != nil {
		log.Fatal(err)
	}

	const slo = 0.250 // 250 ms mean response SLO
	hour := units.Seconds(3600)

	fmt.Printf("SLO: %v mean response, jobs of %d requests\n\n", units.Seconds(slo), job)
	fmt.Printf("%-12s %-46s %12s %12s %12s\n",
		"arrival", "best configuration", "response", "rho", "energy/hour")
	for _, lambda := range []float64{0.5, 1, 2, 4, 8, 16} {
		bestEnergy := units.Joule(0)
		var bestCfg cluster.Configuration
		var bestQ queueing.MD1
		found := false
		for _, p := range points {
			q := queueing.MD1{ArrivalRate: lambda, ServiceTime: p.Time}
			if q.Validate() != nil {
				continue // unstable at this load
			}
			if float64(q.MeanResponse()) > slo {
				continue // misses the SLO
			}
			idle := units.Watt(float64(arm.Power.Idle)*float64(p.Config.ARM.Nodes) +
				float64(amd.Power.Idle)*float64(p.Config.AMD.Nodes))
			e, err := q.EnergyOverWindow(hour, p.Energy, idle)
			if err != nil {
				continue
			}
			if !found || e < bestEnergy {
				found = true
				bestEnergy, bestCfg, bestQ = e, p.Config, q
			}
		}
		label := fmt.Sprintf("%.1f jobs/s", lambda)
		if !found {
			fmt.Printf("%-12s no configuration meets the SLO at this load\n", label)
			continue
		}
		fmt.Printf("%-12s %-46s %12v %12.2f %11.0fJ\n",
			label, bestCfg.String(), bestQ.MeanResponse(), bestQ.Utilization(), float64(bestEnergy))
	}

	fmt.Println("\nNote how rising load pulls 1 Gbps AMD nodes into the tier and multiplies the hourly energy —")
	fmt.Println("the paper's Observation 4: mix-and-match savings are amplified at higher cluster utilization.")
}
