// Wattmeter demonstrates the simulated power-meter instrumentation: it
// attaches a trace recorder to runs of two contrasting workloads on the
// ARM node and plots the resulting power-over-time logs — the kind of
// Yokogawa WT210 chart the paper's authors worked from.
//
// The contrast makes the node's power anatomy visible: the CPU-bound EP
// run holds the node near its peak draw for the whole job, while the
// I/O-bound memcached run shows the NIC-paced draw barely above idle —
// the per-component behaviour behind the paper's energy model.
//
// Run with:
//
//	go run ./examples/wattmeter
package main

import (
	"fmt"
	"log"

	"heteromix/internal/hwsim"
	"heteromix/internal/plot"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func main() {
	arm := hwsim.ARMCortexA9()
	cfg := hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}

	chart := &plot.Chart{
		Title:  "Simulated wattmeter: ARM Cortex-A9 under two workloads",
		XLabel: "time [fraction of run]",
		YLabel: "power [W]",
	}

	for _, tc := range []struct {
		workload string
		unitsW   float64
	}{
		{"ep", 2e6},
		{"memcached", 2000},
	} {
		w, err := workloads.ByName(tc.workload)
		if err != nil {
			log.Fatal(err)
		}
		m, err := hwsim.Run(arm, cfg, w.Demand, tc.unitsW, hwsim.Options{
			Seed:             7,
			NoiseSigma:       0.02,
			RecordPowerTrace: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Resample to a fixed-rate meter log and normalize time so the
		// two runs overlay.
		samples := hwsim.SampleTrace(m.PowerTrace, m.Record.Elapsed, m.Record.Elapsed/60)
		var xs, ys []float64
		for _, s := range samples {
			xs = append(xs, float64(s.At)/float64(m.Record.Elapsed))
			ys = append(ys, float64(s.Power))
		}
		chart.Add(tc.workload, xs, ys)

		integral := hwsim.IntegrateTrace(m.PowerTrace, m.Record.Elapsed)
		fmt.Printf("%-10s elapsed %8v  metered energy %8v  trace integral %8v  peak %v\n",
			tc.workload, m.Record.Elapsed, m.Record.Energy, integral,
			hwsim.PeakPowerOf(m.PowerTrace))
	}
	fmt.Printf("node envelope: idle %v, peak %v\n\n", arm.IdlePower(), arm.PeakPower())

	ascii, err := chart.RenderASCII(72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ascii)
}
