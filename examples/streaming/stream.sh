#!/bin/sh
# Consume heteromixd's streaming enumeration endpoints with plain curl.
#
# Start a daemon first:
#
#	go run ./cmd/heteromixd -addr :8080
#
# then run:
#
#	sh examples/streaming/stream.sh [http://localhost:8080]
#
# The script walks the four consumer shapes of the streaming wire
# protocol (see README "Streaming"):
#
#  1. NDJSON via content negotiation: the tri-cluster frontier arrives
#     one row per line as the walk emits it.
#  2. The same stream gzip-compressed.
#  3. Server-Sent Events via GET, for EventSource-style consumers.
#  4. Frontier deltas: a full stream registers the predecessor, a
#     bounds-only re-query ships just the {"op":"add"|"del"} records.
set -e

BASE="${1:-http://localhost:8080}"

# The tri-cluster space from the paper's third-node-type extension:
# ARM Cortex-A9 and A15 enclosures (8 nodes per 20 W switch) plus AMD
# Opteron K10 nodes, frontier only.
SPEC='{"workload":"ep","types":[
  {"node":"arm-cortex-a9","max_nodes":4,"needs_switch":true},
  {"node":"arm-cortex-a15","max_nodes":4,"needs_switch":true},
  {"node":"amd-opteron-k10","max_nodes":4}],"frontier_only":true}'

echo "== 1. NDJSON stream (Accept: application/x-ndjson) =="
echo "   head record, then one frontier point per line, then a trailer:"
curl -sS -X POST "$BASE/v1/enumerate-generic" \
	-H 'Accept: application/x-ndjson' \
	-d "$SPEC" | head -5
echo "   ..."
echo

echo "== 2. The same stream, gzip on the wire =="
curl -sS --compressed -X POST "$BASE/v1/enumerate-generic?stream=1" \
	-d "$SPEC" | tail -1
echo

echo "== 3. Server-Sent Events (GET, query-parameter spelling) =="
curl -sS "$BASE/v1/enumerate-generic/stream?workload=ep&types=arm-cortex-a9:4:switch,arm-cortex-a15:4:switch,amd-opteron-k10:4&frontier_only=1" \
	| head -8
echo "   ..."
echo

echo "== 4. Frontier deltas =="
DELTA_SPEC=$(printf '%s' "$SPEC" | sed 's/"frontier_only":true/"frontier_only":true,"delta":true/')
echo "   first delta request streams the full frontier (mode: full)"
echo "   and registers the predecessor:"
curl -sS -X POST "$BASE/v1/enumerate-generic?stream=1" -d "$DELTA_SPEC" | head -1
echo "   re-querying the identical spec ships zero ops:"
curl -sS -X POST "$BASE/v1/enumerate-generic?stream=1" -d "$DELTA_SPEC" | sed -n '1p;$p'
echo "   shrinking a bound ships only the rows that left/entered the"
echo "   frontier ({\"op\":\"del\"} / {\"op\":\"add\"} records):"
SHRUNK=$(printf '%s' "$DELTA_SPEC" | sed 's/"arm-cortex-a15","max_nodes":4,"needs_switch":true/"arm-cortex-a15","max_nodes":2,"needs_switch":true/')
curl -sS -X POST "$BASE/v1/enumerate-generic?stream=1" -d "$SHRUNK" | sed -n '1p;2p;$p'
echo "   (head says mode: delta; the trailer counts adds/dels)"
