# Build, test and benchmark entry points. `make ci` is the full gate:
# vet + build + race-enabled tests + a short enumeration benchmark to
# catch performance regressions in the hot path.

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short fixed-iteration run of the enumeration benchmarks: fast enough
# for CI, long enough to expose gross regressions (the kernel-table path
# runs the 10x10 space in ~1.6 ms; the old per-point path took ~106 ms).
bench:
	$(GO) test ./internal/cluster -run '^$$' \
		-bench 'BenchmarkEnumerate10x10|BenchmarkEnumerateStreaming10x10|BenchmarkEnumerateParallel10x10' \
		-benchmem -benchtime=100x

ci: vet build race bench
