# Build, test and benchmark entry points. `make ci` is the full gate:
# vet + build + race-enabled tests + short fixed-iteration benchmarks to
# catch performance regressions in the hot paths (enumeration kernels
# and the daemon's cached predict path).

GO ?= go

# Binaries are stamped with the version (latest tag, falling back to
# "dev") and commit via internal/buildinfo; `heteromixd -version` and
# GET /healthz report them.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
LDFLAGS  = -X heteromix/internal/buildinfo.Version=$(VERSION) \
           -X heteromix/internal/buildinfo.Commit=$(COMMIT)

.PHONY: all build vet test race server-race fleet-race calib-race fleet-heal chaos stream-race bench bench-generic bench-server bench-batch bench-fleet bench-fit bench-preheat bench-stream ci

all: ci

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-enabled run of just the serving layer, where all the deliberate
# concurrency lives (sharded LRU, singleflight, limiter, shutdown).
server-race:
	$(GO) test -race -count=1 ./internal/server ./internal/servercache ./internal/metrics

# The fleet scatter-gather layer under the race detector: Feistel
# permutations, shard walkers, coordinator fan-out/merge/caching, the
# shard-down degraded path and consistent-hash routing all run
# concurrently by design.
fleet-race:
	$(GO) test -race -count=1 -run 'Fleet|Shard|Route|Ring|Feistel|Permutation' \
		./internal/server ./internal/shard ./internal/cluster ./internal/pareto

# The online-calibration subsystem under the race detector: concurrent
# /v1/fit ingests, drift-triggered refits, version bumps and the cache
# sweeps they fire all race against warm serving traffic by design.
calib-race:
	$(GO) test -race -count=1 -run 'Calib|Fit|Profile|Drift|Refit|Snapshot|Invalidat|Bump|Degenerate' \
		./internal/calib ./internal/server ./internal/stats ./cmd/fitmodel ./cmd/heteromixd

# The self-healing layer under the race detector: the replica prober's
# state machine, kill/revive soaks with failover and bit-identical
# merges, hedged fan-out (including loser cancellation and goroutine
# accounting), deadline propagation and the breaker's half-open races
# all run concurrently by design.
fleet-heal:
	$(GO) test -race -count=1 \
		-run 'Heal|Failover|KillRevive|Hedge|Deadline|Replica|Prober|Probe|Breaker|Successor' \
		./internal/server ./internal/fleethealth ./internal/resilience ./internal/shard

# The server suite again, but with latency-only chaos injected into
# every test server (HETEROMIX_CHAOS is parsed by newTestServer) and the
# race detector on: every functional property must hold while requests
# are randomly delayed. The soak test layers errors/panics on top.
chaos:
	HETEROMIX_CHAOS="latency=0.3:2ms,seed=1" $(GO) test -race -count=1 ./internal/server

# The streaming wire layer under the race detector: pooled chunk
# encoders, flush-boundary backpressure, gzip writer pooling, the delta
# predecessor cache and the disconnect-shedding soak (clients hanging up
# mid-stream must cancel the walk, leak nothing and never feed the
# breaker) all exercise shared pools concurrently by design.
stream-race:
	$(GO) test -race -count=1 \
		-run 'Stream|NDJSON|SSE|Delta|Diff|JoinSplit|Gzip|Disconnect|Encode|Writer|Append' \
		./internal/stream ./internal/stream/delta ./internal/server

# A short fixed-iteration run of the enumeration benchmarks: fast enough
# for CI, long enough to expose gross regressions (the kernel-table path
# runs the 10x10 space in ~1.6 ms; the old per-point path took ~106 ms).
bench:
	$(GO) test ./internal/cluster -run '^$$' \
		-bench 'BenchmarkEnumerate10x10|BenchmarkEnumerateStreaming10x10|BenchmarkEnumerateParallel10x10' \
		-benchmem -benchtime=100x

# The generic N-type enumeration paths on the tri-cluster space
# (384,344 points): serial materialization, domination-pruned, streaming
# frontier, and the production pruned+parallel+frontier path that must
# stay ≥20× under the seed serial numbers (see README Performance).
bench-generic:
	$(GO) test ./internal/cluster -run '^$$' \
		-bench 'BenchmarkEnumerateGroups(Serial|Pruned|Parallel|Frontier)' \
		-benchmem -benchtime=3x

# Throughput gate for the daemon's cached predict path (~0.8 µs and
# 3 allocs/op warm vs ~34 µs cold; see README Performance).
bench-server:
	$(GO) test ./internal/server -run '^$$' \
		-bench 'BenchmarkServePredictCached|BenchmarkServePredictCold' \
		-benchmem -benchtime=1000x

# Amortization gate for /v1/batch and the compiled-table LRU: one warm
# 64-item batch must stay ≥5x cheaper than 64 sequential /v1/predict
# round trips, and a warm-table generic enumeration must beat the
# cold-table build. Baselines recorded in BENCH_serving.json.
bench-batch:
	$(GO) test ./internal/server -run '^$$' \
		-bench 'Benchmark(Batch64WarmPredicts|Sequential64WarmPredicts|GenericColdTable|GenericWarmTable)' \
		-benchmem -benchtime=1000x

# Fleet-mode scatter-gather: the ≥3x cold-speedup gate (enforced on
# hosts with ≥4 CPUs; it skips below that, where the four shard walks
# cannot run in parallel) plus fixed-iteration fan-out benchmarks,
# including the slow-replica pair whose hedged/no-hedge gap is the
# tail-latency win hedging buys. Baselines in BENCH_serving.json.
bench-fleet:
	HETEROMIX_FLEET_GATE=1 $(GO) test ./internal/server -count=1 \
		-run 'TestFleetColdSpeedupGate' -v
	$(GO) test ./internal/server -run '^$$' \
		-bench 'BenchmarkFleet(Enumerate(1Shard|4Shards)|SlowReplica(Hedged|NoHedge))' \
		-benchmem -benchtime=3x

# Calibration gates: refit latency through the HTTP handler (the full
# validate + drift + least-squares + bump + sweep loop) and the cost a
# profile bump extracts from the first warm predict after it, read
# against the steady-state warm baseline. Baselines in
# BENCH_serving.json.
bench-fit:
	$(GO) test ./internal/server -run '^$$' \
		-bench 'BenchmarkFitRefit|BenchmarkWarmPredict(SteadyState|AfterBump)' \
		-benchmem -benchtime=200x

# Cold-start elimination gates: a -preheat restart must reach its first
# answers (one predict plus the tri-cluster frontier walk) ≥4x faster
# than a no-snapshot restart, the preheated first predict must beat the
# cold one ≥4x and land within 3x of a steady-state warm hit; plus the
# fixed-iteration restart benchmarks. Baselines in BENCH_serving.json.
bench-preheat:
	HETEROMIX_PREHEAT_GATE=1 $(GO) test ./internal/server -count=1 \
		-run 'TestPreheatSpeedupGate' -v
	$(GO) test ./internal/server -run '^$$' \
		-bench 'BenchmarkColdStart(NoSnapshot|Preheated)' \
		-benchmem -benchtime=20x

# Streaming wire-protocol gates: the O(frontier)-not-O(space) allocation
# claim on the streamed 384k-point walk, the >= 5x time-to-first-point
# win over the buffered response on the same walk, plus fixed-iteration
# row-throughput and gzip-pooling benchmarks. Baselines in
# BENCH_serving.json.
bench-stream:
	HETEROMIX_STREAM_GATE=1 $(GO) test ./internal/server -count=1 \
		-run 'TestStreamAllocGate|TestStreamTTFPGate' -v
	$(GO) test ./internal/server -run '^$$' \
		-bench 'Benchmark(Stream(GenericFrontier|Enumerate20k|DeltaReQuery)|Buffered(GenericFrontier|Enumerate20k)|Gzip(Pooled|Cold)Writer)' \
		-benchmem -benchtime=3x

ci: vet build race server-race fleet-race calib-race fleet-heal chaos stream-race bench bench-generic bench-server bench-batch bench-fleet bench-fit bench-preheat bench-stream
