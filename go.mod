module heteromix

go 1.22
