// Package delta diffs successive Pareto frontiers for incremental
// streaming. Frontiers are handled as slices of encoded JSON rows (the
// exact bytes the stream layer ships), so a delta is computed and
// replayed without ever re-decoding points: a client that applies the
// del-rows then appends the add-rows to its held frontier reconstructs
// the new frontier's row multiset exactly.
package delta

import "bytes"

// Op is one frontier edit: Add reports whether Row entered (true) or
// left (false) the frontier.
type Op struct {
	Add bool
	Row []byte
}

// Diff computes the multiset difference between two encoded frontiers.
// Rows present in prev but not next become deletions (in prev order);
// rows present in next but not prev become additions (in next order).
// Rows are compared by exact bytes, which is sound because the encoder
// is deterministic and byte-identical for equal points.
func Diff(prev, next [][]byte) []Op {
	counts := make(map[string]int, len(next))
	for _, row := range next {
		counts[string(row)]++
	}
	var ops []Op
	for _, row := range prev {
		if counts[string(row)] > 0 {
			counts[string(row)]--
		} else {
			ops = append(ops, Op{Add: false, Row: row})
		}
	}
	for _, row := range next {
		if counts[string(row)] > 0 {
			counts[string(row)]--
			ops = append(ops, Op{Add: true, Row: row})
		}
	}
	return ops
}

// Join packs rows into a single newline-delimited buffer for storage
// in the result cache (whose byte accounting wants one []byte per
// entry). Rows never contain raw newlines — the encoder escapes them —
// so the framing is unambiguous.
func Join(rows [][]byte) []byte {
	n := 0
	for _, r := range rows {
		n += len(r) + 1
	}
	out := make([]byte, 0, n)
	for _, r := range rows {
		out = append(out, r...)
		out = append(out, '\n')
	}
	return out
}

// Split is the inverse of Join. The returned rows alias joined.
func Split(joined []byte) [][]byte {
	if len(joined) == 0 {
		return nil
	}
	var rows [][]byte
	for len(joined) > 0 {
		i := bytes.IndexByte(joined, '\n')
		if i < 0 {
			rows = append(rows, joined)
			break
		}
		rows = append(rows, joined[:i])
		joined = joined[i+1:]
	}
	return rows
}
