package delta

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func rows(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// apply replays ops against prev the way a streaming client would and
// returns the resulting multiset.
func apply(t *testing.T, prev [][]byte, ops []Op) map[string]int {
	t.Helper()
	m := map[string]int{}
	for _, r := range prev {
		m[string(r)]++
	}
	for _, op := range ops {
		if op.Add {
			m[string(op.Row)]++
		} else {
			m[string(op.Row)]--
			if m[string(op.Row)] < 0 {
				t.Fatalf("delta deletes %q more times than it exists", op.Row)
			}
		}
	}
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
	return m
}

func multiset(rs [][]byte) map[string]int {
	m := map[string]int{}
	for _, r := range rs {
		m[string(r)]++
	}
	return m
}

func TestDiffBasic(t *testing.T) {
	prev := rows(`{"a":1}`, `{"b":2}`, `{"c":3}`)
	next := rows(`{"b":2}`, `{"c":3}`, `{"d":4}`)
	ops := Diff(prev, next)
	if len(ops) != 2 {
		t.Fatalf("Diff emitted %d ops, want 2: %+v", len(ops), ops)
	}
	if ops[0].Add || string(ops[0].Row) != `{"a":1}` {
		t.Fatalf("first op = %+v, want del a", ops[0])
	}
	if !ops[1].Add || string(ops[1].Row) != `{"d":4}` {
		t.Fatalf("second op = %+v, want add d", ops[1])
	}
}

func TestDiffIdentical(t *testing.T) {
	prev := rows(`{"a":1}`, `{"b":2}`)
	if ops := Diff(prev, prev); len(ops) != 0 {
		t.Fatalf("Diff of identical frontiers emitted %d ops", len(ops))
	}
}

func TestDiffDuplicates(t *testing.T) {
	prev := rows("x", "x", "y")
	next := rows("x", "y", "y", "y")
	ops := Diff(prev, next)
	got := apply(t, prev, ops)
	if want := multiset(next); !reflect.DeepEqual(got, want) {
		t.Fatalf("applying ops gives %v, want %v", got, want)
	}
	// Net edit distance only: one del of x, two adds of y.
	dels, adds := 0, 0
	for _, op := range ops {
		if op.Add {
			adds++
		} else {
			dels++
		}
	}
	if dels != 1 || adds != 2 {
		t.Fatalf("dels=%d adds=%d, want 1/2", dels, adds)
	}
}

func TestDiffEmptySides(t *testing.T) {
	next := rows("a", "b")
	ops := Diff(nil, next)
	if got := apply(t, nil, ops); !reflect.DeepEqual(got, multiset(next)) {
		t.Fatalf("full-add delta wrong: %v", got)
	}
	ops = Diff(next, nil)
	if got := apply(t, next, ops); len(got) != 0 {
		t.Fatalf("full-del delta leaves %v", got)
	}
}

func TestDiffRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		var prev, next [][]byte
		for i := rng.Intn(20); i >= 0; i-- {
			prev = append(prev, []byte(fmt.Sprintf(`{"p":%d}`, rng.Intn(12))))
		}
		for i := rng.Intn(20); i >= 0; i-- {
			next = append(next, []byte(fmt.Sprintf(`{"p":%d}`, rng.Intn(12))))
		}
		ops := Diff(prev, next)
		if got, want := apply(t, prev, ops), multiset(next); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: apply(prev, Diff) = %v, want %v", trial, got, want)
		}
	}
}

func TestJoinSplitRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		rows(`{"a":1}`),
		rows(`{"a":1}`, `{"b":2}`, `{"c":3}`),
		rows("", "x", ""),
	}
	for _, rs := range cases {
		got := Split(Join(rs))
		if len(got) != len(rs) {
			t.Fatalf("Split(Join(%q)) = %q", rs, got)
		}
		for i := range rs {
			if string(got[i]) != string(rs[i]) {
				t.Fatalf("row %d: got %q want %q", i, got[i], rs[i])
			}
		}
	}
	if Split(nil) != nil {
		t.Fatal("Split(nil) != nil")
	}
}
