package stream

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func rec(payload string) func([]byte) []byte {
	return func(b []byte) []byte { return append(b, payload...) }
}

func TestWriterNDJSONFraming(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, nil, NDJSON, Policy{})
	if err := w.Record(EventHead, rec(`{"workload":"ep"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(EventPoint, rec(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(EventAdd, rec(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(EventDel, rec(`{"x":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(EventTrailer, rec(`{"returned":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"head":{"workload":"ep"}}
{"x":1}
{"op":"add","point":{"x":2}}
{"op":"del","point":{"x":3}}
{"trailer":{"returned":3}}
`
	if out.String() != want {
		t.Fatalf("NDJSON framing:\n got %q\nwant %q", out.String(), want)
	}
	st := w.Stats()
	if st.Rows != 3 {
		t.Fatalf("Rows = %d, want 3 (point+add+del)", st.Rows)
	}
	if st.Bytes != uint64(len(want)) {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, len(want))
	}
}

func TestWriterSSEFraming(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, nil, SSE, Policy{})
	if err := w.Record(EventHead, rec(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(EventPoint, rec(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := "event: head\ndata: {\"a\":1}\n\nevent: point\ndata: {\"b\":2}\n\n"
	if out.String() != want {
		t.Fatalf("SSE framing:\n got %q\nwant %q", out.String(), want)
	}
}

func TestWriterByteBoundFlush(t *testing.T) {
	var out bytes.Buffer
	pushes := 0
	w := NewWriter(&out, func() error { pushes++; return nil }, NDJSON, Policy{FlushBytes: 64, FlushInterval: time.Hour})
	row := strings.Repeat("x", 30)
	for i := 0; i < 10; i++ {
		if err := w.Record(EventPoint, rec(`"`+row+`"`)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Flushes == 0 {
		t.Fatal("no boundary flush after crossing FlushBytes repeatedly")
	}
	if pushes != int(w.Stats().Flushes) {
		t.Fatalf("push calls = %d, flushes = %d", pushes, w.Stats().Flushes)
	}
	mid := out.Len()
	if mid == 0 {
		t.Fatal("nothing reached the destination before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 10 {
		t.Fatalf("delivered %d lines, want 10", lines)
	}
}

func TestWriterTimeBoundFlush(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, nil, NDJSON, Policy{FlushBytes: 1 << 20, FlushInterval: time.Nanosecond})
	// The time bound is only checked every 32 records, so write enough
	// to cross the check with an interval that has certainly elapsed.
	for i := 0; i < 40; i++ {
		if err := w.Record(EventPoint, rec(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Flushes == 0 {
		t.Fatal("no time-bound flush after 40 records with 1ns interval")
	}
	_ = w.Close()
}

func TestWriterEmptyFlushFree(t *testing.T) {
	var out bytes.Buffer
	pushes := 0
	w := NewWriter(&out, func() error { pushes++; return nil }, NDJSON, Policy{})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Flushes != 0 || pushes != 0 {
		t.Fatalf("empty flush counted: flushes=%d pushes=%d", w.Stats().Flushes, pushes)
	}
	_ = w.Close()
}

type failAfter struct {
	n    int
	seen int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.seen++
	if f.seen > f.n {
		return 0, errors.New("client gone")
	}
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	dst := &failAfter{n: 0}
	w := NewWriter(dst, nil, NDJSON, Policy{FlushBytes: 1})
	err := w.Record(EventPoint, rec(`{}`))
	if err == nil {
		t.Fatal("expected write error")
	}
	if w.Err() == nil {
		t.Fatal("Err() not sticky after failed flush")
	}
	// Subsequent records are no-ops returning the same error.
	if err2 := w.Record(EventPoint, rec(`{}`)); !errors.Is(err2, w.Err()) {
		t.Fatalf("Record after error = %v, want sticky %v", err2, w.Err())
	}
	if dst.seen != 1 {
		t.Fatalf("destination written %d times after sticky error, want 1", dst.seen)
	}
	_ = w.Close()
}

func TestWriterPushErrorSticks(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, func() error { return errors.New("flush failed") }, NDJSON, Policy{FlushBytes: 1})
	if err := w.Record(EventPoint, rec(`{}`)); err == nil {
		t.Fatal("expected push error to surface")
	}
	if w.Err() == nil {
		t.Fatal("push error not sticky")
	}
	_ = w.Close()
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.FlushBytes != DefaultFlushBytes || p.FlushInterval != DefaultFlushInterval {
		t.Fatalf("withDefaults() = %+v", p)
	}
	p = Policy{FlushBytes: 256, FlushInterval: time.Second}.withDefaults()
	if p.FlushBytes != 256 || p.FlushInterval != time.Second {
		t.Fatalf("withDefaults clobbered explicit policy: %+v", p)
	}
}
