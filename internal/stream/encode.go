// Package stream is the daemon's streaming wire layer: a single-pass
// JSON row encoder and a pooled, flush-on-boundary record writer for
// NDJSON and SSE enumeration streams.
//
// The encoder exists because encoding/json on the hot row path costs a
// reflection walk and an intermediate buffer per point; AppendFloat/
// AppendString/Append*Summary build the exact bytes json.Marshal would
// produce (property-tested byte-for-byte, including float formatting,
// HTML-escaped strings and omitempty semantics) by appending into a
// caller-owned buffer. That buffer is the writer's pooled chunk buffer,
// so a streamed row never exists anywhere except the chunk it ships in.
package stream

import (
	"math"
	"strconv"
	"unicode/utf8"

	"heteromix/internal/cluster"
)

const hexDigits = "0123456789abcdef"

// AppendFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, fixed notation except for magnitudes below
// 1e-6 or at/above 1e21, which use exponent notation with a cleaned
// exponent (e-09 -> e-9). Non-finite values — which json.Marshal
// refuses and the model never produces — append 0 so a stream can
// never be made unparseable.
func AppendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// AppendString appends s as a JSON string exactly as encoding/json
// does with its default HTML escaping: control bytes, quotes and
// backslashes escaped, <, > and & as </>/&, invalid
// UTF-8 as the \ufffd escape, and U+2028/U+2029 escaped for JS embedding.
func AppendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == ' ' || r == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// AppendGenericPointSummary appends p's JSON object byte-identically to
// json.Marshal — field order, nil-vs-empty Groups and all.
func AppendGenericPointSummary(b []byte, p *cluster.GenericPointSummary) []byte {
	b = append(b, `{"groups":`...)
	if p.Groups == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range p.Groups {
			if i > 0 {
				b = append(b, ',')
			}
			g := &p.Groups[i]
			b = append(b, `{"type":`...)
			b = AppendString(b, g.Type)
			b = append(b, `,"nodes":`...)
			b = strconv.AppendInt(b, int64(g.Nodes), 10)
			b = append(b, `,"cores":`...)
			b = strconv.AppendInt(b, int64(g.Cores), 10)
			b = append(b, `,"ghz":`...)
			b = AppendFloat(b, g.GHz)
			b = append(b, `,"work_fraction":`...)
			b = AppendFloat(b, g.WorkFraction)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"time_seconds":`...)
	b = AppendFloat(b, p.TimeSeconds)
	b = append(b, `,"energy_joules":`...)
	b = AppendFloat(b, p.EnergyJoules)
	b = append(b, `,"label":`...)
	b = AppendString(b, p.Label)
	return append(b, '}')
}

// AppendPointSummary appends p's JSON object byte-identically to
// json.Marshal, including the omitempty cores/ghz fields of an unused
// side.
func AppendPointSummary(b []byte, p *cluster.PointSummary) []byte {
	b = append(b, `{"arm_nodes":`...)
	b = strconv.AppendInt(b, int64(p.ARMNodes), 10)
	if p.ARMCores != 0 {
		b = append(b, `,"arm_cores":`...)
		b = strconv.AppendInt(b, int64(p.ARMCores), 10)
	}
	if p.ARMGHz != 0 {
		b = append(b, `,"arm_ghz":`...)
		b = AppendFloat(b, p.ARMGHz)
	}
	b = append(b, `,"amd_nodes":`...)
	b = strconv.AppendInt(b, int64(p.AMDNodes), 10)
	if p.AMDCores != 0 {
		b = append(b, `,"amd_cores":`...)
		b = strconv.AppendInt(b, int64(p.AMDCores), 10)
	}
	if p.AMDGHz != 0 {
		b = append(b, `,"amd_ghz":`...)
		b = AppendFloat(b, p.AMDGHz)
	}
	b = append(b, `,"time_seconds":`...)
	b = AppendFloat(b, p.TimeSeconds)
	b = append(b, `,"energy_joules":`...)
	b = AppendFloat(b, p.EnergyJoules)
	b = append(b, `,"work_arm_fraction":`...)
	b = AppendFloat(b, p.WorkARMFraction)
	b = append(b, `,"label":`...)
	b = AppendString(b, p.Label)
	return append(b, '}')
}
