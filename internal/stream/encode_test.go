package stream

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"heteromix/internal/cluster"
)

// marshal is the reference encoding the appenders must reproduce
// byte-for-byte: encoding/json with its default HTML escaping, minus
// the trailing newline json.Marshal never adds.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return b
}

func TestAppendFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, -0.5, 3.14159265358979, 1e-7, 9.999999e-7, 1e-6,
		1.0000001e-6, 1e21, 9.999999999999999e20, 1.2345e21, -1e-9,
		-4.875e22, 1e-300, 1e300, 123456.789, 0.1, 0.3333333333333333,
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.MaxFloat64,
		2.5e-7, 642.8571428571429, 1097.142857142857,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		cases = append(cases, f)
	}
	for _, f := range cases {
		want := marshal(t, f)
		got := AppendFloat(nil, f)
		if string(got) != string(want) {
			t.Fatalf("AppendFloat(%v) = %q, json.Marshal = %q", f, got, want)
		}
	}
}

func TestAppendFloatNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := AppendFloat(nil, f); string(got) != "0" {
			t.Fatalf("AppendFloat(%v) = %q, want 0", f, got)
		}
	}
}

func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"", "plain", "with space", `quote " and \ backslash`,
		"html <b>&amp;</b> escapes", "tab\tnewline\ncr\rbell\bff\f",
		"ctl \x00\x01\x1f", "unicode héllo wörld ✓ 日本語",
		"line sep   and   para", "invalid \xff\xfe utf8",
		"truncated \xe2\x82", "mixed <\xffé> &",
		strings.Repeat("a<b>&", 100),
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40)
		raw := make([]byte, n)
		rng.Read(raw)
		cases = append(cases, string(raw))
	}
	for _, s := range cases {
		want := marshal(t, s)
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Fatalf("AppendString(%q) = %q, json.Marshal = %q", s, got, want)
		}
	}
}

// randFloat draws values shaped like the model's outputs plus the
// formatting boundary cases.
func randFloat(rng *rand.Rand) float64 {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return rng.Float64() * 1e-6 // straddles the 'e' notation cutoff
	case 2:
		return rng.Float64() * 3e21
	default:
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-3))
	}
}

func randLabel(rng *rand.Rand) string {
	parts := []string{"arm-cortex-a9", "amd-opteron-k10", "4x<8>@1.7GHz", "a&b", "é✓", " ", "\xff"}
	var sb strings.Builder
	for i := rng.Intn(4); i >= 0; i-- {
		sb.WriteString(parts[rng.Intn(len(parts))])
	}
	return sb.String()
}

func TestAppendGenericPointSummaryMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		p := cluster.GenericPointSummary{
			TimeSeconds:  randFloat(rng),
			EnergyJoules: randFloat(rng),
			Label:        randLabel(rng),
		}
		switch rng.Intn(4) {
		case 0: // nil Groups must render null
		case 1:
			p.Groups = []cluster.GenericGroupSummary{} // non-nil empty must render []
		default:
			for g := rng.Intn(4); g >= 0; g-- {
				p.Groups = append(p.Groups, cluster.GenericGroupSummary{
					Type:         randLabel(rng),
					Nodes:        rng.Intn(9) - 1,
					Cores:        rng.Intn(9),
					GHz:          randFloat(rng),
					WorkFraction: randFloat(rng),
				})
			}
		}
		want := marshal(t, p)
		got := AppendGenericPointSummary(nil, &p)
		if string(got) != string(want) {
			t.Fatalf("AppendGenericPointSummary mismatch:\n got %s\nwant %s", got, want)
		}
	}
}

func TestAppendPointSummaryMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		p := cluster.PointSummary{
			ARMNodes:        rng.Intn(10),
			ARMCores:        rng.Intn(3), // 0 exercises omitempty
			ARMGHz:          float64(rng.Intn(3)) * 0.8,
			AMDNodes:        rng.Intn(10),
			AMDCores:        rng.Intn(3),
			AMDGHz:          float64(rng.Intn(3)) * 1.1,
			TimeSeconds:     randFloat(rng),
			EnergyJoules:    randFloat(rng),
			WorkARMFraction: rng.Float64(),
			Label:           randLabel(rng),
		}
		want := marshal(t, p)
		got := AppendPointSummary(nil, &p)
		if string(got) != string(want) {
			t.Fatalf("AppendPointSummary mismatch:\n got %s\nwant %s", got, want)
		}
	}
}
