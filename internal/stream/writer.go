package stream

import (
	"io"
	"sync"
	"time"
)

// Format selects the wire framing for a stream.
type Format int

const (
	// NDJSON frames every record as one newline-terminated JSON line:
	// points are bare objects, everything else is a one-key envelope
	// ({"head":...}, {"trailer":...}, {"error":...}, {"op":"add",...}).
	NDJSON Format = iota
	// SSE frames every record as a Server-Sent-Events message with the
	// record's event name ("event: point\ndata: {...}\n\n").
	SSE
)

// Record event names. Head opens a stream, Trailer or Error closes it;
// Point/Add/Del carry rows (Add/Del only on delta streams); Progress
// carries fleet sub-frontier completion notices.
const (
	EventHead     = "head"
	EventPoint    = "point"
	EventAdd      = "add"
	EventDel      = "del"
	EventProgress = "progress"
	EventTrailer  = "trailer"
	EventError    = "error"
)

// Policy bounds how much encoded output may sit unflushed. FlushBytes
// triggers a flush whenever the chunk buffer crosses it; FlushInterval
// triggers one when the oldest unflushed record has waited that long
// (checked cheaply, every few records). Zero values take the defaults.
type Policy struct {
	FlushBytes    int
	FlushInterval time.Duration
}

const (
	DefaultFlushBytes    = 8 << 10
	DefaultFlushInterval = 100 * time.Millisecond
)

func (p Policy) withDefaults() Policy {
	if p.FlushBytes <= 0 {
		p.FlushBytes = DefaultFlushBytes
	}
	if p.FlushInterval <= 0 {
		p.FlushInterval = DefaultFlushInterval
	}
	return p
}

// Stats counts what a writer shipped: Rows is point/add/del records,
// Flushes is boundary flushes that reached the client, Bytes is encoded
// payload written to the destination.
type Stats struct {
	Rows    uint64
	Flushes uint64
	Bytes   uint64
}

// bufPool recycles chunk buffers across streams; buffers grow to the
// flush boundary once and are reused at that size.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, DefaultFlushBytes+1024); return &b }}

// Writer accumulates encoded records into a pooled chunk buffer and
// flushes on the policy's byte/time boundaries. It is not safe for
// concurrent use; the serving layer serializes access per stream.
type Writer struct {
	dst       io.Writer
	push      func() error // invoked after each chunk write, e.g. gzip+HTTP flush
	format    Format
	pol       Policy
	buf       *[]byte
	err       error
	lastFlush time.Time
	sinceChk  int
	stats     Stats
}

// NewWriter wraps dst in a chunked record writer. push, if non-nil, is
// called after every chunk lands in dst — the server uses it to drain
// the gzip frame and flush the HTTP response so the chunk actually
// reaches the client at the boundary.
func NewWriter(dst io.Writer, push func() error, format Format, pol Policy) *Writer {
	return &Writer{
		dst:       dst,
		push:      push,
		format:    format,
		pol:       pol.withDefaults(),
		buf:       bufPool.Get().(*[]byte),
		lastFlush: time.Now(),
	}
}

// Err reports the first destination error; once set, every subsequent
// call is a no-op returning it. A non-nil Err on a live HTTP stream
// means the client went away.
func (w *Writer) Err() error { return w.err }

// Stats returns what has been shipped so far.
func (w *Writer) Stats() Stats { return w.stats }

// Record appends one record. enc receives the chunk buffer positioned
// at the record's payload start and must append exactly one JSON value.
// Rows (point/add/del) count toward Stats.Rows.
func (w *Writer) Record(event string, enc func([]byte) []byte) error {
	if w.err != nil {
		return w.err
	}
	b := *w.buf
	switch w.format {
	case SSE:
		b = append(b, "event: "...)
		b = append(b, event...)
		b = append(b, "\ndata: "...)
		b = enc(b)
		b = append(b, '\n', '\n')
	default:
		switch event {
		case EventPoint:
			b = enc(b)
		case EventAdd, EventDel:
			b = append(b, `{"op":"`...)
			b = append(b, event...)
			b = append(b, `","point":`...)
			b = enc(b)
			b = append(b, '}')
		default:
			b = append(b, `{"`...)
			b = append(b, event...)
			b = append(b, `":`...)
			b = enc(b)
			b = append(b, '}')
		}
		b = append(b, '\n')
	}
	*w.buf = b
	if event == EventPoint || event == EventAdd || event == EventDel {
		w.stats.Rows++
	}
	return w.maybeFlush()
}

// maybeFlush applies the policy: the byte bound on every record, the
// time bound every 32 records (a time.Now per record would dominate
// the row encoding it polices).
func (w *Writer) maybeFlush() error {
	if len(*w.buf) >= w.pol.FlushBytes {
		return w.Flush()
	}
	w.sinceChk++
	if w.sinceChk >= 32 {
		w.sinceChk = 0
		if time.Since(w.lastFlush) >= w.pol.FlushInterval {
			return w.Flush()
		}
	}
	return nil
}

// Flush writes the buffered chunk to the destination and pushes it
// through. Empty flushes are free and uncounted.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.lastFlush = time.Now()
	w.sinceChk = 0
	b := *w.buf
	if len(b) == 0 {
		return nil
	}
	if _, err := w.dst.Write(b); err != nil {
		w.err = err
		return err
	}
	w.stats.Bytes += uint64(len(b))
	*w.buf = b[:0]
	if w.push != nil {
		if err := w.push(); err != nil {
			w.err = err
			return err
		}
	}
	w.stats.Flushes++
	return nil
}

// Close flushes the remainder and returns the chunk buffer to the
// pool. The writer must not be used afterwards.
func (w *Writer) Close() error {
	err := w.Flush()
	if w.buf != nil {
		*w.buf = (*w.buf)[:0]
		bufPool.Put(w.buf)
		w.buf = nil
	}
	return err
}
