package resilience

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var seen any
	h := Recover(func(v any) { seen = v }, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rr.Code)
	}
	if seen != "kaboom" {
		t.Errorf("onPanic saw %v", seen)
	}
}

func TestRecoverPassesThroughCleanRequests(t *testing.T) {
	h := Recover(func(v any) { t.Errorf("onPanic fired: %v", v) },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusTeapot)
			io.WriteString(w, "tea")
		}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusTeapot || rr.Body.String() != "tea" {
		t.Fatalf("response mangled: %d %q", rr.Code, rr.Body.String())
	}
}

func TestRecoverDoesNotOverwriteStartedResponse(t *testing.T) {
	h := Recover(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late panic")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("code = %d, recovery overwrote a started response", rr.Code)
	}
}

func TestRecoverReRaisesAbortHandler(t *testing.T) {
	h := Recover(func(v any) { t.Error("onPanic fired for ErrAbortHandler") },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic(http.ErrAbortHandler)
		}))
	defer func() {
		if v := recover(); v != http.ErrAbortHandler {
			t.Errorf("recovered %v, want ErrAbortHandler", v)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	t.Fatal("abort did not propagate")
}

func TestRecoverKeepsDaemonServing(t *testing.T) {
	var n int
	h := Recover(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		if n%2 == 1 {
			panic("every other request")
		}
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	codes := []int{}
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	want := []int{500, 200, 500, 200}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
}
