package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseChaosSpec(t *testing.T) {
	o, err := ParseChaosSpec("latency=0.2:5ms,error=0.05,panic=0.01,timeout=0.01,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := ChaosOptions{
		LatencyProb: 0.2, Latency: 5 * time.Millisecond,
		ErrorProb: 0.05, PanicProb: 0.01, TimeoutProb: 0.01, Seed: 7,
	}
	if o != want {
		t.Fatalf("parsed %+v, want %+v", o, want)
	}
	if !o.Enabled() {
		t.Error("parsed spec not enabled")
	}
	empty, err := ParseChaosSpec("  ")
	if err != nil || empty.Enabled() {
		t.Errorf("empty spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{
		"latency=0.2", "latency=x:5ms", "latency=0.2:xs", "error=2", "error=x",
		"wibble=1", "panic", "seed=x", "latency=-0.5:5ms",
	} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

// comparableHandler has a comparable dynamic type, so the pass-through
// tests can check handler identity with ==.
type comparableHandler struct{}

func (comparableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {}

func TestChaosDisabledPassesThrough(t *testing.T) {
	c, err := NewChaos(ChaosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	next := comparableHandler{}
	if got := c.Middleware(next); got != http.Handler(next) {
		t.Error("disabled chaos wrapped the handler")
	}
	var nilChaos *Chaos
	if got := nilChaos.Middleware(next); got != http.Handler(next) {
		t.Error("nil chaos wrapped the handler")
	}
}

func TestChaosInjectsErrors(t *testing.T) {
	c, err := NewChaos(ChaosOptions{ErrorProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	c.OnInject = func(k string) { kinds[k]++ }
	h := c.Middleware(okHandler())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", rr.Code)
	}
	if rr.Header().Get("X-Chaos") != "error" {
		t.Error("missing X-Chaos header")
	}
	if kinds["error"] != 1 {
		t.Errorf("OnInject saw %v", kinds)
	}
}

func TestChaosInjectsPanics(t *testing.T) {
	c, err := NewChaos(ChaosOptions{PanicProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := c.Middleware(okHandler())
	defer func() {
		if v := recover(); v != "chaos: injected panic" {
			t.Errorf("recovered %v", v)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	t.Fatal("no panic")
}

func TestChaosInjectsLatency(t *testing.T) {
	c, err := NewChaos(ChaosOptions{LatencyProb: 1, Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h := c.Middleware(okHandler())
	start := time.Now()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("request took %v, want >= 30ms", d)
	}
	if rr.Code != http.StatusOK {
		t.Errorf("latency injection changed the response: %d", rr.Code)
	}
}

func TestChaosTimeoutRespectsContext(t *testing.T) {
	c, err := NewChaos(ChaosOptions{TimeoutProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	handlerRan := false
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerRan = true
	}))
	req := httptest.NewRequest("GET", "/", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rr := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rr, req.WithContext(ctx))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timeout injection did not release on context done")
	}
	if handlerRan {
		t.Error("handler ran despite timeout injection")
	}
	if rr.Code != http.StatusGatewayTimeout {
		t.Errorf("code = %d, want 504", rr.Code)
	}
}

func TestChaosDeterministic(t *testing.T) {
	draws := func(seed int64) []string {
		c, err := NewChaos(ChaosOptions{ErrorProb: 0.3, PanicProb: 0.2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for i := 0; i < 32; i++ {
			out = append(out, c.draw())
		}
		return out
	}
	a, b := draws(5), draws(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestChaosOptionValidation(t *testing.T) {
	for name, o := range map[string]ChaosOptions{
		"prob over 1":       {ErrorProb: 1.5},
		"negative prob":     {PanicProb: -0.1},
		"latency no dur":    {LatencyProb: 0.5},
		"negative duration": {LatencyProb: 0.5, Latency: -time.Second},
	} {
		if _, err := NewChaos(o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
