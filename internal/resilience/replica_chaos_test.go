package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func chaosGet(t *testing.T, h http.Handler, ctx context.Context) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestReplicaChaosFaults(t *testing.T) {
	rc := NewReplicaChaos()
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ready"}`))
	})
	h := rc.Middleware(ok)

	// None: passes through.
	if rr := chaosGet(t, h, nil); rr.Code != http.StatusOK {
		t.Fatalf("FaultNone: %d", rr.Code)
	}
	// Kill: every request 503s, including readyz; Revive restores service.
	rc.Kill()
	if rc.Fault() != FaultKill {
		t.Fatalf("Fault() = %v after Kill", rc.Fault())
	}
	for i := 0; i < 3; i++ {
		if rr := chaosGet(t, h, nil); rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("FaultKill request %d: %d", i, rr.Code)
		}
	}
	rc.Revive()
	if rr := chaosGet(t, h, nil); rr.Code != http.StatusOK {
		t.Fatalf("after Revive: %d", rr.Code)
	}

	// Flap: alternates kill/serve per request.
	rc.Set(FaultFlap)
	saw := map[int]int{}
	for i := 0; i < 8; i++ {
		saw[chaosGet(t, h, nil).Code]++
	}
	if saw[http.StatusOK] != 4 || saw[http.StatusServiceUnavailable] != 4 {
		t.Fatalf("FaultFlap distribution: %v, want 4/4", saw)
	}

	// SlowStart: the handler still answers, after the added latency.
	rc.SlowStart(30 * time.Millisecond)
	start := time.Now()
	if rr := chaosGet(t, h, nil); rr.Code != http.StatusOK {
		t.Fatalf("FaultSlowStart: %d", rr.Code)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slow-start answered in %v, want >= 30ms", d)
	}

	// Partition: hangs until the request context is done, then 504s.
	rc.Set(FaultPartition)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	rr := chaosGet(t, h, ctx)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("FaultPartition: %d, want 504", rr.Code)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("partition released in %v, before the context deadline", d)
	}
}

func TestParseReplicaFault(t *testing.T) {
	for _, f := range []ReplicaFault{FaultNone, FaultKill, FaultPartition, FaultSlowStart, FaultFlap} {
		got, err := ParseReplicaFault(f.String())
		if err != nil || got != f {
			t.Fatalf("round-trip %v: %v, %v", f, got, err)
		}
	}
	if _, err := ParseReplicaFault("meteor"); err == nil {
		t.Fatal("unknown fault parsed")
	}
}
