package resilience

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RetryOptions tunes the retrying Client. The zero value gets sane
// defaults.
type RetryOptions struct {
	// MaxAttempts bounds total tries including the first (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: before attempt n the
	// client sleeps a uniform draw from [0, min(MaxDelay, BaseDelay*2^n))
	// — "full jitter", which spreads synchronized retriers evenly
	// (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff window and any Retry-After the server
	// requests (default 5s).
	MaxDelay time.Duration
	// Seed fixes the jitter stream for reproducible tests.
	Seed int64
	// RetryStatus decides which response codes retry (default: 429 and
	// all 5xx).
	RetryStatus func(code int) bool
	// sleep is injectable for tests; default waits on a timer or ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

// Client retries transient HTTP failures with capped exponential
// backoff, full jitter, and Retry-After honoring. Safe for concurrent
// use.
type Client struct {
	http *http.Client
	opts RetryOptions

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient wraps hc (nil means http.DefaultClient) with retries.
func NewClient(hc *http.Client, opts RetryOptions) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 100 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 5 * time.Second
	}
	if opts.RetryStatus == nil {
		opts.RetryStatus = func(code int) bool {
			return code == http.StatusTooManyRequests || code >= 500
		}
	}
	if opts.sleep == nil {
		opts.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return &Client{http: hc, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Do issues req, retrying network errors and retryable statuses. A
// request with a body must provide GetBody (http.NewRequest sets it for
// the common body types) or it will not be retried. The last response
// or error is returned after MaxAttempts.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	var (
		resp *http.Response
		err  error
	)
	for attempt := 0; ; attempt++ {
		resp, err = c.http.Do(req)
		retryable := err != nil || c.opts.RetryStatus(resp.StatusCode)
		if !retryable || attempt+1 >= c.opts.MaxAttempts {
			return resp, err
		}
		if req.Body != nil && req.GetBody == nil {
			return resp, err // cannot replay the body
		}
		delay := c.backoff(attempt)
		if resp != nil {
			if ra, ok := retryAfter(resp, c.opts.MaxDelay); ok && ra > delay {
				delay = ra
			}
			// Drain so the transport can reuse the connection.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if err := c.opts.sleep(req.Context(), delay); err != nil {
			return nil, fmt.Errorf("resilience: retry wait: %w", err)
		}
		if req.GetBody != nil {
			body, gerr := req.GetBody()
			if gerr != nil {
				return nil, fmt.Errorf("resilience: rewinding request body: %w", gerr)
			}
			req.Body = body
		}
	}
}

// backoff draws the full-jitter delay before retry number attempt+1.
func (c *Client) backoff(attempt int) time.Duration {
	window := c.opts.BaseDelay << uint(attempt)
	if window <= 0 || window > c.opts.MaxDelay {
		window = c.opts.MaxDelay
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Float64() * float64(window))
}

// retryAfter reads a Retry-After header (delta-seconds or HTTP-date),
// capped at max.
func retryAfter(resp *http.Response, max time.Duration) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		d := time.Duration(secs * float64(time.Second))
		if d < 0 {
			return 0, false
		}
		if d > max {
			d = max
		}
		return d, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := time.Until(at)
		if d < 0 {
			return 0, false
		}
		if d > max {
			d = max
		}
		return d, true
	}
	return 0, false
}
