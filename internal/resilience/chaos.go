package resilience

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ChaosOptions describes what a chaos middleware injects. All
// probabilities are per request in [0, 1]; the zero value injects
// nothing.
type ChaosOptions struct {
	// LatencyProb adds Latency to a request's handling.
	LatencyProb float64
	Latency     time.Duration
	// ErrorProb fails the request with 503 and an X-Chaos: error header
	// before the handler runs.
	ErrorProb float64
	// PanicProb panics inside the handler chain — this is how the soak
	// test proves the recovery middleware holds the line.
	PanicProb float64
	// TimeoutProb stalls the request until its context is done (the
	// server's per-request timeout), exercising the slow-path handling.
	TimeoutProb float64
	// Seed fixes the random stream so chaos runs are reproducible.
	Seed int64
}

// Enabled reports whether any injection can fire.
func (o ChaosOptions) Enabled() bool {
	return o.LatencyProb > 0 || o.ErrorProb > 0 || o.PanicProb > 0 || o.TimeoutProb > 0
}

// validate rejects malformed probabilities.
func (o ChaosOptions) validate() error {
	for name, p := range map[string]float64{
		"latency": o.LatencyProb, "error": o.ErrorProb, "panic": o.PanicProb, "timeout": o.TimeoutProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("resilience: chaos %s probability %v outside [0, 1]", name, p)
		}
	}
	if o.Latency < 0 {
		return fmt.Errorf("resilience: negative chaos latency %v", o.Latency)
	}
	if o.LatencyProb > 0 && o.Latency == 0 {
		return fmt.Errorf("resilience: chaos latency probability without a duration")
	}
	return nil
}

// ParseChaosSpec parses the -chaos flag syntax: comma-separated
// key=value items, e.g.
//
//	latency=0.2:5ms,error=0.05,panic=0.01,timeout=0.01,seed=1
//
// where latency's value is prob:duration and the rest are plain
// probabilities (seed is an integer). An empty spec disables chaos.
func ParseChaosSpec(spec string) (ChaosOptions, error) {
	var o ChaosOptions
	if strings.TrimSpace(spec) == "" {
		return o, nil
	}
	for _, item := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return ChaosOptions{}, fmt.Errorf("resilience: chaos item %q is not key=value", item)
		}
		switch key {
		case "latency":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return ChaosOptions{}, fmt.Errorf("resilience: chaos latency %q is not prob:duration", val)
			}
			p, err := strconv.ParseFloat(probStr, 64)
			if err != nil {
				return ChaosOptions{}, fmt.Errorf("resilience: chaos latency probability: %w", err)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil {
				return ChaosOptions{}, fmt.Errorf("resilience: chaos latency duration: %w", err)
			}
			o.LatencyProb, o.Latency = p, d
		case "error", "panic", "timeout":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return ChaosOptions{}, fmt.Errorf("resilience: chaos %s probability: %w", key, err)
			}
			switch key {
			case "error":
				o.ErrorProb = p
			case "panic":
				o.PanicProb = p
			case "timeout":
				o.TimeoutProb = p
			}
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return ChaosOptions{}, fmt.Errorf("resilience: chaos seed: %w", err)
			}
			o.Seed = s
		default:
			return ChaosOptions{}, fmt.Errorf("resilience: unknown chaos key %q", key)
		}
	}
	if err := o.validate(); err != nil {
		return ChaosOptions{}, err
	}
	return o, nil
}

// Chaos injects faults into an HTTP handler chain. One injection fires
// per request at most (drawn in a fixed order: error, panic, timeout,
// latency), so probabilities compose predictably.
type Chaos struct {
	opts ChaosOptions
	// OnInject, when set, observes every injection by kind
	// ("error", "panic", "timeout", "latency").
	OnInject func(kind string)

	mu  sync.Mutex
	rng *rand.Rand
}

// NewChaos builds an injector; returns an error for malformed options.
func NewChaos(opts ChaosOptions) (*Chaos, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Chaos{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}, nil
}

// draw picks at most one injection kind for a request.
func (c *Chaos) draw() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.rng.Float64()
	for _, k := range [...]struct {
		kind string
		p    float64
	}{
		{"error", c.opts.ErrorProb},
		{"panic", c.opts.PanicProb},
		{"timeout", c.opts.TimeoutProb},
		{"latency", c.opts.LatencyProb},
	} {
		if u < k.p {
			return k.kind
		}
		u -= k.p
	}
	return ""
}

// Middleware wraps next with fault injection. A nil or disabled Chaos
// returns next unchanged.
func (c *Chaos) Middleware(next http.Handler) http.Handler {
	if c == nil || !c.opts.Enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch kind := c.draw(); kind {
		case "error":
			c.inject(kind)
			w.Header().Set("X-Chaos", "error")
			http.Error(w, "chaos: injected error", http.StatusServiceUnavailable)
			return
		case "panic":
			c.inject(kind)
			panic("chaos: injected panic")
		case "timeout":
			c.inject(kind)
			// Stall until the request dies (per-request timeout or client
			// disconnect), then answer like a gateway that gave up.
			<-r.Context().Done()
			w.Header().Set("X-Chaos", "timeout")
			http.Error(w, "chaos: injected timeout", http.StatusGatewayTimeout)
			return
		case "latency":
			c.inject(kind)
			// Delay, then run the handler anyway — even if the context
			// expired meanwhile, so the server's own timeout handling
			// (not the injector) decides the response.
			select {
			case <-time.After(c.opts.Latency):
			case <-r.Context().Done():
			}
		}
		next.ServeHTTP(w, r)
	})
}

func (c *Chaos) inject(kind string) {
	if c.OnInject != nil {
		c.OnInject(kind)
	}
}
