package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock steps time manually.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var errBoom = errors.New("boom")

func failing() error { return errBoom }
func passing() error { return nil }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clock := &fakeClock{}
	var transitions []string
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Clock:            clock.now,
		OnStateChange: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})
	for i := 0; i < 3; i++ {
		if err := b.Do(failing); !errors.Is(err, errBoom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	// While open, calls short-circuit.
	called := false
	if err := b.Do(func() error { called = true; return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if called {
		t.Fatal("open breaker ran the function")
	}
	if len(transitions) != 1 || transitions[0] != "closed->open" {
		t.Errorf("transitions = %v", transitions)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clock := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute, Clock: clock.now})
	b.Do(failing)
	if b.State() != Open {
		t.Fatal("not open")
	}
	// Before the cooldown: still rejecting.
	if err := b.Do(passing); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v before cooldown", err)
	}
	clock.advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", b.State())
	}
	// A failed probe re-opens for another full cooldown.
	if err := b.Do(failing); !errors.Is(err, errBoom) {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Open {
		t.Fatal("failed probe did not re-open")
	}
	clock.advance(time.Minute)
	// A successful probe closes.
	if err := b.Do(passing); err != nil {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after good probe, want closed", b.State())
	}
}

func TestBreakerSingleProbe(t *testing.T) {
	clock := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Second, Clock: clock.now})
	b.Do(failing)
	clock.advance(time.Second)

	probeEntered := make(chan struct{})
	probeRelease := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- b.Do(func() error {
			close(probeEntered)
			<-probeRelease
			return nil
		})
	}()
	<-probeEntered
	// While the probe is in flight, other callers are rejected.
	if err := b.Do(passing); !errors.Is(err, ErrOpen) {
		t.Fatalf("concurrent call err = %v, want ErrOpen", err)
	}
	close(probeRelease)
	if err := <-done; err != nil {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Closed {
		t.Fatal("probe success did not close the breaker")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: 2})
	b.Do(failing)
	b.Do(passing)
	b.Do(failing)
	if b.State() != Closed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.Do(failing)
	if b.State() != Open {
		t.Fatal("consecutive failures did not open the breaker")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open", BreakerState(9): "BreakerState(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}
