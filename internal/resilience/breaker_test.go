package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock steps time manually.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var errBoom = errors.New("boom")

func failing() error { return errBoom }
func passing() error { return nil }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clock := &fakeClock{}
	var transitions []string
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Clock:            clock.now,
		OnStateChange: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})
	for i := 0; i < 3; i++ {
		if err := b.Do(failing); !errors.Is(err, errBoom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	// While open, calls short-circuit.
	called := false
	if err := b.Do(func() error { called = true; return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if called {
		t.Fatal("open breaker ran the function")
	}
	if len(transitions) != 1 || transitions[0] != "closed->open" {
		t.Errorf("transitions = %v", transitions)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clock := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute, Clock: clock.now})
	b.Do(failing)
	if b.State() != Open {
		t.Fatal("not open")
	}
	// Before the cooldown: still rejecting.
	if err := b.Do(passing); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v before cooldown", err)
	}
	clock.advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", b.State())
	}
	// A failed probe re-opens for another full cooldown.
	if err := b.Do(failing); !errors.Is(err, errBoom) {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Open {
		t.Fatal("failed probe did not re-open")
	}
	clock.advance(time.Minute)
	// A successful probe closes.
	if err := b.Do(passing); err != nil {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after good probe, want closed", b.State())
	}
}

func TestBreakerSingleProbe(t *testing.T) {
	clock := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Second, Clock: clock.now})
	b.Do(failing)
	clock.advance(time.Second)

	probeEntered := make(chan struct{})
	probeRelease := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- b.Do(func() error {
			close(probeEntered)
			<-probeRelease
			return nil
		})
	}()
	<-probeEntered
	// While the probe is in flight, other callers are rejected.
	if err := b.Do(passing); !errors.Is(err, ErrOpen) {
		t.Fatalf("concurrent call err = %v, want ErrOpen", err)
	}
	close(probeRelease)
	if err := <-done; err != nil {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Closed {
		t.Fatal("probe success did not close the breaker")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: 2})
	b.Do(failing)
	b.Do(passing)
	b.Do(failing)
	if b.State() != Closed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.Do(failing)
	if b.State() != Open {
		t.Fatal("consecutive failures did not open the breaker")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open", BreakerState(9): "BreakerState(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}

// TestBreakerHalfOpenConcurrentRace: during the half-open window, a
// stampede of concurrent Do calls admits exactly one probe; everyone
// else gets ErrOpen without running, and a failed probe re-opens
// cleanly for a full cooldown. Run under -race (make fleet-heal).
func TestBreakerHalfOpenConcurrentRace(t *testing.T) {
	clock := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute, Clock: clock.now})
	b.Do(failing)
	clock.advance(time.Minute) // half-open window

	const goroutines = 32
	probeEntered := make(chan struct{})
	probeRelease := make(chan struct{})
	var wg sync.WaitGroup
	var probeRuns, openErrs atomic.Int64
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			err := b.Do(func() error {
				probeRuns.Add(1)
				probeEntered <- struct{}{}
				<-probeRelease
				return errBoom
			})
			if errors.Is(err, ErrOpen) {
				openErrs.Add(1)
			}
		}()
	}
	// Hold the single admitted probe open until every other goroutine
	// has had the chance to race it, then let it fail.
	<-probeEntered
	for openErrs.Load() < goroutines-1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(probeRelease)
	wg.Wait()

	if n := probeRuns.Load(); n != 1 {
		t.Fatalf("half-open window admitted %d probes, want exactly 1", n)
	}
	if n := openErrs.Load(); n != goroutines-1 {
		t.Fatalf("%d ErrOpen rejections, want %d", n, goroutines-1)
	}
	// The failed probe re-opened the circuit for a full cooldown.
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if err := b.Do(passing); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v right after failed probe, want ErrOpen", err)
	}
	clock.advance(time.Minute)
	if err := b.Do(passing); err != nil {
		t.Fatalf("probe after second cooldown: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
}

// TestBreakerNeutralErrorsNotCounted: errors the IsFailure classifier
// rejects (context cancellations of hedged losers) never advance the
// failure streak, and a neutral half-open probe re-opens with the
// cooldown already spent so the next call probes again immediately.
func TestBreakerNeutralErrorsNotCounted(t *testing.T) {
	clock := &fakeClock{}
	canceled := context.Canceled
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 2,
		Cooldown:         time.Minute,
		Clock:            clock.now,
		IsFailure:        func(err error) bool { return !errors.Is(err, context.Canceled) },
	})
	// A pile of cancellations leaves the circuit closed.
	for i := 0; i < 10; i++ {
		if err := b.Do(func() error { return canceled }); !errors.Is(err, context.Canceled) {
			t.Fatalf("neutral error not returned verbatim: %v", err)
		}
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after neutral errors, want closed", b.State())
	}
	// Real failures still trip it.
	b.Do(failing)
	b.Do(failing)
	if b.State() != Open {
		t.Fatalf("state = %v after real failures, want open", b.State())
	}
	// A neutral half-open probe does not close the circuit, but leaves it
	// immediately probeable: the next real call runs.
	clock.advance(time.Minute)
	if err := b.Do(func() error { return canceled }); !errors.Is(err, context.Canceled) {
		t.Fatalf("neutral probe error: %v", err)
	}
	ran := false
	if err := b.Do(func() error { ran = true; return nil }); err != nil {
		t.Fatalf("probe after neutral outcome: %v", err)
	}
	if !ran {
		t.Fatal("call after neutral probe did not run")
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}
