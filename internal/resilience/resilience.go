// Package resilience is heteromixd's failure-handling toolkit: a
// consecutive-failure circuit breaker, a seedable chaos-injection
// middleware, an HTTP client with capped exponential backoff and full
// jitter, and a panic-recovery middleware.
//
// The package depends only on the standard library and exposes hooks
// (OnStateChange, onPanic, injectable clocks and sleepers) instead of
// importing the server's metrics registry, so it slots under any HTTP
// stack and stays trivially testable: every probabilistic or timed
// behavior can be driven deterministically.
package resilience
