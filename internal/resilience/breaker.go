package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Do without running the function when
// the circuit is open (or a half-open probe is already in flight).
// Callers treat it as "the dependency is known-bad right now — serve a
// fallback instead of piling on".
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState is the classic three-state circuit.
type BreakerState int

const (
	// Closed passes calls through, counting consecutive failures.
	Closed BreakerState = iota
	// Open rejects calls outright until the cooldown elapses.
	Open
	// HalfOpen admits a single probe; its outcome closes or re-opens.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerOptions tunes a Breaker. The zero value gets sane defaults.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Clock is the time source (default time.Now); injectable so tests
	// step through cooldowns without sleeping.
	Clock func() time.Time
	// OnStateChange, when set, observes every transition.
	OnStateChange func(from, to BreakerState)
	// IsFailure classifies fn's errors. Errors it rejects are neutral:
	// returned to the caller but not counted against the threshold — how
	// a hedging coordinator keeps deliberate context cancellations of
	// losing requests from tripping a healthy replica's breaker. A
	// neutral half-open probe re-opens the circuit with the cooldown
	// already elapsed, so the next call probes again immediately.
	// Default: every non-nil error is a failure.
	IsFailure func(err error) bool
}

// Breaker is a consecutive-failure circuit breaker safe for concurrent
// use.
type Breaker struct {
	opts BreakerOptions

	mu        sync.Mutex
	state     BreakerState
	failures  int
	openUntil time.Time
	probing   bool
}

// NewBreaker builds a breaker; zero-valued options take defaults.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Breaker{opts: opts}
}

// State reports the current state (refreshing open→half-open if the
// cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && !b.opts.Clock().Before(b.openUntil) {
		return HalfOpen
	}
	return b.state
}

// transition moves to a state and fires the hook. The hook runs under
// the lock, so keep hooks cheap (a counter bump).
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.opts.OnStateChange != nil {
		b.opts.OnStateChange(from, to)
	}
}

// Do runs fn through the breaker. When the circuit is open (or another
// half-open probe is in flight) it returns ErrOpen without calling fn;
// otherwise fn's error is returned verbatim and counted.
func (b *Breaker) Do(fn func() error) error {
	b.mu.Lock()
	switch b.state {
	case Open:
		if b.opts.Clock().Before(b.openUntil) {
			b.mu.Unlock()
			return ErrOpen
		}
		b.transition(HalfOpen)
		b.probing = true
	case HalfOpen:
		if b.probing {
			b.mu.Unlock()
			return ErrOpen
		}
		b.probing = true
	}
	b.mu.Unlock()

	err := fn()

	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.failures = 0
		b.transition(Closed)
		return nil
	}
	if b.opts.IsFailure != nil && !b.opts.IsFailure(err) {
		// Neutral outcome: the call was abandoned, not refused, so it says
		// nothing about the dependency. Leave the failure streak alone; if
		// this was the half-open probe, re-open with the cooldown already
		// elapsed so the next caller probes again immediately.
		if b.state == HalfOpen {
			b.openUntil = b.opts.Clock()
			b.transition(Open)
		}
		return err
	}
	b.failures++
	if b.state == HalfOpen || b.failures >= b.opts.FailureThreshold {
		b.openUntil = b.opts.Clock().Add(b.opts.Cooldown)
		b.transition(Open)
	}
	return err
}
