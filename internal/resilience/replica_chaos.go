package resilience

// Replica-level chaos: whole-process fault modes for fleet soak tests.
// The probabilistic Chaos middleware models a flaky but live handler;
// ReplicaChaos models the failure domains a coordinator's self-healing
// must survive — a killed process, a network partition, a cold replica
// just after revival, and a flapping one — and, unlike an
// httptest.Server.Close, every mode is reversible mid-test, so a soak
// can kill and revive the same replica while traffic flows.

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ReplicaFault is one replica-level fault kind.
type ReplicaFault int

const (
	// FaultNone serves normally.
	FaultNone ReplicaFault = iota
	// FaultKill answers 503 to every request — including /readyz, so
	// health probes see the death just like traffic does.
	FaultKill
	// FaultPartition hangs every request until its context is done (the
	// client gives up or the propagated deadline fires), then answers
	// 504 — a replica that is reachable but unresponsive.
	FaultPartition
	// FaultSlowStart delays every request by the configured latency: a
	// revived replica serving with cold caches.
	FaultSlowStart
	// FaultFlap alternates kill and serve per request, the oscillation
	// the health state machine's hysteresis must not thrash on.
	FaultFlap
)

// String names the fault kind.
func (f ReplicaFault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultKill:
		return "kill"
	case FaultPartition:
		return "partition"
	case FaultSlowStart:
		return "slow-start"
	case FaultFlap:
		return "flap"
	default:
		return fmt.Sprintf("ReplicaFault(%d)", int(f))
	}
}

// ParseReplicaFault inverts String.
func ParseReplicaFault(s string) (ReplicaFault, error) {
	switch s {
	case "none":
		return FaultNone, nil
	case "kill":
		return FaultKill, nil
	case "partition":
		return FaultPartition, nil
	case "slow-start":
		return FaultSlowStart, nil
	case "flap":
		return FaultFlap, nil
	default:
		return 0, fmt.Errorf("resilience: unknown replica fault %q", s)
	}
}

// ReplicaChaos injects one switchable replica-level fault in front of a
// handler. The zero value serves normally; safe for concurrent use.
type ReplicaChaos struct {
	mu     sync.Mutex
	fault  ReplicaFault
	slowBy time.Duration
	reqs   int
}

// NewReplicaChaos returns a chaos valve in the FaultNone state.
func NewReplicaChaos() *ReplicaChaos { return &ReplicaChaos{} }

// Set switches the active fault kind.
func (rc *ReplicaChaos) Set(f ReplicaFault) {
	rc.mu.Lock()
	rc.fault = f
	rc.mu.Unlock()
}

// Kill is Set(FaultKill).
func (rc *ReplicaChaos) Kill() { rc.Set(FaultKill) }

// Revive is Set(FaultNone).
func (rc *ReplicaChaos) Revive() { rc.Set(FaultNone) }

// SlowStart switches to FaultSlowStart with the given added latency.
func (rc *ReplicaChaos) SlowStart(d time.Duration) {
	rc.mu.Lock()
	rc.fault = FaultSlowStart
	rc.slowBy = d
	rc.mu.Unlock()
}

// Fault reports the active kind.
func (rc *ReplicaChaos) Fault() ReplicaFault {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.fault
}

// kill answers the 503 a dead replica's load balancer would.
func replicaKilled(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Chaos", "replica-kill")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte(`{"error":"chaos: replica killed"}`))
}

// Middleware wraps next with the active fault. Reading the fault once
// per request keeps a mid-request Set from tearing one response.
func (rc *ReplicaChaos) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc.mu.Lock()
		f := rc.fault
		slow := rc.slowBy
		n := rc.reqs
		rc.reqs++
		rc.mu.Unlock()
		switch f {
		case FaultKill:
			replicaKilled(w)
			return
		case FaultFlap:
			if n%2 == 0 {
				replicaKilled(w)
				return
			}
		case FaultPartition:
			<-r.Context().Done()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Chaos", "replica-partition")
			w.WriteHeader(http.StatusGatewayTimeout)
			w.Write([]byte(`{"error":"chaos: partitioned"}`))
			return
		case FaultSlowStart:
			t := time.NewTimer(slow)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(`{"error":"chaos: slow-start abandoned"}`))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}
