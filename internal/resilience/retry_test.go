package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sleepRecorder replaces the client's sleeper so tests run instantly
// and can assert the delays chosen.
type sleepRecorder struct {
	delays []time.Duration
}

func (s *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.delays = append(s.delays, d)
	return nil
}

func newRetryClient(t *testing.T, srvURL string, opts RetryOptions) (*Client, *sleepRecorder) {
	t.Helper()
	rec := &sleepRecorder{}
	opts.sleep = rec.sleep
	return NewClient(nil, opts), rec
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			http.Error(w, "later", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c, rec := newRetryClient(t, srv.URL, RetryOptions{MaxAttempts: 4, Seed: 1})
	req, _ := http.NewRequest("GET", srv.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code = %d", resp.StatusCode)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want 3", calls)
	}
	if len(rec.delays) != 2 {
		t.Errorf("slept %d times, want 2", len(rec.delays))
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c, _ := newRetryClient(t, srv.URL, RetryOptions{MaxAttempts: 3, Seed: 1})
	req, _ := http.NewRequest("GET", srv.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("code = %d", resp.StatusCode)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want exactly MaxAttempts", calls)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	// Base delay tiny so the jittered backoff can never reach 2s: the
	// observed delay must come from the header.
	c, rec := newRetryClient(t, srv.URL, RetryOptions{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Second, Seed: 1,
	})
	req, _ := http.NewRequest("GET", srv.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rec.delays) != 1 || rec.delays[0] != 2*time.Second {
		t.Fatalf("delays = %v, want [2s] from Retry-After", rec.delays)
	}
}

func TestRetryAfterCappedAtMaxDelay(t *testing.T) {
	resp := &http.Response{Header: http.Header{"Retry-After": {"3600"}}}
	d, ok := retryAfter(resp, 5*time.Second)
	if !ok || d != 5*time.Second {
		t.Errorf("retryAfter = %v, %v; want capped 5s", d, ok)
	}
	resp.Header.Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
	if d, ok := retryAfter(resp, 5*time.Second); !ok || d != 5*time.Second {
		t.Errorf("HTTP-date retryAfter = %v, %v; want capped 5s", d, ok)
	}
	resp.Header.Set("Retry-After", "garbage")
	if _, ok := retryAfter(resp, 5*time.Second); ok {
		t.Error("garbage Retry-After honored")
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	c := NewClient(nil, RetryOptions{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 2})
	for attempt := 0; attempt < 10; attempt++ {
		window := 100 * time.Millisecond << uint(attempt)
		if window <= 0 || window > time.Second {
			window = time.Second
		}
		for i := 0; i < 50; i++ {
			if d := c.backoff(attempt); d < 0 || d >= window {
				t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, d, window)
			}
		}
	}
}

func TestRetryReplaysBody(t *testing.T) {
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		if len(bodies) == 1 {
			http.Error(w, "again", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c, _ := newRetryClient(t, srv.URL, RetryOptions{MaxAttempts: 2, Seed: 1})
	req, _ := http.NewRequest("POST", srv.URL, strings.NewReader(`{"x":1}`))
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != bodies[1] || bodies[1] != `{"x":1}` {
		t.Fatalf("bodies = %q, want the payload twice", bodies)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(nil, RetryOptions{MaxAttempts: 5, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL, nil)
	if _, err := c.Do(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRetryNetworkError(t *testing.T) {
	// A server that is immediately closed: every dial fails.
	srv := httptest.NewServer(okHandler())
	url := srv.URL
	srv.Close()

	c, rec := newRetryClient(t, url, RetryOptions{MaxAttempts: 3, Seed: 1})
	req, _ := http.NewRequest("GET", url, nil)
	if _, err := c.Do(req); err == nil {
		t.Fatal("expected a network error")
	}
	if len(rec.delays) != 2 {
		t.Errorf("slept %d times, want 2 (retried the dial failures)", len(rec.delays))
	}
}

// TestRetryCancelDuringBackoffAborts is the regression test for the
// backoff sleep honoring request-context cancellation: with a huge
// BaseDelay and a server that always sheds, cancelling the context
// mid-backoff must abort the pending retry immediately — through the
// real default sleeper, not the test recorder.
func TestRetryCancelDuringBackoffAborts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), RetryOptions{
		MaxAttempts: 10,
		BaseDelay:   30 * time.Second, // without cancellation this test hangs
		MaxDelay:    30 * time.Second,
		Seed:        3,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)

	go func() {
		time.Sleep(50 * time.Millisecond) // land inside the first backoff
		cancel()
	}()
	start := time.Now()
	_, err := c.Do(req)
	elapsed := time.Since(start)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to abort the pending retry", elapsed)
	}
}
