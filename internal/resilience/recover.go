package resilience

import (
	"net/http"
)

// recordingWriter tracks whether the handler already wrote a header, so
// the recovery path only sends a 500 when it still can.
type recordingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *recordingWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports flushing.
func (w *recordingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Recover wraps next so a handler panic becomes a 500 response instead
// of a crashed daemon. onPanic (optional) observes the recovered value
// — wire it to a metric and a log line. http.ErrAbortHandler passes
// through untouched, preserving net/http's abort contract.
func Recover(onPanic func(v any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := &recordingWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if onPanic != nil {
				onPanic(v)
			}
			if !rw.wrote {
				http.Error(rw, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(rw, r)
	})
}
