// Package pareto derives energy-deadline Pareto frontiers, the analysis
// device of the paper's §IV: among all cluster configurations that can
// service a job, a configuration is Pareto-optimal if no other finishes
// at least as fast with less energy. The set of Pareto-optimal points
// across all deadlines is the energy-deadline Pareto frontier (Figures
// 4-9), and its structure — the heterogeneous "sweet region" where energy
// falls linearly as the deadline relaxes, and the homogeneous "overlap
// region" of compute-bound workloads — carries the paper's observations.
package pareto

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"heteromix/internal/stats"
)

// TE is one configuration's (time, energy) outcome; Index points back at
// the caller's configuration slice.
type TE struct {
	Time   float64 `json:"time"`
	Energy float64 `json:"energy"`
	Index  int     `json:"index"`
}

// Frontier returns the Pareto-optimal subset of the given points, sorted
// by ascending time (hence strictly descending energy). Among points with
// identical time, only the cheapest can be optimal. Points with
// non-finite or non-positive coordinates are an error.
func Frontier(points []TE) ([]TE, error) {
	if len(points) == 0 {
		return nil, errors.New("pareto: no points")
	}
	for _, p := range points {
		if !(p.Time > 0) || !(p.Energy > 0) ||
			math.IsInf(p.Time, 0) || math.IsInf(p.Energy, 0) {
			return nil, fmt.Errorf("pareto: invalid point (%v, %v)", p.Time, p.Energy)
		}
	}
	sorted := append([]TE(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Energy < sorted[j].Energy
	})
	var out []TE
	best := math.Inf(1)
	for _, p := range sorted {
		if p.Energy < best {
			// Skip duplicates in time: the first (cheapest) wins.
			if len(out) > 0 && out[len(out)-1].Time == p.Time {
				continue
			}
			out = append(out, p)
			best = p.Energy
		}
	}
	return out, nil
}

// Dominates reports whether a dominates b: a is no worse on both axes and
// strictly better on at least one.
func Dominates(a, b TE) bool {
	return a.Time <= b.Time && a.Energy <= b.Energy &&
		(a.Time < b.Time || a.Energy < b.Energy)
}

// OnlineFrontier maintains a Pareto frontier incrementally: points are
// offered one at a time and the current frontier is always available.
// Feeding every point of a set yields exactly Frontier of that set
// (first-offered wins among exact duplicates), but the set itself is
// never held — only the frontier, which for the paper's configuration
// spaces is a few hundred entries against tens of thousands of points.
// The zero value is an empty frontier ready for use.
type OnlineFrontier struct {
	// pts is the current frontier: time strictly ascending, energy
	// strictly descending.
	pts []TE
}

// Insert offers p and reports the splice it caused, so callers can mirror
// payloads riding alongside each TE: when added, p landed at position pos
// after evicting removed now-dominated entries that started there. When
// p is dominated (or duplicates an existing point) added is false and the
// frontier is unchanged. Points with non-finite or non-positive
// coordinates are an error, as in Frontier.
func (f *OnlineFrontier) Insert(p TE) (pos, removed int, added bool, err error) {
	if !(p.Time > 0) || !(p.Energy > 0) ||
		math.IsInf(p.Time, 0) || math.IsInf(p.Energy, 0) {
		return 0, 0, false, fmt.Errorf("pareto: invalid point (%v, %v)", p.Time, p.Energy)
	}
	pos = sort.Search(len(f.pts), func(i int) bool { return f.pts[i].Time >= p.Time })
	// The predecessor is strictly faster; if it is also no more expensive
	// it dominates p.
	if pos > 0 && f.pts[pos-1].Energy <= p.Energy {
		return 0, 0, false, nil
	}
	// An equal-time entry that is at least as cheap covers p (including
	// the exact-duplicate case, where the first-offered point is kept).
	if pos < len(f.pts) && f.pts[pos].Time == p.Time && f.pts[pos].Energy <= p.Energy {
		return 0, 0, false, nil
	}
	// Entries from pos on are no faster than p; those at least as
	// expensive are now dominated. They form a contiguous run because
	// energies descend.
	end := pos
	for end < len(f.pts) && f.pts[end].Energy >= p.Energy {
		end++
	}
	removed = end - pos
	if removed > 0 {
		f.pts[pos] = p
		f.pts = append(f.pts[:pos+1], f.pts[end:]...)
	} else {
		f.pts = append(f.pts, TE{})
		copy(f.pts[pos+1:], f.pts[pos:])
		f.pts[pos] = p
	}
	return pos, removed, true, nil
}

// Add offers p, reporting only whether it joined the frontier.
func (f *OnlineFrontier) Add(p TE) (bool, error) {
	_, _, added, err := f.Insert(p)
	return added, err
}

// Len returns the current frontier size.
func (f *OnlineFrontier) Len() int { return len(f.pts) }

// Frontier returns a copy of the current frontier, time-ascending — the
// same (time, energy) sequence Frontier returns for every point offered
// so far; empty if no point has been offered.
func (f *OnlineFrontier) Frontier() []TE {
	return append([]TE(nil), f.pts...)
}

// EnergyAtDeadline returns the minimum energy any frontier point achieves
// within the deadline, and that point. The frontier must be the output of
// Frontier (time-ascending, energy-descending). It returns ok = false
// when no configuration meets the deadline.
func EnergyAtDeadline(frontier []TE, deadline float64) (TE, bool) {
	// The last frontier point with Time <= deadline has the least energy.
	i := sort.Search(len(frontier), func(i int) bool { return frontier[i].Time > deadline })
	if i == 0 {
		return TE{}, false
	}
	return frontier[i-1], true
}

// MinTime returns the frontier's fastest achievable time.
func MinTime(frontier []TE) float64 {
	if len(frontier) == 0 {
		return math.Inf(1)
	}
	return frontier[0].Time
}

// MinEnergy returns the frontier's lowest achievable energy (at the most
// relaxed deadline).
func MinEnergy(frontier []TE) float64 {
	if len(frontier) == 0 {
		return math.Inf(1)
	}
	return frontier[len(frontier)-1].Energy
}

// Label classifies a configuration for region analysis.
type Label int

// Labels for the two-type cluster analysis.
const (
	// LabelMix marks heterogeneous configurations (both node types).
	LabelMix Label = iota
	// LabelHomogeneousLow marks low-power-only configurations (ARM-only).
	LabelHomogeneousLow
	// LabelHomogeneousHigh marks high-performance-only configurations
	// (AMD-only).
	LabelHomogeneousHigh
)

// String names the label.
func (l Label) String() string {
	switch l {
	case LabelMix:
		return "mix"
	case LabelHomogeneousLow:
		return "low-only"
	case LabelHomogeneousHigh:
		return "high-only"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// Region is a maximal run of consecutive frontier points sharing a label.
type Region struct {
	Label Label
	// Start and End index into the frontier slice (End exclusive).
	Start, End int
	// TimeLo/TimeHi and EnergyHi/EnergyLo are the region's bounds.
	TimeLo, TimeHi     float64
	EnergyHi, EnergyLo float64
	// LinearR2 is the r^2 of a linear fit of energy over time across the
	// region's points (1 for regions of fewer than three points). The
	// paper's sweet region is characterized by energy falling linearly
	// as the deadline relaxes.
	LinearR2 float64
}

// Points returns how many frontier points the region spans.
func (r Region) Points() int { return r.End - r.Start }

// Regions segments a frontier into maximal same-label runs. labelOf maps
// a frontier point's Index back to its configuration's label.
func Regions(frontier []TE, labelOf func(index int) Label) []Region {
	var out []Region
	for i := 0; i < len(frontier); {
		l := labelOf(frontier[i].Index)
		j := i + 1
		for j < len(frontier) && labelOf(frontier[j].Index) == l {
			j++
		}
		out = append(out, makeRegion(frontier, l, i, j))
		i = j
	}
	return out
}

func makeRegion(frontier []TE, l Label, start, end int) Region {
	r := Region{
		Label: l, Start: start, End: end,
		TimeLo:   frontier[start].Time,
		TimeHi:   frontier[end-1].Time,
		EnergyHi: frontier[start].Energy,
		EnergyLo: frontier[end-1].Energy,
		LinearR2: 1,
	}
	if end-start >= 3 {
		var ts, es []float64
		for _, p := range frontier[start:end] {
			ts = append(ts, p.Time)
			es = append(es, p.Energy)
		}
		if fit, err := stats.LinearFit(ts, es); err == nil {
			r.LinearR2 = fit.R2
		}
	}
	return r
}

// SweetRegion returns the longest mix-labeled region of the frontier, the
// paper's "sweet region" (a union of Pareto-optimal heterogeneous sweet
// spots), and ok = false if the frontier has no mix-labeled points.
func SweetRegion(frontier []TE, labelOf func(index int) Label) (Region, bool) {
	var best Region
	found := false
	for _, r := range Regions(frontier, labelOf) {
		if r.Label == LabelMix && (!found || r.Points() > best.Points()) {
			best, found = r, true
		}
	}
	return best, found
}

// Hypervolume returns the area dominated by the frontier relative to a
// reference point (refTime, refEnergy) that every frontier point must
// dominate: the standard quantitative indicator for comparing Pareto
// frontiers. A larger hypervolume means a frontier that reaches lower
// energies at tighter deadlines. Frontier points outside the reference
// box contribute only their clipped part.
func Hypervolume(frontier []TE, refTime, refEnergy float64) (float64, error) {
	if len(frontier) == 0 {
		return 0, errors.New("pareto: empty frontier")
	}
	if refTime <= 0 || refEnergy <= 0 {
		return 0, fmt.Errorf("pareto: invalid reference point (%v, %v)", refTime, refEnergy)
	}
	// frontier is time-ascending, energy-descending: sweep time slabs.
	hv := 0.0
	for i, p := range frontier {
		lo := p.Time
		if lo >= refTime {
			break
		}
		hi := refTime
		if i+1 < len(frontier) && frontier[i+1].Time < refTime {
			hi = frontier[i+1].Time
		}
		height := refEnergy - p.Energy
		if height <= 0 {
			continue
		}
		hv += (hi - lo) * height
	}
	return hv, nil
}

// OverlapRegion returns the longest homogeneous-low region (the paper's
// "overlap region", where ARM-only configurations continue the frontier
// for compute-bound workloads), and ok = false if none exists.
func OverlapRegion(frontier []TE, labelOf func(index int) Label) (Region, bool) {
	var best Region
	found := false
	for _, r := range Regions(frontier, labelOf) {
		if r.Label == LabelHomogeneousLow && (!found || r.Points() > best.Points()) {
			best, found = r, true
		}
	}
	return best, found
}
