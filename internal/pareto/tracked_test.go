package pareto

import "testing"

func TestTrackedMirrorsFrontier(t *testing.T) {
	var tr Tracked[string]
	offers := []struct {
		te   TE
		v    string
		want bool
	}{
		{TE{Time: 10, Energy: 10}, "a", true},
		{TE{Time: 5, Energy: 20}, "b", true},   // faster, joins ahead
		{TE{Time: 12, Energy: 12}, "c", false}, // dominated by a
		{TE{Time: 4, Energy: 4}, "d", true},    // dominates a and b
		{TE{Time: 20, Energy: 2}, "e", true},   // cheapest tail
		{TE{Time: 20, Energy: 2}, "x", false},  // exact duplicate: first wins
	}
	for _, o := range offers {
		added, err := tr.Insert(o.te, o.v)
		if err != nil {
			t.Fatal(err)
		}
		if added != o.want {
			t.Fatalf("Insert(%v, %q) added=%v, want %v", o.te, o.v, added, o.want)
		}
	}
	pts, tes := tr.Frontier()
	if tr.Len() != 2 || len(pts) != 2 || len(tes) != 2 {
		t.Fatalf("frontier size %d/%d/%d, want 2", tr.Len(), len(pts), len(tes))
	}
	if pts[0] != "d" || pts[1] != "e" {
		t.Fatalf("payloads = %v, want [d e]", pts)
	}
	for i, te := range tes {
		if te.Index != i {
			t.Fatalf("TE %d has Index %d", i, te.Index)
		}
	}

	// Frontier must match the offline computation over the same offers.
	var all []TE
	for _, o := range offers {
		all = append(all, o.te)
	}
	want, err := Frontier(all)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if tes[i].Time != want[i].Time || tes[i].Energy != want[i].Energy {
			t.Fatalf("tracked frontier %d = %v, want %v", i, tes[i], want[i])
		}
	}
}

func TestTrackedClone(t *testing.T) {
	// The producer reuses one backing array; Clone must snapshot retained
	// values at insert time.
	scratch := []int{0}
	tr := Tracked[[]int]{Clone: func(v []int) []int { return append([]int(nil), v...) }}
	for i, te := range []TE{{Time: 1, Energy: 9}, {Time: 2, Energy: 5}, {Time: 3, Energy: 1}} {
		scratch[0] = i + 1
		if _, err := tr.Insert(te, scratch); err != nil {
			t.Fatal(err)
		}
	}
	scratch[0] = 99
	pts, _ := tr.Frontier()
	for i, p := range pts {
		if p[0] != i+1 {
			t.Fatalf("payload %d = %v, want [%d]", i, p, i+1)
		}
	}
}

func TestTrackedRejectsInvalid(t *testing.T) {
	var tr Tracked[int]
	if _, err := tr.Insert(TE{Time: -1, Energy: 1}, 0); err == nil {
		t.Error("negative time should error")
	}
	if tr.Len() != 0 {
		t.Error("failed insert must not grow the payload")
	}
}
