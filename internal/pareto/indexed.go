package pareto

import "sort"

// TrackedIndexed is Tracked with an order-independent duplicate rule:
// alongside each retained payload it carries the point's index in some
// canonical enumeration order, and among exact (time, energy)
// duplicates it keeps the smallest-indexed offer no matter the order
// offers arrive. Tracked's first-offered-wins rule equals this only
// when points are offered in canonical order; a sharded walker visits
// its slice in permuted order, so it needs the index rule for its
// partial frontier — and a merge of partial frontiers needs it again —
// to land bit-identical to the serial walk.
type TrackedIndexed[T any] struct {
	// Clone, as in Tracked, copies a value out of a producer's scratch
	// buffer at the moment it is retained.
	Clone func(T) T

	f       OnlineFrontier
	payload []T
	index   []uint64
}

// Insert offers (te, v) carrying canonical index idx. When te joins the
// frontier the value and index are retained (mirroring the frontier's
// splice); when te exactly duplicates a retained point and idx is
// smaller, the retained payload and index are replaced in place — the
// frontier's (time, energy) sequence is unchanged, so added stays
// false.
func (t *TrackedIndexed[T]) Insert(te TE, idx uint64, v T) (added bool, err error) {
	pos, removed, added, err := t.f.Insert(te)
	if err != nil {
		return false, err
	}
	if added {
		if t.Clone != nil {
			v = t.Clone(v)
		}
		if removed > 0 {
			t.payload[pos] = v
			t.payload = append(t.payload[:pos+1], t.payload[pos+removed:]...)
			t.index[pos] = idx
			t.index = append(t.index[:pos+1], t.index[pos+removed:]...)
		} else {
			var zero T
			t.payload = append(t.payload, zero)
			copy(t.payload[pos+1:], t.payload[pos:])
			t.payload[pos] = v
			t.index = append(t.index, 0)
			copy(t.index[pos+1:], t.index[pos:])
			t.index[pos] = idx
		}
		return true, nil
	}
	// Rejected offers are usually dominated and cost nothing more; only
	// an exact duplicate of a retained point can displace it, and only
	// toward a smaller canonical index.
	p := sort.Search(len(t.f.pts), func(i int) bool { return t.f.pts[i].Time >= te.Time })
	if p < len(t.f.pts) && t.f.pts[p].Time == te.Time && t.f.pts[p].Energy == te.Energy && idx < t.index[p] {
		if t.Clone != nil {
			v = t.Clone(v)
		}
		t.payload[p] = v
		t.index[p] = idx
	}
	return false, nil
}

// Len returns the current frontier size.
func (t *TrackedIndexed[T]) Len() int { return t.f.Len() }

// Frontier returns the retained payloads, their TEs (time-ascending,
// Index rewritten to the payload position, as in Tracked) and each
// point's canonical enumeration index.
func (t *TrackedIndexed[T]) Frontier() ([]T, []TE, []uint64) {
	tes := t.f.Frontier()
	for i := range tes {
		tes[i].Index = i
	}
	return append([]T(nil), t.payload...),
		tes,
		append([]uint64(nil), t.index...)
}
