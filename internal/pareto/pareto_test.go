package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrontierSimple(t *testing.T) {
	pts := []TE{
		{Time: 1, Energy: 10, Index: 0},
		{Time: 2, Energy: 5, Index: 1},
		{Time: 3, Energy: 7, Index: 2}, // dominated by index 1
		{Time: 4, Energy: 2, Index: 3},
		{Time: 0.5, Energy: 20, Index: 4},
	}
	fr, err := Frontier(pts)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{4, 0, 1, 3}
	if len(fr) != len(wantIdx) {
		t.Fatalf("frontier = %v", fr)
	}
	for i, w := range wantIdx {
		if fr[i].Index != w {
			t.Errorf("frontier[%d].Index = %d, want %d", i, fr[i].Index, w)
		}
	}
}

func TestFrontierTies(t *testing.T) {
	pts := []TE{
		{Time: 1, Energy: 5, Index: 0},
		{Time: 1, Energy: 3, Index: 1}, // same time, cheaper: wins
		{Time: 2, Energy: 3, Index: 2}, // same energy as 1, slower: dominated
	}
	fr, err := Frontier(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 1 || fr[0].Index != 1 {
		t.Errorf("frontier = %v, want single point index 1", fr)
	}
}

func TestFrontierErrors(t *testing.T) {
	if _, err := Frontier(nil); err == nil {
		t.Error("empty input should error")
	}
	bad := [][]TE{
		{{Time: 0, Energy: 1}},
		{{Time: 1, Energy: -1}},
		{{Time: math.NaN(), Energy: 1}},
		{{Time: 1, Energy: math.Inf(1)}},
	}
	for i, pts := range bad {
		if _, err := Frontier(pts); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func randomPoints(rng *rand.Rand, n int) []TE {
	pts := make([]TE, n)
	for i := range pts {
		pts[i] = TE{
			Time:   math.Exp(rng.NormFloat64()),
			Energy: math.Exp(rng.NormFloat64()),
			Index:  i,
		}
	}
	return pts
}

// Frontier invariants: (1) sorted ascending in time and strictly
// descending in energy; (2) no frontier point dominated by any input
// point; (3) every non-frontier point dominated by some frontier point.
func TestFrontierInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 5+rng.Intn(100))
		fr, err := Frontier(pts)
		if err != nil {
			return false
		}
		onFrontier := map[int]bool{}
		for i, p := range fr {
			onFrontier[p.Index] = true
			if i > 0 && (fr[i].Time <= fr[i-1].Time || fr[i].Energy >= fr[i-1].Energy) {
				return false
			}
		}
		for _, p := range fr {
			for _, q := range pts {
				if Dominates(q, p) {
					return false
				}
			}
		}
		for _, q := range pts {
			if onFrontier[q.Index] {
				continue
			}
			dominated := false
			for _, p := range fr {
				if Dominates(p, q) || (p.Time == q.Time && p.Energy == q.Energy) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDominates(t *testing.T) {
	a := TE{Time: 1, Energy: 1}
	cases := []struct {
		b    TE
		want bool
	}{
		{TE{Time: 2, Energy: 2}, true},
		{TE{Time: 1, Energy: 2}, true},
		{TE{Time: 2, Energy: 1}, true},
		{TE{Time: 1, Energy: 1}, false}, // equal: no strict improvement
		{TE{Time: 0.5, Energy: 2}, false},
		{TE{Time: 2, Energy: 0.5}, false},
	}
	for _, c := range cases {
		if got := Dominates(a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestEnergyAtDeadline(t *testing.T) {
	fr := []TE{
		{Time: 1, Energy: 10, Index: 0},
		{Time: 2, Energy: 5, Index: 1},
		{Time: 4, Energy: 2, Index: 2},
	}
	if _, ok := EnergyAtDeadline(fr, 0.5); ok {
		t.Error("deadline below minimum time should be infeasible")
	}
	if p, ok := EnergyAtDeadline(fr, 1); !ok || p.Index != 0 {
		t.Errorf("deadline 1 -> %v, %v", p, ok)
	}
	if p, ok := EnergyAtDeadline(fr, 3); !ok || p.Index != 1 {
		t.Errorf("deadline 3 -> %v, %v (want index 1)", p, ok)
	}
	if p, ok := EnergyAtDeadline(fr, 100); !ok || p.Index != 2 {
		t.Errorf("deadline 100 -> %v, %v (want index 2)", p, ok)
	}
}

// The energy-at-deadline staircase is non-increasing in the deadline.
func TestEnergyAtDeadlineMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr, err := Frontier(randomPoints(rng, 30))
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for d := 0.1; d < 10; d *= 1.3 {
			p, ok := EnergyAtDeadline(fr, d)
			if !ok {
				continue
			}
			if p.Energy > prev {
				return false
			}
			prev = p.Energy
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMinTimeMinEnergy(t *testing.T) {
	fr := []TE{{Time: 1, Energy: 10}, {Time: 4, Energy: 2}}
	if MinTime(fr) != 1 || MinEnergy(fr) != 2 {
		t.Errorf("MinTime/MinEnergy = %v/%v", MinTime(fr), MinEnergy(fr))
	}
	if !math.IsInf(MinTime(nil), 1) || !math.IsInf(MinEnergy(nil), 1) {
		t.Error("empty frontier should report +Inf")
	}
}

func TestRegions(t *testing.T) {
	// Frontier with labels M M M L L H (by index).
	fr := []TE{
		{Time: 1, Energy: 60, Index: 0},
		{Time: 2, Energy: 50, Index: 1},
		{Time: 3, Energy: 40, Index: 2},
		{Time: 4, Energy: 30, Index: 3},
		{Time: 5, Energy: 20, Index: 4},
		{Time: 6, Energy: 10, Index: 5},
	}
	labels := []Label{LabelMix, LabelMix, LabelMix, LabelHomogeneousLow, LabelHomogeneousLow, LabelHomogeneousHigh}
	regions := Regions(fr, func(i int) Label { return labels[i] })
	if len(regions) != 3 {
		t.Fatalf("regions = %v", regions)
	}
	if regions[0].Label != LabelMix || regions[0].Points() != 3 {
		t.Errorf("region 0 = %+v", regions[0])
	}
	if regions[0].TimeLo != 1 || regions[0].TimeHi != 3 ||
		regions[0].EnergyHi != 60 || regions[0].EnergyLo != 40 {
		t.Errorf("region 0 bounds wrong: %+v", regions[0])
	}
	// The mix region is exactly linear here.
	if regions[0].LinearR2 < 0.999 {
		t.Errorf("linear region r2 = %v", regions[0].LinearR2)
	}
	if regions[1].Label != LabelHomogeneousLow || regions[1].Points() != 2 {
		t.Errorf("region 1 = %+v", regions[1])
	}

	sweet, ok := SweetRegion(fr, func(i int) Label { return labels[i] })
	if !ok || sweet.Start != 0 || sweet.End != 3 {
		t.Errorf("sweet region = %+v, %v", sweet, ok)
	}
	overlap, ok := OverlapRegion(fr, func(i int) Label { return labels[i] })
	if !ok || overlap.Start != 3 || overlap.End != 5 {
		t.Errorf("overlap region = %+v, %v", overlap, ok)
	}
}

func TestSweetRegionAbsent(t *testing.T) {
	fr := []TE{{Time: 1, Energy: 2, Index: 0}}
	if _, ok := SweetRegion(fr, func(int) Label { return LabelHomogeneousHigh }); ok {
		t.Error("no mix points should yield no sweet region")
	}
	if _, ok := OverlapRegion(fr, func(int) Label { return LabelHomogeneousHigh }); ok {
		t.Error("no low-only points should yield no overlap region")
	}
}

func TestLabelString(t *testing.T) {
	cases := map[Label]string{
		LabelMix:             "mix",
		LabelHomogeneousLow:  "low-only",
		LabelHomogeneousHigh: "high-only",
		Label(9):             "label(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestRegionsPartitionFrontier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr, err := Frontier(randomPoints(rng, 40))
		if err != nil {
			return false
		}
		labelOf := func(i int) Label { return Label(i % 3) }
		regions := Regions(fr, labelOf)
		// Regions tile [0, len) exactly.
		at := 0
		for _, r := range regions {
			if r.Start != at || r.End <= r.Start {
				return false
			}
			at = r.End
		}
		return at == len(fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHypervolumeKnownValues(t *testing.T) {
	fr := []TE{
		{Time: 1, Energy: 3},
		{Time: 2, Energy: 1},
	}
	// Reference (4, 4): slab [1,2)x(4-3) = 1 plus slab [2,4)x(4-1) = 6.
	hv, err := Hypervolume(fr, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv-7) > 1e-12 {
		t.Errorf("hypervolume = %v, want 7", hv)
	}
	// Points at or beyond the reference time contribute nothing.
	hv, err = Hypervolume(fr, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv-0.5) > 1e-12 {
		t.Errorf("clipped hypervolume = %v, want 0.5", hv)
	}
	if _, err := Hypervolume(nil, 1, 1); err == nil {
		t.Error("empty frontier should error")
	}
	if _, err := Hypervolume(fr, 0, 1); err == nil {
		t.Error("bad reference should error")
	}
}

// Adding a dominating point never decreases hypervolume, and a superset
// frontier dominates its subset's hypervolume.
func TestHypervolumeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 20)
		fr, err := Frontier(pts)
		if err != nil {
			return false
		}
		ref := 100.0
		full, err := Hypervolume(fr, ref, ref)
		if err != nil {
			return false
		}
		if len(fr) < 2 {
			return full >= 0
		}
		sub, err := Hypervolume(fr[:len(fr)-1], ref, ref)
		if err != nil {
			return false
		}
		return full >= sub-1e-12 && full >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: feeding any point set through OnlineFrontier in any order of
// the generated sequence yields exactly Frontier of that set.
func TestOnlineFrontierMatchesBatch(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		// Pair up consecutive values into (time, energy) points on a small
		// grid so duplicates and ties are common.
		var pts []TE
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, TE{
				Time:   1 + float64(raw[i]%32),
				Energy: 1 + float64(raw[i+1]%32),
				Index:  len(pts),
			})
		}
		if len(pts) == 0 {
			return true
		}
		want, err := Frontier(pts)
		if err != nil {
			return false
		}
		var of OnlineFrontier
		for _, p := range pts {
			if _, err := of.Add(p); err != nil {
				return false
			}
		}
		got := of.Frontier()
		if len(got) != len(want) {
			t.Logf("online %d points, batch %d", len(got), len(want))
			return false
		}
		for i := range want {
			if got[i].Time != want[i].Time || got[i].Energy != want[i].Energy {
				t.Logf("point %d: online (%v,%v), batch (%v,%v)",
					i, got[i].Time, got[i].Energy, want[i].Time, want[i].Energy)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The splice coordinates returned by Insert describe the mutation exactly:
// mirroring them onto a shadow slice keeps it identical to the frontier.
func TestOnlineFrontierInsertSplices(t *testing.T) {
	f := func(raw []uint16) bool {
		var of OnlineFrontier
		var shadow []TE
		for i := 0; i+1 < len(raw); i += 2 {
			p := TE{Time: 1 + float64(raw[i]%16), Energy: 1 + float64(raw[i+1]%16)}
			pos, removed, added, err := of.Insert(p)
			if err != nil {
				return false
			}
			if !added {
				if removed != 0 {
					return false
				}
				continue
			}
			if removed > 0 {
				shadow[pos] = p
				shadow = append(shadow[:pos+1], shadow[pos+removed:]...)
			} else {
				shadow = append(shadow, TE{})
				copy(shadow[pos+1:], shadow[pos:])
				shadow[pos] = p
			}
		}
		cur := of.Frontier()
		if len(cur) != len(shadow) || len(cur) != of.Len() {
			return false
		}
		for i := range cur {
			if cur[i].Time != shadow[i].Time || cur[i].Energy != shadow[i].Energy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOnlineFrontierRejectsInvalid(t *testing.T) {
	var of OnlineFrontier
	for _, p := range []TE{
		{Time: 0, Energy: 1},
		{Time: 1, Energy: -1},
		{Time: math.Inf(1), Energy: 1},
		{Time: 1, Energy: math.NaN()},
	} {
		if _, err := of.Add(p); err == nil {
			t.Errorf("point %+v should error", p)
		}
	}
	if of.Len() != 0 {
		t.Errorf("rejected points must not join the frontier (len %d)", of.Len())
	}
}

// First-offered-wins among exact duplicates, matching Frontier's tie rule.
func TestOnlineFrontierDuplicateKeepsFirst(t *testing.T) {
	var of OnlineFrontier
	if added, _ := of.Add(TE{Time: 2, Energy: 5, Index: 1}); !added {
		t.Fatal("first point must join")
	}
	if added, _ := of.Add(TE{Time: 2, Energy: 5, Index: 2}); added {
		t.Error("exact duplicate must be rejected")
	}
	fr := of.Frontier()
	if len(fr) != 1 || fr[0].Index != 1 {
		t.Errorf("frontier %+v, want the first-offered point", fr)
	}
}
