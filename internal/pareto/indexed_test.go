package pareto

import (
	"math/rand"
	"testing"
)

// TestTrackedIndexedOrderIndependence is the property TrackedIndexed
// exists for: feeding an indexed point set in ANY order yields exactly
// what Tracked yields when fed in canonical index order — same TEs,
// same payloads, same indices.
func TestTrackedIndexedOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type ipt struct {
		te  TE
		idx uint64
		v   int
	}
	// A point cloud with deliberate exact duplicates (the same (t, e)
	// under several indices) and same-time different-energy collisions.
	var pts []ipt
	for i := 0; i < 400; i++ {
		tm := float64(1+rng.Intn(20)) / 4
		en := float64(1+rng.Intn(20)) * 3
		pts = append(pts, ipt{te: TE{Time: tm, Energy: en}, idx: uint64(i), v: i})
	}

	// Reference: canonical order through Tracked (first-offered-wins ==
	// smallest index when offered ascending).
	var ref Tracked[int]
	for _, p := range pts {
		if _, err := ref.Insert(p.te, p.v); err != nil {
			t.Fatal(err)
		}
	}
	refPts, refTEs := ref.Frontier()

	for trial := 0; trial < 20; trial++ {
		shuffled := append([]ipt(nil), pts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var ti TrackedIndexed[int]
		for _, p := range shuffled {
			if _, err := ti.Insert(p.te, p.idx, p.v); err != nil {
				t.Fatal(err)
			}
		}
		gotPts, gotTEs, gotIdx := ti.Frontier()
		if len(gotTEs) != len(refTEs) {
			t.Fatalf("trial %d: frontier size %d, want %d", trial, len(gotTEs), len(refTEs))
		}
		for i := range refTEs {
			if gotTEs[i] != refTEs[i] {
				t.Fatalf("trial %d: TE[%d] = %+v, want %+v", trial, i, gotTEs[i], refTEs[i])
			}
			if gotPts[i] != refPts[i] {
				t.Fatalf("trial %d: payload[%d] = %d, want %d", trial, i, gotPts[i], refPts[i])
			}
			if gotIdx[i] != uint64(refPts[i]) {
				t.Fatalf("trial %d: index[%d] = %d, want %d", trial, i, gotIdx[i], refPts[i])
			}
		}
	}
}

// TestTrackedIndexedDuplicateReplacement pins the in-place replacement:
// a later exact duplicate with a smaller index displaces the payload
// without touching the frontier shape; a larger index does not.
func TestTrackedIndexedDuplicateReplacement(t *testing.T) {
	var ti TrackedIndexed[string]
	ins := func(tm, en float64, idx uint64, v string, wantAdded bool) {
		t.Helper()
		added, err := ti.Insert(TE{Time: tm, Energy: en}, idx, v)
		if err != nil {
			t.Fatal(err)
		}
		if added != wantAdded {
			t.Fatalf("Insert(%v,%v,#%d) added=%v, want %v", tm, en, idx, added, wantAdded)
		}
	}
	ins(2, 10, 7, "late", true)
	ins(2, 10, 3, "early", false) // exact dup, smaller index: replaces
	ins(2, 10, 5, "middle", false)
	ins(1, 20, 0, "fast", true)
	pts, tes, idxs := ti.Frontier()
	if len(pts) != 2 || pts[0] != "fast" || pts[1] != "early" {
		t.Fatalf("payloads = %v", pts)
	}
	if idxs[0] != 0 || idxs[1] != 3 {
		t.Fatalf("indices = %v", idxs)
	}
	if tes[0].Time != 1 || tes[1].Time != 2 {
		t.Fatalf("tes = %v", tes)
	}
}

// TestTrackedIndexedClone: retained and replacement payloads pass
// through Clone, so scratch-buffer producers are safe.
func TestTrackedIndexedClone(t *testing.T) {
	scratch := []int{1}
	var ti TrackedIndexed[[]int]
	ti.Clone = func(v []int) []int { return append([]int(nil), v...) }
	if _, err := ti.Insert(TE{Time: 1, Energy: 1}, 9, scratch); err != nil {
		t.Fatal(err)
	}
	scratch[0] = 42
	if _, err := ti.Insert(TE{Time: 1, Energy: 1}, 2, scratch); err != nil {
		t.Fatal(err) // duplicate with smaller index: replacement clones too
	}
	scratch[0] = 99
	pts, _, idxs := ti.Frontier()
	if pts[0][0] != 42 || idxs[0] != 2 {
		t.Fatalf("retained %v #%v; scratch mutation leaked", pts[0], idxs[0])
	}
}

// TestTrackedIndexedInvalid: invalid points error exactly like
// OnlineFrontier.
func TestTrackedIndexedInvalid(t *testing.T) {
	var ti TrackedIndexed[int]
	if _, err := ti.Insert(TE{Time: 0, Energy: 1}, 0, 1); err == nil {
		t.Fatal("non-positive time accepted")
	}
	if _, err := ti.Insert(TE{Time: 1, Energy: -1}, 0, 1); err == nil {
		t.Fatal("negative energy accepted")
	}
}
