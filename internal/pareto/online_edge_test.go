package pareto

// Edge-case coverage for OnlineFrontier: exact duplicate points, exact
// ties in a single objective, and single-point spaces, each asserting
// parity with the batch Frontier over the same offer sequence.

import (
	"math"
	"reflect"
	"testing"
)

// assertBatchParity feeds points through both paths and requires the
// same (time, energy) sequence.
func assertBatchParity(t *testing.T, points []TE) []TE {
	t.Helper()
	var f OnlineFrontier
	for _, p := range points {
		if _, err := f.Add(p); err != nil {
			t.Fatalf("Add(%v): %v", p, err)
		}
	}
	online := f.Frontier()
	batch, err := Frontier(points)
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	if len(online) != len(batch) {
		t.Fatalf("online frontier has %d points, batch %d\nonline: %v\nbatch: %v",
			len(online), len(batch), online, batch)
	}
	for i := range online {
		if online[i].Time != batch[i].Time || online[i].Energy != batch[i].Energy {
			t.Fatalf("point %d: online (%v, %v) != batch (%v, %v)",
				i, online[i].Time, online[i].Energy, batch[i].Time, batch[i].Energy)
		}
	}
	return online
}

func TestOnlineFrontierSinglePoint(t *testing.T) {
	front := assertBatchParity(t, []TE{{Time: 2, Energy: 3, Index: 0}})
	if len(front) != 1 || front[0].Time != 2 || front[0].Energy != 3 {
		t.Fatalf("single-point frontier = %v", front)
	}
	if MinTime(front) != 2 || MinEnergy(front) != 3 {
		t.Errorf("MinTime/MinEnergy = %v/%v, want 2/3", MinTime(front), MinEnergy(front))
	}
	if p, ok := EnergyAtDeadline(front, 2); !ok || p.Energy != 3 {
		t.Errorf("EnergyAtDeadline(2) = %v, %v", p, ok)
	}
	if _, ok := EnergyAtDeadline(front, 1.9); ok {
		t.Error("EnergyAtDeadline before the only point reported ok")
	}
}

func TestOnlineFrontierExactDuplicates(t *testing.T) {
	// The same (time, energy) offered repeatedly: first offered wins, the
	// rest are rejected without disturbing the frontier.
	var f OnlineFrontier
	first := TE{Time: 1, Energy: 5, Index: 7}
	if added, err := f.Add(first); err != nil || !added {
		t.Fatalf("first Add = %v, %v", added, err)
	}
	for i := 0; i < 3; i++ {
		added, err := f.Add(TE{Time: 1, Energy: 5, Index: 100 + i})
		if err != nil {
			t.Fatal(err)
		}
		if added {
			t.Fatalf("duplicate %d was added", i)
		}
	}
	front := f.Frontier()
	if len(front) != 1 || front[0].Index != 7 {
		t.Fatalf("frontier = %v, want the first-offered point only", front)
	}
	// Parity including payload-free comparison with the batch path.
	assertBatchParity(t, []TE{
		{Time: 1, Energy: 5}, {Time: 1, Energy: 5},
		{Time: 2, Energy: 4}, {Time: 2, Energy: 4},
	})
}

func TestOnlineFrontierTimeTies(t *testing.T) {
	// Several points share an exact time; only the cheapest survives,
	// regardless of offer order.
	orders := [][]TE{
		{{Time: 1, Energy: 9}, {Time: 1, Energy: 5}, {Time: 1, Energy: 7}},
		{{Time: 1, Energy: 5}, {Time: 1, Energy: 7}, {Time: 1, Energy: 9}},
		{{Time: 1, Energy: 7}, {Time: 1, Energy: 9}, {Time: 1, Energy: 5}},
	}
	for i, pts := range orders {
		front := assertBatchParity(t, pts)
		if len(front) != 1 || front[0].Energy != 5 {
			t.Errorf("order %d: frontier = %v, want the 5 J point only", i, front)
		}
	}
}

func TestOnlineFrontierEnergyTies(t *testing.T) {
	// Exact ties in the energy objective at different times: the faster
	// point dominates (Dominates treats equal-energy, faster as better).
	front := assertBatchParity(t, []TE{
		{Time: 2, Energy: 5}, {Time: 1, Energy: 5}, {Time: 3, Energy: 5},
	})
	if len(front) != 1 || front[0].Time != 1 {
		t.Fatalf("frontier = %v, want only the fastest equal-energy point", front)
	}
	if !Dominates(TE{Time: 1, Energy: 5}, TE{Time: 2, Energy: 5}) {
		t.Error("Dominates should hold for equal energy at lower time")
	}
	if Dominates(TE{Time: 1, Energy: 5}, TE{Time: 1, Energy: 5}) {
		t.Error("a point must not dominate its exact duplicate")
	}
}

func TestOnlineFrontierTieThenImprovement(t *testing.T) {
	// An equal-time point that is strictly cheaper must replace the
	// incumbent (the insert path that splices rather than rejects).
	var f OnlineFrontier
	mustAdd := func(p TE, want bool) {
		t.Helper()
		added, err := f.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		if added != want {
			t.Fatalf("Add(%v) = %v, want %v (frontier %v)", p, added, want, f.Frontier())
		}
	}
	mustAdd(TE{Time: 1, Energy: 5, Index: 0}, true)
	mustAdd(TE{Time: 1, Energy: 4, Index: 1}, true)  // same time, cheaper: replaces
	mustAdd(TE{Time: 1, Energy: 4, Index: 2}, false) // exact duplicate of new incumbent
	front := f.Frontier()
	if len(front) != 1 || front[0].Energy != 4 || front[0].Index != 1 {
		t.Fatalf("frontier = %v, want the improved point", front)
	}
}

func TestOnlineFrontierRejectsNonPositiveAndNonFinite(t *testing.T) {
	var f OnlineFrontier
	for _, p := range []TE{
		{Time: 0, Energy: 1},
		{Time: 1, Energy: 0},
		{Time: -1, Energy: 1},
		{Time: math.Inf(1), Energy: 1},
		{Time: 1, Energy: math.Inf(1)},
		{Time: math.NaN(), Energy: 1},
	} {
		if _, err := f.Add(p); err == nil {
			t.Errorf("Add(%v) accepted an invalid point", p)
		}
	}
	if f.Len() != 0 {
		t.Errorf("invalid points mutated the frontier: %v", f.Frontier())
	}
}

func TestOnlineFrontierDuplicateHeavyParity(t *testing.T) {
	// A duplicate-heavy, tie-heavy stream exercising every insert path at
	// once, checked against the batch frontier.
	var pts []TE
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			pts = append(pts, TE{
				Time:   float64(1 + i%3),
				Energy: float64(10 - i + j%2),
				Index:  len(pts),
			})
		}
	}
	front := assertBatchParity(t, pts)
	for i := 1; i < len(front); i++ {
		if front[i].Time <= front[i-1].Time || front[i].Energy >= front[i-1].Energy {
			t.Fatalf("frontier not strictly monotone at %d: %v", i, front)
		}
	}
}

func TestOnlineFrontierInsertReportsSplice(t *testing.T) {
	var f OnlineFrontier
	for _, p := range []TE{{Time: 1, Energy: 10}, {Time: 2, Energy: 8}, {Time: 3, Energy: 6}} {
		if _, _, added, err := f.Insert(p); err != nil || !added {
			t.Fatalf("Insert(%v) = %v, %v", p, added, err)
		}
	}
	// A point dominating the middle and last entries splices them out.
	pos, removed, added, err := f.Insert(TE{Time: 1.5, Energy: 5})
	if err != nil || !added {
		t.Fatalf("Insert = %v, %v", added, err)
	}
	if pos != 1 || removed != 2 {
		t.Fatalf("splice = (pos %d, removed %d), want (1, 2)", pos, removed)
	}
	want := []TE{{Time: 1, Energy: 10}, {Time: 1.5, Energy: 5}}
	if got := f.Frontier(); !reflect.DeepEqual(got, want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
}
