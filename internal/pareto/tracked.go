package pareto

// Tracked pairs an OnlineFrontier with a payload slice that mirrors every
// splice, so streaming consumers can keep the full configuration (not just
// its TE projection) for exactly the points currently on the frontier.
// The zero value is ready for use; set Clone when the producer reuses the
// backing storage of offered values.
type Tracked[T any] struct {
	// Clone, when non-nil, is applied to a value at the moment it is
	// retained on the frontier. Producers that stream points through
	// reused scratch buffers set it so only the few hundred retained
	// points are ever copied out, not the full space.
	Clone func(T) T

	f       OnlineFrontier
	payload []T
}

// Insert offers (te, v). The value is retained (and cloned, if Clone is
// set) only when te joins the frontier; dominated offers leave the
// payload untouched and cost nothing.
func (t *Tracked[T]) Insert(te TE, v T) (added bool, err error) {
	pos, removed, added, err := t.f.Insert(te)
	if err != nil || !added {
		return added, err
	}
	if t.Clone != nil {
		v = t.Clone(v)
	}
	// Mirror the frontier's splice onto the payload slice.
	if removed > 0 {
		t.payload[pos] = v
		t.payload = append(t.payload[:pos+1], t.payload[pos+removed:]...)
	} else {
		var zero T
		t.payload = append(t.payload, zero)
		copy(t.payload[pos+1:], t.payload[pos:])
		t.payload[pos] = v
	}
	return true, nil
}

// Len returns the current frontier size.
func (t *Tracked[T]) Len() int { return t.f.Len() }

// Frontier returns the retained payloads and their TEs, time-ascending,
// with each TE's Index rewritten to its position in the payload slice.
func (t *Tracked[T]) Frontier() ([]T, []TE) {
	tes := t.f.Frontier()
	for i := range tes {
		tes[i].Index = i
	}
	return append([]T(nil), t.payload...), tes
}
