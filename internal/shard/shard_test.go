package shard

import (
	"fmt"
	"math"
	"testing"
)

// TestPermutationBijectionExhaustive checks, for a battery of
// adversarial sizes — empty, singleton, tiny, primes, powers of two and
// their neighbours — that Apply is a bijection of [0, size) (every image
// in range, no collisions) and Invert is its exact inverse.
func TestPermutationBijectionExhaustive(t *testing.T) {
	sizes := []uint64{0, 1, 2, 3, 4, 5, 7, 13, 97, 251, 256, 257, 1000, 4093, 4096, 65537, 1<<17 - 1}
	for _, size := range sizes {
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			p := NewPermutation(size, DefaultSeed)
			if p.Size() != size {
				t.Fatalf("Size() = %d, want %d", p.Size(), size)
			}
			seen := make([]bool, size)
			for i := uint64(0); i < size; i++ {
				j := p.Apply(i)
				if j >= size {
					t.Fatalf("Apply(%d) = %d out of [0, %d)", i, j, size)
				}
				if seen[j] {
					t.Fatalf("Apply collides at image %d (input %d)", j, i)
				}
				seen[j] = true
				if got := p.Invert(j); got != i {
					t.Fatalf("Invert(Apply(%d)) = %d", i, got)
				}
			}
		})
	}
}

// TestPermutationBijectionHuge samples the properties at sizes too
// large to enumerate: a prime near 2^31, exact 2^31, and the extremes
// of the uint64 domain. Invert∘Apply must be the identity and sampled
// images must neither collide nor escape the domain.
func TestPermutationBijectionHuge(t *testing.T) {
	sizes := []uint64{1 << 31, 1<<31 + 11, 1<<31 - 1, 1 << 62, math.MaxUint64}
	for _, size := range sizes {
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			p := NewPermutation(size, DefaultSeed)
			images := make(map[uint64]uint64)
			// Deterministic sample: edges plus a splitmix-derived spread.
			samples := []uint64{0, 1, 2, size / 2, size - 2, size - 1}
			x := uint64(12345)
			for k := 0; k < 200; k++ {
				x += 0x9e3779b97f4a7c15
				samples = append(samples, mix64(x)%size)
			}
			for _, i := range samples {
				j := p.Apply(i)
				if j >= size {
					t.Fatalf("Apply(%d) = %d out of [0, %d)", i, j, size)
				}
				if prev, ok := images[j]; ok && prev != i {
					t.Fatalf("Apply collides: %d and %d both map to %d", prev, i, j)
				}
				images[j] = i
				if got := p.Invert(j); got != i {
					t.Fatalf("Invert(Apply(%d)) = %d", i, got)
				}
			}
		})
	}
}

// TestPermutationIdentityCases: degenerate sizes are the identity, and
// out-of-domain inputs pass through unchanged.
func TestPermutationIdentityCases(t *testing.T) {
	for _, size := range []uint64{0, 1} {
		p := NewPermutation(size, 7)
		for _, i := range []uint64{0, 1, 5, math.MaxUint64} {
			if p.Apply(i) != i || p.Invert(i) != i {
				t.Fatalf("size %d: Apply/Invert(%d) not identity", size, i)
			}
		}
	}
	p := NewPermutation(100, 7)
	for _, i := range []uint64{100, 101, 1 << 40} {
		if p.Apply(i) != i || p.Invert(i) != i {
			t.Fatalf("out-of-domain %d must pass through unchanged", i)
		}
	}
}

// TestPermutationKeyed: the same seed reproduces the mapping; a
// different seed produces a different one (with overwhelming
// probability on a 4096-point domain).
func TestPermutationKeyed(t *testing.T) {
	const size = 4096
	a := NewPermutation(size, 1)
	b := NewPermutation(size, 1)
	c := NewPermutation(size, 2)
	differs := false
	for i := uint64(0); i < size; i++ {
		if a.Apply(i) != b.Apply(i) {
			t.Fatalf("same seed disagrees at %d", i)
		}
		if a.Apply(i) != c.Apply(i) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 1 and 2 produced identical permutations")
	}
}

// TestShardSlicesPartitionSpace: the n shard slices — shard i walking
// permuted positions j ≡ i (mod n) — partition [0, size) exactly, and
// each shard's cardinality is within one of size/n (what SliceSize
// reports).
func TestShardSlicesPartitionSpace(t *testing.T) {
	const size = 100_003 // prime: no alignment with any shard count
	p := NewPermutation(size, DefaultSeed)
	for _, n := range []int{1, 2, 4, 7} {
		seen := make([]bool, size)
		total := uint64(0)
		for i := 0; i < n; i++ {
			sh := Shard{Index: i, Count: n}
			count := uint64(0)
			for j := uint64(i); j < size; j += uint64(n) {
				idx := p.Apply(j)
				if seen[idx] {
					t.Fatalf("n=%d: index %d owned by two shards", n, idx)
				}
				seen[idx] = true
				count++
			}
			if count != sh.SliceSize(size) {
				t.Fatalf("n=%d shard %d: walked %d, SliceSize says %d", n, i, count, sh.SliceSize(size))
			}
			if min, max := size/uint64(n), size/uint64(n)+1; count < min || count > max {
				t.Fatalf("n=%d shard %d: cardinality %d outside [%d, %d]", n, i, count, min, max)
			}
			total += count
		}
		if total != size {
			t.Fatalf("n=%d: shards cover %d of %d indices", n, total, size)
		}
	}
}

func TestShardParse(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"0/4": {0, 4},
		"3/4": {3, 4},
	}
	for spec, want := range good {
		got, err := Parse(spec)
		if err != nil || got != want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", spec, got, err, want)
		}
		if got.String() != spec {
			t.Fatalf("String() = %q, want %q", got.String(), spec)
		}
	}
	bad := []string{"", "3", "3/", "/4", "4/4", "5/4", "-1/4", "0/0", "0/-2", "a/b", "1/2/3", "1 / 2"}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) accepted", spec)
		}
	}
}

func TestRingLookup(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(members, 0)
	// Deterministic: two rings over the same members agree; member order
	// must not matter.
	r2 := NewRing([]string{members[2], members[0], members[3], members[1]}, 0)
	counts := make(map[string]int)
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("workload-%d", i)
		m := r.Lookup(key)
		if m == "" {
			t.Fatal("empty lookup on a populated ring")
		}
		if m2 := r2.Lookup(key); m2 != m {
			t.Fatalf("member order changed routing: %q vs %q for %q", m, m2, key)
		}
		counts[m]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %q never selected", m)
		}
		// Uniform would be 1000 per member; require no worse than a 3x skew.
		if counts[m] < 333 || counts[m] > 3000 {
			t.Fatalf("member %q load %d is badly skewed: %v", m, counts[m], counts)
		}
	}

	// Consistency: dropping one member must remap (about) only the keys
	// it owned — far fewer than a modulo rehash's ~3/4.
	smaller := NewRing(members[:3], 0)
	moved := 0
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("workload-%d", i)
		if was := r.Lookup(key); was != members[3] && smaller.Lookup(key) != was {
			moved++
		}
	}
	if moved > 400 { // 10% of keys not owned by the removed member
		t.Fatalf("removing a member remapped %d/4000 unrelated keys", moved)
	}

	if got := (&Ring{}).Lookup("x"); got != "" {
		t.Fatalf("empty ring Lookup = %q", got)
	}
	if got := NewRing(nil, 8).Lookup("x"); got != "" {
		t.Fatalf("nil-member ring Lookup = %q", got)
	}
}

func TestRingSuccessors(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(members, 0)
	r2 := NewRing([]string{members[3], members[1], members[0], members[2]}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("shard:%d", i)
		succ := r.Successors(key)
		if len(succ) != len(members) {
			t.Fatalf("Successors(%q) has %d members, want %d: %v", key, len(succ), len(members), succ)
		}
		if succ[0] != r.Lookup(key) {
			t.Fatalf("Successors(%q)[0] = %q, Lookup = %q", key, succ[0], r.Lookup(key))
		}
		seen := make(map[string]bool)
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("Successors(%q) repeats %q: %v", key, m, succ)
			}
			seen[m] = true
		}
		// Deterministic across construction order: every coordinator
		// agrees on the whole failover walk, not just the owner.
		succ2 := r2.Successors(key)
		for j := range succ {
			if succ[j] != succ2[j] {
				t.Fatalf("member order changed the walk for %q: %v vs %v", key, succ, succ2)
			}
		}
	}
	// The second member varies across keys: the walk spreads failover
	// load instead of funneling every dead owner's shards to one peer.
	second := make(map[string]int)
	for i := 0; i < 500; i++ {
		second[r.Successors(fmt.Sprintf("shard:%d", i))[1]]++
	}
	if len(second) < 2 {
		t.Fatalf("failover successor is constant across keys: %v", second)
	}
	if got := (&Ring{}).Successors("x"); got != nil {
		t.Fatalf("empty ring Successors = %v", got)
	}
	if got := NewRing([]string{"only"}, 0).Successors("x"); len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-member Successors = %v", got)
	}
}
