// Package shard partitions enumeration index spaces across a fleet of
// replicas without coordination state. Its three pieces compose the
// scatter-gather serving mode:
//
//   - Permutation, a keyed Feistel network over [0, size): a bijective
//     shuffle of the mixed-radix index space computed in O(1) per index,
//     with no materialized assignment table. Striding the *permuted*
//     positions spreads any structure of the enumeration order (cheap
//     prefixes, expensive suffixes) uniformly across shards, so equal
//     cardinality implies balanced work.
//   - Shard, the "i/n" slice spec a replica serves: shard i of n owns
//     the permuted positions j ≡ i (mod n), a deterministic exact
//     partition because the permutation is a bijection.
//   - Ring, a consistent-hash ring used by the coordinator to route
//     predict/batch traffic so each replica's compiled-table cache
//     stays hot for the workloads it owns.
//
// Everything here is a pure function of its inputs — two replicas
// configured with the same size, seed and shard spec agree on the slice
// with no communication.
package shard

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// DefaultSeed keys the fleet's permutation. Every replica and the
// coordinator must agree on the seed for shard slices to partition the
// space; the value only steers load balance, never coverage, so a fixed
// fleet-wide constant is correct.
const DefaultSeed uint64 = 0x68657465726f6d69 // "heteromi"

// feistelRounds is the number of Feistel rounds. Four already mixes
// well for balanced networks with a strong round function; eight keeps
// a comfortable margin at ~40ns per Apply.
const feistelRounds = 8

// mix64 is the splitmix64 finalizer: an invertible 64-bit mixer whose
// output bits each depend on every input bit. It serves as both the
// round function and the round-key schedule.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Permutation is a keyed bijection over [0, size). The zero value (and
// any size <= 1) is the identity. Safe for concurrent use.
type Permutation struct {
	size     uint64
	halfBits uint
	halfMask uint64
	keys     [feistelRounds]uint64
}

// NewPermutation builds the keyed permutation over [0, size). The
// Feistel network runs on the smallest even bit-width covering size, so
// its domain is less than 4·size and cycle-walking out-of-range values
// back into [0, size) takes ~1.3 encryptions expected, worst cases a
// handful.
func NewPermutation(size, seed uint64) Permutation {
	p := Permutation{size: size}
	if size <= 1 {
		return p
	}
	nbits := bits.Len64(size - 1) // ceil(log2 size) for size >= 2
	if nbits < 2 {
		nbits = 2
	}
	half := uint((nbits + 1) / 2) // 1..32: the domain 2^(2·half) fits uint64
	p.halfBits = half
	p.halfMask = uint64(1)<<half - 1
	x := seed
	for r := range p.keys {
		x += 0x9e3779b97f4a7c15 // splitmix64 stream increment
		p.keys[r] = mix64(x)
	}
	return p
}

// Size returns the permutation's domain size.
func (p Permutation) Size() uint64 { return p.size }

// encrypt runs the balanced Feistel network once over the 2·halfBits
// domain: (L, R) -> (R, L ^ F(R, k)) per round.
func (p Permutation) encrypt(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for _, k := range p.keys {
		l, r = r, l^(mix64(r^k)&p.halfMask)
	}
	return l<<p.halfBits | r
}

// decrypt inverts encrypt: rounds in reverse, (L, R) -> (R ^ F(L, k), L).
func (p Permutation) decrypt(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for i := len(p.keys) - 1; i >= 0; i-- {
		l, r = r^(mix64(l^p.keys[i])&p.halfMask), l
	}
	return l<<p.halfBits | r
}

// Apply maps i to its permuted image in [0, size). Values at or beyond
// size are returned unchanged (the permutation is only defined on its
// domain). Out-of-domain intermediate values are cycle-walked: the
// Feistel network permutes [0, 2^2b), so repeatedly encrypting an
// out-of-range image must re-enter [0, size) — the walk follows one
// cycle of a finite permutation.
func (p Permutation) Apply(i uint64) uint64 {
	if p.size <= 1 || i >= p.size {
		return i
	}
	x := p.encrypt(i)
	for x >= p.size {
		x = p.encrypt(x)
	}
	return x
}

// Invert maps a permuted image back to its preimage: Invert(Apply(i))
// == i for every i in [0, size). Values at or beyond size are returned
// unchanged.
func (p Permutation) Invert(i uint64) uint64 {
	if p.size <= 1 || i >= p.size {
		return i
	}
	x := p.decrypt(i)
	for x >= p.size {
		x = p.decrypt(x)
	}
	return x
}

// Shard is one replica's slice spec: index Index of Count total shards.
// The zero value means "unsharded" (Count 0); "0/1" is the whole space
// as a single shard.
type Shard struct {
	Index int
	Count int
}

// Parse reads an "i/n" spec ("0/4", "3/4", ...).
func Parse(spec string) (Shard, error) {
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf(`shard: %q is not an "i/n" spec`, spec)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return Shard{}, fmt.Errorf("shard: index in %q: %v", spec, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return Shard{}, fmt.Errorf("shard: count in %q: %v", spec, err)
	}
	s := Shard{Index: i, Count: n}
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// Validate checks 0 <= Index < Count and Count >= 1.
func (s Shard) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("shard: count must be >= 1, got %d", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard: index must be in [0, %d), got %d", s.Count, s.Index)
	}
	return nil
}

// String renders the canonical "i/n" form.
func (s Shard) String() string { return strconv.Itoa(s.Index) + "/" + strconv.Itoa(s.Count) }

// SliceSize returns how many of size total points shard s owns: the
// count of positions j in [0, size) with j ≡ Index (mod Count), i.e.
// within one point of size/Count for every shard.
func (s Shard) SliceSize(size uint64) uint64 {
	if s.Count < 1 || uint64(s.Index) >= size {
		return 0
	}
	return (size - uint64(s.Index) + uint64(s.Count) - 1) / uint64(s.Count)
}

// defaultVnodes is the virtual-node count per ring member: enough that
// member loads stay within a few percent of uniform.
const defaultVnodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over a fixed member list. Lookups are
// a pure function of (members, key): every process that builds a Ring
// from the same member list routes identically, so a fleet needs no
// shared routing table. Immutable after construction and safe for
// concurrent use.
type Ring struct {
	points []ringPoint
}

// hashString is FNV-1a finished with mix64, so ring placement does not
// inherit FNV's weak avalanche on short keys.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// NewRing places vnodes virtual nodes per member on the circle
// (vnodes <= 0 selects the default 64).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on member so the order (and thus routing) does not
		// depend on the input member order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Lookup returns the member owning key: the first virtual node at or
// after the key's hash, wrapping around the circle. Empty rings return
// "".
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Successors returns every distinct member in ring order starting at
// key's owner: Successors(k)[0] == Lookup(k), and each later entry is
// the next new member met walking the circle — the deterministic
// failover order a coordinator reassigns a dead owner's work along.
// Like Lookup it is a pure function of (members, key), so every
// coordinator agrees on the walk with no communication.
func (r *Ring) Successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	seen := make(map[string]struct{})
	var out []string
	for k := 0; k < len(r.points); k++ {
		m := r.points[(start+k)%len(r.points)].member
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	return out
}
