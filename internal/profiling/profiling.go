// Package profiling wires the command-line tools' -cpuprofile and
// -memprofile flags to runtime/pprof, producing profiles readable with
// `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (when non-empty). Either path may be empty, in which case
// that profile is skipped; with both empty the stop function is a no-op.
// The stop function must run before the process exits — os.Exit skips
// deferred calls, so callers route their exit through it rather than
// deferring past an os.Exit.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
