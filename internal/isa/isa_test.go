package isa

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestISAString(t *testing.T) {
	if ARMv7A.String() != "armv7-a" || X8664.String() != "x86_64" {
		t.Errorf("ISA names wrong: %v %v", ARMv7A, X8664)
	}
	if got := ISA(99).String(); got != "isa(99)" {
		t.Errorf("unknown ISA string = %q", got)
	}
}

func TestISAValid(t *testing.T) {
	for _, i := range All() {
		if !i.Valid() {
			t.Errorf("%v should be valid", i)
		}
	}
	if ISA(99).Valid() {
		t.Error("ISA(99) should be invalid")
	}
}

func TestClassString(t *testing.T) {
	want := []string{"int", "fp", "mem", "branch", "crypto"}
	for i, c := range Classes() {
		if c.String() != want[i] {
			t.Errorf("class %d string = %q, want %q", i, c, want[i])
		}
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Errorf("unknown class string = %q", got)
	}
	if Class(-1).Valid() || Class(NumClasses).Valid() {
		t.Error("out-of-range classes should be invalid")
	}
}

func TestNewMix(t *testing.T) {
	m, err := NewMix(map[Class]float64{IntALU: 0.5, Mem: 0.3, Branch: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Fraction(IntALU); got != 0.5 {
		t.Errorf("IntALU fraction = %v", got)
	}
	if got := m.Fraction(FP); got != 0 {
		t.Errorf("FP fraction = %v, want 0", got)
	}
	if got := m.Fraction(Class(99)); got != 0 {
		t.Errorf("invalid class fraction = %v, want 0", got)
	}
}

func TestNewMixErrors(t *testing.T) {
	if _, err := NewMix(map[Class]float64{IntALU: 0.5}); err == nil {
		t.Error("sum != 1 should error")
	}
	if _, err := NewMix(map[Class]float64{IntALU: 1.5, Mem: -0.5}); err == nil {
		t.Error("negative fraction should error")
	}
	if _, err := NewMix(map[Class]float64{Class(99): 1}); err == nil {
		t.Error("invalid class should error")
	}
}

func TestMustMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMix with bad mix should panic")
		}
	}()
	MustMix(map[Class]float64{IntALU: 0.1})
}

func TestMixValidate(t *testing.T) {
	good := MustMix(map[Class]float64{IntALU: 1})
	if err := good.Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	var bad Mix
	bad[IntALU] = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("sum 0.5 should fail validation")
	}
	bad[IntALU] = -1
	bad[Mem] = 2
	if err := bad.Validate(); err == nil {
		t.Error("negative fraction should fail validation")
	}
}

func TestReweigh(t *testing.T) {
	m := MustMix(map[Class]float64{IntALU: 0.5, Crypto: 0.5})
	// Doubling crypto weight: 0.5 and 1.0 renormalize to 1/3 and 2/3.
	out, err := m.Reweigh(Crypto, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Fraction(Crypto)-2.0/3.0) > 1e-12 {
		t.Errorf("crypto fraction = %v, want 2/3", out.Fraction(Crypto))
	}
	if err := out.Validate(); err != nil {
		t.Errorf("reweighed mix invalid: %v", err)
	}
}

func TestReweighErrors(t *testing.T) {
	m := MustMix(map[Class]float64{Crypto: 1})
	if _, err := m.Reweigh(Class(99), 2); err == nil {
		t.Error("invalid class should error")
	}
	if _, err := m.Reweigh(Crypto, -1); err == nil {
		t.Error("negative factor should error")
	}
	if _, err := m.Reweigh(Crypto, 0); err == nil {
		t.Error("zeroing the only class should error")
	}
}

// Reweighing always yields a valid mix that sums to 1.
func TestReweighPreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := make(map[Class]float64)
		total := 0.0
		for _, c := range Classes() {
			v := rng.Float64()
			fr[c] = v
			total += v
		}
		for c := range fr {
			fr[c] /= total
		}
		m, err := NewMix(fr)
		if err != nil {
			return false
		}
		c := Classes()[rng.Intn(NumClasses)]
		out, err := m.Reweigh(c, rng.Float64()*5)
		if err != nil {
			return true // zeroing a dominant class can legitimately fail
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixString(t *testing.T) {
	m := MustMix(map[Class]float64{IntALU: 0.5, Mem: 0.5})
	s := m.String()
	if !strings.Contains(s, "int:0.50") || !strings.Contains(s, "mem:0.50") {
		t.Errorf("mix string = %q", s)
	}
	if strings.Contains(s, "fp") {
		t.Errorf("zero classes should be omitted: %q", s)
	}
	var empty Mix
	if empty.String() != "(empty mix)" {
		t.Errorf("empty mix string = %q", empty.String())
	}
}

func TestStreamValidate(t *testing.T) {
	good := Stream{ISA: ARMv7A, PerUnit: 100, Mix: MustMix(map[Class]float64{IntALU: 1})}
	if err := good.Validate(); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
	cases := []Stream{
		{ISA: ISA(99), PerUnit: 100, Mix: good.Mix},
		{ISA: ARMv7A, PerUnit: 0, Mix: good.Mix},
		{ISA: ARMv7A, PerUnit: -5, Mix: good.Mix},
		{ISA: ARMv7A, PerUnit: math.Inf(1), Mix: good.Mix},
		{ISA: ARMv7A, PerUnit: math.NaN(), Mix: good.Mix},
		{ISA: ARMv7A, PerUnit: 100}, // zero mix
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, s)
		}
	}
}

func TestStreamCounts(t *testing.T) {
	s := Stream{
		ISA:     X8664,
		PerUnit: 200,
		Mix:     MustMix(map[Class]float64{IntALU: 0.25, Mem: 0.75}),
	}
	if got := s.Instructions(10); got != 2000 {
		t.Errorf("Instructions(10) = %v, want 2000", got)
	}
	if got := s.ByClass(10, Mem); got != 1500 {
		t.Errorf("ByClass(10, Mem) = %v, want 1500", got)
	}
	if got := s.ByClass(10, Crypto); got != 0 {
		t.Errorf("ByClass(10, Crypto) = %v, want 0", got)
	}
}

// Per-class counts always sum to the total instruction count.
func TestStreamByClassSumsToTotal(t *testing.T) {
	f := func(seed int64, w float64) bool {
		w = math.Abs(w)
		if w > 1e12 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		fr := make(map[Class]float64)
		total := 0.0
		for _, c := range Classes() {
			v := rng.Float64() + 0.01
			fr[c] = v
			total += v
		}
		for c := range fr {
			fr[c] /= total
		}
		s := Stream{ISA: ARMv7A, PerUnit: 1 + rng.Float64()*1000, Mix: MustMix(fr)}
		sum := 0.0
		for _, c := range Classes() {
			sum += s.ByClass(w, c)
		}
		want := s.Instructions(w)
		return math.Abs(sum-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslationValidate(t *testing.T) {
	mix := MustMix(map[Class]float64{IntALU: 1})
	good := Translation{
		ARMv7A: {ISA: ARMv7A, PerUnit: 120, Mix: mix},
		X8664:  {ISA: X8664, PerUnit: 100, Mix: mix},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid translation rejected: %v", err)
	}

	missing := Translation{ARMv7A: {ISA: ARMv7A, PerUnit: 120, Mix: mix}}
	if err := missing.Validate(); err == nil {
		t.Error("missing ISA should fail validation")
	}

	mismatched := Translation{
		ARMv7A: {ISA: X8664, PerUnit: 120, Mix: mix},
		X8664:  {ISA: X8664, PerUnit: 100, Mix: mix},
	}
	if err := mismatched.Validate(); err == nil {
		t.Error("mismatched stream ISA should fail validation")
	}
}

func TestTranslationISAs(t *testing.T) {
	mix := MustMix(map[Class]float64{IntALU: 1})
	tr := Translation{
		X8664:  {ISA: X8664, PerUnit: 100, Mix: mix},
		ARMv7A: {ISA: ARMv7A, PerUnit: 120, Mix: mix},
	}
	got := tr.ISAs()
	if len(got) != 2 || got[0] != ARMv7A || got[1] != X8664 {
		t.Errorf("ISAs() = %v, want [armv7-a x86_64]", got)
	}
}
