// Package isa models the instruction-set-architecture abstraction of the
// paper. The two node types have different ISAs (x86_64 on the AMD Opteron
// K10, ARMv7-A on the ARM Cortex-A9), so the same representative phase Ps
// of a scale-out workload translates into a different number and mix of
// machine instructions on each (paper Eq. 5, I_Ps,ARM vs I_Ps,AMD).
//
// The abstraction is deliberately coarse: an instruction stream is
// summarized by its total count and its mix over instruction classes.
// This is exactly the granularity at which the paper's model operates —
// it never looks at individual instructions, only at per-phase counts
// obtained from hardware event counters.
package isa

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ISA identifies an instruction set architecture.
type ISA int

// The two ISAs of the paper's heterogeneous cluster (Table 1).
const (
	// ARMv7A is the ISA of the low-power ARM Cortex-A9 nodes.
	ARMv7A ISA = iota
	// X8664 is the ISA of the high-performance AMD Opteron K10 nodes.
	X8664
)

// All lists every supported ISA.
func All() []ISA { return []ISA{ARMv7A, X8664} }

// String returns the conventional name of the ISA.
func (i ISA) String() string {
	switch i {
	case ARMv7A:
		return "armv7-a"
	case X8664:
		return "x86_64"
	default:
		return fmt.Sprintf("isa(%d)", int(i))
	}
}

// Valid reports whether i is a known ISA.
func (i ISA) Valid() bool { return i == ARMv7A || i == X8664 }

// Class is a coarse instruction class. The paper's execution model assumes
// super-scalar out-of-order cores that can issue at least one integer, one
// floating-point and one memory instruction per cycle; the classes below
// let node micro-architectures assign different issue costs per class, and
// let the AMD node accelerate cryptography (the reason RSA-2048 is the one
// workload where AMD beats ARM on performance-per-watt, Table 5).
type Class int

// Instruction classes.
const (
	// IntALU covers integer arithmetic, logic and address computation.
	IntALU Class = iota
	// FP covers floating-point arithmetic.
	FP
	// Mem covers loads and stores (the class that can miss in caches and
	// stall on the shared memory controller).
	Mem
	// Branch covers control transfer.
	Branch
	// Crypto covers wide-word multiply/shift sequences typical of
	// public-key cryptography; x86_64 executes these with fewer, wider
	// operations than ARMv7-A.
	Crypto
	numClasses
)

// Classes lists every instruction class in declaration order.
func Classes() []Class { return []Class{IntALU, FP, Mem, Branch, Crypto} }

// NumClasses is the number of instruction classes.
const NumClasses = int(numClasses)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "int"
	case FP:
		return "fp"
	case Mem:
		return "mem"
	case Branch:
		return "branch"
	case Crypto:
		return "crypto"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Valid reports whether c is a known class.
func (c Class) Valid() bool { return c >= 0 && c < numClasses }

// Mix is a distribution of an instruction stream over classes. Fractions
// are non-negative and sum to 1 (within tolerance) for a valid Mix.
type Mix [NumClasses]float64

// NewMix builds a Mix from class fractions, validating that they are
// non-negative and sum to 1 within 1e-6.
func NewMix(fractions map[Class]float64) (Mix, error) {
	var m Mix
	sum := 0.0
	for c, f := range fractions {
		if !c.Valid() {
			return Mix{}, fmt.Errorf("isa: invalid class %d", int(c))
		}
		if f < 0 {
			return Mix{}, fmt.Errorf("isa: negative fraction %v for class %v", f, c)
		}
		m[c] = f
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return Mix{}, fmt.Errorf("isa: mix fractions sum to %v, want 1", sum)
	}
	return m, nil
}

// MustMix is NewMix that panics on error, for package-level workload
// definitions whose literals are validated by tests.
func MustMix(fractions map[Class]float64) Mix {
	m, err := NewMix(fractions)
	if err != nil {
		panic(err)
	}
	return m
}

// Fraction returns the fraction of instructions in class c.
func (m Mix) Fraction(c Class) float64 {
	if !c.Valid() {
		return 0
	}
	return m[c]
}

// Validate checks the Mix invariants.
func (m Mix) Validate() error {
	sum := 0.0
	for c, f := range m {
		if f < 0 {
			return fmt.Errorf("isa: negative fraction %v for class %v", f, Class(c))
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("isa: mix fractions sum to %v, want 1", sum)
	}
	return nil
}

// Reweigh returns a copy of m with class c's weight multiplied by k,
// renormalized so fractions again sum to 1. It derives ISA-specific
// variants of a canonical mix (for example, ARMv7-A needs more IntALU
// instructions than x86_64 to synthesize the wide multiplies of RSA).
func (m Mix) Reweigh(c Class, k float64) (Mix, error) {
	if !c.Valid() {
		return Mix{}, fmt.Errorf("isa: invalid class %d", int(c))
	}
	if k < 0 {
		return Mix{}, errors.New("isa: negative reweigh factor")
	}
	out := m
	out[c] *= k
	sum := 0.0
	for _, f := range out {
		sum += f
	}
	if sum == 0 {
		return Mix{}, errors.New("isa: reweigh produced empty mix")
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// String renders the mix as "int:0.40 fp:0.20 ...", omitting zero classes,
// in declaration order.
func (m Mix) String() string {
	var parts []string
	for _, c := range Classes() {
		if m[c] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%.2f", c, m[c]))
		}
	}
	if len(parts) == 0 {
		return "(empty mix)"
	}
	return strings.Join(parts, " ")
}

// Stream summarizes a machine-instruction stream for one ISA: how many
// instructions a unit of work translates into, and their class mix. This
// is the per-work-unit version of the paper's I_Ps.
type Stream struct {
	ISA ISA
	// PerUnit is the number of machine instructions one work unit of the
	// workload translates into on this ISA (instructions per random
	// number for EP, per request for memcached, per frame for x264, ...).
	PerUnit float64
	Mix     Mix
}

// Validate checks the Stream invariants.
func (s Stream) Validate() error {
	if !s.ISA.Valid() {
		return fmt.Errorf("isa: invalid ISA %d", int(s.ISA))
	}
	if s.PerUnit <= 0 || math.IsInf(s.PerUnit, 0) || math.IsNaN(s.PerUnit) {
		return fmt.Errorf("isa: instructions per unit must be positive and finite, got %v", s.PerUnit)
	}
	return s.Mix.Validate()
}

// Instructions returns the total instruction count for w work units.
func (s Stream) Instructions(w float64) float64 { return s.PerUnit * w }

// ByClass returns the instruction count in class c for w work units.
func (s Stream) ByClass(w float64, c Class) float64 {
	return s.Instructions(w) * s.Mix.Fraction(c)
}

// Translation maps each ISA to the Stream a workload's representative
// phase compiles to on that ISA.
type Translation map[ISA]Stream

// Validate checks that every supported ISA has a valid Stream.
func (t Translation) Validate() error {
	for _, i := range All() {
		s, ok := t[i]
		if !ok {
			return fmt.Errorf("isa: translation missing ISA %v", i)
		}
		if s.ISA != i {
			return fmt.Errorf("isa: translation for %v has stream ISA %v", i, s.ISA)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("isa: translation for %v: %w", i, err)
		}
	}
	return nil
}

// ISAs returns the ISAs present in the translation, sorted.
func (t Translation) ISAs() []ISA {
	out := make([]ISA, 0, len(t))
	for i := range t {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
