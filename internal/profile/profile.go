// Package profile fits the analytical model's workload inputs from
// baseline measurement traces — the "+"-marked measured parameters of the
// paper's Table 2. For one (workload, node type) pair it extracts:
//
//   - I_Ps: machine instructions per work unit on the node's ISA (Eq. 5),
//   - WPI: work cycles per instruction, validated constant (Figure 2),
//   - SPIcore: non-memory stall cycles per instruction, also constant,
//   - SPImem(f, c): memory stall cycles per instruction, fitted as a
//     linear function of core frequency for each active-core count
//     (Figure 3; the paper reports r^2 >= 0.94),
//   - U_CPU: average core utilization per configured core count,
//   - per-unit I/O transfer time and the generator's request inter-arrival
//     gap (lambda_I/O).
package profile

import (
	"fmt"
	"math"
	"sort"

	"heteromix/internal/isa"
	"heteromix/internal/stats"
	"heteromix/internal/trace"
	"heteromix/internal/units"
)

// Profile is the fitted model input for one workload on one node type.
type Profile struct {
	// Workload and Node identify the pair.
	Workload string
	Node     string
	ISA      isa.ISA

	// InstructionsPerUnit is the fitted I_Ps.
	InstructionsPerUnit float64
	// WPI is the fitted work cycles per instruction.
	WPI float64
	// WPISpread is the relative spread of WPI across observations, used
	// to verify the Figure 2 constancy hypothesis.
	WPISpread float64
	// SPICore is the fitted non-memory stall cycles per instruction.
	SPICore float64
	// SPICoreSpread is its relative spread across observations.
	SPICoreSpread float64
	// SPIMemByCores maps an active-core count to the linear fit of
	// SPImem over core frequency in GHz.
	SPIMemByCores map[int]stats.Linear
	// UCPUByConfig maps a configured core count, then core frequency in
	// GHz, to the mean measured CPU utilization. Utilization of I/O-bound
	// workloads depends strongly on frequency (slower cores stay busier
	// for the same request stream), so U_CPU must be resolved per
	// configuration.
	UCPUByConfig map[int]map[float64]float64
	// IOBytesPerUnit is the measured network transfer per work unit.
	IOBytesPerUnit units.Bytes
	// IOTransferPerUnit is the measured NIC occupancy per work unit.
	IOTransferPerUnit units.Seconds
	// ArrivalGapPerUnit is 1/lambda_I/O, the load generator's per-request
	// inter-arrival time (taken from the generator configuration, which
	// the experimenter controls); zero when arrivals never throttle.
	ArrivalGapPerUnit units.Seconds
}

// Validate checks the Profile invariants.
func (p Profile) Validate() error {
	switch {
	case p.Workload == "" || p.Node == "":
		return fmt.Errorf("profile: missing identity (%q on %q)", p.Workload, p.Node)
	case !p.ISA.Valid():
		return fmt.Errorf("profile: invalid ISA")
	case p.InstructionsPerUnit <= 0:
		return fmt.Errorf("profile: IPs = %v", p.InstructionsPerUnit)
	case p.WPI <= 0:
		return fmt.Errorf("profile: WPI = %v", p.WPI)
	case p.SPICore < 0:
		return fmt.Errorf("profile: SPIcore = %v", p.SPICore)
	case len(p.SPIMemByCores) == 0:
		return fmt.Errorf("profile: no SPImem fits")
	case len(p.UCPUByConfig) == 0:
		return fmt.Errorf("profile: no UCPU observations")
	case p.IOBytesPerUnit < 0 || p.IOTransferPerUnit < 0 || p.ArrivalGapPerUnit < 0:
		return fmt.Errorf("profile: negative I/O parameters")
	}
	for c, byFreq := range p.UCPUByConfig {
		if c <= 0 || len(byFreq) == 0 {
			return fmt.Errorf("profile: UCPU for %d cores invalid", c)
		}
		for f, u := range byFreq {
			if f <= 0 || u < 0 || u > 1 {
				return fmt.Errorf("profile: UCPU[%d][%vGHz] = %v", c, f, u)
			}
		}
	}
	return nil
}

// SPIMemAt evaluates the fitted SPImem for the given core count and
// frequency. Missing core counts fall back to the nearest fitted count.
func (p Profile) SPIMemAt(cores int, f units.Hertz) float64 {
	fit, ok := p.SPIMemByCores[cores]
	if !ok {
		fit = p.SPIMemByCores[p.nearestCores(cores)]
	}
	v := fit.At(f.GHzValue())
	if v < 0 {
		v = 0
	}
	return v
}

// UCPUAt returns the measured utilization for the given configuration,
// falling back to the nearest fitted core count and frequency.
func (p Profile) UCPUAt(cores int, f units.Hertz) float64 {
	byFreq, ok := p.UCPUByConfig[cores]
	if !ok {
		best, bestDist := 0, math.MaxInt
		for c := range p.UCPUByConfig {
			d := c - cores
			if d < 0 {
				d = -d
			}
			// Ties break toward the smaller core count so the fallback
			// is deterministic regardless of map iteration order.
			if d < bestDist || (d == bestDist && c < best) {
				best, bestDist = c, d
			}
		}
		byFreq = p.UCPUByConfig[best]
	}
	g := f.GHzValue()
	if u, ok := byFreq[g]; ok {
		return u
	}
	bestF, bestDist := 0.0, math.Inf(1)
	for have := range byFreq {
		d := math.Abs(have - g)
		if d < bestDist || (d == bestDist && have < bestF) {
			bestF, bestDist = have, d
		}
	}
	return byFreq[bestF]
}

func (p Profile) nearestCores(cores int) int {
	best, bestDist := 0, math.MaxInt
	for c := range p.SPIMemByCores {
		d := c - cores
		if d < 0 {
			d = -d
		}
		if d < bestDist || (d == bestDist && c < best) {
			best, bestDist = c, d
		}
	}
	return best
}

// MinSPIMemR2 returns the weakest r^2 across the per-core-count SPImem
// fits, the quantity the paper reports as >= 0.94 in Figure 3. Fits with
// near-zero memory stalls return 1 (a flat line explains them fully).
func (p Profile) MinSPIMemR2() float64 {
	min := 1.0
	for _, fit := range p.SPIMemByCores {
		if fit.R2 < min {
			min = fit.R2
		}
	}
	return min
}

// Fit extracts a Profile from the trace records of one workload on one
// node type. The trace must contain observations spanning at least two
// frequencies for each core count (for the SPImem regression).
func Fit(tr *trace.Trace, workload, node string) (Profile, error) {
	recs := tr.ForWorkload(workload, node)
	if len(recs) == 0 {
		return Profile{}, fmt.Errorf("profile: no records for %q on %q", workload, node)
	}

	p := Profile{
		Workload:      workload,
		Node:          node,
		ISA:           recs[0].ISA,
		SPIMemByCores: make(map[int]stats.Linear),
		UCPUByConfig:  make(map[int]map[float64]float64),
	}

	var ips, wpis, spics []float64
	ucpu := make(map[int]map[float64][]float64)
	byCores := make(map[int]map[float64][]float64) // cores -> fGHz -> SPImem samples
	var ioTransferPerUnit, ioBytesPerUnit []float64

	for _, r := range recs {
		ips = append(ips, r.InstructionsPerUnit())
		wpis = append(wpis, r.WPI())
		spics = append(spics, r.SPICore())
		if ucpu[r.Cores] == nil {
			ucpu[r.Cores] = make(map[float64][]float64)
		}
		gu := r.Frequency.GHzValue()
		ucpu[r.Cores][gu] = append(ucpu[r.Cores][gu], r.CPUUtilization())
		if byCores[r.Cores] == nil {
			byCores[r.Cores] = make(map[float64][]float64)
		}
		g := r.Frequency.GHzValue()
		byCores[r.Cores][g] = append(byCores[r.Cores][g], r.SPIMem())
		if r.IOBytes > 0 {
			ioBytesPerUnit = append(ioBytesPerUnit, float64(r.IOBytes)/r.WorkUnits)
			ioTransferPerUnit = append(ioTransferPerUnit, float64(r.IOTransferTime)/r.WorkUnits)
		}
	}

	p.InstructionsPerUnit = stats.Mean(ips)
	p.WPI = stats.Mean(wpis)
	p.SPICore = stats.Mean(spics)
	if p.WPI > 0 {
		p.WPISpread = stats.StdDev(wpis) / p.WPI
	}
	if p.SPICore > 0 {
		p.SPICoreSpread = stats.StdDev(spics) / p.SPICore
	}
	for c, byFreq := range ucpu {
		p.UCPUByConfig[c] = make(map[float64]float64, len(byFreq))
		for g, us := range byFreq {
			p.UCPUByConfig[c][g] = clamp01(stats.Mean(us))
		}
	}
	if len(ioBytesPerUnit) > 0 {
		p.IOBytesPerUnit = units.Bytes(stats.Mean(ioBytesPerUnit))
		p.IOTransferPerUnit = units.Seconds(stats.Mean(ioTransferPerUnit))
	}

	for c, byFreq := range byCores {
		fit, err := fitSPIMem(byFreq)
		if err != nil {
			return Profile{}, fmt.Errorf("profile: SPImem fit for %q on %q cores=%d: %w", workload, node, c, err)
		}
		p.SPIMemByCores[c] = fit
	}

	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// WithArrivalGap returns a copy of p with the load generator's
// inter-arrival gap set from the demand's configured request rate.
func (p Profile) WithArrivalGap(requestRate float64) Profile {
	if requestRate > 0 {
		p.ArrivalGapPerUnit = units.Seconds(1 / requestRate)
	} else {
		p.ArrivalGapPerUnit = 0
	}
	return p
}

func fitSPIMem(byFreq map[float64][]float64) (stats.Linear, error) {
	var fs, ys []float64
	for f, samples := range byFreq {
		fs = append(fs, f)
		ys = append(ys, stats.Mean(samples))
	}
	// Sort for reproducibility (map iteration order is random).
	idx := make([]int, len(fs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fs[idx[a]] < fs[idx[b]] })
	sf := make([]float64, len(fs))
	sy := make([]float64, len(fs))
	for i, j := range idx {
		sf[i], sy[i] = fs[j], ys[j]
	}
	if len(sf) == 1 {
		// A single frequency cannot support a regression; model it as a
		// constant (slope through the origin would overstate growth).
		return stats.Linear{Slope: 0, Intercept: sy[0], R2: 1}, nil
	}
	return stats.LinearFit(sf, sy)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
