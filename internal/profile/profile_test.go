package profile

import (
	"math"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/isa"
	"heteromix/internal/perfcounter"
	"heteromix/internal/stats"
	"heteromix/internal/trace"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// collect runs a full single-node campaign for a workload on a node.
func collect(t *testing.T, spec hwsim.NodeSpec, workload string, units float64, sigma float64) *trace.Trace {
	t.Helper()
	s, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := perfcounter.Campaign{
		Spec:        spec,
		Demand:      s.Demand,
		Units:       units,
		Repetitions: 1,
		NoiseSigma:  sigma,
		Seed:        1,
	}.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFitEPOnARM(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	tr := collect(t, arm, "ep", 1e5, 0.02)
	p, err := Fit(tr, "ep", arm.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ISA != isa.ARMv7A {
		t.Errorf("ISA = %v", p.ISA)
	}
	// The fitted IPs must match the demand's ground truth (counters are
	// noise-free; only time and power carry noise).
	if math.Abs(p.InstructionsPerUnit-120) > 0.5 {
		t.Errorf("IPs = %v, want ~120", p.InstructionsPerUnit)
	}
	// Figure 2 constancy: WPI and SPIcore spreads are tiny.
	if p.WPISpread > 0.01 {
		t.Errorf("WPI spread = %v, want ~0", p.WPISpread)
	}
	if p.SPICoreSpread > 0.01 {
		t.Errorf("SPIcore spread = %v, want ~0", p.SPICoreSpread)
	}
	// WPI equals the node's mix-weighted class cost.
	s, _ := workloads.ByName("ep")
	want := arm.WPI(s.Demand.Translation[isa.ARMv7A].Mix)
	if math.Abs(p.WPI-want) > 0.01 {
		t.Errorf("WPI = %v, want %v", p.WPI, want)
	}
	// CPU-bound: utilization ~1 at every core count.
	for c, byFreq := range p.UCPUByConfig {
		for g, u := range byFreq {
			if u < 0.95 {
				t.Errorf("UCPU[%d][%vGHz] = %v, want ~1 for CPU-bound EP", c, g, u)
			}
		}
	}
	// All four core counts have SPImem fits with high r^2 (Figure 3).
	if len(p.SPIMemByCores) != arm.Cores {
		t.Errorf("SPImem fits for %d core counts, want %d", len(p.SPIMemByCores), arm.Cores)
	}
	if r2 := p.MinSPIMemR2(); r2 < 0.94 {
		t.Errorf("min SPImem r^2 = %v, want >= 0.94", r2)
	}
}

func TestFitMemcachedIOParameters(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	tr := collect(t, arm, "memcached", 2e4, 0)
	p, err := Fit(tr, "memcached", arm.Name)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p.IOBytesPerUnit)-1024) > 1 {
		t.Errorf("IO bytes/unit = %v, want 1024", p.IOBytesPerUnit)
	}
	// Per-request transfer at 12.5 MB/s is 81.92 us.
	want := 1024.0 / 12.5e6
	if rel := math.Abs(float64(p.IOTransferPerUnit)-want) / want; rel > 0.05 {
		t.Errorf("IO transfer/unit = %v, want ~%v", p.IOTransferPerUnit, want)
	}
	// I/O-bound: utilization well below 1.
	for c, byFreq := range p.UCPUByConfig {
		for g, u := range byFreq {
			if c > 1 && g >= 0.8 && u > 0.6 {
				t.Errorf("UCPU[%d][%vGHz] = %v, want low for I/O-bound memcached", c, g, u)
			}
		}
	}
	// Arrival gap comes from the generator configuration.
	s, _ := workloads.ByName("memcached")
	p = p.WithArrivalGap(s.Demand.RequestRate)
	if math.Abs(float64(p.ArrivalGapPerUnit)-1/2e5) > 1e-12 {
		t.Errorf("arrival gap = %v, want %v", p.ArrivalGapPerUnit, 1/2e5)
	}
	p = p.WithArrivalGap(0)
	if p.ArrivalGapPerUnit != 0 {
		t.Errorf("unthrottled arrival gap = %v, want 0", p.ArrivalGapPerUnit)
	}
}

func TestFitSPIMemGrowsWithCoresAndFrequency(t *testing.T) {
	// For the stall micro-benchmark, SPImem at max frequency grows with
	// active cores, and each fit has positive slope (Figure 3).
	arm := hwsim.ARMCortexA9()
	micro := workloads.MicroStallStream()
	tr, err := perfcounter.Campaign{
		Spec: arm, Demand: micro.Demand, Units: 1e4, Repetitions: 1, Seed: 2,
	}.Collect()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Fit(tr, micro.Name(), arm.Name)
	if err != nil {
		t.Fatal(err)
	}
	fmax := arm.FMax()
	prev := -1.0
	for c := 1; c <= arm.Cores; c++ {
		v := p.SPIMemAt(c, fmax)
		if v <= prev {
			t.Errorf("SPImem at %d cores = %v, want > %v", c, v, prev)
		}
		prev = v
		if p.SPIMemByCores[c].Slope <= 0 {
			t.Errorf("SPImem slope at %d cores = %v, want positive", c, p.SPIMemByCores[c].Slope)
		}
	}
	// Linearity in frequency at fixed cores.
	lo := p.SPIMemAt(4, 0.5*units.GHz)
	hi := p.SPIMemAt(4, 1.0*units.GHz)
	if hi <= lo {
		t.Errorf("SPImem should grow with frequency: %v vs %v", lo, hi)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(&trace.Trace{}, "ep", "arm-cortex-a9"); err == nil {
		t.Error("empty trace should error")
	}
}

func TestSPIMemAtFallsBackToNearestCores(t *testing.T) {
	p := Profile{
		Workload: "w", Node: "n", ISA: isa.ARMv7A,
		InstructionsPerUnit: 100, WPI: 1,
		SPIMemByCores: map[int]stats.Linear{
			2: {Slope: 1, Intercept: 0, R2: 1},
			6: {Slope: 2, Intercept: 0, R2: 1},
		},
		UCPUByConfig: map[int]map[float64]float64{2: {1.0: 1}},
	}
	if got := p.SPIMemAt(3, 1*units.GHz); got != 1 {
		t.Errorf("nearest-core fallback = %v, want fit for 2 cores (1)", got)
	}
	if got := p.SPIMemAt(6, 1*units.GHz); got != 2 {
		t.Errorf("exact-core lookup = %v, want 2", got)
	}
	// Negative evaluations clamp to zero.
	p.SPIMemByCores[2] = stats.Linear{Slope: -5, Intercept: 0}
	if got := p.SPIMemAt(2, 1*units.GHz); got != 0 {
		t.Errorf("negative SPImem should clamp to 0, got %v", got)
	}
}

func TestUCPUAtFallsBack(t *testing.T) {
	p := Profile{UCPUByConfig: map[int]map[float64]float64{
		2: {0.5: 0.5, 1.0: 0.6},
		4: {1.0: 0.25},
	}}
	if got := p.UCPUAt(2, 0.5*units.GHz); got != 0.5 {
		t.Errorf("exact UCPU = %v", got)
	}
	if got := p.UCPUAt(2, 0.6*units.GHz); got != 0.5 {
		t.Errorf("nearest-frequency UCPU = %v, want 0.5", got)
	}
	if got := p.UCPUAt(3, 1.0*units.GHz); got != 0.6 {
		t.Errorf("fallback UCPU = %v, want nearest (2 cores at 1 GHz: 0.6)", got)
	}
	if got := p.UCPUAt(9, 1.0*units.GHz); got != 0.25 {
		t.Errorf("fallback UCPU = %v, want nearest (4 cores: 0.25)", got)
	}
}

func TestProfileValidateRejectsBadProfiles(t *testing.T) {
	good := Profile{
		Workload: "w", Node: "n", ISA: isa.ARMv7A,
		InstructionsPerUnit: 100, WPI: 1, SPICore: 0.5,
		SPIMemByCores: map[int]stats.Linear{1: {}},
		UCPUByConfig:  map[int]map[float64]float64{1: {1.0: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no workload", func(p *Profile) { p.Workload = "" }},
		{"bad isa", func(p *Profile) { p.ISA = isa.ISA(9) }},
		{"zero ips", func(p *Profile) { p.InstructionsPerUnit = 0 }},
		{"zero wpi", func(p *Profile) { p.WPI = 0 }},
		{"negative spicore", func(p *Profile) { p.SPICore = -1 }},
		{"no spimem", func(p *Profile) { p.SPIMemByCores = nil }},
		{"no ucpu", func(p *Profile) { p.UCPUByConfig = nil }},
		{"ucpu above 1", func(p *Profile) { p.UCPUByConfig = map[int]map[float64]float64{1: {1.0: 1.5}} }},
		{"ucpu zero cores", func(p *Profile) { p.UCPUByConfig = map[int]map[float64]float64{0: {1.0: 0.5}} }},
		{"ucpu zero freq", func(p *Profile) { p.UCPUByConfig = map[int]map[float64]float64{1: {0: 0.5}} }},
		{"ucpu empty freqs", func(p *Profile) { p.UCPUByConfig = map[int]map[float64]float64{1: {}} }},
		{"negative io", func(p *Profile) { p.IOBytesPerUnit = -1 }},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestFitSingleFrequencyIsConstantFit(t *testing.T) {
	// A campaign restricted to one frequency cannot regress SPImem over
	// f; the fit degrades to a constant with R2 = 1.
	arm := hwsim.ARMCortexA9()
	s, _ := workloads.ByName("x264")
	tr, err := perfcounter.Campaign{
		Spec: arm, Demand: s.Demand, Units: 4, Repetitions: 1, Seed: 9,
		Configs: []hwsim.Config{{Cores: 4, Frequency: 1.4 * units.GHz}},
	}.Collect()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Fit(tr, "x264", arm.Name)
	if err != nil {
		t.Fatal(err)
	}
	fit := p.SPIMemByCores[4]
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("single-frequency fit = %+v, want constant", fit)
	}
	if fit.Intercept <= 0 {
		t.Errorf("x264 SPImem should be positive, got %v", fit.Intercept)
	}
}
