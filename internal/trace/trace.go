// Package trace defines the two data shapes that connect the reproduction's
// substrates:
//
//   - Demand describes a workload's service demand per unit of work — the
//     intrinsic properties of the representative parallel phase Ps of a
//     scale-out workload (paper §II-D1): how many machine instructions a
//     work unit translates to on each ISA, how memory-intensive it is, and
//     how much network I/O it generates.
//
//   - Record is one observation of executing a batch of work units on a
//     simulated node with hardware event counters enabled — the output of
//     a "baseline run" (paper §III-A). A sequence of Records is a Trace,
//     the input of the trace-driven model.
//
// Records are what `perf` plus a Yokogawa power meter produced for the
// authors; here they are produced by internal/hwsim + internal/perfcounter.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"heteromix/internal/isa"
	"heteromix/internal/units"
)

// IOPattern describes how a workload exercises the network device.
type IOPattern int

const (
	// IONone marks workloads with negligible network I/O (EP,
	// blackscholes, RSA-2048: their inputs fit in memory).
	IONone IOPattern = iota
	// IORequestResponse marks request-driven workloads (memcached): each
	// work unit is a request arriving over the NIC whose response is
	// DMA-transferred back, so I/O time can dominate (paper Eq. 11).
	IORequestResponse
	// IOStreaming marks workloads that stream bulk data (x264 frames,
	// Julius audio samples) whose transfers overlap compute via DMA.
	IOStreaming
)

// String names the pattern.
func (p IOPattern) String() string {
	switch p {
	case IONone:
		return "none"
	case IORequestResponse:
		return "request-response"
	case IOStreaming:
		return "streaming"
	default:
		return fmt.Sprintf("iopattern(%d)", int(p))
	}
}

// Valid reports whether p is a known pattern.
func (p IOPattern) Valid() bool { return p >= IONone && p <= IOStreaming }

// Demand is the per-work-unit service demand of a workload's
// representative phase Ps. All fields are intrinsic to the workload (and,
// where ISAs differ, to the ISA); node-specific behaviour such as cycle
// counts and stall times emerges when a Demand meets a node in hwsim.
type Demand struct {
	// Name identifies the workload ("ep", "memcached", ...).
	Name string
	// Unit names one work unit ("random number", "request", "frame", ...).
	Unit string
	// Translation gives the machine-instruction stream per work unit on
	// each ISA (paper Eq. 5: I_Ps differs between ARM and AMD).
	Translation isa.Translation
	// DRAMMissesPerKiloInstr is the number of last-level-cache misses that
	// reach the memory controller, per thousand instructions, on each ISA
	// (cache hierarchies differ between the node types, Table 1). This is
	// what makes SPImem grow linearly with core frequency: a miss costs a
	// fixed DRAM time, hence f-proportional cycles (Figure 3).
	DRAMMissesPerKiloInstr map[isa.ISA]float64
	// DependencyStallsPerInstr is the non-memory stall component SPIcore:
	// pipeline hazards, branch mispredictions and issue limits, in stall
	// cycles per instruction before micro-architecture scaling.
	DependencyStallsPerInstr map[isa.ISA]float64
	// IO describes the network behaviour.
	IO IOPattern
	// IOBytesPerUnit is the data moved over the NIC per work unit
	// (request+response payload for memcached, compressed frame for x264).
	IOBytesPerUnit units.Bytes
	// RequestRate is the mean arrival rate of I/O requests per second
	// offered by the load generator to a single node (the paper's λ_I/O).
	// Zero means arrivals never throttle the node (saturating generator).
	RequestRate float64
}

// Validate checks the Demand invariants.
func (d Demand) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("trace: demand has empty name")
	}
	if d.Unit == "" {
		return fmt.Errorf("trace: demand %q has empty unit", d.Name)
	}
	if err := d.Translation.Validate(); err != nil {
		return fmt.Errorf("trace: demand %q: %w", d.Name, err)
	}
	for _, i := range isa.All() {
		m, ok := d.DRAMMissesPerKiloInstr[i]
		if !ok {
			return fmt.Errorf("trace: demand %q missing DRAM misses for %v", d.Name, i)
		}
		if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("trace: demand %q has invalid DRAM misses %v for %v", d.Name, m, i)
		}
		s, ok := d.DependencyStallsPerInstr[i]
		if !ok {
			return fmt.Errorf("trace: demand %q missing dependency stalls for %v", d.Name, i)
		}
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("trace: demand %q has invalid dependency stalls %v for %v", d.Name, s, i)
		}
	}
	if !d.IO.Valid() {
		return fmt.Errorf("trace: demand %q has invalid IO pattern %d", d.Name, int(d.IO))
	}
	if d.IO == IONone {
		if d.IOBytesPerUnit != 0 {
			return fmt.Errorf("trace: demand %q declares no IO but moves %v per unit", d.Name, d.IOBytesPerUnit)
		}
	} else if d.IOBytesPerUnit <= 0 {
		return fmt.Errorf("trace: demand %q declares IO but moves %v per unit", d.Name, d.IOBytesPerUnit)
	}
	if d.RequestRate < 0 {
		return fmt.Errorf("trace: demand %q has negative request rate", d.Name)
	}
	return nil
}

// Record is one measured observation: a batch of work units executed on
// one node at one configuration, with event counters and the power meter
// attached. Counter fields follow the paper's Table 2 notation.
type Record struct {
	// Workload and node identification.
	Workload string  `json:"workload"`
	Node     string  `json:"node"`
	ISA      isa.ISA `json:"isa"`

	// Configuration of the run.
	Cores     int         `json:"cores"`
	Frequency units.Hertz `json:"frequency_hz"`

	// WorkUnits is the batch size of this observation.
	WorkUnits float64 `json:"work_units"`

	// Event counters, accumulated over all cores.
	Instructions    float64 `json:"instructions"`
	WorkCycles      float64 `json:"work_cycles"`
	CoreStallCycles float64 `json:"core_stall_cycles"`
	MemStallCycles  float64 `json:"mem_stall_cycles"`

	// CPUBusy is the total core-busy time summed over cores, used to
	// derive U_CPU (the average fraction of cores kept active).
	CPUBusy units.Seconds `json:"cpu_busy_s"`

	// I/O observations.
	IOBytes        units.Bytes   `json:"io_bytes"`
	IOTransferTime units.Seconds `json:"io_transfer_s"`

	// Wall-clock time and metered energy of the batch.
	Elapsed units.Seconds `json:"elapsed_s"`
	Energy  units.Joule   `json:"energy_j"`
}

// Validate checks basic sanity of a Record.
func (r Record) Validate() error {
	switch {
	case r.Workload == "":
		return fmt.Errorf("trace: record has empty workload")
	case r.Node == "":
		return fmt.Errorf("trace: record has empty node")
	case !r.ISA.Valid():
		return fmt.Errorf("trace: record has invalid ISA %d", int(r.ISA))
	case r.Cores <= 0:
		return fmt.Errorf("trace: record has %d cores", r.Cores)
	case r.Frequency <= 0:
		return fmt.Errorf("trace: record has frequency %v", r.Frequency)
	case r.WorkUnits <= 0:
		return fmt.Errorf("trace: record has %v work units", r.WorkUnits)
	case r.Instructions < 0 || r.WorkCycles < 0 || r.CoreStallCycles < 0 || r.MemStallCycles < 0:
		return fmt.Errorf("trace: record has negative counters")
	case r.Elapsed <= 0:
		return fmt.Errorf("trace: record has elapsed %v", r.Elapsed)
	case r.Energy < 0:
		return fmt.Errorf("trace: record has negative energy")
	case r.CPUBusy < 0:
		return fmt.Errorf("trace: record has negative CPU busy time")
	case float64(r.CPUBusy) > float64(r.Elapsed)*float64(r.Cores)*(1+1e-9):
		return fmt.Errorf("trace: CPU busy %v exceeds cores x elapsed", r.CPUBusy)
	}
	return nil
}

// InstructionsPerUnit returns I_Ps for this observation.
func (r Record) InstructionsPerUnit() float64 {
	if r.WorkUnits == 0 {
		return 0
	}
	return r.Instructions / r.WorkUnits
}

// WPI returns the measured work cycles per instruction.
func (r Record) WPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.WorkCycles / r.Instructions
}

// SPICore returns the measured non-memory stall cycles per instruction.
func (r Record) SPICore() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.CoreStallCycles / r.Instructions
}

// SPIMem returns the measured memory stall cycles per instruction.
func (r Record) SPIMem() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.MemStallCycles / r.Instructions
}

// CPUUtilization returns U_CPU, the mean fraction of cores kept busy.
func (r Record) CPUUtilization() float64 {
	denom := float64(r.Elapsed) * float64(r.Cores)
	if denom == 0 {
		return 0
	}
	u := float64(r.CPUBusy) / denom
	if u > 1 {
		u = 1
	}
	return u
}

// AveragePower returns the mean power of the observation.
func (r Record) AveragePower() units.Watt { return r.Energy.Over(r.Elapsed) }

// Trace is a sequence of Records from baseline runs.
type Trace struct {
	Records []Record `json:"records"`
}

// Append adds r after validating it.
func (t *Trace) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	t.Records = append(t.Records, r)
	return nil
}

// Filter returns the records for which keep returns true.
func (t *Trace) Filter(keep func(Record) bool) []Record {
	var out []Record
	for _, r := range t.Records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// ForWorkload returns the records of one workload on one node type.
func (t *Trace) ForWorkload(workload, node string) []Record {
	return t.Filter(func(r Record) bool { return r.Workload == workload && r.Node == node })
}

// Write serializes the trace as JSON to w.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Read parses a JSON trace from r, validating every record.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	for i, rec := range t.Records {
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
	}
	return &t, nil
}
