package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	var tr Trace
	r1 := validRecord()
	if err := tr.Append(r1); err != nil {
		t.Fatal(err)
	}
	r2 := r1
	r2.Workload = "memcached"
	r2.IOBytes = 4096
	r2.IOTransferTime = 0.001
	if err := tr.Append(r2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "workload,node,isa,") {
		t.Errorf("missing header: %s", out[:40])
	}
	back, err := ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 2 {
		t.Fatalf("round trip lost records: %d", len(back.Records))
	}
	for i := range tr.Records {
		if back.Records[i] != tr.Records[i] {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, back.Records[i], tr.Records[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("wrong header should error")
	}
	header := strings.Join(csvHeader, ",")
	if _, err := ReadCSV(strings.NewReader(header + "\nep,n,x,4,1e9,1,1,1,1,1,0,0,0,1,1\n")); err == nil {
		t.Error("non-numeric column should error")
	}
	// Structurally fine but semantically invalid (zero cores).
	if _, err := ReadCSV(strings.NewReader(header + "\nep,n,0,0,1e9,1,1,1,1,1,0,0,0,1,1\n")); err == nil {
		t.Error("invalid record should be rejected")
	}
}

func TestCSVPrecision(t *testing.T) {
	// Full float64 precision survives the text round trip.
	var tr Trace
	r := validRecord()
	r.Energy = 0.1234567890123456789
	r.Elapsed = 1.0 / 3.0
	if err := tr.Append(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Records[0].Energy != r.Energy || back.Records[0].Elapsed != r.Elapsed {
		t.Error("precision lost in CSV round trip")
	}
}
