package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"heteromix/internal/isa"
	"heteromix/internal/units"
)

// csvHeader is the column layout of the CSV interchange format, one
// record per row. CSV exists alongside JSON for spreadsheet and R/pandas
// analysis of measurement campaigns.
var csvHeader = []string{
	"workload", "node", "isa", "cores", "frequency_hz", "work_units",
	"instructions", "work_cycles", "core_stall_cycles", "mem_stall_cycles",
	"cpu_busy_s", "io_bytes", "io_transfer_s", "elapsed_s", "energy_j",
}

// WriteCSV serializes the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, r := range t.Records {
		row := []string{
			r.Workload,
			r.Node,
			strconv.Itoa(int(r.ISA)),
			strconv.Itoa(r.Cores),
			f(float64(r.Frequency)),
			f(r.WorkUnits),
			f(r.Instructions),
			f(r.WorkCycles),
			f(r.CoreStallCycles),
			f(r.MemStallCycles),
			f(float64(r.CPUBusy)),
			f(float64(r.IOBytes)),
			f(float64(r.IOTransferTime)),
			f(float64(r.Elapsed)),
			f(float64(r.Energy)),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: csv record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV, validating every record.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("trace: csv header mismatch")
	}
	t := &Trace{}
	for i, row := range rows[1:] {
		rec, err := recordFromCSV(row)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+1, err)
		}
		if err := t.Append(rec); err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+1, err)
		}
	}
	return t, nil
}

func recordFromCSV(row []string) (Record, error) {
	if len(row) != len(csvHeader) {
		return Record{}, fmt.Errorf("have %d columns, want %d", len(row), len(csvHeader))
	}
	var r Record
	r.Workload = row[0]
	r.Node = row[1]
	vals := make([]float64, len(row))
	for i := 2; i < len(row); i++ {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			return Record{}, fmt.Errorf("column %s: %w", csvHeader[i], err)
		}
		vals[i] = v
	}
	r.ISA = isa.ISA(int(vals[2]))
	r.Cores = int(vals[3])
	r.Frequency = units.Hertz(vals[4])
	r.WorkUnits = vals[5]
	r.Instructions = vals[6]
	r.WorkCycles = vals[7]
	r.CoreStallCycles = vals[8]
	r.MemStallCycles = vals[9]
	r.CPUBusy = units.Seconds(vals[10])
	r.IOBytes = units.Bytes(vals[11])
	r.IOTransferTime = units.Seconds(vals[12])
	r.Elapsed = units.Seconds(vals[13])
	r.Energy = units.Joule(vals[14])
	return r, nil
}
