package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"heteromix/internal/isa"
	"heteromix/internal/units"
)

func validDemand() Demand {
	mix := isa.MustMix(map[isa.Class]float64{isa.IntALU: 0.6, isa.Mem: 0.4})
	return Demand{
		Name: "ep",
		Unit: "random number",
		Translation: isa.Translation{
			isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 120, Mix: mix},
			isa.X8664:  {ISA: isa.X8664, PerUnit: 100, Mix: mix},
		},
		DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 1.5, isa.X8664: 1.0},
		DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.7, isa.X8664: 0.5},
		IO:                       IONone,
	}
}

func validRecord() Record {
	return Record{
		Workload:        "ep",
		Node:            "arm-cortex-a9",
		ISA:             isa.ARMv7A,
		Cores:           4,
		Frequency:       1.4 * units.GHz,
		WorkUnits:       1e6,
		Instructions:    1.2e8,
		WorkCycles:      1.14e8,
		CoreStallCycles: 8.4e7,
		MemStallCycles:  2.1e7,
		CPUBusy:         0.15,
		Elapsed:         0.04,
		Energy:          0.2,
	}
}

func TestIOPatternString(t *testing.T) {
	cases := map[IOPattern]string{
		IONone:            "none",
		IORequestResponse: "request-response",
		IOStreaming:       "streaming",
		IOPattern(42):     "iopattern(42)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if IOPattern(42).Valid() {
		t.Error("IOPattern(42) should be invalid")
	}
}

func TestDemandValidate(t *testing.T) {
	d := validDemand()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid demand rejected: %v", err)
	}

	mutations := []struct {
		name   string
		mutate func(*Demand)
	}{
		{"empty name", func(d *Demand) { d.Name = "" }},
		{"empty unit", func(d *Demand) { d.Unit = "" }},
		{"missing translation", func(d *Demand) { delete(d.Translation, isa.X8664) }},
		{"missing mpki", func(d *Demand) { delete(d.DRAMMissesPerKiloInstr, isa.ARMv7A) }},
		{"negative mpki", func(d *Demand) { d.DRAMMissesPerKiloInstr[isa.ARMv7A] = -1 }},
		{"nan mpki", func(d *Demand) { d.DRAMMissesPerKiloInstr[isa.ARMv7A] = math.NaN() }},
		{"missing stalls", func(d *Demand) { delete(d.DependencyStallsPerInstr, isa.X8664) }},
		{"negative stalls", func(d *Demand) { d.DependencyStallsPerInstr[isa.X8664] = -0.1 }},
		{"invalid io", func(d *Demand) { d.IO = IOPattern(42) }},
		{"io bytes without io", func(d *Demand) { d.IOBytesPerUnit = 100 }},
		{"io without bytes", func(d *Demand) { d.IO = IORequestResponse }},
		{"negative rate", func(d *Demand) { d.RequestRate = -1 }},
	}
	for _, m := range mutations {
		d := validDemand()
		// Deep-copy the maps the mutation may touch.
		d.DRAMMissesPerKiloInstr = map[isa.ISA]float64{isa.ARMv7A: 1.5, isa.X8664: 1.0}
		d.DependencyStallsPerInstr = map[isa.ISA]float64{isa.ARMv7A: 0.7, isa.X8664: 0.5}
		d.Translation = isa.Translation{
			isa.ARMv7A: d.Translation[isa.ARMv7A],
			isa.X8664:  d.Translation[isa.X8664],
		}
		m.mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestDemandValidateIOOk(t *testing.T) {
	d := validDemand()
	d.IO = IORequestResponse
	d.IOBytesPerUnit = 1024
	d.RequestRate = 5e4
	if err := d.Validate(); err != nil {
		t.Errorf("request-response demand rejected: %v", err)
	}
}

func TestRecordValidate(t *testing.T) {
	r := validRecord()
	if err := r.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(*Record)
	}{
		{"empty workload", func(r *Record) { r.Workload = "" }},
		{"empty node", func(r *Record) { r.Node = "" }},
		{"bad isa", func(r *Record) { r.ISA = isa.ISA(9) }},
		{"zero cores", func(r *Record) { r.Cores = 0 }},
		{"zero freq", func(r *Record) { r.Frequency = 0 }},
		{"zero units", func(r *Record) { r.WorkUnits = 0 }},
		{"negative counter", func(r *Record) { r.MemStallCycles = -1 }},
		{"zero elapsed", func(r *Record) { r.Elapsed = 0 }},
		{"negative energy", func(r *Record) { r.Energy = -1 }},
		{"negative busy", func(r *Record) { r.CPUBusy = -1 }},
		{"busy exceeds capacity", func(r *Record) { r.CPUBusy = 10 }},
	}
	for _, m := range mutations {
		r := validRecord()
		m.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestRecordDerivedMetrics(t *testing.T) {
	r := validRecord()
	if got := r.InstructionsPerUnit(); got != 120 {
		t.Errorf("InstructionsPerUnit = %v, want 120", got)
	}
	if got := r.WPI(); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("WPI = %v, want 0.95", got)
	}
	if got := r.SPICore(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("SPICore = %v, want 0.7", got)
	}
	if got := r.SPIMem(); math.Abs(got-0.175) > 1e-12 {
		t.Errorf("SPIMem = %v, want 0.175", got)
	}
	// CPUBusy 0.15s over 4 cores x 0.04s = 0.9375 utilization.
	if got := r.CPUUtilization(); math.Abs(got-0.9375) > 1e-12 {
		t.Errorf("CPUUtilization = %v, want 0.9375", got)
	}
	if got := r.AveragePower(); math.Abs(float64(got)-5) > 1e-12 {
		t.Errorf("AveragePower = %v, want 5W", got)
	}
}

func TestRecordDerivedMetricsZeroDenominators(t *testing.T) {
	var r Record
	if r.InstructionsPerUnit() != 0 || r.WPI() != 0 || r.SPICore() != 0 || r.SPIMem() != 0 || r.CPUUtilization() != 0 {
		t.Error("zero record should yield zero derived metrics")
	}
}

func TestCPUUtilizationClamped(t *testing.T) {
	r := validRecord()
	r.CPUBusy = units.Seconds(float64(r.Elapsed) * float64(r.Cores)) // exactly full
	if got := r.CPUUtilization(); got != 1 {
		t.Errorf("full utilization = %v, want 1", got)
	}
}

func TestTraceAppendAndFilter(t *testing.T) {
	var tr Trace
	r := validRecord()
	if err := tr.Append(r); err != nil {
		t.Fatal(err)
	}
	r2 := r
	r2.Workload = "memcached"
	if err := tr.Append(r2); err != nil {
		t.Fatal(err)
	}
	bad := r
	bad.Cores = 0
	if err := tr.Append(bad); err == nil {
		t.Error("appending invalid record should error")
	}
	if len(tr.Records) != 2 {
		t.Fatalf("trace has %d records, want 2", len(tr.Records))
	}
	got := tr.ForWorkload("ep", "arm-cortex-a9")
	if len(got) != 1 || got[0].Workload != "ep" {
		t.Errorf("ForWorkload returned %v", got)
	}
	if got := tr.ForWorkload("nope", "arm-cortex-a9"); got != nil {
		t.Errorf("missing workload should return nil, got %v", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var tr Trace
	if err := tr.Append(validRecord()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 {
		t.Fatalf("round trip lost records: %d", len(back.Records))
	}
	if back.Records[0] != tr.Records[0] {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back.Records[0], tr.Records[0])
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage input should error")
	}
	// A structurally valid JSON trace with an invalid record.
	bad := `{"records":[{"workload":"","node":"n","isa":0,"cores":1,` +
		`"frequency_hz":1e9,"work_units":1,"elapsed_s":1,"energy_j":1}]}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("invalid record should be rejected on read")
	}
}
