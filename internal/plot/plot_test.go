package plot

import (
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	c := &Chart{Title: "Pareto frontier", XLabel: "Deadline [ms]", YLabel: "Energy [J]"}
	c.Add("mix", []float64{10, 20, 40, 80}, []float64{30, 25, 20, 16})
	c.Add("arm-only", []float64{30, 60, 120}, []float64{18, 17, 16})
	return c
}

func TestValidate(t *testing.T) {
	if err := sampleChart().Validate(); err != nil {
		t.Fatalf("valid chart rejected: %v", err)
	}
	empty := &Chart{}
	if err := empty.Validate(); err == nil {
		t.Error("empty chart should fail validation")
	}
	mismatched := &Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := mismatched.Validate(); err == nil {
		t.Error("mismatched lengths should fail validation")
	}
	nan := &Chart{Series: []Series{{Name: "s", X: []float64{math.NaN()}, Y: []float64{1}}}}
	if err := nan.Validate(); err == nil {
		t.Error("NaN should fail validation")
	}
	logNeg := &Chart{LogX: true, Series: []Series{{Name: "s", X: []float64{-1}, Y: []float64{1}}}}
	if err := logNeg.Validate(); err == nil {
		t.Error("negative x on log axis should fail validation")
	}
	logZeroY := &Chart{LogY: true, Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{0}}}}
	if err := logZeroY.Validate(); err == nil {
		t.Error("zero y on log axis should fail validation")
	}
}

func TestRenderASCII(t *testing.T) {
	out, err := sampleChart().RenderASCII(60, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Pareto frontier", "* mix", "+ arm-only", "Deadline [ms]", "Energy [J]"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// Markers for both series appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("ASCII output missing markers:\n%s", out)
	}
	// Canvas rows: every grid line starts with a label area and '|'.
	lines := strings.Split(out, "\n")
	gridRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridRows++
		}
	}
	if gridRows != 15 {
		t.Errorf("grid has %d rows, want 15", gridRows)
	}
}

func TestRenderASCIITooSmall(t *testing.T) {
	if _, err := sampleChart().RenderASCII(5, 2); err == nil {
		t.Error("tiny canvas should error")
	}
}

func TestRenderASCIIInvalidChart(t *testing.T) {
	c := &Chart{}
	if _, err := c.RenderASCII(60, 15); err == nil {
		t.Error("invalid chart should error")
	}
}

func TestRenderASCIILogScale(t *testing.T) {
	c := &Chart{LogX: true, LogY: true}
	c.Add("s", []float64{10, 100, 1000}, []float64{10, 100, 1000})
	out, err := c.RenderASCII(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	// On a log-log chart these three points are evenly spaced along the
	// diagonal; the corners carry the untransformed labels.
	if !strings.Contains(out, "10") || !strings.Contains(out, "1000") {
		t.Errorf("log axis labels missing:\n%s", out)
	}
}

func TestRenderASCIISinglePoint(t *testing.T) {
	c := &Chart{}
	c.Add("dot", []float64{5}, []float64{7})
	out, err := c.RenderASCII(30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestRenderSVG(t *testing.T) {
	svg, err := sampleChart().RenderSVG(640, 480)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"Pareto frontier", "Deadline [ms]", "Energy [J]", "mix", "arm-only",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series, two colors.
	if !strings.Contains(svg, svgPalette[0]) || !strings.Contains(svg, svgPalette[1]) {
		t.Error("SVG missing series colors")
	}
}

func TestRenderSVGTooSmall(t *testing.T) {
	if _, err := sampleChart().RenderSVG(50, 50); err == nil {
		t.Error("tiny SVG should error")
	}
}

func TestRenderSVGEscapesText(t *testing.T) {
	c := &Chart{Title: `a<b & "c"`}
	c.Add("s<1>", []float64{1, 2}, []float64{1, 2})
	svg, err := c.RenderSVG(400, 300)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "a<b") || strings.Contains(svg, "s<1>") {
		t.Error("SVG text not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestBoundsDegenerate(t *testing.T) {
	// All points identical: bounds must expand, not collapse.
	c := &Chart{}
	c.Add("s", []float64{3, 3}, []float64{4, 4})
	xmin, xmax, ymin, ymax := c.bounds()
	if xmin >= xmax || ymin >= ymax {
		t.Errorf("degenerate bounds not expanded: [%v,%v]x[%v,%v]", xmin, xmax, ymin, ymax)
	}
	if _, err := c.RenderASCII(30, 8); err != nil {
		t.Errorf("degenerate chart should render: %v", err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.00123: "0.00123",
		1.5:     "1.5",
		150:     "150",
		2.5e6:   "2.5e+06",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
