// Package plot renders the paper's figures without third-party graphics
// libraries: scatter/line charts as ASCII for terminals and as standalone
// SVG documents for reports. Both renderers share scale computation and
// support the log-scale axes the paper uses from Figure 6 onward
// ("henceforth, each figure plots Pareto frontiers with x-axis in
// log-scale").
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Validate checks the series.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("plot: series %q is empty", s.Name)
	}
	for i := range s.X {
		if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
			return fmt.Errorf("plot: series %q has non-finite point %d", s.Name, i)
		}
	}
	return nil
}

// Chart is a 2D chart with optional log axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
}

// Add appends a series.
func (c *Chart) Add(name string, xs, ys []float64) {
	c.Series = append(c.Series, Series{Name: name, X: xs, Y: ys})
}

// Validate checks the chart and its series, including log-axis domains.
func (c *Chart) Validate() error {
	if len(c.Series) == 0 {
		return errors.New("plot: chart has no series")
	}
	for _, s := range c.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			if c.LogX && s.X[i] <= 0 {
				return fmt.Errorf("plot: series %q has x=%v on a log axis", s.Name, s.X[i])
			}
			if c.LogY && s.Y[i] <= 0 {
				return fmt.Errorf("plot: series %q has y=%v on a log axis", s.Name, s.Y[i])
			}
		}
	}
	return nil
}

// bounds computes the data extents in (possibly log-transformed) space.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := c.tx(s.X[i])
			y := c.ty(s.Y[i])
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin == xmax {
		xmin, xmax = xmin-0.5, xmax+0.5
	}
	if ymin == ymax {
		ymin, ymax = ymin-0.5, ymax+0.5
	}
	return xmin, xmax, ymin, ymax
}

func (c *Chart) tx(x float64) float64 {
	if c.LogX {
		return math.Log10(x)
	}
	return x
}

func (c *Chart) ty(y float64) float64 {
	if c.LogY {
		return math.Log10(y)
	}
	return y
}

// untx inverts tx for tick labeling.
func (c *Chart) untx(x float64) float64 {
	if c.LogX {
		return math.Pow(10, x)
	}
	return x
}

func (c *Chart) unty(y float64) float64 {
	if c.LogY {
		return math.Pow(10, y)
	}
	return y
}

// seriesMarkers cycle for ASCII rendering.
var seriesMarkers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}

// RenderASCII draws the chart on a width x height character canvas (the
// plotting area; axes and legend add a few rows/columns).
func (c *Chart) RenderASCII(width, height int) (string, error) {
	if width < 20 || height < 5 {
		return "", fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}
	if err := c.Validate(); err != nil {
		return "", err
	}
	xmin, xmax, ymin, ymax := c.bounds()

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for i := range s.X {
			col := int(math.Round((c.tx(s.X[i]) - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((c.ty(s.Y[i]) - ymin) / (ymax - ymin) * float64(height-1)))
			// Row 0 is the top of the canvas.
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = marker
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", center(c.Title, width+10))
	}
	yLo := formatTick(c.unty(ymin))
	yHi := formatTick(c.unty(ymax))
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yHi, labelW)
		case height - 1:
			label = pad(yLo, labelW)
		case height / 2:
			mid := formatTick(c.unty((ymin + ymax) / 2))
			if len(mid) <= labelW {
				label = pad(mid, labelW)
			}
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	xLo := formatTick(c.untx(xmin))
	xHi := formatTick(c.untx(xmax))
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLo, strings.Repeat(" ", gap), xHi)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", labelW), seriesMarkers[si%len(seriesMarkers)], s.Name)
	}
	return b.String(), nil
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.2g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// svgPalette holds the series colors for SVG output.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// RenderSVG produces a standalone SVG document of the given pixel size.
// Series are drawn as polylines with point markers in drawing order.
func (c *Chart) RenderSVG(width, height int) (string, error) {
	if width < 100 || height < 80 {
		return "", fmt.Errorf("plot: SVG canvas %dx%d too small", width, height)
	}
	if err := c.Validate(); err != nil {
		return "", err
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 60
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	xmin, xmax, ymin, ymax := c.bounds()
	px := func(x float64) float64 { return float64(marginL) + (c.tx(x)-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (1-(c.ty(y)-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-family="sans-serif" font-size="16">%s</text>`+"\n",
			width/2, escape(c.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	// Ticks: 5 per axis in transformed space.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		x := px(c.untx(fx))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-marginB, x, height-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x, height-marginB+18, formatTick(c.untx(fx)))
		fy := ymin + (ymax-ymin)*float64(i)/4
		y := py(c.unty(fy))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL-8, y+4, formatTick(c.unty(fy)))
	}
	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			marginL+int(plotW)/2, height-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-family="sans-serif" font-size="13" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			marginT+int(plotH)/2, marginT+int(plotH)/2, escape(c.YLabel))
	}
	// Series.
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		if len(s.X) > 1 {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			width-marginR-150, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR-135, ly+9, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
