// Package tablecache caches compiled kernel tables — artifacts that are
// expensive to build (a model walk per node type) but answer every
// request against the same cluster — behind an LRU with singleflight.
// It differs from the serving layer's result cache (internal/servercache)
// in what a key means: result-cache keys canonicalize the *full* request,
// so two requests over the same cluster with different deadlines or work
// sizes occupy distinct entries and each pays the table build inside its
// compute closure; tablecache keys canonicalize only the cluster spec —
// per-request parameters (work size, deadline, prune flag) are
// deliberately excluded — so the compiled artifact is shared across every
// request shape the cluster can take.
//
// The cache holds few, large values, so it is a single-lock LRU (no
// sharding: a build takes milliseconds, a lock hold nanoseconds) with
// per-entry byte accounting via the Artifact contract. Errors are never
// cached: a failed build leaves the cache untouched and the next caller
// retries.
package tablecache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Artifact is a compiled table the cache can hold: anything that can
// report its resident size for byte accounting. Artifacts must be
// immutable (they are shared across goroutines without copying).
type Artifact interface {
	SizeBytes() int
}

// Stats is a point-in-time view of the cache's effectiveness.
type Stats struct {
	// Hits and Misses count lookup outcomes (Do's fast path counts too).
	Hits, Misses uint64
	// Evictions counts LRU entries dropped to capacity pressure.
	Evictions uint64
	// Collapsed counts Do callers that waited on another caller's build
	// instead of running their own.
	Collapsed uint64
	// Entries is the current number of cached artifacts.
	Entries int
	// Bytes is the summed SizeBytes of cached artifacts.
	Bytes int64
}

// call is one in-flight singleflight build.
type call struct {
	wg  sync.WaitGroup
	val Artifact
	err error
}

// Cache is an LRU of compiled artifacts with singleflight builds. The
// zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64      // 0 = unlimited
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
	bytes    int64

	flightMu sync.Mutex
	flight   map[string]*call

	hits, misses, evictions, collapsed atomic.Uint64
}

// lruEntry is a recency-list payload.
type lruEntry struct {
	key string
	val Artifact
}

// DefaultCapacity bounds the cache when the caller passes a
// non-positive capacity: generous for the handful of distinct clusters
// a deployment serves, small enough that even worst-case tables stay
// within tens of megabytes.
const DefaultCapacity = 64

// New returns a cache holding at most capacity artifacts (capacity <= 0
// selects DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:    capacity,
		ll:     list.New(),
		m:      make(map[string]*list.Element),
		flight: make(map[string]*call),
	}
}

// Get returns the cached artifact for key, marking it most recently
// used.
func (c *Cache) Get(key string) (Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Add stores key → val, evicting the least recently used artifact if
// the cache is full. Re-adding an existing key refreshes its value and
// recency.
func (c *Cache) Add(key string, val Artifact) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += int64(val.SizeBytes()) - int64(e.val.SizeBytes())
		e.val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	c.bytes += int64(val.SizeBytes())
	c.evictLocked()
}

// evictLocked drops least-recently-used artifacts until both the entry
// cap and the byte limit hold. A single artifact larger than the byte
// limit stays resident alone — evicting it would just force the next
// request to rebuild it, which is the exact cost the cache exists to
// amortize.
func (c *Cache) evictLocked() {
	for c.ll.Len() > 1 && (c.ll.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(c.m, e.key)
		c.bytes -= int64(e.val.SizeBytes())
		c.evictions.Add(1)
	}
}

// SetMaxBytes bounds the summed SizeBytes of cached artifacts (0 or
// negative removes the bound). Lowering the limit evicts immediately,
// coldest first.
func (c *Cache) SetMaxBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.maxBytes = n
	c.evictLocked()
}

// MaxBytes returns the byte limit (0 = unlimited).
func (c *Cache) MaxBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBytes
}

// Capacity returns the entry cap.
func (c *Cache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// Entry is one cached (key, artifact) pair as exported by Hottest.
type Entry struct {
	Key string
	Val Artifact
}

// Hottest returns up to limit entries in recency order, most recently
// used first (limit <= 0 returns everything). It does not touch recency
// or the hit/miss counters: snapshotting the cache must not reorder it.
func (c *Cache) Hottest(limit int) []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Entry, 0, n)
	for el := c.ll.Front(); el != nil && len(out) < n; el = el.Next() {
		e := el.Value.(*lruEntry)
		out = append(out, Entry{Key: e.key, Val: e.val})
	}
	return out
}

// Do returns the cached artifact for key, building it with build on a
// miss. Concurrent Do calls for the same key collapse: one caller runs
// build, the rest block and share its result. Successful builds are
// cached; errors are returned to every collapsed caller and nothing is
// stored, so the next Do retries. cached reports whether the artifact
// came from the cache without running or waiting on build.
func (c *Cache) Do(key string, build func() (Artifact, error)) (val Artifact, cached bool, err error) {
	if v, ok := c.Get(key); ok {
		return v, true, nil
	}
	c.flightMu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		c.collapsed.Add(1)
		cl.wg.Wait()
		return cl.val, false, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.flightMu.Unlock()

	// Re-check under flight ownership: another caller may have completed
	// and cached between our Get miss and claiming the flight slot.
	if v, ok := c.Get(key); ok {
		cl.val = v
	} else {
		cl.val, cl.err = build()
		if cl.err == nil {
			c.Add(key, cl.val)
		}
	}

	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	cl.wg.Done()
	return cl.val, false, cl.err
}

// Len returns the current number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the summed SizeBytes of cached artifacts.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// DeleteFunc removes every artifact whose key satisfies pred and
// returns the number removed. A concurrent Do racing the sweep may
// re-add a matching key afterwards — callers invalidating by key
// component must also stop producing the doomed keys (the server does:
// table keys carry a profile version no new request resolves to).
func (c *Cache) DeleteFunc(pred func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.m {
		if !pred(key) {
			continue
		}
		c.ll.Remove(el)
		delete(c.m, key)
		c.bytes -= int64(el.Value.(*lruEntry).val.SizeBytes())
		n++
	}
	return n
}

// Reset empties the cache (statistics are kept; they describe the
// process, not the current contents).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
	c.bytes = 0
}

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Collapsed: c.collapsed.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}
