package tablecache

import (
	"fmt"
	"strings"
	"testing"
)

// TestBytesExactAfterSweep is the preheat-era accounting regression
// test: after bulk inserts, updates and a DeleteFunc sweep, Stats.Bytes
// must equal what a cache freshly rebuilt from the survivors reports —
// accounting drift would make byte-limited preheat trim the wrong
// amount.
func TestBytesExactAfterSweep(t *testing.T) {
	c := New(128)
	for i := 0; i < 64; i++ {
		c.Add(fmt.Sprintf("k%03d", i), fakeArtifact{id: i, size: 100 + i})
	}
	// Re-add half the keys with different sizes (the update path).
	for i := 0; i < 32; i++ {
		c.Add(fmt.Sprintf("k%03d", i), fakeArtifact{id: i, size: 10 + i})
	}
	c.DeleteFunc(func(key string) bool { return strings.HasSuffix(key, "7") })

	rebuilt := New(128)
	for _, e := range c.Hottest(0) {
		rebuilt.Add(e.Key, e.Val)
	}
	if got, want := c.Stats().Bytes, rebuilt.Stats().Bytes; got != want {
		t.Fatalf("Stats.Bytes = %d after sweep, freshly rebuilt cache reports %d", got, want)
	}
	if got, want := c.Len(), rebuilt.Len(); got != want {
		t.Fatalf("Len = %d after sweep, rebuilt = %d", got, want)
	}
	// And the figure must be the straightforward sum of survivors.
	var sum int64
	for _, e := range c.Hottest(0) {
		sum += int64(e.Val.SizeBytes())
	}
	if got := c.Bytes(); got != sum {
		t.Fatalf("Bytes() = %d, survivors sum to %d", got, sum)
	}
}

func TestSetMaxBytesEvictsColdestFirst(t *testing.T) {
	c := New(100)
	for i := 0; i < 10; i++ {
		c.Add(fmt.Sprintf("k%d", i), fakeArtifact{id: i, size: 10})
	}
	c.SetMaxBytes(35) // room for 3 entries of 10
	if got := c.Bytes(); got > 35 {
		t.Fatalf("Bytes = %d exceeds limit 35", got)
	}
	if got, want := c.Len(), 3; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// Survivors must be the hottest (most recently added) entries.
	for _, e := range c.Hottest(0) {
		if e.Val.(fakeArtifact).id < 7 {
			t.Fatalf("cold entry %q survived byte-limit eviction", e.Key)
		}
	}
	// Adds past the limit keep evicting.
	c.Add("new", fakeArtifact{id: 99, size: 10})
	if got := c.Bytes(); got > 35 {
		t.Fatalf("Bytes = %d exceeds limit after Add", got)
	}
	if _, ok := c.Get("new"); !ok {
		t.Fatal("freshly added entry must survive its own eviction pass")
	}
}

func TestMaxBytesKeepsSingleOversizedEntry(t *testing.T) {
	c := New(10)
	c.SetMaxBytes(5)
	c.Add("big", fakeArtifact{id: 1, size: 100})
	if _, ok := c.Get("big"); !ok {
		t.Fatal("a single artifact larger than the limit must stay resident")
	}
	c.Add("big2", fakeArtifact{id: 2, size: 100})
	if got, want := c.Len(), 1; got != want {
		t.Fatalf("Len = %d, want %d (older oversized entry evicted)", got, want)
	}
	if _, ok := c.Get("big2"); !ok {
		t.Fatal("newest oversized artifact must be the survivor")
	}
}

func TestHottestOrderAndLimit(t *testing.T) {
	c := New(10)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), fakeArtifact{id: i, size: 1})
	}
	c.Get("k1") // k1 becomes hottest
	got := c.Hottest(3)
	if len(got) != 3 {
		t.Fatalf("Hottest(3) returned %d entries", len(got))
	}
	wantKeys := []string{"k1", "k4", "k3"}
	for i, e := range got {
		if e.Key != wantKeys[i] {
			t.Fatalf("Hottest order = %v..., want %v", e.Key, wantKeys)
		}
	}
	// Hottest must not perturb recency: k1 still hottest, k0 still coldest.
	all := c.Hottest(0)
	if len(all) != 5 || all[0].Key != "k1" || all[4].Key != "k0" {
		t.Fatalf("Hottest(0) perturbed recency: %v", all)
	}
}
