package tablecache

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeArtifact is a test artifact with a fixed reported size.
type fakeArtifact struct {
	id   int
	size int
}

func (a fakeArtifact) SizeBytes() int { return a.size }

func TestGetAddLRUAndBytes(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Add("a", fakeArtifact{1, 100})
	c.Add("b", fakeArtifact{2, 200})
	if got := c.Bytes(); got != 300 {
		t.Fatalf("bytes = %d, want 300", got)
	}
	// Touch a so b is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should hit")
	}
	c.Add("c", fakeArtifact{3, 50})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got := c.Bytes(); got != 150 {
		t.Fatalf("bytes after eviction = %d, want 150", got)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	// Re-adding an existing key refreshes value, recency and bytes.
	c.Add("c", fakeArtifact{4, 70})
	if got := c.Bytes(); got != 170 {
		t.Fatalf("bytes after refresh = %d, want 170", got)
	}
	v, ok := c.Get("c")
	if !ok || v.(fakeArtifact).id != 4 {
		t.Fatalf("refresh should replace the value, got %v", v)
	}
}

func TestDoBuildsOnceAndCaches(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	build := func() (Artifact, error) {
		builds.Add(1)
		return fakeArtifact{1, 10}, nil
	}
	v, cached, err := c.Do("k", build)
	if err != nil || cached || v.(fakeArtifact).id != 1 {
		t.Fatalf("first Do = (%v, %v, %v)", v, cached, err)
	}
	v, cached, err = c.Do("k", build)
	if err != nil || !cached || v.(fakeArtifact).id != 1 {
		t.Fatalf("second Do = (%v, %v, %v)", v, cached, err)
	}
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
}

func TestDoNeverCachesErrors(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	var builds atomic.Int64
	for i := 0; i < 3; i++ {
		_, cached, err := c.Do("k", func() (Artifact, error) {
			builds.Add(1)
			return nil, boom
		})
		if !errors.Is(err, boom) || cached {
			t.Fatalf("Do %d = (cached=%v, err=%v)", i, cached, err)
		}
	}
	if builds.Load() != 3 {
		t.Fatalf("failed build should rerun every time, ran %d", builds.Load())
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("error should leave the cache empty, len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// A later success lands normally.
	v, _, err := c.Do("k", func() (Artifact, error) { return fakeArtifact{9, 5}, nil })
	if err != nil || v.(fakeArtifact).id != 9 {
		t.Fatalf("recovery Do = (%v, %v)", v, err)
	}
}

func TestDoSingleflightCollapses(t *testing.T) {
	c := New(0)
	const callers = 8
	release := make(chan struct{})
	var builds atomic.Int64
	var wg sync.WaitGroup
	results := make([]Artifact, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", func() (Artifact, error) {
				builds.Add(1)
				<-release
				return fakeArtifact{7, 10}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the one builder holds the flight, then release it.
	for builds.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times under contention, want 1", builds.Load())
	}
	for i, v := range results {
		if v.(fakeArtifact).id != 7 {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	if c.Stats().Collapsed == 0 {
		t.Fatal("collapsed counter should have advanced")
	}
}

func TestResetAndDefaultCapacity(t *testing.T) {
	c := New(-1)
	for i := 0; i < DefaultCapacity+10; i++ {
		c.Add(fmt.Sprintf("k%d", i), fakeArtifact{i, 1})
	}
	if c.Len() != DefaultCapacity {
		t.Fatalf("len = %d, want %d", c.Len(), DefaultCapacity)
	}
	c.Reset()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("reset should empty the cache, len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if c.Stats().Evictions != 10 {
		t.Fatalf("evictions survive reset, got %d want 10", c.Stats().Evictions)
	}
}

// DeleteFunc removes exactly the matching artifacts, fixes the byte
// accounting, and leaves the rest servable.
func TestDeleteFunc(t *testing.T) {
	c := New(8)
	c.Add("table|ep@v1|false", fakeArtifact{id: 1, size: 100})
	c.Add("table|ep@v1|true", fakeArtifact{id: 2, size: 50})
	c.Add("table|memcached@v1|false", fakeArtifact{id: 3, size: 30})
	n := c.DeleteFunc(func(key string) bool { return strings.Contains(key, "|ep@v1|") })
	if n != 2 {
		t.Fatalf("DeleteFunc removed %d, want 2", n)
	}
	if _, ok := c.Get("table|ep@v1|false"); ok {
		t.Error("invalidated artifact still reachable")
	}
	if _, ok := c.Get("table|memcached@v1|false"); !ok {
		t.Error("unrelated artifact was dropped")
	}
	if got := c.Bytes(); got != 30 {
		t.Errorf("Bytes after delete = %d, want 30", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len after delete = %d, want 1", c.Len())
	}
	if n := c.DeleteFunc(func(string) bool { return false }); n != 0 {
		t.Errorf("no-match DeleteFunc removed %d", n)
	}
}
