package budget

import (
	"testing"

	"heteromix/internal/hwsim"
)

func TestSubstitutionRatioIs8(t *testing.T) {
	// Paper §IV-C footnote: 60 W AMD vs 5 W ARM with a 20 W switch per 8
	// ARM nodes gives an 8:1 substitution ratio.
	got := SubstitutionRatio(hwsim.ARMCortexA9(), hwsim.AMDOpteronK10())
	if got != 8 {
		t.Errorf("substitution ratio = %d, want 8", got)
	}
}

func TestPeakPowerOfPaperMixes(t *testing.T) {
	arm, amd := hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()
	// Every mix in the paper's 1 kW series draws the same 960 W peak.
	for _, m := range PaperBudgetSeries() {
		p := PeakPower(m, arm, amd)
		if p < 955 || p > 965 {
			t.Errorf("%v peak = %v, want ~960 W", m, p)
		}
		if !Fits(m, arm, amd, 1000) {
			t.Errorf("%v should fit the 1 kW budget", m)
		}
	}
}

func TestConstantBudgetMixes(t *testing.T) {
	arm, amd := hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()
	mixes, err := ConstantBudgetMixes(arm, amd, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 16 AMD nodes fit in 1 kW, so the series has 17 entries from
	// ARM 0:AMD 16 to ARM 128:AMD 0.
	if len(mixes) != 17 {
		t.Fatalf("got %d mixes, want 17", len(mixes))
	}
	if (mixes[0] != Mix{ARM: 0, AMD: 16}) {
		t.Errorf("first mix = %v", mixes[0])
	}
	if (mixes[16] != Mix{ARM: 128, AMD: 0}) {
		t.Errorf("last mix = %v", mixes[16])
	}
	// The paper's plotted series is a subset of the generated one.
	set := map[Mix]bool{}
	for _, m := range mixes {
		set[m] = true
	}
	for _, m := range PaperBudgetSeries() {
		if !set[m] {
			t.Errorf("paper mix %v not generated", m)
		}
	}
}

func TestConstantBudgetMixesErrors(t *testing.T) {
	arm, amd := hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()
	if _, err := ConstantBudgetMixes(arm, amd, 0); err == nil {
		t.Error("zero budget should error")
	}
	if _, err := ConstantBudgetMixes(arm, amd, 30); err == nil {
		t.Error("budget below one AMD node should error")
	}
}

func TestScalingSeries(t *testing.T) {
	// Paper §IV-D: ARM 8:AMD 1 doubling to ARM 128:AMD 16.
	mixes, err := ScalingSeries(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []Mix{{8, 1}, {16, 2}, {32, 4}, {64, 8}, {128, 16}}
	if len(mixes) != len(want) {
		t.Fatalf("got %v", mixes)
	}
	for i := range want {
		if mixes[i] != want[i] {
			t.Errorf("step %d = %v, want %v", i, mixes[i], want[i])
		}
	}
	if _, err := ScalingSeries(0, 5); err == nil {
		t.Error("zero ratio should error")
	}
	if _, err := ScalingSeries(8, 0); err == nil {
		t.Error("zero steps should error")
	}
}

func TestScalingSeriesKeepsRatio(t *testing.T) {
	arm, amd := hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()
	mixes, _ := ScalingSeries(8, 5)
	for _, m := range mixes {
		if m.ARM != 8*m.AMD {
			t.Errorf("%v breaks the 8:1 ratio", m)
		}
		// Peak power doubles along the series; each mix's ARM half and
		// AMD half draw equal peaks.
		armPeak := float64(PeakPower(Mix{ARM: m.ARM}, arm, amd))
		amdPeak := float64(PeakPower(Mix{AMD: m.AMD}, arm, amd))
		if rel := (armPeak - amdPeak) / amdPeak; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("%v: ARM side %v != AMD side %v", m, armPeak, amdPeak)
		}
	}
}

func TestMixString(t *testing.T) {
	if got := (Mix{ARM: 16, AMD: 14}).String(); got != "ARM 16:AMD 14" {
		t.Errorf("String() = %q", got)
	}
}

func TestFitsBoundary(t *testing.T) {
	arm, amd := hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()
	m := Mix{ARM: 8, AMD: 0}
	peak := PeakPower(m, arm, amd) // 8*5 + 20 = 60 W
	if float64(peak) < 59.99 || float64(peak) > 60.01 {
		t.Fatalf("peak = %v, want ~60 W", peak)
	}
	if !Fits(m, arm, amd, peak) {
		t.Error("exact budget should fit")
	}
	if Fits(m, arm, amd, peak-1) {
		t.Error("budget below peak should not fit")
	}
}

// The streaming generator produces exactly the materialized series and
// honors early termination.
func TestForEachConstantBudgetMixStreams(t *testing.T) {
	arm, amd := hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()
	want, err := ConstantBudgetMixes(arm, amd, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var got []Mix
	if err := ForEachConstantBudgetMix(arm, amd, 1000, func(m Mix) bool {
		got = append(got, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d mixes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mix %d = %v, want %v", i, got[i], want[i])
		}
	}

	n := 0
	if err := ForEachConstantBudgetMix(arm, amd, 1000, func(Mix) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("early stop saw %d mixes, want 3", n)
	}

	if err := ForEachConstantBudgetMix(arm, amd, 0, func(Mix) bool { return true }); err == nil {
		t.Error("non-positive budget should error")
	}
	if err := ForEachConstantBudgetMix(arm, amd, 30, func(Mix) bool { return true }); err == nil {
		t.Error("budget below one AMD node should error")
	}
}
