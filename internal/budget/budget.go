// Package budget implements the paper's power-budget analysis (§IV-C and
// §IV-D). Datacenters cap peak power; within a budget, high-performance
// nodes can be swapped for low-power nodes at the substitution ratio set
// by peak draws: one 60 W AMD node buys twelve 5 W ARM nodes, but every
// eight ARM nodes also need a 20 W switch, so the effective ratio is 8:1
// (8 x 5 W + 20 W = 60 W). The package generates
//
//   - the constant-budget mix series of Figures 6 and 7
//     (ARM 0:AMD 16, 16:14, 32:12, ..., 128:0 under 1 kW), and
//   - the constant-ratio scaling series of Figures 8 and 9
//     (ARM 8:AMD 1 doubling up to ARM 128:AMD 16).
package budget

import (
	"fmt"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/units"
)

// Mix is a node-count pair.
type Mix struct {
	ARM int
	AMD int
}

// String renders the mix as the paper labels its series.
func (m Mix) String() string { return fmt.Sprintf("ARM %d:AMD %d", m.ARM, m.AMD) }

// SubstitutionRatio returns how many low-power nodes replace one
// high-performance node under equal peak power, accounting for the switch
// overhead amortized over a full switch group:
//
//	ratio = floor( peakHigh / (peakLow + switch/portsPerSwitch) )
//
// For the paper's nodes: 60 / (5 + 20/8) = 8.
func SubstitutionRatio(low, high hwsim.NodeSpec) int {
	perLow := float64(low.PeakPower()) + float64(cluster.SwitchPower)/float64(cluster.ARMPortsPerSwitch)
	if perLow <= 0 {
		return 0
	}
	return int(float64(high.PeakPower()) / perLow)
}

// PeakPower returns the peak draw of a mix: all nodes at full tilt plus
// the ARM-side switches.
func PeakPower(m Mix, low, high hwsim.NodeSpec) units.Watt {
	switches := 0
	if m.ARM > 0 {
		switches = (m.ARM + cluster.ARMPortsPerSwitch - 1) / cluster.ARMPortsPerSwitch
	}
	return units.Watt(float64(low.PeakPower())*float64(m.ARM)) +
		units.Watt(float64(high.PeakPower())*float64(m.AMD)) +
		units.Watt(float64(cluster.SwitchPower)*float64(switches))
}

// Fits reports whether the mix's peak power stays within the budget.
func Fits(m Mix, low, high hwsim.NodeSpec, budget units.Watt) bool {
	return PeakPower(m, low, high) <= budget
}

// ForEachConstantBudgetMix streams the §IV-C series to yield: starting
// from the largest AMD-only cluster within the budget, repeatedly replace
// one AMD node with substitution-ratio ARM nodes. All generated mixes draw
// the same peak power, ending at an ARM-only cluster. Returning false from
// yield stops the generation early (not an error). It pairs with
// cluster.Space.EnumerateFunc for fully streaming budget studies that
// never hold a mix or point slice.
func ForEachConstantBudgetMix(low, high hwsim.NodeSpec, budget units.Watt, yield func(Mix) bool) error {
	if budget <= 0 {
		return fmt.Errorf("budget: non-positive budget %v", budget)
	}
	ratio := SubstitutionRatio(low, high)
	if ratio < 1 {
		return fmt.Errorf("budget: substitution ratio %d < 1", ratio)
	}
	maxAMD := int(float64(budget) / float64(high.PeakPower()))
	if maxAMD < 1 {
		return fmt.Errorf("budget: %v does not fit one %s node", budget, high.Name)
	}
	for k := 0; k <= maxAMD; k++ {
		m := Mix{ARM: ratio * k, AMD: maxAMD - k}
		if !Fits(m, low, high, budget) {
			return fmt.Errorf("budget: generated mix %v exceeds budget %v (peak %v)",
				m, budget, PeakPower(m, low, high))
		}
		if !yield(m) {
			return nil
		}
	}
	return nil
}

// ConstantBudgetMixes materializes the ForEachConstantBudgetMix series.
func ConstantBudgetMixes(low, high hwsim.NodeSpec, budget units.Watt) ([]Mix, error) {
	var mixes []Mix
	err := ForEachConstantBudgetMix(low, high, budget, func(m Mix) bool {
		mixes = append(mixes, m)
		return true
	})
	if err != nil {
		return nil, err
	}
	return mixes, nil
}

// PaperBudgetSeries returns the subset of 1 kW mixes the paper plots in
// Figures 6 and 7: ARM 0:AMD 16, 16:14, 32:12, 48:10, 88:5, 112:2 and
// 128:0.
func PaperBudgetSeries() []Mix {
	return []Mix{
		{ARM: 0, AMD: 16},
		{ARM: 16, AMD: 14},
		{ARM: 32, AMD: 12},
		{ARM: 48, AMD: 10},
		{ARM: 88, AMD: 5},
		{ARM: 112, AMD: 2},
		{ARM: 128, AMD: 0},
	}
}

// ScalingSeries returns the §IV-D series: the substitution-ratio mix
// doubled from (ratio:1) for the given number of steps — the paper's
// ARM 8:AMD 1 through ARM 128:AMD 16 (5 steps at ratio 8).
func ScalingSeries(ratio, steps int) ([]Mix, error) {
	if ratio < 1 || steps < 1 {
		return nil, fmt.Errorf("budget: invalid scaling series ratio=%d steps=%d", ratio, steps)
	}
	out := make([]Mix, steps)
	amd := 1
	for i := range out {
		out[i] = Mix{ARM: ratio * amd, AMD: amd}
		amd *= 2
	}
	return out, nil
}
