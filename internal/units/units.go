// Package units provides the scalar quantities used throughout heteromix:
// frequencies, powers, energies, data sizes and rates, and durations.
//
// All quantities are thin float64 wrappers. They exist to make the model
// code read like the paper's equations (watts times seconds yield joules)
// and to catch dimensional mistakes in review, not to build a full
// dimensional-analysis system.
package units

import (
	"fmt"
	"math"
	"time"
)

// Hertz is a frequency in cycles per second. Core clock frequencies in the
// paper range from 0.2 GHz (ARM Cortex-A9 minimum) to 2.1 GHz (AMD K10
// maximum).
type Hertz float64

// Common frequency multiples.
const (
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// GHzValue reports the frequency in gigahertz.
func (h Hertz) GHzValue() float64 { return float64(h) / 1e9 }

// String formats the frequency with an appropriate SI prefix.
func (h Hertz) String() string {
	switch {
	case h >= GHz:
		return fmt.Sprintf("%.2fGHz", float64(h)/1e9)
	case h >= MHz:
		return fmt.Sprintf("%.1fMHz", float64(h)/1e6)
	case h >= KHz:
		return fmt.Sprintf("%.1fkHz", float64(h)/1e3)
	default:
		return fmt.Sprintf("%.0fHz", float64(h))
	}
}

// Watt is a power in joules per second.
type Watt float64

// String formats the power in watts.
func (w Watt) String() string { return fmt.Sprintf("%.2fW", float64(w)) }

// Times returns the energy dissipated by drawing power w for duration d.
func (w Watt) Times(d Seconds) Joule { return Joule(float64(w) * float64(d)) }

// Joule is an energy.
type Joule float64

// String formats the energy in joules.
func (j Joule) String() string { return fmt.Sprintf("%.3fJ", float64(j)) }

// Over returns the average power of spending energy j over duration d.
// It returns 0 for non-positive durations.
func (j Joule) Over(d Seconds) Watt {
	if d <= 0 {
		return 0
	}
	return Watt(float64(j) / float64(d))
}

// Seconds is a duration in seconds, kept as float64 because the model
// manipulates durations algebraically (ratios, maxima, divisions by node
// counts) where time.Duration's integer nanoseconds are inconvenient.
type Seconds float64

// Millis reports the duration in milliseconds.
func (s Seconds) Millis() float64 { return float64(s) * 1e3 }

// Duration converts to a time.Duration, saturating at the int64 limits.
func (s Seconds) Duration() time.Duration {
	ns := float64(s) * 1e9
	if ns > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	if ns < math.MinInt64 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(ns)
}

// String formats the duration with a natural unit.
func (s Seconds) String() string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", float64(s))
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", float64(s)*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2fus", float64(s)*1e6)
	default:
		return fmt.Sprintf("%.0fns", float64(s)*1e9)
	}
}

// FromDuration converts a time.Duration to Seconds.
func FromDuration(d time.Duration) Seconds { return Seconds(d.Seconds()) }

// Bytes is a data size in bytes.
type Bytes float64

// Common byte multiples (binary).
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// String formats the size with a binary prefix.
func (b Bytes) String() string {
	switch {
	case b >= GiB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// BytesPerSecond is a data rate. Network bandwidths in the paper are
// 1 Gbps (AMD) and 100 Mbps (ARM), i.e. 125 MB/s and 12.5 MB/s.
type BytesPerSecond float64

// Mbps constructs a rate from megabits per second, the unit used in
// Table 1 of the paper.
func Mbps(megabits float64) BytesPerSecond { return BytesPerSecond(megabits * 1e6 / 8) }

// TransferTime returns how long moving b bytes takes at rate r.
// It returns +Inf for non-positive rates with positive sizes.
func (r BytesPerSecond) TransferTime(b Bytes) Seconds {
	if r <= 0 {
		if b <= 0 {
			return 0
		}
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(r))
}

// String formats the rate in megabytes per second.
func (r BytesPerSecond) String() string { return fmt.Sprintf("%.1fMB/s", float64(r)/1e6) }

// Cycles counts CPU clock cycles.
type Cycles float64

// At returns the wall-clock time c cycles take at frequency f.
// It returns +Inf for non-positive frequencies with positive cycle counts.
func (c Cycles) At(f Hertz) Seconds {
	if f <= 0 {
		if c <= 0 {
			return 0
		}
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(c) / float64(f))
}
