package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func TestHertzString(t *testing.T) {
	cases := []struct {
		h    Hertz
		want string
	}{
		{1.4 * GHz, "1.40GHz"},
		{200 * MHz, "200.0MHz"},
		{32 * KHz, "32.0kHz"},
		{5, "5Hz"},
	}
	for _, c := range cases {
		if got := c.h.String(); got != c.want {
			t.Errorf("Hertz(%v).String() = %q, want %q", float64(c.h), got, c.want)
		}
	}
}

func TestHertzGHzValue(t *testing.T) {
	if got := (2.1 * GHz).GHzValue(); !almostEqual(got, 2.1, 1e-12) {
		t.Errorf("GHzValue = %v, want 2.1", got)
	}
}

func TestWattTimes(t *testing.T) {
	// 60 W for half a second is 30 J — the AMD peak power case.
	if got := Watt(60).Times(0.5); got != Joule(30) {
		t.Errorf("60W x 0.5s = %v, want 30J", got)
	}
}

func TestJouleOver(t *testing.T) {
	if got := Joule(30).Over(0.5); got != Watt(60) {
		t.Errorf("30J / 0.5s = %v, want 60W", got)
	}
	if got := Joule(30).Over(0); got != 0 {
		t.Errorf("division by zero duration should give 0W, got %v", got)
	}
	if got := Joule(30).Over(-1); got != 0 {
		t.Errorf("negative duration should give 0W, got %v", got)
	}
}

func TestPowerEnergyRoundTrip(t *testing.T) {
	f := func(w, s float64) bool {
		w = math.Abs(w)
		s = math.Abs(s)
		if s == 0 || w == 0 || math.IsInf(w, 0) || math.IsInf(s, 0) || w > 1e100 || s > 1e100 {
			return true
		}
		back := Watt(w).Times(Seconds(s)).Over(Seconds(s))
		return almostEqual(float64(back), w, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsConversions(t *testing.T) {
	s := Seconds(0.25)
	if got := s.Millis(); got != 250 {
		t.Errorf("Millis = %v, want 250", got)
	}
	if got := s.Duration(); got != 250*time.Millisecond {
		t.Errorf("Duration = %v, want 250ms", got)
	}
	if got := FromDuration(1500 * time.Millisecond); got != Seconds(1.5) {
		t.Errorf("FromDuration = %v, want 1.5", got)
	}
}

func TestSecondsDurationSaturates(t *testing.T) {
	if got := Seconds(1e300).Duration(); got != time.Duration(math.MaxInt64) {
		t.Errorf("huge duration should saturate at MaxInt64, got %v", got)
	}
	if got := Seconds(-1e300).Duration(); got != time.Duration(math.MinInt64) {
		t.Errorf("huge negative duration should saturate at MinInt64, got %v", got)
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		s    Seconds
		want string
	}{
		{1.5, "1.500s"},
		{0.0412, "41.20ms"},
		{42e-6, "42.00us"},
		{42e-9, "42ns"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.s), got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		b    Bytes
		want string
	}{
		{2 * GiB, "2.00GiB"},
		{50 * MiB, "50.00MiB"},
		{1536, "1.50KiB"},
		{12, "12B"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.b), got, c.want)
		}
	}
}

func TestMbps(t *testing.T) {
	// Table 1: ARM NIC is 100 Mbps = 12.5 MB/s; AMD is 1 Gbps = 125 MB/s.
	if got := Mbps(100); got != BytesPerSecond(12.5e6) {
		t.Errorf("Mbps(100) = %v, want 12.5e6 B/s", float64(got))
	}
	if got := Mbps(1000); got != BytesPerSecond(125e6) {
		t.Errorf("Mbps(1000) = %v, want 125e6 B/s", float64(got))
	}
}

func TestTransferTime(t *testing.T) {
	// 50 MB over 12.5 MB/s takes 4 s: one ARM node streaming one
	// memcached job, the scenario behind Figure 6's 30 ms floor.
	got := Mbps(100).TransferTime(50e6)
	if !almostEqual(float64(got), 4.0, 1e-12) {
		t.Errorf("transfer time = %v, want 4s", got)
	}
	if got := BytesPerSecond(0).TransferTime(1); !math.IsInf(float64(got), 1) {
		t.Errorf("zero-rate transfer should be +Inf, got %v", got)
	}
	if got := BytesPerSecond(0).TransferTime(0); got != 0 {
		t.Errorf("zero bytes at zero rate should be 0, got %v", got)
	}
}

func TestCyclesAt(t *testing.T) {
	// 1.4e9 cycles at 1.4 GHz is exactly one second.
	if got := Cycles(1.4e9).At(1.4 * GHz); !almostEqual(float64(got), 1, 1e-12) {
		t.Errorf("cycles at frequency = %v, want 1s", got)
	}
	if got := Cycles(100).At(0); !math.IsInf(float64(got), 1) {
		t.Errorf("cycles at zero frequency should be +Inf, got %v", got)
	}
	if got := Cycles(0).At(0); got != 0 {
		t.Errorf("zero cycles at zero frequency should be 0, got %v", got)
	}
}

func TestCyclesTimeScalesInverselyWithFrequency(t *testing.T) {
	f := func(cyc, freq float64) bool {
		cyc = math.Abs(cyc)
		freq = math.Abs(freq)
		if freq < 1 || freq > 1e12 || cyc > 1e15 {
			return true
		}
		t1 := Cycles(cyc).At(Hertz(freq))
		t2 := Cycles(cyc).At(Hertz(2 * freq))
		return almostEqual(float64(t1), 2*float64(t2), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
