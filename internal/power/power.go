// Package power implements the paper's power characterization (§II-D2).
// Each node type's power parameters are obtained the way the authors
// obtained them:
//
//   - P_CPU,act: measured across cores and frequencies with a
//     micro-benchmark that maximizes CPU utilization (workloads.MicroCPUMax).
//   - P_CPU,stall: measured with a stall micro-benchmark that streams
//     cache misses (workloads.MicroStallStream).
//   - P_mem: taken from the memory specifications, as the paper does
//     (references [1] and [24] there — DDR3 and LP-DDR2 datasheets).
//   - P_I/O: direct measurement during an I/O-saturating run.
//   - P_idle: metered with no workload running.
//
// The resulting Characterization is the power half of the model's
// trace-driven inputs; the model never reads hwsim's internal power
// tables directly, only these measured (noise-carrying) estimates.
package power

import (
	"fmt"
	"math"
	"sort"

	"heteromix/internal/hwsim"
	"heteromix/internal/perfcounter"
	"heteromix/internal/trace"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// Characterization holds one node type's measured power parameters.
type Characterization struct {
	// Node names the characterized node type.
	Node string
	// CoreActive maps each P-state to the measured per-core extra power
	// while executing work cycles.
	CoreActive map[units.Hertz]units.Watt
	// CoreStall maps each P-state to the measured per-core extra power
	// while stalled.
	CoreStall map[units.Hertz]units.Watt
	// MemActive is the DRAM subsystem's active power from specifications.
	MemActive units.Watt
	// NICActive is the network device's measured active power.
	NICActive units.Watt
	// Idle is the metered whole-node idle power (the paper's Pidle).
	Idle units.Watt
}

// Validate checks the Characterization invariants.
func (c Characterization) Validate() error {
	if c.Node == "" {
		return fmt.Errorf("power: characterization with empty node")
	}
	if len(c.CoreActive) == 0 || len(c.CoreStall) == 0 {
		return fmt.Errorf("power: characterization of %q missing core tables", c.Node)
	}
	if c.Idle <= 0 {
		return fmt.Errorf("power: characterization of %q has idle %v", c.Node, c.Idle)
	}
	for f, p := range c.CoreActive {
		if p < 0 {
			return fmt.Errorf("power: negative active power %v at %v", p, f)
		}
	}
	for f, p := range c.CoreStall {
		if p < 0 {
			return fmt.Errorf("power: negative stall power %v at %v", p, f)
		}
		if _, ok := c.CoreActive[f]; !ok {
			return fmt.Errorf("power: stall table has %v but active table does not", f)
		}
	}
	if c.MemActive < 0 || c.NICActive < 0 {
		return fmt.Errorf("power: negative component power in %q", c.Node)
	}
	return nil
}

// frequencies returns the characterized P-states, ascending.
func (c Characterization) frequencies() []units.Hertz {
	fs := make([]units.Hertz, 0, len(c.CoreActive))
	for f := range c.CoreActive {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// CoreActiveAt returns the per-core active power at frequency f,
// interpolating linearly between characterized P-states and clamping at
// the extremes.
func (c Characterization) CoreActiveAt(f units.Hertz) units.Watt {
	return interpolate(c.frequencies(), c.CoreActive, f)
}

// CoreStallAt returns the per-core stall power at frequency f, with the
// same interpolation rules as CoreActiveAt.
func (c Characterization) CoreStallAt(f units.Hertz) units.Watt {
	return interpolate(c.frequencies(), c.CoreStall, f)
}

func interpolate(fs []units.Hertz, table map[units.Hertz]units.Watt, f units.Hertz) units.Watt {
	if len(fs) == 0 {
		return 0
	}
	if p, ok := table[f]; ok {
		return p
	}
	if f <= fs[0] {
		return table[fs[0]]
	}
	last := fs[len(fs)-1]
	if f >= last {
		return table[last]
	}
	i := sort.Search(len(fs), func(i int) bool { return fs[i] >= f })
	lo, hi := fs[i-1], fs[i]
	frac := float64(f-lo) / float64(hi-lo)
	return table[lo] + units.Watt(frac*float64(table[hi]-table[lo]))
}

// Options tunes a characterization run.
type Options struct {
	// NoiseSigma is the measurement noise magnitude (0 = ideal meters).
	NoiseSigma float64
	// Seed makes the characterization reproducible.
	Seed int64
	// Repetitions is how many meter readings are averaged per
	// measurement point (default 3). Averaging matters because the core
	// dynamic power at low P-states is small against the idle floor —
	// on the AMD node, six cores at 0.8 GHz add ~1.5 W to a 45 W idle,
	// below a single reading's noise.
	Repetitions int
}

// Characterize measures a node type's power parameters using the
// micro-benchmark procedure described in the package comment.
func Characterize(spec hwsim.NodeSpec, opts Options) (Characterization, error) {
	if err := spec.Validate(); err != nil {
		return Characterization{}, err
	}
	reps := opts.Repetitions
	if reps < 1 {
		reps = 3
	}
	idleSum := 0.0
	for i := 0; i < reps; i++ {
		reading, err := perfcounter.MeasureIdle(spec, opts.NoiseSigma, opts.Seed+int64(i))
		if err != nil {
			return Characterization{}, err
		}
		idleSum += reading
	}
	idle := idleSum / float64(reps)

	c := Characterization{
		Node:       spec.Name,
		CoreActive: make(map[units.Hertz]units.Watt, len(spec.Frequencies)),
		CoreStall:  make(map[units.Hertz]units.Watt, len(spec.Frequencies)),
		// The paper takes memory power from the DDR3/LP-DDR2
		// specifications rather than measuring it.
		MemActive: spec.Power.MemActive,
		Idle:      units.Watt(idle),
	}

	cpuMax := workloads.MicroCPUMax().Demand
	stall := workloads.MicroStallStream().Demand
	seed := opts.Seed

	for _, f := range spec.Frequencies {
		cfg := hwsim.Config{Cores: spec.Cores, Frequency: f}
		// Scale batch so each run covers a comparable wall-clock span.
		unitsCPU := 2e4 * f.GHzValue() * float64(spec.Cores)

		// All cores saturated, no DRAM traffic: the whole excess over
		// idle is core dynamic power. Average reps meter readings.
		sum := 0.0
		for i := 0; i < reps; i++ {
			seed++
			m, err := hwsim.Run(spec, cfg, cpuMax, unitsCPU, hwsim.Options{Seed: seed, NoiseSigma: opts.NoiseSigma})
			if err != nil {
				return Characterization{}, fmt.Errorf("power: cpu-max at %v: %w", f, err)
			}
			sum += float64(m.Record.AveragePower())
		}
		perCore := (sum/float64(reps) - idle) / float64(spec.Cores)
		c.CoreActive[f] = units.Watt(math.Max(0, perCore))

		// All cores stalled on a saturated memory system: subtract idle
		// and the (datasheet) memory active power, the rest is stall
		// power across the cores.
		sum = 0
		for i := 0; i < reps; i++ {
			seed++
			ms, err := hwsim.Run(spec, cfg, stall, 2e3*f.GHzValue()*float64(spec.Cores), hwsim.Options{Seed: seed, NoiseSigma: opts.NoiseSigma})
			if err != nil {
				return Characterization{}, fmt.Errorf("power: stall-stream at %v: %w", f, err)
			}
			sum += float64(ms.Record.AveragePower())
		}
		perCoreStall := (sum/float64(reps) - idle - float64(c.MemActive)) / float64(spec.Cores)
		if perCoreStall < 0 {
			perCoreStall = 0
		}
		// The stall stream still retires ~8% work cycles; accept the
		// contamination as the paper's measurement would.
		if perCoreStall > perCore && perCore > 0 {
			perCoreStall = perCore
		}
		c.CoreStall[f] = units.Watt(perCoreStall)
	}

	// P_I/O by direct measurement: drive the NIC to saturation with the
	// request-response workload at minimum CPU settings, then subtract
	// the estimated CPU and memory contributions.
	mc, err := workloads.ByName("memcached")
	if err != nil {
		return Characterization{}, err
	}
	cfg := hwsim.Config{Cores: 1, Frequency: spec.FMin()}
	seed++
	mio, err := hwsim.Run(spec, cfg, mc.Demand, 2e4, hwsim.Options{Seed: seed, NoiseSigma: opts.NoiseSigma})
	if err != nil {
		return Characterization{}, fmt.Errorf("power: io run: %w", err)
	}
	nic := estimateNIC(c, spec, mio.Record, idle)
	c.NICActive = units.Watt(math.Max(0, nic))

	if err := c.Validate(); err != nil {
		return Characterization{}, err
	}
	return c, nil
}

// estimateNIC subtracts the idle, CPU and memory contributions from the
// I/O run's average power; the remainder is attributed to the NIC.
func estimateNIC(c Characterization, spec hwsim.NodeSpec, rec trace.Record, idle float64) float64 {
	u := rec.CPUUtilization() * float64(rec.Cores)
	wpi := rec.WPI()
	spiTotal := math.Max(rec.SPICore(), rec.SPIMem())
	actShare := 1.0
	if wpi+spiTotal > 0 {
		actShare = wpi / (wpi + spiTotal)
	}
	cpu := u * (actShare*float64(c.CoreActiveAt(rec.Frequency)) +
		(1-actShare)*float64(c.CoreStallAt(rec.Frequency)))
	memShare := hwsim.MemoryActiveShare(wpi, rec.SPICore(), rec.SPIMem(), u)
	mem := memShare * float64(c.MemActive)
	nicShare := float64(rec.IOTransferTime) / float64(rec.Elapsed)
	if nicShare < 0.1 {
		nicShare = 0.1 // guard: attribute residual over at least 10% duty
	}
	return (float64(rec.AveragePower()) - idle - cpu - mem) / nicShare
}
