package power

import (
	"math"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/units"
)

func TestCharacterizeARM(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	c, err := Characterize(arm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Node != arm.Name {
		t.Errorf("node = %q", c.Node)
	}
	// Noiseless characterization should land close to the true tables.
	if rel := relErr(float64(c.Idle), float64(arm.IdlePower())); rel > 0.01 {
		t.Errorf("idle = %v, want ~%v", c.Idle, arm.IdlePower())
	}
	for _, f := range arm.Frequencies {
		got := float64(c.CoreActiveAt(f))
		want := float64(arm.CoreActivePower(f))
		// The cpu-max micro-benchmark has ~5% stall contamination, so
		// the measured value sits slightly below truth.
		if got > want*1.02 || got < want*0.85 {
			t.Errorf("core active at %v = %v, want within [0.85, 1.02] of %v", f, got, want)
		}
		gotS := float64(c.CoreStallAt(f))
		wantS := float64(arm.CoreStallPower(f))
		if gotS > wantS*1.3 || gotS < wantS*0.6 {
			t.Errorf("core stall at %v = %v, want near %v", f, gotS, wantS)
		}
		if c.CoreStallAt(f) > c.CoreActiveAt(f) {
			t.Errorf("stall power above active power at %v", f)
		}
	}
	if c.MemActive != arm.Power.MemActive {
		t.Errorf("mem active = %v, want datasheet %v", c.MemActive, arm.Power.MemActive)
	}
	// NIC estimate should be within a factor ~3 of truth (it is the
	// hardest parameter to isolate; the paper's I/O energies are small).
	if rel := relErr(float64(c.NICActive), float64(arm.Power.NICActive)); rel > 2 {
		t.Errorf("nic active = %v, want near %v", c.NICActive, arm.Power.NICActive)
	}
}

func TestCharacterizeAMD(t *testing.T) {
	amd := hwsim.AMDOpteronK10()
	c, err := Characterize(amd, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rel := relErr(float64(c.Idle), 45); rel > 0.02 {
		t.Errorf("AMD idle = %v, want ~45 W", c.Idle)
	}
	fmax := amd.FMax()
	if got := c.CoreActiveAt(fmax); got < 1.5 || got > 2.1 {
		t.Errorf("AMD per-core active at fmax = %v, want ~2 W", got)
	}
}

func TestCharacterizeWithNoiseStaysClose(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	ideal, err := Characterize(arm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Characterize(arm, Options{NoiseSigma: 0.03, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rel := relErr(float64(noisy.Idle), float64(ideal.Idle)); rel > 0.12 {
		t.Errorf("noisy idle off by %v", rel)
	}
	f := arm.FMax()
	if rel := relErr(float64(noisy.CoreActiveAt(f)), float64(ideal.CoreActiveAt(f))); rel > 0.3 {
		t.Errorf("noisy core active off by %v", rel)
	}
}

func TestCharacterizeRejectsBadSpec(t *testing.T) {
	bad := hwsim.ARMCortexA9()
	bad.Cores = 0
	if _, err := Characterize(bad, Options{}); err == nil {
		t.Error("bad spec should error")
	}
}

func TestInterpolation(t *testing.T) {
	c := Characterization{
		Node: "n",
		CoreActive: map[units.Hertz]units.Watt{
			1 * units.GHz: 1.0,
			2 * units.GHz: 3.0,
		},
		CoreStall: map[units.Hertz]units.Watt{
			1 * units.GHz: 0.5,
			2 * units.GHz: 1.5,
		},
		Idle: 2,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.CoreActiveAt(1.5 * units.GHz); got != 2.0 {
		t.Errorf("midpoint interpolation = %v, want 2.0", got)
	}
	if got := c.CoreActiveAt(0.5 * units.GHz); got != 1.0 {
		t.Errorf("below-range clamp = %v, want 1.0", got)
	}
	if got := c.CoreActiveAt(9 * units.GHz); got != 3.0 {
		t.Errorf("above-range clamp = %v, want 3.0", got)
	}
	if got := c.CoreActiveAt(2 * units.GHz); got != 3.0 {
		t.Errorf("exact lookup = %v, want 3.0", got)
	}
	if got := c.CoreStallAt(1.25 * units.GHz); math.Abs(float64(got)-0.75) > 1e-12 {
		t.Errorf("stall interpolation = %v, want 0.75", got)
	}
}

func TestInterpolateEmptyTable(t *testing.T) {
	var c Characterization
	if got := c.CoreActiveAt(1 * units.GHz); got != 0 {
		t.Errorf("empty table should give 0, got %v", got)
	}
}

func TestValidateRejectsBadCharacterizations(t *testing.T) {
	good := Characterization{
		Node:       "n",
		CoreActive: map[units.Hertz]units.Watt{1 * units.GHz: 1},
		CoreStall:  map[units.Hertz]units.Watt{1 * units.GHz: 0.5},
		Idle:       2,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Characterization)
	}{
		{"no node", func(c *Characterization) { c.Node = "" }},
		{"no active table", func(c *Characterization) { c.CoreActive = nil }},
		{"no stall table", func(c *Characterization) { c.CoreStall = nil }},
		{"zero idle", func(c *Characterization) { c.Idle = 0 }},
		{"negative active", func(c *Characterization) {
			c.CoreActive = map[units.Hertz]units.Watt{1 * units.GHz: -1}
		}},
		{"negative stall", func(c *Characterization) {
			c.CoreStall = map[units.Hertz]units.Watt{1 * units.GHz: -1}
		}},
		{"stall freq not in active", func(c *Characterization) {
			c.CoreStall = map[units.Hertz]units.Watt{2 * units.GHz: 0.5}
		}},
		{"negative mem", func(c *Characterization) { c.MemActive = -1 }},
		{"negative nic", func(c *Characterization) { c.NICActive = -1 }},
	}
	for _, tc := range cases {
		c := good
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
