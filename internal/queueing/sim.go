package queueing

import (
	"fmt"
	"math"
	"math/rand"

	"heteromix/internal/units"
)

// SimResult holds the empirical statistics of a discrete-event M/D/1
// simulation, used to validate the closed-form Pollaczek-Khinchine
// expressions the analysis relies on.
type SimResult struct {
	// Jobs is the number of simulated jobs (after warm-up discard).
	Jobs int
	// MeanWait is the empirical mean queueing delay.
	MeanWait units.Seconds
	// MeanResponse is the empirical mean response time.
	MeanResponse units.Seconds
	// MaxQueueLen is the largest number of jobs simultaneously waiting.
	MaxQueueLen int
	// BusyFraction is the server's empirical utilization.
	BusyFraction float64
}

// Simulate runs a single-server FIFO queue with Poisson arrivals at
// q.ArrivalRate and deterministic service q.ServiceTime for the given
// number of jobs, discarding the first tenth as warm-up. It is the
// discrete-event ground truth for MeanWait and MeanResponse; the
// package's tests assert agreement with the closed forms.
func (q MD1) Simulate(jobs int, seed int64) (SimResult, error) {
	if err := q.Validate(); err != nil {
		return SimResult{}, err
	}
	if jobs < 10 {
		return SimResult{}, fmt.Errorf("queueing: need at least 10 jobs, got %d", jobs)
	}
	rng := rand.New(rand.NewSource(seed))
	t := float64(q.ServiceTime)

	warmup := jobs / 10
	var (
		clock      float64 // arrival clock
		serverFree float64 // when the server next becomes idle
		sumWait    float64
		sumResp    float64
		counted    int
	)
	// Track queue length via pending departures.
	var departures []float64
	maxQ := 0
	busyUntilLast := 0.0

	for i := 0; i < jobs; i++ {
		clock += rng.ExpFloat64() / q.ArrivalRate
		start := clock
		if serverFree > start {
			start = serverFree
		}
		wait := start - clock
		finish := start + t
		serverFree = finish
		busyUntilLast = finish

		// Queue length at this arrival: departures still in the future.
		live := departures[:0]
		for _, d := range departures {
			if d > clock {
				live = append(live, d)
			}
		}
		departures = append(live, finish)
		if len(departures)-1 > maxQ { // exclude the job in service
			maxQ = len(departures) - 1
		}

		if i >= warmup {
			sumWait += wait
			sumResp += wait + t
			counted++
		}
	}
	if counted == 0 {
		return SimResult{}, fmt.Errorf("queueing: no jobs counted")
	}
	busy := float64(jobs) * t / busyUntilLast
	if busy > 1 {
		busy = 1
	}
	return SimResult{
		Jobs:         counted,
		MeanWait:     units.Seconds(sumWait / float64(counted)),
		MeanResponse: units.Seconds(sumResp / float64(counted)),
		MaxQueueLen:  maxQ,
		BusyFraction: busy,
	}, nil
}

// ValidateAgainstSimulation compares the closed-form mean wait with a
// simulation of the given length and returns the relative error. It is
// exposed so experiments can report the M/D/1 model's own validity the
// same way the execution-time model is validated against hwsim.
func (q MD1) ValidateAgainstSimulation(jobs int, seed int64) (relErr float64, sim SimResult, err error) {
	sim, err = q.Simulate(jobs, seed)
	if err != nil {
		return 0, SimResult{}, err
	}
	analytic := float64(q.MeanWait())
	if analytic == 0 {
		return math.Abs(float64(sim.MeanWait)), sim, nil
	}
	return math.Abs(float64(sim.MeanWait)-analytic) / analytic, sim, nil
}
