package queueing

import (
	"math"
	"testing"
)

func TestSimulateMatchesPollaczekKhinchine(t *testing.T) {
	// At several utilizations, the empirical mean wait converges to the
	// closed form rho*T/(2(1-rho)).
	cases := []struct {
		rho float64
		tol float64
	}{
		{0.2, 0.10},
		{0.5, 0.10},
		{0.8, 0.15}, // heavier tails need looser tolerance
	}
	for _, c := range cases {
		q := MD1{ArrivalRate: c.rho, ServiceTime: 1}
		rel, sim, err := q.ValidateAgainstSimulation(200000, 42)
		if err != nil {
			t.Fatalf("rho=%v: %v", c.rho, err)
		}
		if rel > c.tol {
			t.Errorf("rho=%v: simulated wait %v vs analytic %v (rel %v)",
				c.rho, sim.MeanWait, q.MeanWait(), rel)
		}
		// Empirical utilization tracks rho.
		if math.Abs(sim.BusyFraction-c.rho) > 0.03 {
			t.Errorf("rho=%v: busy fraction %v", c.rho, sim.BusyFraction)
		}
		// Response = wait + deterministic service.
		if math.Abs(float64(sim.MeanResponse-sim.MeanWait)-1) > 1e-9 {
			t.Errorf("rho=%v: response-wait = %v, want 1", c.rho, sim.MeanResponse-sim.MeanWait)
		}
	}
}

func TestSimulateDeterministicForSeed(t *testing.T) {
	q := MD1{ArrivalRate: 0.5, ServiceTime: 1}
	a, err := q.Simulate(1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Simulate(1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce the simulation")
	}
	c, err := q.Simulate(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanWait == c.MeanWait {
		t.Error("different seeds should differ")
	}
}

func TestSimulateValidation(t *testing.T) {
	q := MD1{ArrivalRate: 0.5, ServiceTime: 1}
	if _, err := q.Simulate(5, 1); err == nil {
		t.Error("too few jobs should error")
	}
	bad := MD1{ArrivalRate: 2, ServiceTime: 1} // rho = 2
	if _, err := bad.Simulate(1000, 1); err == nil {
		t.Error("unstable queue should error")
	}
}

func TestSimulateLightLoadBarelyQueues(t *testing.T) {
	q := MD1{ArrivalRate: 0.01, ServiceTime: 1}
	sim, err := q.Simulate(20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if float64(sim.MeanWait) > 0.05 {
		t.Errorf("mean wait at rho=0.01 is %v, want ~0", sim.MeanWait)
	}
	if sim.MaxQueueLen > 4 {
		t.Errorf("max queue at rho=0.01 is %d", sim.MaxQueueLen)
	}
}

func TestSimulateHeavyLoadQueues(t *testing.T) {
	q := MD1{ArrivalRate: 0.9, ServiceTime: 1}
	sim, err := q.Simulate(50000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sim.MaxQueueLen < 5 {
		t.Errorf("max queue at rho=0.9 is %d, want deep backlogs", sim.MaxQueueLen)
	}
	if float64(sim.MeanWait) < 2 {
		t.Errorf("mean wait at rho=0.9 is %v, want several service times", sim.MeanWait)
	}
}

func BenchmarkSimulateMD1(b *testing.B) {
	q := MD1{ArrivalRate: 0.5, ServiceTime: 0.025}
	for i := 0; i < b.N; i++ {
		if _, err := q.Simulate(10000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
