package queueing

import (
	"math"
	"testing"

	"heteromix/internal/units"
)

func TestMG1Validate(t *testing.T) {
	good := MG1{ArrivalRate: 5, MeanService: 0.05, SCV: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MG1{
		{ArrivalRate: 0, MeanService: 0.05},
		{ArrivalRate: 5, MeanService: 0},
		{ArrivalRate: 5, MeanService: 0.05, SCV: -1},
		{ArrivalRate: 5, MeanService: 0.05, SCV: math.NaN()},
		{ArrivalRate: 30, MeanService: 0.05}, // rho = 1.5
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestMG1SpecialCases(t *testing.T) {
	// SCV = 0 reproduces M/D/1 exactly.
	g := MG1{ArrivalRate: 0.5, MeanService: 1, SCV: 0}
	d := g.AsMD1()
	if math.Abs(float64(g.MeanWait()-d.MeanWait())) > 1e-12 {
		t.Errorf("SCV=0 wait %v != M/D/1 %v", g.MeanWait(), d.MeanWait())
	}
	// SCV = 1 (M/M/1) doubles the M/D/1 wait: rho/(1-rho)*T.
	m := MG1{ArrivalRate: 0.5, MeanService: 1, SCV: 1}
	if math.Abs(float64(m.MeanWait())-2*float64(d.MeanWait())) > 1e-12 {
		t.Errorf("M/M/1 wait %v should be 2x M/D/1 %v", m.MeanWait(), d.MeanWait())
	}
	if got := m.MeanResponse(); math.Abs(float64(got)-(float64(m.MeanWait())+1)) > 1e-12 {
		t.Errorf("response = %v", got)
	}
}

// Wait grows monotonically with service variability at fixed load.
func TestMG1WaitGrowsWithSCV(t *testing.T) {
	prev := -1.0
	for _, scv := range []float64{0, 0.5, 1, 2, 4} {
		q := MG1{ArrivalRate: 0.5, MeanService: 1, SCV: scv}
		w := float64(q.MeanWait())
		if w <= prev {
			t.Errorf("wait at SCV %v is %v, not increasing", scv, w)
		}
		prev = w
	}
}

func TestMG1SimulateMatchesPK(t *testing.T) {
	for _, scv := range []float64{0, 0.5, 1} {
		q := MG1{ArrivalRate: 0.5, MeanService: 1, SCV: scv}
		sim, err := q.Simulate(300000, 11)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(q.MeanWait())
		rel := math.Abs(float64(sim.MeanWait)-want) / want
		if rel > 0.12 {
			t.Errorf("SCV=%v: simulated wait %v vs PK %v (rel %v)", scv, sim.MeanWait, want, rel)
		}
		if math.Abs(sim.BusyFraction-0.5) > 0.04 {
			t.Errorf("SCV=%v: busy fraction %v, want ~0.5", scv, sim.BusyFraction)
		}
	}
}

func TestMG1SimulateErrors(t *testing.T) {
	q := MG1{ArrivalRate: 0.5, MeanService: 1}
	if _, err := q.Simulate(5, 1); err == nil {
		t.Error("too few jobs should error")
	}
	unstable := MG1{ArrivalRate: 5, MeanService: 1}
	if _, err := unstable.Simulate(1000, 1); err == nil {
		t.Error("unstable queue should error")
	}
}

func TestMG1DeadlineImplication(t *testing.T) {
	// The extension's takeaway: at fixed load, variable job sizes demand
	// a faster (more energetic) configuration for the same response SLO.
	// Here the deterministic stream meets a 1.6s response at rho=0.5
	// with T=1, but the SCV=1 stream does not.
	det := MG1{ArrivalRate: 0.5, MeanService: 1, SCV: 0}
	varied := MG1{ArrivalRate: 0.5, MeanService: 1, SCV: 1}
	slo := units.Seconds(1.6)
	if det.MeanResponse() > slo {
		t.Errorf("deterministic response %v should meet %v", det.MeanResponse(), slo)
	}
	if varied.MeanResponse() <= slo {
		t.Errorf("variable response %v should violate %v", varied.MeanResponse(), slo)
	}
}
