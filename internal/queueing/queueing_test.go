package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"heteromix/internal/units"
)

func TestValidate(t *testing.T) {
	good := MD1{ArrivalRate: 10, ServiceTime: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid queue rejected: %v", err)
	}
	bad := []MD1{
		{ArrivalRate: 0, ServiceTime: 0.05},
		{ArrivalRate: -1, ServiceTime: 0.05},
		{ArrivalRate: math.NaN(), ServiceTime: 0.05},
		{ArrivalRate: 10, ServiceTime: 0},
		{ArrivalRate: 10, ServiceTime: 0.2},  // rho = 2, unstable
		{ArrivalRate: 20, ServiceTime: 0.05}, // rho = 1, boundary unstable
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d (%+v) should be invalid", i, q)
		}
	}
}

func TestUtilization(t *testing.T) {
	q := MD1{ArrivalRate: 10, ServiceTime: 0.05}
	if got := q.Utilization(); got != 0.5 {
		t.Errorf("rho = %v, want 0.5", got)
	}
}

func TestMeanWaitKnownValues(t *testing.T) {
	// M/D/1 at rho = 0.5 with T = 1: Wq = 0.5*1/(2*0.5) = 0.5.
	q := MD1{ArrivalRate: 0.5, ServiceTime: 1}
	if got := q.MeanWait(); math.Abs(float64(got)-0.5) > 1e-12 {
		t.Errorf("Wq = %v, want 0.5", got)
	}
	if got := q.MeanResponse(); math.Abs(float64(got)-1.5) > 1e-12 {
		t.Errorf("R = %v, want 1.5", got)
	}
	// Lq = lambda * Wq = 0.25.
	if got := q.MeanQueueLength(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Lq = %v, want 0.25", got)
	}
	// M/D/1 waits are half the M/M/1 waits: at rho=0.9, T=1,
	// Wq = 0.9/(2*0.1) = 4.5.
	q = MD1{ArrivalRate: 0.9, ServiceTime: 1}
	if got := q.MeanWait(); math.Abs(float64(got)-4.5) > 1e-12 {
		t.Errorf("Wq at rho 0.9 = %v, want 4.5", got)
	}
}

// Waiting time is non-negative, increases with utilization, and diverges
// as rho -> 1.
func TestMeanWaitMonotoneInRho(t *testing.T) {
	f := func(a, b uint8) bool {
		r1 := 0.01 + float64(a%90)/100
		r2 := 0.01 + float64(b%90)/100
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		if r1 == r2 {
			return true
		}
		q1 := MD1{ArrivalRate: r1, ServiceTime: 1}
		q2 := MD1{ArrivalRate: r2, ServiceTime: 1}
		return q1.MeanWait() >= 0 && q2.MeanWait() > q1.MeanWait()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyOverWindow(t *testing.T) {
	// 20 s window, 2 jobs/s at 0.1 s/job (rho 0.2), 5 J/job, 10 W idle:
	// active = 40 * 5 = 200 J; idle = 10 * 20 * 0.8 = 160 J.
	q := MD1{ArrivalRate: 2, ServiceTime: 0.1}
	e, err := q.EnergyOverWindow(20, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(e)-360) > 1e-9 {
		t.Errorf("window energy = %v, want 360 J", e)
	}
}

func TestEnergyOverWindowErrors(t *testing.T) {
	q := MD1{ArrivalRate: 2, ServiceTime: 0.1}
	if _, err := q.EnergyOverWindow(0, 5, 10); err == nil {
		t.Error("zero window should error")
	}
	if _, err := q.EnergyOverWindow(20, -1, 10); err == nil {
		t.Error("negative per-job energy should error")
	}
	if _, err := q.EnergyOverWindow(20, 5, -1); err == nil {
		t.Error("negative idle power should error")
	}
	unstable := MD1{ArrivalRate: 100, ServiceTime: 1}
	if _, err := unstable.EnergyOverWindow(20, 5, 10); err == nil {
		t.Error("unstable queue should error")
	}
}

// Higher utilization shifts window energy from idle to active; with
// per-job energy exceeding idle-for-the-same-time, total energy grows.
func TestWindowEnergyGrowsWithArrivalRate(t *testing.T) {
	prev := -1.0
	for _, lam := range []float64{0.5, 1, 2, 4} {
		q := MD1{ArrivalRate: lam, ServiceTime: 0.1}
		e, err := q.EnergyOverWindow(20, 5, 10)
		if err != nil {
			t.Fatal(err)
		}
		if float64(e) <= prev {
			t.Errorf("energy at lambda=%v is %v, not increasing", lam, e)
		}
		prev = float64(e)
	}
}

func TestRateForUtilization(t *testing.T) {
	r, err := RateForUtilization(0.5, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-20) > 1e-12 {
		t.Errorf("rate = %v, want 20/s", r)
	}
	// Round trip: the queue at that rate has the target utilization.
	q := MD1{ArrivalRate: r, ServiceTime: 0.025}
	if math.Abs(q.Utilization()-0.5) > 1e-12 {
		t.Errorf("round-trip utilization = %v", q.Utilization())
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, err := RateForUtilization(bad, 0.025); err == nil {
			t.Errorf("target %v should error", bad)
		}
	}
	if _, err := RateForUtilization(0.5, 0); err == nil {
		t.Error("zero service time should error")
	}
}

func TestEnergyWindowUnits(t *testing.T) {
	// Spot-check the unit types compose: watts times seconds yield joules.
	q := MD1{ArrivalRate: 1, ServiceTime: units.Seconds(0.5)}
	e, err := q.EnergyOverWindow(units.Seconds(10), units.Joule(2), units.Watt(1))
	if err != nil {
		t.Fatal(err)
	}
	// 10 jobs * 2 J + 1 W * 10 s * 0.5 = 25 J.
	if math.Abs(float64(e)-25) > 1e-12 {
		t.Errorf("energy = %v, want 25 J", e)
	}
}
