package queueing

import (
	"fmt"
	"math"
	"math/rand"

	"heteromix/internal/units"
)

// MG1 generalizes the paper's M/D/1 dispatcher model to variable job
// sizes: Poisson arrivals and a general service distribution summarized
// by its mean and squared coefficient of variation (SCV). The paper
// assumes every job is identical (50,000 requests each); real job streams
// vary, and by Pollaczek-Khinchine the mean wait scales with (1+SCV)/2:
//
//	Wq = (1 + SCV)/2 * rho*T / (1 - rho)
//
// SCV = 0 recovers M/D/1 (the paper's model), SCV = 1 is M/M/1. Variable
// job sizes therefore stretch queueing delays — and through them the
// energy needed to meet a response-time deadline — by up to 2x at SCV 1.
type MG1 struct {
	// ArrivalRate is lambda in jobs per second.
	ArrivalRate float64
	// MeanService is the mean per-job service time.
	MeanService units.Seconds
	// SCV is the squared coefficient of variation of service times
	// (variance over squared mean). Non-negative.
	SCV float64
}

// Validate checks parameters and stability.
func (q MG1) Validate() error {
	if q.ArrivalRate <= 0 || math.IsNaN(q.ArrivalRate) || math.IsInf(q.ArrivalRate, 0) {
		return fmt.Errorf("queueing: arrival rate %v", q.ArrivalRate)
	}
	if q.MeanService <= 0 {
		return fmt.Errorf("queueing: mean service %v", q.MeanService)
	}
	if q.SCV < 0 || math.IsNaN(q.SCV) || math.IsInf(q.SCV, 0) {
		return fmt.Errorf("queueing: SCV %v", q.SCV)
	}
	if rho := q.Utilization(); rho >= 1 {
		return fmt.Errorf("queueing: unstable queue (rho = %v >= 1)", rho)
	}
	return nil
}

// Utilization returns rho = lambda * E[S].
func (q MG1) Utilization() float64 { return q.ArrivalRate * float64(q.MeanService) }

// MeanWait returns the Pollaczek-Khinchine mean queueing delay.
func (q MG1) MeanWait() units.Seconds {
	rho := q.Utilization()
	return units.Seconds((1 + q.SCV) / 2 * rho * float64(q.MeanService) / (1 - rho))
}

// MeanResponse returns wait plus mean service.
func (q MG1) MeanResponse() units.Seconds { return q.MeanWait() + q.MeanService }

// MeanQueueLength returns the mean number of jobs waiting (Little's law
// applied to the wait): Lq = lambda * Wq.
func (q MG1) MeanQueueLength() float64 {
	return q.ArrivalRate * float64(q.MeanWait())
}

// Summary is the queue's derived quantities flattened to JSON-friendly
// scalars, the wire form of the serving layer's queueing endpoint.
type Summary struct {
	Utilization         float64 `json:"utilization"`
	MeanWaitSeconds     float64 `json:"mean_wait_seconds"`
	MeanResponseSeconds float64 `json:"mean_response_seconds"`
	MeanQueueLength     float64 `json:"mean_queue_length"`
	// SCV echoes the service-time variability the figures derive from
	// (0 = the paper's M/D/1).
	SCV float64 `json:"scv"`
}

// Summary derives the queue's headline quantities. The queue must be
// valid (Validate), otherwise the values are meaningless.
func (q MG1) Summary() Summary {
	return Summary{
		Utilization:         q.Utilization(),
		MeanWaitSeconds:     float64(q.MeanWait()),
		MeanResponseSeconds: float64(q.MeanResponse()),
		MeanQueueLength:     q.MeanQueueLength(),
		SCV:                 q.SCV,
	}
}

// AsMD1 returns the deterministic-service special case.
func (q MG1) AsMD1() MD1 {
	return MD1{ArrivalRate: q.ArrivalRate, ServiceTime: q.MeanService}
}

// EnergyOverWindow generalizes MD1.EnergyOverWindow to variable service:
// the per-job and idle accounting depend only on the arrival rate and
// utilization, which Pollaczek-Khinchine leaves untouched, so the
// formula is identical.
func (q MG1) EnergyOverWindow(window units.Seconds, perJob units.Joule, idlePower units.Watt) (units.Joule, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if window <= 0 {
		return 0, fmt.Errorf("queueing: window %v", window)
	}
	if perJob < 0 || idlePower < 0 {
		return 0, fmt.Errorf("queueing: negative energy or power")
	}
	jobs := q.ArrivalRate * float64(window)
	active := jobs * float64(perJob)
	idle := float64(idlePower) * float64(window) * (1 - q.Utilization())
	return units.Joule(active + idle), nil
}

// Simulate runs a discrete-event M/G/1 queue with lognormal service times
// matching the configured mean and SCV, returning empirical statistics
// after a warm-up discard. SCV = 0 degenerates to deterministic service.
func (q MG1) Simulate(jobs int, seed int64) (SimResult, error) {
	if err := q.Validate(); err != nil {
		return SimResult{}, err
	}
	if jobs < 10 {
		return SimResult{}, fmt.Errorf("queueing: need at least 10 jobs, got %d", jobs)
	}
	rng := rand.New(rand.NewSource(seed))
	mean := float64(q.MeanService)

	// Lognormal parameters reproducing (mean, SCV).
	sigma2 := math.Log(1 + q.SCV)
	mu := math.Log(mean) - sigma2/2
	drawService := func() float64 {
		if q.SCV == 0 {
			return mean
		}
		return math.Exp(mu + math.Sqrt(sigma2)*rng.NormFloat64())
	}

	warmup := jobs / 10
	var (
		clock, serverFree   float64
		sumWait, sumResp    float64
		counted             int
		busySec, lastFinish float64
		departures          []float64
		maxQ                int
	)
	for i := 0; i < jobs; i++ {
		clock += rng.ExpFloat64() / q.ArrivalRate
		start := clock
		if serverFree > start {
			start = serverFree
		}
		s := drawService()
		finish := start + s
		serverFree = finish
		lastFinish = finish
		busySec += s

		live := departures[:0]
		for _, d := range departures {
			if d > clock {
				live = append(live, d)
			}
		}
		departures = append(live, finish)
		if len(departures)-1 > maxQ {
			maxQ = len(departures) - 1
		}
		if i >= warmup {
			sumWait += start - clock
			sumResp += finish - clock
			counted++
		}
	}
	if counted == 0 {
		return SimResult{}, fmt.Errorf("queueing: no jobs counted")
	}
	busy := busySec / lastFinish
	if busy > 1 {
		busy = 1
	}
	return SimResult{
		Jobs:         counted,
		MeanWait:     units.Seconds(sumWait / float64(counted)),
		MeanResponse: units.Seconds(sumResp / float64(counted)),
		MaxQueueLen:  maxQ,
		BusyFraction: busy,
	}, nil
}
