// Package queueing implements the M/D/1 model the paper uses for job
// arrivals (§IV-E): jobs arrive with exponentially distributed
// inter-arrival times (rate lambda_job), queue at a dispatcher, and are
// serviced one at a time with the fixed (deterministic) service time that
// the matching scheduling policy produces for the chosen cluster
// configuration. For M/D/1:
//
//	utilization      rho  = lambda * T
//	mean queue wait  Wq   = rho * T / (2 * (1 - rho))        (Pollaczek-Khinchine)
//	mean response    R    = Wq + T
//
// The package also computes the energy a cluster consumes over an
// observation window: active energy for the jobs that arrive, plus the
// idle energy of the powered nodes between jobs (unused nodes are turned
// off, per the paper).
package queueing

import (
	"fmt"
	"math"

	"heteromix/internal/units"
)

// MD1 is an M/D/1 queue: Poisson arrivals, deterministic service.
type MD1 struct {
	// ArrivalRate is lambda_job, in jobs per second.
	ArrivalRate float64
	// ServiceTime is the fixed per-job service time T.
	ServiceTime units.Seconds
}

// Validate checks that the queue parameters are meaningful and stable
// (rho < 1; an unstable queue has unbounded waiting time).
func (q MD1) Validate() error {
	if q.ArrivalRate <= 0 || math.IsNaN(q.ArrivalRate) || math.IsInf(q.ArrivalRate, 0) {
		return fmt.Errorf("queueing: arrival rate %v", q.ArrivalRate)
	}
	if q.ServiceTime <= 0 {
		return fmt.Errorf("queueing: service time %v", q.ServiceTime)
	}
	if rho := q.Utilization(); rho >= 1 {
		return fmt.Errorf("queueing: unstable queue (rho = %v >= 1)", rho)
	}
	return nil
}

// Utilization returns rho = lambda * T.
func (q MD1) Utilization() float64 {
	return q.ArrivalRate * float64(q.ServiceTime)
}

// MeanWait returns the Pollaczek-Khinchine mean time a job spends in the
// dispatcher queue before service begins.
func (q MD1) MeanWait() units.Seconds {
	rho := q.Utilization()
	return units.Seconds(rho * float64(q.ServiceTime) / (2 * (1 - rho)))
}

// MeanResponse returns the mean response time: queueing wait plus
// service.
func (q MD1) MeanResponse() units.Seconds {
	return q.MeanWait() + q.ServiceTime
}

// MeanQueueLength returns the mean number of jobs waiting (Little's law
// applied to the wait): Lq = lambda * Wq.
func (q MD1) MeanQueueLength() float64 {
	return q.ArrivalRate * float64(q.MeanWait())
}

// EnergyOverWindow returns the expected energy a configuration consumes
// during an observation window: each arriving job costs perJob (which
// already includes the nodes' idle draw during service), and the powered
// nodes idle at idlePower for the remaining (1 - rho) of the window.
// Unused nodes are off and cost nothing (paper §IV-E).
func (q MD1) EnergyOverWindow(window units.Seconds, perJob units.Joule, idlePower units.Watt) (units.Joule, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if window <= 0 {
		return 0, fmt.Errorf("queueing: window %v", window)
	}
	if perJob < 0 || idlePower < 0 {
		return 0, fmt.Errorf("queueing: negative energy or power")
	}
	jobs := q.ArrivalRate * float64(window)
	active := jobs * float64(perJob)
	idle := float64(idlePower) * float64(window) * (1 - q.Utilization())
	return units.Joule(active + idle), nil
}

// AsMG1 lifts the queue into the variable-service generalization with
// SCV 0, whose formulas reduce exactly to M/D/1.
func (q MD1) AsMG1() MG1 {
	return MG1{ArrivalRate: q.ArrivalRate, MeanService: q.ServiceTime}
}

// Summary derives the queue's headline quantities (see MG1.Summary).
func (q MD1) Summary() Summary { return q.AsMG1().Summary() }

// RateForUtilization returns the arrival rate that would load a server
// with service time t to the target utilization.
func RateForUtilization(target float64, t units.Seconds) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("queueing: target utilization %v outside (0,1)", target)
	}
	if t <= 0 {
		return 0, fmt.Errorf("queueing: service time %v", t)
	}
	return target / float64(t), nil
}
