// Package metrics is a small, dependency-free instrumentation library
// for the serving layer: atomic counters, gauges and fixed-bucket
// histograms collected in a Registry and exported two ways — Prometheus
// text exposition (GET /metrics) and expvar (GET /debug/vars). Hot-path
// updates are single atomic operations; the registry lock is taken only
// at registration and export time.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric at registration.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (non-negative; negative deltas are ignored to keep the
// counter monotone).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Store overwrites the count, for mirroring an external monotone source
// (e.g. cache statistics kept by another subsystem) at export time. The
// caller is responsible for monotonicity.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative-style buckets and
// tracks their sum, Prometheus-histogram compatible. Observe is a bucket
// search plus two atomic updates.
type Histogram struct {
	// bounds are the inclusive upper bounds of each finite bucket,
	// ascending; an implicit +Inf bucket follows.
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts
// by linear interpolation inside the containing bucket, the usual
// histogram_quantile estimate. It returns 0 when nothing was observed;
// observations in the +Inf bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-cum)/n
	}
	return h.bounds[len(h.bounds)-1]
}

// DefLatencyBuckets spans 10µs to 10s, exponentially, a fit for the
// serving layer's request latencies (cache hits are tens of µs, cold
// 20x20 enumerations tens of ms).
func DefLatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// kind tags a registered metric for TYPE lines.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric instance.
type entry struct {
	name   string // family name, e.g. "heteromixd_requests_total"
	help   string
	kind   kind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds registered metrics in registration order.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewCounter registers and returns a counter. Multiple registrations may
// share a family name with distinct labels; help is taken from the first.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&entry{name: name, help: help, kind: kindCounter, labels: labels, c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(&entry{name: name, help: help, kind: kindGauge, labels: labels, g: g})
	return g
}

// NewHistogram registers and returns a histogram with the given finite
// bucket bounds (ascending; an implicit +Inf bucket is added).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
	r.add(&entry{name: name, help: help, kind: kindHistogram, labels: labels, h: h})
	return h
}

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
}

// labelString renders {k="v",...} with extra appended, empty when there
// are no labels at all.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a float the way Prometheus text exposition expects.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes every metric in text exposition format: one
// HELP/TYPE header per family (first registration wins), then one sample
// line per instance.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	seen := map[string]bool{}
	for _, e := range entries {
		if !seen[e.name] {
			seen[e.name] = true
			typ := map[kind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[e.kind]
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, typ)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", e.name, labelString(e.labels), e.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %d\n", e.name, labelString(e.labels), e.g.Value())
		case kindHistogram:
			cum := uint64(0)
			for i, b := range e.h.bounds {
				cum += e.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", e.name,
					labelString(e.labels, Label{"le", formatValue(b)}), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", e.name,
				labelString(e.labels, Label{"le", "+Inf"}), e.h.Count())
			fmt.Fprintf(w, "%s_sum%s %s\n", e.name, labelString(e.labels), formatValue(e.h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", e.name, labelString(e.labels), e.h.Count())
		}
	}
}

// Handler serves the Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// publishMu serializes expvar publication, which panics on duplicates.
var publishMu sync.Mutex

// Expvar publishes the registry's live Snapshot under the given expvar
// name (visible on GET /debug/vars). Publishing the same name twice is a
// no-op — expvar names are process-global, and tests build registries
// repeatedly — so after a replacement registry publishes, the first one
// wins; use distinct names for genuinely distinct registries.
func (r *Registry) Expvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Snapshot returns every metric's current value keyed by name+labels —
// histograms expand to _count/_sum/_p50/_p99 — for the expvar export and
// for tests.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	out := make(map[string]float64, len(entries))
	for _, e := range entries {
		key := e.name + labelString(e.labels)
		switch e.kind {
		case kindCounter:
			out[key] = float64(e.c.Value())
		case kindGauge:
			out[key] = float64(e.g.Value())
		case kindHistogram:
			out[key+"_count"] = float64(e.h.Count())
			out[key+"_sum"] = e.h.Sum()
			out[key+"_p50"] = e.h.Quantile(0.5)
			out[key+"_p99"] = e.h.Quantile(0.99)
		}
	}
	return out
}
