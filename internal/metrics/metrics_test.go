package metrics

import (
	"expvar"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "requests")
	g := r.NewGauge("inflight", "in-flight")
	c.Inc()
	c.Add(4)
	g.Inc()
	g.Inc()
	g.Dec()
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 1 {
		t.Errorf("gauge = %d, want 1", g.Value())
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Errorf("gauge = %d, want -3", g.Value())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the (0.01, 0.1] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if math.Abs(h.Sum()-5) > 1e-9 {
		t.Errorf("sum = %v, want 5", h.Sum())
	}
	q := h.Quantile(0.5)
	if q <= 0.01 || q > 0.1 {
		t.Errorf("p50 = %v, want within the (0.01, 0.1] bucket", q)
	}
	// Values beyond the last bound clamp to it.
	h2 := r.NewHistogram("lat2", "latency", []float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want clamp to 1", got)
	}
	// NaN observations are dropped, not poisoning the sum.
	h.Observe(math.NaN())
	if h.Count() != 100 {
		t.Errorf("NaN observation counted: %d", h.Count())
	}
	if h.Quantile(0.5) == 0 {
		t.Error("quantile lost data after NaN observe")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", DefLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8) > 1e-6 {
		t.Errorf("sum = %v, want 8", h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("app_requests_total", "total requests", Label{"endpoint", "predict"})
	r.NewCounter("app_requests_total", "total requests", Label{"endpoint", "budget"})
	c.Add(7)
	h := r.NewHistogram("app_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	for _, want := range []string{
		"# HELP app_requests_total total requests",
		"# TYPE app_requests_total counter",
		`app_requests_total{endpoint="predict"} 7`,
		`app_requests_total{endpoint="budget"} 0`,
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 2`,
		"app_latency_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q in:\n%s", want, body)
		}
	}
	// The family header must appear exactly once despite two instances.
	if n := strings.Count(body, "# TYPE app_requests_total counter"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1", n)
	}
}

func TestSnapshotAndExpvar(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("snap_total", "snap")
	c.Add(3)
	h := r.NewHistogram("snap_lat", "lat", []float64{1})
	h.Observe(0.5)

	snap := r.Snapshot()
	if snap["snap_total"] != 3 {
		t.Errorf("snapshot counter = %v, want 3", snap["snap_total"])
	}
	if snap["snap_lat_count"] != 1 {
		t.Errorf("snapshot histogram count = %v, want 1", snap["snap_lat_count"])
	}

	r.Expvar("metrics_test_registry")
	r.Expvar("metrics_test_registry") // idempotent, must not panic
	if expvar.Get("metrics_test_registry") == nil {
		t.Fatal("expvar publication missing")
	}
}
