// Package model implements the paper's primary contribution: the
// trace-driven analytical model of execution time (§II-B, Eqs. 1-11) and
// energy (§II-C, Eqs. 12-19) for scale-out workloads on heterogeneous
// cluster nodes.
//
// A NodeModel combines three inputs:
//
//   - the node's datasheet facts (core count, P-states, NIC bandwidth)
//     from hwsim.NodeSpec,
//   - the workload's fitted service-demand profile (internal/profile),
//   - the node's measured power characterization (internal/power).
//
// Predict then computes, for a work volume w on one node at configuration
// (c, f):
//
//	T_core = I_core * (WPI + SPIcore) / f                      (Eqs. 6-8)
//	T_mem  = I_core * (WPI + SPImem(f, c)) / f                 (Eqs. 9-10)
//	T_CPU  = max(T_core, T_mem)                                (Eq. 3)
//	T_I/O  = w * max(t_transfer, 1/lambda_I/O)                 (Eq. 11, n=1)
//	T      = max(T_CPU, T_I/O)                                 (Eq. 2)
//
//	E_core = (P_act*T_act + P_stall*T_stall) * c_act           (Eq. 15)
//	E_mem  = P_mem * T_mem                                     (Eq. 18)
//	E_I/O  = P_I/O * T_busy,I/O                                (Eq. 19)
//	E_idle = P_idle * T                                        (Eq. 14)
//	E      = E_core + E_mem + E_I/O + E_idle                   (Eq. 13)
//
// with I_core = I_Ps * w / c_act and c_act = U_CPU * c (Eq. 6). One
// deliberate refinement over the paper's text: T_stall uses the larger of
// the overlapping stall components, max(SPIcore, SPImem), so that
// T_act + T_stall = T_CPU and stall power covers memory-wait time too;
// and E_I/O charges the NIC's active power only while it actually
// transfers, not during arrival gaps.
package model

import (
	"fmt"
	"math"

	"heteromix/internal/hwsim"
	"heteromix/internal/power"
	"heteromix/internal/profile"
	"heteromix/internal/units"
)

// NodeModel is the fitted model of one workload on one node type.
type NodeModel struct {
	// Spec supplies datasheet facts only: Cores, Frequencies, NIC
	// bandwidth. The model never reads Spec's micro-architecture or
	// power tables; those enter only via Profile and Power, which come
	// from measurements.
	Spec hwsim.NodeSpec
	// Profile is the workload's fitted service demand on this node type.
	Profile profile.Profile
	// Power is the node type's measured power characterization.
	Power power.Characterization
}

// Validate checks that the three inputs agree with each other.
func (nm NodeModel) Validate() error {
	if err := nm.Spec.Validate(); err != nil {
		return err
	}
	if err := nm.Profile.Validate(); err != nil {
		return err
	}
	if err := nm.Power.Validate(); err != nil {
		return err
	}
	if nm.Profile.Node != nm.Spec.Name {
		return fmt.Errorf("model: profile is for node %q, spec is %q", nm.Profile.Node, nm.Spec.Name)
	}
	if nm.Power.Node != nm.Spec.Name {
		return fmt.Errorf("model: power characterization is for node %q, spec is %q", nm.Power.Node, nm.Spec.Name)
	}
	return nil
}

// Prediction is the model's output for one node and work volume.
type Prediction struct {
	// Time is the predicted execution time T.
	Time units.Seconds
	// Energy is the predicted total energy E.
	Energy units.Joule

	// Time components.
	TCore units.Seconds
	TMem  units.Seconds
	TCPU  units.Seconds
	TIO   units.Seconds

	// Energy components (Eq. 13).
	ECore units.Joule
	EMem  units.Joule
	EIO   units.Joule
	EIdle units.Joule

	// CAct is the average number of active cores (U_CPU * c).
	CAct float64
	// AvgPower is Energy / Time.
	AvgPower units.Watt
}

// Predict computes the model for w work units on a single node at cfg.
func (nm NodeModel) Predict(cfg hwsim.Config, w float64) (Prediction, error) {
	if err := cfg.ValidateFor(nm.Spec); err != nil {
		return Prediction{}, err
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return Prediction{}, fmt.Errorf("model: work must be positive and finite, got %v", w)
	}

	p := nm.Profile
	f := float64(cfg.Frequency)

	// Eq. 6: average active cores and instructions per active core.
	ucpu := p.UCPUAt(cfg.Cores, cfg.Frequency)
	if ucpu < 1e-3 {
		ucpu = 1e-3 // guard against degenerate measured utilization
	}
	cact := ucpu * float64(cfg.Cores)
	iCore := p.InstructionsPerUnit * w / cact

	// Eqs. 7-10.
	spiMem := p.SPIMemAt(cfg.Cores, cfg.Frequency)
	tCore := units.Seconds(iCore * (p.WPI + p.SPICore) / f)
	tMem := units.Seconds(iCore * (p.WPI + spiMem) / f)
	tCPU := tCore
	if tMem > tCPU {
		tCPU = tMem
	}

	// Eq. 11 with n = 1: transfers overlap compute; arrivals overlap
	// transfers; the slower of the two paces the I/O path.
	perUnitIO := math.Max(float64(p.IOTransferPerUnit), float64(p.ArrivalGapPerUnit))
	tIO := units.Seconds(w * perUnitIO)

	// Eq. 2.
	t := tCPU
	if tIO > t {
		t = tIO
	}
	if t <= 0 {
		return Prediction{}, fmt.Errorf("model: predicted non-positive time for %q", p.Workload)
	}

	// Eqs. 15-17 with overlapped stalls.
	tAct := iCore * p.WPI / f
	tStall := iCore * math.Max(p.SPICore, spiMem) / f
	pAct := float64(nm.Power.CoreActiveAt(cfg.Frequency))
	pStall := float64(nm.Power.CoreStallAt(cfg.Frequency))
	eCore := units.Joule((pAct*tAct + pStall*tStall) * cact)

	// Eq. 18.
	eMem := nm.Power.MemActive.Times(tMem)

	// Eq. 19, charging only NIC busy time.
	eIO := nm.Power.NICActive.Times(units.Seconds(w * float64(p.IOTransferPerUnit)))

	// Eq. 14.
	eIdle := nm.Power.Idle.Times(t)

	energy := eCore + eMem + eIO + eIdle
	return Prediction{
		Time:   t,
		Energy: energy,
		TCore:  tCore, TMem: tMem, TCPU: tCPU, TIO: tIO,
		ECore: eCore, EMem: eMem, EIO: eIO, EIdle: eIdle,
		CAct:     cact,
		AvgPower: energy.Over(t),
	}, nil
}

// TimePerUnit returns the predicted seconds per work unit on one node at
// cfg. The model's time is exactly linear in w (every term scales with
// w), so TimePerUnit fully determines execution time — the property the
// mix-and-match split exploits (internal/cluster).
func (nm NodeModel) TimePerUnit(cfg hwsim.Config) (units.Seconds, error) {
	p, err := nm.Predict(cfg, 1)
	if err != nil {
		return 0, err
	}
	return p.Time, nil
}

// MostEfficientConfig returns the (cores, frequency) configuration that
// minimizes energy per work unit, together with its prediction for one
// unit. This is the per-node optimum the paper uses for the Table 5
// performance-to-power ratios ("the PPR computed for the most
// energy-efficient configuration").
func (nm NodeModel) MostEfficientConfig() (hwsim.Config, Prediction, error) {
	var bestCfg hwsim.Config
	var bestPred Prediction
	best := math.Inf(1)
	for _, cfg := range hwsim.Configs(nm.Spec) {
		pr, err := nm.Predict(cfg, 1)
		if err != nil {
			return hwsim.Config{}, Prediction{}, err
		}
		if e := float64(pr.Energy); e < best {
			best, bestCfg, bestPred = e, cfg, pr
		}
	}
	if math.IsInf(best, 1) {
		return hwsim.Config{}, Prediction{}, fmt.Errorf("model: no feasible configuration")
	}
	return bestCfg, bestPred, nil
}

// PPR returns the performance-to-power ratio at the most energy-efficient
// configuration: work done per unit energy (Table 5). The perf function
// maps one work unit's prediction to the workload's performance metric
// numerator; passing nil uses work units per second.
func (nm NodeModel) PPR() (float64, hwsim.Config, error) {
	cfg, pred, err := nm.MostEfficientConfig()
	if err != nil {
		return 0, hwsim.Config{}, err
	}
	// Work per second over average power = work per joule.
	ratePerSec := 1 / float64(pred.Time)
	return ratePerSec / float64(pred.AvgPower), cfg, nil
}
