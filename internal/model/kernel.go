package model

import (
	"fmt"

	"heteromix/internal/hwsim"
	"heteromix/internal/units"
)

// Kernel is the precomputed evaluation kernel of one (NodeModel, Config)
// pair. The model's time and energy are both exactly linear in the work
// volume w — every term of Eqs. 6-19 carries a factor of w, including the
// idle term, whose duration T = k*w — so a single Predict at w = 1 fully
// determines the model at every volume. A Kernel caches the two per-unit
// coefficients; evaluating a volume is then two multiplies with no
// validation, no interpolation and no allocation, which is what makes
// full configuration-space sweeps (internal/cluster) cheap.
//
// Numerical note: Kernel.Evaluate folds w in after the per-unit
// coefficients are fixed, while Predict folds w into each intermediate
// term. The two paths agree to within a few ULPs (relative ~1e-15);
// TimePerUnit is bit-identical to NodeModel.TimePerUnit by construction.
// Tests assert agreement at 1e-12 relative tolerance.
type Kernel struct {
	// Config is the (cores, frequency) setting the kernel was built for.
	Config hwsim.Config
	// TimePerUnit is the predicted seconds per work unit, the k the
	// matching split divides by.
	TimePerUnit float64
	// EnergyPerUnit is the predicted joules per work unit, including the
	// node's idle energy over its own k seconds.
	EnergyPerUnit float64
}

// Evaluate returns the predicted time and energy for w units on one node.
// It performs no validation: w must be positive and finite, as the
// enumeration layers guarantee once up front.
func (k Kernel) Evaluate(w float64) (units.Seconds, units.Joule) {
	return units.Seconds(k.TimePerUnit * w), units.Joule(k.EnergyPerUnit * w)
}

// AvgPower returns the node's average draw while servicing, the P the
// domination pruning pairs with TimePerUnit.
func (k Kernel) AvgPower() units.Watt {
	return units.Watt(k.EnergyPerUnit / k.TimePerUnit)
}

// KernelFor precomputes the kernel for one configuration. All of
// Predict's error paths (config validation, degenerate predictions) are
// taken here, once, instead of once per evaluated point.
func (nm NodeModel) KernelFor(cfg hwsim.Config) (Kernel, error) {
	pred, err := nm.Predict(cfg, 1)
	if err != nil {
		return Kernel{}, err
	}
	return Kernel{
		Config:        cfg,
		TimePerUnit:   float64(pred.Time),
		EnergyPerUnit: float64(pred.Energy),
	}, nil
}

// Kernels validates the model once and precomputes one kernel per
// (cores, frequency) configuration of its spec, in hwsim.Configs order.
func (nm NodeModel) Kernels() ([]Kernel, error) {
	if err := nm.Validate(); err != nil {
		return nil, fmt.Errorf("model: kernels: %w", err)
	}
	cfgs := hwsim.Configs(nm.Spec)
	out := make([]Kernel, len(cfgs))
	for i, cfg := range cfgs {
		k, err := nm.KernelFor(cfg)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}
