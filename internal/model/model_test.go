package model

import (
	"math"
	"sync"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/stats"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// Model construction is the expensive part of these tests; cache per
// (node, workload, noise) tuple.
var (
	cacheMu sync.Mutex
	cache   = map[string]NodeModel{}
)

func buildModel(t *testing.T, spec hwsim.NodeSpec, workload string, sigma float64) NodeModel {
	t.Helper()
	key := spec.Name + "/" + workload + "/" + units.Watt(sigma).String()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if nm, ok := cache[key]; ok {
		return nm
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := Build(spec, w, BuildOptions{NoiseSigma: sigma, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cache[key] = nm
	return nm
}

func TestBuildProducesValidModel(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "ep", 0)
	if err := nm.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMismatchedInputs(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "ep", 0)
	bad := nm
	bad.Profile.Node = "someone-else"
	if err := bad.Validate(); err == nil {
		t.Error("mismatched profile node should fail validation")
	}
	bad = nm
	bad.Power.Node = "someone-else"
	if err := bad.Validate(); err == nil {
		t.Error("mismatched power node should fail validation")
	}
}

func TestPredictValidatesInputs(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "ep", 0)
	if _, err := nm.Predict(hwsim.Config{Cores: 99, Frequency: 1.4 * units.GHz}, 1e6); err == nil {
		t.Error("bad config should error")
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := nm.Predict(hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}, w); err == nil {
			t.Errorf("work %v should error", w)
		}
	}
}

// The model predicts the simulator within the paper's error bands
// (Table 3 reports <= 15% on every workload).
func TestModelMatchesSimulatorSingleNode(t *testing.T) {
	for _, spec := range []hwsim.NodeSpec{hwsim.ARMCortexA9(), hwsim.AMDOpteronK10()} {
		for _, name := range workloads.Names() {
			spec, name := spec, name
			t.Run(spec.Name+"/"+name, func(t *testing.T) {
				nm := buildModel(t, spec, name, 0)
				w, _ := workloads.ByName(name)
				unitsW := w.AnalysisUnits
				for _, cfg := range []hwsim.Config{
					{Cores: 1, Frequency: spec.FMin()},
					{Cores: spec.Cores, Frequency: spec.FMax()},
					{Cores: spec.Cores / 2, Frequency: spec.Frequencies[len(spec.Frequencies)/2]},
				} {
					if cfg.Cores < 1 {
						cfg.Cores = 1
					}
					pred, err := nm.Predict(cfg, unitsW)
					if err != nil {
						t.Fatal(err)
					}
					meas, err := hwsim.Run(spec, cfg, w.Demand, unitsW, hwsim.Options{})
					if err != nil {
						t.Fatal(err)
					}
					terr := stats.RelativeError(float64(pred.Time), float64(meas.Record.Elapsed))
					eerr := stats.RelativeError(float64(pred.Energy), float64(meas.Record.Energy))
					if terr > 15 {
						t.Errorf("cfg %+v: time error %.1f%% (pred %v, meas %v)",
							cfg, terr, pred.Time, meas.Record.Elapsed)
					}
					if eerr > 15 {
						t.Errorf("cfg %+v: energy error %.1f%% (pred %v, meas %v)",
							cfg, eerr, pred.Energy, meas.Record.Energy)
					}
				}
			})
		}
	}
}

func TestPredictionComponentsConsistent(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "ep", 0)
	pred, err := nm.Predict(hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.ECore + pred.EMem + pred.EIO + pred.EIdle; math.Abs(float64(got-pred.Energy)) > 1e-9 {
		t.Errorf("components sum to %v, energy is %v", got, pred.Energy)
	}
	if pred.TCPU != pred.TCore && pred.TCPU != pred.TMem {
		t.Error("TCPU must equal max(TCore, TMem)")
	}
	if pred.Time < pred.TCPU || pred.Time < pred.TIO {
		t.Error("T must be >= both TCPU and TIO")
	}
	if pred.CAct <= 3.5 || pred.CAct > 4 {
		t.Errorf("EP on 4 cores should keep ~4 active, got %v", pred.CAct)
	}
	wantP := pred.Energy.Over(pred.Time)
	if pred.AvgPower != wantP {
		t.Errorf("avg power = %v, want %v", pred.AvgPower, wantP)
	}
}

// The model's time is exactly linear in work volume.
func TestPredictionLinearInWork(t *testing.T) {
	nm := buildModel(t, hwsim.AMDOpteronK10(), "blackscholes", 0)
	cfg := hwsim.Config{Cores: 6, Frequency: 2.1 * units.GHz}
	p1, err := nm.Predict(cfg, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := nm.Predict(cfg, 3e4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p3.Time)/float64(p1.Time)-3) > 1e-9 {
		t.Errorf("time not linear: %v vs 3x %v", p3.Time, p1.Time)
	}
	if math.Abs(float64(p3.Energy)/float64(p1.Energy)-3) > 1e-9 {
		t.Errorf("energy not linear: %v vs 3x %v", p3.Energy, p1.Energy)
	}
	tpu, err := nm.TimePerUnit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(tpu)*1e4-float64(p1.Time)) > 1e-12*float64(p1.Time) {
		t.Errorf("TimePerUnit inconsistent: %v * 1e4 != %v", tpu, p1.Time)
	}
}

func TestIOBoundPredictionTracksNIC(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "memcached", 0)
	cfg := hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}
	w := 5e4
	pred, err := nm.Predict(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Time != pred.TIO {
		t.Errorf("memcached should be I/O bound: T %v != TIO %v", pred.Time, pred.TIO)
	}
	// 50k requests * 1 KiB at 12.5 MB/s = 4.096 s.
	want := w * 1024 / 12.5e6
	if rel := math.Abs(float64(pred.Time)-want) / want; rel > 0.05 {
		t.Errorf("TIO = %v, want ~%v", pred.Time, want)
	}
}

// Lower frequency on a compute-bound workload trades time for energy —
// the overlap-region mechanism of Figure 4.
func TestFrequencyEnergyTimeTradeoffEP(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "ep", 0)
	full, err := nm.Predict(hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := nm.Predict(hwsim.Config{Cores: 4, Frequency: 0.8 * units.GHz}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Time <= full.Time {
		t.Error("lower frequency must be slower")
	}
	if slow.AvgPower >= full.AvgPower {
		t.Error("lower frequency must draw less power")
	}
}

func TestMostEfficientConfigIsArgmin(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "julius", 0)
	cfg, pred, err := nm.MostEfficientConfig()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range hwsim.Configs(nm.Spec) {
		p, err := nm.Predict(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		if float64(p.Energy) < float64(pred.Energy)*(1-1e-12) {
			t.Errorf("config %+v beats reported optimum %+v (%v < %v)", c, cfg, p.Energy, pred.Energy)
		}
	}
}

// Table 5's orderings: ARM wins PPR on every workload except RSA-2048 and
// x264, where AMD wins.
func TestPPRTable5Orderings(t *testing.T) {
	amdWins := map[string]bool{"rsa2048": true, "x264": true}
	for _, name := range workloads.Names() {
		arm := buildModel(t, hwsim.ARMCortexA9(), name, 0)
		amd := buildModel(t, hwsim.AMDOpteronK10(), name, 0)
		pprARM, _, err := arm.PPR()
		if err != nil {
			t.Fatal(err)
		}
		pprAMD, _, err := amd.PPR()
		if err != nil {
			t.Fatal(err)
		}
		if amdWins[name] {
			if pprAMD <= pprARM {
				t.Errorf("%s: AMD PPR %v should beat ARM %v (Table 5)", name, pprAMD, pprARM)
			}
		} else if pprARM <= pprAMD {
			t.Errorf("%s: ARM PPR %v should beat AMD %v (Table 5)", name, pprARM, pprAMD)
		}
	}
}

// Table 5's magnitudes, within calibration tolerance (0.5x-2x band).
func TestPPRTable5Magnitudes(t *testing.T) {
	paper := map[string]struct{ amd, arm float64 }{
		"ep":           {1414922, 6048057},
		"blackscholes": {2902, 11413},
		"julius":       {21390, 69654},
		"rsa2048":      {9346, 6877},
	}
	for name, want := range paper {
		arm := buildModel(t, hwsim.ARMCortexA9(), name, 0)
		amd := buildModel(t, hwsim.AMDOpteronK10(), name, 0)
		pprARM, _, _ := arm.PPR()
		pprAMD, _, _ := amd.PPR()
		if pprARM < want.arm*0.5 || pprARM > want.arm*2 {
			t.Errorf("%s ARM PPR = %v, want within 2x of %v", name, pprARM, want.arm)
		}
		if pprAMD < want.amd*0.5 || pprAMD > want.amd*2 {
			t.Errorf("%s AMD PPR = %v, want within 2x of %v", name, pprAMD, want.amd)
		}
	}
}

func TestBuildWithNoiseStillValidates(t *testing.T) {
	nm := buildModel(t, hwsim.ARMCortexA9(), "ep", 0.03)
	if err := nm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Noisy inputs should still predict the noiseless simulator well.
	w, _ := workloads.ByName("ep")
	cfg := hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}
	pred, err := nm.Predict(cfg, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := hwsim.Run(hwsim.ARMCortexA9(), cfg, w.Demand, 1e6, hwsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelativeError(float64(pred.Time), float64(meas.Record.Elapsed)); e > 15 {
		t.Errorf("noisy-input model time error %.1f%%", e)
	}
}
