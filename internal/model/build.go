package model

import (
	"fmt"

	"heteromix/internal/hwsim"
	"heteromix/internal/perfcounter"
	"heteromix/internal/power"
	"heteromix/internal/profile"
	"heteromix/internal/workloads"
)

// BuildOptions controls the end-to-end model construction pipeline.
type BuildOptions struct {
	// BaselineUnits is the batch size of each baseline observation; zero
	// selects a workload-appropriate default.
	BaselineUnits float64
	// Repetitions per configuration in the baseline campaign (default 1).
	Repetitions int
	// NoiseSigma is the measurement noise for baseline and power runs.
	NoiseSigma float64
	// Seed makes the whole pipeline reproducible.
	Seed int64
}

// defaultBaselineUnits picks a batch size that keeps every configuration's
// simulated run in a sensible wall-clock range for the workload.
func defaultBaselineUnits(w workloads.Spec) float64 {
	// A thousandth of the validation problem, floored at 100 units.
	u := w.ValidationUnits / 1000
	if u < 100 {
		u = 100
	}
	return u
}

// Build runs the complete trace-driven pipeline for one workload on one
// node type — baseline measurement campaign, profile fitting, and power
// characterization — and returns the resulting NodeModel. This is the
// programmatic equivalent of the paper's §II-D procedure.
func Build(spec hwsim.NodeSpec, w workloads.Spec, opts BuildOptions) (NodeModel, error) {
	units := opts.BaselineUnits
	if units <= 0 {
		units = defaultBaselineUnits(w)
	}
	reps := opts.Repetitions
	if reps < 1 {
		reps = 1
	}

	tr, err := perfcounter.Campaign{
		Spec:        spec,
		Demand:      w.Demand,
		Units:       units,
		Repetitions: reps,
		NoiseSigma:  opts.NoiseSigma,
		Seed:        opts.Seed,
	}.Collect()
	if err != nil {
		return NodeModel{}, fmt.Errorf("model: baseline campaign for %q on %q: %w", w.Name(), spec.Name, err)
	}

	prof, err := profile.Fit(tr, w.Name(), spec.Name)
	if err != nil {
		return NodeModel{}, fmt.Errorf("model: fitting %q on %q: %w", w.Name(), spec.Name, err)
	}
	prof = prof.WithArrivalGap(w.Demand.RequestRate)

	chars, err := power.Characterize(spec, power.Options{
		NoiseSigma: opts.NoiseSigma,
		Seed:       opts.Seed + 1,
	})
	if err != nil {
		return NodeModel{}, fmt.Errorf("model: power characterization of %q: %w", spec.Name, err)
	}

	nm := NodeModel{Spec: spec, Profile: prof, Power: chars}
	if err := nm.Validate(); err != nil {
		return NodeModel{}, err
	}
	return nm, nil
}
