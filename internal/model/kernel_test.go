package model

import (
	"math"
	"testing"
	"testing/quick"

	"heteromix/internal/hwsim"
	"heteromix/internal/workloads"
)

func kernelTestModel(t testing.TB) NodeModel {
	t.Helper()
	w, err := workloads.ByName("ep")
	if err != nil {
		t.Fatal(err)
	}
	nm, err := Build(hwsim.ARMCortexA9(), w, BuildOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return nm
}

// KernelFor's coefficients are exactly the unit prediction: the model is
// linear in work, so Predict(cfg, 1) determines it completely.
func TestKernelForMatchesUnitPrediction(t *testing.T) {
	nm := kernelTestModel(t)
	for _, cfg := range hwsim.Configs(nm.Spec) {
		k, err := nm.KernelFor(cfg)
		if err != nil {
			t.Fatalf("KernelFor(%v): %v", cfg, err)
		}
		pred, err := nm.Predict(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if k.TimePerUnit != float64(pred.Time) || k.EnergyPerUnit != float64(pred.Energy) {
			t.Errorf("%v: kernel (%v, %v) != unit prediction (%v, %v)",
				cfg, k.TimePerUnit, k.EnergyPerUnit, pred.Time, pred.Energy)
		}
		kpu, err := nm.TimePerUnit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if k.TimePerUnit != float64(kpu) {
			t.Errorf("%v: kernel time %v != TimePerUnit %v", cfg, k.TimePerUnit, kpu)
		}
	}
}

// Property: across random work volumes, the kernel's linear evaluation
// agrees with the full Predict path within accumulated rounding.
func TestKernelEvaluateMatchesPredict(t *testing.T) {
	nm := kernelTestModel(t)
	cfgs := hwsim.Configs(nm.Spec)
	f := func(ci uint8, wRaw uint32) bool {
		cfg := cfgs[int(ci)%len(cfgs)]
		w := 1 + math.Mod(float64(wRaw), 1e8)
		k, err := nm.KernelFor(cfg)
		if err != nil {
			return false
		}
		kt, ke := k.Evaluate(w)
		pred, err := nm.Predict(cfg, w)
		if err != nil {
			return false
		}
		return closeRel(float64(kt), float64(pred.Time), 1e-12) &&
			closeRel(float64(ke), float64(pred.Energy), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func closeRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestKernelsCoverConfigsInOrder(t *testing.T) {
	nm := kernelTestModel(t)
	ks, err := nm.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := hwsim.Configs(nm.Spec)
	if len(ks) != len(cfgs) {
		t.Fatalf("%d kernels for %d configs", len(ks), len(cfgs))
	}
	for i, k := range ks {
		if k.Config != cfgs[i] {
			t.Errorf("kernel %d is for %v, want %v", i, k.Config, cfgs[i])
		}
		if !(k.TimePerUnit > 0) || !(k.EnergyPerUnit > 0) {
			t.Errorf("kernel %d has non-positive coefficients: %+v", i, k)
		}
	}
}

func TestKernelAvgPower(t *testing.T) {
	nm := kernelTestModel(t)
	cfg := hwsim.Config{Cores: nm.Spec.Cores, Frequency: nm.Spec.FMax()}
	k, err := nm.KernelFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := nm.Predict(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(k.AvgPower()), float64(pred.AvgPower); !closeRel(got, want, 1e-12) {
		t.Errorf("AvgPower = %v, want %v", got, want)
	}
}

func TestKernelForRejectsInvalidConfig(t *testing.T) {
	nm := kernelTestModel(t)
	if _, err := nm.KernelFor(hwsim.Config{Cores: 99, Frequency: 1.0}); err == nil {
		t.Error("invalid config should error")
	}
}
