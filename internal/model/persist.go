package model

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"heteromix/internal/hwsim"
	"heteromix/internal/isa"
	"heteromix/internal/power"
	"heteromix/internal/profile"
	"heteromix/internal/stats"
	"heteromix/internal/units"
)

// This file persists fitted models as JSON so that the expensive
// characterization pipeline (baseline campaigns + power measurement)
// runs once and its results ship with a deployment — the trace-driven
// workflow the paper's methodology implies. Node hardware facts are not
// serialized; they are reconstructed from the node-type name via
// hwsim.ByName, keeping persisted files small and datasheet truth in
// one place.

// persistedModel is the on-disk shape. Maps with float keys (frequency-
// indexed tables) are flattened to entry lists.
type persistedModel struct {
	Version int              `json:"version"`
	Node    string           `json:"node"`
	Profile persistedProfile `json:"profile"`
	Power   persistedPower   `json:"power"`
}

type persistedProfile struct {
	Workload            string            `json:"workload"`
	ISA                 int               `json:"isa"`
	InstructionsPerUnit float64           `json:"instructions_per_unit"`
	WPI                 float64           `json:"wpi"`
	WPISpread           float64           `json:"wpi_spread"`
	SPICore             float64           `json:"spi_core"`
	SPICoreSpread       float64           `json:"spi_core_spread"`
	SPIMem              []persistedSPIMem `json:"spi_mem"`
	UCPU                []persistedUCPU   `json:"ucpu"`
	IOBytesPerUnit      float64           `json:"io_bytes_per_unit"`
	IOTransferPerUnit   float64           `json:"io_transfer_per_unit_s"`
	ArrivalGapPerUnit   float64           `json:"arrival_gap_per_unit_s"`
}

type persistedSPIMem struct {
	Cores     int     `json:"cores"`
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R2        float64 `json:"r2"`
}

type persistedUCPU struct {
	Cores   int     `json:"cores"`
	FreqGHz float64 `json:"freq_ghz"`
	UCPU    float64 `json:"ucpu"`
}

type persistedPower struct {
	Idle       float64          `json:"idle_w"`
	MemActive  float64          `json:"mem_active_w"`
	NICActive  float64          `json:"nic_active_w"`
	CoreTables []persistedPGate `json:"core_tables"`
}

type persistedPGate struct {
	FreqGHz float64 `json:"freq_ghz"`
	Active  float64 `json:"active_w"`
	Stall   float64 `json:"stall_w"`
}

const persistVersion = 1

// Save writes the model as JSON.
func Save(w io.Writer, nm NodeModel) error {
	if err := nm.Validate(); err != nil {
		return fmt.Errorf("model: refusing to save invalid model: %w", err)
	}
	p := persistedModel{
		Version: persistVersion,
		Node:    nm.Spec.Name,
		Profile: persistedProfile{
			Workload:            nm.Profile.Workload,
			ISA:                 int(nm.Profile.ISA),
			InstructionsPerUnit: nm.Profile.InstructionsPerUnit,
			WPI:                 nm.Profile.WPI,
			WPISpread:           nm.Profile.WPISpread,
			SPICore:             nm.Profile.SPICore,
			SPICoreSpread:       nm.Profile.SPICoreSpread,
			IOBytesPerUnit:      float64(nm.Profile.IOBytesPerUnit),
			IOTransferPerUnit:   float64(nm.Profile.IOTransferPerUnit),
			ArrivalGapPerUnit:   float64(nm.Profile.ArrivalGapPerUnit),
		},
		Power: persistedPower{
			Idle:      float64(nm.Power.Idle),
			MemActive: float64(nm.Power.MemActive),
			NICActive: float64(nm.Power.NICActive),
		},
	}
	for cores, fit := range nm.Profile.SPIMemByCores {
		p.Profile.SPIMem = append(p.Profile.SPIMem, persistedSPIMem{
			Cores: cores, Slope: fit.Slope, Intercept: fit.Intercept, R2: fit.R2,
		})
	}
	sort.Slice(p.Profile.SPIMem, func(i, j int) bool {
		return p.Profile.SPIMem[i].Cores < p.Profile.SPIMem[j].Cores
	})
	for cores, byFreq := range nm.Profile.UCPUByConfig {
		for g, u := range byFreq {
			p.Profile.UCPU = append(p.Profile.UCPU, persistedUCPU{Cores: cores, FreqGHz: g, UCPU: u})
		}
	}
	sort.Slice(p.Profile.UCPU, func(i, j int) bool {
		a, b := p.Profile.UCPU[i], p.Profile.UCPU[j]
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return a.FreqGHz < b.FreqGHz
	})
	for f, act := range nm.Power.CoreActive {
		p.Power.CoreTables = append(p.Power.CoreTables, persistedPGate{
			FreqGHz: f.GHzValue(),
			Active:  float64(act),
			Stall:   float64(nm.Power.CoreStall[f]),
		})
	}
	sort.Slice(p.Power.CoreTables, func(i, j int) bool {
		return p.Power.CoreTables[i].FreqGHz < p.Power.CoreTables[j].FreqGHz
	})

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// Load reads a model saved by Save, reconstructing the node's datasheet
// facts from its type name.
func Load(r io.Reader) (NodeModel, error) {
	var p persistedModel
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return NodeModel{}, fmt.Errorf("model: decoding: %w", err)
	}
	if p.Version != persistVersion {
		return NodeModel{}, fmt.Errorf("model: unsupported version %d", p.Version)
	}
	spec, err := hwsim.ByName(p.Node)
	if err != nil {
		return NodeModel{}, err
	}
	nm := NodeModel{Spec: spec}
	nm.Profile = profile.Profile{
		Workload:            p.Profile.Workload,
		Node:                p.Node,
		ISA:                 isaFromInt(p.Profile.ISA),
		InstructionsPerUnit: p.Profile.InstructionsPerUnit,
		WPI:                 p.Profile.WPI,
		WPISpread:           p.Profile.WPISpread,
		SPICore:             p.Profile.SPICore,
		SPICoreSpread:       p.Profile.SPICoreSpread,
		SPIMemByCores:       make(map[int]stats.Linear, len(p.Profile.SPIMem)),
		UCPUByConfig:        make(map[int]map[float64]float64),
		IOBytesPerUnit:      units.Bytes(p.Profile.IOBytesPerUnit),
		IOTransferPerUnit:   units.Seconds(p.Profile.IOTransferPerUnit),
		ArrivalGapPerUnit:   units.Seconds(p.Profile.ArrivalGapPerUnit),
	}
	for _, e := range p.Profile.SPIMem {
		nm.Profile.SPIMemByCores[e.Cores] = stats.Linear{Slope: e.Slope, Intercept: e.Intercept, R2: e.R2}
	}
	for _, e := range p.Profile.UCPU {
		if nm.Profile.UCPUByConfig[e.Cores] == nil {
			nm.Profile.UCPUByConfig[e.Cores] = make(map[float64]float64)
		}
		nm.Profile.UCPUByConfig[e.Cores][e.FreqGHz] = e.UCPU
	}
	nm.Power = power.Characterization{
		Node:       p.Node,
		Idle:       units.Watt(p.Power.Idle),
		MemActive:  units.Watt(p.Power.MemActive),
		NICActive:  units.Watt(p.Power.NICActive),
		CoreActive: make(map[units.Hertz]units.Watt, len(p.Power.CoreTables)),
		CoreStall:  make(map[units.Hertz]units.Watt, len(p.Power.CoreTables)),
	}
	for _, e := range p.Power.CoreTables {
		// Snap to the spec's P-states so float round-trips can never
		// produce an off-by-epsilon frequency key.
		f := snapFrequency(units.Hertz(e.FreqGHz*1e9), spec)
		nm.Power.CoreActive[f] = units.Watt(e.Active)
		nm.Power.CoreStall[f] = units.Watt(e.Stall)
	}
	if err := nm.Validate(); err != nil {
		return NodeModel{}, fmt.Errorf("model: loaded model invalid: %w", err)
	}
	return nm, nil
}

// isaFromInt round-trips the ISA enum through its integer encoding.
func isaFromInt(v int) isa.ISA { return isa.ISA(v) }

// snapFrequency maps f to the nearest spec P-state when within 1 part
// per million, and returns f unchanged otherwise.
func snapFrequency(f units.Hertz, spec hwsim.NodeSpec) units.Hertz {
	for _, p := range spec.Frequencies {
		d := float64(f - p)
		if d < 0 {
			d = -d
		}
		if d <= 1e-6*float64(p) {
			return p
		}
	}
	return f
}
