package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/units"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		spec     hwsim.NodeSpec
		workload string
	}{
		{hwsim.ARMCortexA9(), "ep"},
		{hwsim.AMDOpteronK10(), "memcached"},
	} {
		nm := buildModel(t, tc.spec, tc.workload, 0.03)
		var buf bytes.Buffer
		if err := Save(&buf, nm); err != nil {
			t.Fatalf("%s/%s: save: %v", tc.spec.Name, tc.workload, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s/%s: load: %v", tc.spec.Name, tc.workload, err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("loaded model invalid: %v", err)
		}
		// The loaded model must predict identically.
		cfg := hwsim.Config{Cores: tc.spec.Cores, Frequency: tc.spec.FMax()}
		orig, err := nm.Predict(cfg, 1e5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Predict(cfg, 1e5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(orig.Time-got.Time)) > 1e-12*float64(orig.Time) {
			t.Errorf("%s/%s: time changed: %v vs %v", tc.spec.Name, tc.workload, orig.Time, got.Time)
		}
		if math.Abs(float64(orig.Energy-got.Energy)) > 1e-12*float64(orig.Energy) {
			t.Errorf("%s/%s: energy changed: %v vs %v", tc.spec.Name, tc.workload, orig.Energy, got.Energy)
		}
		// Every P-state's power tables survive.
		for _, f := range tc.spec.Frequencies {
			if nm.Power.CoreActiveAt(f) != back.Power.CoreActiveAt(f) {
				t.Errorf("%s: core active at %v changed", tc.spec.Name, f)
			}
			if nm.Power.CoreStallAt(f) != back.Power.CoreStallAt(f) {
				t.Errorf("%s: core stall at %v changed", tc.spec.Name, f)
			}
		}
	}
}

func TestSaveRejectsInvalidModel(t *testing.T) {
	var bad NodeModel
	var buf bytes.Buffer
	if err := Save(&buf, bad); err == nil {
		t.Error("saving an invalid model should error")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version should error")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "node": "pdp-11"}`)); err == nil {
		t.Error("unknown node type should error")
	}
	// Structurally valid but semantically empty: fails model validation.
	if _, err := Load(strings.NewReader(`{"version": 1, "node": "arm-cortex-a9"}`)); err == nil {
		t.Error("empty profile should fail validation")
	}
}

func TestSnapFrequency(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	// Within a ppm: snapped.
	f := snapFrequency(1.4*units.GHz+0.1, arm)
	if f != 1.4*units.GHz {
		t.Errorf("near-miss frequency not snapped: %v", f)
	}
	// Far away: untouched.
	f = snapFrequency(3*units.GHz, arm)
	if f != 3*units.GHz {
		t.Errorf("distant frequency altered: %v", f)
	}
}

func TestHwsimByName(t *testing.T) {
	for _, name := range []string{"arm-cortex-a9", "amd-opteron-k10", "arm-cortex-a15"} {
		spec, err := hwsim.ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, spec.Name)
		}
	}
	if _, err := hwsim.ByName("cray-1"); err == nil {
		t.Error("unknown name should error")
	}
}
