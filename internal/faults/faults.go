// Package faults describes what can go wrong with a heterogeneous
// cluster mid-job: nodes crash, nodes recover, nodes straggle. The
// paper's mix-and-match split (§III) sizes every node type's work share
// assuming all nodes survive at nominal speed; a Plan is the
// deterministic counterfactual — a time-ordered list of per-node events
// that cluster.EvaluateDegraded replays against the analytical model to
// predict failure-aware completion time and energy.
//
// Plans are either hand-written (unit tests, what-if analyses) or drawn
// from Generate, which is fully seedable: the same seed and options
// always produce the same plan, so chaos experiments and regression
// tests are reproducible bit for bit.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"heteromix/internal/units"
)

// Kind classifies one fault event.
type Kind int

const (
	// Crash removes the node. With Duration zero the crash is permanent
	// (fail-stop); with a positive Duration the outage is transient — the
	// node contributes nothing while down and resumes with its completed
	// work intact (a reboot, a network partition, a preemption).
	Crash Kind = iota
	// Straggle slows the node by Factor (>= 1): it keeps working but
	// each work unit takes Factor times longer at the same average
	// power. Duration zero straggles for the rest of the job.
	Straggle
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggle:
		return "straggle"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fault striking one node.
type Event struct {
	// Group indexes the cluster group (the order groups are passed to
	// cluster.EvaluateDegraded); Node indexes the node within it.
	Group int `json:"group"`
	Node  int `json:"node"`
	// Kind is what happens.
	Kind Kind `json:"kind"`
	// At is when the fault strikes, measured from job start.
	At units.Seconds `json:"at"`
	// Duration bounds transient crashes and straggles; zero means the
	// effect is permanent for the rest of the job.
	Duration units.Seconds `json:"duration,omitempty"`
	// Factor is the straggler slowdown (ignored for crashes).
	Factor float64 `json:"factor,omitempty"`
}

// Permanent reports whether the event never ends.
func (e Event) Permanent() bool { return e.Duration == 0 }

// validate checks one event against the group sizes (nil sizes skips the
// index checks, for plans validated before the cluster shape is known).
func (e Event) validate(i int, sizes []int) error {
	if e.Group < 0 || e.Node < 0 {
		return fmt.Errorf("faults: event %d: negative group or node index", i)
	}
	if sizes != nil {
		if e.Group >= len(sizes) {
			return fmt.Errorf("faults: event %d: group %d out of range (have %d groups)", i, e.Group, len(sizes))
		}
		if e.Node >= sizes[e.Group] {
			return fmt.Errorf("faults: event %d: node %d out of range (group %d has %d nodes)",
				i, e.Node, e.Group, sizes[e.Group])
		}
	}
	if math.IsNaN(float64(e.At)) || math.IsInf(float64(e.At), 0) || e.At < 0 {
		return fmt.Errorf("faults: event %d: at %v must be non-negative and finite", i, e.At)
	}
	if math.IsNaN(float64(e.Duration)) || math.IsInf(float64(e.Duration), 0) || e.Duration < 0 {
		return fmt.Errorf("faults: event %d: duration %v must be non-negative and finite", i, e.Duration)
	}
	switch e.Kind {
	case Crash:
		// Factor is ignored; allow zero only.
		if e.Factor != 0 {
			return fmt.Errorf("faults: event %d: crash with a straggle factor", i)
		}
	case Straggle:
		if math.IsNaN(e.Factor) || math.IsInf(e.Factor, 0) || e.Factor < 1 {
			return fmt.Errorf("faults: event %d: straggle factor %v must be >= 1", i, e.Factor)
		}
	default:
		return fmt.Errorf("faults: event %d: unknown kind %d", i, int(e.Kind))
	}
	return nil
}

// Plan is a reproducible fault schedule for one job.
type Plan struct {
	Events []Event `json:"events"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Validate checks every event. sizes gives each group's node count; a
// nil sizes skips the index-range checks.
func (p Plan) Validate(sizes []int) error {
	for i, e := range p.Events {
		if err := e.validate(i, sizes); err != nil {
			return err
		}
	}
	return nil
}

// Sorted returns the events ordered by strike time (stable, so
// same-instant events keep their plan order).
func (p Plan) Sorted() []Event {
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// GenOptions parameterizes Generate. Rates are per node per second of
// plan horizon, the natural unit for "this board fails about once per
// thousand hours" arithmetic scaled to job durations.
type GenOptions struct {
	// Seed fixes the random stream; equal seeds give equal plans.
	Seed int64
	// Horizon bounds event strike times: faults are drawn over
	// [0, Horizon). Required (positive).
	Horizon units.Seconds
	// CrashRate is each node's permanent-crash hazard (events per
	// node-second). A node crashes at most once.
	CrashRate float64
	// TransientRate is each node's transient-outage hazard; outages last
	// TransientOutage (default Horizon/10).
	TransientRate   float64
	TransientOutage units.Seconds
	// StraggleProb is the chance a node straggles at all; a straggler
	// slows by a factor drawn uniformly from [MinFactor, MaxFactor]
	// (defaults 1.5 and 4) starting at a uniform time in the horizon.
	StraggleProb         float64
	MinFactor, MaxFactor float64
}

// validate checks the generator options.
func (o GenOptions) validate() error {
	if o.Horizon <= 0 || math.IsNaN(float64(o.Horizon)) || math.IsInf(float64(o.Horizon), 0) {
		return fmt.Errorf("faults: horizon must be positive and finite, got %v", o.Horizon)
	}
	for name, v := range map[string]float64{
		"crash rate": o.CrashRate, "transient rate": o.TransientRate, "straggle probability": o.StraggleProb,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("faults: %s %v must be non-negative and finite", name, v)
		}
	}
	if o.StraggleProb > 1 {
		return fmt.Errorf("faults: straggle probability %v must be <= 1", o.StraggleProb)
	}
	if o.MinFactor != 0 && o.MinFactor < 1 {
		return fmt.Errorf("faults: min straggle factor %v must be >= 1", o.MinFactor)
	}
	if o.MaxFactor != 0 && o.MaxFactor < o.MinFactor {
		return fmt.Errorf("faults: max straggle factor %v below min %v", o.MaxFactor, o.MinFactor)
	}
	return nil
}

// Generate draws a deterministic plan for a cluster whose group g has
// sizes[g] nodes. Each node independently suffers at most one permanent
// crash (exponential arrival at CrashRate, kept if it lands inside the
// horizon), transient outages (Poisson at TransientRate), and at most
// one straggle episode. The returned plan is sorted by strike time and
// always passes Validate(sizes).
func Generate(sizes []int, opts GenOptions) (Plan, error) {
	if err := opts.validate(); err != nil {
		return Plan{}, err
	}
	for g, n := range sizes {
		if n < 0 {
			return Plan{}, fmt.Errorf("faults: group %d has negative size %d", g, n)
		}
	}
	minF, maxF := opts.MinFactor, opts.MaxFactor
	if minF == 0 {
		minF = 1.5
	}
	if maxF == 0 {
		maxF = 4
	}
	outage := opts.TransientOutage
	if outage == 0 {
		outage = opts.Horizon / 10
	}
	h := float64(opts.Horizon)
	rng := rand.New(rand.NewSource(opts.Seed))
	var p Plan
	for g, n := range sizes {
		for node := 0; node < n; node++ {
			// The per-node draws happen in a fixed order so the stream is
			// stable under option changes that disable a class (a zero rate
			// still consumes no randomness only for its own class).
			if opts.CrashRate > 0 {
				if t := rng.ExpFloat64() / opts.CrashRate; t < h {
					p.Events = append(p.Events, Event{
						Group: g, Node: node, Kind: Crash, At: units.Seconds(t),
					})
				}
			}
			if opts.TransientRate > 0 {
				for t := rng.ExpFloat64() / opts.TransientRate; t < h; t += rng.ExpFloat64() / opts.TransientRate {
					p.Events = append(p.Events, Event{
						Group: g, Node: node, Kind: Crash, At: units.Seconds(t), Duration: outage,
					})
				}
			}
			if opts.StraggleProb > 0 && rng.Float64() < opts.StraggleProb {
				p.Events = append(p.Events, Event{
					Group: g, Node: node, Kind: Straggle,
					At:     units.Seconds(rng.Float64() * h),
					Factor: minF + rng.Float64()*(maxF-minF),
				})
			}
		}
	}
	p.Events = p.Sorted()
	return p, nil
}
