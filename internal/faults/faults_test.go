package faults

import (
	"reflect"
	"testing"

	"heteromix/internal/units"
)

func TestEventValidation(t *testing.T) {
	sizes := []int{4, 2}
	cases := map[string]Event{
		"negative group":   {Group: -1, Kind: Crash, At: 1},
		"group range":      {Group: 2, Kind: Crash, At: 1},
		"node range":       {Group: 1, Node: 2, Kind: Crash, At: 1},
		"negative at":      {Kind: Crash, At: -1},
		"nan at":           {Kind: Crash, At: units.Seconds(nan())},
		"negative dur":     {Kind: Crash, At: 1, Duration: -2},
		"crash factor":     {Kind: Crash, At: 1, Factor: 2},
		"straggle sub-1":   {Kind: Straggle, At: 1, Factor: 0.5},
		"straggle no fact": {Kind: Straggle, At: 1},
		"unknown kind":     {Kind: Kind(9), At: 1},
	}
	for name, ev := range cases {
		if err := (Plan{Events: []Event{ev}}).Validate(sizes); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	ok := Plan{Events: []Event{
		{Group: 0, Node: 3, Kind: Crash, At: 2},
		{Group: 1, Node: 1, Kind: Crash, At: 0.5, Duration: 3},
		{Group: 0, Node: 0, Kind: Straggle, At: 1, Factor: 2.5},
	}}
	if err := ok.Validate(sizes); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	// nil sizes skips range checks but keeps the value checks.
	if err := (Plan{Events: []Event{{Group: 99, Node: 99, Kind: Crash, At: 1}}}).Validate(nil); err != nil {
		t.Errorf("nil sizes should skip index checks: %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestSortedIsStableByTime(t *testing.T) {
	p := Plan{Events: []Event{
		{Group: 0, Node: 1, Kind: Crash, At: 5},
		{Group: 0, Node: 0, Kind: Crash, At: 2},
		{Group: 1, Node: 0, Kind: Straggle, At: 2, Factor: 2},
	}}
	s := p.Sorted()
	if s[0].At != 2 || s[1].At != 2 || s[2].At != 5 {
		t.Fatalf("not sorted: %+v", s)
	}
	// Same-instant events keep plan order (node 0 crash before straggle).
	if s[0].Kind != Crash || s[1].Kind != Straggle {
		t.Errorf("sort not stable: %+v", s)
	}
	// The original plan is untouched.
	if p.Events[0].At != 5 {
		t.Error("Sorted mutated the plan")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sizes := []int{16, 4}
	opts := GenOptions{
		Seed: 7, Horizon: 1000,
		CrashRate: 1e-3, TransientRate: 5e-4, StraggleProb: 0.25,
	}
	a, err := Generate(sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if a.Empty() {
		t.Fatal("expected some events at these rates over 16+4 nodes")
	}
	if err := a.Validate(sizes); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	opts.Seed = 8
	c, err := Generate(sizes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
}

func TestGenerateClasses(t *testing.T) {
	sizes := []int{64}
	p, err := Generate(sizes, GenOptions{
		Seed: 3, Horizon: 100,
		CrashRate: 5e-3, TransientRate: 5e-3, StraggleProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var perm, trans, strag int
	crashed := map[int]int{}
	for _, e := range p.Events {
		switch {
		case e.Kind == Crash && e.Permanent():
			perm++
			crashed[e.Node]++
		case e.Kind == Crash:
			trans++
			if e.Duration != 10 { // default Horizon/10
				t.Errorf("transient outage %v, want 10", e.Duration)
			}
		case e.Kind == Straggle:
			strag++
			if e.Factor < 1.5 || e.Factor > 4 {
				t.Errorf("straggle factor %v outside default [1.5, 4]", e.Factor)
			}
		}
	}
	if perm == 0 || trans == 0 || strag == 0 {
		t.Fatalf("missing a class: perm=%d trans=%d strag=%d", perm, trans, strag)
	}
	for node, n := range crashed {
		if n > 1 {
			t.Errorf("node %d permanently crashed %d times", node, n)
		}
	}
}

func TestGenerateOptionValidation(t *testing.T) {
	cases := map[string]GenOptions{
		"zero horizon":   {},
		"negative rate":  {Horizon: 10, CrashRate: -1},
		"prob over one":  {Horizon: 10, StraggleProb: 1.5},
		"bad min factor": {Horizon: 10, MinFactor: 0.2},
		"max below min":  {Horizon: 10, MinFactor: 3, MaxFactor: 2},
	}
	for name, o := range cases {
		if _, err := Generate([]int{2}, o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Generate([]int{-1}, GenOptions{Horizon: 10}); err == nil {
		t.Error("negative group size accepted")
	}
}
