// Package calib is the online recalibration subsystem: it ingests
// observed (workload, node, config, T, E) samples, tracks how far the
// active model's predictions have drifted from reality, and refits the
// model's measured parameters when drift crosses a threshold.
//
// The paper's model separates datasheet facts (NodeSpec) from measured
// parameters — Table 2's "+" entries: the fitted instruction count
// I_Ps and the power characterization. Those measured parameters are
// exactly what drifts in production (software updates change the
// instruction stream, hardware aging and firmware change power draw —
// see PAPERS.md: Sîrbu & Babaoglu maintain power models from live
// telemetry at supercomputer scale; Abdurachmanov et al. observe
// measured energy shifting under software changes). A refit therefore
// adjusts only those measured parameters, as a pair of least-squares
// scale corrections:
//
//   - a time scale s_T on Profile.InstructionsPerUnit, fitted through
//     the origin on (T_pred, T_obs) — for CPU-bound workloads T is
//     proportional to I_Ps, so the correction is exact;
//   - an energy scale s_E on every power level of the
//     power.Characterization, fitted on (E_pred, E_obs) after the time
//     correction — the paper's E is a sum of power×time terms, each
//     linear in its power level, so scaling all levels scales E
//     exactly.
//
// Both fits run through stats.ProportionalFit, which answers typed
// errors for degenerate inputs instead of NaN slopes; a degenerate or
// absurd fit is reported and skipped, never installed.
package calib

import (
	"errors"
	"fmt"
	"math"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/power"
	"heteromix/internal/stats"
	"heteromix/internal/units"
)

// Sample is one observed execution: the resolved configuration a job
// ran under, the work it completed, and the measured time and energy.
type Sample struct {
	// Cores and GHz are the node configuration, already resolved to an
	// exact core count and P-state by the caller (the server's /v1/fit
	// validation snaps them like every other endpoint).
	Cores int     `json:"cores"`
	GHz   float64 `json:"ghz"`
	// Work is the job size in work units.
	Work float64 `json:"work"`
	// TimeSeconds and EnergyJoules are the measurements.
	TimeSeconds  float64 `json:"time_seconds"`
	EnergyJoules float64 `json:"energy_joules"`
}

// Config returns the sample's hwsim configuration.
func (s Sample) Config() hwsim.Config {
	return hwsim.Config{Cores: s.Cores, Frequency: units.Hertz(s.GHz * 1e9)}
}

// ErrBadSample marks a sample the active model cannot evaluate (bad
// config, nonsense measurements). The server maps it to a 400.
var ErrBadSample = errors.New("calib: bad sample")

// ErrDegenerateFit marks a refit attempt the data cannot support: the
// proportional fits failed or produced scales outside sane bounds. It
// is a skip reason, not a request error — the samples stay stored and
// a later, richer batch may succeed.
var ErrDegenerateFit = errors.New("calib: degenerate fit")

// Refit scale bounds: a fitted correction outside [minScale, maxScale]
// says the observations do not describe this hardware at all (wrong
// units, wrong node); installing it would be worse than keeping the
// stale model.
const (
	minScale = 0.05
	maxScale = 20.0
)

// Quality reports a refit's fit statistics, the r² story of the
// paper's Figure 3 applied online.
type Quality struct {
	// Samples is how many stored observations backed the fit.
	Samples int `json:"samples"`
	// TimeScale and EnergyScale are the installed corrections s_T, s_E.
	TimeScale   float64 `json:"time_scale"`
	EnergyScale float64 `json:"energy_scale"`
	// TimeR2 and EnergyR2 are the coefficients of determination of the
	// two proportional fits.
	TimeR2   float64 `json:"time_r2"`
	EnergyR2 float64 `json:"energy_r2"`
	// MeanRelErrBefore/After are the mean relative prediction errors
	// (max of time and energy error per sample) against the pre- and
	// post-refit models — After < Before is what a refit buys.
	MeanRelErrBefore float64 `json:"mean_rel_err_before"`
	MeanRelErrAfter  float64 `json:"mean_rel_err_after"`
}

// relErr is one sample's relative prediction error against a model:
// the worse of the time and energy errors, as a fraction (0.5 = 50%).
func relErr(nm model.NodeModel, s Sample) (float64, error) {
	pred, err := nm.Predict(s.Config(), s.Work)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadSample, err)
	}
	et := math.Abs(float64(pred.Time)-s.TimeSeconds) / s.TimeSeconds
	ee := math.Abs(float64(pred.Energy)-s.EnergyJoules) / s.EnergyJoules
	return math.Max(et, ee), nil
}

// scalePower returns a deep copy of c with every power level scaled by
// s. The copy matters: base models share their characterization maps,
// and a refit must never mutate the base in place.
func scalePower(c power.Characterization, s float64) power.Characterization {
	out := c
	out.CoreActive = make(map[units.Hertz]units.Watt, len(c.CoreActive))
	for f, w := range c.CoreActive {
		out.CoreActive[f] = units.Watt(float64(w) * s)
	}
	out.CoreStall = make(map[units.Hertz]units.Watt, len(c.CoreStall))
	for f, w := range c.CoreStall {
		out.CoreStall[f] = units.Watt(float64(w) * s)
	}
	out.MemActive = units.Watt(float64(c.MemActive) * s)
	out.NICActive = units.Watt(float64(c.NICActive) * s)
	out.Idle = units.Watt(float64(c.Idle) * s)
	return out
}

// checkScale rejects non-finite or out-of-bounds corrections.
func checkScale(name string, s float64) error {
	if math.IsNaN(s) || math.IsInf(s, 0) || s < minScale || s > maxScale {
		return fmt.Errorf("%w: %s scale %v outside [%v, %v]",
			ErrDegenerateFit, name, s, minScale, maxScale)
	}
	return nil
}

// Refit fits the scale corrections against base — always the original
// fitted model, never a previous refit, so repeated refits converge on
// the data instead of compounding corrections — and returns the
// corrected model with its fit quality. The base model is not
// modified. Degenerate data answers ErrDegenerateFit (wrapped).
func Refit(base model.NodeModel, samples []Sample) (model.NodeModel, Quality, error) {
	n := len(samples)
	q := Quality{Samples: n}
	if n < 2 {
		return base, q, fmt.Errorf("%w: need at least 2 samples, have %d", ErrDegenerateFit, n)
	}
	tPred := make([]float64, n)
	tObs := make([]float64, n)
	eObs := make([]float64, n)
	var errBefore float64
	for i, smp := range samples {
		pred, err := base.Predict(smp.Config(), smp.Work)
		if err != nil {
			return base, q, fmt.Errorf("%w: %v", ErrBadSample, err)
		}
		tPred[i] = float64(pred.Time)
		tObs[i] = smp.TimeSeconds
		eObs[i] = smp.EnergyJoules
		et := math.Abs(float64(pred.Time)-smp.TimeSeconds) / smp.TimeSeconds
		ee := math.Abs(float64(pred.Energy)-smp.EnergyJoules) / smp.EnergyJoules
		errBefore += math.Max(et, ee)
	}
	q.MeanRelErrBefore = errBefore / float64(n)

	tFit, err := stats.ProportionalFit(tPred, tObs)
	if err != nil {
		return base, q, fmt.Errorf("%w: time fit: %v", ErrDegenerateFit, err)
	}
	if err := checkScale("time", tFit.Slope); err != nil {
		return base, q, err
	}
	out := base
	out.Profile.InstructionsPerUnit *= tFit.Slope
	q.TimeScale, q.TimeR2 = tFit.Slope, tFit.R2

	// Energy correction on the time-corrected model: E is linear in the
	// power levels, so a single scale on all of them is exact.
	ePred := make([]float64, n)
	for i, smp := range samples {
		pred, err := out.Predict(smp.Config(), smp.Work)
		if err != nil {
			return base, q, fmt.Errorf("%w: %v", ErrBadSample, err)
		}
		ePred[i] = float64(pred.Energy)
	}
	eFit, err := stats.ProportionalFit(ePred, eObs)
	if err != nil {
		return base, q, fmt.Errorf("%w: energy fit: %v", ErrDegenerateFit, err)
	}
	if err := checkScale("energy", eFit.Slope); err != nil {
		return base, q, err
	}
	out.Power = scalePower(out.Power, eFit.Slope)
	q.EnergyScale, q.EnergyR2 = eFit.Slope, eFit.R2

	var errAfter float64
	for _, smp := range samples {
		e, err := relErr(out, smp)
		if err != nil {
			return base, q, err
		}
		errAfter += e
	}
	q.MeanRelErrAfter = errAfter / float64(n)
	return out, q, nil
}
