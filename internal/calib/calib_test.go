package calib

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"heteromix/internal/experiments"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
)

var (
	suiteOnce   sync.Once
	sharedSuite *experiments.Suite
)

func testSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		sharedSuite = experiments.NewSuite(experiments.SuiteOptions{Seed: 42})
	})
	return sharedSuite
}

// shiftedSamples generates observations from a scaled ground truth:
// the base model's predictions with time ×tScale and energy ×eScale,
// across core counts and P-states.
func shiftedSamples(t *testing.T, nm model.NodeModel, work, tScale, eScale float64) []Sample {
	t.Helper()
	var out []Sample
	for _, cores := range []int{1, nm.Spec.Cores} {
		for _, f := range nm.Spec.Frequencies {
			cfg := hwsim.Config{Cores: cores, Frequency: f}
			pred, err := nm.Predict(cfg, work)
			if err != nil {
				t.Fatalf("predict %v: %v", cfg, err)
			}
			out = append(out, Sample{
				Cores:        cores,
				GHz:          f.GHzValue(),
				Work:         work,
				TimeSeconds:  float64(pred.Time) * tScale,
				EnergyJoules: float64(pred.Energy) * eScale,
			})
		}
	}
	return out
}

// A refit against observations that are an exact scale of the base
// predictions must recover both scales (EP is CPU-bound, so the time
// correction via InstructionsPerUnit is exact) and drive the residual
// error to ~0.
func TestRefitRecoversExactScales(t *testing.T) {
	base, err := testSuite().Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	samples := shiftedSamples(t, base, 5e7, 1.5, 1.3)
	refit, q, err := Refit(base, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.TimeScale-1.5) > 1e-9 {
		t.Errorf("time scale = %v, want 1.5", q.TimeScale)
	}
	if q.TimeR2 < 0.999 || q.EnergyR2 < 0.999 {
		t.Errorf("fit r2 = (%v, %v), want ~1", q.TimeR2, q.EnergyR2)
	}
	if q.MeanRelErrAfter > 1e-9 {
		t.Errorf("residual error after exact-scale refit = %v, want ~0", q.MeanRelErrAfter)
	}
	if q.MeanRelErrAfter >= q.MeanRelErrBefore {
		t.Errorf("refit did not improve: before %v, after %v", q.MeanRelErrBefore, q.MeanRelErrAfter)
	}
	// The refit model predicts the shifted truth.
	cfg := hwsim.Config{Cores: base.Spec.Cores, Frequency: base.Spec.FMax()}
	pb, _ := base.Predict(cfg, 5e7)
	pr, err := refit.Predict(cfg, 5e7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(pr.Time)-1.5*float64(pb.Time)) / (1.5 * float64(pb.Time)); rel > 1e-9 {
		t.Errorf("refit time off by %v", rel)
	}
	if rel := math.Abs(float64(pr.Energy)-1.3*float64(pb.Energy)) / (1.3 * float64(pb.Energy)); rel > 1e-9 {
		t.Errorf("refit energy off by %v", rel)
	}
	// The base model was not mutated: its power maps and profile stand.
	pb2, _ := base.Predict(cfg, 5e7)
	if pb2.Time != pb.Time || pb2.Energy != pb.Energy {
		t.Error("Refit mutated the base model")
	}
}

func TestRefitRejectsDegenerateData(t *testing.T) {
	base, err := testSuite().Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Refit(base, nil); !errors.Is(err, ErrDegenerateFit) {
		t.Errorf("empty samples: err = %v, want ErrDegenerateFit", err)
	}
	// Observations 1000x off imply a scale outside the sane bounds.
	wild := shiftedSamples(t, base, 5e7, 1000, 1000)
	if _, _, err := Refit(base, wild); !errors.Is(err, ErrDegenerateFit) {
		t.Errorf("wild scale: err = %v, want ErrDegenerateFit", err)
	}
}

// Ingest below the threshold stores samples without bumping; pushing
// drift past the threshold refits, bumps the workload version exactly
// once for identical repeat data ("unchanged" skip), and fires OnBump.
func TestRegistryIngestDriftAndBump(t *testing.T) {
	reg := NewRegistry(testSuite(), Options{RefitThreshold: 0.1, MinRefitSamples: 4})
	var events []BumpEvent
	reg.opts.OnBump = func(ev BumpEvent) { events = append(events, ev) }

	base, err := testSuite().Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	// Accurate observations (on the AMD pair, so they do not dilute the
	// ARM pair's sample store below): no refit.
	amd, err := testSuite().Model("ep", hwsim.AMDOpteronK10())
	if err != nil {
		t.Fatal(err)
	}
	good := shiftedSamples(t, amd, 5e7, 1.0, 1.0)
	res, err := reg.Ingest("ep", "amd-opteron-k10", good[:4])
	if err != nil {
		t.Fatal(err)
	}
	if res.Refit || res.Version != 1 || res.Drift > 1e-9 {
		t.Fatalf("accurate ingest: %+v", res)
	}

	// Shifted observations: drift 50% >> 10%, refit and bump.
	shifted := shiftedSamples(t, base, 5e7, 1.5, 1.3)
	res, err = reg.Ingest("ep", "arm-cortex-a9", shifted)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Refit {
		t.Fatalf("shifted ingest did not refit: %+v", res)
	}
	if res.Version != 2 || reg.Version("ep") != 2 {
		t.Errorf("version = %d / %d, want 2", res.Version, reg.Version("ep"))
	}
	if res.Hash == "" || res.Quality == nil {
		t.Errorf("refit result missing hash/quality: %+v", res)
	}
	if res.Drift >= res.DriftBefore {
		t.Errorf("drift did not improve: before %v after %v", res.DriftBefore, res.Drift)
	}
	if len(events) != 1 || events[0].OldVersion != 1 || events[0].NewVersion != 2 ||
		events[0].NewGeneration != events[0].OldGeneration+1 {
		t.Fatalf("events = %+v", events)
	}
	if reg.Generation() != 2 {
		t.Errorf("generation = %d, want 2", reg.Generation())
	}

	// The same shifted data again: the active model now matches it, so
	// drift stays under the threshold — no churn.
	res, err = reg.Ingest("ep", "arm-cortex-a9", shifted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refit || res.Version != 2 {
		t.Fatalf("repeat ingest churned: %+v", res)
	}
	if len(events) != 1 {
		t.Fatalf("repeat ingest fired OnBump: %d events", len(events))
	}

	// The registry's Space and Model now serve the override.
	sp, err := reg.Space("ep")
	if err != nil {
		t.Fatal(err)
	}
	cfg := hwsim.Config{Cores: base.Spec.Cores, Frequency: base.Spec.FMax()}
	pb, _ := base.Predict(cfg, 5e7)
	po, err := sp.ARM.Predict(cfg, 5e7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(po.Time)-1.5*float64(pb.Time)) / (1.5 * float64(pb.Time)); rel > 1e-6 {
		t.Errorf("Space does not serve the refit model (time off by %v)", rel)
	}
	nm, err := reg.Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := nm.Predict(cfg, 5e7)
	if pm.Time != po.Time {
		t.Error("Model and Space disagree on the override")
	}

	// Statuses reports both pairs; the ARM one carries the refit.
	sts := reg.Statuses()
	if len(sts) != 2 {
		t.Fatalf("statuses = %+v", sts)
	}
	var arm *Status
	for i := range sts {
		if sts[i].Node == "arm-cortex-a9" {
			arm = &sts[i]
		}
	}
	if arm == nil || arm.Source != "refit" || arm.Refits != 1 || arm.Version != 2 {
		t.Errorf("arm status = %+v", arm)
	}
}

func TestRegistryIngestRejectsBadPairsAndSamples(t *testing.T) {
	reg := NewRegistry(testSuite(), Options{})
	if _, err := reg.Ingest("ep", "intel-xeon", []Sample{{Cores: 1, GHz: 1, Work: 1, TimeSeconds: 1, EnergyJoules: 1}}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: err = %v, want ErrUnknownNode", err)
	}
	bad := []Sample{{Cores: 99, GHz: 1.0, Work: 5e7, TimeSeconds: 1, EnergyJoules: 1}}
	if _, err := reg.Ingest("ep", "arm-cortex-a9", bad); !errors.Is(err, ErrBadSample) {
		t.Errorf("bad config: err = %v, want ErrBadSample", err)
	}
	if _, err := reg.Ingest("ep", "arm-cortex-a9", nil); !errors.Is(err, ErrBadSample) {
		t.Errorf("no samples: err = %v, want ErrBadSample", err)
	}
	// A rejected batch must store nothing.
	for _, st := range reg.Statuses() {
		if st.Samples != 0 {
			t.Errorf("rejected batch left %d samples stored", st.Samples)
		}
	}
}

// The sample store and drift window stay bounded no matter how much is
// ingested.
func TestRegistryBoundsStores(t *testing.T) {
	reg := NewRegistry(testSuite(), Options{
		// Threshold high enough that these accurate samples never refit.
		RefitThreshold: 10, MaxSamples: 10, DriftWindow: 4,
	})
	base, err := testSuite().Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	good := shiftedSamples(t, base, 5e7, 1.0, 1.0)
	for i := 0; i < 5; i++ {
		res, err := reg.Ingest("ep", "arm-cortex-a9", good)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stored > 10 {
			t.Fatalf("store grew past MaxSamples: %d", res.Stored)
		}
	}
	k := Key{"ep", "arm-cortex-a9"}
	reg.mu.Lock()
	win := len(reg.trackers[k].window)
	reg.mu.Unlock()
	if win > 4 {
		t.Errorf("drift window grew past bound: %d", win)
	}
}

// Snapshot round trip: save, load into a fresh registry, byte-equal
// re-save, and tamper detection via the content hash.
func TestSnapshotRoundTripAndTamperDetection(t *testing.T) {
	reg := NewRegistry(testSuite(), Options{RefitThreshold: 0.1, MinRefitSamples: 4})
	base, err := testSuite().Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Ingest("ep", "arm-cortex-a9", shiftedSamples(t, base, 5e7, 1.5, 1.3)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	if err := reg.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewRegistry(testSuite(), Options{})
	if err := fresh.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Version("ep") != 2 {
		t.Errorf("loaded version = %d, want 2", fresh.Version("ep"))
	}
	want := reg.Overrides()
	got := fresh.Overrides()
	if len(got) != 1 || got[0].Hash != want[0].Hash || got[0].Source != "snapshot" {
		t.Fatalf("loaded overrides = %+v, want hash %s", got, want[0].Hash)
	}
	// The loaded model predicts identically to the refit one.
	cfg := hwsim.Config{Cores: base.Spec.Cores, Frequency: base.Spec.FMax()}
	pw, _ := want[0].Model().Predict(cfg, 5e7)
	pg, err := got[0].Model().Predict(cfg, 5e7)
	if err != nil {
		t.Fatal(err)
	}
	if pw.Time != pg.Time || pw.Energy != pg.Energy {
		t.Error("loaded model predicts differently from the saved one")
	}

	// Tampering with the persisted model must fail the hash check.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"instructions_per_unit"`), []byte(`"instructions_per_unit_x"`), 1)
	if bytes.Equal(tampered, raw) {
		// Field name differs from expectation; flip a digit instead.
		tampered = bytes.Replace(raw, []byte("1"), []byte("2"), 1)
	}
	if err := NewRegistry(testSuite(), Options{}).LoadSnapshot(bytes.NewReader(tampered)); err == nil {
		t.Error("tampered snapshot loaded without error")
	}

	// Missing file is os.ErrNotExist, the first-start signal.
	if err := fresh.LoadSnapshotFile(filepath.Join(dir, "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}
}

// A nil-base registry (fitmodel's round-trip shape) serves loaded
// overrides and rejects everything else.
func TestNilBaseRegistryServesOverridesOnly(t *testing.T) {
	src := NewRegistry(testSuite(), Options{})
	base, err := testSuite().Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, "ep", "arm-cortex-a9", base, "fitmodel"); err != nil {
		t.Fatal(err)
	}
	_ = src

	reg := NewRegistry(nil, Options{})
	if err := reg.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	nm, err := reg.Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	if nm.Spec.Name != "arm-cortex-a9" {
		t.Errorf("loaded model spec = %q", nm.Spec.Name)
	}
	if _, err := reg.Model("ep", hwsim.AMDOpteronK10()); err == nil {
		t.Error("nil-base registry served a pair it has no override for")
	}
	if _, err := reg.Space("ep"); err == nil {
		t.Error("nil-base registry served a Space")
	}
}

// TestStateHashTracksProfileState: equal profile state → equal hash;
// any bump → different hash. Snapshot compatibility rides on this.
func TestStateHashTracksProfileState(t *testing.T) {
	a := NewRegistry(testSuite(), Options{})
	b := NewRegistry(testSuite(), Options{})
	if a.StateHash() != b.StateHash() {
		t.Fatal("fresh registries must share a state hash")
	}
	base := a.StateHash()
	nm, err := testSuite().Model("ep", hwsim.ARMCortexA9())
	if err != nil {
		t.Fatal(err)
	}
	nm.Power.Idle *= 1.07
	if _, err := a.Install("ep", nm.Spec.Name, nm, "install"); err != nil {
		t.Fatal(err)
	}
	if a.StateHash() == base {
		t.Fatal("installing an override must change the state hash")
	}
	if _, err := b.Install("ep", nm.Spec.Name, nm, "install"); err != nil {
		t.Fatal(err)
	}
	if a.StateHash() != b.StateHash() {
		t.Fatal("identical installs must converge to the same state hash")
	}
}
