package calib

// The Registry makes profiles first-class versioned objects. It wraps
// the server's base model source, overlays refit models per
// (workload, node), and assigns every workload a monotonic profile
// version plus a content hash per override. The server resolves every
// model and cache key through it, so a version bump — an automatic
// refit, an operator Install, a snapshot load — atomically retires
// every cached table and memoized result computed under the old
// parameters: cache keys carry the version, the bump callback deletes
// the old version's entries, and no new request ever resolves to the
// retired version again.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
)

// ModelSource provides fitted two-type spaces per workload;
// *experiments.Suite implements it (structurally identical to the
// server's interface, declared here to keep calib import-cycle-free).
type ModelSource interface {
	Space(workload string) (cluster.Space, error)
}

// NodeModelSource provides per-type fitted models, as the generic
// N-type path needs. *experiments.Suite implements it.
type NodeModelSource interface {
	Model(workload string, spec hwsim.NodeSpec) (model.NodeModel, error)
}

// ErrUnknownNode marks a (workload, node) pair the base source cannot
// model. The server maps it to a 400.
var ErrUnknownNode = errors.New("calib: unknown node for this model source")

// Key identifies one calibration target.
type Key struct {
	Workload, Node string
}

// Entry is one installed profile override: a versioned, content-hashed
// model that supersedes the base fit for its pair.
type Entry struct {
	Workload string `json:"workload"`
	Node     string `json:"node"`
	// Version is the workload's profile version at install time
	// (monotonic per workload; version 1 is the base fit).
	Version uint64 `json:"version"`
	// Hash is the content hash of the model's canonical persisted form
	// (first 16 hex chars of its SHA-256).
	Hash string `json:"hash"`
	// Source records how the entry arrived: "refit", "install",
	// "snapshot", "fitmodel".
	Source string `json:"source"`
	// Quality is the refit's fit statistics, when the entry came from
	// one.
	Quality *Quality `json:"quality,omitempty"`

	model model.NodeModel
}

// Model returns the entry's node model.
func (e Entry) Model() model.NodeModel { return e.model }

// Status is one pair's row in GET /v1/profiles: the active profile's
// identity plus the drift tracker's state.
type Status struct {
	Workload string `json:"workload"`
	Node     string `json:"node"`
	Version  uint64 `json:"version"`
	// Hash is empty while the base fit is active.
	Hash string `json:"hash,omitempty"`
	// Source is "base" until an override is installed.
	Source string `json:"source"`
	// Samples is how many observations the bounded store holds.
	Samples int `json:"samples"`
	// Refits counts installed refits for the pair.
	Refits uint64 `json:"refits"`
	// Drift is the rolling mean relative prediction error of the active
	// model over the last DriftWindow samples.
	Drift   float64  `json:"drift"`
	Quality *Quality `json:"quality,omitempty"`
}

// BumpEvent describes one profile version bump, delivered to
// Options.OnBump after the registry lock is released.
type BumpEvent struct {
	Workload, Node string
	// OldVersion and NewVersion are the workload's versions around the
	// bump; cache keys carrying OldVersion are now unreachable.
	OldVersion, NewVersion uint64
	// OldGeneration and NewGeneration are the global profile generation
	// around the bump (the coarse key component of caches that cannot
	// see a workload, e.g. raw batch-item memoization).
	OldGeneration, NewGeneration uint64
	Hash                         string
	Source                       string
}

// Options tunes a Registry. Zero values select the defaults.
type Options struct {
	// RefitThreshold is the rolling mean relative error above which an
	// ingest triggers an automatic refit (default 0.1 = 10%).
	RefitThreshold float64
	// MaxSamples bounds each pair's sample store (default 256).
	MaxSamples int
	// MinRefitSamples is the fewest stored samples a refit may fit on
	// (default 8).
	MinRefitSamples int
	// DriftWindow is how many recent samples the rolling error covers
	// (default 32).
	DriftWindow int
	// OnBump observes version bumps (the server invalidates caches and
	// persists snapshots here). Called outside the registry lock.
	OnBump func(BumpEvent)
}

func (o Options) withDefaults() Options {
	if o.RefitThreshold <= 0 {
		o.RefitThreshold = 0.1
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 256
	}
	if o.MinRefitSamples <= 0 {
		o.MinRefitSamples = 8
	}
	if o.DriftWindow <= 0 {
		o.DriftWindow = 32
	}
	return o
}

// tracker is one pair's bounded sample store and rolling error window.
type tracker struct {
	samples []Sample
	// window holds the last DriftWindow samples' relative errors
	// against the ACTIVE model (recomputed on bump).
	window []float64
	refits uint64
}

func (t *tracker) drift() float64 {
	if len(t.window) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range t.window {
		sum += e
	}
	return sum / float64(len(t.window))
}

// Registry overlays versioned profile overrides on a base model source.
// Safe for concurrent use. The zero value is not usable; construct
// with NewRegistry.
type Registry struct {
	base  ModelSource
	nodes NodeModelSource // nil when base does not implement it
	opts  Options

	mu         sync.Mutex
	versions   map[string]uint64 // per workload; absent = 1
	generation uint64
	overrides  map[Key]*Entry
	trackers   map[Key]*tracker
}

// NewRegistry wraps base (nil is allowed: the registry then serves
// only installed overrides, as cmd/fitmodel's round-trip does).
func NewRegistry(base ModelSource, opts Options) *Registry {
	r := &Registry{
		base:       base,
		opts:       opts.withDefaults(),
		versions:   make(map[string]uint64),
		generation: 1,
		overrides:  make(map[Key]*Entry),
		trackers:   make(map[Key]*tracker),
	}
	if nms, ok := base.(NodeModelSource); ok {
		r.nodes = nms
	}
	return r
}

// Version returns the workload's active profile version (1 until a
// bump).
func (r *Registry) Version(workload string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.versionLocked(workload)
}

func (r *Registry) versionLocked(workload string) uint64 {
	if v, ok := r.versions[workload]; ok {
		return v
	}
	return 1
}

// Generation returns the global profile generation: 1 at start,
// incremented on every bump of any workload.
func (r *Registry) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.generation
}

// Space implements ModelSource: the base space with any overrides for
// its two node types applied.
func (r *Registry) Space(workload string) (cluster.Space, error) {
	if r.base == nil {
		return cluster.Space{}, fmt.Errorf("calib: no base model source")
	}
	sp, err := r.base.Space(workload)
	if err != nil {
		return cluster.Space{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.overrides[Key{workload, sp.ARM.Spec.Name}]; ok {
		sp.ARM = e.model
	}
	if e, ok := r.overrides[Key{workload, sp.AMD.Spec.Name}]; ok {
		sp.AMD = e.model
	}
	return sp, nil
}

// Model implements NodeModelSource: the override when one is
// installed, the base model otherwise.
func (r *Registry) Model(workload string, spec hwsim.NodeSpec) (model.NodeModel, error) {
	r.mu.Lock()
	if e, ok := r.overrides[Key{workload, spec.Name}]; ok {
		nm := e.model
		r.mu.Unlock()
		return nm, nil
	}
	r.mu.Unlock()
	if r.nodes != nil {
		return r.nodes.Model(workload, spec)
	}
	return r.baseModelBySpace(workload, spec.Name)
}

// activeLocked returns the pair's active model: override else base.
func (r *Registry) activeLocked(k Key) (model.NodeModel, error) {
	if e, ok := r.overrides[k]; ok {
		return e.model, nil
	}
	return r.baseModel(k.Workload, k.Node)
}

// baseModel resolves the base (pre-override) model for a pair.
func (r *Registry) baseModel(workload, node string) (model.NodeModel, error) {
	if r.nodes != nil {
		spec, err := hwsim.ByName(node)
		if err != nil {
			return model.NodeModel{}, fmt.Errorf("%w: %v", ErrUnknownNode, err)
		}
		return r.nodes.Model(workload, spec)
	}
	return r.baseModelBySpace(workload, node)
}

// baseModelBySpace matches node against the two-type space's specs —
// the fallback for base sources without per-spec models.
func (r *Registry) baseModelBySpace(workload, node string) (model.NodeModel, error) {
	if r.base == nil {
		return model.NodeModel{}, fmt.Errorf("%w: %q (no base model source)", ErrUnknownNode, node)
	}
	sp, err := r.base.Space(workload)
	if err != nil {
		return model.NodeModel{}, err
	}
	switch node {
	case sp.ARM.Spec.Name:
		return sp.ARM, nil
	case sp.AMD.Spec.Name:
		return sp.AMD, nil
	}
	return model.NodeModel{}, fmt.Errorf("%w: %q is not a type of %q's space", ErrUnknownNode, node, workload)
}

// IngestResult reports one Ingest call's outcome.
type IngestResult struct {
	// Accepted is how many samples entered the store this call; Stored
	// is the store's size after.
	Accepted int `json:"accepted"`
	Stored   int `json:"stored"`
	// DriftBefore and Drift are the rolling mean relative error before
	// and after any refit (equal when none ran).
	DriftBefore float64 `json:"drift_before"`
	Drift       float64 `json:"drift"`
	// Refit reports whether a refit was installed; RefitSkipped carries
	// the reason drift exceeded the threshold but nothing was installed
	// ("degenerate fit: ...", "unchanged").
	Refit        bool   `json:"refit"`
	RefitSkipped string `json:"refit_skipped,omitempty"`
	// Version and Hash identify the workload's active profile after the
	// call (Hash empty while the base fit is active for this pair).
	Version uint64 `json:"profile_version"`
	Hash    string `json:"hash,omitempty"`
	// Quality is the installed refit's fit statistics.
	Quality *Quality `json:"quality,omitempty"`
}

// Ingest appends samples to the pair's bounded store, updates the
// rolling drift window against the active model, and — when drift
// exceeds RefitThreshold with at least MinRefitSamples stored — refits
// from the base model and installs the result under a bumped version.
// A refit whose content hash equals the active override's is skipped
// ("unchanged"), so a drift plateau cannot churn versions. Samples the
// active model cannot evaluate answer ErrBadSample and nothing is
// stored.
func (r *Registry) Ingest(workload, node string, samples []Sample) (IngestResult, error) {
	var res IngestResult
	if len(samples) == 0 {
		return res, fmt.Errorf("%w: no samples", ErrBadSample)
	}
	r.mu.Lock()
	ev, err := func() (*BumpEvent, error) {
		k := Key{workload, node}
		active, err := r.activeLocked(k)
		if err != nil {
			return nil, err
		}
		// Validate the whole batch against the active model before
		// mutating anything, so a bad tail cannot leave a half-ingested
		// batch behind.
		errs := make([]float64, len(samples))
		for i, smp := range samples {
			e, err := relErr(active, smp)
			if err != nil {
				return nil, fmt.Errorf("samples[%d]: %w", i, err)
			}
			errs[i] = e
		}
		t := r.trackers[k]
		if t == nil {
			t = &tracker{}
			r.trackers[k] = t
		}
		t.samples = append(t.samples, samples...)
		if over := len(t.samples) - r.opts.MaxSamples; over > 0 {
			t.samples = append(t.samples[:0], t.samples[over:]...)
		}
		t.window = append(t.window, errs...)
		if over := len(t.window) - r.opts.DriftWindow; over > 0 {
			t.window = append(t.window[:0], t.window[over:]...)
		}
		res.Accepted = len(samples)
		res.Stored = len(t.samples)
		res.DriftBefore = t.drift()
		res.Drift = res.DriftBefore
		if cur, ok := r.overrides[k]; ok {
			res.Hash = cur.Hash
		}

		if res.DriftBefore <= r.opts.RefitThreshold || len(t.samples) < r.opts.MinRefitSamples {
			return nil, nil
		}
		// Drift crossed the threshold: refit from base on the stored
		// samples.
		base, err := r.baseModel(workload, node)
		if err != nil {
			return nil, err
		}
		refit, q, err := Refit(base, t.samples)
		if err != nil {
			// Degenerate data is a skip, not a request error: the
			// samples stay stored and a richer batch may succeed.
			res.RefitSkipped = err.Error()
			return nil, nil
		}
		hash, err := HashModel(refit)
		if err != nil {
			res.RefitSkipped = fmt.Sprintf("unhashable refit: %v", err)
			return nil, nil
		}
		if cur, ok := r.overrides[k]; ok && cur.Hash == hash {
			// The data still supports exactly the active override; a
			// version bump would invalidate every cache for nothing.
			res.RefitSkipped = "unchanged"
			return nil, nil
		}
		ev := r.installLocked(k, refit, hash, "refit", &q)
		t.refits++
		res.Refit = true
		res.Quality = &q
		res.Hash = hash
		// The window was measured against the old model; re-measure it
		// against the installed one so the post-refit drift gauge
		// reflects the new model's accuracy.
		tail := t.samples
		if len(tail) > r.opts.DriftWindow {
			tail = tail[len(tail)-r.opts.DriftWindow:]
		}
		t.window = t.window[:0]
		for _, smp := range tail {
			if e, err := relErr(refit, smp); err == nil {
				t.window = append(t.window, e)
			}
		}
		res.Drift = t.drift()
		return &ev, nil
	}()
	res.Version = r.versionLocked(workload)
	r.mu.Unlock()
	if err != nil {
		return res, err
	}
	if ev != nil && r.opts.OnBump != nil {
		r.opts.OnBump(*ev)
	}
	return res, nil
}

// installLocked installs an override and bumps the workload version
// and global generation. Caller holds r.mu.
func (r *Registry) installLocked(k Key, nm model.NodeModel, hash, source string, q *Quality) BumpEvent {
	oldV := r.versionLocked(k.Workload)
	newV := oldV + 1
	r.versions[k.Workload] = newV
	oldG := r.generation
	r.generation++
	r.overrides[k] = &Entry{
		Workload: k.Workload,
		Node:     k.Node,
		Version:  newV,
		Hash:     hash,
		Source:   source,
		Quality:  q,
		model:    nm,
	}
	return BumpEvent{
		Workload: k.Workload, Node: k.Node,
		OldVersion: oldV, NewVersion: newV,
		OldGeneration: oldG, NewGeneration: r.generation,
		Hash: hash, Source: source,
	}
}

// Install installs nm as the pair's active profile under a bumped
// version, as an operator push or a loaded fitmodel profile would. The
// model must be persistable (it is content-hashed through its
// canonical persisted form).
func (r *Registry) Install(workload, node string, nm model.NodeModel, source string) (Entry, error) {
	hash, err := HashModel(nm)
	if err != nil {
		return Entry{}, fmt.Errorf("calib: install: %w", err)
	}
	r.mu.Lock()
	ev := r.installLocked(Key{workload, node}, nm, hash, source, nil)
	e := *r.overrides[Key{workload, node}]
	r.mu.Unlock()
	if r.opts.OnBump != nil {
		r.opts.OnBump(ev)
	}
	return e, nil
}

// MaxDrift returns the worst rolling drift across all tracked pairs —
// the value the server exports as its drift gauge.
func (r *Registry) MaxDrift() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	worst := 0.0
	for _, t := range r.trackers {
		if d := t.drift(); d > worst {
			worst = d
		}
	}
	return worst
}

// Statuses returns one row per known pair (tracked, overridden or
// both), sorted by workload then node.
func (r *Registry) Statuses() []Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make(map[Key]bool)
	for k := range r.overrides {
		keys[k] = true
	}
	for k := range r.trackers {
		keys[k] = true
	}
	out := make([]Status, 0, len(keys))
	for k := range keys {
		st := Status{
			Workload: k.Workload,
			Node:     k.Node,
			Version:  r.versionLocked(k.Workload),
			Source:   "base",
		}
		if e, ok := r.overrides[k]; ok {
			st.Hash = e.Hash
			st.Source = e.Source
			st.Quality = e.Quality
		}
		if t, ok := r.trackers[k]; ok {
			st.Samples = len(t.samples)
			st.Refits = t.refits
			st.Drift = t.drift()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// StateHash returns a content hash (16 hex chars) of the registry's
// full profile state: every workload's active version plus every
// installed override's identity (workload, node, version, content
// hash). Two registries report the same StateHash exactly when every
// cache key either would mint resolves to the same model parameters, so
// cache snapshots are bound to it: a snapshot written under one state
// hash is rejected by a server in any other state rather than silently
// serving another profile's numbers.
func (r *Registry) StateHash() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	workloads := make([]string, 0, len(r.versions))
	for w := range r.versions {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	keys := make([]Key, 0, len(r.overrides))
	for k := range r.overrides {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Workload != keys[j].Workload {
			return keys[i].Workload < keys[j].Workload
		}
		return keys[i].Node < keys[j].Node
	})
	h := sha256.New()
	for _, w := range workloads {
		fmt.Fprintf(h, "v|%s|%d\n", w, r.versions[w])
	}
	for _, k := range keys {
		e := r.overrides[k]
		fmt.Fprintf(h, "o|%s|%s|%d|%s\n", k.Workload, k.Node, e.Version, e.Hash)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// Overrides returns the installed entries, sorted by workload then
// node (snapshot persistence order).
func (r *Registry) Overrides() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.overrides))
	for _, e := range r.overrides {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Node < out[j].Node
	})
	return out
}
