package calib

// Versioned profile snapshots: the single on-disk format shared by the
// daemon's -profile-snapshot persistence, cmd/fitmodel's output, and
// operator-pushed profiles. A snapshot is a JSON document carrying the
// workload version map and one entry per override, each embedding the
// model in internal/model's canonical persisted form plus the content
// hash of exactly those bytes — a tampered or corrupted entry fails
// the hash check at load and the whole load is rejected.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"heteromix/internal/model"
)

// SnapshotVersion is the snapshot format version.
const SnapshotVersion = 1

// HashModel returns the content hash of a model: the first 16 hex
// characters of the SHA-256 of its canonical persisted form. Two
// models hash equal exactly when they persist to the same bytes
// (model.Save is deterministic: sorted keys, fixed field order).
func HashModel(nm model.NodeModel) (string, error) {
	var buf bytes.Buffer
	if err := model.Save(&buf, nm); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8]), nil
}

// persistedEntry is one profile in wire form.
type persistedEntry struct {
	Workload string          `json:"workload"`
	Node     string          `json:"node"`
	Version  uint64          `json:"version"`
	Hash     string          `json:"hash"`
	Source   string          `json:"source"`
	Quality  *Quality        `json:"quality,omitempty"`
	Model    json.RawMessage `json:"model"`
}

// snapshot is the document.
type snapshot struct {
	Version          int               `json:"version"`
	WorkloadVersions map[string]uint64 `json:"workload_versions"`
	Profiles         []persistedEntry  `json:"profiles"`
}

// SaveSnapshot writes the registry's overrides and workload versions.
func (r *Registry) SaveSnapshot(w io.Writer) error {
	overrides := r.Overrides()
	r.mu.Lock()
	versions := make(map[string]uint64, len(r.versions))
	for k, v := range r.versions {
		versions[k] = v
	}
	r.mu.Unlock()
	doc := snapshot{
		Version:          SnapshotVersion,
		WorkloadVersions: versions,
		Profiles:         make([]persistedEntry, 0, len(overrides)),
	}
	for _, e := range overrides {
		var buf bytes.Buffer
		if err := model.Save(&buf, e.model); err != nil {
			return fmt.Errorf("calib: persisting %s/%s: %w", e.Workload, e.Node, err)
		}
		doc.Profiles = append(doc.Profiles, persistedEntry{
			Workload: e.Workload,
			Node:     e.Node,
			Version:  e.Version,
			Hash:     e.Hash,
			Source:   e.Source,
			Quality:  e.Quality,
			Model:    json.RawMessage(buf.Bytes()),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteProfile writes a single-profile snapshot for one fitted model —
// cmd/fitmodel's output format. The entry carries version 1 (it is the
// pair's first fit) and the content hash of the embedded model.
func WriteProfile(w io.Writer, workload, node string, nm model.NodeModel, source string) error {
	hash, err := HashModel(nm)
	if err != nil {
		return fmt.Errorf("calib: %w", err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf, nm); err != nil {
		return fmt.Errorf("calib: %w", err)
	}
	doc := snapshot{
		Version:          SnapshotVersion,
		WorkloadVersions: map[string]uint64{workload: 1},
		Profiles: []persistedEntry{{
			Workload: workload,
			Node:     node,
			Version:  1,
			Hash:     hash,
			Source:   source,
			Model:    json.RawMessage(buf.Bytes()),
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadSnapshot installs a snapshot's profiles as overrides and adopts
// its workload versions (keeping the higher side on conflict). Every
// entry's hash is recomputed from the decoded model's canonical form
// and must match, so a corrupted or hand-edited profile cannot load
// silently. Loading does not fire OnBump: it runs at startup, before
// any cache holds entries to invalidate.
func (r *Registry) LoadSnapshot(rd io.Reader) error {
	var doc snapshot
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("calib: decoding snapshot: %w", err)
	}
	if doc.Version != SnapshotVersion {
		return fmt.Errorf("calib: unsupported snapshot version %d (want %d)", doc.Version, SnapshotVersion)
	}
	type loaded struct {
		k    Key
		e    *Entry
		vers uint64
	}
	entries := make([]loaded, 0, len(doc.Profiles))
	for i, p := range doc.Profiles {
		if p.Workload == "" || p.Node == "" {
			return fmt.Errorf("calib: profiles[%d]: workload and node are required", i)
		}
		nm, err := model.Load(bytes.NewReader(p.Model))
		if err != nil {
			return fmt.Errorf("calib: profiles[%d] (%s/%s): %w", i, p.Workload, p.Node, err)
		}
		hash, err := HashModel(nm)
		if err != nil {
			return fmt.Errorf("calib: profiles[%d] (%s/%s): %w", i, p.Workload, p.Node, err)
		}
		if hash != p.Hash {
			return fmt.Errorf("calib: profiles[%d] (%s/%s): content hash %s does not match recorded %s",
				i, p.Workload, p.Node, hash, p.Hash)
		}
		entries = append(entries, loaded{
			k: Key{p.Workload, p.Node},
			e: &Entry{
				Workload: p.Workload,
				Node:     p.Node,
				Version:  p.Version,
				Hash:     p.Hash,
				Source:   "snapshot",
				Quality:  p.Quality,
				model:    nm,
			},
			vers: p.Version,
		})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for wl, v := range doc.WorkloadVersions {
		if v > r.versionLocked(wl) {
			r.versions[wl] = v
		}
	}
	for _, l := range entries {
		r.overrides[l.k] = l.e
		if l.vers > r.versionLocked(l.k.Workload) {
			r.versions[l.k.Workload] = l.vers
		}
	}
	return nil
}

// SaveSnapshotFile persists the snapshot atomically (temp file +
// rename), so a crash mid-write can never leave a half-written
// snapshot for the next start to choke on.
func (r *Registry) SaveSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".profile-snapshot-*")
	if err != nil {
		return fmt.Errorf("calib: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := r.SaveSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("calib: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("calib: %w", err)
	}
	return nil
}

// LoadSnapshotFile loads path; a missing file answers os.ErrNotExist
// (callers treat first start as empty).
func (r *Registry) LoadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.LoadSnapshot(f)
}
