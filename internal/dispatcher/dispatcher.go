// Package dispatcher closes the loop on the paper's §IV-E analysis with
// an end-to-end discrete-event simulation of a datacenter serving tier:
// jobs arrive as a Poisson stream at a dispatcher, queue FIFO, and are
// serviced by a cluster configuration chosen from the energy-deadline
// Pareto frontier; job energy and inter-job idle energy are integrated
// over the observation window.
//
// Where internal/queueing validates the M/D/1 *formulas*, this package
// validates the *provisioning decision*: pick a configuration with the
// analytical model, simulate a day of traffic against it, and check that
// the measured response times and energy match what the closed forms
// promised (see experiments.EndToEndValidation).
package dispatcher

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"heteromix/internal/units"
)

// Cluster abstracts the serving tier as the three quantities the
// analytical model predicts for a configuration: deterministic per-job
// service time, energy per serviced job (including the nodes' idle draw
// during service), and the powered nodes' idle power between jobs.
type Cluster struct {
	Service   units.Seconds
	PerJob    units.Joule
	IdlePower units.Watt
}

// Validate checks the cluster parameters.
func (c Cluster) Validate() error {
	if c.Service <= 0 {
		return fmt.Errorf("dispatcher: service time %v", c.Service)
	}
	if c.PerJob < 0 || c.IdlePower < 0 {
		return fmt.Errorf("dispatcher: negative energy or power")
	}
	return nil
}

// Options controls a simulation.
type Options struct {
	// Window is the observation period.
	Window units.Seconds
	// Seed drives the Poisson arrivals.
	Seed int64
}

// Result summarizes one simulated window.
type Result struct {
	// JobsArrived counts arrivals inside the window; JobsCompleted those
	// whose service finished inside it.
	JobsArrived   int
	JobsCompleted int
	// MeanResponse and P95Response summarize completed jobs' response
	// times (queueing wait plus service).
	MeanResponse units.Seconds
	P95Response  units.Seconds
	// Energy is the integrated window energy: service energy (prorated
	// for jobs straddling the window edge) plus idle energy.
	Energy units.Joule
	// BusyFraction is the server's utilization over the window.
	BusyFraction float64
	// MaxBacklog is the deepest queue observed.
	MaxBacklog int
}

// Run simulates the cluster serving a Poisson stream at arrivalRate jobs
// per second for the window.
func Run(c Cluster, arrivalRate float64, opts Options) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if arrivalRate <= 0 || math.IsNaN(arrivalRate) || math.IsInf(arrivalRate, 0) {
		return Result{}, fmt.Errorf("dispatcher: arrival rate %v", arrivalRate)
	}
	if opts.Window <= 0 {
		return Result{}, fmt.Errorf("dispatcher: window %v", opts.Window)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	window := float64(opts.Window)
	t := float64(c.Service)
	perJobPower := float64(c.PerJob) / t // draw while serving

	var (
		clock      float64
		serverFree float64
		responses  []float64
		busySec    float64
		res        Result
	)
	// Pending departure times for backlog tracking.
	var departures []float64

	for {
		clock += rng.ExpFloat64() / arrivalRate
		if clock >= window {
			break
		}
		res.JobsArrived++
		start := clock
		if serverFree > start {
			start = serverFree
		}
		finish := start + t
		serverFree = finish

		live := departures[:0]
		for _, d := range departures {
			if d > clock {
				live = append(live, d)
			}
		}
		departures = append(live, finish)
		if backlog := len(departures) - 1; backlog > res.MaxBacklog {
			res.MaxBacklog = backlog
		}

		// Busy time and service energy inside the window, prorated for
		// jobs that straddle the window edge.
		servedInWindow := math.Min(finish, window) - math.Min(start, window)
		if servedInWindow > 0 {
			busySec += servedInWindow
		}
		if finish <= window {
			res.JobsCompleted++
			responses = append(responses, finish-clock)
		}
	}

	res.BusyFraction = busySec / window
	idleSec := window - busySec
	if idleSec < 0 {
		idleSec = 0
	}
	res.Energy = units.Joule(perJobPower*busySec + float64(c.IdlePower)*idleSec)

	if len(responses) > 0 {
		sum := 0.0
		for _, r := range responses {
			sum += r
		}
		res.MeanResponse = units.Seconds(sum / float64(len(responses)))
		sort.Float64s(responses)
		idx := int(0.95 * float64(len(responses)-1))
		res.P95Response = units.Seconds(responses[idx])
	}
	return res, nil
}

// Provision selects, from candidate clusters, the one meeting a mean-
// response SLO at the lowest expected window energy under M/D/1, and
// returns its index. It mirrors the provisioning loop a downstream user
// would write over the model's configuration points; Simulate then
// verifies the choice empirically.
func Provision(candidates []Cluster, arrivalRate float64, slo units.Seconds, window units.Seconds) (int, error) {
	if len(candidates) == 0 {
		return -1, fmt.Errorf("dispatcher: no candidates")
	}
	best := -1
	var bestEnergy float64
	for i, c := range candidates {
		if err := c.Validate(); err != nil {
			return -1, fmt.Errorf("dispatcher: candidate %d: %w", i, err)
		}
		rho := arrivalRate * float64(c.Service)
		if rho >= 1 {
			continue
		}
		wq := rho * float64(c.Service) / (2 * (1 - rho))
		if units.Seconds(wq)+c.Service > slo {
			continue
		}
		jobs := arrivalRate * float64(window)
		energy := jobs*float64(c.PerJob) + float64(c.IdlePower)*float64(window)*(1-rho)
		if best == -1 || energy < bestEnergy {
			best, bestEnergy = i, energy
		}
	}
	if best == -1 {
		return -1, fmt.Errorf("dispatcher: no candidate meets the SLO %v at %v jobs/s", slo, arrivalRate)
	}
	return best, nil
}
