package dispatcher

import (
	"sync"
	"testing"

	"heteromix/internal/cluster"
	"heteromix/internal/faults"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/workloads"
)

var (
	policyModelsMu sync.Mutex
	policyModels   = map[string]model.NodeModel{}
)

func policyModel(t *testing.T, spec hwsim.NodeSpec) model.NodeModel {
	t.Helper()
	policyModelsMu.Lock()
	defer policyModelsMu.Unlock()
	if nm, ok := policyModels[spec.Name]; ok {
		return nm
	}
	w, err := workloads.ByName("ep")
	if err != nil {
		t.Fatal(err)
	}
	nm, err := model.Build(spec, w, model.BuildOptions{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	policyModels[spec.Name] = nm
	return nm
}

// policyGroups builds a 4 ARM + 2 AMD configuration on the EP workload.
func policyGroups(t *testing.T) []cluster.Group {
	t.Helper()
	arm := policyModel(t, hwsim.ARMCortexA9())
	amd := policyModel(t, hwsim.AMDOpteronK10())
	return []cluster.Group{
		{Model: arm, Nodes: 4, Config: maxConfig(arm.Spec), NeedsSwitch: true},
		{Model: amd, Nodes: 2, Config: maxConfig(amd.Spec)},
	}
}

func maxConfig(spec hwsim.NodeSpec) hwsim.Config {
	return hwsim.Config{Cores: spec.Cores, Frequency: spec.FMax()}
}

func TestComparePoliciesTradeoffs(t *testing.T) {
	groups := policyGroups(t)
	const w = 50e6
	base, err := cluster.Evaluate(groups, w)
	if err != nil {
		t.Fatal(err)
	}
	// One late permanent crash in each group: the classic case where
	// checkpointing pays off.
	plan := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 0, Kind: faults.Crash, At: base.Time * 3 / 4},
		{Group: 1, Node: 0, Kind: faults.Crash, At: base.Time * 3 / 4},
	}}
	out, err := ComparePolicies(groups, w, plan, PolicyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(out))
	}
	byPolicy := map[RecoveryPolicy]PolicyOutcome{}
	for _, o := range out {
		byPolicy[o.Policy] = o
		if !o.Completed {
			t.Fatalf("%s did not complete", o.Policy)
		}
		if o.Overhead < 1 {
			t.Errorf("%s overhead %v < 1", o.Policy, o.Overhead)
		}
	}
	fs, cp, ov := byPolicy[FailStop], byPolicy[CheckpointRestart], byPolicy[Overprovision]

	// Checkpointing bounds the loss for a late crash, so it recovers
	// faster and wastes less work than fail-stop.
	if cp.Result.Time >= fs.Result.Time {
		t.Errorf("checkpoint-restart time %v not below fail-stop %v", cp.Result.Time, fs.Result.Time)
	}
	if cp.Result.LostWork >= fs.Result.LostWork {
		t.Errorf("checkpoint-restart lost %v work, fail-stop %v", cp.Result.LostWork, fs.Result.LostWork)
	}
	if cp.Result.Checkpoints == 0 {
		t.Error("checkpoint-restart took no checkpoints")
	}
	// Overprovision has more capacity, so it finishes faster than
	// fail-stop on the same faults.
	if ov.Result.Time >= fs.Result.Time {
		t.Errorf("overprovision time %v not below fail-stop %v", ov.Result.Time, fs.Result.Time)
	}
	for gi, g := range groups {
		if ov.Result.Survivors[gi] <= g.Nodes-1 {
			t.Errorf("group %d: overprovision survivors %d should exceed faulted original %d",
				gi, ov.Result.Survivors[gi], g.Nodes-1)
		}
	}
}

func TestComparePoliciesClusterDeath(t *testing.T) {
	groups := policyGroups(t)[1:] // AMD group only, 2 nodes
	const w = 50e6
	base, err := cluster.Evaluate(groups, w)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 0, Kind: faults.Crash, At: base.Time / 4},
		{Group: 0, Node: 1, Kind: faults.Crash, At: base.Time / 4},
	}}
	out, err := ComparePolicies(groups, w, plan, PolicyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		switch o.Policy {
		case Overprovision:
			if !o.Completed {
				t.Error("overprovision should survive losing all original nodes")
			}
		default:
			if o.Completed {
				t.Errorf("%s completed despite total loss", o.Policy)
			}
		}
	}
}

func TestComparePoliciesValidation(t *testing.T) {
	groups := policyGroups(t)
	if _, err := ComparePolicies(groups, 50e6, faults.Plan{}, PolicyOptions{SpareFraction: -1}); err == nil {
		t.Error("negative spare fraction accepted")
	}
	if _, err := ComparePolicies(nil, 50e6, faults.Plan{}, PolicyOptions{}); err == nil {
		t.Error("empty groups accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[RecoveryPolicy]string{
		FailStop: "fail-stop", CheckpointRestart: "checkpoint-restart",
		Overprovision: "overprovision", RecoveryPolicy(7): "RecoveryPolicy(7)",
	} {
		if got := p.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(p), got, want)
		}
	}
}
