package dispatcher

import (
	"fmt"
	"math/rand"

	"heteromix/internal/units"
)

// This file explores a natural extension of the paper's analysis: when
// jobs carry *different* service-time deadlines, a static cluster sized
// for the tightest class wastes energy on the relaxed traffic, while an
// adaptive dispatcher that re-selects a Pareto-frontier configuration
// per job (powering unused nodes off between jobs, as the paper's §IV-E
// assumes is possible) rides the sweet region: each job pays only the
// energy its own deadline demands. CompareAdaptive quantifies the gap.

// ConfigChoice is one candidate configuration: a point from the
// energy-deadline Pareto frontier, reduced to the two numbers the
// decision needs.
type ConfigChoice struct {
	// Service is the configuration's deterministic job service time.
	Service units.Seconds
	// Energy is the configuration's energy per job.
	Energy units.Joule
}

// JobClass is one class of traffic.
type JobClass struct {
	// Deadline is the class's per-job service-time deadline.
	Deadline units.Seconds
	// Weight is the class's share of traffic (weights are normalized).
	Weight float64
}

// AdaptiveResult compares the two policies over a job sample.
type AdaptiveResult struct {
	Jobs int
	// StaticEnergy is the total energy when every job runs on the single
	// cheapest configuration that meets the *tightest* class deadline.
	StaticEnergy units.Joule
	// AdaptiveEnergy is the total when each job runs on the cheapest
	// configuration meeting its *own* deadline.
	AdaptiveEnergy units.Joule
	// SavingsPercent is the relative reduction.
	SavingsPercent float64
	// StaticChoice indexes the static policy's configuration.
	StaticChoice int
}

// cheapestMeeting returns the index of the cheapest choice whose service
// time fits the deadline, or -1.
func cheapestMeeting(choices []ConfigChoice, deadline units.Seconds) int {
	best := -1
	for i, c := range choices {
		if c.Service > deadline {
			continue
		}
		if best == -1 || c.Energy < choices[best].Energy {
			best = i
		}
	}
	return best
}

// CompareAdaptive draws jobs from the class mixture and totals the energy
// under both policies. Every choice must come from a Pareto frontier for
// the comparison to be meaningful, but the function only requires that
// each class's deadline is met by at least one choice.
func CompareAdaptive(choices []ConfigChoice, classes []JobClass, jobs int, seed int64) (AdaptiveResult, error) {
	if len(choices) == 0 {
		return AdaptiveResult{}, fmt.Errorf("dispatcher: no configuration choices")
	}
	if len(classes) == 0 {
		return AdaptiveResult{}, fmt.Errorf("dispatcher: no job classes")
	}
	if jobs <= 0 {
		return AdaptiveResult{}, fmt.Errorf("dispatcher: job count %d", jobs)
	}
	for i, c := range choices {
		if c.Service <= 0 || c.Energy <= 0 {
			return AdaptiveResult{}, fmt.Errorf("dispatcher: choice %d invalid (%v, %v)", i, c.Service, c.Energy)
		}
	}
	totalWeight := 0.0
	tightest := classes[0].Deadline
	perClass := make([]int, len(classes))
	for i, cl := range classes {
		if cl.Deadline <= 0 || cl.Weight <= 0 {
			return AdaptiveResult{}, fmt.Errorf("dispatcher: class %d invalid", i)
		}
		totalWeight += cl.Weight
		if cl.Deadline < tightest {
			tightest = cl.Deadline
		}
		perClass[i] = cheapestMeeting(choices, cl.Deadline)
		if perClass[i] == -1 {
			return AdaptiveResult{}, fmt.Errorf("dispatcher: no choice meets class %d deadline %v", i, cl.Deadline)
		}
	}
	static := cheapestMeeting(choices, tightest)
	if static == -1 {
		return AdaptiveResult{}, fmt.Errorf("dispatcher: no choice meets the tightest deadline %v", tightest)
	}

	rng := rand.New(rand.NewSource(seed))
	res := AdaptiveResult{Jobs: jobs, StaticChoice: static}
	for j := 0; j < jobs; j++ {
		// Sample a class by weight.
		u := rng.Float64() * totalWeight
		ci := 0
		for i, cl := range classes {
			if u < cl.Weight {
				ci = i
				break
			}
			u -= cl.Weight
			ci = i
		}
		res.StaticEnergy += choices[static].Energy
		res.AdaptiveEnergy += choices[perClass[ci]].Energy
	}
	if res.StaticEnergy > 0 {
		res.SavingsPercent = (1 - float64(res.AdaptiveEnergy)/float64(res.StaticEnergy)) * 100
	}
	return res, nil
}
