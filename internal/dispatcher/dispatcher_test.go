package dispatcher

import (
	"math"
	"testing"

	"heteromix/internal/queueing"
	"heteromix/internal/units"
)

func testCluster() Cluster {
	return Cluster{Service: 0.05, PerJob: 2, IdlePower: 10}
}

func TestRunValidation(t *testing.T) {
	c := testCluster()
	if _, err := Run(Cluster{}, 1, Options{Window: 10}); err == nil {
		t.Error("invalid cluster should error")
	}
	if _, err := Run(Cluster{Service: 1, PerJob: -1}, 1, Options{Window: 10}); err == nil {
		t.Error("negative energy should error")
	}
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Run(c, rate, Options{Window: 10}); err == nil {
			t.Errorf("rate %v should error", rate)
		}
	}
	if _, err := Run(c, 1, Options{Window: 0}); err == nil {
		t.Error("zero window should error")
	}
}

func TestRunDeterministic(t *testing.T) {
	c := testCluster()
	a, err := Run(c, 5, Options{Window: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, 5, Options{Window: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce")
	}
}

// The simulated mean response converges to the M/D/1 closed form, and
// the simulated energy to the analytic window energy.
func TestRunMatchesMD1(t *testing.T) {
	c := testCluster()
	for _, rho := range []float64{0.1, 0.5, 0.8} {
		rate := rho / float64(c.Service)
		q := queueing.MD1{ArrivalRate: rate, ServiceTime: c.Service}
		window := units.Seconds(5000) // long window for tight statistics
		sim, err := Run(c, rate, Options{Window: window, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		wantResp := float64(q.MeanResponse())
		if rel := math.Abs(float64(sim.MeanResponse)-wantResp) / wantResp; rel > 0.1 {
			t.Errorf("rho=%v: response %v vs analytic %v (rel %v)",
				rho, sim.MeanResponse, q.MeanResponse(), rel)
		}
		wantE, err := q.EnergyOverWindow(window, c.PerJob, c.IdlePower)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(float64(sim.Energy-wantE)) / float64(wantE); rel > 0.05 {
			t.Errorf("rho=%v: energy %v vs analytic %v (rel %v)", rho, sim.Energy, wantE, rel)
		}
		if math.Abs(sim.BusyFraction-rho) > 0.05 {
			t.Errorf("rho=%v: busy fraction %v", rho, sim.BusyFraction)
		}
	}
}

func TestRunP95AboveMean(t *testing.T) {
	c := testCluster()
	sim, err := Run(c, 16, Options{Window: 1000, Seed: 1}) // rho = 0.8
	if err != nil {
		t.Fatal(err)
	}
	if sim.P95Response < sim.MeanResponse {
		t.Errorf("p95 %v below mean %v", sim.P95Response, sim.MeanResponse)
	}
	if sim.MaxBacklog < 2 {
		t.Errorf("max backlog %d, want queue buildup at rho 0.8", sim.MaxBacklog)
	}
}

func TestRunCountsStraddlingJobs(t *testing.T) {
	// With service longer than the window, arrived != completed and the
	// busy fraction still stays within [0, 1].
	c := Cluster{Service: 30, PerJob: 60, IdlePower: 1}
	sim, err := Run(c, 0.5, Options{Window: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sim.JobsCompleted != 0 {
		t.Errorf("no job should complete inside a 10s window with 30s service, got %d", sim.JobsCompleted)
	}
	if sim.BusyFraction < 0 || sim.BusyFraction > 1 {
		t.Errorf("busy fraction %v out of range", sim.BusyFraction)
	}
}

func TestProvisionPicksCheapestFeasible(t *testing.T) {
	// Candidate 0: fast and hungry; 1: meets SLO cheaply; 2: too slow.
	candidates := []Cluster{
		{Service: 0.02, PerJob: 10, IdlePower: 100},
		{Service: 0.08, PerJob: 3, IdlePower: 10},
		{Service: 0.50, PerJob: 1, IdlePower: 1},
	}
	idx, err := Provision(candidates, 2, 0.15, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("provisioned candidate %d, want 1", idx)
	}
}

func TestProvisionErrors(t *testing.T) {
	if _, err := Provision(nil, 1, 0.1, 100); err == nil {
		t.Error("no candidates should error")
	}
	slow := []Cluster{{Service: 10, PerJob: 1, IdlePower: 1}}
	if _, err := Provision(slow, 1, 0.1, 100); err == nil {
		t.Error("infeasible SLO should error")
	}
	bad := []Cluster{{Service: 0}}
	if _, err := Provision(bad, 1, 0.1, 100); err == nil {
		t.Error("invalid candidate should error")
	}
}

// Provisioned choices hold up empirically: simulate the chosen cluster
// and verify the SLO is met.
func TestProvisionThenSimulate(t *testing.T) {
	candidates := []Cluster{
		{Service: 0.02, PerJob: 10, IdlePower: 100},
		{Service: 0.08, PerJob: 3, IdlePower: 10},
	}
	rate := 4.0
	slo := units.Seconds(0.2)
	idx, err := Provision(candidates, rate, slo, 3600)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(candidates[idx], rate, Options{Window: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sim.MeanResponse > slo {
		t.Errorf("simulated mean response %v violates SLO %v", sim.MeanResponse, slo)
	}
}

func BenchmarkDispatcherRun(b *testing.B) {
	c := testCluster()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, 10, Options{Window: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
