package dispatcher

import (
	"testing"
	"testing/quick"

	"heteromix/internal/units"
)

// A tiny frontier: fast/expensive, medium, slow/cheap.
func frontierChoices() []ConfigChoice {
	return []ConfigChoice{
		{Service: 0.03, Energy: 30},
		{Service: 0.10, Energy: 20},
		{Service: 0.40, Energy: 13},
	}
}

func TestCompareAdaptiveSavesOnMixedDeadlines(t *testing.T) {
	classes := []JobClass{
		{Deadline: 0.05, Weight: 0.2}, // tight: needs the 30 J config
		{Deadline: 0.50, Weight: 0.8}, // relaxed: happy with 13 J
	}
	res, err := CompareAdaptive(frontierChoices(), classes, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticChoice != 0 {
		t.Errorf("static choice %d, want 0 (only the fast config meets 50 ms)", res.StaticChoice)
	}
	// Static pays 30 J per job; adaptive pays 30 J for ~20% and 13 J for
	// ~80%: expected ~16.4 J/job, a ~45% saving.
	if res.SavingsPercent < 35 || res.SavingsPercent > 55 {
		t.Errorf("savings = %.1f%%, want ~45%%", res.SavingsPercent)
	}
	if res.AdaptiveEnergy >= res.StaticEnergy {
		t.Error("adaptive should never cost more than static")
	}
}

func TestCompareAdaptiveUniformDeadlinesNoSavings(t *testing.T) {
	classes := []JobClass{{Deadline: 0.05, Weight: 1}}
	res, err := CompareAdaptive(frontierChoices(), classes, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingsPercent != 0 {
		t.Errorf("single-class traffic should save nothing, got %.1f%%", res.SavingsPercent)
	}
}

// Adaptive never exceeds static for any class mixture.
func TestCompareAdaptiveNeverWorse(t *testing.T) {
	f := func(seed int64, w1, w2 uint8, d1, d2 uint16) bool {
		classes := []JobClass{
			{Deadline: units.Seconds(0.03 + float64(d1%500)/1000), Weight: float64(w1%10) + 1},
			{Deadline: units.Seconds(0.03 + float64(d2%500)/1000), Weight: float64(w2%10) + 1},
		}
		res, err := CompareAdaptive(frontierChoices(), classes, 500, seed)
		if err != nil {
			return true // some deadlines below 30 ms are infeasible
		}
		return res.AdaptiveEnergy <= res.StaticEnergy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAdaptiveErrors(t *testing.T) {
	good := frontierChoices()
	classes := []JobClass{{Deadline: 0.1, Weight: 1}}
	if _, err := CompareAdaptive(nil, classes, 100, 1); err == nil {
		t.Error("no choices should error")
	}
	if _, err := CompareAdaptive(good, nil, 100, 1); err == nil {
		t.Error("no classes should error")
	}
	if _, err := CompareAdaptive(good, classes, 0, 1); err == nil {
		t.Error("zero jobs should error")
	}
	if _, err := CompareAdaptive(good, []JobClass{{Deadline: 0.001, Weight: 1}}, 100, 1); err == nil {
		t.Error("infeasible deadline should error")
	}
	if _, err := CompareAdaptive(good, []JobClass{{Deadline: 0.1, Weight: -1}}, 100, 1); err == nil {
		t.Error("negative weight should error")
	}
	bad := []ConfigChoice{{Service: 0, Energy: 1}}
	if _, err := CompareAdaptive(bad, classes, 100, 1); err == nil {
		t.Error("invalid choice should error")
	}
}

func TestCompareAdaptiveDeterministic(t *testing.T) {
	classes := []JobClass{
		{Deadline: 0.05, Weight: 1},
		{Deadline: 0.50, Weight: 1},
	}
	a, err := CompareAdaptive(frontierChoices(), classes, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareAdaptive(frontierChoices(), classes, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce")
	}
}
