package dispatcher

// Recovery-policy comparison on top of cluster.EvaluateDegraded: given a
// configuration and a fault plan, how do the three classic answers to
// node failure stack up on completion time and energy?
//
//   - FailStop: do nothing in advance. A permanent crash loses the dead
//     node's whole contribution and the survivors recompute it.
//   - CheckpointRestart: pause periodically to checkpoint, bounding a
//     crash's loss to one interval at the price of the pauses.
//   - Overprovision: provision spare nodes up front. The same faults
//     hurt proportionally less, but every node draws power for the whole
//     job — the paper's energy accounting makes the overhead explicit.
//
// ComparePolicies evaluates all three against the *same* plan so the
// trade-off is apples to apples, which is what a provisioning loop needs
// when it prices resilience into the energy-minimal configuration.

import (
	"errors"
	"fmt"
	"math"

	"heteromix/internal/cluster"
	"heteromix/internal/faults"
	"heteromix/internal/units"
)

// RecoveryPolicy names one failure-handling strategy.
type RecoveryPolicy int

const (
	// FailStop rebalances to the survivors and recomputes lost work.
	FailStop RecoveryPolicy = iota
	// CheckpointRestart checkpoints periodically so a crash loses at
	// most one interval's work.
	CheckpointRestart
	// Overprovision adds spare nodes up front and otherwise fail-stops.
	Overprovision
)

// String names the policy.
func (p RecoveryPolicy) String() string {
	switch p {
	case FailStop:
		return "fail-stop"
	case CheckpointRestart:
		return "checkpoint-restart"
	case Overprovision:
		return "overprovision"
	default:
		return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
	}
}

// PolicyOptions tunes the non-trivial policies.
type PolicyOptions struct {
	// CheckpointEvery and CheckpointCost parameterize CheckpointRestart.
	// Zero CheckpointEvery defaults to a tenth of the baseline time with
	// a cost of 1% of the interval.
	CheckpointEvery units.Seconds
	CheckpointCost  units.Seconds
	// SpareFraction is the extra capacity Overprovision adds to every
	// group (each group's node count is scaled by 1+SpareFraction,
	// rounded up, at least one spare). Zero defaults to 0.25.
	SpareFraction float64
}

func (o PolicyOptions) validate() error {
	if o.SpareFraction < 0 || math.IsNaN(o.SpareFraction) || math.IsInf(o.SpareFraction, 0) {
		return fmt.Errorf("dispatcher: spare fraction %v must be non-negative and finite", o.SpareFraction)
	}
	return nil
}

// PolicyOutcome is one policy's prediction under the shared fault plan.
type PolicyOutcome struct {
	Policy RecoveryPolicy
	// Completed is false when the plan killed the whole cluster before
	// the job finished (Result is zero and only Policy is meaningful).
	Completed bool
	// Result is the failure-aware evaluation for this policy.
	Result cluster.DegradedEvaluation
	// Overhead is this policy's energy relative to the fault-free
	// baseline of its own provisioning (>= 1 when completed).
	Overhead float64
}

// ComparePolicies evaluates the same fault plan under each policy and
// returns the outcomes indexed by RecoveryPolicy. The plan addresses the
// original groups; spares added by Overprovision are never faulted,
// which models the spares living outside the blast radius the plan
// describes.
func ComparePolicies(groups []cluster.Group, w float64, plan faults.Plan, opts PolicyOptions) ([]PolicyOutcome, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	base, err := cluster.Evaluate(groups, w)
	if err != nil {
		return nil, err
	}

	every, cost := opts.CheckpointEvery, opts.CheckpointCost
	if every == 0 {
		every = base.Time / 10
		if cost == 0 {
			cost = every / 100
		}
	}
	spare := opts.SpareFraction
	if spare == 0 {
		spare = 0.25
	}
	spared := make([]cluster.Group, len(groups))
	for i, g := range groups {
		spared[i] = g
		if g.Nodes > 0 {
			extra := int(math.Ceil(float64(g.Nodes) * spare))
			if extra < 1 {
				extra = 1
			}
			spared[i].Nodes = g.Nodes + extra
		}
	}

	runs := []struct {
		policy RecoveryPolicy
		groups []cluster.Group
		opts   cluster.DegradedOptions
	}{
		{FailStop, groups, cluster.DegradedOptions{}},
		{CheckpointRestart, groups, cluster.DegradedOptions{CheckpointEvery: every, CheckpointCost: cost}},
		{Overprovision, spared, cluster.DegradedOptions{}},
	}
	out := make([]PolicyOutcome, len(runs))
	for i, r := range runs {
		out[i].Policy = r.policy
		ev, err := cluster.EvaluateDegraded(r.groups, w, plan, r.opts)
		if errors.Is(err, cluster.ErrClusterDied) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("dispatcher: %s: %w", r.policy, err)
		}
		out[i].Completed = true
		out[i].Result = ev
		if ev.Baseline.Energy > 0 {
			out[i].Overhead = float64(ev.Energy) / float64(ev.Baseline.Energy)
		}
	}
	return out, nil
}
