// Package snapshot is the serving stack's cold-start eliminator: a
// compact, versioned binary format for everything a warm heteromixd has
// that a fresh one lacks — compiled kernel tables (two-type and generic
// mixed-radix) and hot result-cache bodies. A replica that loads a
// sibling's snapshot before its listener opens serves its first predict
// at warm-path latency instead of paying the model walks and table
// builds a cold start costs.
//
// # Wire format
//
// An 8-byte magic, four length-prefixed sections in fixed order (meta,
// two-type tables, generic tables, results), then a footer carrying the
// SHA-256 of everything before it:
//
//	magic "HMXSNAP1"
//	section := id(1) | uvarint(len(payload)) | payload | crc32-IEEE(payload)
//	footer  := 0xFF | sha256(all preceding bytes)
//
// Within payloads, counts and small integers are varint-packed; float
// coefficients travel as fixed 8-byte IEEE-754 bit patterns
// (little-endian), so decode(encode(x)) is bit-identical — the same
// contract cluster's dumps give the evaluation kernels.
//
// # Validity
//
// A snapshot is only loadable into a server whose state would mint the
// exact cache keys it carries. Meta binds the file to the writer's
// profile state hash (every workload's version + every override's
// content hash), the model-source fingerprint (seed, noise, node types)
// and the build version; Meta.Compatible rejects any mismatch with a
// typed *IncompatibleError rather than letting one profile's numbers
// serve under another's keys. Decode itself never panics and never
// returns a partially-decoded snapshot: any truncation, bit flip or
// structural lie yields a typed error (ErrTruncated, ErrChecksum,
// ErrFileHash, ErrCorrupt, ...) and a nil snapshot.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"heteromix/internal/cluster"
)

// FormatVersion is bumped on any wire-format change; a mismatch is an
// ErrFormat, never a best-effort parse.
const FormatVersion = 1

// magic identifies a snapshot file. The trailing '1' is the format
// generation; a future incompatible layout changes the magic too, so
// old binaries fail fast on new files.
var magic = []byte("HMXSNAP1")

// Section ids, in required file order.
const (
	secMeta    = 1
	secTables  = 2
	secGeneric = 3
	secResults = 4
	secFooter  = 0xFF
)

// Typed decode failures. Every malformed input maps to exactly one of
// these (possibly wrapped with position detail); Decode never panics.
var (
	ErrBadMagic  = errors.New("snapshot: bad magic")
	ErrTruncated = errors.New("snapshot: truncated")
	ErrChecksum  = errors.New("snapshot: section checksum mismatch")
	ErrFileHash  = errors.New("snapshot: file hash mismatch")
	ErrFormat    = errors.New("snapshot: unsupported format version")
	ErrCorrupt   = errors.New("snapshot: corrupt")
	// ErrTooLarge marks a file or section that exceeds the decoder's
	// size cap.
	ErrTooLarge = errors.New("snapshot: exceeds size limit")
)

// IncompatibleError reports a snapshot written under different model
// state than the loading server's — the caller must discard it (or, on
// the peer-warming path, answer 409).
type IncompatibleError struct {
	Field      string // "profile_hash", "model_fingerprint", "build_version", "format_version"
	Want, Have string
}

func (e *IncompatibleError) Error() string {
	return fmt.Sprintf("snapshot: incompatible %s: snapshot has %q, server has %q", e.Field, e.Have, e.Want)
}

// Meta is the provenance a snapshot is validated against.
type Meta struct {
	FormatVersion uint64
	// BuildVersion is the writing binary's buildinfo string.
	BuildVersion string
	// ProfileHash is calib.Registry.StateHash at write time.
	ProfileHash string
	// ModelFingerprint identifies the model source's deterministic
	// inputs (experiments.Suite.ModelFingerprint).
	ModelFingerprint string
	// CreatedUnixNano timestamps the write (age reporting only; it does
	// not participate in compatibility).
	CreatedUnixNano int64
}

// Compatible reports whether a snapshot with this Meta may load into a
// server with the given state, with a typed *IncompatibleError naming
// the first mismatched field otherwise.
func (m Meta) Compatible(profileHash, modelFingerprint, buildVersion string) error {
	if m.FormatVersion != FormatVersion {
		return &IncompatibleError{
			Field: "format_version",
			Want:  fmt.Sprint(FormatVersion), Have: fmt.Sprint(m.FormatVersion),
		}
	}
	if m.ProfileHash != profileHash {
		return &IncompatibleError{Field: "profile_hash", Want: profileHash, Have: m.ProfileHash}
	}
	if m.ModelFingerprint != modelFingerprint {
		return &IncompatibleError{Field: "model_fingerprint", Want: modelFingerprint, Have: m.ModelFingerprint}
	}
	if m.BuildVersion != buildVersion {
		return &IncompatibleError{Field: "build_version", Want: buildVersion, Have: m.BuildVersion}
	}
	return nil
}

// TableEntry is one compiled two-type table under its cache key.
// Workload and NoSwitch let the loader rebuild the cluster.Space the
// restore needs without parsing the key.
type TableEntry struct {
	Key      string
	Workload string
	NoSwitch bool
	Dump     cluster.TableDump
}

// GenericEntry is one generic cluster spec's compiled artifact pair
// (full and domination-pruned tables, cached together) under its cache
// key. Generic dumps are self-contained; no model lookup on restore.
type GenericEntry struct {
	Key          string
	Full, Pruned cluster.GenericTableDump
}

// ResultEntry is one hot result-cache body under its cache key.
type ResultEntry struct {
	Key  string
	Body []byte
}

// Snapshot is the decoded in-memory form. Entry slices are ordered
// hottest first — a capacity-limited loader keeps a prefix.
type Snapshot struct {
	Meta    Meta
	Tables  []TableEntry
	Generic []GenericEntry
	Results []ResultEntry
	// FileHash is the hex SHA-256 footer, set by Decode (and by Encode
	// on the bytes it produced) — the identity /healthz reports.
	FileHash string
}

// --- encoding --------------------------------------------------------

type writer struct{ buf bytes.Buffer }

func (w *writer) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) fixed64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.buf.Write(tmp[:])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf.Write(b)
}

func (w *writer) bool(b bool) {
	if b {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

func encodeKernelEntries(w *writer, entries []cluster.KernelEntryDump) {
	w.uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.varint(int64(e.Cores))
		w.fixed64(e.FrequencyBits)
		w.fixed64(e.TimeBits)
		w.fixed64(e.EnergyBits)
	}
}

func encodeTableDump(w *writer, d cluster.TableDump) {
	encodeKernelEntries(w, d.ARM)
	encodeKernelEntries(w, d.AMD)
	w.fixed64(d.SwitchWBits)
}

func encodeGenericDump(w *writer, d cluster.GenericTableDump) {
	w.uvarint(uint64(len(d.Types)))
	for _, td := range d.Types {
		w.fixed64(td.SwitchWBits)
		w.uvarint(uint64(len(td.Options)))
		for _, o := range td.Options {
			w.varint(int64(o.Count))
			w.varint(int64(o.Cores))
			w.fixed64(o.FrequencyBits)
			w.fixed64(o.TimeBits)
			w.fixed64(o.EnergyBits)
		}
	}
}

// section appends one framed section to out: id, uvarint length,
// payload, CRC32-IEEE of the payload.
func section(out *bytes.Buffer, id byte, payload []byte) {
	out.WriteByte(id)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	out.Write(tmp[:n])
	out.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	out.Write(crc[:])
}

// Encode renders the snapshot. The input's Meta.FormatVersion is
// ignored: files always carry the current FormatVersion. s.FileHash is
// updated to the encoded footer.
func Encode(s *Snapshot) []byte {
	var out bytes.Buffer
	out.Write(magic)

	var mw writer
	mw.uvarint(FormatVersion)
	mw.str(s.Meta.BuildVersion)
	mw.str(s.Meta.ProfileHash)
	mw.str(s.Meta.ModelFingerprint)
	mw.varint(s.Meta.CreatedUnixNano)
	section(&out, secMeta, mw.buf.Bytes())

	var tw writer
	tw.uvarint(uint64(len(s.Tables)))
	for _, e := range s.Tables {
		tw.str(e.Key)
		tw.str(e.Workload)
		tw.bool(e.NoSwitch)
		encodeTableDump(&tw, e.Dump)
	}
	section(&out, secTables, tw.buf.Bytes())

	var gw writer
	gw.uvarint(uint64(len(s.Generic)))
	for _, e := range s.Generic {
		gw.str(e.Key)
		encodeGenericDump(&gw, e.Full)
		encodeGenericDump(&gw, e.Pruned)
	}
	section(&out, secGeneric, gw.buf.Bytes())

	var rw writer
	rw.uvarint(uint64(len(s.Results)))
	for _, e := range s.Results {
		rw.str(e.Key)
		rw.bytes(e.Body)
	}
	section(&out, secResults, rw.buf.Bytes())

	sum := sha256.Sum256(out.Bytes())
	out.WriteByte(secFooter)
	out.Write(sum[:])
	s.FileHash = hex.EncodeToString(sum[:])
	return out.Bytes()
}

// --- decoding --------------------------------------------------------

// reader is a bounds-checked cursor over one section payload. Every
// read either succeeds or records ErrTruncated; no method panics on any
// input.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) fixed64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// maxStr caps individual strings (cache keys) — nothing legitimate
// comes close, and the cap stops a lying length prefix from asking for
// gigabytes.
const maxStr = 1 << 20

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxStr || int(n) > r.remaining() {
		r.fail(ErrTruncated)
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *reader) bytesField() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if int64(n) > int64(r.remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return b
}

// count reads a collection count and guards allocation: the claimed
// count must be satisfiable by the bytes actually remaining (minSize is
// the smallest possible encoded element).
func (r *reader) count(minSize int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minSize < 1 {
		minSize = 1
	}
	if n > uint64(math.MaxInt32) || int64(n)*int64(minSize) > int64(r.remaining()) {
		r.fail(fmt.Errorf("%w: count %d exceeds remaining payload", ErrCorrupt, n))
		return 0
	}
	return int(n)
}

// Minimum encoded sizes, for allocation guards.
const (
	minKernelEntry = 1 + 8 + 8 + 8 // varint cores + three fixed64s
	minGenOption   = 1 + 1 + 8 + 8 + 8
	minGenType     = 8 + 1 // switchW + option count
)

func decodeKernelEntries(r *reader) []cluster.KernelEntryDump {
	n := r.count(minKernelEntry)
	if r.err != nil {
		return nil
	}
	out := make([]cluster.KernelEntryDump, n)
	for i := range out {
		out[i] = cluster.KernelEntryDump{
			Cores:         int(r.varint()),
			FrequencyBits: r.fixed64(),
			TimeBits:      r.fixed64(),
			EnergyBits:    r.fixed64(),
		}
	}
	return out
}

func decodeTableDump(r *reader) cluster.TableDump {
	return cluster.TableDump{
		ARM:         decodeKernelEntries(r),
		AMD:         decodeKernelEntries(r),
		SwitchWBits: r.fixed64(),
	}
}

func decodeGenericDump(r *reader) cluster.GenericTableDump {
	n := r.count(minGenType)
	if r.err != nil {
		return cluster.GenericTableDump{}
	}
	d := cluster.GenericTableDump{Types: make([]cluster.GenericTypeDump, n)}
	for i := range d.Types {
		td := cluster.GenericTypeDump{SwitchWBits: r.fixed64()}
		opts := r.count(minGenOption)
		if r.err != nil {
			return cluster.GenericTableDump{}
		}
		td.Options = make([]cluster.GenericOptionDump, opts)
		for j := range td.Options {
			td.Options[j] = cluster.GenericOptionDump{
				Count:         int(r.varint()),
				Cores:         int(r.varint()),
				FrequencyBits: r.fixed64(),
				TimeBits:      r.fixed64(),
				EnergyBits:    r.fixed64(),
			}
		}
		d.Types[i] = td
	}
	return d
}

// nextSection frames the section at *pos, verifies its CRC and returns
// its id and payload.
func nextSection(data []byte, pos *int) (id byte, payload []byte, err error) {
	if *pos >= len(data) {
		return 0, nil, ErrTruncated
	}
	id = data[*pos]
	*pos++
	n, vn := binary.Uvarint(data[*pos:])
	if vn <= 0 {
		return 0, nil, ErrTruncated
	}
	*pos += vn
	if int64(n) > int64(len(data)-*pos)-4 {
		return 0, nil, ErrTruncated
	}
	payload = data[*pos : *pos+int(n)]
	*pos += int(n)
	crc := binary.LittleEndian.Uint32(data[*pos:])
	*pos += 4
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, fmt.Errorf("%w: section %d", ErrChecksum, id)
	}
	return id, payload, nil
}

// Decode parses data into a Snapshot. It is all-or-nothing: any
// truncation, checksum or hash mismatch, or structural corruption
// yields a nil snapshot and a typed error. Decode validates framing and
// bounds only — coefficient sanity is enforced by the cluster restore
// constructors when the snapshot is applied.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+1+sha256.Size {
		return nil, ErrTruncated
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, ErrBadMagic
	}
	// Footer first: the file hash covers everything before it, so a bit
	// flip anywhere — including section framing — is caught up front.
	foot := len(data) - 1 - sha256.Size
	if data[foot] != secFooter {
		return nil, fmt.Errorf("%w: missing footer", ErrTruncated)
	}
	sum := sha256.Sum256(data[:foot])
	if !bytes.Equal(sum[:], data[foot+1:]) {
		return nil, ErrFileHash
	}

	pos := len(magic)
	body := data[:foot]
	var payloads [5][]byte
	for _, want := range []byte{secMeta, secTables, secGeneric, secResults} {
		id, payload, err := nextSection(body, &pos)
		if err != nil {
			return nil, err
		}
		if id != want {
			return nil, fmt.Errorf("%w: section %d where %d expected", ErrCorrupt, id, want)
		}
		payloads[want] = payload
	}
	if pos != foot {
		return nil, fmt.Errorf("%w: %d trailing bytes before footer", ErrCorrupt, foot-pos)
	}

	s := &Snapshot{FileHash: hex.EncodeToString(sum[:])}

	mr := &reader{data: payloads[secMeta]}
	s.Meta.FormatVersion = mr.uvarint()
	s.Meta.BuildVersion = mr.str()
	s.Meta.ProfileHash = mr.str()
	s.Meta.ModelFingerprint = mr.str()
	s.Meta.CreatedUnixNano = mr.varint()
	if mr.err != nil {
		return nil, fmt.Errorf("meta: %w", mr.err)
	}
	if s.Meta.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrFormat, s.Meta.FormatVersion, FormatVersion)
	}

	tr := &reader{data: payloads[secTables]}
	nTables := tr.count(1)
	for i := 0; i < nTables && tr.err == nil; i++ {
		e := TableEntry{Key: tr.str(), Workload: tr.str()}
		e.NoSwitch = tr.byte() != 0
		e.Dump = decodeTableDump(tr)
		if tr.err == nil {
			s.Tables = append(s.Tables, e)
		}
	}
	if tr.err == nil && tr.remaining() != 0 {
		tr.fail(fmt.Errorf("%w: trailing bytes", ErrCorrupt))
	}
	if tr.err != nil {
		return nil, fmt.Errorf("tables: %w", tr.err)
	}

	gr := &reader{data: payloads[secGeneric]}
	nGeneric := gr.count(1)
	for i := 0; i < nGeneric && gr.err == nil; i++ {
		e := GenericEntry{Key: gr.str()}
		e.Full = decodeGenericDump(gr)
		e.Pruned = decodeGenericDump(gr)
		if gr.err == nil {
			s.Generic = append(s.Generic, e)
		}
	}
	if gr.err == nil && gr.remaining() != 0 {
		gr.fail(fmt.Errorf("%w: trailing bytes", ErrCorrupt))
	}
	if gr.err != nil {
		return nil, fmt.Errorf("generic: %w", gr.err)
	}

	rr := &reader{data: payloads[secResults]}
	nResults := rr.count(1)
	for i := 0; i < nResults && rr.err == nil; i++ {
		e := ResultEntry{Key: rr.str(), Body: rr.bytesField()}
		if rr.err == nil {
			s.Results = append(s.Results, e)
		}
	}
	if rr.err == nil && rr.remaining() != 0 {
		rr.fail(fmt.Errorf("%w: trailing bytes", ErrCorrupt))
	}
	if rr.err != nil {
		return nil, fmt.Errorf("results: %w", rr.err)
	}
	return s, nil
}

// DecodeLimited is Decode with a size cap: data longer than maxBytes
// answers ErrTooLarge before any parsing (maxBytes <= 0 disables the
// cap). The streamed peer-warming path uses it so a lying or
// compromised sibling cannot balloon the loader.
func DecodeLimited(data []byte, maxBytes int64) (*Snapshot, error) {
	if maxBytes > 0 && int64(len(data)) > maxBytes {
		return nil, fmt.Errorf("%w: %d bytes > limit %d", ErrTooLarge, len(data), maxBytes)
	}
	return Decode(data)
}

// --- files -----------------------------------------------------------

// WriteFile persists the snapshot atomically (temp file + rename, the
// internal/calib pattern) and verifies the written bytes decode back to
// the same file hash before the rename — a torn or corrupted write can
// never be installed over a good snapshot.
func WriteFile(path string, s *Snapshot) error {
	data := Encode(s)
	// Hash-verify the encoded bytes round-trip before installing.
	chk, err := Decode(data)
	if err != nil {
		return fmt.Errorf("snapshot: self-check failed: %w", err)
	}
	if chk.FileHash != s.FileHash {
		return fmt.Errorf("snapshot: self-check hash mismatch")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".cache-snapshot-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// ReadFile loads and decodes path, capping the file size at maxBytes
// (<= 0 disables the cap). A missing file answers os.ErrNotExist so
// callers can treat first start as "no snapshot yet".
func ReadFile(path string, maxBytes int64) (*Snapshot, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if maxBytes > 0 && fi.Size() > maxBytes {
		return nil, fmt.Errorf("%w: %s is %d bytes > limit %d", ErrTooLarge, path, fi.Size(), maxBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeLimited(data, maxBytes)
}
