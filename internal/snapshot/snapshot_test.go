package snapshot

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"heteromix/internal/cluster"
)

// testSnapshot builds a representative snapshot: two two-type tables,
// one generic pair, three result bodies.
func testSnapshot() *Snapshot {
	ke := func(cores int, f, k, epu float64) cluster.KernelEntryDump {
		return cluster.KernelEntryDump{
			Cores:         cores,
			FrequencyBits: math.Float64bits(f),
			TimeBits:      math.Float64bits(k),
			EnergyBits:    math.Float64bits(epu),
		}
	}
	gopt := func(count, cores int, f, k, epu float64) cluster.GenericOptionDump {
		return cluster.GenericOptionDump{
			Count: count, Cores: cores,
			FrequencyBits: math.Float64bits(f),
			TimeBits:      math.Float64bits(k),
			EnergyBits:    math.Float64bits(epu),
		}
	}
	gdump := cluster.GenericTableDump{Types: []cluster.GenericTypeDump{
		{
			SwitchWBits: math.Float64bits(60),
			Options: []cluster.GenericOptionDump{
				gopt(0, 0, 0, 0, 0),
				gopt(1, 4, 1.1e9, 3.2e-6, 9.9e-5),
				gopt(2, 4, 1.1e9, 1.6e-6, 9.9e-5),
			},
		},
		{
			SwitchWBits: 0,
			Options: []cluster.GenericOptionDump{
				gopt(0, 0, 0, 0, 0),
				gopt(1, 8, 2.2e9, 7.7e-7, 2.2e-4),
			},
		},
	}}
	return &Snapshot{
		Meta: Meta{
			BuildVersion:     "heteromixd test (abc123, go1.x)",
			ProfileHash:      "00aabbccddeeff11",
			ModelFingerprint: "suite|seed=1|noise=0.03|arm=a9|amd=k10",
			CreatedUnixNano:  1754600000_000000000,
		},
		Tables: []TableEntry{
			{
				Key: "table|ep@v1|false", Workload: "ep",
				Dump: cluster.TableDump{
					ARM:         []cluster.KernelEntryDump{ke(1, 0.8e9, 1e-5, 2e-4), ke(4, 1.1e9, 3e-6, 2.5e-4)},
					AMD:         []cluster.KernelEntryDump{ke(8, 2.2e9, 8e-7, 6e-4)},
					SwitchWBits: math.Float64bits(60),
				},
			},
			{
				Key: "table|memcached@v2|true", Workload: "memcached", NoSwitch: true,
				Dump: cluster.TableDump{
					ARM:         []cluster.KernelEntryDump{ke(2, 0.8e9, 5e-6, 1e-4)},
					AMD:         []cluster.KernelEntryDump{ke(4, 1.9e9, 9e-7, 4e-4)},
					SwitchWBits: 0,
				},
			},
		},
		Generic: []GenericEntry{
			{Key: "generic|ep@v1|arm-cortex-a9:2:true|amd-opteron-k10:1:false", Full: gdump, Pruned: gdump},
		},
		Results: []ResultEntry{
			{Key: "predict|ep@v1|{...}", Body: []byte(`{"workload":"ep"}`)},
			{Key: "enumerate|ep@v1|{...}", Body: []byte(`{"points":[]}`)},
			{Key: "empty|ep@v1|{}", Body: []byte{}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := testSnapshot()
	data := Encode(want)
	if want.FileHash == "" {
		t.Fatal("Encode must set FileHash")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	wantMeta := want.Meta
	wantMeta.FormatVersion = FormatVersion
	if got.Meta != wantMeta {
		t.Fatalf("meta mismatch:\n got %+v\nwant %+v", got.Meta, wantMeta)
	}
	if got.FileHash != want.FileHash {
		t.Fatalf("FileHash %q != %q", got.FileHash, want.FileHash)
	}
	if !reflect.DeepEqual(got.Tables, want.Tables) {
		t.Fatalf("tables mismatch:\n got %+v\nwant %+v", got.Tables, want.Tables)
	}
	if !reflect.DeepEqual(got.Generic, want.Generic) {
		t.Fatalf("generic mismatch")
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("results: got %d want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].Key != want.Results[i].Key || !bytes.Equal(got.Results[i].Body, want.Results[i].Body) {
			t.Fatalf("result %d mismatch", i)
		}
	}
	// Deterministic: same snapshot, same bytes.
	if !bytes.Equal(data, Encode(want)) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := Encode(testSnapshot())
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"magic only", func(b []byte) []byte { return b[:8] }, ErrTruncated},
		{"wrong magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"truncated footer", func(b []byte) []byte { return b[:len(b)-10] }, ErrTruncated},
		{"bit flip in body", func(b []byte) []byte { b[20] ^= 0x40; return b }, ErrFileHash},
		{"bit flip in hash", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrFileHash},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), valid...)
			b = tc.mutate(b)
			s, err := Decode(b)
			if err == nil {
				t.Fatal("corrupted snapshot decoded without error")
			}
			if s != nil {
				t.Fatal("corrupted decode must return a nil snapshot")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeLimited(t *testing.T) {
	data := Encode(testSnapshot())
	if _, err := DecodeLimited(data, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLimited(data, int64(len(data))-1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestMetaCompatible(t *testing.T) {
	m := Meta{
		FormatVersion:    FormatVersion,
		BuildVersion:     "b1",
		ProfileHash:      "p1",
		ModelFingerprint: "f1",
	}
	if err := m.Compatible("p1", "f1", "b1"); err != nil {
		t.Fatal(err)
	}
	var ie *IncompatibleError
	if err := m.Compatible("p2", "f1", "b1"); !errors.As(err, &ie) || ie.Field != "profile_hash" {
		t.Fatalf("want profile_hash mismatch, got %v", err)
	}
	if err := m.Compatible("p1", "f2", "b1"); !errors.As(err, &ie) || ie.Field != "model_fingerprint" {
		t.Fatalf("want model_fingerprint mismatch, got %v", err)
	}
	if err := m.Compatible("p1", "f1", "b2"); !errors.As(err, &ie) || ie.Field != "build_version" {
		t.Fatalf("want build_version mismatch, got %v", err)
	}
	m.FormatVersion = FormatVersion + 1
	if err := m.Compatible("p1", "f1", "b1"); !errors.As(err, &ie) || ie.Field != "format_version" {
		t.Fatalf("want format_version mismatch, got %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	want := testSnapshot()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.FileHash != want.FileHash {
		t.Fatalf("FileHash %q != %q", got.FileHash, want.FileHash)
	}
	// Size cap applies to files too.
	if _, err := ReadFile(path, 16); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	// Missing file answers os.ErrNotExist.
	if _, err := ReadFile(filepath.Join(dir, "absent.snap"), 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	// A corrupted file on disk never replaces the in-memory state.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, 0); err == nil {
		t.Fatal("corrupted file read without error")
	}
}
