package snapshot

import (
	"testing"
)

// FuzzSnapshotDecode pins the decoder's hard contract: arbitrary bytes
// — truncations, bit flips, lying length prefixes, oversized counts —
// never panic, never allocate unboundedly, and either decode to a
// snapshot that re-encodes losslessly or yield a typed error with a nil
// snapshot (no partial results escape). Checked-in corpus seeds under
// testdata/fuzz/FuzzSnapshotDecode cover the interesting boundaries: a
// fully valid file, a truncated footer, a wrong magic, and a valid file
// whose profile hash mismatches the server's (decodes fine, then fails
// Meta.Compatible).
func FuzzSnapshotDecode(f *testing.F) {
	valid := Encode(testSnapshot())
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte("HMXSNAP1"))
	f.Add([]byte("XXXSNAP1 not a snapshot"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		// A successful decode must survive a lossless re-encode cycle:
		// encode(decode(x)) decodes back to the same structure (the bytes
		// may differ — Encode is canonical, the input need not be).
		re := Encode(s)
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of a decoded snapshot failed to decode: %v", err)
		}
		if s2.Meta != s.Meta ||
			len(s2.Tables) != len(s.Tables) ||
			len(s2.Generic) != len(s.Generic) ||
			len(s2.Results) != len(s.Results) {
			t.Fatalf("re-encode cycle changed the snapshot:\n got %+v\nwant %+v", s2, s)
		}
		// Compatibility checking must not panic either, match or not.
		_ = s.Meta.Compatible("some-profile-hash", "some-fingerprint", "some-build")
	})
}
