// Package cliutil is the shared command-line preamble of the cmd/
// binaries. It fixes two UX gaps the mains used to share: stray
// positional arguments were silently ignored (flag itself already
// rejects unknown flags), and there was no way to ask a binary which
// build it is. Every main calls Parse instead of flag.Parse and gets a
// -version flag plus strict argument checking for free.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"heteromix/internal/buildinfo"
)

// version is the shared flag, registered on the default FlagSet when the
// package is linked in (only the cmd/ mains import it).
var version = flag.Bool("version", false, "print version information and exit")

// exit and stdout are swapped out by tests.
var (
	exit   = os.Exit
	stdout = os.Stdout
)

// Parse runs flag.Parse on the default FlagSet and enforces the shared
// command-line contract: -version prints the build identity and exits 0,
// unknown flags make flag.Parse print usage and exit 2 (its ExitOnError
// behaviour), and any positional arguments beyond nargs print an error
// plus usage and exit 2 instead of being silently dropped.
func Parse(nargs int) {
	flag.Parse()
	parsed(flag.CommandLine, *version, nargs)
}

// parsed applies the post-Parse checks; split out so tests can drive a
// private FlagSet.
func parsed(fs *flag.FlagSet, wantVersion bool, nargs int) {
	if wantVersion {
		fmt.Fprintln(stdout, buildinfo.Get())
		exit(0)
		return
	}
	switch {
	case fs.NArg() > nargs:
		fmt.Fprintf(fs.Output(), "%s: unexpected arguments: %s\n",
			prog(), strings.Join(fs.Args()[nargs:], " "))
		fs.Usage()
		exit(2)
	case fs.NArg() < nargs:
		fmt.Fprintf(fs.Output(), "%s: missing required argument\n", prog())
		fs.Usage()
		exit(2)
	}
}

// prog names the running binary for error prefixes.
func prog() string {
	if len(os.Args) == 0 || os.Args[0] == "" {
		return "heteromix"
	}
	return filepath.Base(os.Args[0])
}
