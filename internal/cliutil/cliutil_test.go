package cliutil

import (
	"bytes"
	"flag"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs parsed with exit and stdout intercepted, returning the
// recorded exit code (-1 when exit was never called), stdout and stderr.
func capture(t *testing.T, fs *flag.FlagSet, wantVersion bool, nargs int) (code int, out, errOut string) {
	t.Helper()
	var errBuf bytes.Buffer
	fs.SetOutput(&errBuf)
	fs.Usage = func() {}

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldExit, oldStdout := exit, stdout
	code = -1
	exit = func(c int) {
		if code == -1 {
			code = c
		}
	}
	stdout = w
	defer func() { exit, stdout = oldExit, oldStdout }()

	parsed(fs, wantVersion, nargs)
	w.Close()
	b, _ := io.ReadAll(r)
	return code, string(b), errBuf.String()
}

func TestParsedExactArgsOK(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	if err := fs.Parse([]string{"cmd"}); err != nil {
		t.Fatal(err)
	}
	code, _, _ := capture(t, fs, false, 1)
	if code != -1 {
		t.Fatalf("exit(%d) called for a valid command line", code)
	}
}

func TestParsedRejectsExtraArgs(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	if err := fs.Parse([]string{"cmd", "stray"}); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := capture(t, fs, false, 1)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, "stray") {
		t.Errorf("stderr %q does not name the stray argument", errOut)
	}
}

func TestParsedRejectsMissingArg(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := capture(t, fs, false, 1)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, "missing") {
		t.Errorf("stderr %q does not mention the missing argument", errOut)
	}
}

func TestParsedVersion(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	code, out, _ := capture(t, fs, true, 0)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out, "heteromix") {
		t.Errorf("stdout %q is not a version banner", out)
	}
}
