package hwsim

import (
	"math"
	"testing"
	"testing/quick"

	"heteromix/internal/isa"
	"heteromix/internal/stats"
	"heteromix/internal/units"
)

var memMix = isa.MustMix(map[isa.Class]float64{isa.Mem: 0.9, isa.IntALU: 0.1})

func TestSolveMemoryUnloaded(t *testing.T) {
	// With negligible miss rate the latency stays at the contention-free
	// base and rho is ~0.
	arm := ARMCortexA9()
	cfg := Config{Cores: 1, Frequency: 1.4 * units.GHz}
	op := SolveMemory(arm, cfg, memMix, 0.001, 0.05, 1)
	if math.Abs(op.EffectiveLatencyNs-arm.Mem.BaseLatencyNs) > 1 {
		t.Errorf("unloaded latency = %v, want ~%v", op.EffectiveLatencyNs, arm.Mem.BaseLatencyNs)
	}
	if op.Rho > 0.01 {
		t.Errorf("unloaded rho = %v", op.Rho)
	}
}

func TestSolveMemoryContentionGrowsWithCores(t *testing.T) {
	arm := ARMCortexA9()
	cfg1 := Config{Cores: 1, Frequency: 1.4 * units.GHz}
	cfg4 := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	op1 := SolveMemory(arm, cfg1, memMix, 5, 0.05, 1)
	op4 := SolveMemory(arm, cfg4, memMix, 5, 0.05, 4)
	if op4.EffectiveLatencyNs <= op1.EffectiveLatencyNs {
		t.Errorf("4-core latency %v should exceed 1-core %v",
			op4.EffectiveLatencyNs, op1.EffectiveLatencyNs)
	}
	if op4.SPIMem <= op1.SPIMem {
		t.Errorf("4-core SPImem %v should exceed 1-core %v (Figure 3 behaviour)",
			op4.SPIMem, op1.SPIMem)
	}
}

// Figure 3: SPImem regresses linearly on core frequency with r^2 >= 0.94.
// At low bandwidth pressure our model is exactly linear; under pressure
// queueing adds curvature but the correlation stays overwhelming.
func TestSPIMemLinearInFrequency(t *testing.T) {
	for _, spec := range []NodeSpec{ARMCortexA9(), AMDOpteronK10()} {
		for _, cores := range []int{1, spec.Cores} {
			var fs, spis []float64
			for _, f := range spec.Frequencies {
				op := SolveMemory(spec, Config{Cores: cores, Frequency: f}, memMix, 25, 0.05, float64(cores))
				fs = append(fs, f.GHzValue())
				spis = append(spis, op.SPIMem)
			}
			fit, err := stats.LinearFit(fs, spis)
			if err != nil {
				t.Fatalf("%s cores=%d: %v", spec.Name, cores, err)
			}
			if fit.R2 < 0.94 {
				t.Errorf("%s cores=%d: r^2 = %v, want >= 0.94 (Figure 3)", spec.Name, cores, fit.R2)
			}
			if fit.Slope <= 0 {
				t.Errorf("%s cores=%d: slope = %v, want positive", spec.Name, cores, fit.Slope)
			}
		}
	}
}

func TestSolveMemoryRhoCapped(t *testing.T) {
	// An absurdly miss-heavy workload saturates but never exceeds RhoCap.
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	op := SolveMemory(arm, cfg, memMix, 200, 0.05, 4)
	if op.Rho > RhoCap+1e-9 {
		t.Errorf("rho = %v exceeds cap %v", op.Rho, RhoCap)
	}
	// With blocking cores (one outstanding miss each), the closed-system
	// fixed point self-limits near cact*line/(baseLat*peakBW) pressure —
	// about 0.48 on this node — rather than saturating the open-system cap.
	if op.Rho < 0.4 {
		t.Errorf("rho = %v, want >= 0.4 (latency-bound fixed point)", op.Rho)
	}
	// Traffic at the fixed point must respect the bandwidth cap.
	if op.TrafficBytesPerSec > float64(arm.Mem.PeakBandwidth)*(RhoCap+0.02) {
		t.Errorf("traffic %v exceeds admissible bandwidth", op.TrafficBytesPerSec)
	}
}

func TestSolveMemoryClampsActiveCores(t *testing.T) {
	arm := ARMCortexA9()
	cfg := Config{Cores: 2, Frequency: 1.4 * units.GHz}
	// cact above the configured cores is clamped; non-positive defaults
	// to all configured cores.
	a := SolveMemory(arm, cfg, memMix, 5, 0.05, 10)
	b := SolveMemory(arm, cfg, memMix, 5, 0.05, 2)
	if a != b {
		t.Errorf("cact clamp failed: %+v vs %+v", a, b)
	}
	c := SolveMemory(arm, cfg, memMix, 5, 0.05, 0)
	if c != b {
		t.Errorf("cact default failed: %+v vs %+v", c, b)
	}
}

// The fixed point is self-consistent: recomputing rho from the returned
// traffic reproduces the returned rho (within the cap).
func TestSolveMemoryFixedPointConsistency(t *testing.T) {
	f := func(seedMPKI, seedCores uint8) bool {
		spec := ARMCortexA9()
		mpki := 0.1 + float64(seedMPKI%50)
		cores := 1 + int(seedCores)%spec.Cores
		cfg := Config{Cores: cores, Frequency: 1.4 * units.GHz}
		op := SolveMemory(spec, cfg, memMix, mpki, 0.05, float64(cores))
		impliedRho := op.TrafficBytesPerSec / float64(spec.Mem.PeakBandwidth)
		if impliedRho > RhoCap {
			impliedRho = RhoCap
		}
		return math.Abs(impliedRho-op.Rho) < 0.02
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryActiveShare(t *testing.T) {
	if got := MemoryActiveShare(1, 0.1, 0, 4); got != 0 {
		t.Errorf("no memory stalls should give share 0, got %v", got)
	}
	if got := MemoryActiveShare(1, 0.05, 10, 4); got != 1 {
		t.Errorf("stall-dominated multi-core share should saturate at 1, got %v", got)
	}
	if got := MemoryActiveShare(0, 0, 0, 4); got != 0 {
		t.Errorf("degenerate inputs should give 0, got %v", got)
	}
	got := MemoryActiveShare(1, 0, 1, 1)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("one core half-stalled gives share 0.5, got %v", got)
	}
}

func TestSaturationBandwidth(t *testing.T) {
	m := MemorySpec{BaseLatencyNs: 100, PeakBandwidth: 1e9, LineBytes: 64}
	if got := m.SaturationBandwidth(); got != units.BytesPerSecond(RhoCap*1e9) {
		t.Errorf("saturation bandwidth = %v", got)
	}
}
