package hwsim

import (
	"math"

	"heteromix/internal/isa"
	"heteromix/internal/units"
)

// MemoryOperatingPoint is the steady-state solution of the memory system
// for one (node, config, workload) combination: the effective per-miss
// latency after contention and queueing, the resulting memory stall
// cycles per instruction, and the bandwidth utilization.
type MemoryOperatingPoint struct {
	// EffectiveLatencyNs is the per-miss DRAM latency including
	// multi-core contention and bandwidth queueing.
	EffectiveLatencyNs float64
	// SPIMem is the resulting memory stall cycles per instruction at the
	// configured core frequency. This is the simulator-side ground truth
	// for the quantity the paper regresses linearly against f (Figure 3).
	SPIMem float64
	// Rho is the DRAM bandwidth utilization in [0, RhoCap].
	Rho float64
	// TrafficBytesPerSec is the steady-state miss traffic.
	TrafficBytesPerSec float64
}

// RhoCap bounds bandwidth utilization in the queueing term: beyond it the
// open-system approximation would diverge, while a real closed system
// (cores stop issuing while stalled) self-limits. 0.95 keeps the model
// stable and saturating.
const RhoCap = 0.95

// memIterations bounds the fixed-point iteration; convergence is
// geometric because the update is a damped contraction.
const memIterations = 60

// SolveMemory computes the steady-state memory operating point for a
// workload demand on spec at config cfg, assuming cact cores actively
// issue the workload's instruction stream.
//
// The model: each DRAM miss costs
//
//	lat(cact, rho) = (Base + Contention*(cact-1)) / (1 - rho)
//
// where rho is the bandwidth utilization, itself determined by the
// instruction rate, which depends on the latency — a fixed point solved
// by damped iteration. The 1/(1-rho) factor is the M/M/1 waiting-time
// inflation of the shared controller; the linear term is per-core
// contention following Tudor et al. (paper reference [36]).
//
// SPImem = misses/instr * lat_ns * f converts the fixed nanosecond cost
// into core cycles — the mechanism that makes SPImem linear in f.
func SolveMemory(spec NodeSpec, cfg Config, mix isa.Mix, mpki, depStallPerInstr float64, cact float64) MemoryOperatingPoint {
	if cact <= 0 {
		cact = float64(cfg.Cores)
	}
	if cact > float64(cfg.Cores) {
		cact = float64(cfg.Cores)
	}
	baseLat := spec.Mem.BaseLatencyNs + spec.Mem.ContentionNsPerCore*(cact-1)
	missPerInstr := mpki / 1000
	wpi := spec.WPI(mix)
	f := float64(cfg.Frequency)

	rho := 0.0
	lat := baseLat
	for i := 0; i < memIterations; i++ {
		spiMem := missPerInstr * lat * 1e-9 * f
		// Per-core instruction rate: work cycles plus the larger of the
		// two overlapping stall components (paper Eq. 3 structure).
		cpi := wpi + math.Max(depStallPerInstr, spiMem)
		instrRate := cact * f / cpi
		traffic := instrRate * missPerInstr * spec.Mem.LineBytes
		target := traffic / float64(spec.Mem.PeakBandwidth)
		if target > RhoCap {
			target = RhoCap
		}
		// Damped update for stability.
		rho = 0.5*rho + 0.5*target
		lat = baseLat / (1 - rho)
	}
	spiMem := missPerInstr * lat * 1e-9 * f
	cpi := wpi + math.Max(depStallPerInstr, spiMem)
	instrRate := cact * f / cpi
	return MemoryOperatingPoint{
		EffectiveLatencyNs: lat,
		SPIMem:             spiMem,
		Rho:                rho,
		TrafficBytesPerSec: instrRate * missPerInstr * spec.Mem.LineBytes,
	}
}

// MemoryActiveShare estimates the fraction of wall-clock time the DRAM
// subsystem draws active power: the per-core memory-stall share of
// execution, saturating at 1 when several cores keep the controller busy.
func MemoryActiveShare(wpi, depStallPerInstr, spiMem, cact float64) float64 {
	cpi := wpi + math.Max(depStallPerInstr, spiMem)
	if cpi <= 0 {
		return 0
	}
	perCore := spiMem / cpi
	share := perCore * cact
	if share > 1 {
		share = 1
	}
	return share
}

// SaturationBandwidth returns the highest miss traffic the memory system
// admits, units.BytesPerSecond scaled by RhoCap.
func (m MemorySpec) SaturationBandwidth() units.BytesPerSecond {
	return units.BytesPerSecond(float64(m.PeakBandwidth) * RhoCap)
}
