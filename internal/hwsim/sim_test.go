package hwsim

import (
	"math"
	"testing"
	"testing/quick"

	"heteromix/internal/trace"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func mustDemand(t *testing.T, name string) trace.Demand {
	t.Helper()
	s, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s.Demand
}

func TestRunValidatesInputs(t *testing.T) {
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	d := mustDemand(t, "ep")

	if _, err := Run(arm, Config{Cores: 9, Frequency: 1.4 * units.GHz}, d, 1000, Options{}); err == nil {
		t.Error("bad config should error")
	}
	if _, err := Run(arm, cfg, trace.Demand{}, 1000, Options{}); err == nil {
		t.Error("bad demand should error")
	}
	for _, w := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := Run(arm, cfg, d, w, Options{}); err == nil {
			t.Errorf("work %v should error", w)
		}
	}
	bad := arm
	bad.Cores = 0
	if _, err := Run(bad, cfg, d, 1000, Options{}); err == nil {
		t.Error("bad spec should error")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	d := mustDemand(t, "ep")
	m1, err := Run(arm, cfg, d, 1e6, Options{Seed: 7, NoiseSigma: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(arm, cfg, d, 1e6, Options{Seed: 7, NoiseSigma: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Record != m2.Record {
		t.Error("equal seeds should give identical runs")
	}
	m3, err := Run(arm, cfg, d, 1e6, Options{Seed: 8, NoiseSigma: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Record.Elapsed == m3.Record.Elapsed {
		t.Error("different seeds should perturb the run")
	}
}

func TestRunNoiselessIsIdeal(t *testing.T) {
	// Without noise, elapsed time must match the closed-form cycle
	// accounting for a pure-CPU workload.
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	d := mustDemand(t, "ep")
	w := 1e6
	m, err := Run(arm, cfg, d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stream := d.Translation[arm.ISA]
	op := SolveMemory(arm, cfg, stream.Mix, d.DRAMMissesPerKiloInstr[arm.ISA],
		d.DependencyStallsPerInstr[arm.ISA], 4)
	perUnitCycles := stream.PerUnit * (arm.WPI(stream.Mix) +
		math.Max(d.DependencyStallsPerInstr[arm.ISA], op.SPIMem))
	want := w / 4 * perUnitCycles / float64(cfg.Frequency)
	if rel := math.Abs(float64(m.Record.Elapsed)-want) / want; rel > 0.01 {
		t.Errorf("elapsed = %v, closed form %v (rel err %v)", m.Record.Elapsed, want, rel)
	}
}

func TestRunCounterConservation(t *testing.T) {
	// Counters must account for exactly the work units executed.
	arm := ARMCortexA9()
	cfg := Config{Cores: 3, Frequency: 0.8 * units.GHz}
	d := mustDemand(t, "blackscholes")
	w := 5e4
	m, err := Run(arm, cfg, d, w, Options{Seed: 3, NoiseSigma: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	wantInstr := d.Translation[arm.ISA].PerUnit * w
	if rel := math.Abs(m.Record.Instructions-wantInstr) / wantInstr; rel > 1e-9 {
		t.Errorf("instructions = %v, want %v", m.Record.Instructions, wantInstr)
	}
	if m.Record.WorkUnits != w {
		t.Errorf("work units = %v, want %v", m.Record.WorkUnits, w)
	}
	// WPI and SPIcore derived from counters must equal the model inputs
	// (they are noise-free by construction; noise only shifts time).
	wantWPI := arm.WPI(d.Translation[arm.ISA].Mix)
	if got := m.Record.WPI(); math.Abs(got-wantWPI) > 1e-9 {
		t.Errorf("WPI = %v, want %v", got, wantWPI)
	}
	wantSPI := d.DependencyStallsPerInstr[arm.ISA]
	if got := m.Record.SPICore(); math.Abs(got-wantSPI) > 1e-9 {
		t.Errorf("SPIcore = %v, want %v", got, wantSPI)
	}
}

// Figure 2: WPI and SPIcore are constant as the problem scales.
func TestWPIConstantAcrossProblemSizes(t *testing.T) {
	amd := AMDOpteronK10()
	cfg := Config{Cores: 6, Frequency: 2.1 * units.GHz}
	d := mustDemand(t, "ep")
	var prevWPI, prevSPI float64
	for i, w := range []float64{1e5, 1e6, 1e7} {
		m, err := Run(amd, cfg, d, w, Options{Seed: int64(i), NoiseSigma: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if math.Abs(m.Record.WPI()-prevWPI) > 0.001*prevWPI {
				t.Errorf("WPI drifted across sizes: %v vs %v", m.Record.WPI(), prevWPI)
			}
			if math.Abs(m.Record.SPICore()-prevSPI) > 0.001*prevSPI {
				t.Errorf("SPIcore drifted across sizes: %v vs %v", m.Record.SPICore(), prevSPI)
			}
		}
		prevWPI, prevSPI = m.Record.WPI(), m.Record.SPICore()
	}
}

func TestMoreCoresRunFaster(t *testing.T) {
	arm := ARMCortexA9()
	d := mustDemand(t, "julius")
	w := 2e5
	t1, err := Run(arm, Config{Cores: 1, Frequency: 1.1 * units.GHz}, d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Run(arm, Config{Cores: 4, Frequency: 1.1 * units.GHz}, d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(t1.Record.Elapsed) / float64(t4.Record.Elapsed)
	if speedup < 3 || speedup > 4.05 {
		t.Errorf("4-core speedup = %v, want in (3, 4.05]", speedup)
	}
}

func TestHigherFrequencyRunsFaster(t *testing.T) {
	amd := AMDOpteronK10()
	d := mustDemand(t, "blackscholes")
	w := 5e4
	slow, err := Run(amd, Config{Cores: 6, Frequency: 0.8 * units.GHz}, d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(amd, Config{Cores: 6, Frequency: 2.1 * units.GHz}, d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Record.Elapsed >= slow.Record.Elapsed {
		t.Errorf("2.1 GHz (%v) should beat 0.8 GHz (%v)", fast.Record.Elapsed, slow.Record.Elapsed)
	}
	// Faster clock draws more power.
	if fast.Record.AveragePower() <= slow.Record.AveragePower() {
		t.Errorf("power at 2.1 GHz (%v) should exceed 0.8 GHz (%v)",
			fast.Record.AveragePower(), slow.Record.AveragePower())
	}
}

func TestEnergyEqualsBreakdownAndPowerBounds(t *testing.T) {
	arm := ARMCortexA9()
	d := mustDemand(t, "ep")
	for _, cfg := range Configs(arm) {
		m, err := Run(arm, cfg, d, 1e5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(m.Record.Energy-m.Breakdown.Total())) > 1e-9*float64(m.Record.Energy) {
			t.Errorf("cfg %+v: energy %v != breakdown %v", cfg, m.Record.Energy, m.Breakdown.Total())
		}
		p := m.Record.AveragePower()
		if p < arm.IdlePower() || p > arm.PeakPower()*1.01 {
			t.Errorf("cfg %+v: power %v outside [idle %v, peak %v]",
				cfg, p, arm.IdlePower(), arm.PeakPower())
		}
	}
}

func TestMemcachedIsIOBound(t *testing.T) {
	// On both nodes, memcached elapsed time must track the NIC transfer
	// time, not the CPU time, and CPU utilization must be far below 1.
	d := mustDemand(t, "memcached")
	w := 5e4
	for _, spec := range []NodeSpec{ARMCortexA9(), AMDOpteronK10()} {
		cfg := Config{Cores: spec.Cores, Frequency: spec.FMax()}
		m, err := Run(spec, cfg, d, w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		transfer := float64(spec.NIC.Bandwidth.TransferTime(units.Bytes(w * 1024)))
		if rel := math.Abs(float64(m.Record.Elapsed)-transfer) / transfer; rel > 0.15 {
			t.Errorf("%s: elapsed %v vs pure transfer %v (rel %v)", spec.Name, m.Record.Elapsed, transfer, rel)
		}
		if u := m.Record.CPUUtilization(); u > 0.5 {
			t.Errorf("%s: memcached CPU utilization = %v, want low (I/O bound)", spec.Name, u)
		}
		if m.Record.IOBytes != units.Bytes(w*1024) {
			t.Errorf("%s: IO bytes = %v, want %v", spec.Name, m.Record.IOBytes, w*1024)
		}
	}
}

func TestStreamingIOOverlapsCompute(t *testing.T) {
	// Julius streams 2 bytes per sample; its elapsed time must equal the
	// CPU-bound time (transfers hide behind compute).
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	d := mustDemand(t, "julius")
	w := 2e5
	m, err := Run(arm, cfg, d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Record.IOBytes != units.Bytes(2*w) {
		t.Errorf("streamed bytes = %v, want %v", m.Record.IOBytes, 2*w)
	}
	if float64(m.Record.IOTransferTime) > 0.05*float64(m.Record.Elapsed) {
		t.Errorf("transfer time %v should be negligible vs elapsed %v",
			m.Record.IOTransferTime, m.Record.Elapsed)
	}
}

func TestArrivalPacingLimitsThroughput(t *testing.T) {
	// With a request rate far below NIC capacity, elapsed time is set by
	// arrivals (the 1/lambda branch of paper Eq. 11).
	arm := ARMCortexA9()
	cfg := Config{Cores: 2, Frequency: 1.4 * units.GHz}
	d := mustDemand(t, "memcached")
	d.RequestRate = 1000 // 1k req/s << NIC's ~12.2k req/s at 1 KiB
	w := 1e4
	m, err := Run(arm, cfg, d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := w / d.RequestRate
	if rel := math.Abs(float64(m.Record.Elapsed)-want) / want; rel > 0.1 {
		t.Errorf("arrival-paced elapsed = %v, want ~%v", m.Record.Elapsed, want)
	}
}

func TestRhoVisibleInMeasurement(t *testing.T) {
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	stall := workloads.MicroStallStream().Demand
	m, err := Run(arm, cfg, stall, 1e5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem.Rho < 0.4 {
		t.Errorf("stall stream should pressure memory bandwidth, rho = %v", m.Mem.Rho)
	}
}

// Energy and elapsed time scale linearly with problem size (the paper
// notes input size does not change any conclusion for this reason).
func TestLinearScalingInWork(t *testing.T) {
	f := func(mult uint8) bool {
		k := 1 + int(mult)%8
		arm := ARMCortexA9()
		cfg := Config{Cores: 4, Frequency: 1.1 * units.GHz}
		d, err := workloads.ByName("ep")
		if err != nil {
			return false
		}
		base, err := Run(arm, cfg, d.Demand, 1e5, Options{})
		if err != nil {
			return false
		}
		scaled, err := Run(arm, cfg, d.Demand, 1e5*float64(k), Options{})
		if err != nil {
			return false
		}
		tRatio := float64(scaled.Record.Elapsed) / float64(base.Record.Elapsed)
		eRatio := float64(scaled.Record.Energy) / float64(base.Record.Energy)
		return math.Abs(tRatio-float64(k)) < 0.02*float64(k) &&
			math.Abs(eRatio-float64(k)) < 0.02*float64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNoiseMagnitudeIsBounded(t *testing.T) {
	// With sigma = 0.03, elapsed times across seeds stay within ~10% of
	// the noiseless run (3-sigma clamp).
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	d := mustDemand(t, "ep")
	ideal, err := Run(arm, cfg, d, 1e5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		m, err := Run(arm, cfg, d, 1e5, Options{Seed: seed, NoiseSigma: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(m.Record.Elapsed-ideal.Record.Elapsed)) / float64(ideal.Record.Elapsed)
		if rel > 0.12 {
			t.Errorf("seed %d: noise moved elapsed by %v", seed, rel)
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	s := newScheduler()
	s.schedule(3, evCoreDone, 0)
	s.schedule(1, evNICDone, -1)
	s.schedule(2, evArrival, -1)
	s.schedule(1, evArrival, -1) // tie at t=1: FIFO by sequence
	var got []float64
	var kinds []eventKind
	for {
		e, ok := s.next()
		if !ok {
			break
		}
		got = append(got, e.at)
		kinds = append(kinds, e.kind)
	}
	want := []float64{1, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if kinds[0] != evNICDone || kinds[1] != evArrival {
		t.Errorf("tie-break order wrong: %v", kinds)
	}
	if !s.empty() {
		t.Error("queue should be empty")
	}
}

func TestChunksPerCoreOverride(t *testing.T) {
	arm := ARMCortexA9()
	cfg := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	d := mustDemand(t, "ep")
	coarse, err := Run(arm, cfg, d, 1e5, Options{ChunksPerCore: 1})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Run(arm, cfg, d, 1e5, Options{ChunksPerCore: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Granularity must not change noiseless totals materially.
	rel := math.Abs(float64(coarse.Record.Elapsed-fine.Record.Elapsed)) / float64(fine.Record.Elapsed)
	if rel > 0.02 {
		t.Errorf("chunking changed elapsed by %v", rel)
	}
}
