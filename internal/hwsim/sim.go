package hwsim

import (
	"fmt"
	"math"
	"math/rand"

	"heteromix/internal/trace"
	"heteromix/internal/units"
)

// Options controls a simulated run.
type Options struct {
	// Seed drives the run's pseudo-randomness. Runs with equal inputs and
	// seeds are identical.
	Seed int64
	// NoiseSigma is the relative magnitude of run-to-run variation
	// (timing irregularity and power-meter noise). Zero gives a
	// deterministic "ideal" run; the validation experiments use ~0.03,
	// matching the few-percent irregularity the paper reports.
	NoiseSigma float64
	// ChunksPerCore sets scheduling granularity: each active core's work
	// is split into this many chunks. Zero selects the default (50).
	ChunksPerCore int
	// RecordPowerTrace captures the node's piecewise-constant power draw
	// over the run (what an attached wattmeter would log). The trace
	// integrates exactly to the run's Energy.
	RecordPowerTrace bool
}

const defaultChunksPerCore = 50

// EnergyBreakdown decomposes a run's energy by component, mirroring the
// paper's four-way split (Eq. 13).
type EnergyBreakdown struct {
	// CoreActive is the extra energy of cores executing work cycles.
	CoreActive units.Joule
	// CoreStall is the extra energy of cores stalled on memory or
	// dependencies.
	CoreStall units.Joule
	// Memory is the extra energy of the DRAM subsystem servicing misses.
	Memory units.Joule
	// NIC is the extra energy of DMA transfers.
	NIC units.Joule
	// Idle is the baseline energy: the node's full idle power integrated
	// over the run (cores in C-state 0, memory and NIC idle floors, rest
	// of system).
	Idle units.Joule
}

// Total sums the components.
func (b EnergyBreakdown) Total() units.Joule {
	return b.CoreActive + b.CoreStall + b.Memory + b.NIC + b.Idle
}

// Measurement is the complete result of one simulated run: the event-
// counter record a perf-plus-power-meter setup would produce, the energy
// breakdown, and the memory operating point.
type Measurement struct {
	Record    trace.Record
	Breakdown EnergyBreakdown
	Mem       MemoryOperatingPoint
	// PowerTrace is the wattmeter log, present when
	// Options.RecordPowerTrace was set.
	PowerTrace []PowerStep
}

// Run executes w work units of demand on a node of type spec configured
// as cfg, returning the Measurement. It is the reproduction's equivalent
// of one baseline run on the physical testbed.
func Run(spec NodeSpec, cfg Config, demand trace.Demand, w float64, opts Options) (Measurement, error) {
	if err := spec.Validate(); err != nil {
		return Measurement{}, err
	}
	if err := cfg.ValidateFor(spec); err != nil {
		return Measurement{}, err
	}
	if err := demand.Validate(); err != nil {
		return Measurement{}, err
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return Measurement{}, fmt.Errorf("hwsim: work units must be positive and finite, got %v", w)
	}
	stream, ok := demand.Translation[spec.ISA]
	if !ok {
		return Measurement{}, fmt.Errorf("hwsim: demand %q has no translation for %v", demand.Name, spec.ISA)
	}

	chunksPerCore := opts.ChunksPerCore
	if chunksPerCore <= 0 {
		chunksPerCore = defaultChunksPerCore
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	// Run-level bias models the irregularity between repeated runs of the
	// same program; chunk-level jitter models scheduling noise within one.
	runBias := noiseFactor(rng, opts.NoiseSigma)
	powerBias := noiseFactor(rng, opts.NoiseSigma)

	mpki := demand.DRAMMissesPerKiloInstr[spec.ISA]
	depStall := demand.DependencyStallsPerInstr[spec.ISA]
	mem := SolveMemory(spec, cfg, stream.Mix, mpki, depStall, float64(cfg.Cores))
	wpi := spec.WPI(stream.Mix)
	f := float64(cfg.Frequency)

	// Per-unit cycle accounting (fixed across chunks; noise is temporal).
	instrPerUnit := stream.PerUnit
	workCycPerUnit := instrPerUnit * wpi
	depCycPerUnit := instrPerUnit * depStall
	memCycPerUnit := instrPerUnit * mem.SPIMem
	stallCycPerUnit := math.Max(depCycPerUnit, memCycPerUnit)
	computeSecPerUnit := (workCycPerUnit + stallCycPerUnit) / f * runBias

	chunkUnits := w / float64(cfg.Cores*chunksPerCore)
	if chunkUnits < 1 {
		chunkUnits = math.Min(1, w)
	}
	bytesPerUnit := float64(demand.IOBytesPerUnit)
	nicSecPerByte := 1 / float64(spec.NIC.Bandwidth)

	// Average per-core draw during a chunk: active and stall power
	// weighted by the cycle split. Used for both the energy breakdown
	// and the power trace.
	actShare := 0.0
	if tot := workCycPerUnit + stallCycPerUnit; tot > 0 {
		actShare = workCycPerUnit / tot
	}
	corePowerAvg := float64(spec.CoreActivePower(cfg.Frequency))*actShare +
		float64(spec.CoreStallPower(cfg.Frequency))*(1-actShare)
	nicPower := float64(spec.Power.NICActive)

	st := &simState{
		sched:      newScheduler(),
		rng:        rng,
		sigma:      opts.NoiseSigma / 2,
		remaining:  w,
		coreOfWork: make([]float64, cfg.Cores),
		coreDur:    make([]float64, cfg.Cores),
		corePower:  corePowerAvg,
		nicPower:   nicPower,
	}
	if opts.RecordPowerTrace {
		st.rec = &powerRecorder{}
	}

	// Request-response work becomes available as the generator delivers
	// it; other work is available immediately.
	paced := demand.IO == trace.IORequestResponse && demand.RequestRate > 0
	if paced {
		st.toArrive = w
		st.arrivalChunk = chunkUnits
		st.arrivalGap = chunkUnits / demand.RequestRate
		st.sched.schedule(st.arrivalGap, evArrival, -1)
	} else {
		st.available = w
	}

	startCore := func(core int, now float64) {
		take := math.Min(chunkUnits, st.available)
		if take <= 0 {
			st.coreIdle(core)
			return
		}
		st.available -= take
		st.coreOfWork[core] = take
		d := take * computeSecPerUnit * st.jitter()
		st.coreDur[core] = d
		st.sched.schedule(now+d, evCoreDone, core)
		st.coreBusyFrom(core, now)
		st.rec.add(now, st.corePower)
	}

	for core := 0; core < cfg.Cores; core++ {
		startCore(core, 0)
	}

	for {
		ev, ok := st.sched.next()
		if !ok {
			break
		}
		st.clock = ev.at
		switch ev.kind {
		case evArrival:
			batch := math.Min(st.arrivalChunk, st.toArrive)
			st.toArrive -= batch
			st.available += batch
			if st.toArrive > 0 {
				st.sched.schedule(ev.at+st.arrivalGap, evArrival, -1)
			}
			// Wake idle cores.
			for core := 0; core < cfg.Cores; core++ {
				if !st.coreBusy(core) && st.available > 0 {
					startCore(core, ev.at)
				}
			}
		case evCoreDone:
			unitsDone := st.coreOfWork[ev.core]
			chunkSec := st.coreDur[ev.core] // jittered actual duration
			st.coreDone(ev.core, ev.at)
			st.rec.add(ev.at, -st.corePower)
			st.remaining -= unitsDone
			st.instructions += unitsDone * instrPerUnit
			st.workCycles += unitsDone * workCycPerUnit
			st.depCycles += unitsDone * depCycPerUnit
			st.memCycles += unitsDone * memCycPerUnit
			// The energy of the chunk splits between active and stall
			// power in proportion to work vs stall cycles.
			st.coreActiveSec += chunkSec * actShare
			st.coreStallSec += chunkSec * (1 - actShare)
			if demand.IO != trace.IONone && bytesPerUnit > 0 {
				st.nicEnqueue(unitsDone*bytesPerUnit, nicSecPerByte, ev.at)
			}
			startCore(ev.core, ev.at)
		case evNICDone:
			st.nicComplete(ev.at, nicSecPerByte)
		}
	}

	elapsed := st.clock
	if elapsed <= 0 {
		return Measurement{}, fmt.Errorf("hwsim: run of %q produced no simulated time", demand.Name)
	}

	memShare := MemoryActiveShare(wpi, depStall, mem.SPIMem, float64(cfg.Cores))
	breakdown := EnergyBreakdown{
		CoreActive: spec.CoreActivePower(cfg.Frequency).Times(units.Seconds(st.coreActiveSec)),
		CoreStall:  spec.CoreStallPower(cfg.Frequency).Times(units.Seconds(st.coreStallSec)),
		Memory:     spec.Power.MemActive.Times(units.Seconds(memShare * elapsed)),
		NIC:        spec.Power.NICActive.Times(units.Seconds(st.nicBusySec)),
		Idle:       spec.IdlePower().Times(units.Seconds(elapsed)),
	}
	energy := units.Joule(float64(breakdown.Total()) * powerBias)

	rec := trace.Record{
		Workload:        demand.Name,
		Node:            spec.Name,
		ISA:             spec.ISA,
		Cores:           cfg.Cores,
		Frequency:       cfg.Frequency,
		WorkUnits:       w,
		Instructions:    st.instructions,
		WorkCycles:      st.workCycles,
		CoreStallCycles: st.depCycles,
		MemStallCycles:  st.memCycles,
		CPUBusy:         units.Seconds(st.cpuBusySec),
		IOBytes:         units.Bytes(st.ioBytes),
		IOTransferTime:  units.Seconds(st.nicBusySec),
		Elapsed:         units.Seconds(elapsed),
		Energy:          energy,
	}
	if err := rec.Validate(); err != nil {
		return Measurement{}, fmt.Errorf("hwsim: internal error, invalid record: %w", err)
	}
	m := Measurement{Record: rec, Breakdown: breakdown, Mem: mem}
	if st.rec != nil {
		m.PowerTrace = st.rec.steps(float64(spec.IdlePower()),
			memShare*float64(spec.Power.MemActive), powerBias, elapsed)
	}
	return m, nil
}

// noiseFactor draws a multiplicative factor 1 + sigma*N(0,1), clamped to
// [1-3sigma, 1+3sigma] and floored at 0.5.
func noiseFactor(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	n := rng.NormFloat64()
	if n > 3 {
		n = 3
	}
	if n < -3 {
		n = -3
	}
	f := 1 + sigma*n
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// simState carries the event-driven run's mutable state and accumulators.
type simState struct {
	sched *scheduler
	rng   *rand.Rand
	sigma float64
	clock float64

	// Work bookkeeping (in work units).
	remaining    float64
	available    float64
	toArrive     float64
	arrivalChunk float64
	arrivalGap   float64

	// Core state.
	coreOfWork []float64 // units in flight per core; 0 = idle
	coreDur    []float64 // scheduled (jittered) duration of the chunk in flight
	coreStart  []float64 // busy-since timestamps (lazily allocated)

	// NIC state.
	nicQueueBytes []float64
	nicBusy       bool
	nicBusySec    float64
	ioBytes       float64

	// Power tracing.
	rec       *powerRecorder // nil unless requested
	corePower float64        // avg per-core draw while executing a chunk
	nicPower  float64        // NIC draw while transferring

	// Counters.
	instructions  float64
	workCycles    float64
	depCycles     float64
	memCycles     float64
	cpuBusySec    float64
	coreActiveSec float64
	coreStallSec  float64
}

func (st *simState) jitter() float64 { return noiseFactor(st.rng, st.sigma) }

func (st *simState) coreBusy(core int) bool { return st.coreOfWork[core] > 0 }

func (st *simState) coreBusyFrom(core int, now float64) {
	if st.coreStart == nil {
		st.coreStart = make([]float64, len(st.coreOfWork))
	}
	st.coreStart[core] = now
}

func (st *simState) coreDone(core int, now float64) {
	if st.coreStart != nil {
		st.cpuBusySec += now - st.coreStart[core]
	}
	st.coreOfWork[core] = 0
}

func (st *simState) coreIdle(core int) { st.coreOfWork[core] = 0 }

// nicEnqueue appends a DMA transfer and starts the NIC if it is idle.
func (st *simState) nicEnqueue(bytes, secPerByte, now float64) {
	st.nicQueueBytes = append(st.nicQueueBytes, bytes)
	if !st.nicBusy {
		st.rec.add(now, st.nicPower)
		st.nicStart(now, secPerByte)
	}
}

// nicStart begins the head-of-queue transfer.
func (st *simState) nicStart(now, secPerByte float64) {
	bytes := st.nicQueueBytes[0]
	d := bytes * secPerByte * st.jitter()
	st.nicBusy = true
	st.nicBusySec += d
	st.ioBytes += bytes
	st.sched.schedule(now+d, evNICDone, -1)
}

// nicComplete finishes the head transfer and starts the next, if any;
// the NIC's power drops only when its queue drains.
func (st *simState) nicComplete(now, secPerByte float64) {
	st.nicQueueBytes = st.nicQueueBytes[1:]
	st.nicBusy = false
	if len(st.nicQueueBytes) > 0 {
		st.nicStart(now, secPerByte)
		return
	}
	st.rec.add(now, -st.nicPower)
}
