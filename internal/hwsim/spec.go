// Package hwsim simulates the execution of scale-out workloads on single
// cluster nodes. It is the reproduction's stand-in for the paper's
// physical testbed: where the authors ran programs on real ARM Cortex-A9
// and AMD Opteron K10 machines instrumented with perf and a Yokogawa WT210
// power meter, we run workload service demands through a discrete-event
// node simulator that models
//
//   - super-scalar out-of-order cores with per-instruction-class issue
//     costs, whose non-memory stalls overlap with memory stalls (the
//     max(Tcore, Tmem) behaviour of paper Eq. 3),
//
//   - a single shared memory controller (UMA) whose effective latency
//     grows with the number of active cores and with bandwidth pressure —
//     producing SPImem that rises linearly with core frequency exactly as
//     Figure 3 measures, since a DRAM access costs fixed nanoseconds and
//     therefore f-proportional core cycles,
//
//   - a DMA-driven network device whose transfers fully overlap with CPU
//     activity (paper §II-A), and
//
//   - a four-component power model (cores, memory, network I/O, rest of
//     system) with frequency-dependent active and stall core power and
//     C-state-0 idling (cores never sleep, paper §II-A).
//
// Runs include seeded run-to-run variation so that validating the
// analytical model against the simulator exercises the same ±few-percent
// irregularity the paper reports as its main error source.
package hwsim

import (
	"fmt"
	"math"

	"heteromix/internal/isa"
	"heteromix/internal/units"
)

// MemorySpec describes the node's shared memory system.
type MemorySpec struct {
	// BaseLatency is the unloaded DRAM access latency.
	BaseLatencyNs float64
	// ContentionNsPerCore is the extra latency added per additional
	// active core sharing the single memory controller (the off-chip
	// contention effect of Tudor et al. the paper builds on).
	ContentionNsPerCore float64
	// PeakBandwidth is the sustainable DRAM bandwidth.
	PeakBandwidth units.BytesPerSecond
	// LineBytes is the cache-line transfer size per miss.
	LineBytes float64
}

// Validate checks the MemorySpec invariants.
func (m MemorySpec) Validate() error {
	if m.BaseLatencyNs <= 0 || m.ContentionNsPerCore < 0 || m.PeakBandwidth <= 0 || m.LineBytes <= 0 {
		return fmt.Errorf("hwsim: invalid memory spec %+v", m)
	}
	return nil
}

// NICSpec describes the node's network device.
type NICSpec struct {
	// Bandwidth is the line rate (1 Gbps for AMD, 100 Mbps for ARM).
	Bandwidth units.BytesPerSecond
}

// Validate checks the NICSpec invariants.
func (n NICSpec) Validate() error {
	if n.Bandwidth <= 0 {
		return fmt.Errorf("hwsim: invalid NIC bandwidth %v", n.Bandwidth)
	}
	return nil
}

// PowerSpec is the node's power model. Core, memory and NIC figures are
// *additional* power over their idle draw; the complete idle power of the
// node (paper's Pidle) is Rest + Cores*CoreIdle + MemIdle + NICIdle,
// matching the paper's convention that idle power already includes every
// component's floor.
type PowerSpec struct {
	// CoreIdle is one core's draw when idling in C-state 0.
	CoreIdle units.Watt
	// CoreActiveMax is the extra draw of a core executing work cycles at
	// maximum frequency; it scales as (f/fmax)^FreqExponent.
	CoreActiveMax units.Watt
	// CoreStallMax is the extra draw of a core that is stalled waiting
	// (clocking but not retiring), at maximum frequency.
	CoreStallMax units.Watt
	// FreqExponent models DVFS: dynamic power ~ f^FreqExponent.
	FreqExponent float64
	// MemIdle and MemActive are the DRAM subsystem's idle draw and the
	// extra draw while servicing misses.
	MemIdle, MemActive units.Watt
	// NICIdle and NICActive are the network device's idle draw and the
	// extra draw during DMA transfers.
	NICIdle, NICActive units.Watt
	// Rest is the fixed draw of everything else (paper §II-A: disks,
	// power supply, motherboard circuitry).
	Rest units.Watt
}

// Validate checks the PowerSpec invariants.
func (p PowerSpec) Validate() error {
	vals := []units.Watt{p.CoreIdle, p.CoreActiveMax, p.CoreStallMax, p.MemIdle, p.MemActive, p.NICIdle, p.NICActive, p.Rest}
	for _, v := range vals {
		if v < 0 || math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("hwsim: negative or non-finite power in %+v", p)
		}
	}
	if p.FreqExponent < 1 || p.FreqExponent > 3.5 {
		return fmt.Errorf("hwsim: implausible frequency exponent %v", p.FreqExponent)
	}
	if p.CoreStallMax > p.CoreActiveMax {
		return fmt.Errorf("hwsim: stall power %v exceeds active power %v", p.CoreStallMax, p.CoreActiveMax)
	}
	return nil
}

// NodeSpec fully describes one node type.
type NodeSpec struct {
	// Name identifies the node type ("arm-cortex-a9", "amd-opteron-k10").
	Name string
	// ISA is the node's instruction set.
	ISA isa.ISA
	// Cores is the core count (Table 1: 4 on ARM, 6 on AMD).
	Cores int
	// Frequencies are the selectable P-states, ascending (Table 1 plus
	// the paper's footnote 2: 5 frequencies on ARM, 3 on AMD).
	Frequencies []units.Hertz
	// ClassCPI is the issue cost in cycles of one instruction of each
	// class when its operands are ready (work cycles per instruction).
	ClassCPI [isa.NumClasses]float64
	// Mem is the memory system.
	Mem MemorySpec
	// NIC is the network device.
	NIC NICSpec
	// Power is the power model.
	Power PowerSpec
}

// Validate checks the NodeSpec invariants.
func (s NodeSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("hwsim: node spec with empty name")
	}
	if !s.ISA.Valid() {
		return fmt.Errorf("hwsim: node %q has invalid ISA", s.Name)
	}
	if s.Cores <= 0 {
		return fmt.Errorf("hwsim: node %q has %d cores", s.Name, s.Cores)
	}
	if len(s.Frequencies) == 0 {
		return fmt.Errorf("hwsim: node %q has no frequencies", s.Name)
	}
	for i, f := range s.Frequencies {
		if f <= 0 {
			return fmt.Errorf("hwsim: node %q frequency %d is %v", s.Name, i, f)
		}
		if i > 0 && f <= s.Frequencies[i-1] {
			return fmt.Errorf("hwsim: node %q frequencies not ascending", s.Name)
		}
	}
	for c, cpi := range s.ClassCPI {
		if cpi <= 0 {
			return fmt.Errorf("hwsim: node %q has CPI %v for class %v", s.Name, cpi, isa.Class(c))
		}
	}
	if err := s.Mem.Validate(); err != nil {
		return err
	}
	if err := s.NIC.Validate(); err != nil {
		return err
	}
	return s.Power.Validate()
}

// FMax returns the highest P-state frequency.
func (s NodeSpec) FMax() units.Hertz { return s.Frequencies[len(s.Frequencies)-1] }

// FMin returns the lowest P-state frequency.
func (s NodeSpec) FMin() units.Hertz { return s.Frequencies[0] }

// HasFrequency reports whether f is a selectable P-state.
func (s NodeSpec) HasFrequency(f units.Hertz) bool {
	for _, have := range s.Frequencies {
		if have == f {
			return true
		}
	}
	return false
}

// WPI returns the work cycles per instruction for the given mix on this
// node: the mix-weighted issue cost. This is the quantity the paper
// measures as WPI and finds constant across problem sizes (Figure 2).
func (s NodeSpec) WPI(m isa.Mix) float64 {
	w := 0.0
	for _, c := range isa.Classes() {
		w += m.Fraction(c) * s.ClassCPI[c]
	}
	return w
}

// IdlePower returns the node's complete idle power, the paper's Pidle.
func (s NodeSpec) IdlePower() units.Watt {
	return s.Power.Rest +
		units.Watt(float64(s.Power.CoreIdle)*float64(s.Cores)) +
		s.Power.MemIdle + s.Power.NICIdle
}

// PeakPower returns the node's maximum draw: all cores active at fmax
// with memory and NIC active. For the calibrated nodes this reproduces
// the paper's §IV-C figures (AMD ~60 W, ARM ~5 W).
func (s NodeSpec) PeakPower() units.Watt {
	return s.IdlePower() +
		units.Watt(float64(s.Power.CoreActiveMax)*float64(s.Cores)) +
		s.Power.MemActive + s.Power.NICActive
}

// CoreActivePower returns one core's extra draw when executing work
// cycles at frequency f.
func (s NodeSpec) CoreActivePower(f units.Hertz) units.Watt {
	return scalePower(s.Power.CoreActiveMax, f, s.FMax(), s.Power.FreqExponent)
}

// CoreStallPower returns one core's extra draw when stalled at frequency f.
func (s NodeSpec) CoreStallPower(f units.Hertz) units.Watt {
	return scalePower(s.Power.CoreStallMax, f, s.FMax(), s.Power.FreqExponent)
}

func scalePower(max units.Watt, f, fmax units.Hertz, exp float64) units.Watt {
	if f <= 0 || fmax <= 0 {
		return 0
	}
	return units.Watt(float64(max) * math.Pow(float64(f)/float64(fmax), exp))
}

// ConfigCount returns the number of (cores, frequency) configurations of
// a single node, used by the paper's footnote-2 configuration arithmetic.
func (s NodeSpec) ConfigCount() int { return s.Cores * len(s.Frequencies) }

// ARMCortexA9 returns the calibrated low-power node of Table 1:
// 4 cores at 0.2-1.4 GHz, 1 GB LP-DDR2 behind one controller, 100 Mbps
// NIC, idle power 1.8 W and peak 5 W (paper §IV-C: "each ARM node draws a
// peak power of 5 W", idling "at less than 2 watts").
func ARMCortexA9() NodeSpec {
	var cpi [isa.NumClasses]float64
	cpi[isa.IntALU] = 0.9
	cpi[isa.FP] = 1.4
	cpi[isa.Mem] = 1.0
	cpi[isa.Branch] = 1.1
	cpi[isa.Crypto] = 4.0 // 32-bit datapath synthesizes wide multiplies
	return NodeSpec{
		Name:  "arm-cortex-a9",
		ISA:   isa.ARMv7A,
		Cores: 4,
		Frequencies: []units.Hertz{
			0.2 * units.GHz, 0.5 * units.GHz, 0.8 * units.GHz, 1.1 * units.GHz, 1.4 * units.GHz,
		},
		ClassCPI: cpi,
		Mem: MemorySpec{
			BaseLatencyNs:       110,
			ContentionNsPerCore: 20,
			PeakBandwidth:       units.BytesPerSecond(0.8e9), // LP-DDR2 sustainable
			LineBytes:           32,                          // Cortex-A9 line size
		},
		NIC: NICSpec{Bandwidth: units.Mbps(100)},
		Power: PowerSpec{
			CoreIdle:      0.1,
			CoreActiveMax: 0.7,
			CoreStallMax:  0.45,
			FreqExponent:  2.2,
			MemIdle:       0.1,
			MemActive:     0.3,
			NICIdle:       0.1,
			NICActive:     0.1,
			Rest:          1.2,
		},
	}
}

// AMDOpteronK10 returns the calibrated high-performance node of Table 1:
// 6 cores at 0.8-2.1 GHz, 8 GB DDR3, 1 Gbps NIC, idle power 45 W and peak
// 60 W (paper §IV-C/§IV-E: 60 W peak, "AMD idle power is 45 watts").
func AMDOpteronK10() NodeSpec {
	var cpi [isa.NumClasses]float64
	cpi[isa.IntALU] = 0.5
	cpi[isa.FP] = 0.8
	cpi[isa.Mem] = 0.6
	cpi[isa.Branch] = 0.7
	cpi[isa.Crypto] = 1.0 // 64-bit MUL pipeline
	return NodeSpec{
		Name:  "amd-opteron-k10",
		ISA:   isa.X8664,
		Cores: 6,
		Frequencies: []units.Hertz{
			0.8 * units.GHz, 1.4 * units.GHz, 2.1 * units.GHz,
		},
		ClassCPI: cpi,
		Mem: MemorySpec{
			BaseLatencyNs:       60,
			ContentionNsPerCore: 6,
			PeakBandwidth:       units.BytesPerSecond(6.4e9), // DDR3 sustainable
			LineBytes:           64,
		},
		NIC: NICSpec{Bandwidth: units.Mbps(1000)},
		Power: PowerSpec{
			CoreIdle:      1.0,
			CoreActiveMax: 2.0,
			CoreStallMax:  1.3,
			FreqExponent:  2.2,
			MemIdle:       0.5,
			MemActive:     2.0,
			NICIdle:       0.5,
			NICActive:     1.0,
			Rest:          38,
		},
	}
}

// Names lists every calibrated node spec ByName resolves, in canonical
// registry order. Callers that warm per-node state for the whole
// registry (e.g. experiments.Suite.WarmAllModels) iterate this list so
// two processes doing so end up bit-identical.
func Names() []string {
	return []string{"arm-cortex-a9", "amd-opteron-k10", "arm-cortex-a15"}
}

// ByName returns a calibrated node spec by its Name, for reconstructing
// persisted models. Known names: "arm-cortex-a9", "amd-opteron-k10",
// "arm-cortex-a15".
func ByName(name string) (NodeSpec, error) {
	switch name {
	case "arm-cortex-a9":
		return ARMCortexA9(), nil
	case "amd-opteron-k10":
		return AMDOpteronK10(), nil
	case "arm-cortex-a15":
		return ARMCortexA15(), nil
	default:
		return NodeSpec{}, fmt.Errorf("hwsim: unknown node type %q", name)
	}
}

// Config selects how a node runs a job: how many cores participate and at
// which P-state they clock. This is the per-node configuration dimension
// of the paper's search space.
type Config struct {
	Cores     int
	Frequency units.Hertz
}

// ValidateFor checks that the config is realizable on spec.
func (c Config) ValidateFor(spec NodeSpec) error {
	if c.Cores < 1 || c.Cores > spec.Cores {
		return fmt.Errorf("hwsim: %d cores outside 1..%d on %s", c.Cores, spec.Cores, spec.Name)
	}
	if !spec.HasFrequency(c.Frequency) {
		return fmt.Errorf("hwsim: frequency %v not a P-state of %s", c.Frequency, spec.Name)
	}
	return nil
}

// Configs enumerates every (cores, frequency) configuration of spec,
// cores-major then frequency.
func Configs(spec NodeSpec) []Config {
	out := make([]Config, 0, spec.ConfigCount())
	for c := 1; c <= spec.Cores; c++ {
		for _, f := range spec.Frequencies {
			out = append(out, Config{Cores: c, Frequency: f})
		}
	}
	return out
}
