package hwsim

import (
	"math"
	"testing"

	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func traceRun(t *testing.T, workload string, cfg Config, w float64, seed int64, sigma float64) Measurement {
	t.Helper()
	spec := ARMCortexA9()
	s, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(spec, cfg, s.Demand, w, Options{
		Seed: seed, NoiseSigma: sigma, RecordPowerTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The wattmeter trace integrates exactly to the run's metered energy —
// the conservation law tying the two measurement views together.
func TestPowerTraceIntegratesToEnergy(t *testing.T) {
	cases := []struct {
		workload string
		cfg      Config
		w        float64
	}{
		{"ep", Config{Cores: 4, Frequency: 1.4 * units.GHz}, 1e6},
		{"ep", Config{Cores: 1, Frequency: 0.2 * units.GHz}, 1e5},
		{"memcached", Config{Cores: 4, Frequency: 1.4 * units.GHz}, 2e4},
		{"julius", Config{Cores: 2, Frequency: 0.8 * units.GHz}, 1e5},
	}
	for _, c := range cases {
		for _, sigma := range []float64{0, 0.03} {
			m := traceRun(t, c.workload, c.cfg, c.w, 5, sigma)
			if len(m.PowerTrace) == 0 {
				t.Fatalf("%s: no trace recorded", c.workload)
			}
			got := IntegrateTrace(m.PowerTrace, m.Record.Elapsed)
			want := m.Record.Energy
			if rel := math.Abs(float64(got-want)) / float64(want); rel > 1e-6 {
				t.Errorf("%s sigma=%v: trace integral %v vs energy %v (rel %v)",
					c.workload, sigma, got, want, rel)
			}
		}
	}
}

func TestPowerTraceAbsentByDefault(t *testing.T) {
	spec := ARMCortexA9()
	s, _ := workloads.ByName("ep")
	m, err := Run(spec, Config{Cores: 4, Frequency: 1.4 * units.GHz}, s.Demand, 1e5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.PowerTrace != nil {
		t.Error("trace should not be recorded unless requested")
	}
}

func TestPowerTraceWithinPhysicalBounds(t *testing.T) {
	spec := ARMCortexA9()
	m := traceRun(t, "ep", Config{Cores: 4, Frequency: 1.4 * units.GHz}, 1e6, 1, 0)
	peak := PeakPowerOf(m.PowerTrace)
	if peak > spec.PeakPower()*1.01 {
		t.Errorf("trace peak %v exceeds node peak %v", peak, spec.PeakPower())
	}
	for _, s := range m.PowerTrace {
		if s.Power < spec.IdlePower()*0.99 {
			t.Errorf("trace dips below idle: %v at %v", s.Power, s.At)
		}
	}
	// Steps are strictly time-ordered.
	for i := 1; i < len(m.PowerTrace); i++ {
		if m.PowerTrace[i].At <= m.PowerTrace[i-1].At {
			t.Fatalf("steps not ordered at %d", i)
		}
	}
}

func TestPowerTraceShowsLoadTransitions(t *testing.T) {
	// A compute run's trace starts at full draw (all cores busy from
	// t=0) and the first step must exceed idle substantially.
	m := traceRun(t, "ep", Config{Cores: 4, Frequency: 1.4 * units.GHz}, 1e6, 1, 0)
	first := m.PowerTrace[0]
	if first.At != 0 {
		t.Errorf("first step at %v, want 0", first.At)
	}
	idle := ARMCortexA9().IdlePower()
	if first.Power < idle+2 {
		t.Errorf("initial power %v should be well above idle %v (4 cores busy)", first.Power, idle)
	}
}

func TestIntegrateTraceEdgeCases(t *testing.T) {
	if IntegrateTrace(nil, 1) != 0 {
		t.Error("empty trace should integrate to 0")
	}
	steps := []PowerStep{{At: 0, Power: 10}, {At: 1, Power: 20}}
	if got := IntegrateTrace(steps, 0); got != 0 {
		t.Errorf("zero window = %v", got)
	}
	// 10 W for 1 s + 20 W for 1 s = 30 J.
	if got := IntegrateTrace(steps, 2); math.Abs(float64(got)-30) > 1e-12 {
		t.Errorf("integral = %v, want 30", got)
	}
	// Truncated at end: 10 W x 0.5 s.
	if got := IntegrateTrace(steps, 0.5); math.Abs(float64(got)-5) > 1e-12 {
		t.Errorf("truncated integral = %v, want 5", got)
	}
}

func TestSampleTrace(t *testing.T) {
	steps := []PowerStep{{At: 0, Power: 10}, {At: 1, Power: 20}}
	samples := SampleTrace(steps, 2, 0.5)
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	if samples[0].Power != 10 || samples[3].Power != 20 {
		t.Errorf("sample values wrong: %+v", samples)
	}
	// Bucket straddling the transition averages the two levels.
	if samples[1].Power != 10 || samples[2].Power != 20 {
		t.Errorf("bucket averaging wrong: %+v", samples)
	}
	// Resampling conserves energy.
	var e float64
	for _, s := range samples {
		e += float64(s.Power) * 0.5
	}
	if math.Abs(e-30) > 1e-9 {
		t.Errorf("resampled energy %v, want 30", e)
	}
	if SampleTrace(nil, 1, 0.1) != nil {
		t.Error("empty trace should sample to nil")
	}
	if SampleTrace(steps, 0, 0.1) != nil {
		t.Error("zero window should sample to nil")
	}
}

func TestPeakPowerOf(t *testing.T) {
	if PeakPowerOf(nil) != 0 {
		t.Error("empty trace peak should be 0")
	}
	steps := []PowerStep{{At: 0, Power: 3}, {At: 1, Power: 7}, {At: 2, Power: 5}}
	if got := PeakPowerOf(steps); got != 7 {
		t.Errorf("peak = %v, want 7", got)
	}
}
