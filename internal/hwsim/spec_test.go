package hwsim

import (
	"math"
	"testing"

	"heteromix/internal/isa"
	"heteromix/internal/units"
)

func TestCalibratedSpecsValidate(t *testing.T) {
	for _, spec := range []NodeSpec{ARMCortexA9(), AMDOpteronK10()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

// Table 1 of the paper fixes the headline hardware parameters.
func TestTable1Parameters(t *testing.T) {
	arm := ARMCortexA9()
	if arm.ISA != isa.ARMv7A {
		t.Errorf("ARM ISA = %v", arm.ISA)
	}
	if arm.Cores != 4 {
		t.Errorf("ARM cores = %d, want 4", arm.Cores)
	}
	if arm.FMin() != 0.2*units.GHz || arm.FMax() != 1.4*units.GHz {
		t.Errorf("ARM frequency range = %v..%v, want 0.2..1.4 GHz", arm.FMin(), arm.FMax())
	}
	if len(arm.Frequencies) != 5 {
		t.Errorf("ARM has %d P-states, want 5 (paper footnote 2)", len(arm.Frequencies))
	}
	if arm.NIC.Bandwidth != units.Mbps(100) {
		t.Errorf("ARM NIC = %v, want 100 Mbps", arm.NIC.Bandwidth)
	}

	amd := AMDOpteronK10()
	if amd.ISA != isa.X8664 {
		t.Errorf("AMD ISA = %v", amd.ISA)
	}
	if amd.Cores != 6 {
		t.Errorf("AMD cores = %d, want 6", amd.Cores)
	}
	if amd.FMin() != 0.8*units.GHz || amd.FMax() != 2.1*units.GHz {
		t.Errorf("AMD frequency range = %v..%v, want 0.8..2.1 GHz", amd.FMin(), amd.FMax())
	}
	if len(amd.Frequencies) != 3 {
		t.Errorf("AMD has %d P-states, want 3 (paper footnote 2)", len(amd.Frequencies))
	}
	if amd.NIC.Bandwidth != units.Mbps(1000) {
		t.Errorf("AMD NIC = %v, want 1 Gbps", amd.NIC.Bandwidth)
	}
}

// Section IV-C fixes the power corners: ARM idles under 2 W and peaks at
// 5 W; AMD idles at 45 W and peaks at 60 W.
func TestPaperPowerCorners(t *testing.T) {
	arm := ARMCortexA9()
	if p := arm.IdlePower(); p >= 2 {
		t.Errorf("ARM idle = %v, want < 2 W", p)
	}
	if p := arm.PeakPower(); math.Abs(float64(p)-5) > 0.25 {
		t.Errorf("ARM peak = %v, want ~5 W", p)
	}
	amd := AMDOpteronK10()
	if p := amd.IdlePower(); math.Abs(float64(p)-45) > 1 {
		t.Errorf("AMD idle = %v, want ~45 W", p)
	}
	if p := amd.PeakPower(); math.Abs(float64(p)-60) > 1 {
		t.Errorf("AMD peak = %v, want ~60 W", p)
	}
}

// Footnote 2: 10 ARM + 10 AMD nodes yield 36,380 configurations; the
// per-node factors are 20 (ARM) and 18 (AMD).
func TestConfigCountsMatchFootnote2(t *testing.T) {
	arm, amd := ARMCortexA9(), AMDOpteronK10()
	if got := arm.ConfigCount(); got != 20 {
		t.Errorf("ARM config count = %d, want 20 (4 cores x 5 freqs)", got)
	}
	if got := amd.ConfigCount(); got != 18 {
		t.Errorf("AMD config count = %d, want 18 (6 cores x 3 freqs)", got)
	}
	if got := len(Configs(arm)); got != 20 {
		t.Errorf("Configs(arm) has %d entries", got)
	}
	// The full 36,380-point arithmetic is asserted in the cluster
	// package, where node-count enumeration lives.
}

func TestNodeSpecValidateRejectsBadSpecs(t *testing.T) {
	base := ARMCortexA9()
	cases := []struct {
		name   string
		mutate func(*NodeSpec)
	}{
		{"empty name", func(s *NodeSpec) { s.Name = "" }},
		{"bad isa", func(s *NodeSpec) { s.ISA = isa.ISA(9) }},
		{"zero cores", func(s *NodeSpec) { s.Cores = 0 }},
		{"no freqs", func(s *NodeSpec) { s.Frequencies = nil }},
		{"zero freq", func(s *NodeSpec) { s.Frequencies = []units.Hertz{0} }},
		{"descending freqs", func(s *NodeSpec) {
			s.Frequencies = []units.Hertz{2 * units.GHz, 1 * units.GHz}
		}},
		{"zero class cpi", func(s *NodeSpec) { s.ClassCPI[isa.FP] = 0 }},
		{"bad mem", func(s *NodeSpec) { s.Mem.BaseLatencyNs = 0 }},
		{"bad nic", func(s *NodeSpec) { s.NIC.Bandwidth = 0 }},
		{"negative power", func(s *NodeSpec) { s.Power.Rest = -1 }},
		{"stall above active", func(s *NodeSpec) { s.Power.CoreStallMax = s.Power.CoreActiveMax + 1 }},
		{"crazy exponent", func(s *NodeSpec) { s.Power.FreqExponent = 9 }},
	}
	for _, c := range cases {
		s := base
		s.Frequencies = append([]units.Hertz(nil), base.Frequencies...)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestHasFrequency(t *testing.T) {
	arm := ARMCortexA9()
	if !arm.HasFrequency(1.4 * units.GHz) {
		t.Error("1.4 GHz should be an ARM P-state")
	}
	if arm.HasFrequency(1.0 * units.GHz) {
		t.Error("1.0 GHz should not be an ARM P-state")
	}
}

func TestWPIWeightsClassCosts(t *testing.T) {
	amd := AMDOpteronK10()
	pureInt := isa.MustMix(map[isa.Class]float64{isa.IntALU: 1})
	if got := amd.WPI(pureInt); got != amd.ClassCPI[isa.IntALU] {
		t.Errorf("pure-int WPI = %v, want %v", got, amd.ClassCPI[isa.IntALU])
	}
	half := isa.MustMix(map[isa.Class]float64{isa.IntALU: 0.5, isa.Crypto: 0.5})
	want := 0.5*amd.ClassCPI[isa.IntALU] + 0.5*amd.ClassCPI[isa.Crypto]
	if got := amd.WPI(half); math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed WPI = %v, want %v", got, want)
	}
}

// The crypto class must issue much slower on ARM than on AMD — the
// mechanism behind the paper's RSA-2048 PPR inversion.
func TestCryptoCPIAsymmetry(t *testing.T) {
	arm, amd := ARMCortexA9(), AMDOpteronK10()
	if arm.ClassCPI[isa.Crypto] < 3*amd.ClassCPI[isa.Crypto] {
		t.Errorf("ARM crypto CPI %v should be >= 3x AMD's %v",
			arm.ClassCPI[isa.Crypto], amd.ClassCPI[isa.Crypto])
	}
}

func TestCorePowerScalesWithFrequency(t *testing.T) {
	arm := ARMCortexA9()
	pMax := arm.CoreActivePower(arm.FMax())
	pMin := arm.CoreActivePower(arm.FMin())
	if pMax != arm.Power.CoreActiveMax {
		t.Errorf("active power at fmax = %v, want %v", pMax, arm.Power.CoreActiveMax)
	}
	if pMin >= pMax {
		t.Errorf("power should drop at lower frequency: %v >= %v", pMin, pMax)
	}
	want := float64(arm.Power.CoreActiveMax) * math.Pow(0.2/1.4, arm.Power.FreqExponent)
	if math.Abs(float64(pMin)-want) > 1e-9 {
		t.Errorf("fmin power = %v, want %v", pMin, want)
	}
	if got := arm.CoreStallPower(arm.FMax()); got >= pMax {
		t.Errorf("stall power %v should be below active power %v", got, pMax)
	}
	if got := scalePower(1, 0, arm.FMax(), 2); got != 0 {
		t.Errorf("zero frequency power = %v, want 0", got)
	}
}

func TestConfigValidateFor(t *testing.T) {
	arm := ARMCortexA9()
	good := Config{Cores: 4, Frequency: 1.4 * units.GHz}
	if err := good.ValidateFor(arm); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Cores: 0, Frequency: 1.4 * units.GHz},
		{Cores: 5, Frequency: 1.4 * units.GHz},
		{Cores: 2, Frequency: 1.0 * units.GHz},
	} {
		if err := bad.ValidateFor(arm); err == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
}

func TestConfigsEnumerationOrder(t *testing.T) {
	arm := ARMCortexA9()
	cfgs := Configs(arm)
	if cfgs[0].Cores != 1 || cfgs[0].Frequency != arm.FMin() {
		t.Errorf("first config = %+v", cfgs[0])
	}
	last := cfgs[len(cfgs)-1]
	if last.Cores != arm.Cores || last.Frequency != arm.FMax() {
		t.Errorf("last config = %+v", last)
	}
	seen := map[Config]bool{}
	for _, c := range cfgs {
		if seen[c] {
			t.Errorf("duplicate config %+v", c)
		}
		seen[c] = true
		if err := c.ValidateFor(arm); err != nil {
			t.Errorf("enumerated config invalid: %v", err)
		}
	}
}
