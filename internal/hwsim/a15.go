package hwsim

import (
	"heteromix/internal/isa"
	"heteromix/internal/units"
)

// ARMCortexA15 returns a third calibrated node type, demonstrating that
// the methodology generalizes beyond the paper's two-type instantiation
// ("This methodology is used to determine a generic mix of heterogeneous
// nodes", §II-A; the paper itself lists the Cortex-A15 among the systems
// its execution model covers).
//
// The A15 is a wider out-of-order ARMv7-A core: roughly 1.3x the A9's
// IPC and up to 2 GHz, at ~2x the power — faster but less
// energy-efficient than the A9, slower but far more efficient than the
// AMD K10. It slots between the paper's two poles, which makes tri-type
// mixes a meaningful exercise (see examples/tri-cluster).
//
// One modeling simplification: workload demands carry dependency-stall
// and miss-rate parameters per ISA, so the A15 inherits the A9's ARMv7-A
// values even though its deeper out-of-order window would hide somewhat
// more latency. The effect is conservative (the A15 is modeled slightly
// slower than real silicon).
func ARMCortexA15() NodeSpec {
	var cpi [isa.NumClasses]float64
	cpi[isa.IntALU] = 0.6
	cpi[isa.FP] = 1.0
	cpi[isa.Mem] = 0.7
	cpi[isa.Branch] = 0.8
	cpi[isa.Crypto] = 3.0 // still a 32-bit datapath
	return NodeSpec{
		Name:  "arm-cortex-a15",
		ISA:   isa.ARMv7A,
		Cores: 4,
		Frequencies: []units.Hertz{
			0.6 * units.GHz, 1.0 * units.GHz, 1.5 * units.GHz, 2.0 * units.GHz,
		},
		ClassCPI: cpi,
		Mem: MemorySpec{
			BaseLatencyNs:       90,
			ContentionNsPerCore: 15,
			PeakBandwidth:       units.BytesPerSecond(3.2e9), // LP-DDR3
			LineBytes:           64,
		},
		NIC: NICSpec{Bandwidth: units.Mbps(1000)},
		Power: PowerSpec{
			CoreIdle:      0.15,
			CoreActiveMax: 2.1,
			CoreStallMax:  1.35,
			FreqExponent:  2.3,
			MemIdle:       0.15,
			MemActive:     0.5,
			NICIdle:       0.2,
			NICActive:     0.4,
			Rest:          1.5,
		},
	}
}
