package hwsim

import (
	"sort"

	"heteromix/internal/units"
)

// PowerStep is one step of a node's piecewise-constant power draw during
// a simulated run: the node draws Power from At until the next step (or
// the end of the run). This is what a wattmeter attached to the node
// would record, and what the paper's Yokogawa WT210 produced for the
// authors.
type PowerStep struct {
	At    units.Seconds
	Power units.Watt
}

// powerEvent is an internal delta in some component's draw.
type powerEvent struct {
	at    float64
	delta float64
}

// powerRecorder accumulates component on/off deltas during a run and
// assembles the step trace afterwards.
type powerRecorder struct {
	events []powerEvent
}

// add records a power delta at a simulated time.
func (r *powerRecorder) add(at, delta float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, powerEvent{at: at, delta: delta})
}

// steps assembles the piecewise-constant trace: base idle power plus the
// accumulated deltas, scaled by the meter bias, with the constant
// memory-share contribution folded in.
func (r *powerRecorder) steps(base, memConstant, bias float64, end float64) []PowerStep {
	if r == nil {
		return nil
	}
	sort.SliceStable(r.events, func(i, j int) bool { return r.events[i].at < r.events[j].at })
	cur := base + memConstant
	out := []PowerStep{{At: 0, Power: units.Watt(cur * bias)}}
	i := 0
	for i < len(r.events) {
		at := r.events[i].at
		for i < len(r.events) && r.events[i].at == at {
			cur += r.events[i].delta
			i++
		}
		if at >= end {
			break
		}
		// Merge with the previous step when the power is unchanged.
		p := units.Watt(cur * bias)
		if out[len(out)-1].Power == p {
			continue
		}
		if out[len(out)-1].At == units.Seconds(at) {
			out[len(out)-1].Power = p
			continue
		}
		out = append(out, PowerStep{At: units.Seconds(at), Power: p})
	}
	return out
}

// IntegrateTrace returns the energy of a step trace over [0, end]: the
// sum of each step's power times its duration. For traces produced by
// Run with RecordPowerTrace, this equals the run's Energy within
// floating-point tolerance (asserted by tests).
func IntegrateTrace(steps []PowerStep, end units.Seconds) units.Joule {
	if len(steps) == 0 || end <= 0 {
		return 0
	}
	total := 0.0
	for i, s := range steps {
		hi := float64(end)
		if i+1 < len(steps) {
			hi = float64(steps[i+1].At)
		}
		if hi > float64(end) {
			hi = float64(end)
		}
		lo := float64(s.At)
		if hi > lo {
			total += float64(s.Power) * (hi - lo)
		}
	}
	return units.Joule(total)
}

// PeakPowerOf returns the largest step in the trace.
func PeakPowerOf(steps []PowerStep) units.Watt {
	var max units.Watt
	for _, s := range steps {
		if s.Power > max {
			max = s.Power
		}
	}
	return max
}

// SampleTrace resamples the step trace at a fixed interval, averaging
// power within each bucket — the form a fixed-rate meter reports.
func SampleTrace(steps []PowerStep, end units.Seconds, interval units.Seconds) []PowerStep {
	if len(steps) == 0 || interval <= 0 || end <= 0 {
		return nil
	}
	var out []PowerStep
	for lo := 0.0; lo < float64(end); lo += float64(interval) {
		hi := lo + float64(interval)
		if hi > float64(end) {
			hi = float64(end)
		}
		e := IntegrateTrace(steps, units.Seconds(hi)) - IntegrateTrace(steps, units.Seconds(lo))
		out = append(out, PowerStep{
			At:    units.Seconds(lo),
			Power: units.Watt(float64(e) / (hi - lo)),
		})
	}
	return out
}
