package hwsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"heteromix/internal/workloads"
)

// randomConfig draws a valid configuration for spec.
func randomConfig(rng *rand.Rand, spec NodeSpec) Config {
	return Config{
		Cores:     1 + rng.Intn(spec.Cores),
		Frequency: spec.Frequencies[rng.Intn(len(spec.Frequencies))],
	}
}

// Conservation laws that must hold for every run, any workload, any
// configuration, with or without noise:
//
//	instructions = IPs * w
//	work cycles  = instructions * WPI
//	energy       = breakdown total, within the clamped meter bias
//	CPU busy     <= cores * elapsed
//	all counters >= 0
func TestRunConservationLaws(t *testing.T) {
	specs := []NodeSpec{ARMCortexA9(), AMDOpteronK10(), ARMCortexA15()}
	names := workloads.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := specs[rng.Intn(len(specs))]
		w, err := workloads.ByName(names[rng.Intn(len(names))])
		if err != nil {
			return false
		}
		cfg := randomConfig(rng, spec)
		units := math.Pow(10, 3+3*rng.Float64()) // 1e3..1e6 work units
		sigma := 0.0
		if rng.Intn(2) == 1 {
			sigma = 0.03
		}
		m, err := Run(spec, cfg, w.Demand, units, Options{Seed: seed, NoiseSigma: sigma})
		if err != nil {
			return false
		}
		r := m.Record
		stream := w.Demand.Translation[spec.ISA]
		if math.Abs(r.Instructions-stream.PerUnit*units) > 1e-6*r.Instructions {
			return false
		}
		wantWPI := spec.WPI(stream.Mix)
		if math.Abs(r.WPI()-wantWPI) > 1e-9 {
			return false
		}
		// The metered energy differs from the true breakdown only by
		// the meter bias (clamped at 3 sigma).
		ratio := float64(r.Energy) / float64(m.Breakdown.Total())
		if ratio < 1-3.5*sigma-1e-9 || ratio > 1+3.5*sigma+1e-9 {
			return false
		}
		if float64(r.CPUBusy) > float64(r.Elapsed)*float64(r.Cores)*(1+1e-9) {
			return false
		}
		return r.WorkCycles >= 0 && r.CoreStallCycles >= 0 && r.MemStallCycles >= 0 &&
			r.Elapsed > 0 && r.Energy > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Average power always lies between the node's idle and peak draw.
func TestRunPowerBounds(t *testing.T) {
	specs := []NodeSpec{ARMCortexA9(), AMDOpteronK10(), ARMCortexA15()}
	names := workloads.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := specs[rng.Intn(len(specs))]
		w, err := workloads.ByName(names[rng.Intn(len(names))])
		if err != nil {
			return false
		}
		cfg := randomConfig(rng, spec)
		m, err := Run(spec, cfg, w.Demand, 1e4, Options{Seed: seed})
		if err != nil {
			return false
		}
		p := float64(m.Record.AveragePower())
		return p >= float64(spec.IdlePower())*(1-1e-9) &&
			p <= float64(spec.PeakPower())*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// More cores or higher frequency never slows a run down (noiseless).
func TestRunMonotoneInResources(t *testing.T) {
	specs := []NodeSpec{ARMCortexA9(), AMDOpteronK10()}
	names := workloads.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := specs[rng.Intn(len(specs))]
		w, err := workloads.ByName(names[rng.Intn(len(names))])
		if err != nil {
			return false
		}
		cfg := randomConfig(rng, spec)
		base, err := Run(spec, cfg, w.Demand, 1e4, Options{})
		if err != nil {
			return false
		}
		// Add a core if possible.
		if cfg.Cores < spec.Cores {
			up := cfg
			up.Cores++
			m, err := Run(spec, up, w.Demand, 1e4, Options{})
			if err != nil || m.Record.Elapsed > base.Record.Elapsed*(1+1e-9) {
				return false
			}
		}
		// Raise the frequency if possible.
		for i, fq := range spec.Frequencies {
			if fq == cfg.Frequency && i+1 < len(spec.Frequencies) {
				up := cfg
				up.Frequency = spec.Frequencies[i+1]
				m, err := Run(spec, up, w.Demand, 1e4, Options{})
				if err != nil || m.Record.Elapsed > base.Record.Elapsed*(1+1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The power trace's integral equals the metered energy for arbitrary
// runs — the wattmeter conservation law under randomization.
func TestPowerTraceConservationProperty(t *testing.T) {
	specs := []NodeSpec{ARMCortexA9(), AMDOpteronK10()}
	names := workloads.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := specs[rng.Intn(len(specs))]
		w, err := workloads.ByName(names[rng.Intn(len(names))])
		if err != nil {
			return false
		}
		cfg := randomConfig(rng, spec)
		m, err := Run(spec, cfg, w.Demand, 1e4, Options{
			Seed: seed, NoiseSigma: 0.03, RecordPowerTrace: true,
		})
		if err != nil {
			return false
		}
		got := IntegrateTrace(m.PowerTrace, m.Record.Elapsed)
		return math.Abs(float64(got-m.Record.Energy)) <= 1e-6*float64(m.Record.Energy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
