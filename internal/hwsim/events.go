package hwsim

import "container/heap"

// eventKind distinguishes the simulator's event types.
type eventKind int

const (
	// evCoreDone fires when a core finishes its current chunk of work.
	evCoreDone eventKind = iota
	// evNICDone fires when the NIC completes the transfer at the head of
	// its DMA queue.
	evNICDone
	// evArrival fires when the load generator delivers the next chunk of
	// requests to the node.
	evArrival
)

// event is one scheduled occurrence in simulated time.
type event struct {
	at   float64 // simulated seconds
	kind eventKind
	core int // for evCoreDone
	seq  uint64
}

// eventQueue is a min-heap of events ordered by time, with a sequence
// number tie-breaker so simulation order is deterministic.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// scheduler wraps the heap with a monotonically increasing sequence.
type scheduler struct {
	q   eventQueue
	seq uint64
}

func newScheduler() *scheduler {
	s := &scheduler{}
	heap.Init(&s.q)
	return s
}

// schedule enqueues an event at time at.
func (s *scheduler) schedule(at float64, kind eventKind, core int) {
	s.seq++
	heap.Push(&s.q, event{at: at, kind: kind, core: core, seq: s.seq})
}

// next pops the earliest event; ok is false when the queue is empty.
func (s *scheduler) next() (event, bool) {
	if s.q.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(&s.q).(event), true
}

// empty reports whether any events remain.
func (s *scheduler) empty() bool { return s.q.Len() == 0 }
