// Package servercache is the serving layer's result cache: a sharded LRU
// keyed on canonicalized request hashes, with singleflight collapse so a
// thundering herd of identical expensive queries (kernel-table builds,
// full-space enumerations) computes each result exactly once while every
// waiter shares it.
//
// Sharding bounds lock contention — a key's shard is fixed by an FNV-1a
// hash, so two concurrent requests serialize only when they collide on a
// shard — and each shard runs its own LRU list, so eviction decisions
// are shard-local and O(1).
package servercache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// shardCount is a power of two so shard selection is a mask. 16 shards
// keep per-shard contention negligible at the daemon's concurrency caps.
const shardCount = 16

// shard is one LRU: a mutex, the lookup map and the recency list
// (front = most recent).
type shard struct {
	mu  sync.Mutex
	cap int
	// maxBytes bounds the shard's summed sizeOf (0 = unlimited).
	maxBytes int64
	ll       *list.List
	m        map[string]*list.Element
	// bytes sums the sizes of the shard's byte-slice values (see sizeOf).
	bytes int64
}

// lruEntry is a recency-list payload. storedAt supports DoFresh's
// staleness checks; plain Get/Do ignore it.
type lruEntry struct {
	key      string
	val      any
	storedAt time.Time
}

// call is one in-flight singleflight computation.
type call struct {
	wg    sync.WaitGroup
	val   any
	stale bool
	err   error
}

// Stats is a point-in-time view of the cache's effectiveness.
type Stats struct {
	// Hits and Misses count Get outcomes (Do's fast path counts too).
	Hits, Misses uint64
	// Evictions counts LRU entries dropped to capacity pressure.
	Evictions uint64
	// Collapsed counts Do callers that waited on another caller's
	// computation instead of running their own.
	Collapsed uint64
	// StaleServes counts DoFresh computations that failed and fell back
	// to an expired entry (degraded serving).
	StaleServes uint64
	// Entries is the current number of cached values.
	Entries int
	// Bytes is the summed length of cached []byte values (marshaled
	// response bodies). Non-byte-slice values (kernel tables) count as
	// zero — the number tracks response-body residency, not total heap.
	Bytes int64
}

// HitRatio returns Hits / (Hits + Misses), 0 when nothing was asked.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a sharded LRU with singleflight. The zero value is not
// usable; construct with New.
type Cache struct {
	shards [shardCount]shard

	// now is the staleness clock, injectable in tests.
	now func() time.Time

	flightMu sync.Mutex
	flight   map[string]*call

	hits, misses, evictions, collapsed, staleServes atomic.Uint64
}

// New returns a cache holding at most capacity entries in total
// (rounded up to one per shard; capacity < shardCount still caches).
func New(capacity int) *Cache {
	if capacity < shardCount {
		capacity = shardCount
	}
	c := &Cache{now: time.Now, flight: make(map[string]*call)}
	per := (capacity + shardCount - 1) / shardCount
	for i := range c.shards {
		c.shards[i] = shard{cap: per, ll: list.New(), m: make(map[string]*list.Element)}
	}
	return c
}

// sizeOf is the byte accounting applied to cached values: the length of
// a []byte body, zero for anything else.
func sizeOf(val any) int64 {
	if b, ok := val.([]byte); ok {
		return int64(len(b))
	}
	return 0
}

// fnv1a hashes the key for shard selection.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Add stores key → val, evicting the shard's least recently used entry
// if the shard is full. Re-adding an existing key refreshes its value
// and recency.
func (c *Cache) Add(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*lruEntry)
		s.bytes += sizeOf(val) - sizeOf(e.val)
		e.val, e.storedAt = val, c.now()
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&lruEntry{key: key, val: val, storedAt: c.now()})
	s.bytes += sizeOf(val)
	c.evictLocked(s)
}

// evictLocked drops the shard's least-recently-used entries until both
// the entry cap and the byte limit hold. The newest entry survives even
// when it alone exceeds the limit: an empty cache is strictly worse.
func (c *Cache) evictLocked(s *shard) {
	for s.ll.Len() > 1 && (s.ll.Len() > s.cap || (s.maxBytes > 0 && s.bytes > s.maxBytes)) {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(s.m, e.key)
		s.bytes -= sizeOf(e.val)
		c.evictions.Add(1)
	}
}

// SetMaxBytes bounds the summed sizeOf of cached values across the
// whole cache (0 or negative removes the bound). The bound is split
// evenly across shards, so a pathological key distribution can evict
// below the global figure — the limit is a ceiling, not a fill target.
// Lowering it evicts immediately, coldest first per shard.
func (c *Cache) SetMaxBytes(n int64) {
	if n < 0 {
		n = 0
	}
	per := n
	if per > 0 {
		per = (n + shardCount - 1) / shardCount
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.maxBytes = per
		c.evictLocked(s)
		s.mu.Unlock()
	}
}

// MaxBytes returns the global byte limit (0 = unlimited).
func (c *Cache) MaxBytes() int64 {
	s := &c.shards[0]
	s.mu.Lock()
	per := s.maxBytes
	s.mu.Unlock()
	if per == 0 {
		return 0
	}
	return per * shardCount
}

// Entry is one cached (key, value) pair as exported by Hottest.
type Entry struct {
	Key string
	Val any
}

// Hottest returns up to limit entries, hottest first (limit <= 0
// returns everything). Recency is shard-local, so the global order is
// approximated by interleaving the shards' lists front-to-back: the
// i-th round takes each shard's i-th most recent entry. It does not
// touch recency or the hit/miss counters: snapshotting the cache must
// not reorder it.
func (c *Cache) Hottest(limit int) []Entry {
	perShard := make([][]Entry, shardCount)
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		list := make([]Entry, 0, s.ll.Len())
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*lruEntry)
			list = append(list, Entry{Key: e.key, Val: e.val})
		}
		s.mu.Unlock()
		perShard[i] = list
		total += len(list)
	}
	if limit <= 0 || limit > total {
		limit = total
	}
	out := make([]Entry, 0, limit)
	for round := 0; len(out) < limit; round++ {
		for _, list := range perShard {
			if round < len(list) {
				out = append(out, list[round])
				if len(out) == limit {
					break
				}
			}
		}
	}
	return out
}

// Do returns the cached value for key, computing it with fn on a miss.
// Concurrent Do calls for the same key collapse: one caller runs fn, the
// rest block and share its result. Successful results are cached; errors
// are returned to every collapsed caller and nothing is stored, so the
// next Do retries. cached reports whether the value came from the cache
// without running or waiting on fn.
func (c *Cache) Do(key string, fn func() (any, error)) (val any, cached bool, err error) {
	if v, ok := c.Get(key); ok {
		return v, true, nil
	}
	c.flightMu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		c.collapsed.Add(1)
		cl.wg.Wait()
		return cl.val, false, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.flightMu.Unlock()

	// Re-check under flight ownership: another caller may have completed
	// and cached between our Get miss and claiming the flight slot.
	if v, ok := c.Get(key); ok {
		cl.val = v
	} else {
		cl.val, cl.err = fn()
		if cl.err == nil {
			c.Add(key, cl.val)
		}
	}

	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	cl.wg.Done()
	return cl.val, false, cl.err
}

// getFresh returns the cached value only if it is younger than maxAge
// (maxAge <= 0 disables the check, matching Get). Counts hits/misses.
func (c *Cache) getFresh(key string, maxAge time.Duration) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*lruEntry)
		if maxAge <= 0 || c.now().Sub(e.storedAt) < maxAge {
			s.ll.MoveToFront(el)
			c.hits.Add(1)
			return e.val, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// peek returns the cached value regardless of age, without touching the
// hit/miss counters (it backs the stale-fallback path, which already
// counted a miss).
func (c *Cache) peek(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.ll.MoveToFront(el)
		return el.Value.(*lruEntry).val, true
	}
	return nil, false
}

// DoFresh is Do with a freshness bound and graceful degradation: a
// cached value older than maxAge is recomputed, and when the recompute
// fails an expired entry is served anyway. cached reports a fresh hit
// (no compute ran or was waited on, as in Do); the stale flag and error
// distinguish the remaining cases:
//
//   - fresh hit or successful compute: (val, _, false, nil)
//   - compute failed, stale entry available: (staleVal, false, true, err)
//     — the caller serves the stale value marked degraded and can
//     inspect err
//   - compute failed, nothing cached: (nil, false, false, err)
//
// Errors never overwrite the cached entry, so a failing dependency
// cannot poison the cache. Concurrent callers for the same key collapse
// exactly like Do and share the same outcome, including the stale flag
// and error.
func (c *Cache) DoFresh(key string, maxAge time.Duration, fn func() (any, error)) (val any, cached, stale bool, err error) {
	if v, ok := c.getFresh(key, maxAge); ok {
		return v, true, false, nil
	}
	c.flightMu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		c.collapsed.Add(1)
		cl.wg.Wait()
		return cl.val, false, cl.stale, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.flightMu.Unlock()

	// Re-check under flight ownership, as in Do.
	if v, ok := c.getFresh(key, maxAge); ok {
		cl.val = v
	} else if v, ferr := fn(); ferr == nil {
		cl.val = v
		c.Add(key, v)
	} else if sv, sok := c.peek(key); sok {
		cl.val, cl.stale, cl.err = sv, true, ferr
		c.staleServes.Add(1)
	} else {
		cl.err = ferr
	}

	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	cl.wg.Done()
	return cl.val, false, cl.stale, cl.err
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// DeleteFunc removes every entry whose key satisfies pred and returns
// the number removed. It walks all shards under their locks, so a
// concurrent Add racing the sweep may land after it — callers that use
// DeleteFunc for invalidation must also stop producing the doomed keys
// (the server does: invalidated keys carry a profile version that no
// new request resolves to).
func (c *Cache) DeleteFunc(pred func(key string) bool) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.m {
			if !pred(key) {
				continue
			}
			s.ll.Remove(el)
			delete(s.m, key)
			s.bytes -= sizeOf(el.Value.(*lruEntry).val)
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// Reset empties the cache (statistics are kept; they describe the
// process, not the current contents).
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.m = make(map[string]*list.Element)
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Bytes returns the summed length of cached []byte values.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Collapsed:   c.collapsed.Load(),
		StaleServes: c.staleServes.Load(),
		Entries:     c.Len(),
		Bytes:       c.Bytes(),
	}
}
