// Package servercache is the serving layer's result cache: a sharded LRU
// keyed on canonicalized request hashes, with singleflight collapse so a
// thundering herd of identical expensive queries (kernel-table builds,
// full-space enumerations) computes each result exactly once while every
// waiter shares it.
//
// Sharding bounds lock contention — a key's shard is fixed by an FNV-1a
// hash, so two concurrent requests serialize only when they collide on a
// shard — and each shard runs its own LRU list, so eviction decisions
// are shard-local and O(1).
package servercache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// shardCount is a power of two so shard selection is a mask. 16 shards
// keep per-shard contention negligible at the daemon's concurrency caps.
const shardCount = 16

// shard is one LRU: a mutex, the lookup map and the recency list
// (front = most recent).
type shard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

// lruEntry is a recency-list payload.
type lruEntry struct {
	key string
	val any
}

// call is one in-flight singleflight computation.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Stats is a point-in-time view of the cache's effectiveness.
type Stats struct {
	// Hits and Misses count Get outcomes (Do's fast path counts too).
	Hits, Misses uint64
	// Evictions counts LRU entries dropped to capacity pressure.
	Evictions uint64
	// Collapsed counts Do callers that waited on another caller's
	// computation instead of running their own.
	Collapsed uint64
	// Entries is the current number of cached values.
	Entries int
}

// HitRatio returns Hits / (Hits + Misses), 0 when nothing was asked.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a sharded LRU with singleflight. The zero value is not
// usable; construct with New.
type Cache struct {
	shards [shardCount]shard

	flightMu sync.Mutex
	flight   map[string]*call

	hits, misses, evictions, collapsed atomic.Uint64
}

// New returns a cache holding at most capacity entries in total
// (rounded up to one per shard; capacity < shardCount still caches).
func New(capacity int) *Cache {
	if capacity < shardCount {
		capacity = shardCount
	}
	c := &Cache{flight: make(map[string]*call)}
	per := (capacity + shardCount - 1) / shardCount
	for i := range c.shards {
		c.shards[i] = shard{cap: per, ll: list.New(), m: make(map[string]*list.Element)}
	}
	return c
}

// fnv1a hashes the key for shard selection.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Add stores key → val, evicting the shard's least recently used entry
// if the shard is full. Re-adding an existing key refreshes its value
// and recency.
func (c *Cache) Add(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*lruEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&lruEntry{key: key, val: val})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// Do returns the cached value for key, computing it with fn on a miss.
// Concurrent Do calls for the same key collapse: one caller runs fn, the
// rest block and share its result. Successful results are cached; errors
// are returned to every collapsed caller and nothing is stored, so the
// next Do retries. cached reports whether the value came from the cache
// without running or waiting on fn.
func (c *Cache) Do(key string, fn func() (any, error)) (val any, cached bool, err error) {
	if v, ok := c.Get(key); ok {
		return v, true, nil
	}
	c.flightMu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		c.collapsed.Add(1)
		cl.wg.Wait()
		return cl.val, false, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.flightMu.Unlock()

	// Re-check under flight ownership: another caller may have completed
	// and cached between our Get miss and claiming the flight slot.
	if v, ok := c.Get(key); ok {
		cl.val = v
	} else {
		cl.val, cl.err = fn()
		if cl.err == nil {
			c.Add(key, cl.val)
		}
	}

	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	cl.wg.Done()
	return cl.val, false, cl.err
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Reset empties the cache (statistics are kept; they describe the
// process, not the current contents).
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.m = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Collapsed: c.collapsed.Load(),
		Entries:   c.Len(),
	}
}
