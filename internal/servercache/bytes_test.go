package servercache

import (
	"fmt"
	"strings"
	"testing"
)

// TestBytesExactAfterSweep is the preheat-era accounting regression
// test: after bulk inserts, value updates and a DeleteFunc sweep,
// Stats.Bytes must equal what a cache freshly rebuilt from the
// survivors reports.
func TestBytesExactAfterSweep(t *testing.T) {
	c := New(256)
	for i := 0; i < 128; i++ {
		c.Add(fmt.Sprintf("k%03d", i), make([]byte, 50+i))
	}
	// Update a third of the keys with different sizes, and mix in
	// non-byte values (cached tables count as zero bytes).
	for i := 0; i < 40; i++ {
		c.Add(fmt.Sprintf("k%03d", i), make([]byte, 5+i))
	}
	for i := 0; i < 8; i++ {
		c.Add(fmt.Sprintf("t%d", i), struct{ x int }{i})
	}
	c.DeleteFunc(func(key string) bool { return strings.HasSuffix(key, "3") })

	rebuilt := New(256)
	for _, e := range c.Hottest(0) {
		rebuilt.Add(e.Key, e.Val)
	}
	if got, want := c.Stats().Bytes, rebuilt.Stats().Bytes; got != want {
		t.Fatalf("Stats.Bytes = %d after sweep, freshly rebuilt cache reports %d", got, want)
	}
	if got, want := c.Len(), rebuilt.Len(); got != want {
		t.Fatalf("Len = %d after sweep, rebuilt = %d", got, want)
	}
	var sum int64
	for _, e := range c.Hottest(0) {
		sum += sizeOf(e.Val)
	}
	if got := c.Bytes(); got != sum {
		t.Fatalf("Bytes() = %d, survivors sum to %d", got, sum)
	}
}

func TestSetMaxBytesBoundsResidency(t *testing.T) {
	c := New(shardCount * 64)
	for i := 0; i < shardCount*32; i++ {
		c.Add(fmt.Sprintf("key-%04d", i), make([]byte, 100))
	}
	before := c.Bytes()
	c.SetMaxBytes(before / 4)
	if got := c.Bytes(); got > before/4+shardCount*100 {
		// Per-shard rounding can leave at most one extra entry per shard.
		t.Fatalf("Bytes = %d, limit %d not enforced", got, before/4)
	}
	if got := c.Len(); got == 0 {
		t.Fatal("byte limit must not empty the cache")
	}
	// Adds keep respecting the limit.
	limit := c.MaxBytes()
	for i := 0; i < shardCount*8; i++ {
		c.Add(fmt.Sprintf("new-%04d", i), make([]byte, 100))
	}
	if got := c.Bytes(); got > limit+shardCount*100 {
		t.Fatalf("Bytes = %d after adds, limit %d", got, limit)
	}
}

func TestHottestInterleavesShards(t *testing.T) {
	c := New(shardCount * 8)
	for i := 0; i < 64; i++ {
		c.Add(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	all := c.Hottest(0)
	if len(all) != 64 {
		t.Fatalf("Hottest(0) returned %d entries, want 64", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.Key] {
			t.Fatalf("duplicate key %q", e.Key)
		}
		seen[e.Key] = true
	}
	top := c.Hottest(10)
	if len(top) != 10 {
		t.Fatalf("Hottest(10) returned %d entries", len(top))
	}
	// The first round of the interleave takes each shard's most recent
	// entry, so every first-round pick must be its shard's list head.
	for _, e := range top {
		s := c.shardFor(e.Key)
		s.mu.Lock()
		head := s.ll.Front().Value.(*lruEntry).key
		s.mu.Unlock()
		if head != e.Key {
			// Later rounds pick non-heads once shards are exhausted; only
			// assert while we are within the first shardCount picks.
			break
		}
	}
}
