package servercache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetAddRoundTrip(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	c.Add("k", 42)
	v, ok := c.Get("k")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get(k) = %v, %v; want 42, true", v, ok)
	}
	c.Add("k", 43) // refresh
	if v, _ := c.Get("k"); v.(int) != 43 {
		t.Fatalf("refreshed value = %v, want 43", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss", st)
	}
	if r := st.HitRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("hit ratio = %v, want 2/3", r)
	}
}

func TestLRUEvictionPerShard(t *testing.T) {
	// Capacity 16 → one entry per shard: any two same-shard keys evict.
	c := New(16)
	const n = 200
	for i := 0; i < n; i++ {
		c.Add(fmt.Sprintf("key-%d", i), i)
	}
	if c.Len() > shardCount {
		t.Fatalf("Len() = %d, want <= %d at capacity 16", c.Len(), shardCount)
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	// The most recently added key of some shard must survive; at least
	// one of the last shardCount keys is its shard's newest.
	survivors := 0
	for i := n - shardCount; i < n; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); ok {
			survivors++
		}
	}
	if survivors == 0 {
		t.Error("eviction dropped even the most recently used entries")
	}
}

func TestLRUEvictsOldestNotRecentlyUsed(t *testing.T) {
	c := New(shardCount) // one per shard
	// Find two keys landing in the same shard.
	base := "a"
	var sibling string
	for i := 0; ; i++ {
		k := fmt.Sprintf("b%d", i)
		if c.shardFor(k) == c.shardFor(base) {
			sibling = k
			break
		}
	}
	c.Add(base, 1)
	c.Add(sibling, 2) // evicts base (capacity 1 in the shard)
	if _, ok := c.Get(base); ok {
		t.Error("oldest entry survived past capacity")
	}
	if v, ok := c.Get(sibling); !ok || v.(int) != 2 {
		t.Error("newest entry was evicted instead of the oldest")
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New(64)
	var calls atomic.Int32
	fn := func() (any, error) {
		calls.Add(1)
		return "result", nil
	}
	v, cached, err := c.Do("k", fn)
	if err != nil || cached || v.(string) != "result" {
		t.Fatalf("first Do = %v, %v, %v", v, cached, err)
	}
	v, cached, err = c.Do("k", fn)
	if err != nil || !cached || v.(string) != "result" {
		t.Fatalf("second Do = %v, %v, %v; want cached", v, cached, err)
	}
	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", calls.Load())
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(64)
	boom := errors.New("boom")
	var calls atomic.Int32
	_, _, err := c.Do("k", func() (any, error) { calls.Add(1); return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, _, err := c.Do("k", func() (any, error) { calls.Add(1); return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry Do = %v, %v", v, err)
	}
	if calls.Load() != 2 {
		t.Errorf("fn ran %d times, want 2 (error must not cache)", calls.Load())
	}
}

func TestDoCollapsesConcurrentCallers(t *testing.T) {
	c := New(64)
	var calls atomic.Int32
	gate := make(chan struct{})
	const callers = 32

	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("shared", func() (any, error) {
				calls.Add(1)
				<-gate // hold every other caller in the collapse path
				return "once", nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Let the herd pile up behind the single computation, then release.
	for c.Stats().Collapsed < callers-1 && calls.Load() <= 1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times under a %d-caller herd, want 1", calls.Load(), callers)
	}
	for i, v := range results {
		if v.(string) != "once" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	if c.Stats().Collapsed != callers-1 {
		t.Errorf("collapsed = %d, want %d", c.Stats().Collapsed, callers-1)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%64)
				switch i % 3 {
				case 0:
					c.Add(k, i)
				case 1:
					c.Get(k)
				default:
					if _, _, err := c.Do(k, func() (any, error) { return i, nil }); err != nil {
						t.Errorf("Do: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("Len() = %d, want <= 64 distinct keys", c.Len())
	}
}

func TestReset(t *testing.T) {
	c := New(64)
	c.Add("k", 1)
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len() after Reset = %d", c.Len())
	}
	if _, ok := c.Get("k"); ok {
		t.Error("entry survived Reset")
	}
}

func TestBytesTracksByteSliceValues(t *testing.T) {
	c := New(64)
	if c.Bytes() != 0 {
		t.Fatalf("empty cache Bytes() = %d", c.Bytes())
	}
	c.Add("body", make([]byte, 100))
	c.Add("table", struct{ x int }{1}) // non-byte values count as zero
	if got := c.Bytes(); got != 100 {
		t.Fatalf("Bytes() = %d, want 100", got)
	}
	// Refresh replaces, not accumulates.
	c.Add("body", make([]byte, 40))
	if got := c.Bytes(); got != 40 {
		t.Fatalf("refreshed Bytes() = %d, want 40", got)
	}
	if st := c.Stats(); st.Bytes != 40 {
		t.Fatalf("Stats().Bytes = %d, want 40", st.Bytes)
	}
	c.Reset()
	if c.Bytes() != 0 {
		t.Fatalf("post-Reset Bytes() = %d", c.Bytes())
	}
}

func TestBytesReleasedOnEviction(t *testing.T) {
	// Capacity 16 → one entry per shard; stuffing many bodies must keep
	// the accounted bytes equal to the surviving entries' sizes.
	c := New(16)
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("key-%d", i), make([]byte, 10))
	}
	if got, want := c.Bytes(), int64(c.Len()*10); got != want {
		t.Fatalf("Bytes() = %d, want %d for %d resident entries", got, want, c.Len())
	}
}

// DeleteFunc removes exactly the matching entries across all shards,
// fixes the byte accounting, and leaves the rest servable.
func TestDeleteFunc(t *testing.T) {
	c := New(256)
	// Spread keys over shards; every ep@v1 key must go regardless of
	// which shard hashed it.
	for i := 0; i < 40; i++ {
		c.Add(fmt.Sprintf("predict|ep@v1|{\"i\":%d}", i), []byte("0123456789"))
		c.Add(fmt.Sprintf("predict|ep@v2|{\"i\":%d}", i), []byte("01234"))
	}
	before := c.Bytes()
	n := c.DeleteFunc(func(key string) bool { return strings.Contains(key, "|ep@v1|") })
	if n != 40 {
		t.Fatalf("DeleteFunc removed %d, want 40", n)
	}
	if c.Len() != 40 {
		t.Errorf("Len after delete = %d, want 40", c.Len())
	}
	if got, want := c.Bytes(), before-400; got != want {
		t.Errorf("Bytes after delete = %d, want %d", got, want)
	}
	for i := 0; i < 40; i++ {
		if _, ok := c.Get(fmt.Sprintf("predict|ep@v1|{\"i\":%d}", i)); ok {
			t.Fatalf("invalidated key %d still reachable", i)
		}
		if _, ok := c.Get(fmt.Sprintf("predict|ep@v2|{\"i\":%d}", i)); !ok {
			t.Fatalf("surviving key %d was dropped", i)
		}
	}
	if n := c.DeleteFunc(func(string) bool { return false }); n != 0 {
		t.Errorf("no-match DeleteFunc removed %d", n)
	}
}
