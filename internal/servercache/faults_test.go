package servercache

import (
	"errors"
	"sync"
	"testing"
	"time"
)

var errInjected = errors.New("injected: downstream blew up")

// fixedClock drives DoFresh's staleness checks without sleeping.
type fixedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fixedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fixedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newClockedCache(capacity int) (*Cache, *fixedClock) {
	clk := &fixedClock{t: time.Unix(1000, 0)}
	c := New(capacity)
	c.now = clk.now
	return c, clk
}

// Every singleflight caller observes the same injected error — nobody
// gets a partial value, nobody re-runs the failing computation.
func TestSingleflightSharesInjectedError(t *testing.T) {
	c := New(64)
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls int
	fn := func() (any, error) {
		calls++
		close(entered)
		<-release
		return nil, errInjected
	}

	const waiters = 8
	errs := make(chan error, waiters)
	go func() {
		_, _, err := c.Do("k", fn)
		errs <- err
	}()
	<-entered
	var wg sync.WaitGroup
	for i := 0; i < waiters-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Do("k", func() (any, error) {
				t.Error("collapsed caller ran the function")
				return nil, nil
			})
			errs <- err
		}()
	}
	// Let the waiters pile onto the flight, then fail it.
	for c.Stats().Collapsed < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, errInjected) {
			t.Fatalf("caller %d: err = %v, want the injected error", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("failing fn ran %d times, want 1", calls)
	}
}

// Errors stay uncached: a failed computation leaves no entry behind and
// the next caller retries.
func TestInjectedErrorsStayUncached(t *testing.T) {
	c := New(64)
	if _, _, err := c.Do("k", func() (any, error) { return nil, errInjected }); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed computation left a cache entry")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after failure", c.Len())
	}
	v, cached, err := c.Do("k", func() (any, error) { return 42, nil })
	if err != nil || cached || v != 42 {
		t.Fatalf("retry = (%v, %v, %v), want fresh 42", v, cached, err)
	}
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatal("successful retry not cached")
	}
}

// A poisoned entry never serves: when the computation fails, the nil
// value it produced is not stored and cannot be returned by later hits.
func TestPoisonedEntryNeverServes(t *testing.T) {
	c := New(64)
	// Seed a good value, then fail a Do for the same key via DoFresh
	// expiry — the failure must not replace the good value with poison.
	c.Add("k", "good")
	clkC, clk := newClockedCache(64)
	clkC.Add("k", "good")
	clk.advance(time.Hour)
	v, _, stale, err := clkC.DoFresh("k", time.Minute, func() (any, error) {
		return "poison", errInjected
	})
	if !stale || !errors.Is(err, errInjected) {
		t.Fatalf("DoFresh = (%v, %v, %v), want stale fallback", v, stale, err)
	}
	if v != "good" {
		t.Fatalf("served %v, want the pre-failure value", v)
	}
	// The poison value must not have entered the cache.
	if got, _ := clkC.peek("k"); got != "good" {
		t.Fatalf("cache holds %v after failed recompute", got)
	}
	// And on the plain-Do cache, a pure failure serves nothing.
	if _, _, err := c.Do("missing", func() (any, error) { return "poison", errInjected }); err == nil {
		t.Fatal("error swallowed")
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("poisoned entry cached")
	}
}

func TestDoFreshTTL(t *testing.T) {
	c, clk := newClockedCache(64)
	computes := 0
	fn := func() (any, error) { computes++; return computes, nil }

	// First call computes, second within the TTL hits.
	if v, _, stale, err := c.DoFresh("k", time.Minute, fn); v != 1 || stale || err != nil {
		t.Fatalf("first = (%v, %v, %v)", v, stale, err)
	}
	if v, cached, _, _ := c.DoFresh("k", time.Minute, fn); v != 1 || !cached {
		t.Fatalf("fresh hit recomputed: %v", v)
	}
	// Past the TTL the entry is stale and recomputes.
	clk.advance(2 * time.Minute)
	if v, _, stale, err := c.DoFresh("k", time.Minute, fn); v != 2 || stale || err != nil {
		t.Fatalf("post-TTL = (%v, %v, %v), want recompute", v, stale, err)
	}
	// maxAge <= 0 means no TTL: the entry stays fresh forever.
	clk.advance(1000 * time.Hour)
	if v, _, _, _ := c.DoFresh("k", 0, fn); v != 2 {
		t.Fatalf("no-TTL call recomputed: %v", v)
	}
	if computes != 2 {
		t.Errorf("computed %d times, want 2", computes)
	}
}

func TestDoFreshStaleFallbackCountsAndRecovers(t *testing.T) {
	c, clk := newClockedCache(64)
	c.DoFresh("k", time.Minute, func() (any, error) { return "v1", nil })
	clk.advance(time.Hour)

	// Dependency down: stale serves, stat counts.
	v, _, stale, err := c.DoFresh("k", time.Minute, func() (any, error) { return nil, errInjected })
	if v != "v1" || !stale || !errors.Is(err, errInjected) {
		t.Fatalf("fallback = (%v, %v, %v)", v, stale, err)
	}
	if st := c.Stats(); st.StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1", st.StaleServes)
	}
	// Dependency back: recompute replaces the stale value.
	v, _, stale, err = c.DoFresh("k", time.Minute, func() (any, error) { return "v2", nil })
	if v != "v2" || stale || err != nil {
		t.Fatalf("recovery = (%v, %v, %v)", v, stale, err)
	}
	// Missing key + failure: error surfaces with no value.
	v, _, stale, err = c.DoFresh("other", time.Minute, func() (any, error) { return nil, errInjected })
	if v != nil || stale || !errors.Is(err, errInjected) {
		t.Fatalf("cold failure = (%v, %v, %v)", v, stale, err)
	}
}

// Collapsed DoFresh callers share the stale outcome — same value, same
// flag, same error.
func TestDoFreshCollapsedCallersShareStaleOutcome(t *testing.T) {
	c, clk := newClockedCache(64)
	c.DoFresh("k", time.Minute, func() (any, error) { return "v1", nil })
	clk.advance(time.Hour)

	entered := make(chan struct{})
	release := make(chan struct{})
	type out struct {
		v     any
		stale bool
		err   error
	}
	outs := make(chan out, 4)
	go func() {
		v, _, s, err := c.DoFresh("k", time.Minute, func() (any, error) {
			close(entered)
			<-release
			return nil, errInjected
		})
		outs <- out{v, s, err}
	}()
	<-entered
	before := c.Stats().Collapsed
	for i := 0; i < 3; i++ {
		go func() {
			v, _, s, err := c.DoFresh("k", time.Minute, func() (any, error) {
				t.Error("collapsed caller computed")
				return nil, nil
			})
			outs <- out{v, s, err}
		}()
	}
	for c.Stats().Collapsed < before+3 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 4; i++ {
		o := <-outs
		if o.v != "v1" || !o.stale || !errors.Is(o.err, errInjected) {
			t.Fatalf("caller %d: (%v, %v, %v), want shared stale outcome", i, o.v, o.stale, o.err)
		}
	}
	if st := c.Stats(); st.StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1 (one compute, shared)", st.StaleServes)
	}
}
