package buildinfo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGetDefaults(t *testing.T) {
	info := Get()
	if info.Version != Version {
		t.Errorf("Version = %q, want %q", info.Version, Version)
	}
	if info.Commit == "" {
		t.Error("Commit is empty; want a revision or \"unknown\"")
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a go toolchain version", info.GoVersion)
	}
}

func TestGetPrefersStamp(t *testing.T) {
	oldV, oldC := Version, Commit
	defer func() { Version, Commit = oldV, oldC }()
	Version, Commit = "v9.9.9", "deadbeef"
	info := Get()
	if info.Version != "v9.9.9" || info.Commit != "deadbeef" {
		t.Errorf("Get() = %+v, want stamped v9.9.9/deadbeef", info)
	}
	s := info.String()
	for _, want := range []string{"heteromix", "v9.9.9", "deadbeef"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestInfoSerializes(t *testing.T) {
	b, err := json.Marshal(Get())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"version"`, `"commit"`, `"go_version"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON %s missing key %s", b, key)
		}
	}
}
