// Package buildinfo carries the binary's identity: a version and commit
// stamped at link time via -ldflags, with fallbacks from the embedded Go
// build metadata when the binary was built without stamping (plain
// `go build`). Every cmd/ binary exposes it behind a -version flag (see
// internal/cliutil) and the serving daemon reports it from /healthz, so
// an operator can always tell which model build answered a query.
//
// Stamp with:
//
//	go build -ldflags "-X heteromix/internal/buildinfo.Version=v1.2.3 \
//	                   -X heteromix/internal/buildinfo.Commit=abc1234"
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version and Commit are the link-time stamps. The defaults mark an
// unstamped development build.
var (
	Version = "dev"
	Commit  = ""
)

// Info is the resolved build identity.
type Info struct {
	// Version is the stamped release version ("dev" when unstamped).
	Version string `json:"version"`
	// Commit is the VCS revision, from the stamp or the embedded build
	// metadata ("unknown" when neither is available).
	Commit string `json:"commit"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get resolves the build identity, preferring link-time stamps and
// falling back to the module build metadata Go embeds on its own.
func Get() Info {
	info := Info{Version: Version, Commit: Commit, GoVersion: runtime.Version()}
	if info.Commit == "" {
		info.Commit = vcsRevision()
	}
	if info.Commit == "" {
		info.Commit = "unknown"
	}
	return info
}

// vcsRevision extracts the short VCS revision from the embedded build
// metadata, empty when the binary was built outside a checkout.
func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
}

// String renders the identity as a one-line banner, e.g.
// "heteromix dev (commit abc1234, go1.24.0)".
func (i Info) String() string {
	return fmt.Sprintf("heteromix %s (commit %s, %s)", i.Version, i.Commit, i.GoVersion)
}
