// Package report generates a complete reproduction report: every table
// as markdown, every figure as an SVG file, the headline numbers and the
// extension studies, in one self-contained directory. It is the
// automation behind "regenerate the paper's evaluation and write it up",
// exposed as `heteromix report -dir out/`.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"heteromix/internal/experiments"
	"heteromix/internal/plot"
)

// svgWidth/svgHeight are the rendered figure dimensions.
const (
	svgWidth  = 900
	svgHeight = 620
)

// Generate runs the full evaluation and writes report.md plus one SVG
// per figure into dir (created if absent). It returns the report path.
func Generate(s *experiments.Suite, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	var b strings.Builder
	b.WriteString("# heteromix reproduction report\n\n")
	b.WriteString("Regenerated tables and figures for \"Modeling the Energy Efficiency of Heterogeneous Clusters\" (ICPP 2014).\n\n")

	// Tables.
	t3, err := s.Table3()
	if err != nil {
		return "", err
	}
	section(&b, "Table 3 — single-node validation", experiments.FormatTable3(t3))
	t4, err := s.Table4()
	if err != nil {
		return "", err
	}
	section(&b, "Table 4 — cluster validation", experiments.FormatTable4(t4))
	t5, err := s.Table5()
	if err != nil {
		return "", err
	}
	section(&b, "Table 5 — performance-to-power ratio", experiments.FormatTable5(t5))

	// Figures.
	type figure struct {
		num     int
		caption string
		chart   *plot.Chart
		summary string
	}
	var figures []figure

	f2, err := s.Figure2()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{2, "WPI and SPIcore across problem size",
		f2.Chart(), fmt.Sprintf("max relative spread %.2f%%", f2.MaxRelSpread*100)})

	f3, err := s.Figure3()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{3, "SPImem vs core frequency",
		f3.Chart(), fmt.Sprintf("min r² = %.3f", f3.MinR2)})

	f4, err := s.Figure4()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{4, "Pareto frontier for EP", f4.Chart(), f4.FormatFrontier()})

	f5, err := s.Figure5()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{5, "Pareto frontier for memcached", f5.Chart(), f5.FormatFrontier()})

	f6, err := s.Figure6()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{6, "Heterogeneous mixes for memcached (1 kW budget)", f6.Chart(), f6.Format()})

	f7, err := s.Figure7()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{7, "Heterogeneous mixes for EP (1 kW budget)", f7.Chart(), f7.Format()})

	f8, err := s.Figure8()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{8, "Increasing cluster size for memcached", f8.Chart(), f8.Format()})

	f9, err := s.Figure9()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{9, "Increasing cluster size for EP", f9.Chart(), f9.Format()})

	f10, err := s.Figure10()
	if err != nil {
		return "", err
	}
	figures = append(figures, figure{10, "Effect of job queueing delay", f10.Chart(), f10.Format()})

	for _, f := range figures {
		svg, err := f.chart.RenderSVG(svgWidth, svgHeight)
		if err != nil {
			return "", fmt.Errorf("report: figure %d: %w", f.num, err)
		}
		name := fmt.Sprintf("fig%d.svg", f.num)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(svg), 0o644); err != nil {
			return "", fmt.Errorf("report: figure %d: %w", f.num, err)
		}
		fmt.Fprintf(&b, "## Figure %d — %s\n\n![Figure %d](%s)\n\n```\n%s\n```\n\n",
			f.num, f.caption, f.num, name, strings.TrimRight(f.summary, "\n"))
	}

	// Headline and extensions.
	var headlines []string
	for _, w := range []string{"ep", "memcached"} {
		h, err := s.Headline(w)
		if err != nil {
			return "", err
		}
		headlines = append(headlines, h.Format())
	}
	section(&b, "Headline (paper §VI)", strings.Join(headlines, "\n")+"\n")

	var ext strings.Builder
	for _, w := range []string{"ep", "memcached"} {
		split, err := s.SplitAblation(w)
		if err != nil {
			return "", err
		}
		ext.WriteString(experiments.FormatSplitAblation(w, split))
	}
	prop, err := s.Proportionality()
	if err != nil {
		return "", err
	}
	ext.WriteString(experiments.FormatProportionality(prop))
	bt, err := s.BottleneckClassification()
	if err != nil {
		return "", err
	}
	ext.WriteString(experiments.FormatBottlenecks(bt))
	section(&b, "Extensions", ext.String())

	path := filepath.Join(dir, "report.md")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return path, nil
}

func section(b *strings.Builder, title, body string) {
	fmt.Fprintf(b, "## %s\n\n```\n%s```\n\n", title, body)
}
