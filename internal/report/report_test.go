package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heteromix/internal/experiments"
)

func TestGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation is slow")
	}
	dir := t.TempDir()
	s := experiments.NewSuite(experiments.SuiteOptions{NoiseSigma: 0.03, Seed: 1})
	path, err := Generate(s, dir)
	if err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# heteromix reproduction report",
		"Table 3 — single-node validation",
		"Table 4 — cluster validation",
		"Table 5 — performance-to-power ratio",
		"Figure 2 —", "Figure 3 —", "Figure 4 —", "Figure 5 —",
		"Figure 6 —", "Figure 7 —", "Figure 8 —", "Figure 9 —", "Figure 10 —",
		"Headline (paper §VI)",
		"Extensions",
		"sweet region",
		"dynamic range",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every figure file exists and is an SVG document.
	for n := 2; n <= 10; n++ {
		svgPath := filepath.Join(dir, "fig"+itoa(n)+".svg")
		svg, err := os.ReadFile(svgPath)
		if err != nil {
			t.Errorf("figure %d: %v", n, err)
			continue
		}
		if !strings.HasPrefix(string(svg), "<svg") {
			t.Errorf("figure %d is not an SVG", n)
		}
	}
}

func TestGenerateBadDir(t *testing.T) {
	s := experiments.NewSuite(experiments.SuiteOptions{Seed: 1})
	// A path under a file cannot be created.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(s, filepath.Join(f, "sub")); err == nil {
		t.Error("impossible directory should error")
	}
}

func itoa(n int) string {
	if n == 10 {
		return "10"
	}
	return string(rune('0' + n))
}
