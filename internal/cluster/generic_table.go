package cluster

import (
	"fmt"
	"runtime"
	"unsafe"

	"heteromix/internal/pareto"
)

// GenericTable is the exported, reusable form of the generic N-type
// evaluation-kernel layer (generic_kernel.go), the analogue of Table for
// arbitrary type lists. It is compiled once per cluster spec — the type
// list alone — and is deliberately independent of every per-request
// parameter: the work volume enters only the per-point arithmetic, so
// one table answers every work size, deadline and frontier query against
// the same cluster. One-shot drivers can keep calling EnumerateGroups*
// (which build a table internally); long-lived consumers — the serving
// daemon caches tables per cluster spec in internal/tablecache — build
// once and amortize the model walk across requests. A GenericTable is
// immutable after construction and safe for concurrent use.
type GenericTable struct {
	t     *genericTable
	types int
}

// NewGenericTable validates types and precompiles every (count,
// per-node configuration) option's kernel coefficients. Respect any
// Configs restriction already on the types (e.g. from PruneGroupTypes);
// pruned and unpruned type lists compile to distinct tables.
func NewGenericTable(types []GroupType) (*GenericTable, error) {
	t, err := newGenericTable(types)
	if err != nil {
		return nil, err
	}
	return &GenericTable{t: t, types: len(types)}, nil
}

// Types returns how many node types the table was compiled over.
func (g *GenericTable) Types() int { return g.types }

// Size returns the number of points the table's space holds (saturated
// at math.MaxUint64 for astronomically large bounds).
func (g *GenericTable) Size() uint64 { return g.t.size }

// SizeBytes estimates the table's resident size for cache accounting:
// the option arrays dominate (one entry per (count, configuration)
// choice per type); headers and per-type scalars are counted once.
func (g *GenericTable) SizeBytes() int {
	const optSize = int(unsafe.Sizeof(genOption{}))
	const sliceHeader = int(unsafe.Sizeof([]genOption(nil)))
	n := int(unsafe.Sizeof(GenericTable{})) + int(unsafe.Sizeof(genericTable{}))
	for _, opts := range g.t.opts {
		n += sliceHeader + len(opts)*optSize
	}
	n += len(g.t.switchW)*8 + len(g.t.radix)*8 + len(g.t.stride)*8
	return n
}

// check guards the per-call invariants every evaluation method shares.
func (g *GenericTable) check(w float64) error {
	if err := validWork(w); err != nil {
		return err
	}
	if g.t.size == 0 {
		return fmt.Errorf("cluster: generic space is empty (all MaxNodes zero?)")
	}
	return nil
}

// ForEach streams every point of the space for w work units to yield,
// in EnumerateGroups's order, without materializing anything. The
// yielded point's slices are scratch buffers valid only during the
// call — Clone to retain. Returning false from yield stops the walk
// early (not an error).
func (g *GenericTable) ForEach(w float64, yield func(GenericPoint) bool) error {
	if err := g.check(w); err != nil {
		return err
	}
	g.t.forEach(g.t.newCursor(), w, yield)
	return nil
}

// Enumerate materializes every point of the space for w work units, in
// the same order and with the same flat-backing allocation discipline
// as EnumerateGroups.
func (g *GenericTable) Enumerate(w float64) ([]GenericPoint, error) {
	if err := g.check(w); err != nil {
		return nil, err
	}
	n, err := g.t.intSize()
	if err != nil {
		return nil, err
	}
	out := make([]GenericPoint, 0, n)
	bk := newGenBacking(n, g.types)
	g.t.forEach(g.t.newCursor(), w, func(p GenericPoint) bool {
		out = append(out, bk.copy(p))
		return true
	})
	return out, nil
}

// EnumerateParallel is Enumerate fanned out over a worker pool with the
// dynamic atomic-cursor chunking of EnumerateGroupsParallel; results are
// written by index, so the merge is deterministic and bit-identical to
// the serial order. workers <= 0 selects GOMAXPROCS.
func (g *GenericTable) EnumerateParallel(w float64, workers int) ([]GenericPoint, error) {
	if err := g.check(w); err != nil {
		return nil, err
	}
	n, err := g.t.intSize()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]GenericPoint, n)
	err = parallelFor(n, workers, parallelChunk, func(lo, hi int) error {
		c := g.t.newCursor()
		bk := newGenBacking(hi-lo, g.types)
		for i := lo; i < hi; i++ {
			// Point indices are 1-based: index 0 is the all-absent vector.
			g.t.at(c, uint64(i)+1, w)
			out[i] = bk.copy(c.p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Frontier streams the space for w work units through an online Pareto
// frontier and returns only its optimal points, exactly as
// GenericFrontierOf does but off the precompiled table.
func (g *GenericTable) Frontier(w float64) ([]GenericPoint, []pareto.TE, error) {
	if err := g.check(w); err != nil {
		return nil, nil, err
	}
	tr := pareto.Tracked[GenericPoint]{Clone: GenericPoint.Clone}
	var insErr error
	g.t.forEach(g.t.newCursor(), w, func(p GenericPoint) bool {
		_, err := tr.Insert(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy)}, p)
		if err != nil {
			insErr = err
			return false
		}
		return true
	})
	if insErr != nil {
		return nil, nil, insErr
	}
	pts, tes := tr.Frontier()
	return pts, tes, nil
}

// FrontierParallel is Frontier fanned out over a worker pool: each
// claimed chunk maintains its own online frontier over scratch buffers
// and the chunk frontiers are merged in enumeration order, so the
// result is identical to the serial path (including
// first-offered-wins among exact duplicates). The space is never
// materialized — at most the per-chunk frontiers live at once.
// workers <= 0 selects GOMAXPROCS.
func (g *GenericTable) FrontierParallel(w float64, workers int) ([]GenericPoint, []pareto.TE, error) {
	if err := g.check(w); err != nil {
		return nil, nil, err
	}
	n, err := g.t.intSize()
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numChunks := (n + genericFrontierChunk - 1) / genericFrontierChunk
	locals := make([]pareto.Tracked[GenericPoint], numChunks)
	err = parallelFor(n, workers, genericFrontierChunk, func(lo, hi int) error {
		// parallelFor claims start at chunk multiples, so lo identifies
		// the chunk's slot in the ordered merge below.
		tr := &locals[lo/genericFrontierChunk]
		tr.Clone = GenericPoint.Clone
		c := g.t.newCursor()
		for i := lo; i < hi; i++ {
			g.t.at(c, uint64(i)+1, w)
			if _, err := tr.Insert(pareto.TE{Time: float64(c.p.Time), Energy: float64(c.p.Energy)}, c.p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Merge chunk frontiers in enumeration order; chunk payloads are
	// already cloned, so the merged frontier can alias them.
	var merged pareto.Tracked[GenericPoint]
	for ci := range locals {
		pts, tes := locals[ci].Frontier()
		for j := range tes {
			if _, err := merged.Insert(pareto.TE{Time: tes[j].Time, Energy: tes[j].Energy}, pts[j]); err != nil {
				return nil, nil, err
			}
		}
	}
	pts, tes := merged.Frontier()
	return pts, tes, nil
}
