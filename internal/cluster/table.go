package cluster

import (
	"fmt"
	"unsafe"

	"heteromix/internal/hwsim"
	"heteromix/internal/pareto"
)

// Table is the exported, reusable form of the evaluation-kernel layer
// (kernel.go): both models validated and their per-configuration
// coefficients precomputed once, then shared across any number of
// evaluations, enumerations and frontier queries. Enumerate* rebuilds
// the table on every call, which is right for one-shot experiment
// drivers; a long-lived consumer — the serving daemon memoizes one Table
// per (workload, switch-accounting) pair — builds it once and amortizes
// the model walk across queries. A Table is immutable after construction
// and safe for concurrent use.
type Table struct {
	space    Space
	kt       spaceKernels
	arm, amd map[hwsim.Config]int
}

// NewTable precomputes the kernel table for every per-node configuration
// of both specs. Unlike the enumerators, both models are always
// validated — a Table exists to answer arbitrary later queries, either
// side of which may be populated.
func (s Space) NewTable() (*Table, error) {
	kt, err := s.kernels(1, 1, nil, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		space: s,
		kt:    kt,
		arm:   make(map[hwsim.Config]int, len(kt.arm)),
		amd:   make(map[hwsim.Config]int, len(kt.amd)),
	}
	for i, e := range kt.arm {
		t.arm[e.cfg] = i
	}
	for i, e := range kt.amd {
		t.amd[e.cfg] = i
	}
	return t, nil
}

// Space returns the space the table was built from.
func (t *Table) Space() Space { return t.space }

// Evaluate services w work units on one configuration from the
// precomputed coefficients. It matches Space.Evaluate point for point
// (bit-identical time and split, energy within a few ULPs) at a fraction
// of the cost: bounds checks, two map lookups and the kernel arithmetic,
// with no allocation.
func (t *Table) Evaluate(cfg Configuration, w float64) (Point, error) {
	if err := validWork(w); err != nil {
		return Point{}, err
	}
	if cfg.ARM.Nodes < 0 || cfg.AMD.Nodes < 0 {
		return Point{}, fmt.Errorf("cluster: negative node count in %v", cfg)
	}
	if cfg.ARM.Nodes+cfg.AMD.Nodes == 0 {
		return Point{}, fmt.Errorf("cluster: no nodes in any group")
	}
	var a, d kernelEntry
	if cfg.ARM.Nodes > 0 {
		i, ok := t.arm[cfg.ARM.Config]
		if !ok {
			return Point{}, fmt.Errorf("cluster: %v is not a configuration of %s",
				cfg.ARM.Config, t.space.ARM.Spec.Name)
		}
		a = t.kt.arm[i]
	}
	if cfg.AMD.Nodes > 0 {
		i, ok := t.amd[cfg.AMD.Config]
		if !ok {
			return Point{}, fmt.Errorf("cluster: %v is not a configuration of %s",
				cfg.AMD.Config, t.space.AMD.Spec.Name)
		}
		d = t.kt.amd[i]
	}
	return t.kt.point(cfg.ARM.Nodes, cfg.AMD.Nodes, a, d, w), nil
}

// Size returns how many points ForEach yields for the bounds.
func (t *Table) Size(maxARM, maxAMD int) int { return t.kt.size(maxARM, maxAMD) }

// SizeBytes estimates the table's resident size for cache accounting:
// the kernel-entry arrays and the config-index maps (counted at a flat
// per-entry overhead), plus the struct itself.
func (t *Table) SizeBytes() int {
	const entrySize = int(unsafe.Sizeof(kernelEntry{}))
	// A map entry costs roughly its key+value plus bucket overhead.
	const mapEntry = int(unsafe.Sizeof(hwsim.Config{})) + 8 + 16
	n := int(unsafe.Sizeof(Table{}))
	n += (len(t.kt.arm) + len(t.kt.amd)) * entrySize
	n += (len(t.arm) + len(t.amd)) * mapEntry
	return n
}

// ForEach streams every point of the bounded space to yield in
// Enumerate's order; yield returning false stops the walk early (not an
// error).
func (t *Table) ForEach(maxARM, maxAMD int, w float64, yield func(Point) bool) error {
	if maxARM < 0 || maxAMD < 0 || maxARM+maxAMD == 0 {
		return fmt.Errorf("cluster: invalid space %dx%d", maxARM, maxAMD)
	}
	if err := validWork(w); err != nil {
		return err
	}
	t.kt.forEachPoint(maxARM, maxAMD, w, yield)
	return nil
}

// Frontier enumerates the bounded space and returns only its
// Pareto-optimal points, exactly as FrontierOf does but off the
// precomputed table.
func (t *Table) Frontier(maxARM, maxAMD int, w float64) ([]Point, []pareto.TE, error) {
	return frontierOfStream(func(yield func(Point) bool) error {
		return t.ForEach(maxARM, maxAMD, w, yield)
	})
}
