package cluster

import (
	"math"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/pareto"
)

func triTypes(t testing.TB, maxA9, maxA15, maxK10 int) []GroupType {
	return []GroupType{
		{Model: nodeModel(t, hwsim.ARMCortexA9(), "ep"), MaxNodes: maxA9, NeedsSwitch: true},
		{Model: nodeModel(t, hwsim.ARMCortexA15(), "ep"), MaxNodes: maxA15, NeedsSwitch: true},
		{Model: nodeModel(t, hwsim.AMDOpteronK10(), "ep"), MaxNodes: maxK10},
	}
}

func TestA15SpecValid(t *testing.T) {
	a15 := hwsim.ARMCortexA15()
	if err := a15.Validate(); err != nil {
		t.Fatal(err)
	}
	a9 := hwsim.ARMCortexA9()
	amd := hwsim.AMDOpteronK10()
	// The A15 slots between the paper's poles: faster core than the A9,
	// lower power than the AMD.
	if a15.FMax() <= a9.FMax() {
		t.Error("A15 should clock above the A9")
	}
	if a15.PeakPower() <= a9.PeakPower() {
		t.Error("A15 should draw more than the A9")
	}
	if a15.PeakPower() >= amd.PeakPower()/2 {
		t.Error("A15 should draw far less than the K10")
	}
	if a15.ISA != a9.ISA {
		t.Error("A15 shares the ARMv7-A ISA")
	}
}

func TestA15ModelBuildsAndOrdersSanely(t *testing.T) {
	a9 := nodeModel(t, hwsim.ARMCortexA9(), "ep")
	a15 := nodeModel(t, hwsim.ARMCortexA15(), "ep")
	amd := nodeModel(t, hwsim.AMDOpteronK10(), "ep")

	k9, _ := a9.TimePerUnit(maxCfg(a9.Spec))
	k15, _ := a15.TimePerUnit(maxCfg(a15.Spec))
	kAMD, _ := amd.TimePerUnit(maxCfg(amd.Spec))
	// Per-node speed: AMD > A15 > A9.
	if !(kAMD < k15 && k15 < k9) {
		t.Errorf("per-unit times should order AMD < A15 < A9: %v %v %v", kAMD, k15, k9)
	}
	// Energy efficiency: A9 > A15 > AMD.
	ppr9, _, _ := a9.PPR()
	ppr15, _, _ := a15.PPR()
	pprAMD, _, _ := amd.PPR()
	if !(ppr9 > ppr15 && ppr15 > pprAMD) {
		t.Errorf("PPR should order A9 > A15 > AMD: %v %v %v", ppr9, ppr15, pprAMD)
	}
}

func TestGenericSpaceSizeAndEnumeration(t *testing.T) {
	types := triTypes(t, 1, 1, 1)
	want := GenericSpaceSize(types)
	// (1*20+1)*(1*16+1)*(1*18+1) - 1 = 21*17*19 - 1 = 6782.
	if want != 6782 {
		t.Fatalf("GenericSpaceSize = %d, want 6782", want)
	}
	points, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(points)) != want {
		t.Fatalf("enumerated %d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.Time <= 0 || p.Energy <= 0 {
			t.Fatalf("invalid point %+v", p)
		}
		total := 0
		for _, n := range p.Counts {
			total += n
		}
		if total == 0 {
			t.Fatal("all-absent configuration leaked into the output")
		}
		sum := 0.0
		for _, w := range p.Work {
			sum += w
		}
		if math.Abs(sum-50e6) > 1 {
			t.Fatalf("work not conserved: %v", sum)
		}
	}
}

func TestGenericTwoTypeMatchesSpace(t *testing.T) {
	// With the A15 absent, the generic enumeration reproduces the
	// two-type Space results point for point (as sets).
	s := epSpace(t)
	types := []GroupType{
		{Model: s.ARM, MaxNodes: 2, NeedsSwitch: true},
		{Model: s.AMD, MaxNodes: 2},
	}
	generic, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	twoType, err := s.Enumerate(2, 2, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(generic) != len(twoType) {
		t.Fatalf("sizes differ: generic %d, two-type %d", len(generic), len(twoType))
	}
	// Compare as multisets of (time, energy).
	type te struct{ t, e float64 }
	count := map[te]int{}
	for _, p := range twoType {
		count[te{float64(p.Time), float64(p.Energy)}]++
	}
	for _, p := range generic {
		key := te{float64(p.Time), float64(p.Energy)}
		if count[key] == 0 {
			t.Fatalf("generic point (%v, %v) missing from two-type space", p.Time, p.Energy)
		}
		count[key]--
	}
}

// The tri-type frontier weakly dominates both two-type frontiers built
// from its subsets: adding a node type can only improve the tradeoff.
func TestTriTypeFrontierDominatesTwoType(t *testing.T) {
	types := triTypes(t, 2, 2, 2)
	tri, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	noA15 := []GroupType{types[0], {Model: types[1].Model, MaxNodes: 0}, types[2]}
	duo, err := EnumerateGroups(noA15, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	triFr, err := pareto.Frontier(genericTE(tri))
	if err != nil {
		t.Fatal(err)
	}
	duoFr, err := pareto.Frontier(genericTE(duo))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range duoFr {
		te, ok := pareto.EnergyAtDeadline(triFr, d.Time)
		if !ok {
			t.Fatalf("tri-type space cannot meet deadline %v reachable by two-type", d.Time)
		}
		if te.Energy > d.Energy*(1+1e-9) {
			t.Errorf("tri-type frontier worse at deadline %v: %v vs %v", d.Time, te.Energy, d.Energy)
		}
	}
}

func TestGenericLabel(t *testing.T) {
	p := GenericPoint{Counts: []int{8, 4, 2}}
	got := p.Label([]string{"a9", "a15", "k10"})
	if got != "a9 8 : a15 4 : k10 2" {
		t.Errorf("Label = %q", got)
	}
	if got := p.Label(nil); got != "type0 8 : type1 4 : type2 2" {
		t.Errorf("unnamed Label = %q", got)
	}
	// Absent types are skipped, so the label names exactly the used mix.
	p = GenericPoint{Counts: []int{8, 0, 2}}
	if got := p.Label([]string{"a9", "a15", "k10"}); got != "a9 8 : k10 2" {
		t.Errorf("absent-skipping Label = %q", got)
	}
	p = GenericPoint{Counts: []int{0, 4, 0}}
	if got := p.Label([]string{"a9"}); got != "type1 4" {
		t.Errorf("short-names Label = %q", got)
	}
}

func TestGenericSpaceSizeSaturates(t *testing.T) {
	cfgs := make([]hwsim.Config, 20)
	// One enormous type saturates the per-type term.
	huge := []GroupType{{MaxNodes: math.MaxInt, Configs: cfgs}}
	if got := GenericSpaceSize(huge); got != math.MaxUint64 {
		t.Errorf("saturating size = %d, want MaxUint64", got)
	}
	// Types that individually fit but whose product overflows must
	// saturate too, not wrap to a small value.
	big := GroupType{MaxNodes: 1 << 40, Configs: cfgs}
	if got := GenericSpaceSize([]GroupType{big, big, big}); got != math.MaxUint64 {
		t.Errorf("product overflow size = %d, want MaxUint64", got)
	}
	// A large-but-exact case stays exact: (1+3*1)^2 - 1.
	one := make([]hwsim.Config, 1)
	small := []GroupType{{MaxNodes: 3, Configs: one}, {MaxNodes: 3, Configs: one}}
	if got := GenericSpaceSize(small); got != 15 {
		t.Errorf("exact size = %d, want 15", got)
	}
	// MaxNodes 0 contributes a factor of 1, not 1+0*len.
	if got := GenericSpaceSize([]GroupType{{MaxNodes: 0, Configs: cfgs}, {MaxNodes: 3, Configs: one}}); got != 3 {
		t.Errorf("zero-type size = %d, want 3", got)
	}
}

func TestEnumerateGroupsRefusesHugeSpaces(t *testing.T) {
	// Five real types at 4 nodes each: 81*65*73*81*73 - 1 ≈ 2.27e9
	// points, past the materialization bound but cheap to reject (the
	// guard fires before any evaluation).
	tri := triTypes(t, 4, 4, 4)
	types := []GroupType{tri[0], tri[1], tri[2], tri[0], tri[2]}
	if _, err := EnumerateGroups(types, 50e6); err == nil {
		t.Error("materializing a >2^31-point space should error")
	}
	if _, err := EnumerateGroupsParallel(types, 50e6, 2); err == nil {
		t.Error("parallel materialization of a >2^31-point space should error")
	}
}

// Streaming yields exactly EnumerateGroups's points in exactly its
// order; retained copies must survive the scratch-buffer reuse.
func TestGenericStreamingMatchesMaterialized(t *testing.T) {
	types := triTypes(t, 2, 2, 2)
	materialized, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = EnumerateGroupsFunc(types, 50e6, func(p GenericPoint) bool {
		if i >= len(materialized) {
			t.Fatalf("stream yielded more than %d points", len(materialized))
		}
		if !genericPointsEqual(p, materialized[i]) {
			t.Fatalf("stream point %d = %+v, want %+v", i, p, materialized[i])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(materialized) {
		t.Fatalf("stream yielded %d points, want %d", i, len(materialized))
	}

	// Early stop is honored and is not an error.
	n := 0
	err = EnumerateGroupsFunc(types, 50e6, func(GenericPoint) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("early stop after %d points, want 10", n)
	}
}

func TestGenericParallelMatchesSerial(t *testing.T) {
	types := triTypes(t, 3, 2, 3)
	serial, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		par, err := EnumerateGroupsParallel(types, 50e6, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if !genericPointsEqual(par[i], serial[i]) {
				t.Fatalf("workers=%d: point %d = %+v, want %+v", workers, i, par[i], serial[i])
			}
		}
	}
}

// The streamed online frontier equals the frontier computed from the
// fully materialized space, and the parallel chunk-merged frontier
// equals the serial one — all bit-identical.
func TestGenericFrontierMatchesMaterialized(t *testing.T) {
	types := triTypes(t, 2, 2, 2)
	pts, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pareto.Frontier(genericTE(pts))
	if err != nil {
		t.Fatal(err)
	}
	fpts, ftes, err := GenericFrontierOf(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ftes) != len(want) {
		t.Fatalf("streamed frontier has %d points, want %d", len(ftes), len(want))
	}
	for i := range want {
		if ftes[i].Time != want[i].Time || ftes[i].Energy != want[i].Energy {
			t.Fatalf("frontier point %d = (%v, %v), want (%v, %v)",
				i, ftes[i].Time, ftes[i].Energy, want[i].Time, want[i].Energy)
		}
		if !genericPointsEqual(fpts[ftes[i].Index], pts[want[i].Index]) {
			t.Fatalf("frontier payload %d = %+v, want %+v", i, fpts[ftes[i].Index], pts[want[i].Index])
		}
	}
	for _, workers := range []int{1, 4} {
		ppts, ptes, err := GenericFrontierOfParallel(types, 50e6, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(ptes) != len(ftes) {
			t.Fatalf("workers=%d: parallel frontier has %d points, want %d", workers, len(ptes), len(ftes))
		}
		for i := range ftes {
			if ptes[i] != ftes[i] || !genericPointsEqual(ppts[i], fpts[i]) {
				t.Fatalf("workers=%d: parallel frontier point %d differs", workers, i)
			}
		}
	}
}

// The domination-pruned generic space has exactly the full space's
// Pareto frontier — the proof-by-test behind PruneGroupTypes.
func TestGenericPrunedFrontierEqualsFull(t *testing.T) {
	types := triTypes(t, 3, 3, 3)
	pruned, err := PruneGroupTypes(types)
	if err != nil {
		t.Fatal(err)
	}
	full := GenericSpaceSize(types)
	reduced := GenericSpaceSize(pruned)
	if reduced >= full {
		t.Fatalf("pruning did not shrink the space: %d -> %d", full, reduced)
	}
	fullPts, fullTEs, err := GenericFrontierOf(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	prunedPts, prunedTEs, err := GenericFrontierOf(pruned, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(prunedTEs) != len(fullTEs) {
		t.Fatalf("pruned frontier has %d points, full has %d", len(prunedTEs), len(fullTEs))
	}
	for i := range fullTEs {
		if prunedTEs[i].Time != fullTEs[i].Time || prunedTEs[i].Energy != fullTEs[i].Energy {
			t.Fatalf("frontier point %d: pruned (%v, %v) vs full (%v, %v)",
				i, prunedTEs[i].Time, prunedTEs[i].Energy, fullTEs[i].Time, fullTEs[i].Energy)
		}
		if !genericPointsEqual(prunedPts[i], fullPts[i]) {
			t.Fatalf("frontier payload %d differs between pruned and full", i)
		}
	}
}

func TestGenericPointCloneAndSummary(t *testing.T) {
	types := triTypes(t, 1, 1, 1)
	var clone GenericPoint
	err := EnumerateGroupsFunc(types, 50e6, func(p GenericPoint) bool {
		// Keep a deep copy of the first tri-type mix; the scratch point
		// keeps mutating afterwards.
		total := 0
		for _, n := range p.Counts {
			if n > 0 {
				total++
			}
		}
		if total == 3 {
			clone = p.Clone()
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if clone.Counts == nil {
		t.Fatal("no tri-type mix found")
	}
	want := clone.Clone()
	// Re-running the stream to completion must not disturb the clone.
	if err := EnumerateGroupsFunc(types, 50e6, func(GenericPoint) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if !genericPointsEqual(clone, want) {
		t.Fatal("Clone shares storage with the scratch point")
	}

	s := clone.Summary([]string{"a9", "a15", "k10"})
	if len(s.Groups) != 3 {
		t.Fatalf("summary has %d groups, want 3", len(s.Groups))
	}
	fracs := 0.0
	for _, g := range s.Groups {
		if g.Nodes <= 0 || g.Cores <= 0 || g.GHz <= 0 {
			t.Fatalf("bad group summary %+v", g)
		}
		fracs += g.WorkFraction
	}
	if math.Abs(fracs-1) > 1e-12 {
		t.Fatalf("work fractions sum to %v", fracs)
	}
	if s.TimeSeconds != float64(clone.Time) || s.EnergyJoules != float64(clone.Energy) {
		t.Fatal("summary scalars differ from the point")
	}
	if s.Label != clone.Label([]string{"a9", "a15", "k10"}) {
		t.Fatalf("summary label %q", s.Label)
	}
}

func genericPointsEqual(a, b GenericPoint) bool {
	if a.Time != b.Time || a.Energy != b.Energy ||
		len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] || a.Configs[i] != b.Configs[i] || a.Work[i] != b.Work[i] {
			return false
		}
	}
	return true
}

func TestEnumerateGroupsErrors(t *testing.T) {
	if _, err := EnumerateGroups(nil, 1e6); err == nil {
		t.Error("no types should error")
	}
	s := epSpace(t)
	if _, err := EnumerateGroups([]GroupType{{Model: s.ARM, MaxNodes: -1}}, 1e6); err == nil {
		t.Error("negative MaxNodes should error")
	}
	if _, err := EnumerateGroups([]GroupType{{Model: s.ARM, MaxNodes: 0}}, 1e6); err == nil {
		t.Error("all-zero space should error")
	}
}

func genericTE(points []GenericPoint) []pareto.TE {
	tes := make([]pareto.TE, len(points))
	for i, p := range points {
		tes[i] = pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i}
	}
	return tes
}
