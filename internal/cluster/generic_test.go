package cluster

import (
	"math"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/pareto"
)

func triTypes(t testing.TB, maxA9, maxA15, maxK10 int) []GroupType {
	return []GroupType{
		{Model: nodeModel(t, hwsim.ARMCortexA9(), "ep"), MaxNodes: maxA9, NeedsSwitch: true},
		{Model: nodeModel(t, hwsim.ARMCortexA15(), "ep"), MaxNodes: maxA15, NeedsSwitch: true},
		{Model: nodeModel(t, hwsim.AMDOpteronK10(), "ep"), MaxNodes: maxK10},
	}
}

func TestA15SpecValid(t *testing.T) {
	a15 := hwsim.ARMCortexA15()
	if err := a15.Validate(); err != nil {
		t.Fatal(err)
	}
	a9 := hwsim.ARMCortexA9()
	amd := hwsim.AMDOpteronK10()
	// The A15 slots between the paper's poles: faster core than the A9,
	// lower power than the AMD.
	if a15.FMax() <= a9.FMax() {
		t.Error("A15 should clock above the A9")
	}
	if a15.PeakPower() <= a9.PeakPower() {
		t.Error("A15 should draw more than the A9")
	}
	if a15.PeakPower() >= amd.PeakPower()/2 {
		t.Error("A15 should draw far less than the K10")
	}
	if a15.ISA != a9.ISA {
		t.Error("A15 shares the ARMv7-A ISA")
	}
}

func TestA15ModelBuildsAndOrdersSanely(t *testing.T) {
	a9 := nodeModel(t, hwsim.ARMCortexA9(), "ep")
	a15 := nodeModel(t, hwsim.ARMCortexA15(), "ep")
	amd := nodeModel(t, hwsim.AMDOpteronK10(), "ep")

	k9, _ := a9.TimePerUnit(maxCfg(a9.Spec))
	k15, _ := a15.TimePerUnit(maxCfg(a15.Spec))
	kAMD, _ := amd.TimePerUnit(maxCfg(amd.Spec))
	// Per-node speed: AMD > A15 > A9.
	if !(kAMD < k15 && k15 < k9) {
		t.Errorf("per-unit times should order AMD < A15 < A9: %v %v %v", kAMD, k15, k9)
	}
	// Energy efficiency: A9 > A15 > AMD.
	ppr9, _, _ := a9.PPR()
	ppr15, _, _ := a15.PPR()
	pprAMD, _, _ := amd.PPR()
	if !(ppr9 > ppr15 && ppr15 > pprAMD) {
		t.Errorf("PPR should order A9 > A15 > AMD: %v %v %v", ppr9, ppr15, pprAMD)
	}
}

func TestGenericSpaceSizeAndEnumeration(t *testing.T) {
	types := triTypes(t, 1, 1, 1)
	want := GenericSpaceSize(types)
	// (1*20+1)*(1*16+1)*(1*18+1) - 1 = 21*17*19 - 1 = 6782.
	if want != 6782 {
		t.Fatalf("GenericSpaceSize = %d, want 6782", want)
	}
	points, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != want {
		t.Fatalf("enumerated %d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.Time <= 0 || p.Energy <= 0 {
			t.Fatalf("invalid point %+v", p)
		}
		total := 0
		for _, n := range p.Counts {
			total += n
		}
		if total == 0 {
			t.Fatal("all-absent configuration leaked into the output")
		}
		sum := 0.0
		for _, w := range p.Work {
			sum += w
		}
		if math.Abs(sum-50e6) > 1 {
			t.Fatalf("work not conserved: %v", sum)
		}
	}
}

func TestGenericTwoTypeMatchesSpace(t *testing.T) {
	// With the A15 absent, the generic enumeration reproduces the
	// two-type Space results point for point (as sets).
	s := epSpace(t)
	types := []GroupType{
		{Model: s.ARM, MaxNodes: 2, NeedsSwitch: true},
		{Model: s.AMD, MaxNodes: 2},
	}
	generic, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	twoType, err := s.Enumerate(2, 2, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(generic) != len(twoType) {
		t.Fatalf("sizes differ: generic %d, two-type %d", len(generic), len(twoType))
	}
	// Compare as multisets of (time, energy).
	type te struct{ t, e float64 }
	count := map[te]int{}
	for _, p := range twoType {
		count[te{float64(p.Time), float64(p.Energy)}]++
	}
	for _, p := range generic {
		key := te{float64(p.Time), float64(p.Energy)}
		if count[key] == 0 {
			t.Fatalf("generic point (%v, %v) missing from two-type space", p.Time, p.Energy)
		}
		count[key]--
	}
}

// The tri-type frontier weakly dominates both two-type frontiers built
// from its subsets: adding a node type can only improve the tradeoff.
func TestTriTypeFrontierDominatesTwoType(t *testing.T) {
	types := triTypes(t, 2, 2, 2)
	tri, err := EnumerateGroups(types, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	noA15 := []GroupType{types[0], {Model: types[1].Model, MaxNodes: 0}, types[2]}
	duo, err := EnumerateGroups(noA15, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	triFr, err := pareto.Frontier(genericTE(tri))
	if err != nil {
		t.Fatal(err)
	}
	duoFr, err := pareto.Frontier(genericTE(duo))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range duoFr {
		te, ok := pareto.EnergyAtDeadline(triFr, d.Time)
		if !ok {
			t.Fatalf("tri-type space cannot meet deadline %v reachable by two-type", d.Time)
		}
		if te.Energy > d.Energy*(1+1e-9) {
			t.Errorf("tri-type frontier worse at deadline %v: %v vs %v", d.Time, te.Energy, d.Energy)
		}
	}
}

func TestGenericLabel(t *testing.T) {
	p := GenericPoint{Counts: []int{8, 4, 2}}
	got := p.Label([]string{"a9", "a15", "k10"})
	if got != "a9 8 : a15 4 : k10 2" {
		t.Errorf("Label = %q", got)
	}
	if got := p.Label(nil); got != "type0 8 : type1 4 : type2 2" {
		t.Errorf("unnamed Label = %q", got)
	}
}

func TestEnumerateGroupsErrors(t *testing.T) {
	if _, err := EnumerateGroups(nil, 1e6); err == nil {
		t.Error("no types should error")
	}
	s := epSpace(t)
	if _, err := EnumerateGroups([]GroupType{{Model: s.ARM, MaxNodes: -1}}, 1e6); err == nil {
		t.Error("negative MaxNodes should error")
	}
	if _, err := EnumerateGroups([]GroupType{{Model: s.ARM, MaxNodes: 0}}, 1e6); err == nil {
		t.Error("all-zero space should error")
	}
}

func genericTE(points []GenericPoint) []pareto.TE {
	tes := make([]pareto.TE, len(points))
	for i, p := range points {
		tes[i] = pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i}
	}
	return tes
}
