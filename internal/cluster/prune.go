package cluster

import (
	"fmt"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/units"
)

// This file implements the configuration-space reduction the paper leaves
// open ("An approach to reduce the configuration space is beyond the
// scope of this paper", §IV-B).
//
// The key structural fact: under the matching split, a group of n nodes
// at per-node configuration c contributes energy n * P_avg(c) * T to a
// job of duration T, where P_avg(c) is the node's average power and the
// cluster duration T falls as any group's per-unit time k(c) falls. So
// replacing a node configuration with one that is no slower per unit
// (k' <= k) and draws no more average power (P' <= P) weakly improves
// both axes of every cluster configuration containing it. Consequently
// only per-type configurations on the (k, P) Pareto frontier can appear
// in energy-deadline Pareto-optimal cluster configurations, and the
// cluster frontier computed from the pruned space equals the frontier of
// the full space. The equivalence is asserted by tests and the speedup
// measured by BenchmarkPrunedVsFullEnumeration.

// nodeOperatingPoint is a per-node configuration's (k, P) signature.
type nodeOperatingPoint struct {
	cfg hwsim.Config
	k   float64 // seconds per work unit
	p   float64 // average watts while servicing
}

// PrunedNodeConfigs returns the configurations of nm's node type that
// survive (time-per-unit, average-power) domination pruning, in
// enumeration order.
func PrunedNodeConfigs(nm model.NodeModel) ([]hwsim.Config, error) {
	all := hwsim.Configs(nm.Spec)
	points := make([]nodeOperatingPoint, 0, len(all))
	for _, cfg := range all {
		pred, err := nm.Predict(cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("cluster: pruning %s: %w", nm.Spec.Name, err)
		}
		points = append(points, nodeOperatingPoint{
			cfg: cfg,
			k:   float64(pred.Time),
			p:   float64(pred.AvgPower),
		})
	}
	var out []hwsim.Config
	for i, a := range points {
		dominated := false
		for j, b := range points {
			if i == j {
				continue
			}
			if b.k <= a.k && b.p <= a.p && (b.k < a.k || b.p < a.p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a.cfg)
		}
	}
	return out, nil
}

// PruneStats reports the reduction achieved by pruning.
type PruneStats struct {
	// ARMConfigs and AMDConfigs are the surviving per-node configuration
	// counts (out of 20 and 18 for the paper's nodes).
	ARMConfigs, AMDConfigs int
	// FullSpace and PrunedSpace are the cluster-space sizes before and
	// after pruning for the given node bounds.
	FullSpace, PrunedSpace int
}

// Reduction returns the space-size reduction factor.
func (ps PruneStats) Reduction() float64 {
	if ps.PrunedSpace == 0 {
		return 0
	}
	return float64(ps.FullSpace) / float64(ps.PrunedSpace)
}

// EnumeratePruned evaluates only cluster configurations built from
// domination-pruned per-node configurations. Its Pareto frontier equals
// the full space's (see the file comment), at a fraction of the cost.
func (s Space) EnumeratePruned(maxARM, maxAMD int, w float64) ([]Point, PruneStats, error) {
	if maxARM < 0 || maxAMD < 0 || maxARM+maxAMD == 0 {
		return nil, PruneStats{}, fmt.Errorf("cluster: invalid space %dx%d", maxARM, maxAMD)
	}
	armCfgs, err := PrunedNodeConfigs(s.ARM)
	if err != nil {
		return nil, PruneStats{}, err
	}
	amdCfgs, err := PrunedNodeConfigs(s.AMD)
	if err != nil {
		return nil, PruneStats{}, err
	}
	stats := PruneStats{
		ARMConfigs: len(armCfgs),
		AMDConfigs: len(amdCfgs),
		FullSpace:  s.SpaceSize(maxARM, maxAMD),
		PrunedSpace: maxARM*len(armCfgs)*maxAMD*len(amdCfgs) +
			maxARM*len(armCfgs) + maxAMD*len(amdCfgs),
	}
	if err := validWork(w); err != nil {
		return nil, PruneStats{}, err
	}
	// The kernel entries for the surviving configurations carry the same
	// coefficients as the full table's, so pruned points are bit-identical
	// to their counterparts in Enumerate's output.
	kt, err := s.kernels(maxARM, maxAMD, armCfgs, amdCfgs)
	if err != nil {
		return nil, PruneStats{}, err
	}
	out := make([]Point, 0, stats.PrunedSpace)
	kt.forEachPoint(maxARM, maxAMD, w, func(p Point) bool {
		out = append(out, p)
		return true
	})
	return out, stats, nil
}

// MostEfficientPerNode is a convenience over PrunedNodeConfigs: the
// single configuration minimizing energy per unit, with its operating
// point. It equals model.NodeModel.MostEfficientConfig but is exposed
// here alongside the pruning machinery for callers already holding a
// Space.
func MostEfficientPerNode(nm model.NodeModel) (hwsim.Config, units.Seconds, units.Watt, error) {
	cfg, pred, err := nm.MostEfficientConfig()
	if err != nil {
		return hwsim.Config{}, 0, 0, err
	}
	return cfg, pred.Time, pred.AvgPower, nil
}
