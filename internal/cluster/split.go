package cluster

import (
	"fmt"
	"math"

	"heteromix/internal/units"
)

// This file implements alternative workload splits, for quantifying what
// the paper's matching technique actually buys (the ablation behind
// BenchmarkSplitAblation). The paper's argument: "By finishing at the
// same time, the energy incurred by idling in the cluster is minimized."
// EvaluateSplit makes the idling explicit — groups that finish early sit
// at idle power until the last group completes — so the matching split
// can be compared against naive alternatives.

// Split names a workload-division policy.
type Split int

// Split policies.
const (
	// SplitMatching is the paper's mix and match: every group finishes
	// simultaneously (work proportional to group throughput).
	SplitMatching Split = iota
	// SplitProportionalNodes divides work by node count, ignoring that
	// node types differ in speed (a natural naive baseline).
	SplitProportionalNodes
	// SplitEqualGroups divides work equally among groups with nodes.
	SplitEqualGroups
)

// String names the split.
func (s Split) String() string {
	switch s {
	case SplitMatching:
		return "matching"
	case SplitProportionalNodes:
		return "proportional-to-nodes"
	case SplitEqualGroups:
		return "equal-groups"
	default:
		return fmt.Sprintf("split(%d)", int(s))
	}
}

// Fractions returns the split's work fractions for the given groups.
func (s Split) Fractions(groups []Group) ([]float64, error) {
	n := len(groups)
	fr := make([]float64, n)
	switch s {
	case SplitMatching:
		total := 0.0
		for i, g := range groups {
			if g.Nodes == 0 {
				continue
			}
			k, err := g.Model.TimePerUnit(g.Config)
			if err != nil {
				return nil, err
			}
			fr[i] = float64(g.Nodes) / float64(k)
			total += fr[i]
		}
		if total <= 0 {
			return nil, fmt.Errorf("cluster: no throughput to split over")
		}
		for i := range fr {
			fr[i] /= total
		}
	case SplitProportionalNodes:
		total := 0
		for _, g := range groups {
			total += g.Nodes
		}
		if total == 0 {
			return nil, fmt.Errorf("cluster: no nodes to split over")
		}
		for i, g := range groups {
			fr[i] = float64(g.Nodes) / float64(total)
		}
	case SplitEqualGroups:
		active := 0
		for _, g := range groups {
			if g.Nodes > 0 {
				active++
			}
		}
		if active == 0 {
			return nil, fmt.Errorf("cluster: no groups to split over")
		}
		for i, g := range groups {
			if g.Nodes > 0 {
				fr[i] = 1 / float64(active)
			}
		}
	default:
		return nil, fmt.Errorf("cluster: unknown split %d", int(s))
	}
	return fr, nil
}

// EvaluateSplit services w work units with an explicit work division:
// fractions[i] of w goes to groups[i] (fractions must be non-negative
// and sum to 1; groups without nodes must get 0). The job completes when
// the slowest group finishes; groups that finish earlier idle at their
// nodes' idle power until then — the energy wastage the matching split
// eliminates.
func EvaluateSplit(groups []Group, w float64, fractions []float64) (Evaluation, error) {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return Evaluation{}, fmt.Errorf("cluster: work must be positive and finite, got %v", w)
	}
	if len(fractions) != len(groups) {
		return Evaluation{}, fmt.Errorf("cluster: %d fractions for %d groups", len(fractions), len(groups))
	}
	sum := 0.0
	for i, f := range fractions {
		if f < 0 || math.IsNaN(f) {
			return Evaluation{}, fmt.Errorf("cluster: invalid fraction %v", f)
		}
		if f > 0 && groups[i].Nodes == 0 {
			return Evaluation{}, fmt.Errorf("cluster: group %d has work but no nodes", i)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return Evaluation{}, fmt.Errorf("cluster: fractions sum to %v", sum)
	}
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return Evaluation{}, fmt.Errorf("cluster: group %d: %w", i, err)
		}
	}

	// First pass: each group's own finish time.
	finish := make([]units.Seconds, len(groups))
	var t units.Seconds
	for i, g := range groups {
		if g.Nodes == 0 || fractions[i] == 0 {
			continue
		}
		perNode := w * fractions[i] / float64(g.Nodes)
		pred, err := g.Model.Predict(g.Config, perNode)
		if err != nil {
			return Evaluation{}, fmt.Errorf("cluster: group %d: %w", i, err)
		}
		finish[i] = pred.Time
		if pred.Time > t {
			t = pred.Time
		}
	}
	if t <= 0 {
		return Evaluation{}, fmt.Errorf("cluster: no work assigned")
	}

	// Second pass: energy = service energy + idle-wait energy + switch.
	ev := Evaluation{
		Time:        t,
		Work:        make([]float64, len(groups)),
		GroupEnergy: make([]units.Joule, len(groups)),
	}
	for i, g := range groups {
		if g.Nodes == 0 {
			continue
		}
		var e units.Joule
		if fractions[i] > 0 {
			perNode := w * fractions[i] / float64(g.Nodes)
			pred, err := g.Model.Predict(g.Config, perNode)
			if err != nil {
				return Evaluation{}, err
			}
			e = units.Joule(float64(pred.Energy) * float64(g.Nodes))
		}
		// Idle-wait: the group's nodes stay powered until the job ends.
		wait := t - finish[i]
		e += units.Watt(float64(g.Model.Power.Idle) * float64(g.Nodes)).Times(wait)
		e += units.Watt(float64(SwitchPower) * float64(g.Switches())).Times(t)
		ev.Work[i] = w * fractions[i]
		ev.GroupEnergy[i] = e
		ev.Energy += e
	}
	return ev, nil
}

// CompareSplits evaluates w under each policy and returns the results
// keyed by policy, for ablation reporting.
func CompareSplits(groups []Group, w float64) (map[Split]Evaluation, error) {
	out := make(map[Split]Evaluation, 3)
	for _, policy := range []Split{SplitMatching, SplitProportionalNodes, SplitEqualGroups} {
		fr, err := policy.Fractions(groups)
		if err != nil {
			return nil, fmt.Errorf("cluster: %v: %w", policy, err)
		}
		ev, err := EvaluateSplit(groups, w, fr)
		if err != nil {
			return nil, fmt.Errorf("cluster: %v: %w", policy, err)
		}
		out[policy] = ev
	}
	return out, nil
}
