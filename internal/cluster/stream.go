package cluster

import (
	"heteromix/internal/pareto"
)

// This file is the streaming enumeration API: callers that only need an
// aggregate of the configuration space — a Pareto frontier, a minimum, a
// count — consume points as they are produced and never hold the full
// point slice (36,380 entries for the paper's 10x10 space, millions for
// the scaling studies).

// EnumerateFunc streams every point of the space to yield, in
// Enumerate's order, without materializing the point slice. Returning
// false from yield stops the enumeration early (not an error).
func (s Space) EnumerateFunc(maxARM, maxAMD int, w float64, yield func(Point) bool) error {
	kt, err := s.enumKernels(maxARM, maxAMD, w)
	if err != nil {
		return err
	}
	kt.forEachPoint(maxARM, maxAMD, w, yield)
	return nil
}

// FrontierOf enumerates the space and returns only its Pareto-optimal
// points, maintained online as the enumeration streams: the full space is
// never materialized, only the current frontier (typically a few hundred
// points). The returned TE slice is the energy-deadline frontier in
// pareto.Frontier's order (time-ascending), with each Index pointing into
// the returned point slice.
func FrontierOf(s Space, maxARM, maxAMD int, w float64) ([]Point, []pareto.TE, error) {
	return frontierOfStream(func(yield func(Point) bool) error {
		return s.EnumerateFunc(maxARM, maxAMD, w, yield)
	})
}

// frontierOfStream runs an online Pareto frontier over any streaming
// enumeration via pareto.Tracked; the shared core of FrontierOf and
// Table.Frontier. Points need no Clone hook: the two-type enumerators
// yield value-type Points with no retained backing storage.
func frontierOfStream(enumerate func(yield func(Point) bool) error) ([]Point, []pareto.TE, error) {
	var tr pareto.Tracked[Point]
	var addErr error
	err := enumerate(func(p Point) bool {
		_, err := tr.Insert(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy)}, p)
		if err != nil {
			addErr = err
			return false
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	if addErr != nil {
		return nil, nil, addErr
	}
	pts, tes := tr.Frontier()
	return pts, tes, nil
}
