package cluster

import "testing"

// The 3-type benchmark space: the tri-cluster example's A9/A15/K10 mix
// at 4 nodes per type — 384,344 configurations before pruning.
func benchTriTypes(b *testing.B) []GroupType {
	return triTypes(b, 4, 4, 4)
}

func BenchmarkEnumerateGroupsSerial(b *testing.B) {
	types := benchTriTypes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := EnumerateGroups(types, 50e6)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty space")
		}
	}
}

// Pruned materialization: domination pruning shrinks the per-type option
// lists before the same flat-backed enumeration.
func BenchmarkEnumerateGroupsPruned(b *testing.B) {
	pruned, err := PruneGroupTypes(benchTriTypes(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := EnumerateGroups(pruned, 50e6)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty space")
		}
	}
}

// Streaming frontier over the full space: nothing materialized, only
// frontier survivors copied out of the scratch buffers.
func BenchmarkEnumerateGroupsFrontier(b *testing.B) {
	types := benchTriTypes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tes, err := GenericFrontierOf(types, 50e6)
		if err != nil {
			b.Fatal(err)
		}
		if len(tes) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// The production path and the issue's headline number: pruning +
// parallel evaluation + streaming online frontier on the same 3-type
// space BenchmarkEnumerateGroupsSerial materializes in full.
func BenchmarkEnumerateGroupsParallel(b *testing.B) {
	pruned, err := PruneGroupTypes(benchTriTypes(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tes, err := GenericFrontierOfParallel(pruned, 50e6, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(tes) == 0 {
			b.Fatal("empty frontier")
		}
	}
}
