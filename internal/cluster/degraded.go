package cluster

// Failure-aware evaluation: what the mix-and-match split costs when
// nodes crash, pause or straggle mid-job. Evaluate assumes every node
// survives at nominal speed; EvaluateDegraded replays a faults.Plan
// against the same per-unit kernels, re-applying the matching split to
// the surviving capacity at every fault (the work always rebalances so
// all live nodes finish together) and charging the recomputation energy
// a crash forces.
//
// The accounting conventions, chosen to stay consistent with the
// analytical model's linearity:
//
//   - A node works at its kernel rate 1/k (units per second) and draws
//     its kernel power epu/k while working. A straggler slowed by factor
//     s works at 1/(s*k) at the same draw — each unit costs s*epu.
//   - A permanent crash loses the node's work since the last checkpoint
//     (all of its work when checkpointing is off — fail-stop); the lost
//     work returns to the remaining pool and the energy already spent on
//     it is reported as WastedEnergy. A transient crash only pauses the
//     node: it draws nothing while down and resumes with its work intact.
//   - Checkpoints, when enabled, pause every working node for
//     CheckpointCost seconds at CheckpointEvery intervals (nodes draw
//     their working power during the pause) and bound a crash's loss to
//     one interval's work.
//   - The ARM enclosure switches stay powered for the whole (possibly
//     longer) job: switch energy is the provisioned switch count times
//     the degraded completion time.
//
// With an empty plan and zero checkpoint options the degraded path is
// bit-identical to Evaluate — same Time, same Energy, same split — which
// is the regression anchor the serving tests pin down.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"heteromix/internal/faults"
	"heteromix/internal/units"
)

// ErrClusterDied reports that every node was lost with work remaining
// and no future recovery scheduled.
var ErrClusterDied = errors.New("cluster: no surviving capacity")

// DegradedOptions selects the recovery machinery in effect.
type DegradedOptions struct {
	// CheckpointEvery inserts a coordinated checkpoint at this wall-time
	// interval; zero disables checkpointing (fail-stop: a crash loses
	// everything the node computed).
	CheckpointEvery units.Seconds
	// CheckpointCost is the pause each checkpoint imposes on every
	// working node (work stops, power does not).
	CheckpointCost units.Seconds
}

func (o DegradedOptions) validate() error {
	for name, v := range map[string]units.Seconds{
		"checkpoint interval": o.CheckpointEvery, "checkpoint cost": o.CheckpointCost,
	} {
		f := float64(v)
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("cluster: %s %v must be non-negative and finite", name, v)
		}
	}
	if o.CheckpointCost > 0 && o.CheckpointEvery == 0 {
		return fmt.Errorf("cluster: checkpoint cost without a checkpoint interval")
	}
	return nil
}

// DegradedEvaluation is the failure-aware prediction.
type DegradedEvaluation struct {
	// Time is the degraded completion time; Energy the total cluster
	// energy including switches, checkpoint pauses and wasted work.
	Time   units.Seconds
	Energy units.Joule
	// Baseline is the no-fault evaluation of the same configuration, for
	// side-by-side reporting.
	Baseline Evaluation
	// Work is each group's net useful work at completion (lost work
	// excluded); it sums to the job size.
	Work []float64
	// GroupEnergy is each group's energy including its switch share.
	GroupEnergy []units.Joule
	// LostWork is the total work crashed nodes had completed that had to
	// be recomputed; WastedEnergy the energy that had been spent on it.
	LostWork     float64
	WastedEnergy units.Joule
	// Rebalances counts the re-splits applied (every fault or recovery
	// that changed the live capacity while work remained).
	Rebalances int
	// Checkpoints counts coordinated checkpoints taken; CheckpointTime
	// is the wall time they paused the job; CheckpointEnergy their draw.
	Checkpoints      int
	CheckpointTime   units.Seconds
	CheckpointEnergy units.Joule
	// Survivors is each group's node count still provisioned (not
	// permanently crashed) at completion.
	Survivors []int
}

// degNode is one node's live state during the replay.
type degNode struct {
	group  int
	rate   float64 // nominal units/second (1/k)
	epu    float64 // joules per unit at nominal speed
	power  float64 // watts while working (epu * rate, factor-invariant)
	factor float64 // straggle slowdown, >= 1
	dead   bool    // permanently crashed
	down   int     // active transient outages
	done   float64 // useful work since the last checkpoint
	spent  float64 // energy spent on that work
}

func (n *degNode) up() bool { return !n.dead && n.down == 0 }

// degChange is one state transition in wall time.
type degChange struct {
	t    float64
	node int
	op   int // one of opCrash..opUnstraggle
	perm bool
	fac  float64
}

const (
	opCrash = iota
	opRecover
	opStraggle
	opUnstraggle
)

// EvaluateDegraded services w work units on the groups while the fault
// plan strikes, rebalancing the matching split across the surviving
// capacity at every fault. An empty plan with zero options reproduces
// Evaluate exactly. It returns an error wrapping ErrClusterDied when the
// plan kills every node with work remaining and nothing scheduled to
// recover.
func EvaluateDegraded(groups []Group, w float64, plan faults.Plan, opts DegradedOptions) (DegradedEvaluation, error) {
	base, err := Evaluate(groups, w)
	if err != nil {
		return DegradedEvaluation{}, err
	}
	if err := opts.validate(); err != nil {
		return DegradedEvaluation{}, err
	}
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = g.Nodes
	}
	if err := plan.Validate(sizes); err != nil {
		return DegradedEvaluation{}, err
	}
	if plan.Empty() && opts.CheckpointEvery == 0 {
		return degradedFromBaseline(base, sizes), nil
	}

	// Per-node state from the per-unit kernels Evaluate validated.
	var nodes []degNode
	nodeIdx := make([][]int, len(groups)) // (group, node) -> nodes index
	for gi, g := range groups {
		nodeIdx[gi] = make([]int, g.Nodes)
		if g.Nodes == 0 {
			continue
		}
		k, err := g.Model.KernelFor(g.Config)
		if err != nil {
			return DegradedEvaluation{}, fmt.Errorf("cluster: group %d: %w", gi, err)
		}
		rate := 1 / float64(k.TimePerUnit)
		for n := 0; n < g.Nodes; n++ {
			nodeIdx[gi][n] = len(nodes)
			nodes = append(nodes, degNode{
				group: gi, rate: rate, epu: k.EnergyPerUnit,
				power: k.EnergyPerUnit * rate, factor: 1,
			})
		}
	}

	// Expand the plan into wall-time transitions (transient faults and
	// bounded straggles contribute their end as a second transition).
	var changes []degChange
	for _, e := range plan.Sorted() {
		idx := nodeIdx[e.Group][e.Node]
		switch e.Kind {
		case faults.Crash:
			changes = append(changes, degChange{t: float64(e.At), node: idx, op: opCrash, perm: e.Permanent()})
			if !e.Permanent() {
				changes = append(changes, degChange{t: float64(e.At + e.Duration), node: idx, op: opRecover})
			}
		case faults.Straggle:
			changes = append(changes, degChange{t: float64(e.At), node: idx, op: opStraggle, fac: e.Factor})
			if !e.Permanent() {
				changes = append(changes, degChange{t: float64(e.At + e.Duration), node: idx, op: opUnstraggle})
			}
		}
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].t < changes[j].t })

	ev := DegradedEvaluation{
		Baseline:    base,
		Work:        make([]float64, len(groups)),
		GroupEnergy: make([]units.Joule, len(groups)),
		Survivors:   append([]int(nil), sizes...),
	}
	groupWork := make([]float64, len(groups))
	groupEnergy := make([]float64, len(groups))

	// advance runs every up node for dt seconds and returns the work done.
	advance := func(dt float64) float64 {
		total := 0.0
		for i := range nodes {
			n := &nodes[i]
			if !n.up() {
				continue
			}
			wk := n.rate / n.factor * dt
			e := n.power * dt
			n.done += wk
			n.spent += e
			groupWork[n.group] += wk
			groupEnergy[n.group] += e
			total += wk
		}
		return total
	}

	wrem := w
	tcur := 0.0
	applied := 0
	ci := 0
	nextCP := math.Inf(1)
	if opts.CheckpointEvery > 0 {
		nextCP = float64(opts.CheckpointEvery)
	}

	// apply fires one transition, returning whether live state changed.
	apply := func(c degChange) bool {
		n := &nodes[c.node]
		switch c.op {
		case opCrash:
			if n.dead {
				return false
			}
			if c.perm {
				n.dead = true
				ev.Survivors[n.group]--
				// The node's un-checkpointed work is lost: it returns to
				// the pool and its energy was wasted.
				wrem += n.done
				groupWork[n.group] -= n.done
				ev.LostWork += n.done
				ev.WastedEnergy += units.Joule(n.spent)
				n.done, n.spent = 0, 0
				return true
			}
			n.down++
			return n.down == 1
		case opRecover:
			if n.dead {
				return false
			}
			n.down--
			return n.down == 0
		case opStraggle:
			if n.dead {
				return false
			}
			n.factor = c.fac
			return true
		case opUnstraggle:
			if n.dead || n.factor == 1 {
				return false
			}
			n.factor = 1
			return true
		}
		return false
	}

	const eps = 1e-12
	for wrem > eps*w {
		for ci < len(changes) && changes[ci].t <= tcur {
			if apply(changes[ci]) {
				applied++
			}
			ci++
		}
		rate := 0.0
		for i := range nodes {
			if n := &nodes[i]; n.up() {
				rate += n.rate / n.factor
			}
		}
		tnext := math.Inf(1)
		if ci < len(changes) {
			tnext = changes[ci].t
		}
		if nextCP < tnext {
			tnext = nextCP
		}
		if rate <= 0 {
			// Nothing can run: jump to the next real transition (a pending
			// checkpoint is meaningless with every node down) and restart
			// the checkpoint clock from the recovery.
			if ci >= len(changes) {
				return DegradedEvaluation{}, fmt.Errorf(
					"%w: all nodes lost at t=%.3gs with %.3g work units remaining", ErrClusterDied, tcur, wrem)
			}
			tcur = changes[ci].t
			if opts.CheckpointEvery > 0 {
				nextCP = tcur + float64(opts.CheckpointEvery)
			}
			continue
		}
		if tfin := tcur + wrem/rate; tfin <= tnext {
			wrem -= advance(tfin - tcur)
			tcur = tfin
			break
		}
		wrem -= advance(tnext - tcur)
		tcur = tnext
		if nextCP <= tcur {
			// Coordinated checkpoint: pause every working node for the
			// cost, charge their draw, and reset the loss window. With no
			// node up there is nothing to checkpoint — skip silently.
			working := false
			cost := float64(opts.CheckpointCost)
			for i := range nodes {
				n := &nodes[i]
				if !n.up() {
					continue
				}
				working = true
				e := n.power * cost
				n.spent = 0
				n.done = 0
				groupEnergy[n.group] += e
				ev.CheckpointEnergy += units.Joule(e)
			}
			if working {
				ev.Checkpoints++
				ev.CheckpointTime += units.Seconds(cost)
				tcur += cost
			}
			nextCP = tcur + float64(opts.CheckpointEvery)
		}
	}

	if applied == 0 && ev.Checkpoints == 0 {
		// Nothing fired before completion: the degraded path is the
		// baseline, returned as computed by Evaluate so the equality is
		// exact rather than within float accumulation error.
		return degradedFromBaseline(base, sizes), nil
	}

	ev.Rebalances = applied
	ev.Time = units.Seconds(tcur)
	for gi, g := range groups {
		e := groupEnergy[gi] + float64(SwitchPower)*float64(g.Switches())*tcur
		ev.GroupEnergy[gi] = units.Joule(e)
		ev.Energy += units.Joule(e)
		ev.Work[gi] = groupWork[gi]
	}
	return ev, nil
}

// degradedFromBaseline wraps a fault-free Evaluate result in the
// degraded shape, bit-identical by construction.
func degradedFromBaseline(base Evaluation, sizes []int) DegradedEvaluation {
	return DegradedEvaluation{
		Time:        base.Time,
		Energy:      base.Energy,
		Baseline:    base,
		Work:        append([]float64(nil), base.Work...),
		GroupEnergy: append([]units.Joule(nil), base.GroupEnergy...),
		Survivors:   append([]int(nil), sizes...),
	}
}
