package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelChunk is the number of points one scheduler grab covers: small
// enough that the atomic cursor balances uneven progress and that a
// cancellation is observed promptly, large enough that the atomic add is
// amortized over thousands of float operations.
const parallelChunk = 512

// EnumerateParallel evaluates the same configuration space as Enumerate,
// fanned out over a pool of worker goroutines. The result order is
// identical to Enumerate's (workers write by index, not by completion
// order), and because both paths evaluate points with the same kernel
// arithmetic the two are bit-identical and interchangeable.
//
// Work is scheduled dynamically: workers claim fixed-size chunks off a
// shared atomic cursor, so a worker stalled by the scheduler or an
// asymmetric machine cannot strand a static block. The first error stops
// the remaining workers at their next chunk boundary instead of letting
// them run the rest of the space to completion (with the kernel table
// built up front, per-point evaluation is infallible, so in practice
// errors surface before any worker starts).
//
// workers <= 0 selects GOMAXPROCS.
func (s Space) EnumerateParallel(maxARM, maxAMD int, w float64, workers int) ([]Point, error) {
	kt, err := s.enumKernels(maxARM, maxAMD, w)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := kt.size(maxARM, maxAMD)
	out := make([]Point, n)
	err = parallelFor(n, workers, parallelChunk, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = kt.pointAt(i, maxARM, maxAMD, w)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parallelFor runs body over [0, n) in chunks claimed from a shared
// atomic cursor by a pool of workers. The first error cancels the run:
// workers stop claiming chunks and parallelFor returns that error.
func parallelFor(n, workers, chunk int, body func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		cursor   atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				if err := body(lo, hi); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
