package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"heteromix/internal/hwsim"
)

// EnumerateParallel evaluates the same configuration space as Enumerate,
// fanned out over a pool of worker goroutines. The result order is
// identical to Enumerate's (the output is assembled by index, not by
// completion order), so the two are interchangeable; the full 10 ARM x
// 10 AMD space of 36,380 points evaluates several times faster on
// multicore hosts.
//
// workers <= 0 selects GOMAXPROCS.
func (s Space) EnumerateParallel(maxARM, maxAMD int, w float64, workers int) ([]Point, error) {
	if maxARM < 0 || maxAMD < 0 || maxARM+maxAMD == 0 {
		return nil, fmt.Errorf("cluster: invalid space %dx%d", maxARM, maxAMD)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	configs := s.configurations(maxARM, maxAMD)
	out := make([]Point, len(configs))
	errs := make([]error, workers)

	var wg sync.WaitGroup
	// Static block partitioning: every configuration costs the same two
	// model evaluations, so contiguous blocks balance well and keep
	// writes cache-friendly.
	block := (len(configs) + workers - 1) / workers
	for wid := 0; wid < workers; wid++ {
		lo := wid * block
		if lo >= len(configs) {
			break
		}
		hi := lo + block
		if hi > len(configs) {
			hi = len(configs)
		}
		wg.Add(1)
		go func(wid, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p, err := s.Evaluate(configs[i], w)
				if err != nil {
					errs[wid] = err
					return
				}
				out[i] = p
			}
		}(wid, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// configurations lists the space in Enumerate's order without evaluating.
func (s Space) configurations(maxARM, maxAMD int) []Configuration {
	armCfgs := hwsim.Configs(s.ARM.Spec)
	amdCfgs := hwsim.Configs(s.AMD.Spec)
	out := make([]Configuration, 0, s.SpaceSize(maxARM, maxAMD))
	for na := 1; na <= maxARM; na++ {
		for _, ca := range armCfgs {
			for nd := 1; nd <= maxAMD; nd++ {
				for _, cd := range amdCfgs {
					out = append(out, Configuration{
						ARM: TypeConfig{Nodes: na, Config: ca},
						AMD: TypeConfig{Nodes: nd, Config: cd},
					})
				}
			}
		}
	}
	for na := 1; na <= maxARM; na++ {
		for _, ca := range armCfgs {
			out = append(out, Configuration{ARM: TypeConfig{Nodes: na, Config: ca}})
		}
	}
	for nd := 1; nd <= maxAMD; nd++ {
		for _, cd := range amdCfgs {
			out = append(out, Configuration{AMD: TypeConfig{Nodes: nd, Config: cd}})
		}
	}
	return out
}
