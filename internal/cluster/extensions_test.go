package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"heteromix/internal/hwsim"
	"heteromix/internal/pareto"
)

// --- EnumerateParallel ---

func TestEnumerateParallelMatchesSerial(t *testing.T) {
	s := epSpace(t)
	serial, err := s.Enumerate(3, 3, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4, 32} {
		par, err := s.EnumerateParallel(3, 3, 50e6, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: point %d differs:\n par %+v\n ser %+v",
					workers, i, par[i], serial[i])
			}
		}
	}
}

func TestEnumerateParallelRejectsEmptySpace(t *testing.T) {
	s := epSpace(t)
	if _, err := s.EnumerateParallel(0, 0, 1e6, 4); err == nil {
		t.Error("empty space should error")
	}
	if _, err := s.EnumerateParallel(-1, 2, 1e6, 4); err == nil {
		t.Error("negative bound should error")
	}
}

func TestEnumerateParallelPropagatesErrors(t *testing.T) {
	s := epSpace(t)
	bad := s
	bad.ARM.Profile.Node = "someone-else" // fails model validation in every ARM group
	if _, err := bad.EnumerateParallel(2, 2, 1e6, 4); err == nil {
		t.Error("worker errors should propagate")
	}
}

// --- Pruning ---

func TestPrunedNodeConfigsSubsetAndNonEmpty(t *testing.T) {
	for _, nm := range []string{"arm", "amd"} {
		s := epSpace(t)
		m := s.ARM
		if nm == "amd" {
			m = s.AMD
		}
		pruned, err := PrunedNodeConfigs(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(pruned) == 0 {
			t.Fatalf("%s: pruning removed every configuration", nm)
		}
		if len(pruned) >= m.Spec.ConfigCount() {
			t.Errorf("%s: pruning kept all %d configurations", nm, len(pruned))
		}
		// Survivors are mutually non-dominated in (k, P).
		type kp struct{ k, p float64 }
		pts := make([]kp, len(pruned))
		for i, cfg := range pruned {
			pred, err := m.Predict(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			pts[i] = kp{float64(pred.Time), float64(pred.AvgPower)}
		}
		for i := range pts {
			for j := range pts {
				if i == j {
					continue
				}
				if pts[j].k <= pts[i].k && pts[j].p <= pts[i].p &&
					(pts[j].k < pts[i].k || pts[j].p < pts[i].p) {
					t.Errorf("%s: surviving config %d dominated by %d", nm, i, j)
				}
			}
		}
	}
}

// The pruned space's Pareto frontier equals the full space's — the
// correctness property of the reduction.
func TestPrunedFrontierEqualsFullFrontier(t *testing.T) {
	for _, workload := range []string{"ep", "memcached"} {
		s := Space{
			ARM: nodeModel(t, hwsim.ARMCortexA9(), workload),
			AMD: nodeModel(t, hwsim.AMDOpteronK10(), workload),
		}
		w := 50e6
		if workload == "memcached" {
			w = 50e3
		}
		full, err := s.Enumerate(4, 4, w)
		if err != nil {
			t.Fatal(err)
		}
		prunedPts, stats, err := s.EnumeratePruned(4, 4, w)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Reduction() <= 1 {
			t.Errorf("%s: no reduction (%+v)", workload, stats)
		}
		if stats.PrunedSpace != len(prunedPts) {
			t.Errorf("%s: stats say %d points, got %d", workload, stats.PrunedSpace, len(prunedPts))
		}

		frFull, err := pareto.Frontier(toTE(full))
		if err != nil {
			t.Fatal(err)
		}
		frPruned, err := pareto.Frontier(toTE(prunedPts))
		if err != nil {
			t.Fatal(err)
		}
		if len(frFull) != len(frPruned) {
			t.Fatalf("%s: frontier sizes differ: full %d, pruned %d",
				workload, len(frFull), len(frPruned))
		}
		for i := range frFull {
			if math.Abs(frFull[i].Time-frPruned[i].Time) > 1e-12*frFull[i].Time ||
				math.Abs(frFull[i].Energy-frPruned[i].Energy) > 1e-12*frFull[i].Energy {
				t.Errorf("%s: frontier point %d differs: full (%v,%v) pruned (%v,%v)",
					workload, i, frFull[i].Time, frFull[i].Energy,
					frPruned[i].Time, frPruned[i].Energy)
			}
		}
	}
}

func toTE(points []Point) []pareto.TE {
	tes := make([]pareto.TE, len(points))
	for i, p := range points {
		tes[i] = pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i}
	}
	return tes
}

func TestMostEfficientPerNode(t *testing.T) {
	s := epSpace(t)
	cfg, k, p, err := MostEfficientPerNode(s.ARM)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 || p <= 0 {
		t.Errorf("operating point (%v, %v) invalid", k, p)
	}
	if err := cfg.ValidateFor(s.ARM.Spec); err != nil {
		t.Errorf("returned config invalid: %v", err)
	}
}

// --- Splits ---

func TestSplitString(t *testing.T) {
	cases := map[Split]string{
		SplitMatching:          "matching",
		SplitProportionalNodes: "proportional-to-nodes",
		SplitEqualGroups:       "equal-groups",
		Split(9):               "split(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestMatchingSplitMatchesEvaluate(t *testing.T) {
	s := epSpace(t)
	groups := s.Groups(Configuration{
		ARM: TypeConfig{Nodes: 16, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 14, Config: maxCfg(s.AMD.Spec)},
	})
	w := 50e6
	direct, err := Evaluate(groups, w)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := SplitMatching.Fractions(groups)
	if err != nil {
		t.Fatal(err)
	}
	viaSplit, err := EvaluateSplit(groups, w, fr)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(direct.Time-viaSplit.Time)) / float64(direct.Time); rel > 1e-9 {
		t.Errorf("times differ: %v vs %v", direct.Time, viaSplit.Time)
	}
	if rel := math.Abs(float64(direct.Energy-viaSplit.Energy)) / float64(direct.Energy); rel > 1e-9 {
		t.Errorf("energies differ: %v vs %v", direct.Energy, viaSplit.Energy)
	}
}

// The matching split minimizes both time and energy over arbitrary
// splits — the claim behind the paper's technique, made testable by the
// explicit idle-wait accounting of EvaluateSplit.
func TestMatchingBeatsRandomSplits(t *testing.T) {
	s := epSpace(t)
	groups := s.Groups(Configuration{
		ARM: TypeConfig{Nodes: 8, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 2, Config: maxCfg(s.AMD.Spec)},
	})
	w := 50e6
	matchFr, err := SplitMatching.Fractions(groups)
	if err != nil {
		t.Fatal(err)
	}
	matched, err := EvaluateSplit(groups, w, matchFr)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()
		fr := []float64{a, 1 - a}
		ev, err := EvaluateSplit(groups, w, fr)
		if err != nil {
			return false
		}
		return float64(ev.Time) >= float64(matched.Time)*(1-1e-9) &&
			float64(ev.Energy) >= float64(matched.Energy)*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompareSplitsOrdering(t *testing.T) {
	s := epSpace(t)
	groups := s.Groups(Configuration{
		ARM: TypeConfig{Nodes: 16, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 2, Config: maxCfg(s.AMD.Spec)},
	})
	results, err := CompareSplits(groups, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	matched := results[SplitMatching]
	for _, policy := range []Split{SplitProportionalNodes, SplitEqualGroups} {
		ev := results[policy]
		if float64(ev.Time) < float64(matched.Time)*(1-1e-9) {
			t.Errorf("%v finished faster than matching (%v vs %v)", policy, ev.Time, matched.Time)
		}
		if float64(ev.Energy) < float64(matched.Energy)*(1-1e-9) {
			t.Errorf("%v used less energy than matching (%v vs %v)", policy, ev.Energy, matched.Energy)
		}
	}
	// On this lopsided cluster (16 slow ARM vs 2 fast AMD per-node), the
	// node-proportional split badly overloads the ARM side and must be
	// strictly worse than matching.
	if float64(results[SplitProportionalNodes].Time) < float64(matched.Time)*1.05 {
		t.Error("proportional split should be clearly slower on an asymmetric cluster")
	}
}

func TestEvaluateSplitValidation(t *testing.T) {
	s := epSpace(t)
	groups := s.Groups(Configuration{
		ARM: TypeConfig{Nodes: 2, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 1, Config: maxCfg(s.AMD.Spec)},
	})
	cases := []struct {
		name string
		w    float64
		fr   []float64
	}{
		{"zero work", 0, []float64{0.5, 0.5}},
		{"nan work", math.NaN(), []float64{0.5, 0.5}},
		{"wrong count", 1e6, []float64{1}},
		{"negative fraction", 1e6, []float64{1.5, -0.5}},
		{"sum not one", 1e6, []float64{0.2, 0.2}},
	}
	for _, c := range cases {
		if _, err := EvaluateSplit(groups, c.w, c.fr); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Work on a zero-node group.
	armOnly := s.Groups(Configuration{ARM: TypeConfig{Nodes: 2, Config: maxCfg(s.ARM.Spec)}})
	if _, err := EvaluateSplit(armOnly, 1e6, []float64{0.5, 0.5}); err == nil {
		t.Error("work on empty group should error")
	}
	// All work on one group is legal.
	if _, err := EvaluateSplit(armOnly, 1e6, []float64{1, 0}); err != nil {
		t.Errorf("single-group split should work: %v", err)
	}
}

func TestSplitFractionsErrors(t *testing.T) {
	if _, err := Split(9).Fractions(nil); err == nil {
		t.Error("unknown split should error")
	}
	if _, err := SplitMatching.Fractions([]Group{{Nodes: 0}}); err == nil {
		t.Error("no-throughput matching should error")
	}
	if _, err := SplitProportionalNodes.Fractions([]Group{{Nodes: 0}}); err == nil {
		t.Error("no-node proportional should error")
	}
	if _, err := SplitEqualGroups.Fractions([]Group{{Nodes: 0}}); err == nil {
		t.Error("no-group equal should error")
	}
}

func BenchmarkEnumerateParallel10x10(b *testing.B) {
	s := epSpace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := s.EnumerateParallel(10, 10, 50e6, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 36380 {
			b.Fatalf("space size %d", len(pts))
		}
	}
}

func BenchmarkEnumeratePruned10x10(b *testing.B) {
	s := epSpace(b)
	b.ResetTimer()
	var stats PruneStats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = s.EnumeratePruned(10, 10, 50e6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Reduction(), "space-reduction-x")
}
