package cluster

// Compiled-table dumps: the serialized form of the evaluation-kernel
// layer, the payload internal/snapshot packs into its binary cold-start
// format. A dump carries the *compiled* coefficients — every float as
// its raw IEEE-754 bit pattern — so a restored table is bit-identical
// to the one that was dumped: no model walk, no refit, no float
// formatting round trip. Restoring therefore skips exactly the work a
// cold start pays (the per-configuration model walk of NewTable /
// NewGenericTable) and keeps the serving daemon's merge and cache
// bit-identity guarantees intact across a reboot.
//
// Dumps deliberately do not embed models or node specs: the consumer
// validates provenance out of band (the snapshot format binds a dump to
// a profile content hash and build identity) and supplies the Space for
// the two-type restore itself. Restore constructors validate structure
// (finite, positive time coefficients; sane counts) so a corrupted dump
// yields an error, never a table that divides by zero mid-walk.

import (
	"fmt"
	"math"

	"heteromix/internal/hwsim"
	"heteromix/internal/units"
)

// KernelEntryDump is one per-node configuration's compiled coefficients
// in wire form. The float fields are IEEE-754 bit patterns
// (math.Float64bits), so a dump/restore round trip is bit-exact.
type KernelEntryDump struct {
	Cores         int
	FrequencyBits uint64 // hwsim.Config.Frequency (units.Hertz) bits
	TimeBits      uint64 // seconds per work unit on one node
	EnergyBits    uint64 // joules per work unit on one node
}

// TableDump is the compiled state of a two-type Table.
type TableDump struct {
	ARM, AMD []KernelEntryDump
	// SwitchWBits is the per-switch wattage charged to ARM-side energy
	// (bits of 0 under NoSwitchEnergy).
	SwitchWBits uint64
}

// Dump exports the table's compiled coefficients.
func (t *Table) Dump() TableDump {
	return TableDump{
		ARM:         dumpKernelEntries(t.kt.arm),
		AMD:         dumpKernelEntries(t.kt.amd),
		SwitchWBits: math.Float64bits(t.kt.switchW),
	}
}

func dumpKernelEntries(entries []kernelEntry) []KernelEntryDump {
	out := make([]KernelEntryDump, len(entries))
	for i, e := range entries {
		out[i] = KernelEntryDump{
			Cores:         e.cfg.Cores,
			FrequencyBits: math.Float64bits(float64(e.cfg.Frequency)),
			TimeBits:      math.Float64bits(e.k),
			EnergyBits:    math.Float64bits(e.epu),
		}
	}
	return out
}

// validKernelDump rejects coefficients the evaluation arithmetic cannot
// take: k is a divisor, so it must be positive and finite; epu and
// cores must be non-negative.
func validKernelDump(side string, i int, d KernelEntryDump) error {
	k := math.Float64frombits(d.TimeBits)
	if !(k > 0) || math.IsInf(k, 0) {
		return fmt.Errorf("cluster: %s dump entry %d: time coefficient %v must be positive and finite", side, i, k)
	}
	epu := math.Float64frombits(d.EnergyBits)
	if math.IsNaN(epu) || math.IsInf(epu, 0) || epu < 0 {
		return fmt.Errorf("cluster: %s dump entry %d: energy coefficient %v must be non-negative and finite", side, i, epu)
	}
	if d.Cores < 1 {
		return fmt.Errorf("cluster: %s dump entry %d: cores %d must be positive", side, i, d.Cores)
	}
	f := math.Float64frombits(d.FrequencyBits)
	if !(f > 0) || math.IsInf(f, 0) {
		return fmt.Errorf("cluster: %s dump entry %d: frequency %v must be positive and finite", side, i, f)
	}
	return nil
}

func restoreKernelEntries(side string, dumps []KernelEntryDump) ([]kernelEntry, error) {
	if len(dumps) == 0 {
		return nil, nil
	}
	out := make([]kernelEntry, len(dumps))
	for i, d := range dumps {
		if err := validKernelDump(side, i, d); err != nil {
			return nil, err
		}
		out[i] = kernelEntry{
			cfg: hwsim.Config{Cores: d.Cores, Frequency: units.Hertz(math.Float64frombits(d.FrequencyBits))},
			k:   math.Float64frombits(d.TimeBits),
			epu: math.Float64frombits(d.EnergyBits),
		}
	}
	return out, nil
}

// NewTableFromDump rebuilds a compiled Table from d without any model
// walk. The receiver Space supplies the metadata a Table exposes (specs
// for error messages and Table.Space consumers, the NoSwitchEnergy
// flag); the evaluation coefficients — including the switch wattage —
// come verbatim from the dump, so the restored table evaluates
// bit-identically to the one Dump was called on. Callers are expected
// to have verified out of band (profile hash, build identity) that d
// was compiled from this Space.
func (s Space) NewTableFromDump(d TableDump) (*Table, error) {
	arm, err := restoreKernelEntries("ARM", d.ARM)
	if err != nil {
		return nil, err
	}
	amd, err := restoreKernelEntries("AMD", d.AMD)
	if err != nil {
		return nil, err
	}
	switchW := math.Float64frombits(d.SwitchWBits)
	if math.IsNaN(switchW) || math.IsInf(switchW, 0) || switchW < 0 {
		return nil, fmt.Errorf("cluster: dump switch wattage %v must be non-negative and finite", switchW)
	}
	t := &Table{
		space: s,
		kt:    spaceKernels{arm: arm, amd: amd, switchW: switchW},
		arm:   make(map[hwsim.Config]int, len(arm)),
		amd:   make(map[hwsim.Config]int, len(amd)),
	}
	for i, e := range arm {
		t.arm[e.cfg] = i
	}
	for i, e := range amd {
		t.amd[e.cfg] = i
	}
	return t, nil
}

// GenericOptionDump is one (count, per-node configuration) choice in
// wire form. Count 0 is the absent option and carries no kernel (its
// remaining fields are zero).
type GenericOptionDump struct {
	Count         int
	Cores         int
	FrequencyBits uint64
	TimeBits      uint64
	EnergyBits    uint64
}

// GenericTypeDump is one node type's compiled options.
type GenericTypeDump struct {
	// SwitchWBits is the per-switch wattage bits (bits of 0 unless the
	// type needs a dedicated switch).
	SwitchWBits uint64
	// Options lists the type's choices in enumeration order: the absent
	// option first, then count-major (count, configuration) options.
	Options []GenericOptionDump
}

// GenericTableDump is the compiled state of an N-type GenericTable.
type GenericTableDump struct {
	Types []GenericTypeDump
}

// Dump exports the generic table's compiled coefficients. Unlike the
// two-type TableDump, a GenericTableDump is fully self-contained:
// NewGenericTableFromDump needs no models or specs.
func (g *GenericTable) Dump() GenericTableDump {
	d := GenericTableDump{Types: make([]GenericTypeDump, len(g.t.opts))}
	for i, opts := range g.t.opts {
		td := GenericTypeDump{
			SwitchWBits: math.Float64bits(g.t.switchW[i]),
			Options:     make([]GenericOptionDump, len(opts)),
		}
		for j, o := range opts {
			td.Options[j] = GenericOptionDump{
				Count:         o.count,
				Cores:         o.cfg.Cores,
				FrequencyBits: math.Float64bits(float64(o.cfg.Frequency)),
				TimeBits:      math.Float64bits(o.k),
				EnergyBits:    math.Float64bits(o.epu),
			}
		}
		d.Types[i] = td
	}
	return d
}

// NewGenericTableFromDump rebuilds a compiled GenericTable from d
// without any model walk; the restored table evaluates bit-identically
// to the one Dump was called on. Structural validation mirrors
// newGenericTable's invariants: every type's first option must be the
// absent one, and every present option's time coefficient must be a
// usable divisor.
func NewGenericTableFromDump(d GenericTableDump) (*GenericTable, error) {
	if len(d.Types) == 0 {
		return nil, fmt.Errorf("cluster: generic dump has no node types")
	}
	t := &genericTable{
		opts:    make([][]genOption, len(d.Types)),
		switchW: make([]float64, len(d.Types)),
		radix:   make([]uint64, len(d.Types)),
		stride:  make([]uint64, len(d.Types)),
	}
	for i, td := range d.Types {
		if len(td.Options) == 0 || td.Options[0].Count != 0 {
			return nil, fmt.Errorf("cluster: generic dump type %d: first option must be the absent one", i)
		}
		sw := math.Float64frombits(td.SwitchWBits)
		if math.IsNaN(sw) || math.IsInf(sw, 0) || sw < 0 {
			return nil, fmt.Errorf("cluster: generic dump type %d: switch wattage %v must be non-negative and finite", i, sw)
		}
		opts := make([]genOption, len(td.Options))
		for j, od := range td.Options {
			if od.Count < 0 {
				return nil, fmt.Errorf("cluster: generic dump type %d option %d: negative count %d", i, j, od.Count)
			}
			if od.Count == 0 {
				if j != 0 {
					return nil, fmt.Errorf("cluster: generic dump type %d option %d: absent option out of place", i, j)
				}
				continue
			}
			if err := validKernelDump(fmt.Sprintf("generic type %d", i), j, KernelEntryDump{
				Cores:         od.Cores,
				FrequencyBits: od.FrequencyBits,
				TimeBits:      od.TimeBits,
				EnergyBits:    od.EnergyBits,
			}); err != nil {
				return nil, err
			}
			opts[j] = genOption{
				count: od.Count,
				cfg:   hwsim.Config{Cores: od.Cores, Frequency: units.Hertz(math.Float64frombits(od.FrequencyBits))},
				k:     math.Float64frombits(od.TimeBits),
				epu:   math.Float64frombits(od.EnergyBits),
			}
		}
		t.opts[i] = opts
		t.switchW[i] = sw
		t.radix[i] = uint64(len(opts))
	}
	prod := uint64(1)
	for i := len(d.Types) - 1; i >= 0; i-- {
		t.stride[i] = prod
		prod = satMul(prod, t.radix[i])
	}
	t.size = prod
	if t.size != math.MaxUint64 {
		t.size-- // the all-absent vector is never yielded
	}
	return &GenericTable{t: t, types: len(d.Types)}, nil
}
