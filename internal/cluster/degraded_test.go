package cluster

import (
	"errors"
	"math"
	"testing"

	"heteromix/internal/faults"
	"heteromix/internal/units"
)

// degGroups is the 3 ARM + 2 AMD configuration most degraded tests use.
func degGroups(t testing.TB) []Group {
	space := epSpace(t)
	return []Group{
		{Model: space.ARM, Nodes: 3, Config: maxCfg(space.ARM.Spec), NeedsSwitch: true},
		{Model: space.AMD, Nodes: 2, Config: maxCfg(space.AMD.Spec)},
	}
}

// nodeRate returns one node's work rate (units/second) for hand math.
func nodeRate(t testing.TB, g Group) float64 {
	t.Helper()
	k, err := g.Model.KernelFor(g.Config)
	if err != nil {
		t.Fatal(err)
	}
	return 1 / float64(k.TimePerUnit)
}

const degW = 50e6

// The acceptance anchor: a zero-fault plan is bit-identical to Evaluate.
func TestDegradedZeroFaultBitIdentical(t *testing.T) {
	groups := degGroups(t)
	want, err := Evaluate(groups, degW)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateDegraded(groups, degW, faults.Plan{}, DegradedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || got.Energy != want.Energy {
		t.Fatalf("zero-fault degraded (T=%v, E=%v) differs from Evaluate (T=%v, E=%v)",
			got.Time, got.Energy, want.Time, want.Energy)
	}
	for i := range want.Work {
		if got.Work[i] != want.Work[i] || got.GroupEnergy[i] != want.GroupEnergy[i] {
			t.Errorf("group %d: work/energy not bit-identical", i)
		}
	}
	if got.Rebalances != 0 || got.LostWork != 0 || got.Checkpoints != 0 {
		t.Errorf("zero-fault plan reported fault activity: %+v", got)
	}
}

// Events scheduled after the job completes must also leave the result
// bit-identical: they never fire.
func TestDegradedPostCompletionEventsIgnored(t *testing.T) {
	groups := degGroups(t)
	want, err := Evaluate(groups, degW)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 0, Kind: faults.Crash, At: want.Time * 10},
	}}
	got, err := EvaluateDegraded(groups, degW, plan, DegradedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || got.Energy != want.Energy {
		t.Fatalf("post-completion event changed the result: T=%v vs %v", got.Time, want.Time)
	}
	if got.Rebalances != 0 {
		t.Errorf("rebalances = %d for an event that never fired", got.Rebalances)
	}
}

// Fail-stop arithmetic on a homogeneous 2-node group: a crash at t1
// loses everything the dead node did, so the survivor effectively
// serves the whole job alone — T = w/r exactly, for any t1 before the
// baseline finish.
func TestDegradedFailStopCrashArithmetic(t *testing.T) {
	space := epSpace(t)
	g := Group{Model: space.AMD, Nodes: 2, Config: maxCfg(space.AMD.Spec)}
	r := nodeRate(t, g)
	base, err := Evaluate([]Group{g}, degW)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		t1 := float64(base.Time) * frac
		plan := faults.Plan{Events: []faults.Event{
			{Group: 0, Node: 1, Kind: faults.Crash, At: units.Seconds(t1)},
		}}
		got, err := EvaluateDegraded([]Group{g}, degW, plan, DegradedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantT := degW / r
		if relErr(float64(got.Time), wantT) > 1e-9 {
			t.Errorf("crash at %.0f%%: T = %v, want w/r = %v", frac*100, got.Time, wantT)
		}
		wantLost := r * t1
		if relErr(got.LostWork, wantLost) > 1e-9 {
			t.Errorf("crash at %.0f%%: lost %v work, want %v", frac*100, got.LostWork, wantLost)
		}
		if got.Rebalances != 1 || got.Survivors[0] != 1 {
			t.Errorf("crash at %.0f%%: rebalances=%d survivors=%v", frac*100, got.Rebalances, got.Survivors)
		}
		if got.Time <= base.Time {
			t.Errorf("crash did not slow the job: %v <= %v", got.Time, base.Time)
		}
	}
}

// A transient outage pauses one node for d seconds: the group loses
// r*d node-seconds of capacity and no work, so T = (w + r*d) / (2r).
func TestDegradedTransientOutageArithmetic(t *testing.T) {
	space := epSpace(t)
	g := Group{Model: space.AMD, Nodes: 2, Config: maxCfg(space.AMD.Spec)}
	r := nodeRate(t, g)
	base, err := Evaluate([]Group{g}, degW)
	if err != nil {
		t.Fatal(err)
	}
	d := float64(base.Time) / 4
	plan := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 0, Kind: faults.Crash, At: units.Seconds(float64(base.Time) / 8), Duration: units.Seconds(d)},
	}}
	got, err := EvaluateDegraded([]Group{g}, degW, plan, DegradedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantT := (degW + r*d) / (2 * r)
	if relErr(float64(got.Time), wantT) > 1e-9 {
		t.Errorf("T = %v, want %v", got.Time, wantT)
	}
	if got.LostWork != 0 {
		t.Errorf("transient outage lost %v work", got.LostWork)
	}
	if got.Rebalances != 2 { // down + up
		t.Errorf("rebalances = %d, want 2", got.Rebalances)
	}
	if got.Survivors[0] != 2 {
		t.Errorf("survivors = %v, want both", got.Survivors)
	}
}

// A permanent straggler at factor s from t=0 serves at r/s: the group
// rate is r(1 + 1/s).
func TestDegradedStragglerArithmetic(t *testing.T) {
	space := epSpace(t)
	g := Group{Model: space.AMD, Nodes: 2, Config: maxCfg(space.AMD.Spec)}
	r := nodeRate(t, g)
	const s = 3.0
	plan := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 1, Kind: faults.Straggle, At: 0, Factor: s},
	}}
	got, err := EvaluateDegraded([]Group{g}, degW, plan, DegradedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantT := degW / (r * (1 + 1/s))
	if relErr(float64(got.Time), wantT) > 1e-9 {
		t.Errorf("T = %v, want %v", got.Time, wantT)
	}
	// A bounded straggle episode hurts strictly less.
	bounded := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 1, Kind: faults.Straggle, At: 0, Factor: s, Duration: units.Seconds(wantT / 4)},
	}}
	gotB, err := EvaluateDegraded([]Group{g}, degW, bounded, DegradedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gotB.Time >= got.Time {
		t.Errorf("bounded straggle %v not faster than permanent %v", gotB.Time, got.Time)
	}
}

// Checkpointing bounds the loss: with interval C the recomputed work is
// under r*C, so for a late crash the checkpointed run beats fail-stop
// even after paying the checkpoint pauses.
func TestDegradedCheckpointBoundsLoss(t *testing.T) {
	space := epSpace(t)
	g := Group{Model: space.AMD, Nodes: 2, Config: maxCfg(space.AMD.Spec)}
	r := nodeRate(t, g)
	base, err := Evaluate([]Group{g}, degW)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := units.Seconds(float64(base.Time) * 0.9)
	plan := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 1, Kind: faults.Crash, At: crashAt},
	}}
	failStop, err := EvaluateDegraded([]Group{g}, degW, plan, DegradedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	every := base.Time / 10
	opts := DegradedOptions{CheckpointEvery: every, CheckpointCost: every / 100}
	ckpt, err := EvaluateDegraded([]Group{g}, degW, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	if maxLoss := r * float64(every); ckpt.LostWork > maxLoss {
		t.Errorf("checkpointed loss %v exceeds one interval's work %v", ckpt.LostWork, maxLoss)
	}
	if ckpt.Time >= failStop.Time {
		t.Errorf("checkpoint-restart (%v) not faster than fail-stop (%v) for a late crash", ckpt.Time, failStop.Time)
	}
	if ckpt.CheckpointTime <= 0 || ckpt.CheckpointEnergy <= 0 {
		t.Errorf("checkpoint overhead not charged: %+v", ckpt)
	}
	// Checkpointing with no faults still pays its overhead and stays
	// otherwise consistent.
	clean, err := EvaluateDegraded([]Group{g}, degW, faults.Plan{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Time <= base.Time {
		t.Errorf("fault-free checkpointed run %v not slower than baseline %v", clean.Time, base.Time)
	}
	if clean.LostWork != 0 {
		t.Errorf("fault-free run lost work: %v", clean.LostWork)
	}
}

// Killing every node with nothing scheduled to recover is an error.
func TestDegradedClusterDeath(t *testing.T) {
	space := epSpace(t)
	g := Group{Model: space.AMD, Nodes: 1, Config: maxCfg(space.AMD.Spec)}
	base, err := Evaluate([]Group{g}, degW)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := base.Time / 2
	plan := faults.Plan{Events: []faults.Event{
		{Group: 0, Node: 0, Kind: faults.Crash, At: crashAt},
	}}
	_, err = EvaluateDegraded([]Group{g}, degW, plan, DegradedOptions{})
	if !errors.Is(err, ErrClusterDied) {
		t.Fatalf("err = %v, want ErrClusterDied", err)
	}
	// The same outage as a transient completes: the node comes back.
	plan.Events[0].Duration = base.Time
	got, err := EvaluateDegraded([]Group{g}, degW, plan, DegradedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Time <= crashAt+base.Time {
		t.Errorf("T = %v, must exceed the outage end %v", got.Time, crashAt+base.Time)
	}
}

// Invariants over generated plans: completion never beats the baseline,
// useful work is conserved, and all accounting stays non-negative.
func TestDegradedGeneratedPlanInvariants(t *testing.T) {
	groups := degGroups(t)
	base, err := Evaluate(groups, degW)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 12; seed++ {
		plan, err := faults.Generate([]int{3, 2}, faults.GenOptions{
			Seed:          seed,
			Horizon:       base.Time * 2,
			CrashRate:     0.3 / float64(base.Time),
			TransientRate: 0.5 / float64(base.Time),
			StraggleProb:  0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateDegraded(groups, degW, plan, DegradedOptions{})
		if errors.Is(err, ErrClusterDied) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if float64(got.Time) < float64(base.Time)*(1-1e-12) {
			t.Errorf("seed %d: faults sped the job up: %v < %v", seed, got.Time, base.Time)
		}
		useful := 0.0
		for _, wk := range got.Work {
			if wk < -1e-6 {
				t.Errorf("seed %d: negative group work %v", seed, wk)
			}
			useful += wk
		}
		if relErr(useful, degW) > 1e-6 {
			t.Errorf("seed %d: useful work %v, want %v", seed, useful, degW)
		}
		if got.LostWork < 0 || got.WastedEnergy < 0 || got.Energy <= 0 {
			t.Errorf("seed %d: negative accounting: %+v", seed, got)
		}
		if got.WastedEnergy > got.Energy {
			t.Errorf("seed %d: wasted energy %v exceeds total %v", seed, got.WastedEnergy, got.Energy)
		}
	}
}

func TestDegradedValidation(t *testing.T) {
	groups := degGroups(t)
	if _, err := EvaluateDegraded(groups, -1, faults.Plan{}, DegradedOptions{}); err == nil {
		t.Error("negative work accepted")
	}
	bad := faults.Plan{Events: []faults.Event{{Group: 5, Kind: faults.Crash, At: 1}}}
	if _, err := EvaluateDegraded(groups, degW, bad, DegradedOptions{}); err == nil {
		t.Error("out-of-range plan accepted")
	}
	if _, err := EvaluateDegraded(groups, degW, faults.Plan{}, DegradedOptions{CheckpointCost: 1}); err == nil {
		t.Error("checkpoint cost without interval accepted")
	}
	if _, err := EvaluateDegraded(groups, degW, faults.Plan{}, DegradedOptions{CheckpointEvery: -1}); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
