package cluster

// Sharded walkers: each replica of a fleet walks only its slice of an
// enumeration index space, and the slices merge back bit-identical to
// the serial walk. The slice is defined by a keyed Feistel permutation
// of the index space (internal/shard): shard i of n owns the permuted
// positions j ≡ i (mod n), a deterministic, coordination-free, exact
// partition whose cardinalities differ by at most one — and, because
// the permutation shuffles uniformly, whose *work* is balanced even
// when the enumeration order has structure (the two-type walk, for
// instance, puts all mixed configurations before the homogeneous ones).
//
// Determinism across the permuted walk order rests on one rule: every
// point carries its index in the *serial* enumeration order, partial
// frontiers retain the smallest index among exact (time, energy)
// duplicates (pareto.TrackedIndexed), and MergeShardFrontiers re-offers
// the partial frontiers' survivors in ascending serial index. Because a
// Pareto frontier is order-independent up to duplicate resolution, and
// the serial walk's first-offered-wins is exactly smallest-index-wins,
// the merged frontier equals the serial frontier bit for bit — TEs and
// payloads — which TestShardedFrontierBitIdentical pins for 1/2/4/7
// shards with and without domination pruning.

import (
	"fmt"
	"sort"

	"heteromix/internal/pareto"
	"heteromix/internal/shard"
)

// ShardFrontier is one shard's partial Pareto frontier: the retained
// points, their TEs (time-ascending) and each point's index in the
// serial enumeration order — the merge key.
type ShardFrontier[T any] struct {
	Points  []T
	TEs     []pareto.TE
	Indices []uint64
}

// ForEachShard streams shard sh's slice of the space for w work units:
// the permuted positions j ≡ sh.Index (mod sh.Count), evaluated at
// their serial index perm(j) and yielded with that index. The yielded
// point is scratch, as in ForEach; yield returning false stops the walk
// early (not an error).
func (g *GenericTable) ForEachShard(w float64, sh shard.Shard, yield func(p GenericPoint, index uint64) bool) error {
	if err := g.check(w); err != nil {
		return err
	}
	if err := sh.Validate(); err != nil {
		return err
	}
	perm := shard.NewPermutation(g.t.size, shard.DefaultSeed)
	c := g.t.newCursor()
	for j := uint64(sh.Index); j < g.t.size; j += uint64(sh.Count) {
		idx := perm.Apply(j)
		// Serial index idx maps to mixed-radix vector idx+1: vector 0 is
		// the all-absent one, so every vector in [1, size] is a real point
		// and at cannot report absent here.
		g.t.at(c, idx+1, w)
		if !yield(c.p, idx) {
			return nil
		}
	}
	return nil
}

// FrontierShard streams shard sh's slice through an online frontier and
// returns the partial frontier with serial indices. Duplicates resolve
// toward the smallest serial index (not first-offered: the shard walk
// order is permuted), so shard frontiers merge deterministically.
func (g *GenericTable) FrontierShard(w float64, sh shard.Shard) (ShardFrontier[GenericPoint], error) {
	tr := pareto.TrackedIndexed[GenericPoint]{Clone: GenericPoint.Clone}
	var insErr error
	err := g.ForEachShard(w, sh, func(p GenericPoint, idx uint64) bool {
		if _, err := tr.Insert(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy)}, idx, p); err != nil {
			insErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = insErr
	}
	if err != nil {
		return ShardFrontier[GenericPoint]{}, err
	}
	pts, tes, idxs := tr.Frontier()
	return ShardFrontier[GenericPoint]{Points: pts, TEs: tes, Indices: idxs}, nil
}

// EnumerateGroupsShard materializes shard sh's slice of the generic
// space in its permuted walk order, returning each point with its
// serial enumeration index. The union of all sh.Count slices is exactly
// EnumerateGroups's output (as a set keyed by index).
func EnumerateGroupsShard(types []GroupType, w float64, sh shard.Shard) ([]GenericPoint, []uint64, error) {
	g, err := NewGenericTable(types)
	if err != nil {
		return nil, nil, err
	}
	if err := g.check(w); err != nil {
		return nil, nil, err
	}
	if err := sh.Validate(); err != nil {
		return nil, nil, err
	}
	if _, err := g.t.intSize(); err != nil {
		return nil, nil, err
	}
	n := int(sh.SliceSize(g.t.size))
	out := make([]GenericPoint, 0, n)
	idxs := make([]uint64, 0, n)
	bk := newGenBacking(n, g.types)
	err = g.ForEachShard(w, sh, func(p GenericPoint, idx uint64) bool {
		out = append(out, bk.copy(p))
		idxs = append(idxs, idx)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return out, idxs, nil
}

// ForEachShard is the two-type equivalent: shard sh's slice of the
// bounded (maxARM, maxAMD) space, yielded with serial indices in
// Enumerate's order.
func (t *Table) ForEachShard(maxARM, maxAMD int, w float64, sh shard.Shard, yield func(p Point, index uint64) bool) error {
	if maxARM < 0 || maxAMD < 0 || maxARM+maxAMD == 0 {
		return fmt.Errorf("cluster: invalid space %dx%d", maxARM, maxAMD)
	}
	if err := validWork(w); err != nil {
		return err
	}
	if err := sh.Validate(); err != nil {
		return err
	}
	size := uint64(t.kt.size(maxARM, maxAMD))
	perm := shard.NewPermutation(size, shard.DefaultSeed)
	for j := uint64(sh.Index); j < size; j += uint64(sh.Count) {
		idx := perm.Apply(j)
		if !yield(t.kt.pointAt(int(idx), maxARM, maxAMD, w), idx) {
			return nil
		}
	}
	return nil
}

// FrontierShard is the two-type partial frontier with serial indices,
// duplicate-resolved toward the smallest index like the generic form.
func (t *Table) FrontierShard(maxARM, maxAMD int, w float64, sh shard.Shard) (ShardFrontier[Point], error) {
	var tr pareto.TrackedIndexed[Point] // Points are values: no Clone needed
	var insErr error
	err := t.ForEachShard(maxARM, maxAMD, w, sh, func(p Point, idx uint64) bool {
		if _, err := tr.Insert(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy)}, idx, p); err != nil {
			insErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = insErr
	}
	if err != nil {
		return ShardFrontier[Point]{}, err
	}
	pts, tes, idxs := tr.Frontier()
	return ShardFrontier[Point]{Points: pts, TEs: tes, Indices: idxs}, nil
}

// MergeShardFrontiers merges partial frontiers into the frontier of the
// union of their spaces: every survivor is re-offered in ascending
// serial index, so cross-shard domination is applied and duplicate
// resolution matches the serial walk. Merging the sh.Count slices of
// one space reproduces that space's serial frontier bit for bit.
func MergeShardFrontiers[T any](parts []ShardFrontier[T]) (ShardFrontier[T], error) {
	type entry struct {
		te  pareto.TE
		idx uint64
		v   T
	}
	total := 0
	for _, p := range parts {
		if len(p.TEs) != len(p.Points) || len(p.Indices) != len(p.Points) {
			return ShardFrontier[T]{}, fmt.Errorf("cluster: ragged shard frontier (%d points, %d TEs, %d indices)",
				len(p.Points), len(p.TEs), len(p.Indices))
		}
		total += len(p.Points)
	}
	entries := make([]entry, 0, total)
	for _, p := range parts {
		for i := range p.Points {
			entries = append(entries, entry{te: p.TEs[i], idx: p.Indices[i], v: p.Points[i]})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].idx < entries[j].idx })
	var tr pareto.TrackedIndexed[T] // inputs are already owned copies: no Clone
	for _, e := range entries {
		if _, err := tr.Insert(pareto.TE{Time: e.te.Time, Energy: e.te.Energy}, e.idx, e.v); err != nil {
			return ShardFrontier[T]{}, err
		}
	}
	pts, tes, idxs := tr.Frontier()
	return ShardFrontier[T]{Points: pts, TEs: tes, Indices: idxs}, nil
}
