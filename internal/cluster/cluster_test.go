package cluster

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/workloads"
)

var (
	modelsMu sync.Mutex
	models   = map[string]model.NodeModel{}
)

func nodeModel(t testing.TB, spec hwsim.NodeSpec, workload string) model.NodeModel {
	t.Helper()
	key := spec.Name + "/" + workload
	modelsMu.Lock()
	defer modelsMu.Unlock()
	if nm, ok := models[key]; ok {
		return nm
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := model.Build(spec, w, model.BuildOptions{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	models[key] = nm
	return nm
}

func epSpace(t testing.TB) Space {
	return Space{
		ARM: nodeModel(t, hwsim.ARMCortexA9(), "ep"),
		AMD: nodeModel(t, hwsim.AMDOpteronK10(), "ep"),
	}
}

func memcachedSpace(t testing.TB) Space {
	return Space{
		ARM: nodeModel(t, hwsim.ARMCortexA9(), "memcached"),
		AMD: nodeModel(t, hwsim.AMDOpteronK10(), "memcached"),
	}
}

func maxCfg(spec hwsim.NodeSpec) hwsim.Config {
	return hwsim.Config{Cores: spec.Cores, Frequency: spec.FMax()}
}

func TestGroupSwitches(t *testing.T) {
	nm := nodeModel(t, hwsim.ARMCortexA9(), "ep")
	cases := []struct {
		nodes, want int
	}{{0, 0}, {1, 1}, {8, 1}, {9, 2}, {16, 2}, {128, 16}}
	for _, c := range cases {
		g := Group{Model: nm, Nodes: c.nodes, Config: maxCfg(nm.Spec), NeedsSwitch: true}
		if got := g.Switches(); got != c.want {
			t.Errorf("switches(%d nodes) = %d, want %d", c.nodes, got, c.want)
		}
	}
	noSwitch := Group{Model: nm, Nodes: 9, Config: maxCfg(nm.Spec)}
	if noSwitch.Switches() != 0 {
		t.Error("group without NeedsSwitch should have 0 switches")
	}
}

// The 8:1 substitution arithmetic of the paper's footnote: 8 ARM nodes
// plus their switch share draw the same peak power as one AMD node.
func TestSubstitutionRatioPeakPower(t *testing.T) {
	arm := nodeModel(t, hwsim.ARMCortexA9(), "ep")
	amd := nodeModel(t, hwsim.AMDOpteronK10(), "ep")
	g8 := Group{Model: arm, Nodes: 8, Config: maxCfg(arm.Spec), NeedsSwitch: true}
	g1 := Group{Model: amd, Nodes: 1, Config: maxCfg(amd.Spec)}
	if rel := math.Abs(float64(g8.PeakPower()-g1.PeakPower())) / float64(g1.PeakPower()); rel > 0.02 {
		t.Errorf("8 ARM + switch = %v, 1 AMD = %v; want equal (8:1 ratio)",
			g8.PeakPower(), g1.PeakPower())
	}
}

func TestEvaluateValidation(t *testing.T) {
	s := epSpace(t)
	groups := s.Groups(Configuration{
		ARM: TypeConfig{Nodes: 2, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 1, Config: maxCfg(s.AMD.Spec)},
	})
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Evaluate(groups, w); err == nil {
			t.Errorf("work %v should error", w)
		}
	}
	if _, err := Evaluate([]Group{{Nodes: 0}}, 1e6); err == nil {
		t.Error("empty cluster should error")
	}
	bad := s.Groups(Configuration{ARM: TypeConfig{Nodes: 1, Config: hwsim.Config{Cores: 99}}})
	if _, err := Evaluate(bad, 1e6); err == nil {
		t.Error("invalid group config should error")
	}
	if _, err := Evaluate([]Group{{Nodes: -1}}, 1e6); err == nil {
		t.Error("negative node count should error")
	}
}

// The matching property (paper Eq. 1): each group, run alone on its share
// of the work, finishes at the evaluation's time.
func TestMatchingEqualizesFinishTimes(t *testing.T) {
	s := epSpace(t)
	cfg := Configuration{
		ARM: TypeConfig{Nodes: 16, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 14, Config: maxCfg(s.AMD.Spec)},
	}
	w := 50e6
	ev, err := Evaluate(s.Groups(cfg), w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Work[0]+ev.Work[1]-w) > 1e-6*w {
		t.Errorf("work not conserved: %v + %v != %v", ev.Work[0], ev.Work[1], w)
	}
	predARM, err := s.ARM.Predict(cfg.ARM.Config, ev.Work[0]/16)
	if err != nil {
		t.Fatal(err)
	}
	predAMD, err := s.AMD.Predict(cfg.AMD.Config, ev.Work[1]/14)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(predARM.Time-predAMD.Time)) / float64(ev.Time); rel > 1e-9 {
		t.Errorf("finish times differ: ARM %v, AMD %v", predARM.Time, predAMD.Time)
	}
	if rel := math.Abs(float64(predARM.Time-ev.Time)) / float64(ev.Time); rel > 1e-9 {
		t.Errorf("group time %v != evaluation time %v", predARM.Time, ev.Time)
	}
}

// Property: matching holds for arbitrary node counts.
func TestMatchingPropertyRandomMixes(t *testing.T) {
	s := epSpace(t)
	f := func(a, d uint8) bool {
		na := 1 + int(a)%32
		nd := 1 + int(d)%16
		cfg := Configuration{
			ARM: TypeConfig{Nodes: na, Config: maxCfg(s.ARM.Spec)},
			AMD: TypeConfig{Nodes: nd, Config: maxCfg(s.AMD.Spec)},
		}
		ev, err := Evaluate(s.Groups(cfg), 1e7)
		if err != nil {
			return false
		}
		pa, err1 := s.ARM.Predict(cfg.ARM.Config, ev.Work[0]/float64(na))
		pd, err2 := s.AMD.Predict(cfg.AMD.Config, ev.Work[1]/float64(nd))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(float64(pa.Time-pd.Time)) < 1e-9*float64(ev.Time) &&
			math.Abs(ev.Work[0]+ev.Work[1]-1e7) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Adding nodes of either type strictly reduces service time.
func TestMoreNodesFaster(t *testing.T) {
	s := epSpace(t)
	w := 50e6
	base, err := s.Evaluate(Configuration{
		ARM: TypeConfig{Nodes: 8, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 4, Config: maxCfg(s.AMD.Spec)},
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	moreARM, err := s.Evaluate(Configuration{
		ARM: TypeConfig{Nodes: 16, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 4, Config: maxCfg(s.AMD.Spec)},
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if moreARM.Time >= base.Time {
		t.Errorf("adding ARM nodes should speed up: %v vs %v", moreARM.Time, base.Time)
	}
}

// A heterogeneous mix is faster than either of its homogeneous halves.
func TestMixFasterThanParts(t *testing.T) {
	s := epSpace(t)
	w := 50e6
	armOnly, err := s.Evaluate(Configuration{ARM: TypeConfig{Nodes: 10, Config: maxCfg(s.ARM.Spec)}}, w)
	if err != nil {
		t.Fatal(err)
	}
	amdOnly, err := s.Evaluate(Configuration{AMD: TypeConfig{Nodes: 10, Config: maxCfg(s.AMD.Spec)}}, w)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := s.Evaluate(Configuration{
		ARM: TypeConfig{Nodes: 10, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 10, Config: maxCfg(s.AMD.Spec)},
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if mix.Time >= armOnly.Time || mix.Time >= amdOnly.Time {
		t.Errorf("mix %v should beat ARM-only %v and AMD-only %v",
			mix.Time, armOnly.Time, amdOnly.Time)
	}
	// Throughputs add exactly: 1/T_mix = 1/T_arm + 1/T_amd.
	want := 1/float64(armOnly.Time) + 1/float64(amdOnly.Time)
	if got := 1 / float64(mix.Time); math.Abs(got-want) > 1e-9*want {
		t.Errorf("throughput additivity violated: %v vs %v", got, want)
	}
}

// Footnote 2: the 10x10 space has 36,380 configurations.
func TestSpaceSizeFootnote2(t *testing.T) {
	s := epSpace(t)
	if got := s.SpaceSize(10, 10); got != 36380 {
		t.Errorf("space size = %d, want 36380", got)
	}
}

func TestEnumerateMatchesSpaceSize(t *testing.T) {
	s := epSpace(t)
	pts, err := s.Enumerate(2, 2, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	want := s.SpaceSize(2, 2) // 2*20*2*18 + 2*20 + 2*18 = 1516
	if len(pts) != want {
		t.Errorf("enumerated %d points, want %d", len(pts), want)
	}
	// Every point has positive time and energy, and a sane ARM share.
	for _, p := range pts {
		if p.Time <= 0 || p.Energy <= 0 {
			t.Fatalf("point %v has non-positive outcome", p.Config)
		}
		if p.WorkARM < 0 || p.WorkARM > 1 {
			t.Fatalf("point %v has ARM share %v", p.Config, p.WorkARM)
		}
		if p.Config.ARM.Nodes == 0 && p.WorkARM != 0 {
			t.Fatalf("AMD-only point has ARM work %v", p.WorkARM)
		}
		if p.Config.AMD.Nodes == 0 && p.WorkARM != 1 {
			t.Fatalf("ARM-only point has ARM share %v", p.WorkARM)
		}
	}
}

func TestEnumerateRejectsEmptySpace(t *testing.T) {
	s := epSpace(t)
	if _, err := s.Enumerate(0, 0, 1e6); err == nil {
		t.Error("empty space should error")
	}
	if _, err := s.Enumerate(-1, 2, 1e6); err == nil {
		t.Error("negative bound should error")
	}
}

func TestEnumerateMix(t *testing.T) {
	s := memcachedSpace(t)
	pts, err := s.EnumerateMix(16, 14, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 20 * 18; len(pts) != want {
		t.Errorf("mix enumeration has %d points, want %d", len(pts), want)
	}
	armOnly, err := s.EnumerateMix(128, 0, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(armOnly) != 20 {
		t.Errorf("ARM-only mix has %d points, want 20", len(armOnly))
	}
	if _, err := s.EnumerateMix(0, 0, 50000); err == nil {
		t.Error("empty mix should error")
	}
}

// Figure 6's floor: 128 ARM nodes (100 Mbps each) cannot finish a 50k x
// 1 KiB memcached job faster than ~30 ms, while mixes can.
func TestMemcachedARMOnlyDeadlineFloor(t *testing.T) {
	s := memcachedSpace(t)
	armOnly, err := s.Evaluate(Configuration{
		ARM: TypeConfig{Nodes: 128, Config: maxCfg(s.ARM.Spec)},
	}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if ms := armOnly.Time.Millis(); ms < 28 || ms > 36 {
		t.Errorf("128-ARM memcached job time = %vms, want ~31ms (Figure 6 floor)", ms)
	}
	mix, err := s.Evaluate(Configuration{
		ARM: TypeConfig{Nodes: 16, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 14, Config: maxCfg(s.AMD.Spec)},
	}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if mix.Time >= armOnly.Time {
		t.Errorf("16:14 mix (%v) should beat 128 ARM (%v)", mix.Time, armOnly.Time)
	}
}

func TestConfigurationString(t *testing.T) {
	s := epSpace(t)
	cfg := Configuration{
		ARM: TypeConfig{Nodes: 16, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 14, Config: maxCfg(s.AMD.Spec)},
	}
	got := cfg.String()
	if got != "ARM 16:AMD 14 arm[c4@1.40GHz] amd[c6@2.10GHz]" {
		t.Errorf("String() = %q", got)
	}
	armOnly := Configuration{ARM: TypeConfig{Nodes: 8, Config: maxCfg(s.ARM.Spec)}}
	if got := armOnly.String(); got != "ARM 8:AMD 0 arm[c4@1.40GHz]" {
		t.Errorf("ARM-only String() = %q", got)
	}
}

// Switch energy is charged per started group of 8 ARM nodes.
func TestSwitchEnergyIncluded(t *testing.T) {
	s := epSpace(t)
	w := 50e6
	with, err := s.Evaluate(Configuration{ARM: TypeConfig{Nodes: 8, Config: maxCfg(s.ARM.Spec)}}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct: 8 nodes' energy + 20 W * T.
	pred, err := s.ARM.Predict(maxCfg(s.ARM.Spec), w/8)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(pred.Energy)*8 + 20*float64(with.Time)
	if rel := math.Abs(float64(with.Energy)-want) / want; rel > 1e-9 {
		t.Errorf("energy = %v, want %v (nodes + switch)", with.Energy, want)
	}
}

func BenchmarkEvaluateMix(b *testing.B) {
	s := epSpace(b)
	cfg := Configuration{
		ARM: TypeConfig{Nodes: 16, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 14, Config: maxCfg(s.AMD.Spec)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(cfg, 50e6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerate10x10(b *testing.B) {
	s := epSpace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := s.Enumerate(10, 10, 50e6)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 36380 {
			b.Fatalf("space size %d", len(pts))
		}
	}
}
