package cluster

import (
	"fmt"
	"math"

	"heteromix/internal/hwsim"
	"heteromix/internal/units"
)

// This file is the evaluation-kernel layer under the generic N-type
// enumerators, the analogue of spaceKernels for any number of node
// types. A genericTable is built once per cluster spec (type list):
// every (count, per-node configuration) option of every type gets its
// model.Kernel coefficients precomputed, so evaluating one point of the
// cartesian space is pure float arithmetic over scratch buffers — no
// validation, no model walks, and no allocation. All error paths
// (model validation, bad bounds) are taken during table construction;
// the work volume enters only the per-point arithmetic, so one table
// serves every work size (validated per call) and per-point evaluation
// is infallible.
//
// The point arithmetic is expression-for-expression the same as the
// two-type spaceKernels.point (throughputs accumulate in type order,
// work[i] = w·thr[i]/total, energies accumulate in type order), so a
// two-type generic space is bit-identical to Space.Enumerate — a
// property pinned by TestGenericTwoTypeBitIdenticalToSpace.

// genOption is one (count, per-node configuration) choice of a type;
// count 0 is the absent option and carries no kernel.
type genOption struct {
	count int
	cfg   hwsim.Config
	k     float64 // seconds per work unit on one node
	epu   float64 // joules per work unit on one node
}

// genericTable is the precomputed evaluation table of an N-type space.
// It is independent of the work volume: w is a per-call parameter of
// eval/forEach/at, so one table serves every work size.
type genericTable struct {
	opts    [][]genOption // per type: absent first, then count-major options
	switchW []float64     // per type: per-switch watts (0 unless NeedsSwitch)
	radix   []uint64      // len(opts[i])
	stride  []uint64      // mixed-radix stride of type i (type 0 slowest)
	size    uint64        // points in the space (product of radixes - 1), saturated
}

// satMul multiplies saturating at math.MaxUint64.
func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// satAdd adds saturating at math.MaxUint64.
func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

// typeConfigs returns the per-node configurations enumerated for gt:
// its explicit restriction when set (e.g. from PruneGroupTypes), every
// configuration of the spec otherwise.
func typeConfigs(gt GroupType) []hwsim.Config {
	if gt.Configs != nil {
		return gt.Configs
	}
	return hwsim.Configs(gt.Model.Spec)
}

// newGenericTable validates types and precomputes every option's
// kernel coefficients. Types with MaxNodes 0 are never evaluated, so
// their models are not touched (matching Evaluate's treatment of
// zero-node groups).
func newGenericTable(types []GroupType) (*genericTable, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("cluster: no node types")
	}
	for i, gt := range types {
		if gt.MaxNodes < 0 {
			return nil, fmt.Errorf("cluster: type %d has MaxNodes %d", i, gt.MaxNodes)
		}
	}
	t := &genericTable{
		opts:    make([][]genOption, len(types)),
		switchW: make([]float64, len(types)),
		radix:   make([]uint64, len(types)),
		stride:  make([]uint64, len(types)),
	}
	for i, gt := range types {
		opts := []genOption{{count: 0}}
		if gt.MaxNodes > 0 {
			entries, err := typeKernels(gt.Model, typeConfigs(gt))
			if err != nil {
				return nil, fmt.Errorf("cluster: type %d: %w", i, err)
			}
			for n := 1; n <= gt.MaxNodes; n++ {
				for _, k := range entries {
					opts = append(opts, genOption{count: n, cfg: k.cfg, k: k.k, epu: k.epu})
				}
			}
		}
		t.opts[i] = opts
		t.radix[i] = uint64(len(opts))
		if gt.NeedsSwitch {
			t.switchW[i] = float64(SwitchPower)
		}
	}
	prod := uint64(1)
	for i := len(types) - 1; i >= 0; i-- {
		t.stride[i] = prod
		prod = satMul(prod, t.radix[i])
	}
	t.size = prod
	if t.size != math.MaxUint64 {
		t.size-- // the all-absent vector is never yielded
	}
	return t, nil
}

// maxMaterialize bounds the point count the materializing enumerators
// accept; beyond it callers must stream (EnumerateGroupsFunc) or prune.
const maxMaterialize = 1 << 31

// intSize returns the space size as an int for the materializing and
// index-addressed paths.
func (t *genericTable) intSize() (int, error) {
	if t.size > maxMaterialize {
		return 0, fmt.Errorf("cluster: generic space of %d points is too large to materialize; prune or stream with EnumerateGroupsFunc", t.size)
	}
	return int(t.size), nil
}

// genCursor is one walker's scratch: an option-index vector and a point
// whose slices are reused across evaluations.
type genCursor struct {
	t    *genericTable
	pick []int
	p    GenericPoint
}

func (t *genericTable) newCursor() *genCursor {
	n := len(t.opts)
	return &genCursor{
		t:    t,
		pick: make([]int, n),
		p: GenericPoint{
			Counts:  make([]int, n),
			Configs: make([]hwsim.Config, n),
			Work:    make([]float64, n),
		},
	}
}

// eval fills p from the option picks for w work units: the matching
// split (throughputs accumulate in type order, every group finishes at
// w / Σ thr), then the summed group energies including switch draw over
// the duration. It reports false only for the all-absent vector. p.Work
// doubles as the throughput scratch, so eval needs no allocation.
func (t *genericTable) eval(pick []int, w float64, p *GenericPoint) bool {
	total := 0.0
	for i, oi := range pick {
		opt := &t.opts[i][oi]
		p.Counts[i] = opt.count
		p.Configs[i] = opt.cfg
		thr := 0.0
		if opt.count > 0 {
			thr = float64(opt.count) / opt.k
			total += thr
		}
		p.Work[i] = thr
	}
	if total == 0 {
		return false
	}
	tt := w / total
	energy := 0.0
	for i, oi := range pick {
		if p.Counts[i] == 0 {
			continue
		}
		opt := &t.opts[i][oi]
		wk := w * p.Work[i] / total
		p.Work[i] = wk
		e := opt.epu * wk
		if t.switchW[i] > 0 {
			e += t.switchW[i] * float64(armSwitches(p.Counts[i])) * tt
		}
		energy += e
	}
	p.Time = units.Seconds(tt)
	p.Energy = units.Joule(energy)
	return true
}

// forEach streams every point of the space to yield in enumeration
// order (type 0's options slowest, the last type's fastest — the order
// EnumerateGroups materializes). The yielded point is c's scratch:
// valid only during the call, Clone to retain. Reports whether the
// walk ran to completion.
func (t *genericTable) forEach(c *genCursor, w float64, yield func(GenericPoint) bool) bool {
	pick := c.pick
	for i := range pick {
		pick[i] = 0
	}
	for {
		// Mixed-radix odometer, last digit fastest; starting from the
		// all-zero (all-absent) vector means the first increment lands on
		// the first real point.
		i := len(pick) - 1
		for i >= 0 {
			pick[i]++
			if uint64(pick[i]) < t.radix[i] {
				break
			}
			pick[i] = 0
			i--
		}
		if i < 0 {
			return true
		}
		if !t.eval(pick, w, &c.p) {
			continue
		}
		if !yield(c.p) {
			return false
		}
	}
}

// at evaluates the point at linear index idx of forEach's order into
// c's scratch (idx 1..size; index 0 is the all-absent vector) — the
// random-access view the dynamic parallel scheduler uses.
func (t *genericTable) at(c *genCursor, idx uint64, w float64) bool {
	for i := range c.pick {
		c.pick[i] = int(idx / t.stride[i] % t.radix[i])
	}
	return t.eval(c.pick, w, &c.p)
}

// genBacking carves materialized points' slices out of three flat
// arrays — one allocation per array for the whole batch instead of
// three per point.
type genBacking struct {
	counts  []int
	configs []hwsim.Config
	work    []float64
	types   int
}

func newGenBacking(n, types int) *genBacking {
	return &genBacking{
		counts:  make([]int, n*types),
		configs: make([]hwsim.Config, n*types),
		work:    make([]float64, n*types),
		types:   types,
	}
}

// copy clones p into the next backing row.
func (b *genBacking) copy(p GenericPoint) GenericPoint {
	k := b.types
	q := GenericPoint{
		Counts:  b.counts[:k:k],
		Configs: b.configs[:k:k],
		Work:    b.work[:k:k],
		Time:    p.Time,
		Energy:  p.Energy,
	}
	b.counts, b.configs, b.work = b.counts[k:], b.configs[k:], b.work[k:]
	copy(q.Counts, p.Counts)
	copy(q.Configs, p.Configs)
	copy(q.Work, p.Work)
	return q
}
