package cluster

import (
	"math"
	"strings"
	"testing"
)

// TestTableDumpRoundTrip asserts the cold-start contract: a table
// restored from a dump walks and evaluates bit-identically to the one
// the dump came from — same points, same split fractions, down to the
// last mantissa bit.
func TestTableDumpRoundTrip(t *testing.T) {
	space := epSpace(t)
	tbl, err := space.NewTable()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := space.NewTableFromDump(tbl.Dump())
	if err != nil {
		t.Fatal(err)
	}
	const maxARM, maxAMD = 3, 2
	const w = 1000.0
	if got, want := restored.Size(maxARM, maxAMD), tbl.Size(maxARM, maxAMD); got != want {
		t.Fatalf("restored Size = %d, want %d", got, want)
	}
	if got, want := restored.SizeBytes(), tbl.SizeBytes(); got != want {
		t.Fatalf("restored SizeBytes = %d, want %d", got, want)
	}
	var want []Point
	if err := tbl.ForEach(maxARM, maxAMD, w, func(p Point) bool {
		want = append(want, p)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	i := 0
	if err := restored.ForEach(maxARM, maxAMD, w, func(p Point) bool {
		if i >= len(want) {
			t.Fatalf("restored table yielded more than %d points", len(want))
		}
		if p != want[i] {
			t.Fatalf("point %d: restored %+v != original %+v", i, p, want[i])
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("restored table yielded %d points, want %d", i, len(want))
	}
	// Spot-check Evaluate parity on one mixed configuration.
	cfg := want[len(want)-1].Config
	p1, err := tbl.Evaluate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := restored.Evaluate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("Evaluate mismatch: original %+v, restored %+v", p1, p2)
	}
	if restored.Space().NoSwitchEnergy != space.NoSwitchEnergy {
		t.Fatal("restored table lost its Space flags")
	}
}

// TestGenericTableDumpRoundTrip does the same for the N-type
// mixed-radix table, including frontier parity.
func TestGenericTableDumpRoundTrip(t *testing.T) {
	g, err := NewGenericTable(triTypes(t, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewGenericTableFromDump(g.Dump())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Size(), g.Size(); got != want {
		t.Fatalf("restored Size = %d, want %d", got, want)
	}
	if got, want := restored.Types(), g.Types(); got != want {
		t.Fatalf("restored Types = %d, want %d", got, want)
	}
	if got, want := restored.SizeBytes(), g.SizeBytes(); got != want {
		t.Fatalf("restored SizeBytes = %d, want %d", got, want)
	}
	const w = 1000.0
	want, err := g.Enumerate(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Enumerate(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored enumerated %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if !genericPointEqual(got[i], want[i]) {
			t.Fatalf("point %d: restored %+v != original %+v", i, got[i], want[i])
		}
	}
	_, wantTE, err := g.Frontier(w)
	if err != nil {
		t.Fatal(err)
	}
	_, gotTE, err := restored.Frontier(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTE) != len(wantTE) {
		t.Fatalf("restored frontier has %d points, want %d", len(gotTE), len(wantTE))
	}
	for i := range wantTE {
		if gotTE[i] != wantTE[i] {
			t.Fatalf("frontier point %d: restored %+v != original %+v", i, gotTE[i], wantTE[i])
		}
	}
}

func genericPointEqual(a, b GenericPoint) bool {
	if a.Time != b.Time || a.Energy != b.Energy {
		return false
	}
	if len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] || a.Configs[i] != b.Configs[i] || a.Work[i] != b.Work[i] {
			return false
		}
	}
	return true
}

// TestTableDumpRejectsCorruption: a bit-flipped or structurally bogus
// dump must fail restore, never produce a table that divides by zero.
func TestTableDumpRejectsCorruption(t *testing.T) {
	space := epSpace(t)
	tbl, err := space.NewTable()
	if err != nil {
		t.Fatal(err)
	}
	base := tbl.Dump()
	cases := []struct {
		name    string
		mutate  func(d *TableDump)
		wantSub string
	}{
		{"zero time coefficient", func(d *TableDump) { d.ARM[0].TimeBits = 0 }, "time coefficient"},
		{"NaN time coefficient", func(d *TableDump) { d.AMD[0].TimeBits = math.Float64bits(math.NaN()) }, "time coefficient"},
		{"negative energy", func(d *TableDump) { d.ARM[1].EnergyBits = math.Float64bits(-1) }, "energy coefficient"},
		{"inf energy", func(d *TableDump) { d.ARM[1].EnergyBits = math.Float64bits(math.Inf(1)) }, "energy coefficient"},
		{"zero cores", func(d *TableDump) { d.ARM[0].Cores = 0 }, "cores"},
		{"zero frequency", func(d *TableDump) { d.AMD[0].FrequencyBits = 0 }, "frequency"},
		{"NaN switch wattage", func(d *TableDump) { d.SwitchWBits = math.Float64bits(math.NaN()) }, "switch wattage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base
			d.ARM = append([]KernelEntryDump(nil), base.ARM...)
			d.AMD = append([]KernelEntryDump(nil), base.AMD...)
			tc.mutate(&d)
			if _, err := space.NewTableFromDump(d); err == nil {
				t.Fatal("corrupted dump restored without error")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestGenericDumpRejectsCorruption(t *testing.T) {
	g, err := NewGenericTable(triTypes(t, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	clone := func() GenericTableDump {
		d := g.Dump()
		types := make([]GenericTypeDump, len(d.Types))
		for i, td := range d.Types {
			td.Options = append([]GenericOptionDump(nil), td.Options...)
			types[i] = td
		}
		d.Types = types
		return d
	}
	cases := []struct {
		name    string
		mutate  func(d *GenericTableDump)
		wantSub string
	}{
		{"no types", func(d *GenericTableDump) { d.Types = nil }, "no node types"},
		{"missing absent option", func(d *GenericTableDump) { d.Types[0].Options = d.Types[0].Options[1:] }, "absent"},
		{"absent out of place", func(d *GenericTableDump) { d.Types[1].Options[2].Count = 0 }, "absent"},
		{"negative count", func(d *GenericTableDump) { d.Types[0].Options[1].Count = -3 }, "negative count"},
		{"zero time coefficient", func(d *GenericTableDump) { d.Types[2].Options[1].TimeBits = 0 }, "time coefficient"},
		{"negative switch wattage", func(d *GenericTableDump) { d.Types[0].SwitchWBits = math.Float64bits(-2) }, "switch wattage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := clone()
			tc.mutate(&d)
			if _, err := NewGenericTableFromDump(d); err == nil {
				t.Fatal("corrupted dump restored without error")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
