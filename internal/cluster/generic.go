package cluster

import (
	"fmt"
	"strings"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/units"
)

// This file generalizes the two-type configuration space to any number
// of node types, realizing the paper's claim that the methodology
// "determine[s] a generic mix of heterogeneous nodes" (§II-A). Evaluate
// already accepts arbitrary group lists; what follows adds enumeration
// over N-type count/configuration cartesian products.

// GroupType describes one node type available to a generic cluster.
type GroupType struct {
	// Model is the workload's fitted model on this node type.
	Model model.NodeModel
	// MaxNodes bounds the enumeration for this type.
	MaxNodes int
	// NeedsSwitch marks types whose nodes hang off dedicated switches.
	NeedsSwitch bool
}

// GenericPoint is one evaluated N-type configuration.
type GenericPoint struct {
	// Counts and Configs hold each type's node count and per-node
	// setting, indexed like the GroupType slice (Configs[i] is zero
	// when Counts[i] is 0).
	Counts  []int
	Configs []hwsim.Config
	Time    units.Seconds
	Energy  units.Joule
	// Work is each type's absolute share of the job.
	Work []float64
}

// Label renders the point's mix like "a9 8 : a15 4 : k10 2".
func (p GenericPoint) Label(names []string) string {
	parts := make([]string, 0, len(p.Counts))
	for i, n := range p.Counts {
		name := fmt.Sprintf("type%d", i)
		if i < len(names) {
			name = names[i]
		}
		parts = append(parts, fmt.Sprintf("%s %d", name, n))
	}
	return strings.Join(parts, " : ")
}

// EnumerateGroups evaluates every configuration of the generic space:
// all node-count vectors (0..MaxNodes per type, not all zero) crossed
// with all per-node configurations of the used types. The space grows
// quickly with type count and bounds — callers should keep MaxNodes
// small or pre-prune per-type configurations with PrunedNodeConfigs.
//
// Like the two-type enumerators, EnumerateGroups runs on precomputed
// evaluation kernels: each type's per-unit coefficients are derived once,
// and each point pays only the matching-split arithmetic plus its output
// slices.
func EnumerateGroups(types []GroupType, w float64) ([]GenericPoint, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("cluster: no node types")
	}
	for i, gt := range types {
		if gt.MaxNodes < 0 {
			return nil, fmt.Errorf("cluster: type %d has MaxNodes %d", i, gt.MaxNodes)
		}
	}
	if err := validWork(w); err != nil {
		return nil, err
	}

	// Per-type option lists: (count, kernel) pairs including the absent
	// option (count 0). Types with MaxNodes 0 are never evaluated, so
	// their models are not touched (matching Evaluate's treatment of
	// zero-node groups).
	type option struct {
		count int
		k     kernelEntry
	}
	options := make([][]option, len(types))
	switchW := make([]float64, len(types))
	for i, gt := range types {
		opts := []option{{count: 0}}
		if gt.MaxNodes > 0 {
			entries, err := typeKernels(gt.Model, hwsim.Configs(gt.Model.Spec))
			if err != nil {
				return nil, fmt.Errorf("cluster: type %d: %w", i, err)
			}
			for n := 1; n <= gt.MaxNodes; n++ {
				for _, k := range entries {
					opts = append(opts, option{count: n, k: k})
				}
			}
		}
		options[i] = opts
		if gt.NeedsSwitch {
			switchW[i] = float64(SwitchPower)
		}
	}

	var out []GenericPoint
	pick := make([]int, len(types))
	thr := make([]float64, len(types))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(types) {
			// Matching split over the chosen options, as in Evaluate:
			// throughputs accumulate in type order, every group finishes
			// at w / sum(thr).
			total := 0.0
			for i, oi := range pick {
				opt := options[i][oi]
				thr[i] = 0
				if opt.count > 0 {
					thr[i] = float64(opt.count) / opt.k.k
					total += thr[i]
				}
			}
			if total == 0 {
				return // the all-absent vector
			}
			t := w / total
			counts := make([]int, len(types))
			configs := make([]hwsim.Config, len(types))
			work := make([]float64, len(types))
			energy := 0.0
			for i, oi := range pick {
				opt := options[i][oi]
				counts[i] = opt.count
				if opt.count == 0 {
					continue
				}
				configs[i] = opt.k.cfg
				work[i] = w * thr[i] / total
				e := opt.k.epu * work[i]
				if switchW[i] > 0 {
					e += switchW[i] * float64(armSwitches(opt.count)) * t
				}
				energy += e
			}
			out = append(out, GenericPoint{
				Counts:  counts,
				Configs: configs,
				Time:    units.Seconds(t),
				Energy:  units.Joule(energy),
				Work:    work,
			})
			return
		}
		for oi := range options[depth] {
			pick[depth] = oi
			rec(depth + 1)
		}
	}
	rec(0)
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: generic space is empty (all MaxNodes zero?)")
	}
	return out, nil
}

// GenericSpaceSize returns the number of points EnumerateGroups yields.
func GenericSpaceSize(types []GroupType) int {
	prod := 1
	for _, gt := range types {
		per := 1 // the absent option
		if gt.MaxNodes > 0 {
			per += gt.MaxNodes * len(hwsim.Configs(gt.Model.Spec))
		}
		prod *= per
	}
	return prod - 1 // minus the all-absent vector
}
