package cluster

import (
	"fmt"
	"math"
	"strings"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/pareto"
	"heteromix/internal/units"
)

// This file generalizes the two-type configuration space to any number
// of node types, realizing the paper's claim that the methodology
// "determine[s] a generic mix of heterogeneous nodes" (§II-A). Evaluate
// already accepts arbitrary group lists; what follows adds enumeration
// over N-type count/configuration cartesian products, at feature parity
// with the optimized two-type path: precomputed kernels
// (generic_kernel.go), streaming (EnumerateGroupsFunc), per-type
// domination pruning (PruneGroupTypes), parallel evaluation
// (EnumerateGroupsParallel) and online Pareto frontiers
// (GenericFrontierOf / GenericFrontierOfParallel).

// GroupType describes one node type available to a generic cluster.
type GroupType struct {
	// Model is the workload's fitted model on this node type.
	Model model.NodeModel
	// MaxNodes bounds the enumeration for this type.
	MaxNodes int
	// NeedsSwitch marks types whose nodes hang off dedicated switches.
	NeedsSwitch bool
	// Configs, when non-nil, restricts the per-node settings enumerated
	// for this type; nil selects every configuration of the spec.
	// PruneGroupTypes fills it with the domination survivors.
	Configs []hwsim.Config
}

// GenericPoint is one evaluated N-type configuration.
type GenericPoint struct {
	// Counts and Configs hold each type's node count and per-node
	// setting, indexed like the GroupType slice (Configs[i] is zero
	// when Counts[i] is 0).
	Counts  []int
	Configs []hwsim.Config
	Time    units.Seconds
	Energy  units.Joule
	// Work is each type's absolute share of the job.
	Work []float64
}

// Clone deep-copies the point. Streaming consumers that retain a point
// past its yield call must Clone it: the streamed point's slices are
// scratch buffers reused for the next point.
func (p GenericPoint) Clone() GenericPoint {
	q := p
	q.Counts = append([]int(nil), p.Counts...)
	q.Configs = append([]hwsim.Config(nil), p.Configs...)
	q.Work = append([]float64(nil), p.Work...)
	return q
}

// typeName labels type i, falling back to "type<i>" beyond names.
func typeName(names []string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("type%d", i)
}

// Label renders the point's mix like "a9 8 : k10 2". Types with zero
// nodes are skipped, so the label names exactly the types the
// configuration uses.
func (p GenericPoint) Label(names []string) string {
	parts := make([]string, 0, len(p.Counts))
	for i, n := range p.Counts {
		if n == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %d", typeName(names, i), n))
	}
	return strings.Join(parts, " : ")
}

// GenericGroupSummary is one used type of a GenericPointSummary.
type GenericGroupSummary struct {
	Type         string  `json:"type"`
	Nodes        int     `json:"nodes"`
	Cores        int     `json:"cores"`
	GHz          float64 `json:"ghz"`
	WorkFraction float64 `json:"work_fraction"`
}

// GenericPointSummary is a GenericPoint flattened to JSON-friendly
// scalars, the wire form the serving layer returns for generic
// enumeration queries. Absent types are omitted from Groups.
type GenericPointSummary struct {
	Groups       []GenericGroupSummary `json:"groups"`
	TimeSeconds  float64               `json:"time_seconds"`
	EnergyJoules float64               `json:"energy_joules"`
	Label        string                `json:"label"`
}

// Summary flattens the point for serialization; names labels each type
// positionally (Label's "type<i>" fallback applies beyond it).
func (p GenericPoint) Summary(names []string) GenericPointSummary {
	s := GenericPointSummary{
		TimeSeconds:  float64(p.Time),
		EnergyJoules: float64(p.Energy),
		Label:        p.Label(names),
	}
	total := 0.0
	for _, w := range p.Work {
		total += w
	}
	for i, n := range p.Counts {
		if n == 0 {
			continue
		}
		g := GenericGroupSummary{
			Type:  typeName(names, i),
			Nodes: n,
			Cores: p.Configs[i].Cores,
			GHz:   p.Configs[i].Frequency.GHzValue(),
		}
		if total > 0 {
			g.WorkFraction = p.Work[i] / total
		}
		s.Groups = append(s.Groups, g)
	}
	return s
}

// EnumerateGroups evaluates every configuration of the generic space:
// all node-count vectors (0..MaxNodes per type, not all zero) crossed
// with all per-node configurations of the used types. The space grows
// as the product of MaxNodes × per-type configurations over all types —
// callers should pre-prune with PruneGroupTypes, stream aggregates with
// EnumerateGroupsFunc/GenericFrontierOf, or fan out with
// EnumerateGroupsParallel.
//
// Like the two-type enumerators, the generic path runs on precomputed
// evaluation kernels: each type's per-unit coefficients are derived
// once, each point pays only the matching-split arithmetic, and the
// output's Counts/Configs/Work slices are carved from three flat
// backing arrays instead of being allocated per point.
func EnumerateGroups(types []GroupType, w float64) ([]GenericPoint, error) {
	g, err := NewGenericTable(types)
	if err != nil {
		return nil, err
	}
	return g.Enumerate(w)
}

// EnumerateGroupsFunc streams every point of the generic space to
// yield, in EnumerateGroups's order, without materializing anything.
// The yielded point's slices are scratch buffers valid only during the
// call — Clone to retain. Returning false from yield stops the
// enumeration early (not an error).
func EnumerateGroupsFunc(types []GroupType, w float64, yield func(GenericPoint) bool) error {
	g, err := NewGenericTable(types)
	if err != nil {
		return err
	}
	return g.ForEach(w, yield)
}

// EnumerateGroupsParallel evaluates the same space as EnumerateGroups,
// fanned out over a pool of worker goroutines with the dynamic
// atomic-cursor chunking of the two-type EnumerateParallel: workers
// claim fixed-size index chunks off a shared cursor (subdividing the
// outermost type's option runs, so no static block imbalance), write
// results by index for a merge that is deterministic and bit-identical
// to the serial order, and the first error cancels the rest at their
// next chunk boundary. workers <= 0 selects GOMAXPROCS.
func EnumerateGroupsParallel(types []GroupType, w float64, workers int) ([]GenericPoint, error) {
	g, err := NewGenericTable(types)
	if err != nil {
		return nil, err
	}
	return g.EnumerateParallel(w, workers)
}

// GenericFrontierOf enumerates the generic space and returns only its
// Pareto-optimal points, maintained online as the enumeration streams:
// the space is never materialized and only retained points are copied
// out of the scratch buffers. The returned TE slice is time-ascending
// with each Index pointing into the returned point slice. Prune types
// first (PruneGroupTypes) for the fast path — the pruned frontier
// provably equals the full one.
func GenericFrontierOf(types []GroupType, w float64) ([]GenericPoint, []pareto.TE, error) {
	g, err := NewGenericTable(types)
	if err != nil {
		return nil, nil, err
	}
	return g.Frontier(w)
}

// genericFrontierChunk is the per-claim index run of the parallel
// frontier: large enough to amortize the per-chunk cursor and frontier,
// small enough that the dynamic scheduler balances uneven chunks.
const genericFrontierChunk = 8192

// GenericFrontierOfParallel is GenericFrontierOf fanned out over a
// worker pool: each claimed chunk maintains its own online frontier
// over scratch buffers, and the chunk frontiers are merged in
// enumeration order, so the result is identical to the serial path
// (including first-offered-wins among exact duplicates). The space is
// never materialized — at most the per-chunk frontiers live at once.
// workers <= 0 selects GOMAXPROCS.
func GenericFrontierOfParallel(types []GroupType, w float64, workers int) ([]GenericPoint, []pareto.TE, error) {
	g, err := NewGenericTable(types)
	if err != nil {
		return nil, nil, err
	}
	return g.FrontierParallel(w, workers)
}

// PruneGroupTypes returns a copy of types with each used type's
// per-node configurations restricted to its (time-per-unit,
// average-power) domination survivors (PrunedNodeConfigs). Under the
// matching split, replacing a node configuration with one no slower
// and no hungrier weakly improves both axes of every cluster
// configuration containing it, so the pruned generic space has exactly
// the full space's Pareto frontier — asserted by
// TestGenericPrunedFrontierEqualsFull — at a fraction of the cost.
func PruneGroupTypes(types []GroupType) ([]GroupType, error) {
	out := append([]GroupType(nil), types...)
	for i := range out {
		if out[i].MaxNodes <= 0 {
			continue
		}
		cfgs, err := PrunedNodeConfigs(out[i].Model)
		if err != nil {
			return nil, fmt.Errorf("cluster: type %d: %w", i, err)
		}
		out[i].Configs = cfgs
	}
	return out, nil
}

// GenericSpaceSize returns the number of points EnumerateGroups yields:
// the product over types of (1 + MaxNodes × configurations), minus the
// all-absent vector. The product is computed in uint64 and saturates at
// math.MaxUint64 instead of silently wrapping for large bounds or many
// types; enumerators independently refuse spaces too large to
// materialize.
func GenericSpaceSize(types []GroupType) uint64 {
	prod := uint64(1)
	for _, gt := range types {
		per := uint64(1)
		if gt.MaxNodes > 0 {
			per = satAdd(1, satMul(uint64(gt.MaxNodes), uint64(len(typeConfigs(gt)))))
		}
		prod = satMul(prod, per)
	}
	if prod == math.MaxUint64 {
		return prod
	}
	return prod - 1
}
