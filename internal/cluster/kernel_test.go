package cluster

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"heteromix/internal/hwsim"
	"heteromix/internal/pareto"
)

// relClose reports |a-b| <= tol * max(|a|,|b|).
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// Property: kernel-table enumeration matches the direct Evaluate path
// point for point — times, splits and configurations exactly, energies
// within accumulated rounding (the kernel computes n*E(1) where Evaluate
// computes n*E(w/n)/..., identical up to a few ULPs).
func TestEnumerateMatchesDirectEvaluate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		space Space
	}{
		{"ep", epSpace(t)},
		{"memcached", memcachedSpace(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.space
			f := func(a, d uint8, wRaw uint16) bool {
				maxARM := int(a) % 4
				maxAMD := int(d) % 4
				if maxARM+maxAMD == 0 {
					maxARM = 1
				}
				w := 1e4 + float64(wRaw)*1e3
				pts, err := s.Enumerate(maxARM, maxAMD, w)
				if err != nil {
					t.Logf("enumerate: %v", err)
					return false
				}
				if len(pts) != s.SpaceSize(maxARM, maxAMD) {
					return false
				}
				for _, p := range pts {
					ev, err := s.Evaluate(p.Config, w)
					if err != nil {
						t.Logf("evaluate %v: %v", p.Config, err)
						return false
					}
					if p.Time != ev.Time || p.WorkARM != ev.WorkARM {
						t.Logf("%v: time %v vs %v, share %v vs %v",
							p.Config, p.Time, ev.Time, p.WorkARM, ev.WorkARM)
						return false
					}
					if !relClose(float64(p.Energy), float64(ev.Energy), 1e-12) {
						t.Logf("%v: energy %v vs %v", p.Config, p.Energy, ev.Energy)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Error(err)
			}
		})
	}
}

// EnumerateFunc streams exactly Enumerate's sequence and stops when yield
// returns false.
func TestEnumerateFuncMatchesEnumerate(t *testing.T) {
	s := epSpace(t)
	want, err := s.Enumerate(3, 2, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	var got []Point
	if err := s.EnumerateFunc(3, 2, 50e6, func(p Point) bool {
		got = append(got, p)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}

	n := 0
	if err := s.EnumerateFunc(3, 2, 50e6, func(Point) bool {
		n++
		return n < 7
	}); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("early stop saw %d points, want 7", n)
	}

	if err := s.EnumerateFunc(0, 0, 50e6, func(Point) bool { return true }); err == nil {
		t.Error("empty space should error")
	}
	if err := s.EnumerateFunc(2, 2, -1, func(Point) bool { return true }); err == nil {
		t.Error("negative work should error")
	}
}

// Property: the streaming frontier equals pareto.Frontier of the
// materialized space, and the returned points carry the frontier's
// (time, energy) values.
func TestFrontierOfMatchesBatchFrontier(t *testing.T) {
	s := memcachedSpace(t)
	f := func(a, d uint8) bool {
		maxARM := 1 + int(a)%5
		maxAMD := 1 + int(d)%5
		w := 50000.0
		pts, tes, err := FrontierOf(s, maxARM, maxAMD, w)
		if err != nil {
			t.Logf("FrontierOf: %v", err)
			return false
		}
		all, err := s.Enumerate(maxARM, maxAMD, w)
		if err != nil {
			return false
		}
		allTE := make([]pareto.TE, len(all))
		for i, p := range all {
			allTE[i] = pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i}
		}
		want, err := pareto.Frontier(allTE)
		if err != nil {
			return false
		}
		if len(tes) != len(want) || len(pts) != len(want) {
			t.Logf("frontier sizes: stream %d/%d points, batch %d", len(tes), len(pts), len(want))
			return false
		}
		for i := range want {
			if tes[i].Time != want[i].Time || tes[i].Energy != want[i].Energy {
				t.Logf("frontier %d: (%v,%v) vs (%v,%v)", i,
					tes[i].Time, tes[i].Energy, want[i].Time, want[i].Energy)
				return false
			}
			if tes[i].Index != i {
				return false
			}
			if float64(pts[i].Time) != want[i].Time || float64(pts[i].Energy) != want[i].Energy {
				t.Logf("payload %d out of sync with frontier", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// EnumerateFilteredFunc streams exactly EnumerateFiltered's sequence.
func TestEnumerateFilteredFuncMatchesFiltered(t *testing.T) {
	s := epSpace(t)
	keepARM := func(c hwsim.Config) bool { return c.Cores >= 2 }
	keepAMD := func(c hwsim.Config) bool { return c.Frequency >= 1.7 }
	want, err := s.EnumerateFiltered(3, 3, 50e6, keepARM, keepAMD)
	if err != nil {
		t.Fatal(err)
	}
	var got []Point
	if err := s.EnumerateFilteredFunc(3, 3, 50e6, keepARM, keepAMD, func(p Point) bool {
		got = append(got, p)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d filtered points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("filtered point %d differs", i)
		}
	}
	// Filtered points are a subset of the full space, bit for bit.
	full, err := s.Enumerate(3, 3, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	inFull := make(map[Point]bool, len(full))
	for _, p := range full {
		inFull[p] = true
	}
	for _, p := range got {
		if !inFull[p] {
			t.Fatalf("filtered point %+v not in full space", p)
		}
	}
	none := func(hwsim.Config) bool { return false }
	if err := s.EnumerateFilteredFunc(3, 3, 50e6, none, none, func(Point) bool { return true }); err == nil {
		t.Error("filtering out every configuration should error")
	}
}

// The dynamic scheduler stops handing out chunks after the first error:
// a failure in an early chunk must leave most of the range unvisited.
func TestParallelForCancelsOnError(t *testing.T) {
	const n = 1 << 20
	boom := errors.New("boom")
	var visited atomic.Int64
	err := parallelFor(n, 4, 64, func(lo, hi int) error {
		visited.Add(int64(hi - lo))
		if lo == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if v := visited.Load(); v > n/2 {
		t.Errorf("visited %d of %d points after early error; cancellation not effective", v, n)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	const n = 10_000
	seen := make([]atomic.Int32, n)
	if err := parallelFor(n, 7, 64, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	if err := parallelFor(0, 4, 64, func(lo, hi int) error { return nil }); err != nil {
		t.Errorf("empty range: %v", err)
	}
}

func BenchmarkEnumerateStreaming10x10(b *testing.B) {
	s := epSpace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tes, err := FrontierOf(s, 10, 10, 50e6)
		if err != nil {
			b.Fatal(err)
		}
		if len(tes) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

func BenchmarkEnumerateParallel20x20(b *testing.B) {
	s := epSpace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := s.EnumerateParallel(20, 20, 50e6, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != s.SpaceSize(20, 20) {
			b.Fatalf("space size %d", len(pts))
		}
	}
}
