package cluster

import (
	"fmt"
	"math"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/units"
)

// This file is the evaluation-kernel layer under every enumerator. A
// spaceKernels table is built once per Enumerate* call from model.Kernel
// coefficients — one entry per distinct per-node (cores, frequency)
// setting, dozens of entries against tens of thousands of points — and
// evaluating a configuration then reduces to a handful of float
// multiplies with no validation, no map lookups and no allocations.
// Every error path (model validation, config validation, degenerate
// predictions, bad work volumes) is taken during table construction, so
// the per-point evaluation is infallible.
//
// Numerical contract: Point.Time, Point.WorkARM and the work split are
// bit-identical to the direct Space.Evaluate path (the throughput and
// split arithmetic is the same expression over the same TimePerUnit
// values). Point.Energy folds the work volume in after the per-unit
// coefficient instead of before, which agrees with the direct path to
// within a few ULPs (~1e-15 relative); tests assert 1e-12.

// kernelEntry is one per-node configuration's precomputed coefficients.
type kernelEntry struct {
	cfg hwsim.Config
	k   float64 // seconds per work unit on one node
	epu float64 // joules per work unit on one node
}

// typeKernels validates nm once and precomputes entries for the given
// configurations (in the given order).
func typeKernels(nm model.NodeModel, cfgs []hwsim.Config) ([]kernelEntry, error) {
	if err := nm.Validate(); err != nil {
		return nil, err
	}
	out := make([]kernelEntry, len(cfgs))
	for i, cfg := range cfgs {
		k, err := nm.KernelFor(cfg)
		if err != nil {
			return nil, err
		}
		out[i] = kernelEntry{cfg: cfg, k: k.TimePerUnit, epu: k.EnergyPerUnit}
	}
	return out, nil
}

// spaceKernels is the precomputed evaluation table of a two-type Space.
type spaceKernels struct {
	arm, amd []kernelEntry
	// switchW is the per-switch wattage charged to job energy on the ARM
	// side (zero under NoSwitchEnergy).
	switchW float64
}

// kernels builds the table for the given node bounds, validating each
// model only if its side of the space is populated (a zero bound never
// touches that model, matching the direct path's behaviour for groups
// with zero nodes). cfgARM/cfgAMD restrict the per-node settings; nil
// selects every configuration of the spec.
func (s Space) kernels(maxARM, maxAMD int, cfgARM, cfgAMD []hwsim.Config) (spaceKernels, error) {
	t := spaceKernels{}
	if !s.NoSwitchEnergy {
		t.switchW = float64(SwitchPower)
	}
	var err error
	if maxARM > 0 {
		if cfgARM == nil {
			cfgARM = hwsim.Configs(s.ARM.Spec)
		}
		if t.arm, err = typeKernels(s.ARM, cfgARM); err != nil {
			return spaceKernels{}, fmt.Errorf("cluster: ARM kernels: %w", err)
		}
	}
	if maxAMD > 0 {
		if cfgAMD == nil {
			cfgAMD = hwsim.Configs(s.AMD.Spec)
		}
		if t.amd, err = typeKernels(s.AMD, cfgAMD); err != nil {
			return spaceKernels{}, fmt.Errorf("cluster: AMD kernels: %w", err)
		}
	}
	return t, nil
}

// validWork mirrors Evaluate's work-volume check.
func validWork(w float64) error {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("cluster: work must be positive and finite, got %v", w)
	}
	return nil
}

// armSwitches is Group.Switches for the ARM side.
func armSwitches(nodes int) int {
	return (nodes + ARMPortsPerSwitch - 1) / ARMPortsPerSwitch
}

// point evaluates one configuration from precomputed coefficients: the
// matching split (W_g ∝ n_g/k_g), the shared finish time and the summed
// group energies including switch draw over the job duration. na or nd
// may be zero for the homogeneous families; the corresponding entry is
// ignored.
func (t spaceKernels) point(na, nd int, a, d kernelEntry, w float64) Point {
	var thrA, thrD float64
	if na > 0 {
		thrA = float64(na) / a.k
	}
	if nd > 0 {
		thrD = float64(nd) / d.k
	}
	total := thrA + thrD
	tt := w / total

	var wA, wD, eA, eD float64
	var cfg Configuration
	if na > 0 {
		wA = w * thrA / total
		eA = a.epu*wA + t.switchW*float64(armSwitches(na))*tt
		cfg.ARM = TypeConfig{Nodes: na, Config: a.cfg}
	}
	if nd > 0 {
		wD = w * thrD / total
		eD = d.epu * wD
		cfg.AMD = TypeConfig{Nodes: nd, Config: d.cfg}
	}
	workARM := 0.0
	if tot := wA + wD; tot > 0 {
		workARM = wA / tot
	}
	return Point{
		Config:  cfg,
		Time:    units.Seconds(tt),
		Energy:  units.Joule(eA + eD),
		WorkARM: workARM,
	}
}

// forEachPoint streams the space in Enumerate's order — all heterogeneous
// mixes (ARM count, ARM config, AMD count, AMD config, nested in that
// order), then the ARM-only family, then the AMD-only family — without
// materializing anything. It reports whether the walk ran to completion
// (yield returning false stops it early).
func (t spaceKernels) forEachPoint(maxARM, maxAMD int, w float64, yield func(Point) bool) bool {
	for na := 1; na <= maxARM; na++ {
		for _, a := range t.arm {
			for nd := 1; nd <= maxAMD; nd++ {
				for _, d := range t.amd {
					if !yield(t.point(na, nd, a, d, w)) {
						return false
					}
				}
			}
		}
	}
	var none kernelEntry
	for na := 1; na <= maxARM; na++ {
		for _, a := range t.arm {
			if !yield(t.point(na, 0, a, none, w)) {
				return false
			}
		}
	}
	for nd := 1; nd <= maxAMD; nd++ {
		for _, d := range t.amd {
			if !yield(t.point(0, nd, none, d, w)) {
				return false
			}
		}
	}
	return true
}

// size returns how many points forEachPoint yields for the bounds.
func (t spaceKernels) size(maxARM, maxAMD int) int {
	a, d := len(t.arm), len(t.amd)
	return maxARM*a*maxAMD*d + maxARM*a + maxAMD*d
}

// pointAt evaluates the configuration at linear index i of forEachPoint's
// order, the random-access view the dynamic parallel scheduler uses.
func (t spaceKernels) pointAt(i, maxARM, maxAMD int, w float64) Point {
	a, d := len(t.arm), len(t.amd)
	mixed := maxARM * a * maxAMD * d
	switch {
	case i < mixed:
		di := i % d
		r := i / d
		nd := r%maxAMD + 1
		r /= maxAMD
		ai := r % a
		na := r/a + 1
		return t.point(na, nd, t.arm[ai], t.amd[di], w)
	case i < mixed+maxARM*a:
		j := i - mixed
		return t.point(j/a+1, 0, t.arm[j%a], kernelEntry{}, w)
	default:
		j := i - mixed - maxARM*a
		return t.point(0, j/d+1, kernelEntry{}, t.amd[j%d], w)
	}
}
