package cluster

import (
	"reflect"
	"testing"

	"heteromix/internal/shard"
)

// shardSpecs is the adversarial shard-count battery from the issue:
// unsharded, even splits, and a count coprime to everything in the
// space's factorization.
var shardSpecs = []int{1, 2, 4, 7}

// TestShardedFrontierBitIdentical is the tentpole property: for the
// tri-type space, merging the n partial frontiers reproduces the serial
// frontier bit for bit — TEs and payloads — for every shard count, with
// and without domination pruning of the per-type config lists.
func TestShardedFrontierBitIdentical(t *testing.T) {
	const w = 50e6
	base := triTypes(t, 2, 2, 2)
	pruned, err := PruneGroupTypes(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		types []GroupType
	}{
		{"full", base},
		{"pruned", pruned},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wantPts, wantTEs, err := GenericFrontierOf(tc.types, w)
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGenericTable(tc.types)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range shardSpecs {
				parts := make([]ShardFrontier[GenericPoint], n)
				for i := 0; i < n; i++ {
					parts[i], err = g.FrontierShard(w, shard.Shard{Index: i, Count: n})
					if err != nil {
						t.Fatal(err)
					}
				}
				merged, err := MergeShardFrontiers(parts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(merged.TEs, wantTEs) {
					t.Fatalf("n=%d: merged TEs differ from serial frontier\n got %v\nwant %v", n, merged.TEs, wantTEs)
				}
				if !reflect.DeepEqual(merged.Points, wantPts) {
					t.Fatalf("n=%d: merged payloads differ from serial frontier", n)
				}
			}
		})
	}
}

// TestShardedEnumerationPartitionsSpace: the n shard slices of
// EnumerateGroupsShard cover every serial index exactly once, match
// SliceSize, and every point equals the serial enumeration's point at
// its claimed index.
func TestShardedEnumerationPartitionsSpace(t *testing.T) {
	const w = 50e6
	types := triTypes(t, 1, 1, 1)
	serial, err := EnumerateGroups(types, w)
	if err != nil {
		t.Fatal(err)
	}
	size := uint64(len(serial))
	for _, n := range shardSpecs {
		seen := make([]bool, size)
		total := uint64(0)
		for i := 0; i < n; i++ {
			sh := shard.Shard{Index: i, Count: n}
			pts, idxs, err := EnumerateGroupsShard(types, w, sh)
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != len(idxs) {
				t.Fatalf("n=%d shard %d: %d points, %d indices", n, i, len(pts), len(idxs))
			}
			if got := uint64(len(pts)); got != sh.SliceSize(size) {
				t.Fatalf("n=%d shard %d: %d points, SliceSize says %d", n, i, got, sh.SliceSize(size))
			}
			for k, idx := range idxs {
				if idx >= size {
					t.Fatalf("n=%d shard %d: index %d out of space", n, i, idx)
				}
				if seen[idx] {
					t.Fatalf("n=%d: index %d owned by two shards", n, idx)
				}
				seen[idx] = true
				if !reflect.DeepEqual(pts[k], serial[idx]) {
					t.Fatalf("n=%d shard %d: point at index %d differs from serial enumeration\n got %+v\nwant %+v",
						n, i, idx, pts[k], serial[idx])
				}
			}
			total += uint64(len(pts))
		}
		if total != size {
			t.Fatalf("n=%d: shards cover %d of %d points", n, total, size)
		}
	}
}

// TestTwoTypeShardedFrontierBitIdentical: the two-type walkers satisfy
// the same merge identity against Table.Frontier.
func TestTwoTypeShardedFrontierBitIdentical(t *testing.T) {
	const w = 50e6
	const maxARM, maxAMD = 3, 3
	tb, err := epSpace(t).NewTable()
	if err != nil {
		t.Fatal(err)
	}
	wantPts, wantTEs, err := tb.Frontier(maxARM, maxAMD, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range shardSpecs {
		parts := make([]ShardFrontier[Point], n)
		for i := 0; i < n; i++ {
			parts[i], err = tb.FrontierShard(maxARM, maxAMD, w, shard.Shard{Index: i, Count: n})
			if err != nil {
				t.Fatal(err)
			}
		}
		merged, err := MergeShardFrontiers(parts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(merged.TEs, wantTEs) {
			t.Fatalf("n=%d: merged TEs differ from Table.Frontier\n got %v\nwant %v", n, merged.TEs, wantTEs)
		}
		if !reflect.DeepEqual(merged.Points, wantPts) {
			t.Fatalf("n=%d: merged payloads differ from Table.Frontier", n)
		}
	}
}

// TestShardWalkValidation: malformed shard specs and invalid work are
// rejected by every sharded entry point, and early stop from yield is
// not an error.
func TestShardWalkValidation(t *testing.T) {
	const w = 50e6
	types := triTypes(t, 1, 1, 1)
	g, err := NewGenericTable(types)
	if err != nil {
		t.Fatal(err)
	}
	bad := []shard.Shard{{Index: 0, Count: 0}, {Index: 4, Count: 4}, {Index: -1, Count: 2}}
	for _, sh := range bad {
		if err := g.ForEachShard(w, sh, func(GenericPoint, uint64) bool { return true }); err == nil {
			t.Fatalf("generic ForEachShard accepted %+v", sh)
		}
		if _, err := g.FrontierShard(w, sh); err == nil {
			t.Fatalf("generic FrontierShard accepted %+v", sh)
		}
		if _, _, err := EnumerateGroupsShard(types, w, sh); err == nil {
			t.Fatalf("EnumerateGroupsShard accepted %+v", sh)
		}
	}
	if err := g.ForEachShard(-1, shard.Shard{Index: 0, Count: 1}, func(GenericPoint, uint64) bool { return true }); err == nil {
		t.Fatal("generic ForEachShard accepted negative work")
	}
	steps := 0
	err = g.ForEachShard(w, shard.Shard{Index: 0, Count: 1}, func(GenericPoint, uint64) bool {
		steps++
		return steps < 3
	})
	if err != nil || steps != 3 {
		t.Fatalf("early stop: err=%v steps=%d", err, steps)
	}

	tb, err := epSpace(t).NewTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range bad {
		if err := tb.ForEachShard(2, 2, w, sh, func(Point, uint64) bool { return true }); err == nil {
			t.Fatalf("two-type ForEachShard accepted %+v", sh)
		}
	}
	if err := tb.ForEachShard(0, 0, w, shard.Shard{Index: 0, Count: 1}, func(Point, uint64) bool { return true }); err == nil {
		t.Fatal("two-type ForEachShard accepted an empty space")
	}

	if _, err := MergeShardFrontiers([]ShardFrontier[int]{{Points: []int{1}, TEs: nil, Indices: []uint64{0}}}); err == nil {
		t.Fatal("MergeShardFrontiers accepted a ragged part")
	}
}
