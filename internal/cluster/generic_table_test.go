package cluster

import (
	"math"
	"testing"
)

// TestGenericTableReuseBitIdentical pins the property the tablecache
// relies on: one compiled GenericTable answers every work size, and each
// answer is bit-identical to a fresh per-call build. Work sizes span
// three orders of magnitude to make any hidden w-dependence in the
// compiled coefficients visible.
func TestGenericTableReuseBitIdentical(t *testing.T) {
	types := triTypes(t, 2, 2, 2)
	g, err := NewGenericTable(types)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{1e3, 5e4, 1e6} {
		fresh, err := EnumerateGroups(types, w)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := g.Enumerate(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(fresh) != len(reused) {
			t.Fatalf("w=%v: %d fresh points vs %d reused", w, len(fresh), len(reused))
		}
		for i := range fresh {
			if fresh[i].Time != reused[i].Time || fresh[i].Energy != reused[i].Energy {
				t.Fatalf("w=%v point %d: fresh (%v,%v) vs reused (%v,%v)",
					w, i, fresh[i].Time, fresh[i].Energy, reused[i].Time, reused[i].Energy)
			}
		}

		fPts, fTEs, err := GenericFrontierOf(types, w)
		if err != nil {
			t.Fatal(err)
		}
		rPts, rTEs, err := g.FrontierParallel(w, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(fTEs) != len(rTEs) {
			t.Fatalf("w=%v: %d fresh frontier points vs %d reused", w, len(fTEs), len(rTEs))
		}
		for i := range fTEs {
			if fTEs[i].Time != rTEs[i].Time || fTEs[i].Energy != rTEs[i].Energy {
				t.Fatalf("w=%v frontier %d differs: %+v vs %+v", w, i, fTEs[i], rTEs[i])
			}
			if fPts[i].Label(nil) != rPts[i].Label(nil) {
				t.Fatalf("w=%v frontier %d labels differ: %q vs %q",
					w, i, fPts[i].Label(nil), rPts[i].Label(nil))
			}
		}
	}
}

// TestGenericTableParallelMatchesSerial checks the table's own parallel
// paths against its serial ones (the wrapped enumerators are pinned
// elsewhere; this exercises the methods directly off one shared table).
func TestGenericTableParallelMatchesSerial(t *testing.T) {
	g, err := NewGenericTable(triTypes(t, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	const w = 5e4
	serial, err := g.Enumerate(w)
	if err != nil {
		t.Fatal(err)
	}
	par, err := g.EnumerateParallel(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("%d serial vs %d parallel points", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Time != par[i].Time || serial[i].Energy != par[i].Energy {
			t.Fatalf("point %d differs: (%v,%v) vs (%v,%v)",
				i, serial[i].Time, serial[i].Energy, par[i].Time, par[i].Energy)
		}
	}
}

func TestGenericTableErrors(t *testing.T) {
	if _, err := NewGenericTable(nil); err == nil {
		t.Error("no types should error")
	}
	s := epSpace(t)
	if _, err := NewGenericTable([]GroupType{{Model: s.ARM, MaxNodes: -1}}); err == nil {
		t.Error("negative MaxNodes should error")
	}
	empty, err := NewGenericTable([]GroupType{{Model: s.ARM, MaxNodes: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.ForEach(1e6, func(GenericPoint) bool { return true }); err == nil {
		t.Error("all-zero space should error at evaluation time")
	}
	g, err := NewGenericTable([]GroupType{{Model: s.ARM, MaxNodes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := g.Enumerate(w); err == nil {
			t.Errorf("work %v should error", w)
		}
	}
}

// TestSizeBytesAccounting sanity-checks the cache-accounting estimates:
// positive, and monotone in the option count.
func TestSizeBytesAccounting(t *testing.T) {
	small, err := NewGenericTable(triTypes(t, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewGenericTable(triTypes(t, 8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if small.SizeBytes() <= 0 || big.SizeBytes() <= small.SizeBytes() {
		t.Errorf("generic SizeBytes should be positive and grow with bounds: %d vs %d",
			small.SizeBytes(), big.SizeBytes())
	}
	tab, err := epSpace(t).NewTable()
	if err != nil {
		t.Fatal(err)
	}
	if tab.SizeBytes() <= 0 {
		t.Errorf("Table.SizeBytes should be positive, got %d", tab.SizeBytes())
	}
}
