package cluster

import (
	"math"
	"strings"
	"testing"

	"heteromix/internal/hwsim"
)

func TestTableEvaluateMatchesSpaceEvaluate(t *testing.T) {
	s := epSpace(t)
	tbl, err := s.NewTable()
	if err != nil {
		t.Fatal(err)
	}
	const w = 5e7
	for _, cfg := range []Configuration{
		{ARM: TypeConfig{Nodes: 3, Config: maxCfg(s.ARM.Spec)},
			AMD: TypeConfig{Nodes: 2, Config: maxCfg(s.AMD.Spec)}},
		{ARM: TypeConfig{Nodes: 9, Config: hwsim.Configs(s.ARM.Spec)[0]}},
		{AMD: TypeConfig{Nodes: 1, Config: hwsim.Configs(s.AMD.Spec)[2]}},
	} {
		got, err := tbl.Evaluate(cfg, w)
		if err != nil {
			t.Fatalf("Table.Evaluate(%v): %v", cfg, err)
		}
		want, err := s.Evaluate(cfg, w)
		if err != nil {
			t.Fatalf("Space.Evaluate(%v): %v", cfg, err)
		}
		if got.Time != want.Time || got.WorkARM != want.WorkARM {
			t.Errorf("%v: time/split (%v, %v) != direct (%v, %v)",
				cfg, got.Time, got.WorkARM, want.Time, want.WorkARM)
		}
		if !relClose(float64(got.Energy), float64(want.Energy), 1e-12) {
			t.Errorf("%v: energy %v != direct %v", cfg, got.Energy, want.Energy)
		}
	}
}

func TestTableEvaluateRejectsBadInput(t *testing.T) {
	s := epSpace(t)
	tbl, err := s.NewTable()
	if err != nil {
		t.Fatal(err)
	}
	valid := Configuration{ARM: TypeConfig{Nodes: 1, Config: maxCfg(s.ARM.Spec)}}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := tbl.Evaluate(valid, w); err == nil {
			t.Errorf("Evaluate accepted work %v", w)
		}
	}
	for name, cfg := range map[string]Configuration{
		"no nodes":       {},
		"negative nodes": {ARM: TypeConfig{Nodes: -1, Config: maxCfg(s.ARM.Spec)}},
		"unknown config": {ARM: TypeConfig{Nodes: 1, Config: hwsim.Config{Cores: 99, Frequency: 1}}},
	} {
		if _, err := tbl.Evaluate(cfg, 1e4); err == nil {
			t.Errorf("%s: Evaluate accepted %v", name, cfg)
		}
	}
	if _, err := tbl.Evaluate(Configuration{
		AMD: TypeConfig{Nodes: 1, Config: hwsim.Config{Cores: 1, Frequency: 12345}},
	}, 1e4); err == nil || !strings.Contains(err.Error(), "not a configuration") {
		t.Errorf("unknown AMD config error = %v", err)
	}
}

func TestTableForEachMatchesEnumerate(t *testing.T) {
	s := memcachedSpace(t)
	tbl, err := s.NewTable()
	if err != nil {
		t.Fatal(err)
	}
	const w, maxARM, maxAMD = 5e4, 3, 2
	want, err := s.Enumerate(maxARM, maxAMD, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Size(maxARM, maxAMD); got != len(want) {
		t.Fatalf("Size = %d, want %d", got, len(want))
	}
	i := 0
	err = tbl.ForEach(maxARM, maxAMD, w, func(p Point) bool {
		if p != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, p, want[i])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("ForEach yielded %d points, want %d", i, len(want))
	}
	// Early stop.
	n := 0
	if err := tbl.ForEach(maxARM, maxAMD, w, func(Point) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop after %d points, want 5", n)
	}
	// Invalid bounds.
	if err := tbl.ForEach(0, 0, w, func(Point) bool { return true }); err == nil {
		t.Error("ForEach accepted an empty space")
	}
	if err := tbl.ForEach(-1, 2, w, func(Point) bool { return true }); err == nil {
		t.Error("ForEach accepted negative bounds")
	}
}

func TestTableFrontierMatchesFrontierOf(t *testing.T) {
	s := epSpace(t)
	tbl, err := s.NewTable()
	if err != nil {
		t.Fatal(err)
	}
	const w, maxARM, maxAMD = 5e7, 4, 4
	wantPts, wantTE, err := FrontierOf(s, maxARM, maxAMD, w)
	if err != nil {
		t.Fatal(err)
	}
	gotPts, gotTE, err := tbl.Frontier(maxARM, maxAMD, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPts) != len(wantPts) || len(gotTE) != len(wantTE) {
		t.Fatalf("frontier sizes (%d, %d) != (%d, %d)",
			len(gotPts), len(gotTE), len(wantPts), len(wantTE))
	}
	for i := range gotPts {
		if gotPts[i] != wantPts[i] || gotTE[i] != wantTE[i] {
			t.Fatalf("frontier point %d differs: %+v vs %+v", i, gotPts[i], wantPts[i])
		}
	}
}

func TestPointSummaryFlattens(t *testing.T) {
	s := epSpace(t)
	p, err := s.Evaluate(Configuration{
		ARM: TypeConfig{Nodes: 2, Config: maxCfg(s.ARM.Spec)},
		AMD: TypeConfig{Nodes: 3, Config: maxCfg(s.AMD.Spec)},
	}, 5e7)
	if err != nil {
		t.Fatal(err)
	}
	sum := p.Summary()
	if sum.ARMNodes != 2 || sum.AMDNodes != 3 {
		t.Errorf("node counts = %d:%d, want 2:3", sum.ARMNodes, sum.AMDNodes)
	}
	if sum.ARMGHz != s.ARM.Spec.FMax().GHzValue() {
		t.Errorf("ARMGHz = %v, want %v", sum.ARMGHz, s.ARM.Spec.FMax().GHzValue())
	}
	if sum.TimeSeconds != float64(p.Time) || sum.EnergyJoules != float64(p.Energy) {
		t.Error("time/energy not carried through")
	}
	if !strings.Contains(sum.Label, "ARM 2:AMD 3") {
		t.Errorf("label = %q", sum.Label)
	}
	// Homogeneous sides omit their settings.
	armOnly, err := s.Evaluate(Configuration{ARM: TypeConfig{Nodes: 1, Config: maxCfg(s.ARM.Spec)}}, 5e7)
	if err != nil {
		t.Fatal(err)
	}
	if got := armOnly.Summary(); got.AMDCores != 0 || got.AMDGHz != 0 {
		t.Errorf("AMD settings leaked into an ARM-only summary: %+v", got)
	}
}
