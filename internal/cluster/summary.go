package cluster

// PointSummary is a Point flattened to JSON-friendly scalars: node
// counts, per-node settings in GHz, and the predicted time/energy/split.
// It is the wire form the serving layer returns for predict and
// enumerate queries; zero-node sides omit their cores/GHz fields.
type PointSummary struct {
	ARMNodes int     `json:"arm_nodes"`
	ARMCores int     `json:"arm_cores,omitempty"`
	ARMGHz   float64 `json:"arm_ghz,omitempty"`
	AMDNodes int     `json:"amd_nodes"`
	AMDCores int     `json:"amd_cores,omitempty"`
	AMDGHz   float64 `json:"amd_ghz,omitempty"`
	// TimeSeconds is the job's service time under the matching split.
	TimeSeconds float64 `json:"time_seconds"`
	// EnergyJoules is the total cluster energy for the job.
	EnergyJoules float64 `json:"energy_joules"`
	// WorkARMFraction is the share of the job the split sends to ARM.
	WorkARMFraction float64 `json:"work_arm_fraction"`
	// Label is the configuration rendered the way the paper labels its
	// series.
	Label string `json:"label"`
}

// Summary flattens the point for serialization.
func (p Point) Summary() PointSummary {
	s := PointSummary{
		ARMNodes:        p.Config.ARM.Nodes,
		AMDNodes:        p.Config.AMD.Nodes,
		TimeSeconds:     float64(p.Time),
		EnergyJoules:    float64(p.Energy),
		WorkARMFraction: p.WorkARM,
		Label:           p.Config.String(),
	}
	if p.Config.ARM.Nodes > 0 {
		s.ARMCores = p.Config.ARM.Config.Cores
		s.ARMGHz = p.Config.ARM.Config.Frequency.GHzValue()
	}
	if p.Config.AMD.Nodes > 0 {
		s.AMDCores = p.Config.AMD.Config.Cores
		s.AMDGHz = p.Config.AMD.Config.Frequency.GHzValue()
	}
	return s
}
