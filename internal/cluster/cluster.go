// Package cluster lifts the single-node model to heterogeneous clusters
// and implements the paper's "mix and match" technique (§I, §II):
//
//   - the workload W splits between the node types (Eq. 4,
//     W = W_ARM + W_AMD) and evenly among nodes of the same type;
//
//   - the split is chosen so every node finishes at the same time
//     (Eq. 1, T = T_ARM = T_AMD), which minimizes idle energy: because
//     the model's per-node time is exactly linear in assigned work, the
//     matching split has the closed form W_g ∝ n_g / k_g, where k_g is
//     group g's predicted seconds per work unit;
//
//   - cluster energy adds, over the job's duration, the network switches
//     that connect the ARM nodes (the paper's §IV-C footnote: a 20 W
//     switch per 8 low-power nodes, which is what turns the raw 12:1
//     peak-power ratio into the 8:1 substitution ratio).
//
// The package also enumerates the full configuration space of §IV-B:
// every combination of node counts, active cores per node and core clock
// frequency for both types — 36,380 points for 10 ARM + 10 AMD nodes
// (footnote 2 of the paper).
package cluster

import (
	"fmt"
	"math"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/units"
)

// Switch parameters from the paper's §IV-C footnote: each AMD node draws
// 60 W peak and each ARM node 5 W, so one AMD is power-equivalent to 12
// ARM; folding in a 20 W switch per group of ARM nodes yields the 8:1
// substitution ratio (8 x 5 W + 20 W = 60 W).
const (
	// SwitchPower is one ARM-connecting switch's draw.
	SwitchPower units.Watt = 20
	// ARMPortsPerSwitch is how many ARM nodes share one switch at the
	// substitution-ratio operating point.
	ARMPortsPerSwitch = 8
)

// Group is a set of identical nodes running the same configuration.
type Group struct {
	// Model is the fitted node model (workload + node type + power).
	Model model.NodeModel
	// Nodes is how many nodes of this type participate.
	Nodes int
	// Config is the per-node (cores, frequency) setting.
	Config hwsim.Config
	// NeedsSwitch marks node types whose nodes hang off dedicated
	// switches (true for the low-power ARM enclosure in the paper).
	NeedsSwitch bool
}

// Validate checks the group.
func (g Group) Validate() error {
	if g.Nodes < 0 {
		return fmt.Errorf("cluster: negative node count %d", g.Nodes)
	}
	if g.Nodes == 0 {
		return nil // absent group
	}
	if err := g.Model.Validate(); err != nil {
		return err
	}
	return g.Config.ValidateFor(g.Model.Spec)
}

// Switches returns the number of switches the group needs.
func (g Group) Switches() int {
	if !g.NeedsSwitch || g.Nodes == 0 {
		return 0
	}
	return (g.Nodes + ARMPortsPerSwitch - 1) / ARMPortsPerSwitch
}

// PeakPower returns the group's peak draw including switches, used by the
// power-budget analysis.
func (g Group) PeakPower() units.Watt {
	if g.Nodes == 0 {
		return 0
	}
	return units.Watt(float64(g.Model.Spec.PeakPower())*float64(g.Nodes)) +
		units.Watt(float64(SwitchPower)*float64(g.Switches()))
}

// Evaluation is the predicted outcome of servicing a job on a cluster
// configuration with the matching split applied.
type Evaluation struct {
	// Time is the job's service time (equal across groups by matching).
	Time units.Seconds
	// Energy is the total cluster energy for the job, including switch
	// energy over the job duration.
	Energy units.Joule
	// Work holds each group's share of the job (the matching split),
	// indexed like the groups passed to Evaluate.
	Work []float64
	// GroupEnergy is each group's total energy (all its nodes).
	GroupEnergy []units.Joule
}

// Evaluate services w work units on the given groups using the matching
// split. At least one group must have nodes.
func Evaluate(groups []Group, w float64) (Evaluation, error) {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return Evaluation{}, fmt.Errorf("cluster: work must be positive and finite, got %v", w)
	}
	active := 0
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return Evaluation{}, fmt.Errorf("cluster: group %d: %w", i, err)
		}
		if g.Nodes > 0 {
			active++
		}
	}
	if active == 0 {
		return Evaluation{}, fmt.Errorf("cluster: no nodes in any group")
	}

	// Per-group throughput: nodes / (seconds per unit per node).
	// The matching split assigns W_g = W * thr_g / sum(thr) so that
	// T_g = (W_g / n_g) * k_g = W / sum(thr) for every group — all nodes
	// finish together (paper Eq. 1).
	thr := make([]float64, len(groups))
	totalThr := 0.0
	for i, g := range groups {
		if g.Nodes == 0 {
			continue
		}
		k, err := g.Model.TimePerUnit(g.Config)
		if err != nil {
			return Evaluation{}, fmt.Errorf("cluster: group %d: %w", i, err)
		}
		thr[i] = float64(g.Nodes) / float64(k)
		totalThr += thr[i]
	}
	if totalThr <= 0 {
		return Evaluation{}, fmt.Errorf("cluster: zero aggregate throughput")
	}

	t := units.Seconds(w / totalThr)
	ev := Evaluation{
		Time:        t,
		Work:        make([]float64, len(groups)),
		GroupEnergy: make([]units.Joule, len(groups)),
	}
	for i, g := range groups {
		if g.Nodes == 0 {
			continue
		}
		ev.Work[i] = w * thr[i] / totalThr
		perNode := ev.Work[i] / float64(g.Nodes)
		pred, err := g.Model.Predict(g.Config, perNode)
		if err != nil {
			return Evaluation{}, fmt.Errorf("cluster: group %d: %w", i, err)
		}
		e := units.Joule(float64(pred.Energy) * float64(g.Nodes))
		// Switch energy over the job duration.
		e += units.Watt(float64(SwitchPower) * float64(g.Switches())).Times(t)
		ev.GroupEnergy[i] = e
		ev.Energy += e
	}
	return ev, nil
}

// TypeConfig is one node type's setting in a two-type configuration.
type TypeConfig struct {
	// Nodes is the node count (0 = type unused).
	Nodes int
	// Config is the per-node setting (ignored when Nodes is 0).
	Config hwsim.Config
}

// Configuration is one point of the paper's two-type search space.
type Configuration struct {
	ARM TypeConfig
	AMD TypeConfig
}

// String renders the configuration the way the paper labels its series,
// e.g. "ARM 16:AMD 14 (arm c4@1.40GHz, amd c6@2.10GHz)".
func (c Configuration) String() string {
	s := fmt.Sprintf("ARM %d:AMD %d", c.ARM.Nodes, c.AMD.Nodes)
	if c.ARM.Nodes > 0 {
		s += fmt.Sprintf(" arm[c%d@%v]", c.ARM.Config.Cores, c.ARM.Config.Frequency)
	}
	if c.AMD.Nodes > 0 {
		s += fmt.Sprintf(" amd[c%d@%v]", c.AMD.Config.Cores, c.AMD.Config.Frequency)
	}
	return s
}

// Point is an evaluated configuration: one dot in Figures 4 and 5.
type Point struct {
	Config Configuration
	Time   units.Seconds
	Energy units.Joule
	// WorkARM is the fraction of the job the matching split sends to the
	// ARM side.
	WorkARM float64
}

// Space evaluates the full two-type configuration space.
type Space struct {
	// ARM and AMD are the workload's fitted models for the two types.
	ARM, AMD model.NodeModel
	// NoSwitchEnergy excludes the ARM switches' energy from job-energy
	// accounting (their peak power still counts against power budgets).
	// The paper introduces the switch only in its power-budget analysis
	// (§IV-C footnote); this flag lets experiments report both
	// conventions.
	NoSwitchEnergy bool
}

// Groups materializes a Configuration into Evaluate's input.
func (s Space) Groups(cfg Configuration) []Group {
	return []Group{
		{Model: s.ARM, Nodes: cfg.ARM.Nodes, Config: cfg.ARM.Config, NeedsSwitch: !s.NoSwitchEnergy},
		{Model: s.AMD, Nodes: cfg.AMD.Nodes, Config: cfg.AMD.Config},
	}
}

// Evaluate services w units on one configuration.
func (s Space) Evaluate(cfg Configuration, w float64) (Point, error) {
	ev, err := Evaluate(s.Groups(cfg), w)
	if err != nil {
		return Point{}, err
	}
	workARM := 0.0
	if total := ev.Work[0] + ev.Work[1]; total > 0 {
		workARM = ev.Work[0] / total
	}
	return Point{Config: cfg, Time: ev.Time, Energy: ev.Energy, WorkARM: workARM}, nil
}

// Enumerate evaluates every configuration with up to maxARM ARM nodes and
// maxAMD AMD nodes servicing w units: all heterogeneous mixes (both
// counts >= 1) plus the homogeneous ARM-only and AMD-only families. For
// maxARM = maxAMD = 10 this is the paper's 36,380-point space.
//
// Enumeration runs on the precomputed kernel table (see kernel.go): the
// models are validated and their per-unit coefficients derived once, and
// each point costs a handful of float multiplies. The result matches
// evaluating each configuration with Evaluate — bit-identical times and
// splits, energies within a few ULPs.
func (s Space) Enumerate(maxARM, maxAMD int, w float64) ([]Point, error) {
	kt, err := s.enumKernels(maxARM, maxAMD, w)
	if err != nil {
		return nil, err
	}
	out := make([]Point, 0, kt.size(maxARM, maxAMD))
	kt.forEachPoint(maxARM, maxAMD, w, func(p Point) bool {
		out = append(out, p)
		return true
	})
	return out, nil
}

// enumKernels validates the space bounds and work volume, then builds the
// kernel table — the shared preamble of every enumerator.
func (s Space) enumKernels(maxARM, maxAMD int, w float64) (spaceKernels, error) {
	if maxARM < 0 || maxAMD < 0 || maxARM+maxAMD == 0 {
		return spaceKernels{}, fmt.Errorf("cluster: invalid space %dx%d", maxARM, maxAMD)
	}
	if err := validWork(w); err != nil {
		return spaceKernels{}, err
	}
	return s.kernels(maxARM, maxAMD, nil, nil)
}

// SpaceSize returns the number of configurations Enumerate produces,
// matching the paper's footnote-2 arithmetic.
func (s Space) SpaceSize(maxARM, maxAMD int) int {
	a := len(hwsim.Configs(s.ARM.Spec))
	d := len(hwsim.Configs(s.AMD.Spec))
	return maxARM*a*maxAMD*d + maxARM*a + maxAMD*d
}

// EnumerateFiltered evaluates the sub-space whose per-node configurations
// pass the keep predicates (nil keeps everything). It supports ablations
// that disable configuration dimensions — for example restricting both
// types to their maximum frequency quantifies how much of the Pareto
// frontier DVFS contributes versus node-count mixing.
func (s Space) EnumerateFiltered(maxARM, maxAMD int, w float64, keepARM, keepAMD func(hwsim.Config) bool) ([]Point, error) {
	var out []Point
	err := s.EnumerateFilteredFunc(maxARM, maxAMD, w, keepARM, keepAMD, func(p Point) bool {
		out = append(out, p)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EnumerateFilteredFunc streams the filtered sub-space to yield in
// EnumerateFiltered's order without materializing it; yield returning
// false stops the walk early. The per-node keep predicates are applied
// once to the configuration lists, not once per point.
func (s Space) EnumerateFilteredFunc(maxARM, maxAMD int, w float64, keepARM, keepAMD func(hwsim.Config) bool, yield func(Point) bool) error {
	if maxARM < 0 || maxAMD < 0 || maxARM+maxAMD == 0 {
		return fmt.Errorf("cluster: invalid space %dx%d", maxARM, maxAMD)
	}
	if err := validWork(w); err != nil {
		return err
	}
	filter := func(cfgs []hwsim.Config, keep func(hwsim.Config) bool) []hwsim.Config {
		if keep == nil {
			return cfgs
		}
		out := make([]hwsim.Config, 0, len(cfgs))
		for _, c := range cfgs {
			if keep(c) {
				out = append(out, c)
			}
		}
		return out
	}
	var cfgARM, cfgAMD []hwsim.Config
	if maxARM > 0 {
		cfgARM = filter(hwsim.Configs(s.ARM.Spec), keepARM)
	}
	if maxAMD > 0 {
		cfgAMD = filter(hwsim.Configs(s.AMD.Spec), keepAMD)
	}
	kt, err := s.kernels(maxARM, maxAMD, cfgARM, cfgAMD)
	if err != nil {
		return err
	}
	if kt.size(maxARM, maxAMD) == 0 {
		return fmt.Errorf("cluster: filter removed every configuration")
	}
	kt.forEachPoint(maxARM, maxAMD, w, yield)
	return nil
}

// EnumerateMix evaluates all per-node settings for one fixed node-count
// mix (nARM, nAMD), the inner loop of the Figure 6-9 analyses.
func (s Space) EnumerateMix(nARM, nAMD int, w float64) ([]Point, error) {
	if nARM < 0 || nAMD < 0 || nARM+nAMD == 0 {
		return nil, fmt.Errorf("cluster: invalid mix %d:%d", nARM, nAMD)
	}
	if err := validWork(w); err != nil {
		return nil, err
	}
	kt, err := s.kernels(nARM, nAMD, nil, nil)
	if err != nil {
		return nil, err
	}
	armK := []kernelEntry{{}}
	if nARM > 0 {
		armK = kt.arm
	}
	amdK := []kernelEntry{{}}
	if nAMD > 0 {
		amdK = kt.amd
	}
	out := make([]Point, 0, len(armK)*len(amdK))
	for _, a := range armK {
		for _, d := range amdK {
			out = append(out, kt.point(nARM, nAMD, a, d, w))
		}
	}
	return out, nil
}
