package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic dataset is 32/7.
	if got := Variance(xs); !close(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !close(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of one sample = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %v, want +Inf", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Errorf("Max(nil) = %v, want -Inf", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !close(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil) should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if got, _ := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-sample percentile = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v, %v; want 5", got, err)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 2x + 1, a perfect line: slope 2, intercept 1, R2 = 1.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(fit.Slope, 2, 1e-12) || !close(fit.Intercept, 1, 1e-12) || !close(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1 R2 1", fit)
	}
	if got := fit.At(10); !close(got, 21, 1e-12) {
		t.Errorf("At(10) = %v, want 21", got)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	// A noisy but strongly linear relation, like SPImem vs frequency in
	// Figure 3, should yield r^2 >= 0.94.
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for f := 0.2; f <= 2.2; f += 0.1 {
		xs = append(xs, f)
		ys = append(ys, 3*f+0.5+rng.NormFloat64()*0.1)
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.94 {
		t.Errorf("R2 = %v, want >= 0.94", fit.R2)
	}
	if fit.Slope < 2.5 || fit.Slope > 3.5 {
		t.Errorf("slope = %v, want near 3", fit.Slope)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("one point should error")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero x-variance should error")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 4 || fit.R2 != 1 {
		t.Errorf("constant fit = %+v", fit)
	}
}

// Residuals of an OLS fit are orthogonal to the regressor: sum(r) = 0 and
// sum(r*x) = 0. This is the defining property of least squares.
func TestLinearFitResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = rng.NormFloat64() * 5
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		sumR, sumRX := 0.0, 0.0
		for i := range xs {
			r := ys[i] - fit.At(xs[i])
			sumR += r
			sumRX += r * xs[i]
		}
		return math.Abs(sumR) < 1e-8 && math.Abs(sumRX) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r, err := Pearson(xs, []float64{2, 4, 6, 8}); err != nil || !close(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation: r = %v, err = %v", r, err)
	}
	if r, err := Pearson(xs, []float64{8, 6, 4, 2}); err != nil || !close(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation: r = %v, err = %v", r, err)
	}
	if _, err := Pearson(xs, []float64{5, 5, 5, 5}); err == nil {
		t.Error("zero variance should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("one point should error")
	}
}

// Pearson r^2 equals the R2 of the univariate OLS fit.
func TestPearsonMatchesR2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = 2*xs[i] + rng.NormFloat64()
		}
		fit, err1 := LinearFit(xs, ys)
		r, err2 := Pearson(xs, ys)
		if err1 != nil || err2 != nil {
			return true
		}
		return close(fit.R2, r*r, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); !close(got, 10, 1e-12) {
		t.Errorf("RelativeError = %v, want 10", got)
	}
	if got := RelativeError(90, 100); !close(got, 10, 1e-12) {
		t.Errorf("RelativeError = %v, want 10", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("0/0 error = %v, want 0", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("x/0 error = %v, want +Inf", got)
	}
}

func TestSummarizeErrors(t *testing.T) {
	pred := []float64{110, 95, 100}
	meas := []float64{100, 100, 100}
	s, err := SummarizeErrors(pred, meas)
	if err != nil {
		t.Fatal(err)
	}
	if !close(s.Mean, 5, 1e-12) {
		t.Errorf("mean error = %v, want 5", s.Mean)
	}
	if s.Count != 3 {
		t.Errorf("count = %d, want 3", s.Count)
	}
	if _, err := SummarizeErrors([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := SummarizeErrors([]float64{1}, []float64{0}); err != ErrInsufficientData {
		t.Errorf("all-zero measured should give ErrInsufficientData, got %v", err)
	}
}

// Degenerate inputs to the fitting functions must answer typed errors,
// never NaN/Inf coefficients — an online refit that trusted a NaN slope
// would poison every downstream prediction.
func TestFitsRejectDegenerateInputsTyped(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := [][2][]float64{
		{{1, 1, 1, 1}, {1, 2, 3, 4}}, // constant x
		{{1, nan, 3}, {1, 2, 3}},     // NaN in x
		{{1, 2, 3}, {1, inf, 3}},     // Inf in y
		{{nan, nan}, {nan, nan}},     // all NaN
	}
	for i, pair := range bad {
		if _, err := LinearFit(pair[0], pair[1]); !errors.Is(err, ErrDegenerate) {
			t.Errorf("LinearFit case %d: err = %v, want ErrDegenerate", i, err)
		}
		if _, err := Pearson(pair[0], pair[1]); !errors.Is(err, ErrDegenerate) {
			t.Errorf("Pearson case %d: err = %v, want ErrDegenerate", i, err)
		}
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("LinearFit len<2: err = %v, want ErrInsufficientData", err)
	}
	if _, err := ProportionalFit([]float64{0, 0}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Error("ProportionalFit all-zero x should be ErrDegenerate")
	}
	if _, err := ProportionalFit([]float64{1, nan}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Error("ProportionalFit NaN x should be ErrDegenerate")
	}
	if _, err := ProportionalFit([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Error("ProportionalFit len<2 should be ErrInsufficientData")
	}
}

func TestProportionalFit(t *testing.T) {
	// Exact scale: y = 1.5x recovers slope 1.5 with R2 = 1.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1.5, 3, 4.5, 6}
	fit, err := ProportionalFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(fit.Slope, 1.5, 1e-12) || fit.Intercept != 0 || !close(fit.R2, 1, 1e-12) {
		t.Errorf("exact scale fit = %+v", fit)
	}
	// The through-origin normal equation: slope = sum(xy)/sum(x^2),
	// residuals orthogonal to x.
	xs2 := []float64{1, 2, 3, 4, 5}
	ys2 := []float64{1.1, 2.3, 2.7, 4.4, 4.8}
	fit2, err := ProportionalFit(xs2, ys2)
	if err != nil {
		t.Fatal(err)
	}
	sumRX := 0.0
	for i := range xs2 {
		sumRX += (ys2[i] - fit2.Slope*xs2[i]) * xs2[i]
	}
	if math.Abs(sumRX) > 1e-9 {
		t.Errorf("residuals not orthogonal to x: %v", sumRX)
	}
}
