// Package stats implements the small statistics toolkit the reproduction
// needs: descriptive statistics for the validation error tables (Tables 3
// and 4), ordinary least-squares regression and Pearson correlation for the
// SPImem-versus-frequency fit (Figure 3), and percentile helpers for
// summarizing distributions of configuration energies.
//
// Everything is implemented from scratch on float64 slices; no third-party
// numeric libraries are used.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an operation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// ErrDegenerate is returned when a fit cannot be computed from the given
// series even though enough samples were provided: constant x (zero
// variance) or non-finite values. Callers that refit models online must
// be able to distinguish "the data cannot support a fit" from a numeric
// accident, so these cases are typed errors rather than NaN/Inf slopes.
var ErrDegenerate = errors.New("stats: degenerate input")

// allFinite reports whether every element of xs is a finite float64.
func allFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns an error for an
// empty slice or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Linear holds the result of an ordinary least-squares fit y = Slope*x +
// Intercept, together with the coefficient of determination R2. The paper
// uses this fit for SPImem over core frequency, reporting r^2 >= 0.94.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// At evaluates the fitted line at x.
func (l Linear) At(x float64) float64 { return l.Slope*x + l.Intercept }

// LinearFit computes the ordinary least-squares regression of ys on xs.
// It requires at least two points, finite inputs, and non-zero variance
// in xs; violations answer a typed error (ErrInsufficientData or
// ErrDegenerate), never a NaN/Inf slope.
func LinearFit(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	if !allFinite(xs) || !allFinite(ys) {
		return Linear{}, fmt.Errorf("%w: non-finite sample", ErrDegenerate)
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy := 0.0, 0.0
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return Linear{}, fmt.Errorf("%w: zero variance in x", ErrDegenerate)
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	// R^2 = 1 - SSres/SStot. A constant y vector fits perfectly.
	ssTot, ssRes := 0.0, 0.0
	for i := range xs {
		dy := ys[i] - my
		ssTot += dy * dy
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Linear{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Pearson returns the Pearson product-moment correlation coefficient of
// xs and ys. It requires at least two points, finite inputs, and
// non-zero variance in both variables; violations answer a typed error
// (ErrInsufficientData or ErrDegenerate), never NaN.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	if !allFinite(xs) || !allFinite(ys) {
		return 0, fmt.Errorf("%w: non-finite sample", ErrDegenerate)
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, syy, sxy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("%w: zero variance", ErrDegenerate)
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ProportionalFit computes the least-squares through-origin fit
// y = Slope*x (Intercept forced to 0): Slope = Σxy/Σx². It is the
// natural estimator for online recalibration, where an observed series
// is modeled as a pure scale of a predicted one (T_obs ≈ s·T_pred,
// E_obs ≈ s·E_pred — every term of the paper's energy model is linear
// in the power levels, so a scale on E is exact). R2 is reported
// against the mean of ys as usual. Degenerate inputs (all-zero x,
// non-finite values, fewer than two points) answer typed errors.
func ProportionalFit(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	if !allFinite(xs) || !allFinite(ys) {
		return Linear{}, fmt.Errorf("%w: non-finite sample", ErrDegenerate)
	}
	sxx, sxy := 0.0, 0.0
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx == 0 {
		return Linear{}, fmt.Errorf("%w: all-zero x", ErrDegenerate)
	}
	slope := sxy / sxx
	if math.IsNaN(slope) || math.IsInf(slope, 0) {
		return Linear{}, fmt.Errorf("%w: overflow in through-origin fit", ErrDegenerate)
	}
	my := Mean(ys)
	ssTot, ssRes := 0.0, 0.0
	for i := range xs {
		dy := ys[i] - my
		ssTot += dy * dy
		r := ys[i] - slope*xs[i]
		ssRes += r * r
	}
	r2 := 0.0
	switch {
	case ssTot > 0:
		r2 = 1 - ssRes/ssTot
	case ssRes == 0:
		r2 = 1
	}
	return Linear{Slope: slope, R2: r2}, nil
}

// RelativeError returns |predicted-measured|/|measured| expressed as a
// percentage, the error metric of Tables 3 and 4. A zero measured value
// with a non-zero prediction yields +Inf.
func RelativeError(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-measured) / math.Abs(measured) * 100
}

// ErrorSummary aggregates relative errors the way Table 3 reports them:
// mean and standard deviation, in percent.
type ErrorSummary struct {
	Mean   float64
	StdDev float64
	Count  int
}

// SummarizeErrors computes the ErrorSummary of paired predictions and
// measurements. Pairs with zero measured values are skipped.
func SummarizeErrors(predicted, measured []float64) (ErrorSummary, error) {
	if len(predicted) != len(measured) {
		return ErrorSummary{}, errors.New("stats: mismatched sample lengths")
	}
	var errs []float64
	for i := range predicted {
		if measured[i] == 0 {
			continue
		}
		errs = append(errs, RelativeError(predicted[i], measured[i]))
	}
	if len(errs) == 0 {
		return ErrorSummary{}, ErrInsufficientData
	}
	return ErrorSummary{Mean: Mean(errs), StdDev: StdDev(errs), Count: len(errs)}, nil
}
