package workloads

import (
	"errors"
	"fmt"
	"math/rand"
)

// This file extends the memslap-like load generator beyond the paper's
// setup. The paper notes that its memslap configuration "generates
// requests with fixed key-value size and uniform popularity" and points
// at Atikoglu et al.'s SIGMETRICS 2012 study for realistic
// characteristics; that study found strongly skewed (Zipf-like) key
// popularity. MemslapOptions exposes both distributions so experiments
// can quantify what uniformity hides: under skew, the LRU working set
// shrinks and hit rates rise for the same store size.

// KeyDistribution selects how the generator draws keys.
type KeyDistribution int

// Key distributions.
const (
	// KeysUniform matches the paper's memslap configuration.
	KeysUniform KeyDistribution = iota
	// KeysZipf draws keys with Zipf(s=1.01) popularity, approximating
	// the skew measured in production key-value traces.
	KeysZipf
)

// String names the distribution.
func (d KeyDistribution) String() string {
	switch d {
	case KeysUniform:
		return "uniform"
	case KeysZipf:
		return "zipf"
	default:
		return fmt.Sprintf("keydist(%d)", int(d))
	}
}

// MemslapOptions parameterizes a load-generation run.
type MemslapOptions struct {
	// Operations is the number of requests to issue.
	Operations int
	// KeySpace is the number of distinct keys; zero derives it from the
	// operation count as the default kernel does.
	KeySpace int
	// Distribution selects key popularity.
	Distribution KeyDistribution
	// SetFraction and DeleteFraction override the memslap defaults when
	// positive (9:1 GET:SET, 1% DELETE).
	SetFraction    float64
	DeleteFraction float64
	// StoreBytes caps the store; zero uses the kernel default.
	StoreBytes int
	// Seed drives the run.
	Seed int64
}

// MemslapStats reports a run's outcome.
type MemslapStats struct {
	Gets, GetHits  int
	Sets           int
	Deletes        int
	DeleteHits     int
	Items          int
	Evictions      int
	HitRate        float64
	DistinctKeyQty int
}

// RunMemslap drives the key-value store under the configured load and
// returns the observed statistics.
func RunMemslap(opts MemslapOptions) (MemslapStats, error) {
	if opts.Operations <= 0 {
		return MemslapStats{}, errors.New("workloads: memslap requires a positive operation count")
	}
	keySpace := opts.KeySpace
	if keySpace <= 0 {
		keySpace = opts.Operations / 4
		if keySpace < 64 {
			keySpace = 64
		}
	}
	setFrac := opts.SetFraction
	if setFrac <= 0 {
		setFrac = mcSetFraction
	}
	delFrac := opts.DeleteFraction
	if delFrac <= 0 {
		delFrac = mcDelFraction
	}
	if setFrac+delFrac >= 1 {
		return MemslapStats{}, fmt.Errorf("workloads: set+delete fractions %v too large", setFrac+delFrac)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var nextKey func() int
	switch opts.Distribution {
	case KeysUniform:
		nextKey = func() int { return rng.Intn(keySpace) }
	case KeysZipf:
		z := rand.NewZipf(rng, 1.01, 1, uint64(keySpace-1))
		if z == nil {
			return MemslapStats{}, errors.New("workloads: invalid zipf parameters")
		}
		nextKey = func() int { return int(z.Uint64()) }
	default:
		return MemslapStats{}, fmt.Errorf("workloads: unknown key distribution %d", int(opts.Distribution))
	}

	store := NewKVStore(opts.StoreBytes)
	value := make([]byte, mcValueSize)
	seen := make(map[int]bool)
	var st MemslapStats
	for i := 0; i < opts.Operations; i++ {
		ki := nextKey()
		seen[ki] = true
		k := mcKey(ki)
		switch p := rng.Float64(); {
		case p < delFrac:
			st.Deletes++
			if store.Delete(k) {
				st.DeleteHits++
			}
		case p < delFrac+setFrac:
			st.Sets++
			store.Set(k, append([]byte(nil), value...))
		default:
			st.Gets++
			if _, ok := store.Get(k); ok {
				st.GetHits++
			}
		}
	}
	st.Items = store.Len()
	st.Evictions = store.Evictions()
	st.DistinctKeyQty = len(seen)
	if st.Gets > 0 {
		st.HitRate = float64(st.GetHits) / float64(st.Gets)
	}
	return st, nil
}
