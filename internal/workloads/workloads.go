// Package workloads implements the six datacenter programs the paper uses
// for validation and analysis (Table 3):
//
//	EP            NAS Parallel Benchmarks embarrassingly-parallel kernel
//	memcached     in-memory key-value store driven by a memslap-like client
//	x264          streaming-video encoder kernel (DCT + motion estimation)
//	blackscholes  PARSEC option-pricing kernel (closed-form Black-Scholes)
//	julius        speech-recognition kernel (HMM Viterbi decoding)
//	rsa2048       openssl speed-style RSA-2048 signature verification
//
// Each workload has two faces:
//
//   - a native Go kernel that really performs the computation (used by the
//     examples and by tests that verify the kernels compute correct
//     results), and
//
//   - a trace.Demand describing its representative parallel phase Ps: the
//     per-work-unit service demand on cores, memory and the network I/O
//     device. The Demand constants are calibrated against the paper's
//     measurements (Table 5 performance-to-power ratios, Figure 2 WPI and
//     SPIcore bands, Figure 3 SPImem behaviour); each constant's
//     derivation is documented in demands.go.
//
// The package also provides the two micro-benchmarks used for power
// characterization (paper §II-D2): a CPU-saturating kernel and a
// cache-miss stream that maximizes stall cycles.
package workloads

import (
	"fmt"
	"sort"

	"heteromix/internal/trace"
)

// Bottleneck is the dominant resource of a workload, the "Bottleneck"
// column of Table 3.
type Bottleneck int

// Bottleneck kinds.
const (
	BottleneckCPU Bottleneck = iota
	BottleneckMemory
	BottleneckIO
)

// String names the bottleneck as Table 3 does.
func (b Bottleneck) String() string {
	switch b {
	case BottleneckCPU:
		return "CPU"
	case BottleneckMemory:
		return "Memory"
	case BottleneckIO:
		return "I/O"
	default:
		return fmt.Sprintf("bottleneck(%d)", int(b))
	}
}

// Kernel is a runnable native implementation of a workload. Run executes
// n work units and returns a Result whose checksum lets tests verify the
// computation; kernels are deterministic for a given (n, seed).
type Kernel interface {
	// Run executes n work units with the given seed.
	Run(n int, seed int64) (Result, error)
}

// Result summarizes a native kernel run.
type Result struct {
	// Units is the number of work units actually completed.
	Units int
	// Checksum is a workload-specific value that depends on every work
	// unit's output (counts for EP, summed prices for blackscholes, ...).
	Checksum float64
	// Detail is an optional human-readable summary line.
	Detail string
}

// Spec bundles everything the reproduction knows about one workload.
type Spec struct {
	// Domain is the application domain, as in Table 3 ("HPC", ...).
	Domain string
	// Demand is the calibrated per-work-unit service demand.
	Demand trace.Demand
	// Bottleneck is the dominant resource (Table 3).
	Bottleneck Bottleneck
	// ValidationUnits is the problem size of the Table 3 validation runs.
	ValidationUnits float64
	// AnalysisUnits is the job size of the §IV energy-efficiency analysis
	// (50 million random numbers for EP, 50,000 requests for memcached).
	AnalysisUnits float64
	// PPRUnit names the Table 5 performance-to-power metric.
	PPRUnit string
	// Kernel runs the workload natively.
	Kernel Kernel
}

// Name returns the workload name (from its Demand).
func (s Spec) Name() string { return s.Demand.Name }

// Validate checks the Spec invariants.
func (s Spec) Validate() error {
	if err := s.Demand.Validate(); err != nil {
		return err
	}
	if s.Domain == "" {
		return fmt.Errorf("workloads: %q has empty domain", s.Name())
	}
	if s.ValidationUnits <= 0 || s.AnalysisUnits <= 0 {
		return fmt.Errorf("workloads: %q has non-positive problem sizes", s.Name())
	}
	if s.PPRUnit == "" {
		return fmt.Errorf("workloads: %q has empty PPR unit", s.Name())
	}
	if s.Kernel == nil {
		return fmt.Errorf("workloads: %q has no kernel", s.Name())
	}
	return nil
}

// registry of all workloads, populated by demands.go.
var registry = map[string]Spec{}

func register(s Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[s.Name()]; dup {
		panic("workloads: duplicate registration of " + s.Name())
	}
	registry[s.Name()] = s
}

// All returns every registered workload, sorted by name.
func All() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ByName looks up a workload.
func ByName(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return s, nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
