package workloads

import (
	"strings"
	"testing"

	"heteromix/internal/isa"
	"heteromix/internal/trace"
)

func TestRegistryHasAllSixWorkloads(t *testing.T) {
	want := []string{"blackscholes", "ep", "julius", "memcached", "rsa2048", "x264"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ep")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "ep" || s.Domain != "HPC" {
		t.Errorf("ByName(ep) = %+v", s)
	}
	if _, err := ByName("fortran"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestBottleneckString(t *testing.T) {
	cases := map[Bottleneck]string{
		BottleneckCPU:    "CPU",
		BottleneckMemory: "Memory",
		BottleneckIO:     "I/O",
		Bottleneck(9):    "bottleneck(9)",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("Bottleneck(%d).String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestTable3ProblemSizes(t *testing.T) {
	// The validation problem sizes must match Table 3 of the paper.
	want := map[string]float64{
		"ep":           2147483648,
		"memcached":    600000,
		"x264":         600,
		"blackscholes": 500000,
		"julius":       2310559,
		"rsa2048":      5000,
	}
	for name, units := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.ValidationUnits != units {
			t.Errorf("%s validation units = %v, want %v", name, s.ValidationUnits, units)
		}
	}
}

func TestTable3Bottlenecks(t *testing.T) {
	want := map[string]Bottleneck{
		"ep":           BottleneckCPU,
		"memcached":    BottleneckIO,
		"x264":         BottleneckMemory,
		"blackscholes": BottleneckCPU,
		"julius":       BottleneckCPU,
		"rsa2048":      BottleneckCPU,
	}
	for name, b := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Bottleneck != b {
			t.Errorf("%s bottleneck = %v, want %v", name, s.Bottleneck, b)
		}
	}
}

// ARMv7-A needs at least as many instructions per work unit as x86_64 for
// every workload (RISC vs CISC density), and substantially more for RSA
// (32-bit vs 64-bit multiplies).
func TestISAInstructionDensity(t *testing.T) {
	for _, s := range All() {
		arm := s.Demand.Translation[isa.ARMv7A].PerUnit
		amd := s.Demand.Translation[isa.X8664].PerUnit
		if arm < amd*0.8 {
			t.Errorf("%s: ARM PerUnit %v unexpectedly below x86 %v", s.Name(), arm, amd)
		}
	}
	rsa, _ := ByName("rsa2048")
	ratio := rsa.Demand.Translation[isa.ARMv7A].PerUnit / rsa.Demand.Translation[isa.X8664].PerUnit
	if ratio < 2 {
		t.Errorf("rsa2048 ARM/AMD instruction ratio = %v, want >= 2 (wide-multiply synthesis)", ratio)
	}
}

func TestIOWorkloadsDeclareBytes(t *testing.T) {
	mc, _ := ByName("memcached")
	if mc.Demand.IO != trace.IORequestResponse {
		t.Errorf("memcached IO pattern = %v", mc.Demand.IO)
	}
	if mc.Demand.IOBytesPerUnit != 1024 {
		t.Errorf("memcached bytes/request = %v, want 1024 (memslap fixed size)", mc.Demand.IOBytesPerUnit)
	}
	ep, _ := ByName("ep")
	if ep.Demand.IO != trace.IONone || ep.Demand.IOBytesPerUnit != 0 {
		t.Errorf("ep should have no IO, got %v/%v", ep.Demand.IO, ep.Demand.IOBytesPerUnit)
	}
}

func TestMicroBenchmarks(t *testing.T) {
	cpu := MicroCPUMax()
	if err := cpu.Validate(); err != nil {
		t.Errorf("cpumax: %v", err)
	}
	if cpu.Demand.DRAMMissesPerKiloInstr[isa.ARMv7A] != 0 {
		t.Error("cpumax should not miss to DRAM")
	}
	stall := MicroStallStream()
	if err := stall.Validate(); err != nil {
		t.Errorf("stallstream: %v", err)
	}
	if stall.Demand.DRAMMissesPerKiloInstr[isa.ARMv7A] < 20 {
		t.Error("stallstream should miss heavily to DRAM")
	}
	// Micro-benchmarks must not pollute the Table 3 registry.
	if _, err := ByName("micro-cpumax"); err == nil {
		t.Error("micro benchmarks should not be registered")
	}
}

// Every kernel must run, be deterministic for a fixed seed, vary with the
// seed, and reject non-positive counts.
func TestKernelContract(t *testing.T) {
	sizes := map[string]int{
		"ep":           20000,
		"memcached":    5000,
		"x264":         2,
		"blackscholes": 2000,
		"julius":       juliusFrameLen * 4,
		"rsa2048":      4,
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			n := sizes[s.Name()]
			if n == 0 {
				t.Fatalf("no test size for %s", s.Name())
			}
			r1, err := s.Kernel.Run(n, 1)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if r1.Units != n {
				t.Errorf("units = %d, want %d", r1.Units, n)
			}
			if r1.Detail == "" {
				t.Error("detail should not be empty")
			}
			r2, err := s.Kernel.Run(n, 1)
			if err != nil {
				t.Fatalf("rerun: %v", err)
			}
			if r1.Checksum != r2.Checksum {
				t.Errorf("kernel not deterministic: %v vs %v", r1.Checksum, r2.Checksum)
			}
			if s.Name() != "rsa2048" { // rsa checksum is a success count, seed-invariant
				r3, err := s.Kernel.Run(n, 2)
				if err != nil {
					t.Fatalf("seeded rerun: %v", err)
				}
				if r1.Checksum == r3.Checksum {
					t.Errorf("checksum should vary with seed, got %v twice", r1.Checksum)
				}
			}
			if _, err := s.Kernel.Run(0, 1); err == nil {
				t.Error("zero units should error")
			}
			if _, err := s.Kernel.Run(-1, 1); err == nil {
				t.Error("negative units should error")
			}
		})
	}
}

func TestMicroKernelsRun(t *testing.T) {
	for _, s := range []Spec{MicroCPUMax(), MicroStallStream()} {
		r, err := s.Kernel.Run(10000, 3)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if r.Units != 10000 {
			t.Errorf("%s units = %d", s.Name(), r.Units)
		}
		if _, err := s.Kernel.Run(0, 3); err == nil {
			t.Errorf("%s: zero units should error", s.Name())
		}
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	good, _ := ByName("ep")
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty domain", func(s *Spec) { s.Domain = "" }},
		{"zero validation units", func(s *Spec) { s.ValidationUnits = 0 }},
		{"zero analysis units", func(s *Spec) { s.AnalysisUnits = 0 }},
		{"empty ppr unit", func(s *Spec) { s.PPRUnit = "" }},
		{"nil kernel", func(s *Spec) { s.Kernel = nil }},
	}
	for _, c := range cases {
		s := good
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	s, _ := ByName("ep")
	register(s)
}

func TestDetailMentionsUnits(t *testing.T) {
	// Spot-check that kernels report meaningful details.
	s, _ := ByName("memcached")
	r, err := s.Kernel.Run(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"gets=", "hits=", "sets=", "evicted="} {
		if !strings.Contains(r.Detail, field) {
			t.Errorf("memcached detail missing %q: %s", field, r.Detail)
		}
	}
}
