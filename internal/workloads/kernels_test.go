package workloads

import (
	"math"
	"testing"
	"testing/quick"
)

// --- EP ---

func TestEPRNGPeriodAndRange(t *testing.T) {
	rng := newEPRNG(271828183)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		v := rng.next()
		if v <= 0 || v >= 1 {
			t.Fatalf("deviate %v out of (0,1)", v)
		}
		if seen[rng.state] {
			t.Fatalf("state repeated after %d draws", i)
		}
		seen[rng.state] = true
	}
}

func TestEPRNGZeroSeedUsesDefault(t *testing.T) {
	a := newEPRNG(0)
	b := newEPRNG(271828183)
	if a.next() != b.next() {
		t.Error("zero seed should fall back to the NAS default seed")
	}
}

func TestEPRNGMatchesModularArithmetic(t *testing.T) {
	// The masked 64-bit multiply must equal true multiplication mod 2^46.
	// Verified against big-integer arithmetic on small cases via the
	// identity (a*x mod 2^64) mod 2^46 == a*x mod 2^46 since 2^46 | 2^64.
	rng := newEPRNG(31415)
	x := uint64(31415)
	for i := 0; i < 1000; i++ {
		hi, lo := mul128(x, epMultiplier)
		_ = hi // bits above 2^64 can never reach bit positions < 46
		want := lo & epModMask
		rng2 := epRNG{state: x}
		rng2.state = (rng2.state * epMultiplier) & epModMask
		if rng2.state != want {
			t.Fatalf("state mismatch at step %d", i)
		}
		x = want
		rng.next()
	}
}

// mul128 computes the 128-bit product of a and b without math/bits, for
// the verification test above.
func mul128(a, b uint64) (hi, lo uint64) {
	aLo, aHi := a&0xffffffff, a>>32
	bLo, bHi := b&0xffffffff, b>>32
	t := aLo * bLo
	lo = t & 0xffffffff
	carry := t >> 32
	t = aHi*bLo + carry
	t2 := aLo*bHi + (t & 0xffffffff)
	lo |= t2 << 32
	hi = aHi*bHi + (t >> 32) + (t2 >> 32)
	return hi, lo
}

func TestEPGaussianStatistics(t *testing.T) {
	// Accepted pairs transformed by the polar method should be standard
	// normal: acceptance ratio ~ pi/4, tallies concentrated in annulus 0.
	counts, err := EPAnnulusCounts(200000, 271828183)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	acceptance := float64(total) / 100000
	if math.Abs(acceptance-math.Pi/4) > 0.02 {
		t.Errorf("acceptance ratio = %v, want ~pi/4", acceptance)
	}
	// ~68% of |N(0,1)| pairs have max(|x|,|y|) < 1... empirically the
	// first annulus dominates and tallies decay monotonically.
	if counts[0] <= counts[1] || counts[1] <= counts[2] {
		t.Errorf("annulus counts should decay: %v", counts)
	}
}

func TestEPOddCountConsumesTrailingNumber(t *testing.T) {
	r1, err := (epKernel{}).Run(101, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := (epKernel{}).Run(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 101 numbers = 50 pairs + 1 consumed: same pairs as 100 numbers.
	if r1.Checksum != r2.Checksum {
		t.Errorf("odd trailing number changed pair results: %v vs %v", r1.Checksum, r2.Checksum)
	}
	if r1.Units != 101 {
		t.Errorf("units = %d, want 101", r1.Units)
	}
}

// --- memcached ---

func TestKVStoreBasicOps(t *testing.T) {
	st := NewKVStore(1 << 20)
	if _, ok := st.Get("missing"); ok {
		t.Error("empty store should miss")
	}
	st.Set("a", []byte("1"))
	if v, ok := st.Get("a"); !ok || string(v) != "1" {
		t.Errorf("Get(a) = %q, %v", v, ok)
	}
	st.Set("a", []byte("22"))
	if v, _ := st.Get("a"); string(v) != "22" {
		t.Errorf("overwrite failed: %q", v)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	if !st.Delete("a") {
		t.Error("delete of present key should return true")
	}
	if st.Delete("a") {
		t.Error("delete of absent key should return false")
	}
	if st.Len() != 0 {
		t.Errorf("Len after delete = %d", st.Len())
	}
}

func TestKVStoreLRUEviction(t *testing.T) {
	// Capacity for ~4 items per shard; keys crafted to share load.
	st := NewKVStore(mcShards * 4 * (mcKeySize + mcValueSize))
	val := make([]byte, mcValueSize)
	for i := 0; i < mcShards*32; i++ {
		st.Set(mcKey(i), val)
	}
	if st.Evictions() == 0 {
		t.Error("overfilled store should have evicted")
	}
	// Stored bytes never exceed capacity.
	for _, sh := range st.shards {
		sh.mu.Lock()
		if sh.bytes > sh.capBytes {
			t.Errorf("shard over capacity: %d > %d", sh.bytes, sh.capBytes)
		}
		sh.mu.Unlock()
	}
}

func TestKVStoreLRUOrdering(t *testing.T) {
	// A store with room for exactly 2 items in one shard evicts the
	// least-recently-USED, not least-recently-set.
	sh := newShard(2 * (1 + 1))
	sh.set("a", []byte("x"))
	sh.set("b", []byte("y"))
	sh.get("a") // a is now MRU
	sh.set("c", []byte("z"))
	if _, ok := sh.get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := sh.get("a"); !ok {
		t.Error("a was recently used and should survive")
	}
}

func TestKVStoreConcurrency(t *testing.T) {
	st := NewKVStore(1 << 20)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 1000; i++ {
				k := mcKey(i % 100)
				switch i % 3 {
				case 0:
					st.Set(k, []byte{byte(g)})
				case 1:
					st.Get(k)
				default:
					st.Delete(k)
				}
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestMemcachedRunHitRate(t *testing.T) {
	r, err := (memcachedKernel{}).Run(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("a long run should record hits")
	}
}

// --- x264 ---

func TestDCT8DCComponent(t *testing.T) {
	// A constant block has all its energy in the DC coefficient:
	// DC = 8 * value for the orthonormal scaling used here.
	var block [x264Block][x264Block]float64
	for y := range block {
		for x := range block[y] {
			block[y][x] = 10
		}
	}
	dct8(&block)
	if math.Abs(block[0][0]-80) > 1e-9 {
		t.Errorf("DC coefficient = %v, want 80", block[0][0])
	}
	for y := range block {
		for x := range block[y] {
			if y == 0 && x == 0 {
				continue
			}
			if math.Abs(block[y][x]) > 1e-9 {
				t.Errorf("AC coefficient [%d][%d] = %v, want 0", y, x, block[y][x])
			}
		}
	}
}

func TestDCT8ParsevalEnergy(t *testing.T) {
	// The orthonormal 2D DCT preserves signal energy (Parseval).
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		var block [x264Block][x264Block]float64
		inEnergy := 0.0
		for y := range block {
			for x := range block[y] {
				v := float64(rng.next()%512) - 256
				block[y][x] = v
				inEnergy += v * v
			}
		}
		dct8(&block)
		outEnergy := 0.0
		for y := range block {
			for x := range block[y] {
				outEnergy += block[y][x] * block[y][x]
			}
		}
		return math.Abs(inEnergy-outEnergy) <= 1e-6*math.Max(1, inEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMotionSearchFindsExactShift(t *testing.T) {
	// A frame shifted by (2,1) must be found by the motion search with
	// zero SAD in the interior.
	ref := newFrame(64, 64)
	rng := newSplitMix(99)
	for i := range ref.pix {
		ref.pix[i] = uint8(rng.next())
	}
	cur := newFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.pix[y*64+x] = ref.at(x+2, y+1)
		}
	}
	s, dx, dy := motionSearch(cur, ref, 24, 24)
	if s != 0 || dx != 2 || dy != 1 {
		t.Errorf("motion = (%d,%d) sad=%d, want (2,1) sad=0", dx, dy, s)
	}
}

func TestFrameAtClamps(t *testing.T) {
	f := newFrame(4, 4)
	f.pix[0] = 7
	f.pix[15] = 9
	if f.at(-3, -3) != 7 {
		t.Error("negative coordinates should clamp to (0,0)")
	}
	if f.at(100, 100) != 9 {
		t.Error("overflow coordinates should clamp to (w-1,h-1)")
	}
}

func TestEncodeFramesRejectsBadGeometry(t *testing.T) {
	if _, _, err := EncodeFrames(1, 4, 4, 0); err == nil {
		t.Error("sub-block frame should error")
	}
	if _, _, err := EncodeFrames(0, 64, 64, 0); err == nil {
		t.Error("zero frames should error")
	}
}

// --- blackscholes ---

func TestCNDFProperties(t *testing.T) {
	if math.Abs(cndf(0)-0.5) > 1e-7 {
		t.Errorf("cndf(0) = %v, want 0.5", cndf(0))
	}
	if cndf(6) < 0.999999 {
		t.Errorf("cndf(6) = %v, want ~1", cndf(6))
	}
	if cndf(-6) > 1e-6 {
		t.Errorf("cndf(-6) = %v, want ~0", cndf(-6))
	}
	// Symmetry: N(-x) = 1 - N(x).
	for _, x := range []float64{0.3, 1.1, 2.7} {
		if math.Abs(cndf(-x)-(1-cndf(x))) > 1e-7 {
			t.Errorf("cndf symmetry violated at %v", x)
		}
	}
	// Monotonicity.
	prev := cndf(-4)
	for x := -3.9; x < 4; x += 0.1 {
		cur := cndf(x)
		if cur < prev {
			t.Fatalf("cndf not monotone at %v", x)
		}
		prev = cur
	}
}

func TestBlackScholesKnownValue(t *testing.T) {
	// Standard textbook case: S=100, K=100, r=5%, sigma=20%, T=1.
	// Call = 10.4506, Put = 5.5735 (to the cndf approximation's accuracy).
	call := Option{Spot: 100, Strike: 100, Rate: 0.05, Volatility: 0.2, Expiry: 1, Call: true}
	put := call
	put.Call = false
	if got := call.Price(); math.Abs(got-10.4506) > 0.001 {
		t.Errorf("call price = %v, want 10.4506", got)
	}
	if got := put.Price(); math.Abs(got-5.5735) > 0.001 {
		t.Errorf("put price = %v, want 5.5735", got)
	}
}

func TestPutCallParity(t *testing.T) {
	// C - P = S - K*exp(-rT) for all parameter draws.
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		o := Option{
			Spot:       50 + float64(rng.next()%10000)/100,
			Strike:     50 + float64(rng.next()%10000)/100,
			Rate:       0.01 + float64(rng.next()%9)/100,
			Volatility: 0.05 + float64(rng.next()%60)/100,
			Expiry:     0.1 + float64(rng.next()%290)/100,
			Call:       true,
		}
		put := o
		put.Call = false
		lhs := o.Price() - put.Price()
		rhs := o.Spot - o.Strike*math.Exp(-o.Rate*o.Expiry)
		return math.Abs(lhs-rhs) < 1e-4*math.Max(1, math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCallPriceBounds(t *testing.T) {
	// max(S - K*exp(-rT), 0) <= C <= S for any option.
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		o := Option{
			Spot:       50 + float64(rng.next()%10000)/100,
			Strike:     50 + float64(rng.next()%10000)/100,
			Rate:       0.01 + float64(rng.next()%9)/100,
			Volatility: 0.05 + float64(rng.next()%60)/100,
			Expiry:     0.1 + float64(rng.next()%290)/100,
			Call:       true,
		}
		c := o.Price()
		intrinsic := math.Max(o.Spot-o.Strike*math.Exp(-o.Rate*o.Expiry), 0)
		return c >= intrinsic-1e-4 && c <= o.Spot+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- julius ---

func TestViterbiPrefersMatchingStates(t *testing.T) {
	rng := newSplitMix(1)
	_ = rng
	m := newHMM(newJuliusRand())
	// Features exactly at state 10's means decode to a high-numbered
	// state after enough frames.
	var f [juliusChannels]float64
	copy(f[:], m.means[10][:])
	frames := make([][juliusChannels]float64, 30)
	for i := range frames {
		frames[i] = f
	}
	logP, state := viterbiDecode(m, frames)
	if math.IsInf(logP, -1) {
		t.Fatal("decode returned -Inf")
	}
	// Left-to-right model starting at 0 can reach at most state 29; it
	// should climb toward 10 where emissions are likeliest.
	if state < 8 || state > 12 {
		t.Errorf("final state = %d, want near 10", state)
	}
}

func TestViterbiMonotoneInFrameCount(t *testing.T) {
	// Log-probability decreases (more negative) as frames accumulate.
	m := newHMM(newJuliusRand())
	var f [juliusChannels]float64
	copy(f[:], m.means[3][:])
	frames := make([][juliusChannels]float64, 50)
	for i := range frames {
		frames[i] = f
	}
	p10, _ := viterbiDecode(m, frames[:10])
	p50, _ := viterbiDecode(m, frames)
	if p50 >= p10 {
		t.Errorf("logP should decrease with more frames: %v vs %v", p10, p50)
	}
}

func TestJuliusRejectsShortInput(t *testing.T) {
	if _, err := (juliusKernel{}).Run(juliusFrameLen-1, 1); err == nil {
		t.Error("fewer samples than one frame should error")
	}
}

// --- rsa ---

func TestRSAVerifiesAllSignatures(t *testing.T) {
	r, err := (rsaKernel{}).Run(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Checksum = verified count + 0.5 for the rejected corruption.
	if r.Checksum != 8.5 {
		t.Errorf("checksum = %v, want 8.5 (8 ok + corrupted rejected)", r.Checksum)
	}
}

// --- micro kernels ---

func TestShuffledRingIsSingleCycle(t *testing.T) {
	for _, m := range []int{2, 7, 64} {
		ring := shuffledRing(m, 5)
		seen := make([]bool, m)
		pos := 0
		for i := 0; i < m; i++ {
			if seen[pos] {
				t.Fatalf("ring of size %d revisits %d after %d hops", m, pos, i)
			}
			seen[pos] = true
			pos = ring[pos]
		}
		if pos != 0 {
			t.Errorf("ring of size %d does not close after %d hops", m, m)
		}
	}
}

// newJuliusRand gives the HMM constructor a deterministic source.
func newJuliusRand() *juliusRandSource { return &juliusRandSource{state: 12345} }

// juliusRandSource adapts splitMix to the subset of math/rand used by
// newHMM (Float64 only).
type juliusRandSource struct{ state uint64 }

func (s *juliusRandSource) Float64() float64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

func TestIDCT8InvertsDCT8(t *testing.T) {
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		var block, orig [x264Block][x264Block]float64
		for y := range block {
			for x := range block[y] {
				v := float64(rng.next()%512) - 256
				block[y][x] = v
				orig[y][x] = v
			}
		}
		dct8(&block)
		idct8(&block)
		for y := range block {
			for x := range block[y] {
				if math.Abs(block[y][x]-orig[y][x]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReconstructionPSNR(t *testing.T) {
	psnr, err := ReconstructionPSNR(96, 96, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization at step 16 still reconstructs well above 30 dB on the
	// low-energy synthetic residuals.
	if psnr < 30 {
		t.Errorf("reconstruction PSNR = %.1f dB, want >= 30", psnr)
	}
	if math.IsInf(psnr, 1) {
		t.Error("quantized round trip should be lossy (finite PSNR)")
	}
	if _, err := ReconstructionPSNR(4, 4, 1); err == nil {
		t.Error("sub-block frame should error")
	}
}
