package workloads

import (
	"heteromix/internal/isa"
	"heteromix/internal/trace"
	"heteromix/internal/units"
)

// This file holds the calibrated service-demand constants for the six
// workloads. They play the role of the paper's baseline measurements: the
// per-ISA instruction counts I_Ps, the instruction mixes that determine
// WPI, the dependency-stall components SPIcore, the DRAM miss rates that
// produce SPImem, and the network demand per work unit.
//
// Calibration method: with the node micro-architecture and power tables of
// internal/hwsim fixed (Table 1 specs; AMD 45 W idle / ~60 W peak, ARM
// <2 W idle / ~5 W peak, per paper §IV), each workload's constants were
// fitted so the simulated performance-to-power ratios land on Table 5 of
// the paper and the cycle-accounting ratios land in the bands of
// Figures 2 and 3:
//
//	workload      paper PPR (AMD / ARM)        dominant resource
//	ep            1,414,922 / 6,048,057        CPU (int+fp)
//	memcached     2,628     / 5,220            network I/O
//	x264          1         / 0.7              memory
//	blackscholes  2,902     / 11,413           CPU (fp)
//	julius        21,390    / 69,654           CPU (fp+int)
//	rsa2048       9,346     / 6,877            CPU (crypto)
//
// Worked example (EP on ARM): the paper gives ARM EP PPR = 6.05M random
// numbers per joule. At the ARM's most efficient configuration (4 cores,
// 1.4 GHz, node power ~4.4 W) that implies ~26.7M numbers/s per node, i.e.
// ~6.7M/s per core, i.e. ~210 cycles per number. With WPI ~1.05 (Figure 2
// shows ARM WPI just under 1) and SPIcore ~0.70, cycles per instruction is
// ~1.75, so I_Ps,ARM = 210/1.75 = ~120 instructions per random number.
// The remaining constants are derived the same way; the calibration tests
// in internal/experiments assert the resulting PPR values and orderings.

// chainDepth is the pointer-chase ring size of the stall micro-benchmark,
// sized far beyond any L2 so every hop misses to DRAM.
const chainDepth = 1 << 21

func init() {
	register(Spec{
		Domain:     "HPC",
		Bottleneck: BottleneckCPU,
		Demand: trace.Demand{
			Name: "ep",
			Unit: "random number",
			Translation: isa.Translation{
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 120, Mix: isa.MustMix(map[isa.Class]float64{
					isa.IntALU: 0.55, isa.FP: 0.25, isa.Mem: 0.10, isa.Branch: 0.10,
				})},
				isa.X8664: {ISA: isa.X8664, PerUnit: 135, Mix: isa.MustMix(map[isa.Class]float64{
					isa.IntALU: 0.55, isa.FP: 0.25, isa.Mem: 0.10, isa.Branch: 0.10,
				})},
			},
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 0.3, isa.X8664: 0.2},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.70, isa.X8664: 0.55},
			IO:                       trace.IONone,
		},
		ValidationUnits: 2147483648, // Table 3: 2^31 random numbers
		AnalysisUnits:   50e6,       // §IV-B: 50 million random numbers
		PPRUnit:         "(random no./s)/W",
		Kernel:          epKernel{},
	})

	register(Spec{
		Domain:     "Web Server",
		Bottleneck: BottleneckIO,
		Demand: trace.Demand{
			Name: "memcached",
			Unit: "request",
			Translation: isa.Translation{
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 4000, Mix: isa.MustMix(map[isa.Class]float64{
					isa.IntALU: 0.45, isa.Mem: 0.35, isa.Branch: 0.20,
				})},
				isa.X8664: {ISA: isa.X8664, PerUnit: 3400, Mix: isa.MustMix(map[isa.Class]float64{
					isa.IntALU: 0.45, isa.Mem: 0.35, isa.Branch: 0.20,
				})},
			},
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 8, isa.X8664: 6},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.80, isa.X8664: 0.60},
			IO:                       trace.IORequestResponse,
			// memslap issues fixed 1 KiB key+value requests.
			IOBytesPerUnit: 1 * units.KiB,
			// The generator saturates well past per-NIC transfer rates.
			RequestRate: 2e5,
		},
		ValidationUnits: 600000, // Table 3: 600,000 GET/SET operations
		AnalysisUnits:   50000,  // §IV-B: 50,000 requests per job
		PPRUnit:         "(kbytes/s)/W",
		Kernel:          memcachedKernel{},
	})

	register(Spec{
		Domain:     "Streaming video",
		Bottleneck: BottleneckMemory,
		Demand: trace.Demand{
			Name: "x264",
			Unit: "frame",
			Translation: isa.Translation{
				// The scalar ARMv7-A stream is ~4.8x the x86_64 one: the
				// AMD build vectorizes SAD and DCT with SSE2 while the
				// Cortex-A9 kernel is scalar — the ISA-level reason the
				// paper finds x264 "performs much better on AMD".
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 720e6, Mix: isa.MustMix(map[isa.Class]float64{
					isa.IntALU: 0.35, isa.FP: 0.15, isa.Mem: 0.40, isa.Branch: 0.10,
				})},
				isa.X8664: {ISA: isa.X8664, PerUnit: 150e6, Mix: isa.MustMix(map[isa.Class]float64{
					isa.IntALU: 0.35, isa.FP: 0.15, isa.Mem: 0.40, isa.Branch: 0.10,
				})},
			},
			// Small ARM caches (32 KB L1 + 1 MB shared L2) miss ~2x more
			// often than AMD's 512 KB/core L2 + 6 MB L3 on frame-sized
			// working sets (Table 1).
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 6, isa.X8664: 3.5},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.50, isa.X8664: 0.45},
			IO:                       trace.IOStreaming,
			IOBytesPerUnit:           24 * units.KiB, // coded frame out
			RequestRate:              0,              // frames always available
		},
		ValidationUnits: 600, // Table 3: 600 frames 704x576
		AnalysisUnits:   60,
		PPRUnit:         "(frames/s)/W",
		Kernel:          x264Kernel{},
	})

	register(Spec{
		Domain:     "Financial",
		Bottleneck: BottleneckCPU,
		Demand: trace.Demand{
			Name: "blackscholes",
			Unit: "option",
			Translation: isa.Translation{
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 65000, Mix: isa.MustMix(map[isa.Class]float64{
					isa.FP: 0.50, isa.IntALU: 0.25, isa.Mem: 0.15, isa.Branch: 0.10,
				})},
				isa.X8664: {ISA: isa.X8664, PerUnit: 60000, Mix: isa.MustMix(map[isa.Class]float64{
					isa.FP: 0.50, isa.IntALU: 0.25, isa.Mem: 0.15, isa.Branch: 0.10,
				})},
			},
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 0.5, isa.X8664: 0.3},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.50, isa.X8664: 0.45},
			IO:                       trace.IONone,
		},
		ValidationUnits: 500000, // Table 3: 500,000 stock options
		AnalysisUnits:   100000,
		PPRUnit:         "(options/s)/W",
		Kernel:          blackscholesKernel{},
	})

	register(Spec{
		Domain:     "Speech recognition",
		Bottleneck: BottleneckCPU,
		Demand: trace.Demand{
			Name: "julius",
			Unit: "sample",
			Translation: isa.Translation{
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 10500, Mix: isa.MustMix(map[isa.Class]float64{
					isa.FP: 0.35, isa.IntALU: 0.35, isa.Mem: 0.20, isa.Branch: 0.10,
				})},
				isa.X8664: {ISA: isa.X8664, PerUnit: 8500, Mix: isa.MustMix(map[isa.Class]float64{
					isa.FP: 0.35, isa.IntALU: 0.35, isa.Mem: 0.20, isa.Branch: 0.10,
				})},
			},
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 1.0, isa.X8664: 0.8},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.60, isa.X8664: 0.50},
			IO:                       trace.IOStreaming,
			IOBytesPerUnit:           2, // 16-bit PCM audio samples
			RequestRate:              0,
		},
		ValidationUnits: 2310559, // Table 3: 2,310,559 samples
		AnalysisUnits:   500000,
		PPRUnit:         "(samples/s)/W",
		Kernel:          juliusKernel{},
	})

	register(Spec{
		Domain:     "Web security",
		Bottleneck: BottleneckCPU,
		Demand: trace.Demand{
			Name: "rsa2048",
			Unit: "verify",
			Translation: isa.Translation{
				// ARMv7-A synthesizes 2048-bit modular arithmetic from
				// 32-bit multiplies, needing ~2.9x the instructions of
				// x86_64's 64-bit MUL — and the Crypto class itself issues
				// slower on the A9 (see hwsim class CPI tables). Together
				// these reproduce the paper's one case of AMD winning PPR.
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 57000, Mix: isa.MustMix(map[isa.Class]float64{
					isa.Crypto: 0.55, isa.IntALU: 0.30, isa.Mem: 0.10, isa.Branch: 0.05,
				})},
				isa.X8664: {ISA: isa.X8664, PerUnit: 20000, Mix: isa.MustMix(map[isa.Class]float64{
					isa.Crypto: 0.55, isa.IntALU: 0.30, isa.Mem: 0.10, isa.Branch: 0.05,
				})},
			},
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 0.4, isa.X8664: 0.3},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.50, isa.X8664: 0.40},
			IO:                       trace.IONone,
		},
		ValidationUnits: 5000, // Table 3: 5000 keys verifications
		AnalysisUnits:   10000,
		PPRUnit:         "(verify/s)/W",
		Kernel:          rsaKernel{},
	})
}

// MicroCPUMax is the power-characterization micro-benchmark that maximizes
// CPU utilization (paper §II-D2): a pure register-resident integer/FP
// kernel with essentially no stalls, used to measure P_CPU,act across
// cores and frequencies.
func MicroCPUMax() Spec {
	mix := isa.MustMix(map[isa.Class]float64{isa.IntALU: 0.6, isa.FP: 0.4})
	s := Spec{
		Domain:     "micro-benchmark",
		Bottleneck: BottleneckCPU,
		Demand: trace.Demand{
			Name: "micro-cpumax",
			Unit: "iteration",
			Translation: isa.Translation{
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 1000, Mix: mix},
				isa.X8664:  {ISA: isa.X8664, PerUnit: 1000, Mix: mix},
			},
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 0, isa.X8664: 0},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.05, isa.X8664: 0.05},
			IO:                       trace.IONone,
		},
		ValidationUnits: 1e6,
		AnalysisUnits:   1e6,
		PPRUnit:         "(iterations/s)/W",
		Kernel:          cpuMaxKernel{},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// MicroStallStream is the power-characterization micro-benchmark that
// maximizes stall cycles (paper §II-D2): a pointer chase through a ring
// far larger than any cache, so nearly every instruction waits on DRAM.
// It is also the workload behind the Figure 3 SPImem regression.
func MicroStallStream() Spec {
	mix := isa.MustMix(map[isa.Class]float64{isa.Mem: 0.9, isa.IntALU: 0.1})
	s := Spec{
		Domain:     "micro-benchmark",
		Bottleneck: BottleneckMemory,
		Demand: trace.Demand{
			Name: "micro-stallstream",
			Unit: "iteration",
			Translation: isa.Translation{
				isa.ARMv7A: {ISA: isa.ARMv7A, PerUnit: 1000, Mix: mix},
				isa.X8664:  {ISA: isa.X8664, PerUnit: 1000, Mix: mix},
			},
			// ~25 DRAM misses per kilo-instruction: every chase hop
			// misses (the paper's "stream of cache misses").
			DRAMMissesPerKiloInstr:   map[isa.ISA]float64{isa.ARMv7A: 25, isa.X8664: 25},
			DependencyStallsPerInstr: map[isa.ISA]float64{isa.ARMv7A: 0.05, isa.X8664: 0.05},
			IO:                       trace.IONone,
		},
		ValidationUnits: 1e5,
		AnalysisUnits:   1e5,
		PPRUnit:         "(iterations/s)/W",
		Kernel:          stallStreamKernel{},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// cpuMaxKernel is a register-resident integer/FP spin kernel.
type cpuMaxKernel struct{}

// Run executes n iterations of a dependency-free arithmetic mix.
func (cpuMaxKernel) Run(n int, seed int64) (Result, error) {
	if n <= 0 {
		return Result{}, errInvalidCount
	}
	a := uint64(seed) | 1
	f := 1.0001
	for i := 0; i < n; i++ {
		a = a*6364136223846793005 + 1442695040888963407
		f = f*1.0000001 + float64(a&0xff)*1e-9
	}
	return Result{Units: n, Checksum: float64(a%1e9) + f}, nil
}

// stallStreamKernel chases pointers through a shuffled ring that defeats
// caches and prefetchers.
type stallStreamKernel struct{}

// Run performs n dependent loads through the ring.
func (stallStreamKernel) Run(n int, seed int64) (Result, error) {
	if n <= 0 {
		return Result{}, errInvalidCount
	}
	ring := shuffledRing(chainDepth, seed)
	pos := 0
	sum := 0
	for i := 0; i < n; i++ {
		pos = ring[pos]
		sum += pos & 1
	}
	return Result{Units: n, Checksum: float64(sum) + float64(pos)}, nil
}

// shuffledRing builds a single-cycle permutation of size m using Sattolo's
// algorithm, guaranteeing the chase visits every slot before repeating.
func shuffledRing(m int, seed int64) []int {
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	rng := newSplitMix(uint64(seed))
	for i := m - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	ring := make([]int, m)
	for i := 0; i < m-1; i++ {
		ring[idx[i]] = idx[i+1]
	}
	ring[idx[m-1]] = idx[0]
	return ring
}

// splitMix is a tiny seedable generator for the ring shuffle.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
