package workloads

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// blackscholesKernel implements the PARSEC blackscholes workload: pricing
// a portfolio of European options with the closed-form Black-Scholes
// formula. One work unit is one option priced, matching Table 3's
// "500,000 stock options" problem size and Table 5's "(options/s)/W"
// metric. Like the PARSEC original, it uses a polynomial approximation of
// the cumulative normal distribution, making it floating-point bound with
// a tiny working set (the paper classifies it as CPU-bottlenecked).
type blackscholesKernel struct{}

// Option describes one European option contract.
type Option struct {
	Spot       float64 // current underlying price S
	Strike     float64 // strike price K
	Rate       float64 // risk-free rate r
	Volatility float64 // annualized volatility sigma
	Expiry     float64 // time to expiry in years T
	Call       bool    // call if true, put otherwise
}

// cndf is the cumulative normal distribution function approximation used
// by PARSEC blackscholes (Abramowitz & Stegun 26.2.17, |error| < 7.5e-8).
func cndf(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	w := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*poly
	if neg {
		return 1 - w
	}
	return w
}

// Price returns the Black-Scholes value of the option.
func (o Option) Price() float64 {
	sqrtT := math.Sqrt(o.Expiry)
	d1 := (math.Log(o.Spot/o.Strike) + (o.Rate+o.Volatility*o.Volatility/2)*o.Expiry) /
		(o.Volatility * sqrtT)
	d2 := d1 - o.Volatility*sqrtT
	discK := o.Strike * math.Exp(-o.Rate*o.Expiry)
	if o.Call {
		return o.Spot*cndf(d1) - discK*cndf(d2)
	}
	return discK*cndf(-d2) - o.Spot*cndf(-d1)
}

// randomOption draws a plausible contract, mirroring the value ranges of
// the PARSEC input generator.
func randomOption(rng *rand.Rand) Option {
	return Option{
		Spot:       50 + rng.Float64()*100,
		Strike:     50 + rng.Float64()*100,
		Rate:       0.01 + rng.Float64()*0.09,
		Volatility: 0.05 + rng.Float64()*0.60,
		Expiry:     0.1 + rng.Float64()*2.9,
		Call:       rng.Intn(2) == 0,
	}
}

// Run prices n randomly generated options; the checksum is the summed
// portfolio value.
func (blackscholesKernel) Run(n int, seed int64) (Result, error) {
	if n <= 0 {
		return Result{}, errors.New("workloads: blackscholes requires a positive option count")
	}
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	calls := 0
	for i := 0; i < n; i++ {
		o := randomOption(rng)
		p := o.Price()
		// The polynomial cndf has |error| < 7.5e-8, so deep out-of-the-money
		// contracts can price epsilon-negative; clamp those to zero.
		if p < 0 && p > -1e-6 {
			p = 0
		}
		if p < 0 || math.IsNaN(p) {
			return Result{}, fmt.Errorf("workloads: blackscholes produced invalid price %v for %+v", p, o)
		}
		sum += p
		if o.Call {
			calls++
		}
	}
	return Result{
		Units:    n,
		Checksum: sum,
		Detail:   fmt.Sprintf("options=%d calls=%d portfolio_value=%.2f", n, calls, sum),
	}, nil
}
