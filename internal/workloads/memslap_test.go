package workloads

import "testing"

func TestRunMemslapUniform(t *testing.T) {
	st, err := RunMemslap(MemslapOptions{Operations: 50000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Gets+st.Sets+st.Deletes != 50000 {
		t.Errorf("operations do not add up: %+v", st)
	}
	// memslap defaults: ~89% GETs, ~10% SETs, ~1% DELETEs.
	if frac := float64(st.Sets) / 50000; frac < 0.08 || frac > 0.12 {
		t.Errorf("set fraction = %v, want ~0.10", frac)
	}
	if st.HitRate <= 0 || st.HitRate >= 1 {
		t.Errorf("hit rate = %v", st.HitRate)
	}
}

func TestRunMemslapZipfBeatsUniformHitRate(t *testing.T) {
	// Under a tight store cap, skewed popularity concentrates the
	// working set on hot keys, so Zipf traffic hits the LRU cache far
	// more often than uniform traffic over the same key space.
	base := MemslapOptions{
		Operations: 60000,
		KeySpace:   40000,
		StoreBytes: 4 << 20, // ~4k items, a tenth of the key space
		Seed:       7,
	}
	uni := base
	uni.Distribution = KeysUniform
	uniStats, err := RunMemslap(uni)
	if err != nil {
		t.Fatal(err)
	}
	zipf := base
	zipf.Distribution = KeysZipf
	zipfStats, err := RunMemslap(zipf)
	if err != nil {
		t.Fatal(err)
	}
	if zipfStats.HitRate < uniStats.HitRate*2 {
		t.Errorf("zipf hit rate %v should far exceed uniform %v",
			zipfStats.HitRate, uniStats.HitRate)
	}
	// Skew also touches fewer distinct keys.
	if zipfStats.DistinctKeyQty >= uniStats.DistinctKeyQty {
		t.Errorf("zipf touched %d distinct keys, uniform %d",
			zipfStats.DistinctKeyQty, uniStats.DistinctKeyQty)
	}
}

func TestRunMemslapDeterministic(t *testing.T) {
	opts := MemslapOptions{Operations: 10000, Distribution: KeysZipf, Seed: 3}
	a, err := RunMemslap(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMemslap(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce")
	}
}

func TestRunMemslapCustomMix(t *testing.T) {
	st, err := RunMemslap(MemslapOptions{
		Operations:     20000,
		SetFraction:    0.5,
		DeleteFraction: 0.1,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(st.Sets) / 20000; frac < 0.45 || frac > 0.55 {
		t.Errorf("custom set fraction = %v, want ~0.5", frac)
	}
	if frac := float64(st.Deletes) / 20000; frac < 0.07 || frac > 0.13 {
		t.Errorf("custom delete fraction = %v, want ~0.1", frac)
	}
}

func TestRunMemslapErrors(t *testing.T) {
	if _, err := RunMemslap(MemslapOptions{Operations: 0}); err == nil {
		t.Error("zero operations should error")
	}
	if _, err := RunMemslap(MemslapOptions{Operations: 100, SetFraction: 0.9, DeleteFraction: 0.2}); err == nil {
		t.Error("overfull mix should error")
	}
	if _, err := RunMemslap(MemslapOptions{Operations: 100, Distribution: KeyDistribution(9)}); err == nil {
		t.Error("unknown distribution should error")
	}
}

func TestKeyDistributionString(t *testing.T) {
	if KeysUniform.String() != "uniform" || KeysZipf.String() != "zipf" {
		t.Error("distribution names wrong")
	}
	if KeyDistribution(9).String() != "keydist(9)" {
		t.Error("unknown distribution name wrong")
	}
}
