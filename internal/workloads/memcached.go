package workloads

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
)

// memcachedKernel implements an in-memory key-value store in the style of
// memcached — sharded hash tables with per-shard LRU eviction under a
// memory cap — driven by a memslap-like load generator issuing GET, SET
// and DELETE operations with fixed key-value sizes and uniform key
// popularity (exactly the generator behaviour the paper notes for its
// memslap setup). One work unit is one operation.
type memcachedKernel struct{}

// Store sizing. The paper's ARM nodes have 1 GB of memory; the kernel's
// default cap is scaled down so tests exercise eviction quickly.
const (
	mcShards      = 16
	mcKeySize     = 16
	mcValueSize   = 1008 // key+value = 1 KiB, the fixed memslap size
	mcDefaultCap  = 8 << 20
	mcSetFraction = 0.1 // memslap default: 9 GETs per SET
	mcDelFraction = 0.01
)

// lruEntry is a doubly-linked LRU list node holding one item.
type lruEntry struct {
	key        string
	value      []byte
	prev, next *lruEntry
}

// mcShard is one hash shard with its own lock and LRU list.
type mcShard struct {
	mu       sync.Mutex
	items    map[string]*lruEntry
	head     *lruEntry // most recently used
	tail     *lruEntry // least recently used
	bytes    int
	capBytes int
	evicted  int
}

func newShard(capBytes int) *mcShard {
	return &mcShard{items: make(map[string]*lruEntry), capBytes: capBytes}
}

// unlink removes e from the LRU list.
func (s *mcShard) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (s *mcShard) pushFront(e *lruEntry) {
	e.next = s.head
	e.prev = nil
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *mcShard) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.unlink(e)
	s.pushFront(e)
	return e.value, true
}

func (s *mcShard) set(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		s.bytes += len(value) - len(e.value)
		e.value = value
		s.unlink(e)
		s.pushFront(e)
	} else {
		e := &lruEntry{key: key, value: value}
		s.items[key] = e
		s.pushFront(e)
		s.bytes += len(key) + len(value)
	}
	for s.bytes > s.capBytes && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.items, victim.key)
		s.bytes -= len(victim.key) + len(victim.value)
		s.evicted++
	}
}

func (s *mcShard) delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return false
	}
	s.unlink(e)
	delete(s.items, key)
	s.bytes -= len(e.key) + len(e.value)
	return true
}

func (s *mcShard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// KVStore is the sharded LRU store. It is safe for concurrent use.
type KVStore struct {
	shards [mcShards]*mcShard
}

// NewKVStore creates a store bounded to capBytes of key+value payload
// (split evenly across shards). A non-positive capBytes uses the default.
func NewKVStore(capBytes int) *KVStore {
	if capBytes <= 0 {
		capBytes = mcDefaultCap
	}
	st := &KVStore{}
	per := capBytes / mcShards
	if per < mcKeySize+mcValueSize {
		per = mcKeySize + mcValueSize
	}
	for i := range st.shards {
		st.shards[i] = newShard(per)
	}
	return st
}

func (st *KVStore) shardFor(key string) *mcShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return st.shards[h.Sum32()%mcShards]
}

// Get returns the value for key and whether it was present.
func (st *KVStore) Get(key string) ([]byte, bool) { return st.shardFor(key).get(key) }

// Set stores value under key, evicting LRU entries if over capacity.
func (st *KVStore) Set(key string, value []byte) { st.shardFor(key).set(key, value) }

// Delete removes key, reporting whether it was present.
func (st *KVStore) Delete(key string) bool { return st.shardFor(key).delete(key) }

// Len returns the total number of stored items.
func (st *KVStore) Len() int {
	n := 0
	for _, s := range st.shards {
		n += s.len()
	}
	return n
}

// Evictions returns the total number of LRU evictions so far.
func (st *KVStore) Evictions() int {
	n := 0
	for _, s := range st.shards {
		s.mu.Lock()
		n += s.evicted
		s.mu.Unlock()
	}
	return n
}

// mcKey formats the fixed-size key for index i (uniform popularity over a
// key space sized relative to the operation count, as memslap does).
func mcKey(i int) string { return fmt.Sprintf("key-%011d", i) }

// Run issues n operations against a fresh store: a warm-up SET population
// followed by a memslap-like uniform mixture of GETs, SETs and DELETEs.
// The checksum counts hits, misses and evictions so it depends on the
// whole operation stream.
func (memcachedKernel) Run(n int, seed int64) (Result, error) {
	if n <= 0 {
		return Result{}, errors.New("workloads: memcached requires a positive operation count")
	}
	rng := rand.New(rand.NewSource(seed))
	store := NewKVStore(mcDefaultCap)

	keySpace := n / 4
	if keySpace < 64 {
		keySpace = 64
	}
	value := make([]byte, mcValueSize)

	var gets, hits, sets, dels, delHits int
	for i := 0; i < n; i++ {
		k := mcKey(rng.Intn(keySpace))
		switch p := rng.Float64(); {
		case p < mcDelFraction:
			dels++
			if store.Delete(k) {
				delHits++
			}
		case p < mcDelFraction+mcSetFraction:
			sets++
			binary.LittleEndian.PutUint64(value, uint64(i))
			store.Set(k, append([]byte(nil), value...))
		default:
			gets++
			if _, ok := store.Get(k); ok {
				hits++
			}
		}
	}
	return Result{
		Units:    n,
		Checksum: float64(hits) + float64(delHits)*3 + float64(store.Evictions())*7 + float64(store.Len())*11,
		Detail: fmt.Sprintf("gets=%d hits=%d sets=%d dels=%d items=%d evicted=%d",
			gets, hits, sets, dels, store.Len(), store.Evictions()),
	}, nil
}
