package workloads

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// x264Kernel implements the core loop of a streaming-video encoder in the
// style of x264: for each frame of a synthetic CIF-like sequence it
// performs block motion estimation against the previous frame (sum of
// absolute differences over a diamond search), computes the 8x8 forward
// DCT of the motion-compensated residual, quantizes, and accumulates the
// coded-size estimate. One work unit is one frame, matching Table 3's
// "600 frames 704x576" problem size and Table 5's "(frames/s)/W" metric.
//
// The kernel is memory-intensive by construction — it streams two full
// frames per encode with strided block accesses — which is why the paper
// classifies x264 as memory-bottlenecked and why it is one of the two
// workloads where the high-memory-bandwidth AMD node has the better
// performance-to-power ratio.
type x264Kernel struct{}

// Frame geometry. The paper uses 704x576 (4CIF); the kernel scales this
// down by default so unit tests run quickly, while examples can use the
// full size via EncodeFrames.
const (
	x264Width     = 176 // QCIF width; examples use 704
	x264Height    = 144 // QCIF height; examples use 576
	x264Block     = 8
	x264SearchRad = 4
	x264Quant     = 16
)

// frame is a luma-only image.
type frame struct {
	w, h int
	pix  []uint8
}

func newFrame(w, h int) *frame { return &frame{w: w, h: h, pix: make([]uint8, w*h)} }

// at returns the pixel at (x, y), clamping coordinates to the frame edge
// (the usual border extension of motion estimation).
func (f *frame) at(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.w {
		x = f.w - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.h {
		y = f.h - 1
	}
	return f.pix[y*f.w+x]
}

// synthesize fills the frame with a moving gradient plus noise so that
// consecutive frames have realistic partial similarity.
func (f *frame) synthesize(t int, rng *rand.Rand) {
	for y := 0; y < f.h; y++ {
		for x := 0; x < f.w; x++ {
			base := (x + y + 3*t) % 256
			noise := rng.Intn(17) - 8
			v := base + noise
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			f.pix[y*f.w+x] = uint8(v)
		}
	}
}

// sad computes the sum of absolute differences between the block at
// (bx, by) in cur and the block at (bx+dx, by+dy) in ref.
func sad(cur, ref *frame, bx, by, dx, dy int) int {
	s := 0
	for y := 0; y < x264Block; y++ {
		for x := 0; x < x264Block; x++ {
			a := int(cur.at(bx+x, by+y))
			b := int(ref.at(bx+x+dx, by+y+dy))
			d := a - b
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

// motionSearch finds the best (dx, dy) within the search radius using an
// exhaustive small-window search, returning the best SAD and vector.
func motionSearch(cur, ref *frame, bx, by int) (bestSAD, bestDX, bestDY int) {
	bestSAD = math.MaxInt
	for dy := -x264SearchRad; dy <= x264SearchRad; dy++ {
		for dx := -x264SearchRad; dx <= x264SearchRad; dx++ {
			s := sad(cur, ref, bx, by, dx, dy)
			if s < bestSAD {
				bestSAD, bestDX, bestDY = s, dx, dy
			}
		}
	}
	return bestSAD, bestDX, bestDY
}

// dct8 performs the separable 8-point DCT-II on rows then columns of an
// 8x8 block, in place.
func dct8(block *[x264Block][x264Block]float64) {
	var tmp [x264Block][x264Block]float64
	// Rows.
	for i := 0; i < x264Block; i++ {
		for u := 0; u < x264Block; u++ {
			sum := 0.0
			for x := 0; x < x264Block; x++ {
				sum += block[i][x] * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16)
			}
			c := 0.5
			if u == 0 {
				c = math.Sqrt2 / 4
			}
			tmp[i][u] = c * sum
		}
	}
	// Columns.
	for u := 0; u < x264Block; u++ {
		for v := 0; v < x264Block; v++ {
			sum := 0.0
			for y := 0; y < x264Block; y++ {
				sum += tmp[y][u] * math.Cos((2*float64(y)+1)*float64(v)*math.Pi/16)
			}
			c := 0.5
			if v == 0 {
				c = math.Sqrt2 / 4
			}
			block[v][u] = c * sum
		}
	}
}

// idct8 inverts dct8: the separable 8-point inverse DCT-II (i.e. DCT-III)
// on columns then rows, in place. dct8 followed by idct8 reproduces the
// block up to floating-point error, which the tests assert — the encoder
// kernel is a real, invertible transform, not a stand-in loop.
func idct8(block *[x264Block][x264Block]float64) {
	var tmp [x264Block][x264Block]float64
	// Columns.
	for u := 0; u < x264Block; u++ {
		for y := 0; y < x264Block; y++ {
			sum := 0.0
			for v := 0; v < x264Block; v++ {
				c := 0.5
				if v == 0 {
					c = math.Sqrt2 / 4
				}
				sum += c * block[v][u] * math.Cos((2*float64(y)+1)*float64(v)*math.Pi/16)
			}
			tmp[y][u] = sum
		}
	}
	// Rows.
	for y := 0; y < x264Block; y++ {
		for x := 0; x < x264Block; x++ {
			sum := 0.0
			for u := 0; u < x264Block; u++ {
				c := 0.5
				if u == 0 {
					c = math.Sqrt2 / 4
				}
				sum += c * tmp[y][u] * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16)
			}
			block[y][x] = sum
		}
	}
}

// ReconstructionPSNR encodes one synthetic frame against its predecessor
// and decodes it again (motion compensation + quantized DCT round trip),
// returning the luma PSNR in dB of the reconstruction against the
// original. It is the end-to-end fidelity check of the encoder kernel:
// quantization is the only lossy step, so PSNR is finite but high.
func ReconstructionPSNR(width, height int, seed int64) (float64, error) {
	if width < x264Block || height < x264Block {
		return 0, errors.New("workloads: frame must be at least 8x8")
	}
	rng := rand.New(rand.NewSource(seed))
	ref := newFrame(width, height)
	cur := newFrame(width, height)
	ref.synthesize(0, rng)
	cur.synthesize(1, rng)

	recon := newFrame(width, height)
	var block [x264Block][x264Block]float64
	var sse float64
	var n int
	for by := 0; by+x264Block <= height; by += x264Block {
		for bx := 0; bx+x264Block <= width; bx += x264Block {
			_, dx, dy := motionSearch(cur, ref, bx, by)
			for y := 0; y < x264Block; y++ {
				for x := 0; x < x264Block; x++ {
					block[y][x] = float64(int(cur.at(bx+x, by+y)) - int(ref.at(bx+x+dx, by+y+dy)))
				}
			}
			dct8(&block)
			// Quantize and dequantize (the lossy step).
			for y := 0; y < x264Block; y++ {
				for x := 0; x < x264Block; x++ {
					q := math.Round(block[y][x] / x264Quant)
					block[y][x] = q * x264Quant
				}
			}
			idct8(&block)
			for y := 0; y < x264Block; y++ {
				for x := 0; x < x264Block; x++ {
					v := float64(ref.at(bx+x+dx, by+y+dy)) + block[y][x]
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					recon.pix[(by+y)*width+(bx+x)] = uint8(math.Round(v))
					d := v - float64(cur.at(bx+x, by+y))
					sse += d * d
					n++
				}
			}
		}
	}
	if sse == 0 {
		return math.Inf(1), nil
	}
	mse := sse / float64(n)
	return 10 * math.Log10(255*255/mse), nil
}

// encodeFrame motion-compensates, transforms and quantizes every 8x8
// block of cur against ref, returning the count of non-zero quantized
// coefficients (a proxy for coded size) and the summed motion magnitude.
func encodeFrame(cur, ref *frame) (nonZero, motion int) {
	var block [x264Block][x264Block]float64
	for by := 0; by+x264Block <= cur.h; by += x264Block {
		for bx := 0; bx+x264Block <= cur.w; bx += x264Block {
			_, dx, dy := motionSearch(cur, ref, bx, by)
			motion += dx*dx + dy*dy
			for y := 0; y < x264Block; y++ {
				for x := 0; x < x264Block; x++ {
					residual := int(cur.at(bx+x, by+y)) - int(ref.at(bx+x+dx, by+y+dy))
					block[y][x] = float64(residual)
				}
			}
			dct8(&block)
			for y := 0; y < x264Block; y++ {
				for x := 0; x < x264Block; x++ {
					if q := int(block[y][x]) / x264Quant; q != 0 {
						nonZero++
					}
				}
			}
		}
	}
	return nonZero, motion
}

// EncodeFrames encodes n synthetic frames of the given geometry and
// returns the total non-zero coefficient count and motion energy. It is
// the full-size entry point used by the streaming-video example.
func EncodeFrames(n, width, height int, seed int64) (nonZero, motion int, err error) {
	if n <= 0 || width < x264Block || height < x264Block {
		return 0, 0, errors.New("workloads: x264 requires n>0 and frame at least 8x8")
	}
	rng := rand.New(rand.NewSource(seed))
	ref := newFrame(width, height)
	cur := newFrame(width, height)
	ref.synthesize(0, rng)
	for t := 1; t <= n; t++ {
		cur.synthesize(t, rng)
		nz, mv := encodeFrame(cur, ref)
		nonZero += nz
		motion += mv
		ref, cur = cur, ref
	}
	return nonZero, motion, nil
}

// Run encodes n reduced-size frames.
func (x264Kernel) Run(n int, seed int64) (Result, error) {
	nz, mv, err := EncodeFrames(n, x264Width, x264Height, seed)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Units:    n,
		Checksum: float64(nz) + float64(mv)/1e3,
		Detail:   fmt.Sprintf("frames=%d nonzero_coeffs=%d motion_energy=%d", n, nz, mv),
	}, nil
}
