package workloads

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// juliusKernel implements the computational heart of a real-time speech
// recognition engine in the style of Julius: framing an audio sample
// stream, extracting log-energy filterbank features, and decoding the
// frame sequence against a hidden Markov model with the Viterbi
// algorithm using diagonal-covariance Gaussian emission densities. One
// work unit is one audio sample, matching Table 3's "2,310,559 samples"
// problem size and Table 5's "(samples/s)/W" metric.
type juliusKernel struct{}

// Acoustic front-end geometry: 16 kHz audio, 25 ms windows with 10 ms
// hop, 12 filterbank channels; a 16-state left-to-right HMM.
const (
	juliusFrameLen  = 400 // 25 ms at 16 kHz
	juliusFrameHop  = 160 // 10 ms at 16 kHz
	juliusChannels  = 12
	juliusStates    = 16
	juliusFloorProb = -1e30
)

// hmm is a left-to-right hidden Markov model with Gaussian emissions.
type hmm struct {
	logTransStay float64
	logTransNext float64
	means        [juliusStates][juliusChannels]float64
	invVars      [juliusStates][juliusChannels]float64
	logGconst    [juliusStates]float64
}

// float64Source is the randomness the HMM constructor needs; both
// *rand.Rand and test doubles satisfy it.
type float64Source interface{ Float64() float64 }

// newHMM builds a deterministic model whose state means sweep across the
// feature space, so different frames genuinely prefer different states.
func newHMM(rng float64Source) *hmm {
	m := &hmm{
		logTransStay: math.Log(0.6),
		logTransNext: math.Log(0.4),
	}
	for s := 0; s < juliusStates; s++ {
		g := 0.0
		for c := 0; c < juliusChannels; c++ {
			m.means[s][c] = float64(s)/juliusStates*10 + rng.Float64()
			v := 0.5 + rng.Float64()
			m.invVars[s][c] = 1 / v
			g += math.Log(2 * math.Pi * v)
		}
		m.logGconst[s] = -0.5 * g
	}
	return m
}

// logEmit returns the log density of feature vector f under state s.
func (m *hmm) logEmit(s int, f *[juliusChannels]float64) float64 {
	sum := 0.0
	for c := 0; c < juliusChannels; c++ {
		d := f[c] - m.means[s][c]
		sum += d * d * m.invVars[s][c]
	}
	return m.logGconst[s] - 0.5*sum
}

// features computes a coarse log-energy filterbank for one frame: the
// frame is split into juliusChannels bands whose energies are logged.
func features(frame []float64, out *[juliusChannels]float64) {
	band := len(frame) / juliusChannels
	for c := 0; c < juliusChannels; c++ {
		e := 1e-9
		for i := c * band; i < (c+1)*band; i++ {
			e += frame[i] * frame[i]
		}
		out[c] = math.Log(e)
	}
}

// viterbiDecode runs the Viterbi recursion over the feature frames and
// returns the best final log-probability and best final state.
func viterbiDecode(m *hmm, frames [][juliusChannels]float64) (float64, int) {
	var prev, cur [juliusStates]float64
	for s := range prev {
		prev[s] = juliusFloorProb
	}
	prev[0] = m.logEmit(0, &frames[0])
	for t := 1; t < len(frames); t++ {
		for s := 0; s < juliusStates; s++ {
			best := prev[s] + m.logTransStay
			if s > 0 {
				if v := prev[s-1] + m.logTransNext; v > best {
					best = v
				}
			}
			cur[s] = best + m.logEmit(s, &frames[t])
		}
		prev = cur
	}
	bestP, bestS := prev[0], 0
	for s := 1; s < juliusStates; s++ {
		if prev[s] > bestP {
			bestP, bestS = prev[s], s
		}
	}
	return bestP, bestS
}

// Run decodes n synthetic audio samples: a chirp-plus-noise signal is
// framed, featurized and Viterbi-decoded in utterance-sized chunks. The
// checksum combines the total log-probability and final states.
func (juliusKernel) Run(n int, seed int64) (Result, error) {
	if n < juliusFrameLen {
		return Result{}, errors.New("workloads: julius requires at least one full audio frame of samples")
	}
	rng := rand.New(rand.NewSource(seed))
	m := newHMM(rng)

	// Synthesize the sample stream.
	samples := make([]float64, n)
	for i := range samples {
		tt := float64(i) / 16000
		samples[i] = math.Sin(2*math.Pi*(300+50*tt)*tt) + 0.1*rng.NormFloat64()
	}

	// Frame and featurize.
	nFrames := 1 + (n-juliusFrameLen)/juliusFrameHop
	frames := make([][juliusChannels]float64, nFrames)
	for i := 0; i < nFrames; i++ {
		start := i * juliusFrameHop
		features(samples[start:start+juliusFrameLen], &frames[i])
	}

	// Decode in utterance chunks of ~1 s (100 frames).
	const chunk = 100
	totalLogP := 0.0
	stateSum := 0
	utterances := 0
	for i := 0; i < nFrames; i += chunk {
		end := i + chunk
		if end > nFrames {
			end = nFrames
		}
		logP, s := viterbiDecode(m, frames[i:end])
		totalLogP += logP
		stateSum += s
		utterances++
	}
	return Result{
		Units:    n,
		Checksum: totalLogP + float64(stateSum),
		Detail: fmt.Sprintf("samples=%d frames=%d utterances=%d total_logp=%.1f",
			n, nFrames, utterances, totalLogP),
	}, nil
}
