package workloads

import (
	"errors"
	"fmt"
	"math"
)

// epKernel implements the NAS Parallel Benchmarks EP (embarrassingly
// parallel) kernel: generate pairs of uniform pseudo-random numbers with
// the NAS linear congruential generator, transform accepted pairs into
// independent Gaussian deviates with the Marsaglia polar method, and tally
// the deviates into ten concentric square annuli. One work unit is one
// generated random number, matching the paper's "2,147,483,648 random
// numbers" problem-size statement and the Table 5 "(random no./s)/W"
// metric.
type epKernel struct{}

// NAS LCG constants: x_{k+1} = a*x_k mod 2^46 with a = 5^13.
const (
	epMultiplier = 1220703125 // 5^13
	epModMask    = (1 << 46) - 1
	epScale      = 1.0 / (1 << 46)
)

// epRNG is the NAS EP generator. The 46-bit state fits in a uint64, so the
// classic double-double arithmetic of the Fortran original reduces to
// 128-bit integer multiplication, which Go provides via math/bits-free
// big-mul on uint64 (we use the low 64 bits only: a fits in 31 bits and
// the state in 46, so a*x fits in 77 bits; we mask after multiplying the
// low words, exploiting that 2^46 divides 2^64).
type epRNG struct{ state uint64 }

func newEPRNG(seed int64) *epRNG {
	s := uint64(seed) & epModMask
	if s == 0 {
		s = 271828183 // NAS default seed
	}
	return &epRNG{state: s}
}

// next returns the next uniform deviate in (0, 1).
func (r *epRNG) next() float64 {
	// Multiplication overflow above bit 64 cannot affect bits 0..45,
	// because 2^46 | 2^64: reduction mod 2^46 of the low 64 bits equals
	// reduction of the full product.
	r.state = (r.state * epMultiplier) & epModMask
	return float64(r.state) * epScale
}

// Run generates n random numbers (n/2 pairs) and computes the Gaussian
// deviate tallies. The checksum is sumX + sumY + count of accepted pairs,
// which depends on every generated number.
func (epKernel) Run(n int, seed int64) (Result, error) {
	if n <= 0 {
		return Result{}, errors.New("workloads: ep requires a positive number of random numbers")
	}
	rng := newEPRNG(seed)
	var (
		sumX, sumY float64
		counts     [10]int64
		accepted   int64
	)
	pairs := n / 2
	for i := 0; i < pairs; i++ {
		x := 2*rng.next() - 1
		y := 2*rng.next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		sumX += gx
		sumY += gy
		accepted++
		if k := int(math.Max(math.Abs(gx), math.Abs(gy))); k < 10 {
			counts[k]++
		}
	}
	if n%2 == 1 {
		rng.next() // consume the odd trailing number
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	return Result{
		Units:    n,
		Checksum: sumX + sumY + float64(accepted),
		Detail: fmt.Sprintf("pairs=%d accepted=%d tallied=%d sumX=%.6f sumY=%.6f",
			pairs, accepted, total, sumX, sumY),
	}, nil
}

// EPAnnulusCounts exposes the per-annulus tallies for a run, used by the
// quickstart example to print the classic EP output table.
func EPAnnulusCounts(n int, seed int64) ([10]int64, error) {
	if n <= 0 {
		return [10]int64{}, errors.New("workloads: ep requires a positive number of random numbers")
	}
	rng := newEPRNG(seed)
	var counts [10]int64
	for i := 0; i < n/2; i++ {
		x := 2*rng.next() - 1
		y := 2*rng.next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		if k := int(math.Max(math.Abs(gx), math.Abs(gy))); k < 10 {
			counts[k]++
		}
	}
	return counts, nil
}
