package workloads

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"sync"
)

// rsaKernel implements the "openssl speed rsa2048" verify benchmark: it
// generates an RSA-2048 key pair once, signs a set of message digests,
// and then measures repeated signature verification. One work unit is one
// verification, matching Table 3's "5000 keys verifications" problem size
// and Table 5's "(verify/s)/W" metric.
//
// Verification is dominated by modular exponentiation with the public
// exponent — exactly the wide-word multiply workload that the AMD K10's
// 64-bit multiplier accelerates relative to the 32-bit ARM Cortex-A9,
// making RSA-2048 the workload where AMD wins on performance-per-watt.
type rsaKernel struct{}

// rsaKeyOnce caches the expensive key generation across runs; the key is
// derived from a deterministic stream so results are reproducible.
var (
	rsaKeyOnce sync.Once
	rsaKey     *rsa.PrivateKey
	rsaKeyErr  error
)

// deterministicReader adapts math/rand to io.Reader for reproducible key
// generation. This is NOT cryptographically secure and exists only so the
// benchmark kernel is deterministic; real deployments must use
// crypto/rand.Reader.
type deterministicReader struct{ rng *mrand.Rand }

func (r deterministicReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}

func sharedKey() (*rsa.PrivateKey, error) {
	rsaKeyOnce.Do(func() {
		rsaKey, rsaKeyErr = rsa.GenerateKey(deterministicReader{mrand.New(mrand.NewSource(42))}, 2048)
	})
	return rsaKey, rsaKeyErr
}

// signBatch signs the digests of count distinct messages.
func signBatch(key *rsa.PrivateKey, count int, seed int64) ([][]byte, [][32]byte, error) {
	rng := mrand.New(mrand.NewSource(seed))
	sigs := make([][]byte, count)
	digests := make([][32]byte, count)
	msg := make([]byte, 64)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(deterministicReader{rng}, msg); err != nil {
			return nil, nil, err
		}
		digests[i] = sha256.Sum256(msg)
		sig, err := rsa.SignPKCS1v15(rand.Reader, key, crypto.SHA256, digests[i][:])
		if err != nil {
			return nil, nil, err
		}
		sigs[i] = sig
	}
	return sigs, digests, nil
}

// Run verifies n signatures over a rotating batch of signed digests. The
// checksum counts successful verifications plus a deliberate check that a
// corrupted signature fails.
func (rsaKernel) Run(n int, seed int64) (Result, error) {
	if n <= 0 {
		return Result{}, errors.New("workloads: rsa2048 requires a positive verification count")
	}
	key, err := sharedKey()
	if err != nil {
		return Result{}, fmt.Errorf("workloads: rsa2048 key generation: %w", err)
	}
	batch := 16
	if n < batch {
		batch = n
	}
	sigs, digests, err := signBatch(key, batch, seed)
	if err != nil {
		return Result{}, fmt.Errorf("workloads: rsa2048 signing: %w", err)
	}

	ok := 0
	for i := 0; i < n; i++ {
		j := i % batch
		if err := rsa.VerifyPKCS1v15(&key.PublicKey, crypto.SHA256, digests[j][:], sigs[j]); err == nil {
			ok++
		}
	}

	// Negative control: a flipped signature bit must fail verification.
	bad := append([]byte(nil), sigs[0]...)
	bad[len(bad)/2] ^= 0x01
	rejected := 0
	if err := rsa.VerifyPKCS1v15(&key.PublicKey, crypto.SHA256, digests[0][:], bad); err != nil {
		rejected = 1
	}
	return Result{
		Units:    n,
		Checksum: float64(ok) + float64(rejected)*0.5,
		Detail:   fmt.Sprintf("verified=%d/%d corrupted_rejected=%v", ok, n, rejected == 1),
	}, nil
}
