package workloads

import "errors"

// errInvalidCount is returned by kernels asked for a non-positive number
// of work units.
var errInvalidCount = errors.New("workloads: work unit count must be positive")
