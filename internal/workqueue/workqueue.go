// Package workqueue implements the runtime counterpart of the paper's
// mix-and-match split: a pull-based work queue. The analytical split
// (internal/cluster) divides the job up front using predicted per-node
// speeds; a pull scheduler instead lets every node take the next chunk
// whenever it goes idle, so fast nodes naturally take more and all nodes
// drain the queue at (nearly) the same instant — the matching property
// emerges without knowing node speeds at all.
//
// The package simulates both policies deterministically and accounts the
// idle-tail energy (nodes waiting for the last straggler), so experiments
// can quantify the paper's claim that finishing together minimizes
// wasted energy, and the pull scheduler's extra robustness: when the
// speed estimates behind a static split are wrong, its stragglers grow,
// while the pull scheduler self-corrects to within one chunk.
package workqueue

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"heteromix/internal/units"
)

// Node is one worker: a cluster node characterized by its true mean
// per-unit service time and its power envelope.
type Node struct {
	// Name labels the node in results.
	Name string
	// PerUnit is the node's true mean service time per work unit.
	PerUnit units.Seconds
	// Jitter is the relative magnitude of per-chunk service variation.
	Jitter float64
	// ActivePower is the node's draw while serving; IdlePower while
	// waiting for the job to finish.
	ActivePower units.Watt
	IdlePower   units.Watt
}

// Validate checks the node.
func (n Node) Validate() error {
	if n.PerUnit <= 0 {
		return fmt.Errorf("workqueue: node %q per-unit time %v", n.Name, n.PerUnit)
	}
	if n.Jitter < 0 || n.Jitter > 0.5 {
		return fmt.Errorf("workqueue: node %q jitter %v outside [0, 0.5]", n.Name, n.Jitter)
	}
	if n.ActivePower < 0 || n.IdlePower < 0 {
		return fmt.Errorf("workqueue: node %q negative power", n.Name)
	}
	return nil
}

// Options configures a simulation.
type Options struct {
	// ChunkUnits is the pull granularity (work units per chunk).
	ChunkUnits float64
	// Seed drives per-chunk jitter.
	Seed int64
}

// Result summarizes one scheduled job.
type Result struct {
	// Makespan is when the last node finishes.
	Makespan units.Seconds
	// UnitsPerNode and FinishPerNode are per-node outcomes.
	UnitsPerNode  []float64
	FinishPerNode []units.Seconds
	// Energy is the total: active power over each node's busy time plus
	// idle power over its wait for the makespan.
	Energy units.Joule
	// IdleTail is the idle-wait component alone — the waste the matching
	// property minimizes.
	IdleTail units.Joule
}

// MaxSkew returns the largest finish-time gap between any node and the
// makespan.
func (r Result) MaxSkew() units.Seconds {
	var max units.Seconds
	for _, f := range r.FinishPerNode {
		if gap := r.Makespan - f; gap > max {
			max = gap
		}
	}
	return max
}

// nodeState orders nodes by when they next go idle.
type nodeState struct {
	idx  int
	free float64
}

type nodeHeap []nodeState

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].idx < h[j].idx
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeState)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// Run simulates the pull scheduler: whenever a node goes idle it takes
// the next chunk from the queue. This is greedy list scheduling, which
// is what a shared work queue implements.
func Run(nodes []Node, totalUnits float64, opts Options) (Result, error) {
	if err := validateInputs(nodes, totalUnits, &opts); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	h := make(nodeHeap, len(nodes))
	for i := range nodes {
		h[i] = nodeState{idx: i, free: 0}
	}
	heap.Init(&h)

	res := Result{
		UnitsPerNode:  make([]float64, len(nodes)),
		FinishPerNode: make([]units.Seconds, len(nodes)),
	}
	remaining := totalUnits
	for remaining > 0 {
		s := heap.Pop(&h).(nodeState)
		take := math.Min(opts.ChunkUnits, remaining)
		remaining -= take
		n := nodes[s.idx]
		d := take * float64(n.PerUnit) * jitterFactor(rng, n.Jitter)
		s.free += d
		res.UnitsPerNode[s.idx] += take
		if units.Seconds(s.free) > res.FinishPerNode[s.idx] {
			res.FinishPerNode[s.idx] = units.Seconds(s.free)
		}
		heap.Push(&h, s)
	}
	finalize(nodes, &res)
	return res, nil
}

// RunStatic simulates an up-front split: node i receives fractions[i] of
// the job as one allocation and processes it alone.
func RunStatic(nodes []Node, totalUnits float64, fractions []float64, opts Options) (Result, error) {
	if err := validateInputs(nodes, totalUnits, &opts); err != nil {
		return Result{}, err
	}
	if len(fractions) != len(nodes) {
		return Result{}, fmt.Errorf("workqueue: %d fractions for %d nodes", len(fractions), len(nodes))
	}
	sum := 0.0
	for _, f := range fractions {
		if f < 0 || math.IsNaN(f) {
			return Result{}, fmt.Errorf("workqueue: invalid fraction %v", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return Result{}, fmt.Errorf("workqueue: fractions sum to %v", sum)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := Result{
		UnitsPerNode:  make([]float64, len(nodes)),
		FinishPerNode: make([]units.Seconds, len(nodes)),
	}
	for i, n := range nodes {
		assigned := totalUnits * fractions[i]
		res.UnitsPerNode[i] = assigned
		// Process in the same chunk granularity so jitter accumulates
		// comparably to the pull scheduler.
		t := 0.0
		for left := assigned; left > 0; {
			take := math.Min(opts.ChunkUnits, left)
			left -= take
			t += take * float64(n.PerUnit) * jitterFactor(rng, n.Jitter)
		}
		res.FinishPerNode[i] = units.Seconds(t)
	}
	finalize(nodes, &res)
	return res, nil
}

// MatchingFractions returns the split proportional to estimated node
// throughputs — what cluster.Evaluate computes from the model. Feeding
// mis-estimated per-unit times here quantifies static splitting's
// sensitivity to prediction error.
func MatchingFractions(estimatedPerUnit []units.Seconds) ([]float64, error) {
	if len(estimatedPerUnit) == 0 {
		return nil, fmt.Errorf("workqueue: no estimates")
	}
	out := make([]float64, len(estimatedPerUnit))
	total := 0.0
	for i, k := range estimatedPerUnit {
		if k <= 0 {
			return nil, fmt.Errorf("workqueue: estimate %d is %v", i, k)
		}
		out[i] = 1 / float64(k)
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}

func validateInputs(nodes []Node, totalUnits float64, opts *Options) error {
	if len(nodes) == 0 {
		return fmt.Errorf("workqueue: no nodes")
	}
	for _, n := range nodes {
		if err := n.Validate(); err != nil {
			return err
		}
	}
	if totalUnits <= 0 || math.IsNaN(totalUnits) || math.IsInf(totalUnits, 0) {
		return fmt.Errorf("workqueue: total units %v", totalUnits)
	}
	if opts.ChunkUnits <= 0 {
		opts.ChunkUnits = totalUnits / (float64(len(nodes)) * 100)
		if opts.ChunkUnits < 1 {
			opts.ChunkUnits = 1
		}
	}
	return nil
}

func finalize(nodes []Node, res *Result) {
	for _, f := range res.FinishPerNode {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	for i, n := range nodes {
		busy := float64(res.FinishPerNode[i])
		wait := float64(res.Makespan) - busy
		res.Energy += units.Joule(float64(n.ActivePower)*busy + float64(n.IdlePower)*wait)
		res.IdleTail += units.Joule(float64(n.IdlePower) * wait)
	}
}

func jitterFactor(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	f := 1 + sigma*rng.NormFloat64()
	if f < 0.1 {
		f = 0.1
	}
	return f
}
