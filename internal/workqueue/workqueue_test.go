package workqueue

import (
	"math"
	"testing"
	"testing/quick"

	"heteromix/internal/units"
)

// heteroNodes models a small ARM+AMD mix: four slow efficient nodes and
// one fast hungry node (per-unit times roughly in the calibrated ratio).
func heteroNodes(jitter float64) []Node {
	nodes := make([]Node, 0, 5)
	for i := 0; i < 4; i++ {
		nodes = append(nodes, Node{
			Name: "arm", PerUnit: 40e-9, Jitter: jitter,
			ActivePower: 4.3, IdlePower: 1.8,
		})
	}
	nodes = append(nodes, Node{
		Name: "amd", PerUnit: 12e-9, Jitter: jitter,
		ActivePower: 55, IdlePower: 45,
	})
	return nodes
}

func TestPullSchedulerEqualizesFinishTimes(t *testing.T) {
	nodes := heteroNodes(0)
	res, err := Run(nodes, 10e6, Options{ChunkUnits: 10e3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Self-balancing: every node finishes within one chunk's duration of
	// the makespan (the matching property, achieved without estimates).
	maxChunk := 10e3 * 40e-9
	if float64(res.MaxSkew()) > maxChunk*1.01 {
		t.Errorf("skew %v exceeds one chunk (%vs)", res.MaxSkew(), maxChunk)
	}
	// The fast node took ~12/40x more than each slow one... i.e. shares
	// proportional to speeds: amd/arm share ratio = 40/12.
	armUnits := res.UnitsPerNode[0]
	amdUnits := res.UnitsPerNode[4]
	ratio := amdUnits / armUnits
	if math.Abs(ratio-40.0/12.0) > 0.2 {
		t.Errorf("share ratio = %v, want ~%v (speed-proportional)", ratio, 40.0/12.0)
	}
	// Work conserved.
	sum := 0.0
	for _, u := range res.UnitsPerNode {
		sum += u
	}
	if math.Abs(sum-10e6) > 1e-6 {
		t.Errorf("units not conserved: %v", sum)
	}
}

func TestPullMatchesStaticWithPerfectEstimates(t *testing.T) {
	nodes := heteroNodes(0)
	est := make([]units.Seconds, len(nodes))
	for i, n := range nodes {
		est[i] = n.PerUnit
	}
	fr, err := MatchingFractions(est)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := Run(nodes, 10e6, Options{ChunkUnits: 1e3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunStatic(nodes, 10e6, fr, Options{ChunkUnits: 1e3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With perfect estimates and no jitter the two policies coincide
	// (within a chunk).
	if rel := math.Abs(float64(pull.Makespan-static.Makespan)) / float64(static.Makespan); rel > 0.01 {
		t.Errorf("makespans differ: pull %v vs static %v", pull.Makespan, static.Makespan)
	}
	if rel := math.Abs(float64(pull.Energy-static.Energy)) / float64(static.Energy); rel > 0.01 {
		t.Errorf("energies differ: pull %v vs static %v", pull.Energy, static.Energy)
	}
}

// The headline robustness result: when the static split is computed from
// mis-estimated speeds, its idle tail explodes while the pull scheduler
// self-corrects.
func TestPullRobustToSpeedMisestimation(t *testing.T) {
	nodes := heteroNodes(0)
	// The planner believes the AMD node is 40% faster than it really is.
	est := []units.Seconds{40e-9, 40e-9, 40e-9, 40e-9, 12e-9 / 1.4}
	fr, err := MatchingFractions(est)
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunStatic(nodes, 10e6, fr, Options{ChunkUnits: 1e3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pull, err := Run(nodes, 10e6, Options{ChunkUnits: 1e3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if float64(static.IdleTail) < 3*float64(pull.IdleTail) {
		t.Errorf("static idle tail %v should dwarf pull's %v under mis-estimation",
			static.IdleTail, pull.IdleTail)
	}
	if static.Makespan <= pull.Makespan {
		t.Error("overloading the mis-estimated node should stretch the static makespan")
	}
}

// Under per-chunk jitter the pull scheduler still equalizes within a few
// chunks while static splits drift.
func TestPullAbsorbsJitter(t *testing.T) {
	nodes := heteroNodes(0.1)
	pull, err := Run(nodes, 10e6, Options{ChunkUnits: 5e3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if float64(pull.MaxSkew()) > 5*5e3*40e-9 {
		t.Errorf("jittered pull skew %v too large", pull.MaxSkew())
	}
}

// Property: pull never idles more than static for any mis-estimation.
func TestPullNeverWastesMoreThanStatic(t *testing.T) {
	f := func(seed int64, mis uint8) bool {
		nodes := heteroNodes(0)
		factor := 0.6 + float64(mis%9)/10 // estimate error 0.6x..1.4x
		est := []units.Seconds{40e-9, 40e-9, 40e-9, 40e-9, units.Seconds(12e-9 * factor)}
		fr, err := MatchingFractions(est)
		if err != nil {
			return false
		}
		static, err := RunStatic(nodes, 2e6, fr, Options{ChunkUnits: 1e3, Seed: seed})
		if err != nil {
			return false
		}
		pull, err := Run(nodes, 2e6, Options{ChunkUnits: 1e3, Seed: seed})
		if err != nil {
			return false
		}
		// Allow the pull scheduler its inherent one-chunk granularity:
		// one chunk's duration times the cluster's total idle power.
		totalIdle := 0.0
		for _, n := range nodes {
			totalIdle += float64(n.IdlePower)
		}
		slack := 1e3 * 40e-9 * totalIdle
		return float64(pull.IdleTail) <= float64(static.IdleTail)*1.05+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	good := heteroNodes(0)
	if _, err := Run(nil, 1e6, Options{}); err == nil {
		t.Error("no nodes should error")
	}
	if _, err := Run(good, 0, Options{}); err == nil {
		t.Error("zero units should error")
	}
	bad := heteroNodes(0)
	bad[0].PerUnit = 0
	if _, err := Run(bad, 1e6, Options{}); err == nil {
		t.Error("bad node should error")
	}
	if _, err := RunStatic(good, 1e6, []float64{1}, Options{}); err == nil {
		t.Error("wrong fraction count should error")
	}
	if _, err := RunStatic(good, 1e6, []float64{0.5, 0.5, 0.5, -0.5, 0}, Options{}); err == nil {
		t.Error("negative fraction should error")
	}
	if _, err := RunStatic(good, 1e6, []float64{0.1, 0.1, 0.1, 0.1, 0.1}, Options{}); err == nil {
		t.Error("fractions not summing to 1 should error")
	}
	if _, err := MatchingFractions(nil); err == nil {
		t.Error("no estimates should error")
	}
	if _, err := MatchingFractions([]units.Seconds{0}); err == nil {
		t.Error("zero estimate should error")
	}
}

func TestDefaultChunking(t *testing.T) {
	nodes := heteroNodes(0)
	res, err := Run(nodes, 1e6, Options{Seed: 1}) // ChunkUnits defaulted
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("no makespan")
	}
}

func TestDeterministic(t *testing.T) {
	nodes := heteroNodes(0.05)
	a, err := Run(nodes, 1e6, Options{ChunkUnits: 1e3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nodes, 1e6, Options{ChunkUnits: 1e3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Energy != b.Energy {
		t.Error("same seed should reproduce")
	}
}

func BenchmarkPullScheduler(b *testing.B) {
	nodes := heteroNodes(0.03)
	for i := 0; i < b.N; i++ {
		if _, err := Run(nodes, 10e6, Options{ChunkUnits: 10e3, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
