package experiments

import (
	"reflect"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/workloads"
)

// TestWarmAllModelsPinsFitOrder: model seeds depend on build order
// (Seed + models-built-so-far), so two processes that fit lazily under
// different traffic end up with different models. WarmAllModels is the
// antidote: after warming, every (workload, node) model is identical no
// matter what order it is then asked for — the property a restarted
// fleet replica needs to rejoin its peers bit-identically.
func TestWarmAllModelsPinsFitOrder(t *testing.T) {
	opts := SuiteOptions{NoiseSigma: 0.03, Seed: 7}
	a15, err := hwsim.ByName("arm-cortex-a15")
	if err != nil {
		t.Fatal(err)
	}
	names := workloads.Names()
	if len(names) < 2 {
		t.Fatal("need at least two workloads")
	}

	// First, the hazard this guards against: without warming, asking two
	// fresh suites for the same model in different positions of the lazy
	// build sequence yields different fits — here names[1]/a15 is the
	// first model lazyA ever builds but the second lazyB does.
	lazyA := NewSuite(opts)
	lazyB := NewSuite(opts)
	if _, err := lazyB.Model(names[0], lazyB.ARM); err != nil {
		t.Fatal(err)
	}
	mA, err := lazyA.Model(names[1], a15)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := lazyB.Model(names[1], a15)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(mA, mB) {
		t.Fatal("lazy fits in different orders agreed; the warm-at-startup rationale is stale")
	}

	// Warmed suites agree on every pair regardless of later query order.
	warmA, warmB := NewSuite(opts), NewSuite(opts)
	if err := warmA.WarmAllModels(); err != nil {
		t.Fatal(err)
	}
	if err := warmB.WarmAllModels(); err != nil {
		t.Fatal(err)
	}
	nodes := append([]string{}, hwsim.Names()...)
	for _, w := range names {
		for i := range nodes {
			// Query A forward and B backward through the registry.
			specA, _ := hwsim.ByName(nodes[i])
			specB, _ := hwsim.ByName(nodes[len(nodes)-1-i])
			ma, err := warmA.Model(w, specA)
			if err != nil {
				t.Fatal(err)
			}
			mb, err := warmB.Model(w, specA)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ma, mb) {
				t.Fatalf("warmed suites disagree on %s/%s", w, specA.Name)
			}
			if _, err := warmB.Model(w, specB); err != nil {
				t.Fatal(err)
			}
		}
	}

	// And warming preserves the canonical WarmModels seeds: the AMD/ARM
	// models a serial Table 3 pass fits are untouched by the extension.
	canon := NewSuite(opts)
	if err := canon.WarmModels(); err != nil {
		t.Fatal(err)
	}
	for _, w := range names {
		for _, spec := range []hwsim.NodeSpec{canon.AMD, canon.ARM} {
			mc, err := canon.Model(w, spec)
			if err != nil {
				t.Fatal(err)
			}
			mw, err := warmA.Model(w, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mc, mw) {
				t.Fatalf("WarmAllModels changed the canonical %s/%s fit", w, spec.Name)
			}
		}
	}
}
