package experiments

import (
	"fmt"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/workloads"
)

// BottleneckRow is the model's own diagnosis of what limits a workload on
// a node type, derived from the predicted response-time components: the
// job is I/O-bound when T = T_I/O, else memory-bound when T_mem > T_core,
// else CPU-bound. Table 3's "Bottleneck" column should fall out of the
// model rather than be asserted — this experiment checks that it does.
type BottleneckRow struct {
	Program string
	Node    string
	// Diagnosed is the model's classification.
	Diagnosed workloads.Bottleneck
	// Expected is Table 3's column.
	Expected workloads.Bottleneck
	// Shares give the diagnostic detail: the ratio of each component to
	// the total predicted time.
	IOShare  float64
	MemShare float64
}

// BottleneckClassification diagnoses every workload on both node types at
// their maximum configuration.
func (s *Suite) BottleneckClassification() ([]BottleneckRow, error) {
	var rows []BottleneckRow
	for _, w := range workloads.All() {
		for _, spec := range []hwsim.NodeSpec{s.AMD, s.ARM} {
			nm, err := s.Model(w.Name(), spec)
			if err != nil {
				return nil, err
			}
			row, err := classify(nm, w, spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func classify(nm model.NodeModel, w workloads.Spec, spec hwsim.NodeSpec) (BottleneckRow, error) {
	pred, err := nm.Predict(maxConfig(spec), w.AnalysisUnits)
	if err != nil {
		return BottleneckRow{}, err
	}
	// For I/O-bound workloads the measured U_CPU equilibrates so that
	// T_CPU tracks T_I/O; classify as I/O-bound whenever the I/O path
	// accounts for (nearly) the whole predicted time, then split the
	// CPU-bound cases by which stall component dominates.
	diagnosed := workloads.BottleneckCPU
	switch {
	case float64(pred.TIO) >= 0.9*float64(pred.Time):
		diagnosed = workloads.BottleneckIO
	case float64(pred.TMem) > 1.02*float64(pred.TCore):
		diagnosed = workloads.BottleneckMemory
	}
	return BottleneckRow{
		Program:   w.Name(),
		Node:      spec.Name,
		Diagnosed: diagnosed,
		Expected:  w.Bottleneck,
		IOShare:   float64(pred.TIO) / float64(pred.Time),
		MemShare:  float64(pred.TMem) / float64(pred.TCPU),
	}, nil
}

// FormatBottlenecks renders the rows.
func FormatBottlenecks(rows []BottleneckRow) string {
	out := "Bottleneck classification (model-diagnosed vs Table 3):\n"
	for _, r := range rows {
		mark := "ok"
		if r.Diagnosed != r.Expected {
			mark = "MISMATCH"
		}
		out += fmt.Sprintf("  %-13s %-16s diagnosed %-7s expected %-7s (IO share %.2f, mem/core %.2f) %s\n",
			r.Program, r.Node, r.Diagnosed, r.Expected, r.IOShare, r.MemShare, mark)
	}
	return out
}
