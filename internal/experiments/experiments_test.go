package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"heteromix/internal/pareto"
	"heteromix/internal/units"
)

// The suite is expensive to build; share one across tests.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func sharedSuite() *Suite {
	suiteOnce.Do(func() {
		suite = NewSuite(SuiteOptions{NoiseSigma: 0.03, Seed: 1})
	})
	return suite
}

func TestTable3ErrorsWithinPaperBand(t *testing.T) {
	rows, err := sharedSuite().Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 3 has %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// Paper: "the model error is less than 15%".
		for name, s := range map[string]float64{
			"time AMD":   r.TimeErrAMD.Mean,
			"time ARM":   r.TimeErrARM.Mean,
			"energy AMD": r.EnergyErrAMD.Mean,
			"energy ARM": r.EnergyErrARM.Mean,
		} {
			if s > 15 {
				t.Errorf("%s %s mean error %.1f%% exceeds the paper's 15%% band", r.Program, name, s)
			}
			if s < 0 {
				t.Errorf("%s %s mean error negative", r.Program, name)
			}
		}
	}
	text := FormatTable3(rows)
	if !strings.Contains(text, "memcached") || !strings.Contains(text, "Bottleneck") {
		t.Errorf("formatted table missing content:\n%s", text)
	}
}

func TestTable4ErrorsWithinPaperBand(t *testing.T) {
	rows, err := sharedSuite().Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 workloads x {8+1, 8+0}
		t.Fatalf("Table 4 has %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.TimeErr > 15 || r.EnergyErr > 15 {
			t.Errorf("%s %d:%d errors %.1f%%/%.1f%% exceed 15%%",
				r.Program, r.ARMNodes, r.AMDNodes, r.TimeErr, r.EnergyErr)
		}
	}
	if !strings.Contains(FormatTable4(rows), "ARM nodes") {
		t.Error("formatted Table 4 missing header")
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	rows, err := sharedSuite().Table5()
	if err != nil {
		t.Fatal(err)
	}
	paper := map[string]struct{ amd, arm float64 }{
		"ep":           {1414922, 6048057},
		"memcached":    {2628, 5220},
		"x264":         {1, 0.7},
		"blackscholes": {2902, 11413},
		"julius":       {21390, 69654},
		"rsa2048":      {9346, 6877},
	}
	for _, r := range rows {
		want, ok := paper[r.Program]
		if !ok {
			t.Fatalf("unexpected program %q", r.Program)
		}
		// Calibration target: within 2x of the paper's absolute PPR.
		if r.AMD < want.amd/2 || r.AMD > want.amd*2 {
			t.Errorf("%s AMD PPR %.1f outside 2x of paper %.1f", r.Program, r.AMD, want.amd)
		}
		if r.ARM < want.arm/2 || r.ARM > want.arm*2 {
			t.Errorf("%s ARM PPR %.1f outside 2x of paper %.1f", r.Program, r.ARM, want.arm)
		}
		// Orderings: ARM wins except RSA-2048 and x264.
		wantAMDWin := r.Program == "rsa2048" || r.Program == "x264"
		if wantAMDWin && r.AMD <= r.ARM {
			t.Errorf("%s: AMD should win PPR (%v vs %v)", r.Program, r.AMD, r.ARM)
		}
		if !wantAMDWin && r.ARM <= r.AMD {
			t.Errorf("%s: ARM should win PPR (%v vs %v)", r.Program, r.ARM, r.AMD)
		}
	}
	if !strings.Contains(FormatTable5(rows), "PPR metric") {
		t.Error("formatted Table 5 missing header")
	}
}

func TestFigure2ConstancyHypothesis(t *testing.T) {
	r, err := sharedSuite().Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// 3 classes x 2 nodes.
	if len(r.Points) != 6 {
		t.Fatalf("Figure 2 has %d points, want 6", len(r.Points))
	}
	if r.MaxRelSpread > 0.02 {
		t.Errorf("WPI/SPIcore spread %.3f should be <2%% across problem sizes", r.MaxRelSpread)
	}
	// AMD executes leaner: its WPI is below ARM's (Figure 2 shows AMD
	// WPI ~0.6 vs ARM ~1.0).
	var amdWPI, armWPI float64
	for _, p := range r.Points {
		if p.Node == "amd-opteron-k10" {
			amdWPI = p.WPI
		} else {
			armWPI = p.WPI
		}
	}
	if amdWPI >= armWPI {
		t.Errorf("AMD WPI %v should be below ARM WPI %v", amdWPI, armWPI)
	}
	if chart := r.Chart(); len(chart.Series) != 4 {
		t.Errorf("Figure 2 chart has %d series, want 4", len(chart.Series))
	}
}

func TestFigure3LinearRegression(t *testing.T) {
	r, err := sharedSuite().Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes x {1 core, all cores}.
	if len(r.Series) != 4 {
		t.Fatalf("Figure 3 has %d series, want 4", len(r.Series))
	}
	// Paper: r^2 >= 0.94 for every sweep.
	if r.MinR2 < 0.94 {
		t.Errorf("min r^2 = %.3f, want >= 0.94", r.MinR2)
	}
	for _, s := range r.Series {
		if s.Slope <= 0 {
			t.Errorf("%s cores=%d: slope %v should be positive", s.Node, s.Cores, s.Slope)
		}
	}
	// More cores stall harder: the all-cores sweep lies above the
	// 1-core sweep at max frequency for each node.
	byNode := map[string]map[int]Figure3Series{}
	for _, s := range r.Series {
		if byNode[s.Node] == nil {
			byNode[s.Node] = map[int]Figure3Series{}
		}
		byNode[s.Node][s.Cores] = s
	}
	for node, by := range byNode {
		var one, all Figure3Series
		for c, s := range by {
			if c == 1 {
				one = s
			} else {
				all = s
			}
		}
		if len(one.SPIMem) == 0 || len(all.SPIMem) == 0 {
			t.Fatalf("%s missing sweeps", node)
		}
		if all.SPIMem[len(all.SPIMem)-1] <= one.SPIMem[len(one.SPIMem)-1] {
			t.Errorf("%s: all-cores SPImem should exceed 1-core at fmax", node)
		}
	}
	if chart := r.Chart(); len(chart.Series) != 4 {
		t.Error("Figure 3 chart wrong")
	}
}

// Observation 1: heterogeneity allows larger energy savings than
// homogeneous systems at the same deadline; the frontier of EP has a
// linear heterogeneous sweet region and an ARM-only overlap region.
func TestFigure4EPFrontierStructure(t *testing.T) {
	r, err := sharedSuite().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 36380 {
		t.Fatalf("EP space has %d configurations, want 36380 (footnote 2)", len(r.Points))
	}
	if !r.HasSweet {
		t.Fatal("EP frontier should have a sweet region")
	}
	if r.Sweet.Points() < 5 {
		t.Errorf("sweet region has %d points, want several", r.Sweet.Points())
	}
	// Sweet region: energy falls linearly as deadline relaxes.
	if r.Sweet.LinearR2 < 0.9 {
		t.Errorf("sweet region linear r^2 = %.3f, want >= 0.9", r.Sweet.LinearR2)
	}
	// Overlap region: ARM-only points extend the frontier (compute-bound).
	if !r.HasOverlap || r.Overlap.Points() < 2 {
		t.Error("EP should have an ARM-only overlap region (compute-bound)")
	}
	// The sweet region is bounded by the homogeneous envelopes: ARM-only
	// min energy below, AMD-only above.
	armMin := pareto.MinEnergy(r.ARMOnlyEnvelope)
	amdMin := pareto.MinEnergy(r.AMDOnlyEnvelope)
	if !(armMin < r.Sweet.EnergyHi && r.Sweet.EnergyLo < amdMin*1.05) {
		t.Errorf("sweet region [%v, %v] not bounded by ARM %v / AMD %v",
			r.Sweet.EnergyLo, r.Sweet.EnergyHi, armMin, amdMin)
	}
	// Observation 1 proper: some deadline exists where the frontier
	// (heterogeneous) beats both homogeneous envelopes.
	found := false
	for _, te := range r.Frontier {
		_, okARM := pareto.EnergyAtDeadline(r.ARMOnlyEnvelope, te.Time)
		amdTE, okAMD := pareto.EnergyAtDeadline(r.AMDOnlyEnvelope, te.Time)
		if !okARM && okAMD && te.Energy < amdTE.Energy*0.99 {
			found = true // deadline ARM-only cannot meet; mix beats AMD-only
			break
		}
	}
	if !found {
		t.Error("no deadline where the mix beats homogeneous options (Observation 1)")
	}
}

// Figure 5: memcached (I/O bound) has a sweet region but no meaningful
// overlap region, and homogeneous energy is flat as the deadline relaxes.
func TestFigure5MemcachedFrontierStructure(t *testing.T) {
	r, err := sharedSuite().Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasSweet {
		t.Fatal("memcached frontier should have a sweet region")
	}
	if r.HasOverlap && r.Overlap.Points() >= 2 {
		t.Errorf("memcached should not have an overlap region (I/O bound), got %d points",
			r.Overlap.Points())
	}
	// Homogeneous energy flat: for a fixed node count, relaxing the
	// deadline does not reduce energy (paper: "energy incurred by
	// memcached on homogeneous systems is constant even as deadline is
	// relaxed").
	if !r.HomogeneousEnergyFlat(r.AMDOnlyEnvelope, 0.1) {
		t.Error("AMD-only memcached energy should be flat in deadline at fixed node count")
	}
}

func TestFigure5EPContrastOverlap(t *testing.T) {
	// For compute-bound EP the ARM-only envelope genuinely trades time
	// for energy (the overlap mechanism): its energy span exceeds 5%.
	r, err := sharedSuite().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ARMOnlyEnvelope) < 2 {
		t.Fatal("EP ARM-only envelope should have multiple tradeoff points")
	}
	hi := r.ARMOnlyEnvelope[0].Energy
	lo := pareto.MinEnergy(r.ARMOnlyEnvelope)
	if (hi-lo)/hi < 0.05 {
		t.Errorf("EP ARM-only energy span %.1f%% too flat (overlap mechanism)", (hi-lo)/hi*100)
	}
}

func TestFrontierChartRenders(t *testing.T) {
	r, err := sharedSuite().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Chart().RenderASCII(70, 20); err != nil {
		t.Errorf("ASCII render: %v", err)
	}
	if _, err := r.Chart().RenderSVG(800, 600); err != nil {
		t.Errorf("SVG render: %v", err)
	}
	if txt := r.FormatFrontier(); !strings.Contains(txt, "sweet region") {
		t.Errorf("format missing sweet region:\n%s", txt)
	}
}

// Observation 2: replacing even a few AMD nodes with ARM nodes at the
// substitution ratio opens a sweet region, and ARM-only pools cannot meet
// the tightest deadlines.
func TestFigure6BudgetMixesMemcached(t *testing.T) {
	r, err := sharedSuite().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 7 {
		t.Fatalf("Figure 6 has %d series, want 7", len(r.Series))
	}
	amdOnly := r.Series[0]
	armOnly := r.Series[len(r.Series)-1]
	// ARM-only cannot meet deadlines below ~30 ms (Figure 6's floor).
	if ms := armOnly.MinTime.Millis(); ms < 28 || ms > 40 {
		t.Errorf("ARM-only fastest = %vms, want ~32ms", ms)
	}
	if amdOnly.MinTime >= armOnly.MinTime {
		t.Error("AMD-only should meet tighter deadlines than ARM-only")
	}
	// Mixes reach lower energy than the AMD-only pool.
	mix := r.Series[1] // ARM 16:AMD 14
	if mix.MinEnergy >= amdOnly.MinEnergy {
		t.Errorf("mix min energy %v should beat AMD-only %v", mix.MinEnergy, amdOnly.MinEnergy)
	}
	// Replacing a few AMD nodes opens a sweet region: the mix's frontier
	// has more points than the AMD-only pool's.
	if len(mix.Frontier) <= len(amdOnly.Frontier) {
		t.Errorf("mix frontier (%d pts) should have more tradeoff points than AMD-only (%d)",
			len(mix.Frontier), len(amdOnly.Frontier))
	}
}

func TestFigure7BudgetMixesEP(t *testing.T) {
	r, err := sharedSuite().Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// For compute-bound EP, the most energy-efficient pool is ARM-only,
	// and more ARM nodes also mean faster execution (8 ARM outrun 1 AMD).
	armOnly := r.Series[len(r.Series)-1]
	amdOnly := r.Series[0]
	if armOnly.MinEnergy >= amdOnly.MinEnergy {
		t.Error("ARM-heavy pools should be more energy-efficient for EP")
	}
	if armOnly.MinTime >= amdOnly.MinTime {
		t.Error("128 ARM nodes should outrun 16 AMD nodes on EP (8 ARM > 1 AMD)")
	}
}

// Observation 3: scaling the pool at a fixed ratio shifts the frontier
// left (faster) without changing its energy bounds, and adds
// configurations to the sweet region.
func TestFigures89Scaling(t *testing.T) {
	for _, workload := range []string{"memcached", "ep"} {
		var r MixSeriesResult
		var err error
		if workload == "memcached" {
			r, err = sharedSuite().Figure8()
		} else {
			r, err = sharedSuite().Figure9()
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Series) != 5 {
			t.Fatalf("%s scaling has %d series, want 5", workload, len(r.Series))
		}
		for i := 1; i < len(r.Series); i++ {
			prev, cur := r.Series[i-1], r.Series[i]
			// Frontier shifts left: the doubled pool is ~2x faster.
			ratio := float64(prev.MinTime) / float64(cur.MinTime)
			if ratio < 1.8 || ratio > 2.2 {
				t.Errorf("%s %v -> %v: speedup %v, want ~2x", workload, prev.Mix, cur.Mix, ratio)
			}
			// Energy bounds unchanged: min energy equal within 1%.
			rel := math.Abs(float64(cur.MinEnergy-prev.MinEnergy)) / float64(prev.MinEnergy)
			if rel > 0.01 {
				t.Errorf("%s %v min energy %v differs from %v's %v (Observation 3)",
					workload, cur.Mix, cur.MinEnergy, prev.Mix, prev.MinEnergy)
			}
			// More configurations on the sweet region.
			if len(cur.Frontier) < len(prev.Frontier) {
				t.Errorf("%s %v frontier smaller than %v's", workload, cur.Mix, prev.Mix)
			}
		}
	}
}

// The paper's Figure 8 example: on the ARM 16:AMD 2 pool a 165 ms
// deadline is feasible, and on the ARM 64:AMD 8 pool a 4x tighter 41 ms
// deadline is feasible at nearly the same energy per job — so one big
// cluster beats four quarter-size clusters.
func TestFigure8ConsolidationExample(t *testing.T) {
	r, err := sharedSuite().Figure8()
	if err != nil {
		t.Fatal(err)
	}
	var small, big MixFrontier
	for _, mf := range r.Series {
		switch {
		case mf.Mix.ARM == 16 && mf.Mix.AMD == 2:
			small = mf
		case mf.Mix.ARM == 64 && mf.Mix.AMD == 8:
			big = mf
		}
	}
	eSmall, ok := small.EnergyAt(units.Seconds(0.165))
	if !ok {
		t.Fatal("16:2 pool cannot meet 165 ms")
	}
	eBig, ok := big.EnergyAt(units.Seconds(0.165 / 4))
	if !ok {
		t.Fatal("64:8 pool cannot meet 41 ms")
	}
	rel := math.Abs(float64(eBig-eSmall)) / float64(eSmall)
	if rel > 0.05 {
		t.Errorf("4x faster deadline on 4x pool costs %v vs %v per job (%.1f%% apart), want near-equal",
			eBig, eSmall, rel*100)
	}
}

// Observation 4: energy savings amplify as utilization grows, and the
// sweet region persists at all utilizations.
func TestFigure10Queueing(t *testing.T) {
	r, err := sharedSuite().Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profiles) != 3 {
		t.Fatalf("Figure 10 has %d profiles, want 3", len(r.Profiles))
	}
	// Arrival rate grows tenfold from U=5% to U=50%.
	if ratio := r.Profiles[2].ReferenceRate / r.Profiles[0].ReferenceRate; math.Abs(ratio-10) > 0.01 {
		t.Errorf("arrival rate ratio = %v, want 10", ratio)
	}
	for i, p := range r.Profiles {
		if len(p.Frontier) < 5 {
			t.Errorf("profile %d frontier has %d points", i, len(p.Frontier))
		}
		// The fast end of the frontier uses AMD nodes; the low-energy end
		// is ARM-only (the two linear regions of the paper's Figure 10).
		left, right := p.FrontierSplit()
		if left < 0.5 {
			t.Errorf("profile %d: fast end should be AMD-bearing (share %v)", i, left)
		}
		if right > 0.2 {
			t.Errorf("profile %d: low-energy end should be ARM-only (AMD share %v)", i, right)
		}
		// A sharp drop separates the two regions; consecutive frontier
		// steps near the last-AMD boundary shed nearly the whole idle
		// draw of an AMD node at once.
		if drop := p.SharpDrop(); drop < 1.5 {
			t.Errorf("profile %d: largest consecutive energy drop %vx, want >= 1.5x", i, drop)
		}
		// The frontier spans well over an order of magnitude in energy
		// (paper: "spanning almost two orders of magnitude").
		span := p.Frontier[0].Energy / p.Frontier[len(p.Frontier)-1].Energy
		if span < 10 {
			t.Errorf("profile %d: frontier energy span %.1fx, want >= 10x", i, span)
		}
	}
	// Energy to meet the same response time grows close to an order of
	// magnitude from U=5% to U=50% (paper: "almost by an order of
	// magnitude"). The growth peaks at responses inside the sharp-drop
	// zone, where the 50% profile still needs AMD nodes but the 5%
	// profile has already crossed to ARM-only configurations; scan
	// responses for the maximum ratio.
	maxRatio := 0.0
	for resp := 0.03; resp < 10; resp *= 1.2 {
		e5, ok5 := pareto.EnergyAtDeadline(r.Profiles[0].Frontier, resp)
		e50, ok50 := pareto.EnergyAtDeadline(r.Profiles[2].Frontier, resp)
		if !ok5 || !ok50 {
			continue
		}
		if ratio := e50.Energy / e5.Energy; ratio > maxRatio {
			maxRatio = ratio
		}
	}
	// The paper reports ~10x under its accounting; our per-configuration
	// utilization convention (the one under which ARM-only points exist
	// at every profile) yields a smaller but clearly amplified factor.
	if maxRatio < 2 {
		t.Errorf("peak energy growth from U=5%% to 50%% is %.1fx, want >= 2x", maxRatio)
	}
	// The minimum response time achievable rises with utilization
	// (queueing wait is added on top of the same fastest service time).
	if !(r.Profiles[0].Frontier[0].Time < r.Profiles[2].Frontier[0].Time) {
		t.Error("higher utilization should increase the minimal achievable response")
	}
	if _, err := r.Chart().RenderASCII(70, 20); err != nil {
		t.Errorf("chart render: %v", err)
	}
	if !strings.Contains(r.Format(), "U=50%") {
		t.Error("format missing profiles")
	}
}

// Paper §VI headline: up to 58% (EP) / 44% (memcached) energy reduction
// for 16 ARM + 14 AMD versus homogeneous AMD. Our two switch-energy
// conventions bracket the paper's numbers.
func TestHeadlineEnergyReduction(t *testing.T) {
	ep, err := sharedSuite().Headline("ep")
	if err != nil {
		t.Fatal(err)
	}
	if ep.MaxReduction < 50 {
		t.Errorf("EP reduction %.0f%%, want >= 50%% (paper: 58%%)", ep.MaxReduction)
	}
	mc, err := sharedSuite().Headline("memcached")
	if err != nil {
		t.Fatal(err)
	}
	if mc.MaxReductionNoSwitch < 35 {
		t.Errorf("memcached reduction (no switch) %.0f%%, want >= 35%% (paper: 44%%)",
			mc.MaxReductionNoSwitch)
	}
	if mc.MaxReduction <= 0 {
		t.Errorf("memcached reduction with switch energy should still be positive, got %.1f%%",
			mc.MaxReduction)
	}
	if !strings.Contains(ep.Format(), "%") {
		t.Error("headline format broken")
	}
}

func TestEnergyAtDeadlineOnResult(t *testing.T) {
	r, err := sharedSuite().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.EnergyAtDeadline(units.Seconds(1e-6)); ok {
		t.Error("microsecond deadline should be infeasible")
	}
	e, p, ok := r.EnergyAtDeadline(units.Seconds(10))
	if !ok {
		t.Fatal("10 s deadline should be feasible")
	}
	if e <= 0 || p.Time <= 0 {
		t.Error("invalid deadline answer")
	}
	if float64(p.Time) > 10 {
		t.Error("returned configuration misses the deadline")
	}
}
