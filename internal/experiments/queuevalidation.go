package experiments

import (
	"fmt"

	"heteromix/internal/queueing"
	"heteromix/internal/units"
)

// QueueValidationRow compares the M/D/1 closed form against the
// discrete-event queue simulation at one utilization — the queueing
// analogue of Table 3's model-vs-measurement validation, covering the
// §IV-E layer the paper introduces without validating.
type QueueValidationRow struct {
	Utilization float64
	// AnalyticWait and SimulatedWait are the mean queueing delays.
	AnalyticWait  units.Seconds
	SimulatedWait units.Seconds
	// RelError is their relative difference.
	RelError float64
}

// QueueModelValidation simulates jobs at each utilization with the given
// deterministic service time and compares mean waits against
// Pollaczek-Khinchine.
func (s *Suite) QueueModelValidation(serviceTime units.Seconds, utilizations []float64, jobs int) ([]QueueValidationRow, error) {
	if serviceTime <= 0 {
		return nil, fmt.Errorf("experiments: service time %v", serviceTime)
	}
	if jobs < 1000 {
		jobs = 100000
	}
	var rows []QueueValidationRow
	for i, u := range utilizations {
		rate, err := queueing.RateForUtilization(u, serviceTime)
		if err != nil {
			return nil, err
		}
		q := queueing.MD1{ArrivalRate: rate, ServiceTime: serviceTime}
		rel, sim, err := q.ValidateAgainstSimulation(jobs, s.Opts.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		rows = append(rows, QueueValidationRow{
			Utilization:   u,
			AnalyticWait:  q.MeanWait(),
			SimulatedWait: sim.MeanWait,
			RelError:      rel,
		})
	}
	return rows, nil
}

// FormatQueueValidation renders the rows.
func FormatQueueValidation(rows []QueueValidationRow) string {
	out := "M/D/1 validation (closed form vs discrete-event simulation):\n"
	for _, r := range rows {
		out += fmt.Sprintf("  rho=%.2f: analytic Wq=%v, simulated Wq=%v (rel err %.1f%%)\n",
			r.Utilization, r.AnalyticWait, r.SimulatedWait, r.RelError*100)
	}
	return out
}
