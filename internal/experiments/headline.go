package experiments

import (
	"fmt"

	"heteromix/internal/pareto"
	"heteromix/internal/units"
)

// HeadlineResult quantifies the paper's §VI summary: how much energy a
// heterogeneous 16 ARM + 14 AMD cluster saves over a homogeneous AMD
// cluster at equal service-time deadlines (the paper reports up to 44%
// for memcached and 58% for EP).
type HeadlineResult struct {
	Workload string
	// MaxReduction is the largest relative energy reduction of the
	// heterogeneous frontier versus the AMD-only envelope across all
	// deadlines both can meet, in percent, with ARM switch energy
	// included in cluster energy.
	MaxReduction float64
	// MaxReductionNoSwitch is the same comparison with switch energy
	// excluded (the convention under which the paper's per-node PPR
	// figures imply its 44%/58% headline numbers).
	MaxReductionNoSwitch float64
	// AtDeadline is where the switch-included maximum occurs.
	AtDeadline units.Seconds
	// MixEnergy and AMDEnergy are the switch-included energies there.
	MixEnergy units.Joule
	AMDEnergy units.Joule
}

// Headline computes the §VI comparison for one workload over the
// 16 ARM + 14 AMD configuration space, under both switch-energy
// conventions.
func (s *Suite) Headline(workload string) (HeadlineResult, error) {
	res := HeadlineResult{Workload: workload}
	for _, noSwitch := range []bool{false, true} {
		max, at, mixE, amdE, err := s.headlineOnce(workload, noSwitch)
		if err != nil {
			return HeadlineResult{}, err
		}
		if noSwitch {
			res.MaxReductionNoSwitch = max
		} else {
			res.MaxReduction = max
			res.AtDeadline = at
			res.MixEnergy = mixE
			res.AMDEnergy = amdE
		}
	}
	return res, nil
}

func (s *Suite) headlineOnce(workload string, noSwitch bool) (maxRed float64, at units.Seconds, mixE, amdE units.Joule, err error) {
	fr, err := s.frontierAnalysis(workload, 16, 14, 0, noSwitch)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(fr.AMDOnlyEnvelope) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("experiments: no AMD-only envelope for %q", workload)
	}
	// Probe at every frontier knot: both curves are staircases, so their
	// ratio changes only at knot points of either; probing the union of
	// knots finds the maximum gap.
	probe := func(deadline float64) {
		mixTE, ok1 := pareto.EnergyAtDeadline(fr.Frontier, deadline)
		amdTE, ok2 := pareto.EnergyAtDeadline(fr.AMDOnlyEnvelope, deadline)
		if !ok1 || !ok2 || amdTE.Energy <= 0 {
			return
		}
		red := (1 - mixTE.Energy/amdTE.Energy) * 100
		if red > maxRed {
			maxRed = red
			at = units.Seconds(deadline)
			mixE = units.Joule(mixTE.Energy)
			amdE = units.Joule(amdTE.Energy)
		}
	}
	for _, te := range fr.AMDOnlyEnvelope {
		probe(te.Time)
	}
	for _, te := range fr.Frontier {
		probe(te.Time)
	}
	return maxRed, at, mixE, amdE, nil
}

// Format renders the headline comparison.
func (r HeadlineResult) Format() string {
	return fmt.Sprintf("%s: heterogeneous 16 ARM + 14 AMD saves up to %.0f%% energy vs AMD-only (%v vs %v at deadline %v); %.0f%% when switch energy is excluded",
		r.Workload, r.MaxReduction, r.MixEnergy, r.AMDEnergy, r.AtDeadline, r.MaxReductionNoSwitch)
}
